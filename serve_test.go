package progopt

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// convergentPlan is a scan whose predicate selectivities (~0.8 / ~0.5 /
// ~0.18) are cleanly separated and chained worst-first, so a cold
// progressive run reliably reorders and then confirms — the regime feedback
// warm starts are designed for. withJoin appends a foreign-key join, the
// acceptance criterion's recurring join query.
func convergentPlan(d *Dataset, withJoin bool) *Plan {
	p := Scan("lineitem").
		Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.8))).Label("ship80").
		Filter("l_discount", CmpLE, 0.05).Label("disc<=.05").
		Filter("l_quantity", CmpLT, 10).Label("qty<10")
	if withJoin {
		p.Join("orders", 0.5)
	}
	return p
}

func serveEngine(t *testing.T, workers int) (*Engine, *Dataset) {
	t.Helper()
	e, err := New(Config{VectorSize: 512, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.GenerateTPCH(96*512, 31, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

// TestServeFingerprintOrderIndependent: the same steps chained in a
// different order hit the plan cache (identical canonical fingerprint),
// while changing a bound, a join selectivity, or the data-set generation
// misses.
func TestServeFingerprintOrderIndependent(t *testing.T) {
	e, d := serveEngine(t, 2)
	srv, err := NewServer(e, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(d *Dataset, p *Plan) *ServedInfo {
		t.Helper()
		tk, err := srv.Submit(d, p, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res.Served
	}
	a := Scan("lineitem").
		Filter("l_quantity", CmpLT, 24).
		Filter("l_discount", CmpGE, 0.05).
		Join("orders", 0.5).
		Sum("l_extendedprice * l_discount")
	b := Scan("lineitem").
		Join("orders", 0.5).
		Filter("l_discount", CmpGE, 0.05).
		Filter("l_quantity", CmpLT, 24).
		Sum("l_discount * l_extendedprice") // commuted factors
	ia := submit(d, a)
	ib := submit(d, b)
	if ia.Fingerprint != ib.Fingerprint {
		t.Errorf("reordered plan fingerprints differ: %s vs %s", ia.Fingerprint, ib.Fingerprint)
	}
	if ia.PlanCacheHit || !ib.PlanCacheHit {
		t.Errorf("cache hits wrong: first %v second %v, want false/true", ia.PlanCacheHit, ib.PlanCacheHit)
	}

	// Bound change -> new fingerprint.
	c := Scan("lineitem").
		Filter("l_quantity", CmpLT, 25).
		Filter("l_discount", CmpGE, 0.05).
		Join("orders", 0.5).
		Sum("l_extendedprice * l_discount")
	if ic := submit(d, c); ic.Fingerprint == ia.Fingerprint || ic.PlanCacheHit {
		t.Error("bound change did not change the fingerprint")
	}
	// Join selectivity change -> new fingerprint.
	j := Scan("lineitem").
		Filter("l_quantity", CmpLT, 24).
		Filter("l_discount", CmpGE, 0.05).
		Join("orders", 0.25).
		Sum("l_extendedprice * l_discount")
	if ij := submit(d, j); ij.Fingerprint == ia.Fingerprint || ij.PlanCacheHit {
		t.Error("join selectivity change did not change the fingerprint")
	}
	// Same parameters, regenerated data set -> new generation -> miss.
	d2, err := e.GenerateTPCH(96*512, 31, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Generation() == d.Generation() {
		t.Fatal("regenerated data set reused a generation")
	}
	if i2 := submit(d2, a); i2.Fingerprint == ia.Fingerprint || i2.PlanCacheHit {
		t.Error("data-set generation did not invalidate the plan cache")
	}
	st := srv.Stats()
	if st.PlanCacheHits != 1 || st.PlanCacheMisses != 4 {
		t.Errorf("hits=%d misses=%d, want 1/4", st.PlanCacheHits, st.PlanCacheMisses)
	}
}

// TestServePlanCacheEviction: the plan cache respects
// ServerConfig.PlanCacheSize with LRU eviction.
func TestServePlanCacheEviction(t *testing.T) {
	e, d := serveEngine(t, 1)
	srv, err := NewServer(e, ServerConfig{PlanCacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan := func(bound int) *Plan {
		return Scan("lineitem").Filter("l_quantity", CmpLT, bound)
	}
	submit := func(p *Plan) {
		t.Helper()
		tk, err := srv.Submit(d, p, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	submit(plan(10)) // miss, cache {10}
	submit(plan(20)) // miss, cache {10, 20}
	submit(plan(10)) // hit, recency [20, 10]
	submit(plan(30)) // miss, evicts LRU 20, recency [10, 30]
	submit(plan(20)) // miss (evicted), evicts 10, recency [30, 20]
	submit(plan(30)) // hit (kept)
	st := srv.Stats()
	if st.PlanCacheEvictions != 2 {
		t.Errorf("evictions=%d, want 2", st.PlanCacheEvictions)
	}
	if st.PlanCacheHits != 2 || st.PlanCacheMisses != 4 {
		t.Errorf("hits=%d misses=%d, want 2/4", st.PlanCacheHits, st.PlanCacheMisses)
	}
}

// TestServeWarmStartRecurringJoin pins the acceptance criterion: the second
// submission of a recurring join query warm-starts at the converged pipeline
// order and spends measurably fewer simulated cycles before reaching it —
// with a bit-identical answer.
func TestServeWarmStartRecurringJoin(t *testing.T) {
	e, d := serveEngine(t, 4)
	srv, err := NewServer(e, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	opts := ExecOptions{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}}
	run := func() ExecResult {
		t.Helper()
		tk, err := srv.Submit(d, convergentPlan(d, true), opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run()
	if cold.Served.WarmStart {
		t.Fatal("first submission warm-started")
	}
	if cold.Stats.Reorders == 0 {
		t.Fatal("cold run never reordered; workload cannot demonstrate a warm start")
	}
	warm := run()
	if !warm.Served.WarmStart || !warm.Served.PlanCacheHit {
		t.Fatalf("second submission not warm-started from cache: %+v", warm.Served)
	}
	if warm.Qualifying != cold.Qualifying || warm.Sum != cold.Sum {
		t.Errorf("warm start changed the answer: %d/%v vs %d/%v",
			warm.Qualifying, warm.Sum, cold.Qualifying, cold.Sum)
	}
	if warm.Stats.ConvergedAtCycles >= cold.Stats.ConvergedAtCycles {
		t.Errorf("warm converged at %d cycles, cold at %d — no warm-start benefit",
			warm.Stats.ConvergedAtCycles, cold.Stats.ConvergedAtCycles)
	}
	if warm.Cycles >= cold.Cycles {
		t.Errorf("warm run cost %d cycles, cold %d", warm.Cycles, cold.Cycles)
	}
	st := srv.Stats()
	if st.FeedbackWarmStarts != 1 || st.FeedbackStores != 2 {
		t.Errorf("warm starts %d stores %d, want 1/2", st.FeedbackWarmStarts, st.FeedbackStores)
	}
}

// serveTraceObs is one run of the determinism trace: everything the server
// reports that must reproduce bit for bit.
type serveTraceObs struct {
	Qual    []int64
	Sum     []float64
	Cycles  []uint64
	Latency []uint64
	Counter []uint64
	Stats   ServerStats
}

// runServeTrace submits a fixed six-query trace (two recurring templates,
// staggered arrivals, mixed modes) and waits from parallel goroutines.
func runServeTrace(t *testing.T) serveTraceObs {
	t.Helper()
	e, d := serveEngine(t, 4)
	srv, err := NewServer(e, ServerConfig{MaxActive: 3})
	if err != nil {
		t.Fatal(err)
	}
	opts := []ExecOptions{
		{Mode: ModeFixed},
		{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}},
		{Mode: ModeFixed},
		{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}},
		{Mode: ModeFixed},
		{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}},
	}
	tks := make([]*Ticket, len(opts))
	for i, o := range opts {
		tk, err := srv.SubmitAt(d, convergentPlan(d, i%2 == 1), o, uint64(i)*40_000)
		if err != nil {
			t.Fatal(err)
		}
		tks[i] = tk
	}
	obs := serveTraceObs{
		Qual:    make([]int64, len(tks)),
		Sum:     make([]float64, len(tks)),
		Cycles:  make([]uint64, len(tks)),
		Latency: make([]uint64, len(tks)),
		Counter: make([]uint64, len(tks)),
	}
	var wg sync.WaitGroup
	errs := make([]error, len(tks))
	for i, tk := range tks {
		wg.Add(1)
		go func(i int, tk *Ticket) {
			defer wg.Done()
			res, err := tk.Wait()
			if err != nil {
				errs[i] = err
				return
			}
			obs.Qual[i] = res.Qualifying
			obs.Sum[i] = res.Sum
			obs.Cycles[i] = res.Cycles
			obs.Latency[i] = res.Served.LatencyCycles
			obs.Counter[i] = res.Counters["instructions"]
		}(i, tk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	obs.Stats = srv.Stats()
	return obs
}

// TestServeTraceDeterministic pins the tentpole determinism criterion: the
// same seeded trace, waited on by racing goroutines, yields bit-identical
// per-query results, latencies, and makespan on repeated runs and across
// GOMAXPROCS settings.
func TestServeTraceDeterministic(t *testing.T) {
	a := runServeTrace(t)
	b := runServeTrace(t)
	old := runtime.GOMAXPROCS(1)
	c := runServeTrace(t)
	runtime.GOMAXPROCS(old)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("trace not reproducible:\n a %+v\n b %+v", a, b)
	}
	if !reflect.DeepEqual(a, c) {
		t.Errorf("trace differs across GOMAXPROCS:\n a %+v\n c %+v", a, c)
	}
	if a.Stats.Completed != 6 || a.Stats.PlanCacheHits != 4 {
		t.Errorf("trace stats unexpected: %+v", a.Stats)
	}
}

// TestExplainServedGolden pins the full Explain rendering of a served query,
// including plan-cache and warm-start provenance.
func TestExplainServedGolden(t *testing.T) {
	e, d := serveEngine(t, 4)
	srv, err := NewServer(e, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	opts := ExecOptions{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}}
	t1, err := srv.Submit(d, convergentPlan(d, false), opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := t1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := srv.Submit(d, convergentPlan(d, false), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Wait(); err != nil {
		t.Fatal(err)
	}
	plan, err := e.Explain(t2.Query())
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`Scan lineitem (49152 rows; batch exec, 4 worker(s))
  0: ship80                   predicate sel=0.8000  input=1.0000
  1: disc<=.05                predicate sel=0.5484  input=0.8000
  2: qty<10                   predicate sel=0.1810  input=0.4388
  pipeline: filter+filter+filter [fused]
served: plan-cache hit; feedback warm-start order 2-1-0; fingerprint %s
predicted: BNT=64791 MP=33455 L3=15359 out=3904
`, cold.Served.Fingerprint)
	if got := plan.String(); got != want {
		t.Errorf("served explain drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainSortedServedGolden pins the full Explain rendering of a served
// *sorted* query: the order-by line (keys, direction, limit, physical
// strategy, per-core partial states) plus the complete serving provenance —
// plan-cache hit, feedback warm-start order, fingerprint. Every provenance
// field must be populated; an empty field here is a wiring regression
// between the plan cache, the ticket, and Explain.
func TestExplainSortedServedGolden(t *testing.T) {
	e, d := serveEngine(t, 4)
	srv, err := NewServer(e, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	opts := ExecOptions{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}}
	sorted := func() *Plan {
		return convergentPlan(d, false).OrderBy("l_extendedprice", Desc).Limit(10)
	}
	t1, err := srv.Submit(d, sorted(), opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := t1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := srv.Submit(d, sorted(), opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := t2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Served == nil || cold.Served.Fingerprint == "" {
		t.Fatalf("cold serving provenance incomplete: %+v", cold.Served)
	}
	if warm.Served == nil || !warm.Served.PlanCacheHit || !warm.Served.WarmStart {
		t.Fatalf("warm serving provenance incomplete: %+v", warm.Served)
	}
	if len(warm.Rows) != 10 || !reflect.DeepEqual(cold.Rows, warm.Rows) {
		t.Fatalf("served ordered rows wrong: %d cold vs %d warm", len(cold.Rows), len(warm.Rows))
	}
	plan, err := e.Explain(t2.Query())
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`Scan lineitem (49152 rows; batch exec, 4 worker(s))
  0: ship80                   predicate sel=0.8000  input=1.0000
  1: disc<=.05                predicate sel=0.5484  input=0.8000
  2: qty<10                   predicate sel=0.1810  input=0.4388
  order by l_extendedprice desc limit 10 (bounded heap) [4 partial state(s)]
  pipeline: filter+filter+filter [fused]
served: plan-cache hit; feedback warm-start order 2-1-0; fingerprint %s
predicted: BNT=64791 MP=33455 L3=15359 out=3904
`, cold.Served.Fingerprint)
	if got := plan.String(); got != want {
		t.Errorf("sorted served explain drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}
