package progopt

import (
	"fmt"
	"sort"
	"strings"

	"progopt/internal/columnar"
	"progopt/internal/core"
	"progopt/internal/exec"
)

// This file compiles join-graph plans — plans that declare equi-join edges
// with JoinOn. The graph is resolved into a tree rooted at the driving
// table; every edge then compiles to one or more *driving-row* operators: a
// (possibly multi-hop) FK probe from the driving table along the tree path
// to the edge's table, filtered by the predicates pushed down to that table.
// Because each operator filters the same driving-row stream independently,
// the full operator list stays permutable — the progressive and
// micro-adaptive modes reorder joins across the whole search space with the
// same machinery (and the same bit-identity guarantees) as filter
// permutations. The default order is the statistics-free greedy one:
// driving-table predicates first, then edges smallest-build-relation-first
// under the connectivity constraint (core.GreedyGraphOrder).

// graphEdge is one resolved JoinOn edge during compilation.
type graphEdge struct {
	from, to string
	// path is the probe path from the driving table: path[0] is a
	// driving-table column, each subsequent column belongs to the table the
	// previous one indexes, and the last one's values are row ids of to.
	path []*columnar.Column
	// rows is |to|.
	rows int
	// preds are the predicates pushed down to to, in declaration order.
	preds []*exec.Predicate
	// label is the JoinOn step's Label, applied to the edge's first operator.
	label string
}

// compileGraph resolves a plan's join graph against the data set and returns
// the compiled, greedy-ordered operator list plus the edge descriptions
// Explain reports (in greedy order).
func (e *Engine) compileGraph(d *Dataset, driving *columnar.Table, p *Plan) ([]exec.Op, []JoinEdgeExplain, error) {
	edges, err := resolveEdges(d, driving, p)
	if err != nil {
		return nil, nil, err
	}
	var drivingPreds []*exec.Predicate
	for _, step := range p.steps {
		if step.kind != stepFilter {
			continue
		}
		pred, err := routeFilter(d, driving, edges, step)
		if err != nil {
			return nil, nil, err
		}
		if pred != nil {
			drivingPreds = append(drivingPreds, pred)
		}
	}

	// Statistics-free greedy default order: driving predicates first (they
	// probe nothing), then edges smallest-build-first under connectivity.
	stats := make([]core.GraphJoin, len(edges))
	for i, ge := range edges {
		stats[i] = core.GraphJoin{Name: ge.to, From: ge.from, To: ge.to, BuildRows: ge.rows}
	}
	order, err := core.GreedyGraphOrder(driving.Name(), stats)
	if err != nil {
		return nil, nil, fmt.Errorf("progopt: ordering join graph: %w", err)
	}

	ops := make([]exec.Op, 0, len(drivingPreds)+len(edges))
	for _, pred := range drivingPreds {
		ops = append(ops, pred)
	}
	explains := make([]JoinEdgeExplain, 0, len(edges))
	for _, i := range order {
		ge := edges[i]
		eops, err := e.compileEdgeOps(ge)
		if err != nil {
			return nil, nil, err
		}
		ops = append(ops, eops...)
		explains = append(explains, JoinEdgeExplain{
			From:      ge.from,
			To:        ge.to,
			Key:       ge.path[len(ge.path)-1].Name(),
			BuildRows: ge.rows,
			Hops:      len(ge.path),
			Pushed:    len(ge.preds),
		})
	}
	return ops, explains, nil
}

// compileEdgeOps lowers one resolved edge into operators: one FK probe per
// pushed-down predicate (a table with several predicates repeats the probe —
// each operator stays an independent driving-row filter), or a single
// filterless probe when nothing was pushed down.
func (e *Engine) compileEdgeOps(ge graphEdge) ([]exec.Op, error) {
	key, via := ge.path[0], ge.path[1:]
	preds := ge.preds
	if len(preds) == 0 {
		preds = []*exec.Predicate{nil}
	}
	ops := make([]exec.Op, 0, len(preds))
	for i, pred := range preds {
		label := ""
		if i == 0 {
			label = ge.label
		}
		j, err := exec.NewFKJoinVia(e.cpu, key, via, ge.rows, pred, label)
		if err != nil {
			return nil, fmt.Errorf("progopt: join to %q: %w", ge.to, err)
		}
		ops = append(ops, j)
	}
	return ops, nil
}

// resolveEdges validates the plan's JoinOn steps against the data set and
// attaches them to the driving table, computing each edge's probe path.
// Every error names the offending table or column and the valid
// alternatives.
func resolveEdges(d *Dataset, driving *columnar.Table, p *Plan) ([]graphEdge, error) {
	var steps []planStep
	for _, s := range p.steps {
		if s.kind == stepEdge {
			steps = append(steps, s)
		}
	}
	joined := map[string]bool{driving.Name(): true}
	for _, s := range steps {
		for _, t := range []string{s.from, s.to} {
			if d.d.Table(t) == nil {
				return nil, fmt.Errorf("progopt: JoinOn(%q, %q, %q): unknown table %q (tables: %s)",
					s.from, s.key, s.to, t, strings.Join(datasetTableNames(d), ", "))
			}
		}
		if s.from == s.to {
			return nil, fmt.Errorf("progopt: JoinOn(%q, %q, %q): a table cannot join itself", s.from, s.key, s.to)
		}
		if joined[s.to] {
			return nil, fmt.Errorf("progopt: JoinOn(%q, %q, %q): table %q is already in the plan (each table joins once; the graph is a tree rooted at %q)",
				s.from, s.key, s.to, s.to, driving.Name())
		}
		joined[s.to] = true
	}

	// Attach edges to the growing tree: an edge is placeable once its From
	// table is the driving table or some placed edge's To. Declaration order
	// does not matter; unplaceable leftovers mean the graph is disconnected.
	paths := map[string][]*columnar.Column{driving.Name(): {}}
	edges := make([]graphEdge, 0, len(steps))
	pending := steps
	for len(pending) > 0 {
		next := pending[:0:0]
		progressed := false
		for _, s := range pending {
			base, ok := paths[s.from]
			if !ok {
				next = append(next, s)
				continue
			}
			progressed = true
			// The From table's columns: the driving table may be a
			// storage-decoded image, every other table lives in RAM.
			fromTab := driving
			if s.from != driving.Name() {
				fromTab = d.d.Table(s.from)
			}
			key, err := resolveJoinKey(d, fromTab, s)
			if err != nil {
				return nil, err
			}
			path := append(append([]*columnar.Column{}, base...), key)
			paths[s.to] = path
			edges = append(edges, graphEdge{
				from: s.from, to: s.to,
				path: path, rows: d.d.TableRows(s.to), label: s.label,
			})
		}
		if !progressed {
			var stuck []string
			for _, s := range next {
				stuck = append(stuck, fmt.Sprintf("%s→%s", s.from, s.to))
			}
			var reach []string
			for t := range paths {
				reach = append(reach, t)
			}
			sort.Strings(reach)
			return nil, fmt.Errorf("progopt: join graph is disconnected: edge(s) %s hang off tables the plan never reaches (reachable from %q: %s)",
				strings.Join(stuck, ", "), driving.Name(), strings.Join(reach, ", "))
		}
		pending = next
	}
	return edges, nil
}

// resolveJoinKey validates one edge's key column: it must exist in the From
// table, be integer-kind, and every value must be a valid row id of the To
// table — checked here, on the host, so a bad edge is a Compile error rather
// than a simulated-probe panic.
func resolveJoinKey(d *Dataset, fromTab *columnar.Table, s planStep) (*columnar.Column, error) {
	key := fromTab.Column(s.key)
	if key == nil {
		return nil, fmt.Errorf("progopt: JoinOn(%q, %q, %q): table %q has no column %q (columns: %s)",
			s.from, s.key, s.to, s.from, s.key, strings.Join(columnNames(fromTab), ", "))
	}
	if key.I64() == nil && key.I32() == nil {
		return nil, fmt.Errorf("progopt: JoinOn(%q, %q, %q): join key %q is %v, need an integer foreign-key column",
			s.from, s.key, s.to, s.key, key.Kind())
	}
	rows := d.d.TableRows(s.to)
	lo, hi := intColumnRange(key)
	if lo < 0 || hi >= int64(rows) {
		return nil, fmt.Errorf("progopt: JoinOn(%q, %q, %q): key values span [%d, %d], not valid row ids of %q (which has %d rows)",
			s.from, s.key, s.to, lo, hi, s.to, rows)
	}
	return key, nil
}

// routeFilter resolves one filter step in a graph plan: a driving-table
// predicate is returned for the caller to place, a predicate on a joined
// table is pushed down onto its edge (and nil returned), anything else is an
// error naming the owning table and the joined alternatives.
func routeFilter(d *Dataset, driving *columnar.Table, edges []graphEdge, step planStep) (*exec.Predicate, error) {
	if col := driving.Column(step.col); col != nil {
		return predicateFor(col, step)
	}
	for i := range edges {
		tab := d.d.Table(edges[i].to)
		if col := tab.Column(step.col); col != nil {
			pred, err := predicateFor(col, step)
			if err != nil {
				return nil, err
			}
			edges[i].preds = append(edges[i].preds, pred)
			return nil, nil
		}
	}
	joinedNames := []string{driving.Name()}
	for _, ge := range edges {
		joinedNames = append(joinedNames, ge.to)
	}
	sort.Strings(joinedNames)
	for _, name := range datasetTableNames(d) {
		if d.d.Table(name).Column(step.col) != nil {
			return nil, fmt.Errorf("progopt: filter column %q belongs to %q, which this plan does not join (joined tables: %s; add JoinOn(..., ..., %q) to reach it)",
				step.col, name, strings.Join(joinedNames, ", "), name)
		}
	}
	return nil, fmt.Errorf("progopt: unknown column %q in any joined table (%s)",
		step.col, strings.Join(joinedNames, ", "))
}

// intColumnRange scans an integer-kind column's min and max; an empty
// column reports the empty range (0, -1).
func intColumnRange(c *columnar.Column) (lo, hi int64) {
	if c.Len() == 0 {
		return 0, -1
	}
	if s := c.I64(); s != nil {
		lo, hi = s[0], s[0]
		for _, v := range s[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lo, hi
	}
	s := c.I32()
	lo32, hi32 := s[0], s[0]
	for _, v := range s[1:] {
		if v < lo32 {
			lo32 = v
		}
		if v > hi32 {
			hi32 = v
		}
	}
	return int64(lo32), int64(hi32)
}

// datasetTableNames returns the data set's table names, sorted.
func datasetTableNames(d *Dataset) []string {
	names := make([]string, 0, len(d.d.Tables()))
	for name := range d.d.Tables() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// columnNames returns a table's column names in declaration order.
func columnNames(t *columnar.Table) []string {
	names := make([]string, 0, t.NumCols())
	for _, c := range t.Columns() {
		names = append(names, c.Name())
	}
	return names
}
