package core

import "fmt"

// StartPointGen produces the start-point sequence of §4.3 for the non-linear
// optimization over a d-dimensional box: the null-hypothesis point first
// (overall selectivity split evenly over the predicates — C1 in the paper's
// Figure 9), then the 2^d vertices of the box, then, indefinitely, the
// centroid of the largest sub-space induced by splitting at every point
// emitted so far (C2..C6 in Figure 9).
//
// For d > maxSplitDims the 2^d box bookkeeping is replaced by a
// deterministic low-discrepancy (Halton) sequence over the box, which keeps
// the "explore the largest unseen region" intent without exponential state.
type StartPointGen struct {
	lo, hi    []float64
	null      []float64
	d         int
	stage     int // 0: null, 1: vertices, 2: centroids
	vertexIdx int
	boxes     []spBox
	halton    int
}

type spBox struct {
	lo, hi []float64
	vol    float64
}

// maxSplitDims bounds the dimensionality of the exact splitting scheme.
const maxSplitDims = 6

// NewStartPointGen builds a generator over the box [lo, hi] with the given
// null-hypothesis point (clamped into the box).
func NewStartPointGen(lo, hi, null []float64) (*StartPointGen, error) {
	d := len(lo)
	if d == 0 || len(hi) != d || len(null) != d {
		return nil, fmt.Errorf("core: start points need consistent dimensions (lo %d, hi %d, null %d)",
			len(lo), len(hi), len(null))
	}
	for i := range lo {
		if hi[i] < lo[i] {
			return nil, fmt.Errorf("core: dimension %d has empty range [%v,%v]", i, lo[i], hi[i])
		}
	}
	n := append([]float64(nil), null...)
	for i := range n {
		if n[i] < lo[i] {
			n[i] = lo[i]
		}
		if n[i] > hi[i] {
			n[i] = hi[i]
		}
	}
	g := &StartPointGen{
		lo:   append([]float64(nil), lo...),
		hi:   append([]float64(nil), hi...),
		null: n,
		d:    d,
	}
	if d <= maxSplitDims {
		g.boxes = []spBox{makeBox(g.lo, g.hi)}
	}
	return g, nil
}

func makeBox(lo, hi []float64) spBox {
	vol := 1.0
	for i := range lo {
		vol *= hi[i] - lo[i]
	}
	return spBox{lo: append([]float64(nil), lo...), hi: append([]float64(nil), hi...), vol: vol}
}

// Next returns the next start point. The sequence is infinite.
func (g *StartPointGen) Next() []float64 {
	switch {
	case g.stage == 0:
		g.stage = 1
		g.split(g.null)
		return append([]float64(nil), g.null...)
	case g.stage == 1:
		v := make([]float64, g.d)
		for i := 0; i < g.d; i++ {
			if g.vertexIdx&(1<<i) != 0 {
				v[i] = g.hi[i]
			} else {
				v[i] = g.lo[i]
			}
		}
		g.vertexIdx++
		if g.vertexIdx >= 1<<g.d || g.vertexIdx >= 64 {
			g.stage = 2
		}
		return v
	default:
		return g.centroidPoint()
	}
}

// split replaces the box containing pt with the 2^d sub-boxes induced by
// splitting at pt (no-op in Halton mode or when pt lies on a box face).
func (g *StartPointGen) split(pt []float64) {
	if g.boxes == nil {
		return
	}
	idx := -1
	for i, b := range g.boxes {
		inside := true
		for j := range pt {
			if pt[j] <= b.lo[j] || pt[j] >= b.hi[j] {
				inside = false
				break
			}
		}
		if inside {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	parent := g.boxes[idx]
	g.boxes = append(g.boxes[:idx], g.boxes[idx+1:]...)
	for mask := 0; mask < 1<<g.d; mask++ {
		lo := make([]float64, g.d)
		hi := make([]float64, g.d)
		for j := 0; j < g.d; j++ {
			if mask&(1<<j) != 0 {
				lo[j], hi[j] = pt[j], parent.hi[j]
			} else {
				lo[j], hi[j] = parent.lo[j], pt[j]
			}
		}
		b := makeBox(lo, hi)
		if b.vol > 0 {
			g.boxes = append(g.boxes, b)
		}
	}
}

func (g *StartPointGen) centroidPoint() []float64 {
	if g.boxes == nil {
		return g.haltonPoint()
	}
	best := -1
	for i, b := range g.boxes {
		if best < 0 || b.vol > g.boxes[best].vol {
			best = i
		}
	}
	if best < 0 {
		return g.haltonPoint()
	}
	b := g.boxes[best]
	c := make([]float64, g.d)
	for j := range c {
		c[j] = (b.lo[j] + b.hi[j]) / 2
	}
	g.split(c)
	return c
}

// primes for the Halton fallback.
var haltonPrimes = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

func (g *StartPointGen) haltonPoint() []float64 {
	g.halton++
	p := make([]float64, g.d)
	for j := 0; j < g.d; j++ {
		base := haltonPrimes[j%len(haltonPrimes)]
		f, r := 1.0, 0.0
		for i := g.halton; i > 0; i /= base {
			f /= float64(base)
			r += f * float64(i%base)
		}
		p[j] = g.lo[j] + r*(g.hi[j]-g.lo[j])
	}
	return p
}
