package core

import (
	"progopt/internal/hw/pmu"
	"progopt/internal/trace"
)

// Sample is one progressive-sampling observation: the PMU evidence an
// optimization cycle saw and the selectivity estimate it produced. The
// drivers retain a bounded series of these on Stats, so end-state statistics,
// the trace's optimizer track, and the ext-* figures all share one source of
// truth for the convergence timeline.
type Sample struct {
	// Cycles is the sampling clock relative to the run's start: the serial
	// drivers' core clock, or the accounted block clock of the parallel and
	// service drivers (comparable to the reported makespan).
	Cycles uint64
	// Tuples is how many tuples the sampled PMU delta covers.
	Tuples int
	// Counters is the interval's PMU delta projected to the paper's
	// four-counter group (plus the fixed counters).
	Counters pmu.Sample
	// Sels is the selectivity estimate in current-order space, nil when the
	// cycle did not estimate (e.g. an exploration probe).
	Sels []float64
}

// maxSampleHistory bounds Stats.Samples: the ring keeps the most recent
// observations and drops the oldest, so a long-running query cannot grow its
// stats without bound while short runs (every figure in the repo) retain the
// complete series.
const maxSampleHistory = 512

func (st *Stats) addSample(s Sample) {
	if len(st.Samples) >= maxSampleHistory {
		copy(st.Samples, st.Samples[1:])
		st.Samples = st.Samples[:maxSampleHistory-1]
	}
	st.Samples = append(st.Samples, s)
}

var paperGroup = pmu.PaperGroup()

// pmuArgs renders the paper-group counters of one sampled delta as trace
// args — the evidence attached to sampling and decision events.
func pmuArgs(s pmu.Sample) []trace.Arg {
	return []trace.Arg{
		trace.A("br_not_taken", s.Get(pmu.BrNotTaken)),
		trace.A("br_mp_taken", s.Get(pmu.BrMPTaken)),
		trace.A("br_mp_not_taken", s.Get(pmu.BrMPNotTaken)),
		trace.A("l3_access", s.Get(pmu.L3Access)),
	}
}

// traceSample emits one sampling observation on the optimizer decision track
// (at is the absolute clock of the sampling core, aligning the instant with
// that core's execution spans).
func traceSample(tr *trace.Track, at uint64, s Sample) {
	if tr == nil {
		return
	}
	args := append([]trace.Arg{trace.A("tuples", s.Tuples)}, pmuArgs(s.Counters)...)
	args = append(args, trace.A("est_sels", s.Sels))
	tr.Instant("sample", at, args...)
}

// traceDecision emits a plan-change event (reorder, revert, explore,
// impl-switch) with the counter evidence that triggered it.
func traceDecision(tr *trace.Track, name string, at uint64, evidence pmu.Sample, extra ...trace.Arg) {
	if tr == nil {
		return
	}
	tr.Instant(name, at, append(extra, pmuArgs(evidence)...)...)
}
