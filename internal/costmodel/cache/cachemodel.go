// Package cache implements the paper's cache cost model (§3.1): the Pirk et
// al. access patterns (single sequential, sequential with conditional read)
// extended to double-count random misses, the Manegold-style generic
// traversal primitives, and the alternative equi-join random-miss model the
// paper grounds in the external memory model (Eq. 1 and 2).
package cache

import (
	"fmt"
	"math"
)

// Geometry carries the cache parameters the model needs.
type Geometry struct {
	// LineSize is the cache-line size in bytes (the paper's B_i).
	LineSize int
	// CapacityLines is the capacity of the modelled level in lines (#_i).
	CapacityLines int
}

func (g Geometry) validate() error {
	if g.LineSize <= 0 {
		return fmt.Errorf("cachemodel: non-positive line size %d", g.LineSize)
	}
	if g.CapacityLines < 0 {
		return fmt.Errorf("cachemodel: negative capacity %d", g.CapacityLines)
	}
	return nil
}

// Lines returns the number of cache lines covering n values of the given
// width in a contiguous column.
func (g Geometry) Lines(n int, width int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Ceil(float64(n) * float64(width) / float64(g.LineSize))
}

// SeqAccesses models the single sequential traversal pattern of the first
// predicate's column: one random access for the first line, one sequential
// access per subsequent line — n*w/B line accesses in total.
func (g Geometry) SeqAccesses(n int, width int) float64 {
	return g.Lines(n, width)
}

// CondRead is the result of the sequential-scan-with-conditional-read
// pattern.
type CondRead struct {
	// Touched is the expected number of distinct lines demanded.
	Touched float64
	// Random is the expected number of random accesses: a demanded line whose
	// predecessor line was skipped.
	Random float64
	// Accesses is the modelled line-access count with the paper's
	// modification: random accesses are double counted, because the line the
	// prefetcher predicted goes unused while the demanded line costs a fresh
	// access.
	Accesses float64
}

// CondReadAccesses models a column read only for tuples that qualified all
// previous predicates, each independently with probability access (the
// selectivity product of the preceding predicates).
func (g Geometry) CondReadAccesses(n int, width int, access float64) CondRead {
	if access <= 0 || n <= 0 {
		return CondRead{}
	}
	if access > 1 {
		access = 1
	}
	lines := g.Lines(n, width)
	vpl := float64(g.LineSize) / float64(width)
	if vpl < 1 {
		vpl = 1
	}
	// Probability at least one of the ~vpl tuples on a line is accessed.
	pTouch := 1 - math.Pow(1-access, vpl)
	touched := lines * pTouch
	// A touched line is a random access when the preceding line was skipped.
	random := lines * pTouch * (1 - pTouch)
	return CondRead{
		Touched:  touched,
		Random:   random,
		Accesses: touched + random,
	}
}

// Yao returns the expected number of distinct lines of a relation touched by
// r uniformly random accesses — the paper's Eq. (2), evaluated over lines:
//
//	C_i = L * (1 - (1 - 1/L)^r)  with L = lines covering the relation.
func (g Geometry) Yao(relTuples, width, r int) float64 {
	lines := g.Lines(relTuples, width)
	if lines == 0 || r <= 0 {
		return 0
	}
	return lines * (1 - math.Pow(1-1/lines, float64(r)))
}

// RandomMisses is the paper's Eq. (1): the expected number of cache misses
// caused by r uniformly random accesses to a relation of relTuples tuples of
// the given width.
//
//	M_r = C_i                          if C_i < #_i   (fits: only cold misses)
//	M_r = r * (1 - #_i*B_i/(R.n*R.w))  otherwise      (hit probability is the
//	                                                   cached fraction)
func (g Geometry) RandomMisses(relTuples, width, r int) float64 {
	ci := g.Yao(relTuples, width, r)
	cap := float64(g.CapacityLines)
	if ci < cap {
		return ci
	}
	relBytes := float64(relTuples) * float64(width)
	if relBytes <= 0 {
		return 0
	}
	frac := 1 - cap*float64(g.LineSize)/relBytes
	if frac < 0 {
		frac = 0
	}
	return float64(r) * frac
}

// SeqMisses is the original Manegold sequential-traversal miss count: every
// covering line misses once (no reuse).
func (g Geometry) SeqMisses(relTuples, width int) float64 {
	return g.Lines(relTuples, width)
}

// JoinAccessKind distinguishes the two probe-side access patterns Eq. (1)
// separates with a multiplicative factor.
type JoinAccessKind int

// Probe-side access patterns for JoinMisses.
const (
	// JoinRandom means probe keys address the build side uniformly at random
	// (e.g. lineitem→part).
	JoinRandom JoinAccessKind = iota
	// JoinCoClustered means probe keys are (nearly) sorted so build-side
	// accesses are sequential (e.g. lineitem→orders on a bulk-loaded table).
	JoinCoClustered
)

// JoinMisses predicts the build-side miss count for an equi-join probing r
// times into a relation of relTuples tuples of the given width: the paper's
// §5.6 rule combines Eq. (1) for random probes with the sequential model for
// co-clustered probes.
func (g Geometry) JoinMisses(kind JoinAccessKind, relTuples, width, r int) float64 {
	switch kind {
	case JoinRandom:
		return g.RandomMisses(relTuples, width, r)
	case JoinCoClustered:
		// Sequential over the touched prefix: at most one miss per line, and
		// no more lines than probes.
		lines := g.SeqMisses(relTuples, width)
		if float64(r) < lines {
			return float64(r)
		}
		return lines
	default:
		panic(fmt.Sprintf("cachemodel: unknown join access kind %d", int(kind)))
	}
}

// NewGeometry validates and returns a Geometry.
func NewGeometry(lineSize, capacityLines int) (Geometry, error) {
	g := Geometry{LineSize: lineSize, CapacityLines: capacityLines}
	if err := g.validate(); err != nil {
		return Geometry{}, err
	}
	return g, nil
}

// MustGeometry is NewGeometry that panics on invalid input.
func MustGeometry(lineSize, capacityLines int) Geometry {
	g, err := NewGeometry(lineSize, capacityLines)
	if err != nil {
		panic(err)
	}
	return g
}
