// Package tpch generates TPC-H-shaped data sets from scratch: lineitem,
// orders, and part tables with dbgen's value domains and the structural
// properties the paper's experiments exploit — lineitem is bulk-loaded in
// orderkey order and therefore weakly clustered on shipdate (§1), lineitem
// and orders are co-clustered through l_orderkey (§5.6), and l_partkey is
// uniformly random so part accesses have no locality.
//
// The generator targets row counts rather than TPC-H scale factors: the
// simulated hardware profile scales caches down by the same factor as the
// data (see DESIGN.md), so ratios match the paper's SF-100 setup.
package tpch

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"progopt/internal/columnar"
	"progopt/internal/datagen"
)

// Date domain constants (dbgen: orders span 1992-01-01 .. 1998-08-02,
// shipdate = orderdate + up to 121 days).
var (
	// StartDate is the first order date, 1992-01-01, as days since epoch.
	StartDate = DaysSinceEpoch(1992, time.January, 1)
	// EndOrderDate is the last order date, 1998-08-02.
	EndOrderDate = DaysSinceEpoch(1998, time.August, 2)
	// EndShipDate is the last possible ship date.
	EndShipDate = EndOrderDate + 121
)

// Q6 constants from the benchmark query text.
const (
	// Q6QuantityBound is Q6's "l_quantity < 24".
	Q6QuantityBound = 24
	// Q6DiscountLo is "l_discount >= 0.06 - 0.01".
	Q6DiscountLo = 0.05
	// Q6DiscountHi is "l_discount <= 0.06 + 0.01".
	Q6DiscountHi = 0.07
	// Q6ShipdateLo is "l_shipdate >= 1994-01-01" in the original query.
	q6ShipYear = 1994
)

// Q6ShipdateLo returns the original query's lower shipdate bound.
func Q6ShipdateLo() int32 { return DaysSinceEpoch(q6ShipYear, time.January, 1) }

// Q6ShipdateHi returns the original query's exclusive upper shipdate bound
// (one year after the lower bound).
func Q6ShipdateHi() int32 { return DaysSinceEpoch(q6ShipYear+1, time.January, 1) }

// DaysSinceEpoch converts a calendar date to days since 1970-01-01.
func DaysSinceEpoch(year int, month time.Month, day int) int32 {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return int32(t.Unix() / 86400)
}

// MonthID returns a monotone month index (year*12+month) for a day count,
// used to build the paper's "clustered" data set (shuffle within a month).
func MonthID(days int32) int32 {
	t := time.Unix(int64(days)*86400, 0).UTC()
	return int32(t.Year())*12 + int32(t.Month()) - 1
}

// Config controls generation.
type Config struct {
	// Lineitems is the lineitem row count (orders ≈ Lineitems/4, parts ≈
	// Lineitems/30, the dbgen ratios).
	Lineitems int
	// Seed makes generation deterministic.
	Seed int64
}

// Dataset bundles the generated tables: the lineitem fact table plus the
// orders, part, customer, and nation dimensions reachable through declared
// foreign keys (lineitem→orders, lineitem→part, orders→customer,
// customer→nation).
type Dataset struct {
	Lineitem *columnar.Table
	Orders   *columnar.Table
	Part     *columnar.Table
	Customer *columnar.Table
	Nation   *columnar.Table
	// NumOrders, NumParts, NumCustomers, and NumNations are the build-side
	// row counts.
	NumOrders    int
	NumParts     int
	NumCustomers int
	NumNations   int
}

// NumNationRows is the fixed nation-table cardinality (dbgen's 25 nations).
const NumNationRows = 25

// Tables returns every table of the data set keyed by name.
func (d *Dataset) Tables() map[string]*columnar.Table {
	return map[string]*columnar.Table{
		"lineitem": d.Lineitem,
		"orders":   d.Orders,
		"part":     d.Part,
		"customer": d.Customer,
		"nation":   d.Nation,
	}
}

// Table returns the named table, nil when unknown.
func (d *Dataset) Table(name string) *columnar.Table { return d.Tables()[name] }

// TableRows returns the named table's cardinality, 0 when unknown.
func (d *Dataset) TableRows(name string) int {
	switch name {
	case "lineitem":
		return d.Lineitem.NumRows()
	case "orders":
		return d.NumOrders
	case "part":
		return d.NumParts
	case "customer":
		return d.NumCustomers
	case "nation":
		return d.NumNations
	}
	return 0
}

// Generate builds a data set in natural (bulk-load) order: lineitem rows are
// emitted grouped by ascending orderkey with order dates increasing over the
// table, so shipdate is weakly clustered — the situation the paper's
// introduction motivates.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Lineitems <= 0 {
		return nil, fmt.Errorf("tpch: non-positive lineitem count %d", cfg.Lineitems)
	}
	rng := datagen.NewRNG(cfg.Seed)
	n := cfg.Lineitems
	numOrders := n/4 + 1
	numParts := n/30 + 1

	// Orders: orderkey i (0-based), orderdate increasing with jitter
	// (bulk-loaded), totalprice uniform.
	oDate := make([]int32, numOrders)
	span := int64(EndOrderDate - StartDate)
	for i := range oDate {
		base := StartDate + int32(int64(i)*span/int64(numOrders))
		jitter := int32(rng.Intn(15)) - 7
		d := base + jitter
		if d < StartDate {
			d = StartDate
		}
		if d > EndOrderDate {
			d = EndOrderDate
		}
		oDate[i] = d
	}
	oKey := datagen.Ascending(numOrders)
	oTotal := datagen.UniformFloat64(rng, numOrders, 1000, 500000)

	orders := columnar.NewTable("orders")
	orders.MustAddColumn(columnar.NewInt64("o_orderkey", oKey))
	orders.MustAddColumn(columnar.NewDate("o_orderdate", oDate))
	orders.MustAddColumn(columnar.NewFloat64("o_totalprice", oTotal))

	// Part: partkey ascending, size and retailprice uniform.
	part := columnar.NewTable("part")
	part.MustAddColumn(columnar.NewInt64("p_partkey", datagen.Ascending(numParts)))
	part.MustAddColumn(columnar.NewInt32("p_size", datagen.UniformInt32(rng, numParts, 1, 50)))
	part.MustAddColumn(columnar.NewFloat64("p_retailprice", datagen.UniformFloat64(rng, numParts, 900, 2100)))

	// Lineitem: 1..7 rows per order until n rows are emitted.
	lOrderkey := make([]int64, 0, n)
	lPartkey := make([]int64, 0, n)
	lQuantity := make([]int64, 0, n)
	lPrice := make([]float64, 0, n)
	lDiscount := make([]float64, 0, n)
	lTax := make([]float64, 0, n)
	lShipdate := make([]int32, 0, n)
	order := 0
	for len(lOrderkey) < n {
		per := 1 + rng.Intn(7)
		if order >= numOrders {
			order = numOrders - 1
		}
		for k := 0; k < per && len(lOrderkey) < n; k++ {
			lOrderkey = append(lOrderkey, int64(order))
			lPartkey = append(lPartkey, rng.Int63n(int64(numParts)))
			q := 1 + rng.Int63n(50)
			lQuantity = append(lQuantity, q)
			lPrice = append(lPrice, float64(q)*(900+rng.Float64()*1200))
			lDiscount = append(lDiscount, float64(rng.Intn(11))/100)
			lTax = append(lTax, float64(rng.Intn(9))/100)
			ship := oDate[order] + 1 + int32(rng.Intn(121))
			lShipdate = append(lShipdate, ship)
		}
		order++
	}

	lineitem := columnar.NewTable("lineitem")
	lineitem.MustAddColumn(columnar.NewInt64("l_orderkey", lOrderkey))
	lineitem.MustAddColumn(columnar.NewInt64("l_partkey", lPartkey))
	lineitem.MustAddColumn(columnar.NewInt64("l_quantity", lQuantity))
	lineitem.MustAddColumn(columnar.NewFloat64("l_extendedprice", lPrice))
	lineitem.MustAddColumn(columnar.NewFloat64("l_discount", lDiscount))
	lineitem.MustAddColumn(columnar.NewFloat64("l_tax", lTax))
	lineitem.MustAddColumn(columnar.NewDate("l_shipdate", lShipdate))

	// Customer and nation dimensions plus the orders→customer foreign key.
	// Generated from a separate RNG stream, after everything above, so the
	// lineitem/orders/part values of earlier generator versions reproduce
	// bit for bit for any given seed.
	rng2 := datagen.NewRNG(cfg.Seed ^ 0x5ca1ab1e)
	numCustomers := numOrders/10 + 1
	orders.MustAddColumn(columnar.NewInt64("o_custkey", datagen.UniformInt64(rng2, numOrders, 0, int64(numCustomers)-1)))

	customer := columnar.NewTable("customer")
	customer.MustAddColumn(columnar.NewInt64("c_custkey", datagen.Ascending(numCustomers)))
	customer.MustAddColumn(columnar.NewFloat64("c_acctbal", datagen.UniformFloat64(rng2, numCustomers, -999, 9999)))
	customer.MustAddColumn(columnar.NewInt32("c_mktsegment", datagen.UniformInt32(rng2, numCustomers, 0, 4)))
	customer.MustAddColumn(columnar.NewInt64("c_nationkey", datagen.UniformInt64(rng2, numCustomers, 0, NumNationRows-1)))

	nation := columnar.NewTable("nation")
	nation.MustAddColumn(columnar.NewInt64("n_nationkey", datagen.Ascending(NumNationRows)))
	nation.MustAddColumn(columnar.NewInt32("n_regionkey", datagen.UniformInt32(rng2, NumNationRows, 0, 4)))

	return &Dataset{
		Lineitem:     lineitem,
		Orders:       orders,
		Part:         part,
		Customer:     customer,
		Nation:       nation,
		NumOrders:    numOrders,
		NumParts:     numParts,
		NumCustomers: numCustomers,
		NumNations:   NumNationRows,
	}, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config) *Dataset {
	d, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Ordering selects how lineitem rows are physically ordered, the axis of the
// paper's Figure 13.
type Ordering int

// Lineitem orderings.
const (
	// OrderingNatural keeps the bulk-load order (weakly clustered shipdate,
	// co-clustered with orders).
	OrderingNatural Ordering = iota
	// OrderingShipdateSorted sorts rows ascending by l_shipdate (Fig 13a).
	OrderingShipdateSorted
	// OrderingClusteredMonth shuffles rows within their shipdate month,
	// keeping months in order (Fig 13b).
	OrderingClusteredMonth
	// OrderingRandom fully shuffles rows (Fig 13c).
	OrderingRandom
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case OrderingNatural:
		return "natural"
	case OrderingShipdateSorted:
		return "sorted"
	case OrderingClusteredMonth:
		return "clustered"
	case OrderingRandom:
		return "random"
	}
	return fmt.Sprintf("ordering(%d)", int(o))
}

// ReorderLineitem returns a copy of the data set with lineitem rows
// physically reordered. Orders and part tables are shared (their order never
// changes in the paper's experiments).
func (d *Dataset) ReorderLineitem(o Ordering, seed int64) *Dataset {
	rng := datagen.NewRNG(seed)
	ship := d.Lineitem.Column("l_shipdate").I32()
	n := len(ship)
	var perm []int
	switch o {
	case OrderingNatural:
		perm = identityPerm(n)
	case OrderingShipdateSorted:
		perm = identityPerm(n)
		sort.SliceStable(perm, func(a, b int) bool { return ship[perm[a]] < ship[perm[b]] })
	case OrderingClusteredMonth:
		// Sort by shipdate first, then shuffle within months.
		sorted := identityPerm(n)
		sort.SliceStable(sorted, func(a, b int) bool { return ship[sorted[a]] < ship[sorted[b]] })
		months := make([]int32, n)
		for i, p := range sorted {
			months[i] = MonthID(ship[p])
		}
		within := datagen.GroupPermutation(rng, months)
		perm = make([]int, n)
		for i := range perm {
			perm[i] = sorted[within[i]]
		}
	case OrderingRandom:
		perm = rng.Perm(n)
	default:
		panic(fmt.Sprintf("tpch: unknown ordering %d", int(o)))
	}
	return d.withLineitem(permuteTable(d.Lineitem, perm))
}

// ReorderLineitemWindow returns a copy with lineitem rows produced by a
// windowed Knuth shuffle over the shipdate-sorted order: window 1 is fully
// sorted, window >= n fully random, and intermediate windows sweep the
// sortedness spectrum of the paper's Figure 14.
func (d *Dataset) ReorderLineitemWindow(window int, seed int64) *Dataset {
	rng := datagen.NewRNG(seed)
	ship := d.Lineitem.Column("l_shipdate").I32()
	n := len(ship)
	sorted := identityPerm(n)
	sort.SliceStable(sorted, func(a, b int) bool { return ship[sorted[a]] < ship[sorted[b]] })
	win := datagen.WindowPermutation(rng, n, window)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = sorted[win[i]]
	}
	return d.withLineitem(permuteTable(d.Lineitem, perm))
}

// ShuffleLineitemWindow returns a copy with lineitem rows permuted by a
// windowed Knuth shuffle over the CURRENT row order (unlike
// ReorderLineitemWindow, which shuffles over the shipdate-sorted order).
// Applied to a natural-order data set this degrades lineitem/orders
// co-clustering progressively: window 1 keeps it intact, window >= n
// destroys it — the §5.5 sortedness axis for join locality.
func (d *Dataset) ShuffleLineitemWindow(window int, seed int64) *Dataset {
	rng := datagen.NewRNG(seed)
	n := d.Lineitem.NumRows()
	perm := datagen.WindowPermutation(rng, n, window)
	return d.withLineitem(permuteTable(d.Lineitem, perm))
}

// withLineitem returns a copy of the data set with the lineitem table
// replaced; every dimension table is shared (their order never changes in
// the paper's experiments).
func (d *Dataset) withLineitem(l *columnar.Table) *Dataset {
	cp := *d
	cp.Lineitem = l
	return &cp
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func permuteTable(t *columnar.Table, perm []int) *columnar.Table {
	out := columnar.NewTable(t.Name())
	for _, c := range t.Columns() {
		switch c.Kind() {
		case columnar.Int64:
			out.MustAddColumn(columnar.NewInt64(c.Name(), datagen.ApplyPermInt64(c.I64(), perm)))
		case columnar.Int32:
			out.MustAddColumn(columnar.NewInt32(c.Name(), datagen.ApplyPermInt32(c.I32(), perm)))
		case columnar.Date:
			out.MustAddColumn(columnar.NewDate(c.Name(), datagen.ApplyPermInt32(c.I32(), perm)))
		case columnar.Float64:
			out.MustAddColumn(columnar.NewFloat64(c.Name(), datagen.ApplyPermFloat64(c.F64(), perm)))
		}
	}
	return out
}

// QuantileInt32 returns the q-quantile (0..1) of the column's values; used to
// pick shipdate cutoffs that hit a target selectivity exactly on the
// generated data.
func QuantileInt32(c *columnar.Column, q float64) int32 {
	vals := append([]int32(nil), c.I32()...)
	slices.Sort(vals)
	return QuantileSortedInt32(vals, q)
}

// QuantileSortedInt32 is QuantileInt32 over values already sorted ascending;
// callers that probe many quantiles of one column can sort once and reuse it.
func QuantileSortedInt32(vals []int32, q float64) int32 {
	if len(vals) == 0 {
		return 0
	}
	idx := int(q * float64(len(vals)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

// ShipdateCutoff returns a "l_shipdate <= cutoff" bound whose selectivity on
// this data set is approximately sel in [0,1]. sel smaller than 1/n yields a
// cutoff before the first ship date (selectivity 0 on most draws).
func (d *Dataset) ShipdateCutoff(sel float64) int32 {
	if sel <= 0 {
		return StartDate - 1
	}
	if sel >= 1 {
		return EndShipDate
	}
	return QuantileInt32(d.Lineitem.Column("l_shipdate"), sel)
}
