package core

import (
	"testing"

	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

func parallelProgFixture(t *testing.T) *exec.Query {
	t.Helper()
	d := tpch.MustGenerate(tpch.Config{Lineitems: 60000, Seed: 4})
	q, err := exec.Q6(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024).BindQuery(q); err != nil {
		t.Fatal(err)
	}
	// Worst-ish initial order: reversed.
	qo, err := q.WithOrder([]int{4, 3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	return qo
}

// TestParallelProgressiveMatchesSerialResults: re-optimizing from merged
// per-core counters never changes query results, for any worker count.
func TestParallelProgressiveMatchesSerialResults(t *testing.T) {
	q := parallelProgFixture(t)
	serialEng := exec.MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024)
	serial, _, err := RunProgressive(serialEng, q, Options{ReopInterval: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		p, err := exec.NewParallel(cpu.ScaledXeon(), workers, 1024)
		if err != nil {
			t.Fatal(err)
		}
		res, st, err := RunParallelProgressive(p, q, Options{ReopInterval: 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.Qualifying != serial.Qualifying || res.Sum != serial.Sum {
			t.Errorf("workers=%d: results %d/%v, serial %d/%v",
				workers, res.Qualifying, res.Sum, serial.Qualifying, serial.Sum)
		}
		if st.Workers != workers {
			t.Errorf("stats workers = %d, want %d", st.Workers, workers)
		}
		if st.Blocks == 0 || st.Vectors != res.Vectors {
			t.Errorf("stats blocks=%d vectors=%d (result vectors %d)", st.Blocks, st.Vectors, res.Vectors)
		}
	}
}

// TestParallelProgressiveReoptimizes: merged counters drive real reorders
// away from the worst initial PEO, and the adapted run beats the fixed-order
// parallel baseline.
func TestParallelProgressiveReoptimizes(t *testing.T) {
	q := parallelProgFixture(t)
	p, err := exec.NewParallel(cpu.ScaledXeon(), 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := exec.NewParallel(cpu.ScaledXeon(), 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	prog, st, err := RunParallelProgressive(p2, q, Options{ReopInterval: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Optimizations == 0 {
		t.Error("no optimization cycles ran")
	}
	if st.Reorders == 0 {
		t.Error("worst-order query never reordered")
	}
	if prog.Cycles >= base.Cycles {
		t.Errorf("parallel progressive %d cycles did not beat fixed worst order %d", prog.Cycles, base.Cycles)
	}
}
