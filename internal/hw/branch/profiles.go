package branch

import "fmt"

// Arch names a modelled microarchitecture, matching the CPUs of the paper's
// Figures 3 and 6.
type Arch string

// Modelled microarchitectures.
const (
	// ArchNehalem is modelled by a gshare predictor; the paper observes it is
	// the only tested Intel part that deviates from the saturating model.
	ArchNehalem Arch = "nehalem"
	// ArchSandyBridge is modelled by a six-state saturating counter.
	ArchSandyBridge Arch = "sandy-bridge"
	// ArchIvyBridge is modelled by a six-state saturating counter; the paper's
	// evaluation machine (Xeon E5-2630 v2) is an Ivy Bridge EP.
	ArchIvyBridge Arch = "ivy-bridge"
	// ArchBroadwell is modelled by a six-state saturating counter.
	ArchBroadwell Arch = "broadwell"
	// ArchAMD is modelled by a four-state (classic two-bit) saturating
	// counter, the paper's best fit for AMD parts.
	ArchAMD Arch = "amd"
)

// ForArch returns the predictor modelling the given microarchitecture.
func ForArch(a Arch) (Predictor, error) {
	switch a {
	case ArchNehalem:
		return NewGshare(12, 8)
	case ArchSandyBridge, ArchIvyBridge, ArchBroadwell:
		return NewSaturating(6, BiasNone)
	case ArchAMD:
		return NewSaturating(4, BiasNone)
	default:
		return nil, fmt.Errorf("branch: unknown architecture %q", a)
	}
}

// Arches lists all modelled microarchitectures in the order the paper's
// Figure 6 presents them.
func Arches() []Arch {
	return []Arch{ArchNehalem, ArchSandyBridge, ArchIvyBridge, ArchBroadwell, ArchAMD}
}
