// Package exec implements the vectorized query execution engine: a
// multi-predicate branching scan (the compiled selection loop of §2.1),
// foreign-key join operators with locality-faithful probe patterns, sum
// aggregation, and an enumerator-instrumented scan variant for the overhead
// comparison of §5.7. Every column access and every conditional branch is
// mirrored into the simulated CPU, so the PMU counters the progressive
// optimizer samples reflect exactly what real hardware would count.
package exec

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/hw/cpu"
)

// Op is one per-tuple filtering operator in a query's evaluation order. The
// engine, not the operator, retires the conditional branch that follows the
// evaluation — branch sites belong to positions in the compiled loop.
type Op interface {
	// Name labels the operator in plans and reports.
	Name() string
	// Eval performs the operator's loads and computation for row on c and
	// reports whether the tuple survives.
	Eval(c *cpu.CPU, row int) bool
	// Width returns the byte width of the operator's primary input column
	// (used by the cost models).
	Width() int
}

// CmpOp is a comparison operator for predicates.
type CmpOp int

// Comparison operators.
const (
	// LE is <=.
	LE CmpOp = iota
	// LT is <.
	LT
	// GE is >=.
	GE
	// GT is >.
	GT
	// EQ is ==.
	EQ
)

// String returns the operator's SQL spelling.
func (o CmpOp) String() string {
	switch o {
	case LE:
		return "<="
	case LT:
		return "<"
	case GE:
		return ">="
	case GT:
		return ">"
	case EQ:
		return "="
	}
	return fmt.Sprintf("cmp(%d)", int(o))
}

// Predicate compares one column against a constant. Integer-kind columns
// (Int64, Int32, Date) compare against I; Float64 columns against F.
type Predicate struct {
	// Col is the input column; it must be bound before execution.
	Col *columnar.Column
	// Op is the comparison.
	Op CmpOp
	// I is the bound for integer-kind columns.
	I int64
	// F is the bound for Float64 columns.
	F float64
	// ExtraCostInstr models an expensive predicate (e.g. a string match or
	// UDF): additional instructions retired per evaluation.
	ExtraCostInstr int
	// Label overrides the generated name.
	Label string
}

// Name implements Op.
func (p *Predicate) Name() string {
	if p.Label != "" {
		return p.Label
	}
	if p.Col.Kind() == columnar.Float64 {
		return fmt.Sprintf("%s %s %g", p.Col.Name(), p.Op, p.F)
	}
	return fmt.Sprintf("%s %s %d", p.Col.Name(), p.Op, p.I)
}

// Width implements Op.
func (p *Predicate) Width() int { return p.Col.Width() }

// Eval implements Op: one load of the column value plus any extra cost, then
// the comparison (the compare+jump instructions are charged by the engine's
// branch step).
func (p *Predicate) Eval(c *cpu.CPU, row int) bool {
	c.Load(p.Col.Addr(row))
	if p.ExtraCostInstr > 0 {
		c.Exec(p.ExtraCostInstr)
	}
	if p.Col.Kind() == columnar.Float64 {
		v := p.Col.F64()[row]
		switch p.Op {
		case LE:
			return v <= p.F
		case LT:
			return v < p.F
		case GE:
			return v >= p.F
		case GT:
			return v > p.F
		case EQ:
			return v == p.F
		}
	} else {
		v := p.Col.Int64At(row)
		switch p.Op {
		case LE:
			return v <= p.I
		case LT:
			return v < p.I
		case GE:
			return v >= p.I
		case GT:
			return v > p.I
		case EQ:
			return v == p.I
		}
	}
	panic(fmt.Sprintf("exec: unknown comparison %d", int(p.Op)))
}

// TrueSelectivity scans the column directly (no simulation) and returns the
// predicate's standalone selectivity; used by experiments to label
// configurations and by tests as ground truth.
func (p *Predicate) TrueSelectivity() float64 {
	n := p.Col.Len()
	if n == 0 {
		return 0
	}
	match := 0
	for i := 0; i < n; i++ {
		if p.passRaw(i) {
			match++
		}
	}
	return float64(match) / float64(n)
}

func (p *Predicate) passRaw(row int) bool {
	if p.Col.Kind() == columnar.Float64 {
		v := p.Col.F64()[row]
		switch p.Op {
		case LE:
			return v <= p.F
		case LT:
			return v < p.F
		case GE:
			return v >= p.F
		case GT:
			return v > p.F
		case EQ:
			return v == p.F
		}
	}
	v := p.Col.Int64At(row)
	switch p.Op {
	case LE:
		return v <= p.I
	case LT:
		return v < p.I
	case GE:
		return v >= p.I
	case GT:
		return v > p.I
	case EQ:
		return v == p.I
	}
	return false
}
