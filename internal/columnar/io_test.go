package columnar

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, tb *Table) *Table {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTable(&buf, tb); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatalf("ReadTable: %v", err)
	}
	return got
}

func TestIORoundTripAllKinds(t *testing.T) {
	tb := NewTable("mixed")
	tb.MustAddColumn(NewInt64("i", []int64{-1, 0, 1, math.MaxInt64, math.MinInt64}))
	tb.MustAddColumn(NewInt32("j", []int32{-7, 0, 7, math.MaxInt32, math.MinInt32}))
	tb.MustAddColumn(NewFloat64("f", []float64{-0.5, 0, 1e300, math.Inf(1), math.SmallestNonzeroFloat64}))
	tb.MustAddColumn(NewDate("d", []int32{0, 8036, 10592, -365, 20000}))

	got := roundTrip(t, tb)
	if got.Name() != "mixed" || got.NumCols() != 4 || got.NumRows() != 5 {
		t.Fatalf("shape lost: %q %d cols %d rows", got.Name(), got.NumCols(), got.NumRows())
	}
	for _, name := range []string{"i", "j", "f", "d"} {
		want, have := tb.Column(name), got.Column(name)
		if have == nil {
			t.Fatalf("column %q missing", name)
		}
		if have.Kind() != want.Kind() {
			t.Errorf("column %q kind %v, want %v", name, have.Kind(), want.Kind())
		}
		for i := 0; i < want.Len(); i++ {
			if want.Kind() == Float64 {
				if math.Float64bits(want.Float64At(i)) != math.Float64bits(have.Float64At(i)) {
					t.Errorf("column %q row %d: %v != %v", name, i, have.Float64At(i), want.Float64At(i))
				}
			} else if want.Int64At(i) != have.Int64At(i) {
				t.Errorf("column %q row %d: %v != %v", name, i, have.Int64At(i), want.Int64At(i))
			}
		}
	}
}

func TestIOEmptyTable(t *testing.T) {
	got := roundTrip(t, NewTable("empty"))
	if got.Name() != "empty" || got.NumCols() != 0 {
		t.Error("empty table round trip failed")
	}
}

func TestIOBadInputs(t *testing.T) {
	if _, err := ReadTable(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTable(strings.NewReader("JUNKJUNKJUNK")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated valid prefix.
	var buf bytes.Buffer
	tb := NewTable("t")
	tb.MustAddColumn(NewInt64("a", []int64{1, 2, 3}))
	if err := WriteTable(&buf, tb); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTable(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input accepted")
	}
}

func TestIORoundTripProperty(t *testing.T) {
	f := func(i64 []int64, f64 []float64) bool {
		// Equalize lengths to satisfy the table invariant.
		n := len(i64)
		if len(f64) < n {
			n = len(f64)
		}
		tb := NewTable("prop")
		tb.MustAddColumn(NewInt64("a", i64[:n]))
		tb.MustAddColumn(NewFloat64("b", f64[:n]))
		var buf bytes.Buffer
		if err := WriteTable(&buf, tb); err != nil {
			return false
		}
		got, err := ReadTable(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if got.Column("a").Int64At(i) != i64[i] {
				return false
			}
			if math.Float64bits(got.Column("b").Float64At(i)) != math.Float64bits(f64[i]) {
				return false
			}
		}
		return got.NumRows() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
