package branch

import "fmt"

// Saturating is an n-state saturating-counter predictor with one counter per
// branch site. States 0..TakenStates-1 (counted from the "taken" end) predict
// taken; the remaining states predict not taken. A taken branch moves the
// counter one state toward the taken end, a not-taken branch one state toward
// the not-taken end; both ends saturate.
//
// This is exactly the process whose stationary behaviour the paper models
// with a Markov chain (§3.2, Figure 5): the chain's transition probability is
// the branch's taken probability, and the paper's six-state chain corresponds
// to Saturating{States: 6, TakenStates: 3}.
type Saturating struct {
	states      int
	takenStates int
	initState   int8
	counters    []int8
	name        string
}

// Bias selects how an odd state count splits between taken- and
// not-taken-predicting states, mirroring the paper's "+1T" and "+1NT" chain
// variants in Figure 3.
type Bias int

const (
	// BiasNone splits states evenly; valid only for even state counts.
	BiasNone Bias = iota
	// BiasTaken gives the extra state of an odd count to the taken side (+1T).
	BiasTaken
	// BiasNotTaken gives the extra state to the not-taken side (+1NT).
	BiasNotTaken
)

// NewSaturating returns a saturating predictor with the given total number of
// states (2..16) and bias. Even state counts must use BiasNone; odd counts
// must use BiasTaken or BiasNotTaken.
func NewSaturating(states int, bias Bias) (*Saturating, error) {
	if states < 2 || states > 16 {
		return nil, fmt.Errorf("branch: state count %d out of range [2,16]", states)
	}
	var taken int
	switch {
	case states%2 == 0 && bias == BiasNone:
		taken = states / 2
	case states%2 == 1 && bias == BiasTaken:
		taken = states/2 + 1
	case states%2 == 1 && bias == BiasNotTaken:
		taken = states / 2
	default:
		return nil, fmt.Errorf("branch: state count %d incompatible with bias %v", states, bias)
	}
	name := fmt.Sprintf("saturating-%d", states)
	switch bias {
	case BiasTaken:
		name += "+1T"
	case BiasNotTaken:
		name += "+1NT"
	}
	s := &Saturating{
		states:      states,
		takenStates: taken,
		// Start on the weakest taken state: real predictors commonly
		// predict backward branches (loop bodies) taken on first sight.
		initState: int8(taken - 1),
		name:      name,
	}
	s.Reset()
	return s, nil
}

// MustSaturating is NewSaturating that panics on invalid configuration; for
// use with compile-time-constant arguments.
func MustSaturating(states int, bias Bias) *Saturating {
	p, err := NewSaturating(states, bias)
	if err != nil {
		panic(err)
	}
	return p
}

// States returns the total number of counter states.
func (s *Saturating) States() int { return s.states }

// TakenStates returns how many states predict taken.
func (s *Saturating) TakenStates() int { return s.takenStates }

// Observe implements Predictor. State convention: 0 is "strong taken",
// states-1 is "strong not taken"; values below takenStates predict taken.
// Kept within the inline budget: it runs once per simulated conditional
// branch.
func (s *Saturating) Observe(site int, taken bool) Outcome {
	if site >= len(s.counters) {
		s.grow(site)
	}
	st := int(s.counters[site])
	pt := st < s.takenStates
	if taken {
		if st > 0 {
			s.counters[site] = int8(st - 1)
		}
	} else if st < s.states-1 {
		s.counters[site] = int8(st + 1)
	}
	return Outcome{PredictedTaken: pt, Taken: taken}
}

// ObserveN observes n consecutive branches at the given site, all with the
// same direction, and returns how many of them were mispredicted. State and
// counter effects are exactly those of n Observe calls; because a saturating
// counter walks monotonically toward the observed direction, both the final
// state and the misprediction count have closed forms and the whole batch
// costs O(1). This is the hot path of batch kernels retiring a vector's loop
// back-edge (always taken) in one call.
func (s *Saturating) ObserveN(site int, taken bool, n int) int {
	if n <= 0 {
		return 0
	}
	if site >= len(s.counters) {
		s.grow(site)
	}
	st := int(s.counters[site])
	var mp int
	if taken {
		// Step i observes state st-i (floored at 0) and mispredicts while the
		// state is still on the not-taken side (st-i >= takenStates).
		if wrong := st - s.takenStates + 1; wrong > 0 {
			mp = wrong
			if mp > n {
				mp = n
			}
		}
		st -= n
		if st < 0 {
			st = 0
		}
	} else {
		// Symmetric: mispredicts while st+i < takenStates.
		if wrong := s.takenStates - st; wrong > 0 {
			mp = wrong
			if mp > n {
				mp = n
			}
		}
		st += n
		if st > s.states-1 {
			st = s.states - 1
		}
	}
	s.counters[site] = int8(st)
	return mp
}

func (s *Saturating) grow(site int) {
	n := len(s.counters) * 2
	if n <= site {
		n = site + 1
	}
	for len(s.counters) < n {
		s.counters = append(s.counters, s.initState)
	}
}

// Reset implements Predictor.
func (s *Saturating) Reset() {
	if s.counters == nil {
		s.counters = make([]int8, 64)
	}
	for i := range s.counters {
		s.counters[i] = s.initState
	}
}

// Name implements Predictor.
func (s *Saturating) Name() string { return s.name }
