package cpu

import (
	"fmt"

	"progopt/internal/hw/branch"
	"progopt/internal/hw/cache"
	"progopt/internal/hw/pmu"
)

// CPU is one simulated core: predictor + cache hierarchy + PMU + cycle
// accounting, plus a bump allocator for the synthetic physical address space
// that columns and hash tables live in.
type CPU struct {
	prof Profile
	pred branch.Predictor
	mem  *cache.Hierarchy

	// Branch event counters (cache events live in the hierarchy and are
	// merged into samples on read).
	brCond, brTaken, brNotTaken uint64
	brMPTaken, brMPNotTaken     uint64

	instructions uint64
	// stallQuarters accumulates memory/branch stall time in quarter-cycles so
	// cycle accounting stays integral at IssueWidth 4.
	stallQuarters uint64

	allocNext  uint64
	allocCount uint64
}

// New builds a CPU from a profile.
func New(prof Profile) (*CPU, error) {
	if err := prof.validate(); err != nil {
		return nil, err
	}
	pred, err := branch.ForArch(prof.Arch)
	if err != nil {
		return nil, err
	}
	mem, err := cache.NewHierarchy(prof.Hierarchy)
	if err != nil {
		return nil, err
	}
	return &CPU{
		prof: prof,
		pred: pred,
		mem:  mem,
		// Leave a null guard page; allocations start at 1 MB.
		allocNext: 1 << 20,
	}, nil
}

// MustNew is New that panics on error, for statically valid profiles.
func MustNew(prof Profile) *CPU {
	c, err := New(prof)
	if err != nil {
		panic(err)
	}
	return c
}

// Profile returns the CPU's profile.
func (c *CPU) Profile() Profile { return c.prof }

// Hierarchy exposes the cache hierarchy (read-only use intended).
func (c *CPU) Hierarchy() *cache.Hierarchy { return c.mem }

// Alloc reserves size bytes of the synthetic address space, aligned to 4 KB
// with a 4 KB guard gap, and returns the base address. The engine assigns one
// allocation per column so access locality is faithful to a columnar layout.
//
// Bases are staggered by a few cache lines per allocation (cache coloring):
// purely page-aligned column bases would map every column's current line
// into the same L1 set when scanned in lockstep, a power-of-two-stride
// pathology the scaled-down L1 (few sets) would otherwise amplify far beyond
// what the paper's 64-set L1 exhibits.
func (c *CPU) Alloc(size int) (uint64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("cpu: non-positive allocation size %d", size)
	}
	const page = 4096
	lineSize := uint64(c.prof.Hierarchy.L1.LineSize)
	stagger := (c.allocCount * 5 % 63) * lineSize
	c.allocCount++
	base := c.allocNext + stagger
	c.allocNext += (uint64(size) + stagger + 2*page - 1) / page * page
	return base, nil
}

// Load performs one demand load at addr: one retired instruction plus the
// memory-stall cost of wherever the line was found.
func (c *CPU) Load(addr uint64) cache.AccessResult {
	c.instructions++
	r := c.mem.Load(addr)
	if r.Level != cache.HitL1 {
		// L1-hit latency is hidden by the pipeline; deeper hits stall for
		// the differential latency, divided by the memory-parallelism factor.
		stall := (r.LatencyCycles - c.prof.Hierarchy.L1.LatencyCycles) * 4 / c.prof.MemParallelism
		if stall > 0 {
			c.stallQuarters += uint64(stall)
		}
	}
	return r
}

// CondBranch retires one conditional branch at the given site: one compare
// plus one jump instruction, plus the misprediction penalty when the
// predictor got it wrong. It returns the predictor outcome.
func (c *CPU) CondBranch(site int, taken bool) branch.Outcome {
	c.instructions += 2 // cmp + jcc
	c.brCond++
	out := c.pred.Observe(site, taken)
	if taken {
		c.brTaken++
		if out.Mispredicted() {
			c.brMPTaken++
		}
	} else {
		c.brNotTaken++
		if out.Mispredicted() {
			c.brMPNotTaken++
		}
	}
	if out.Mispredicted() {
		c.stallQuarters += uint64(c.prof.BranchMissPenaltyCycles) * 4
	}
	return out
}

// LoadSeq performs n demand loads at start, start+stride, ... — a batch
// kernel streaming a column. Counter, cache, and stall effects are exactly
// those of n Load calls: accesses within one cache line after the first are
// guaranteed L1-MRU hits (nothing else touches the caches in between), so
// they are accounted in one batched step instead of n full lookups.
func (c *CPU) LoadSeq(start uint64, stride, n int) {
	shift := c.mem.LineShift()
	for i := 0; i < n; {
		addr := start + uint64(i)*uint64(stride)
		line := addr >> shift
		j := i + 1
		for j < n && (start+uint64(j)*uint64(stride))>>shift == line {
			j++
		}
		c.Load(addr)
		if rep := j - i - 1; rep > 0 {
			if c.mem.TouchRepeat(rep) {
				// L1 hits: retired instructions only, latency hidden, no stall.
				c.instructions += uint64(rep)
			} else {
				for k := 0; k < rep; k++ { // fallback; unreachable after a Load
					c.Load(addr)
				}
			}
		}
		i = j
	}
}

// LoadSel performs one demand load per selected row of a column at base with
// the given stride — a batch kernel gathering survivors. Effects are exactly
// those of per-row Load calls: runs of rows sharing one cache line are
// guaranteed L1-MRU repeats after the run's first load and are accounted in
// one batched step.
func (c *CPU) LoadSel(base uint64, stride int, rows []int32) {
	shift := c.mem.LineShift()
	n := len(rows)
	for i := 0; i < n; {
		addr := base + uint64(rows[i])*uint64(stride)
		line := addr >> shift
		j := i + 1
		for j < n && (base+uint64(rows[j])*uint64(stride))>>shift == line {
			j++
		}
		c.Load(addr)
		if rep := j - i - 1; rep > 0 {
			if c.mem.TouchRepeat(rep) {
				// L1 hits: retired instructions only, latency hidden, no stall.
				c.instructions += uint64(rep)
			} else {
				for k := i + 1; k < j; k++ { // fallback; unreachable after a Load
					c.Load(base + uint64(rows[k])*uint64(stride))
				}
			}
		}
		i = j
	}
}

// CondBranchN retires n identical conditional branches at the given site
// (the batch engine's loop back-edge). Counter and predictor effects are
// exactly those of calling CondBranch n times.
func (c *CPU) CondBranchN(site int, taken bool, n int) {
	for i := 0; i < n; i++ {
		c.CondBranch(site, taken)
	}
}

// Exec retires n plain ALU instructions.
func (c *CPU) Exec(n int) {
	if n > 0 {
		c.instructions += uint64(n)
	}
}

// ResetPredictor clears all branch-predictor state, emulating a JIT
// recompilation of the query loop (new branch addresses).
func (c *CPU) ResetPredictor() { c.pred.Reset() }

// FlushCaches empties the cache hierarchy (counters are preserved).
func (c *CPU) FlushCaches() { c.mem.Flush() }

// Cycles returns elapsed core cycles: retired instructions spread over the
// issue width plus accumulated stall time.
func (c *CPU) Cycles() uint64 {
	issueQuarters := c.instructions * 4 / uint64(c.prof.IssueWidth)
	return (issueQuarters + c.stallQuarters) / 4
}

// Millis converts Cycles to milliseconds at the profile's clock.
func (c *CPU) Millis() float64 {
	return float64(c.Cycles()) / (c.prof.ClockGHz * 1e6)
}

// MillisOf converts a cycle count to milliseconds at the profile's clock.
func (c *CPU) MillisOf(cycles uint64) float64 {
	return float64(cycles) / (c.prof.ClockGHz * 1e6)
}

// Sample snapshots all PMU events, including the derived fixed counters.
func (c *CPU) Sample() pmu.Sample {
	var s pmu.Sample
	s[pmu.BrCond] = c.brCond
	s[pmu.BrTaken] = c.brTaken
	s[pmu.BrNotTaken] = c.brNotTaken
	s[pmu.BrMPTaken] = c.brMPTaken
	s[pmu.BrMPNotTaken] = c.brMPNotTaken
	s[pmu.BrMP] = c.brMPTaken + c.brMPNotTaken
	hc := c.mem.Counters()
	s[pmu.L1Access] = hc.L1.Accesses
	s[pmu.L1Miss] = hc.L1.Misses
	s[pmu.L2Access] = hc.L2.Accesses
	s[pmu.L2Miss] = hc.L2.Misses
	s[pmu.L3DemandAccess] = hc.L3.Accesses
	s[pmu.L3PrefetchAccess] = hc.L3PrefetchAccesses
	s[pmu.L3Access] = hc.L3TotalAccesses()
	s[pmu.L3Miss] = hc.L3.Misses
	s[pmu.L3Hit] = hc.L3.Hits
	s[pmu.MemAccess] = hc.MemAccesses
	s[pmu.Instructions] = c.instructions
	s[pmu.Cycles] = c.Cycles()
	return s
}

// ResetCounters zeroes every PMU event (cache contents and predictor state
// are preserved; real PMUs reset counters without touching the pipeline).
func (c *CPU) ResetCounters() {
	c.brCond, c.brTaken, c.brNotTaken = 0, 0, 0
	c.brMPTaken, c.brMPNotTaken = 0, 0
	c.instructions, c.stallQuarters = 0, 0
	c.mem.ResetCounters()
}
