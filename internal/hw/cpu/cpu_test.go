package cpu

import (
	"testing"

	"progopt/internal/hw/branch"
	"progopt/internal/hw/cache"
	"progopt/internal/hw/pmu"
)

func TestProfileValidate(t *testing.T) {
	if _, err := New(ScaledXeon()); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
	bad := ScaledXeon()
	bad.ClockGHz = 0
	if _, err := New(bad); err == nil {
		t.Error("zero clock accepted")
	}
	bad = ScaledXeon()
	bad.IssueWidth = 0
	if _, err := New(bad); err == nil {
		t.Error("zero issue width accepted")
	}
	bad = ScaledXeon()
	bad.MemParallelism = 0
	if _, err := New(bad); err == nil {
		t.Error("zero memory parallelism accepted")
	}
	bad = ScaledXeon()
	bad.Arch = "vax"
	if _, err := New(bad); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestForArchProfiles(t *testing.T) {
	for _, a := range branch.Arches() {
		if _, err := New(ForArch(a)); err != nil {
			t.Errorf("ForArch(%v): %v", a, err)
		}
	}
}

func TestAlloc(t *testing.T) {
	c := MustNew(ScaledXeon())
	a, err := c.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 {
		t.Error("allocation at null page")
	}
	if a%64 != 0 || b%64 != 0 {
		t.Errorf("allocations not line aligned: %#x %#x", a, b)
	}
	// Cache coloring: consecutive allocations land in different L1 sets.
	if (a>>6)%4 == (b>>6)%4 {
		t.Errorf("consecutive allocations share an L1 set: %#x %#x", a, b)
	}
	if b <= a || b-a < 4096+100 {
		t.Errorf("allocations overlap or lack guard: %#x %#x", a, b)
	}
	if _, err := c.Alloc(0); err == nil {
		t.Error("zero-size allocation accepted")
	}
}

func TestLoadCountsAndStalls(t *testing.T) {
	c := MustNew(ScaledXeon())
	base, _ := c.Alloc(1 << 20)
	r := c.Load(base)
	if r.Level != cache.HitMem {
		t.Fatalf("cold load level %v", r.Level)
	}
	cyc1 := c.Cycles()
	if cyc1 == 0 {
		t.Error("memory load accounted zero cycles")
	}
	r = c.Load(base)
	if r.Level != cache.HitL1 {
		t.Fatalf("warm load level %v", r.Level)
	}
	cyc2 := c.Cycles()
	// An L1 hit costs at most one issue slot, far less than the miss.
	if cyc2-cyc1 >= cyc1 {
		t.Errorf("L1 hit cost (%d) not cheaper than memory miss (%d)", cyc2-cyc1, cyc1)
	}
	s := c.Sample()
	if s.Get(pmu.L1Access) != 2 || s.Get(pmu.L1Miss) != 1 {
		t.Errorf("L1 access/miss = %d/%d, want 2/1", s.Get(pmu.L1Access), s.Get(pmu.L1Miss))
	}
	if s.Get(pmu.Instructions) != 2 {
		t.Errorf("instructions = %d, want 2", s.Get(pmu.Instructions))
	}
}

func TestCondBranchCounting(t *testing.T) {
	c := MustNew(ScaledXeon())
	// Train site 0 to taken, then surprise it.
	for i := 0; i < 10; i++ {
		c.CondBranch(0, true)
	}
	before := c.Sample()
	out := c.CondBranch(0, false)
	if !out.Mispredicted() {
		t.Fatal("trained-taken site predicted a sudden not-taken")
	}
	d := c.Sample().Sub(before)
	if d.Get(pmu.BrNotTaken) != 1 || d.Get(pmu.BrMPNotTaken) != 1 {
		t.Errorf("not-taken/mp-not-taken delta = %d/%d, want 1/1",
			d.Get(pmu.BrNotTaken), d.Get(pmu.BrMPNotTaken))
	}
	if d.Get(pmu.BrMP) != 1 {
		t.Errorf("br_mp delta = %d, want 1", d.Get(pmu.BrMP))
	}
	s := c.Sample()
	if s.Get(pmu.BrCond) != s.Get(pmu.BrTaken)+s.Get(pmu.BrNotTaken) {
		t.Error("br_cond != br_taken + br_not_taken")
	}
}

func TestMispredictionCostsCycles(t *testing.T) {
	mk := func() *CPU { return MustNew(ScaledXeon()) }
	// All-taken stream: nearly no mispredictions.
	a := mk()
	for i := 0; i < 1000; i++ {
		a.CondBranch(0, true)
	}
	// Alternating stream: many mispredictions.
	b := mk()
	for i := 0; i < 1000; i++ {
		b.CondBranch(0, i%2 == 0)
	}
	if b.Cycles() <= a.Cycles() {
		t.Errorf("alternating branches (%d cycles) not slower than constant (%d cycles)",
			b.Cycles(), a.Cycles())
	}
}

func TestResetPredictorClearsTraining(t *testing.T) {
	c := MustNew(ScaledXeon())
	for i := 0; i < 10; i++ {
		c.CondBranch(0, false)
	}
	c.ResetPredictor()
	out := c.CondBranch(0, true)
	if out.Mispredicted() {
		t.Error("fresh predictor after reset should predict taken (init state)")
	}
}

func TestResetCountersPreservesCaches(t *testing.T) {
	c := MustNew(ScaledXeon())
	base, _ := c.Alloc(4096)
	c.Load(base)
	c.ResetCounters()
	s := c.Sample()
	for e := pmu.Event(0); e < pmu.NumEvents; e++ {
		if s.Get(e) != 0 {
			t.Errorf("event %v nonzero after reset: %d", e, s.Get(e))
		}
	}
	if r := c.Load(base); r.Level != cache.HitL1 {
		t.Errorf("cache contents lost by ResetCounters: reload hit %v", r.Level)
	}
}

func TestL3AccessCounterComposition(t *testing.T) {
	c := MustNew(ScaledXeon())
	base, _ := c.Alloc(1 << 20)
	for i := 0; i < 1000; i++ {
		c.Load(base + uint64(i*64))
	}
	s := c.Sample()
	if s.Get(pmu.L3Access) != s.Get(pmu.L3DemandAccess)+s.Get(pmu.L3PrefetchAccess) {
		t.Error("l3_access != demand + prefetch")
	}
	if s.Get(pmu.L3PrefetchAccess) == 0 {
		t.Error("sequential scan produced no prefetch accesses")
	}
}

func TestMillis(t *testing.T) {
	c := MustNew(ScaledXeon())
	c.Exec(2_600_000 * 4) // issue width 4 -> 2.6M cycles = 1 ms at 2.6 GHz
	if got := c.Millis(); got < 0.99 || got > 1.01 {
		t.Errorf("Millis() = %v, want ~1.0", got)
	}
	if got := c.MillisOf(2_600_000); got < 0.99 || got > 1.01 {
		t.Errorf("MillisOf = %v, want ~1.0", got)
	}
}
