package progopt

import (
	"fmt"
	"strings"

	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/costmodel/markov"
	"progopt/internal/costmodel/peo"
	"progopt/internal/exec"
)

// OpExplain describes one operator in an explained plan.
type OpExplain struct {
	// Position is the evaluation position (0 = first).
	Position int
	// Name is the operator's display name.
	Name string
	// Kind is "predicate" or "join".
	Kind string
	// TrueSelectivity is the operator's standalone selectivity measured
	// directly on the data (what a perfect oracle would know).
	TrueSelectivity float64
	// EstimatedInput is the expected fraction of table rows reaching this
	// operator under independence.
	EstimatedInput float64
}

// JoinEdgeExplain describes one resolved join-graph edge of a compiled
// JoinOn plan.
type JoinEdgeExplain struct {
	// From and To are the edge's endpoint tables.
	From, To string
	// Key is the foreign-key column the edge probes through.
	Key string
	// BuildRows is |To|.
	BuildRows int
	// Hops is the probe-path length from the driving table (1 = the key is a
	// driving-table column, 2 = one intermediate table, ...).
	Hops int
	// Pushed is the number of predicates pushed down to To.
	Pushed int
}

// PlanExplain describes a query plan with per-operator facts and the cost
// model's counter predictions for the current order.
type PlanExplain struct {
	// Table is the driving table name and Rows its cardinality.
	Table string
	Rows  int
	// Exec names the execution mode ("batch" kernels over selection vectors,
	// or the "scalar" row loop) and Workers the simulated core count the
	// engine will use for the scan.
	Exec    string
	Workers int
	// Sum is the plan's aggregate expression ("" = none).
	Sum string
	// Group describes the grouped aggregation as "key, value" ("" = none);
	// GroupTables is the number of per-core partial hash tables it compiled
	// to and GroupDistinct the key-domain estimate they are sized for.
	Group         string
	GroupTables   int
	GroupDistinct int
	// OrderBy describes the ordering as "col [desc], ..." ("" = none);
	// SortStates is the number of per-core partial sort states it compiled
	// to. Limit is the Top-K bound and LimitSet whether one was declared
	// (Limit(0) is valid and distinct from no limit).
	OrderBy    string
	SortStates int
	Limit      int
	LimitSet   bool
	// Pipeline describes the fused execution pipeline ("" when the engine
	// runs unfused): the operator chain collapsed into single-pass batch
	// kernels, e.g. "filter+join+agg [fused]".
	Pipeline string
	// Storage describes the stored-scan provenance ("" for in-RAM plans):
	// compression ratio, zone-map pruning, and enabled scan capabilities.
	// StorageBlocksTotal/StorageBlocksPruned/StorageVectorsSkipped expose
	// the pruning facts it renders.
	Storage               string
	StorageBlocksTotal    int
	StorageBlocksPruned   int
	StorageVectorsSkipped int
	// Provenance describes how a workload server most recently obtained
	// this query — plan-cache hit or fresh compile, feedback warm start or
	// cold start, and the plan fingerprint ("" when the query has never
	// been served).
	Provenance string
	// Trace summarizes the spans and decision events of this query's most
	// recent traced execution, in first-appearance order (nil when the query
	// never ran on an engine with Config.Trace set).
	Trace []TraceAgg
	// Joins describes the resolved join-graph edges in the greedy default
	// order (nil for plans without JoinOn edges).
	Joins []JoinEdgeExplain
	// Ops describes the operators in evaluation order.
	Ops []OpExplain
	// PredictedBNT, PredictedMP, PredictedL3 are the §3 model's counter
	// predictions for one full scan in this order.
	PredictedBNT, PredictedMP, PredictedL3 float64
	// PredictedQualifying is the expected output cardinality under
	// independence.
	PredictedQualifying float64
}

// String renders the plan in an EXPLAIN-like block.
func (p PlanExplain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scan %s (%d rows; %s exec, %d worker(s))\n", p.Table, p.Rows, p.Exec, p.Workers)
	if len(p.Joins) > 0 {
		b.WriteString("  join graph (greedy order):")
		for _, j := range p.Joins {
			fmt.Fprintf(&b, " %s -%s-> %s (%d rows", j.From, j.Key, j.To, j.BuildRows)
			if j.Hops > 1 {
				fmt.Fprintf(&b, ", %d hops", j.Hops)
			}
			if j.Pushed > 0 {
				fmt.Fprintf(&b, ", %d pushed filter(s)", j.Pushed)
			}
			b.WriteString(");")
		}
		b.WriteString("\n")
	}
	for _, op := range p.Ops {
		fmt.Fprintf(&b, "  %d: %-24s %-9s sel=%.4f  input=%.4f\n",
			op.Position, op.Name, op.Kind, op.TrueSelectivity, op.EstimatedInput)
	}
	if p.Sum != "" {
		fmt.Fprintf(&b, "  sum(%s)\n", p.Sum)
	}
	if p.Group != "" {
		fmt.Fprintf(&b, "  group by %s (%d partial table(s), %d-key domain)\n",
			p.Group, p.GroupTables, p.GroupDistinct)
	}
	if p.OrderBy != "" {
		fmt.Fprintf(&b, "  order by %s", p.OrderBy)
		if p.LimitSet {
			fmt.Fprintf(&b, " limit %d (bounded heap)", p.Limit)
		} else {
			b.WriteString(" (run merge sort)")
		}
		fmt.Fprintf(&b, " [%d partial state(s)]\n", p.SortStates)
	}
	if p.Pipeline != "" {
		fmt.Fprintf(&b, "  pipeline: %s\n", p.Pipeline)
	}
	if p.Storage != "" {
		fmt.Fprintf(&b, "  storage: %s\n", p.Storage)
	}
	if p.Provenance != "" {
		fmt.Fprintf(&b, "served: %s\n", p.Provenance)
	}
	if len(p.Trace) > 0 {
		b.WriteString("trace:")
		for _, a := range p.Trace {
			if a.Cycles > 0 {
				fmt.Fprintf(&b, " %s x%d (%d cyc);", a.Name, a.Count, a.Cycles)
			} else {
				fmt.Fprintf(&b, " %s x%d;", a.Name, a.Count)
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "predicted: BNT=%.0f MP=%.0f L3=%.0f out=%.0f\n",
		p.PredictedBNT, p.PredictedMP, p.PredictedL3, p.PredictedQualifying)
	return b.String()
}

// fusedPipelineDesc names the single-pass kernel chain the batch engine
// collapses the plan into, e.g. "filter+join+agg [fused]".
func fusedPipelineDesc(q *Query) string {
	var parts []string
	for _, op := range q.q.Ops {
		switch op.(type) {
		case *exec.Predicate:
			parts = append(parts, "filter")
		case *exec.FKJoin:
			parts = append(parts, "join")
		default:
			parts = append(parts, "op")
		}
	}
	switch {
	case q.group != nil:
		parts = append(parts, "group")
	case q.sumExpr != "":
		parts = append(parts, "agg")
	}
	return strings.Join(parts, "+") + " [fused]"
}

// storageDesc renders the stored-scan provenance line: the v2 image's
// compression, how many blocks the zone maps pruned against the compiled
// predicate bounds, and which scan capabilities the configuration enables.
func storageDesc(s *storedQuery) string {
	cfg := s.plan.Config()
	var b strings.Builder
	fmt.Fprintf(&b, "pcol v2 (%d blocks x %d rows, %d -> %d bytes)",
		s.plan.BlocksTotal(), s.plan.Enc.BlockRows(), s.plan.Enc.PlainBytes(), s.plan.Enc.EncodedBytes())
	if cfg.SkipScan {
		fmt.Fprintf(&b, "; zone maps prune %d/%d blocks (%d vectors skipped)",
			s.plan.BlocksPruned(), s.plan.BlocksTotal(), s.plan.VectorsSkipped())
	} else {
		b.WriteString("; zone maps off")
	}
	if cfg.CompressedScan {
		b.WriteString("; compressed scan")
	}
	fmt.Fprintf(&b, "; tier %d cyc + %d B/cyc", cfg.LatencyCycles, max(cfg.BytesPerCycle, 1))
	if cfg.ResidentBytes > 0 {
		fmt.Fprintf(&b, ", %d B resident budget", cfg.ResidentBytes)
	} else {
		b.WriteString(", unbounded resident set")
	}
	return b.String()
}

// fmtOrder renders an operator permutation as "2-0-1".
func fmtOrder(p []int) string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// Explain inspects the query without simulating it: per-operator true
// selectivities (measured directly on the data) and the cost models'
// counter predictions for the current evaluation order.
func (e *Engine) Explain(q *Query) (PlanExplain, error) {
	out := PlanExplain{
		Table:   q.q.Table.Name(),
		Rows:    q.q.Table.NumRows(),
		Exec:    "batch",
		Workers: e.workers,
		Sum:     q.sumExpr,
	}
	if e.scalar {
		out.Exec = "scalar"
	}
	if q.group != nil {
		out.Group = q.group.key + ", " + q.group.value
		out.GroupTables = len(q.group.tables)
		out.GroupDistinct = q.group.distinct
	}
	if q.sort != nil {
		parts := make([]string, len(q.sort.keys))
		for i, k := range q.sort.keys {
			parts[i] = k.Col.Name()
			if k.Desc {
				parts[i] += " desc"
			}
		}
		out.OrderBy = strings.Join(parts, ", ")
		out.SortStates = len(q.sort.states)
		if q.sort.limit >= 0 {
			out.Limit = q.sort.limit
			out.LimitSet = true
		}
	}
	if ta := q.traced.Load(); ta != nil {
		out.Trace = *ta
	}
	if q.joins != nil {
		out.Joins = append([]JoinEdgeExplain(nil), q.joins...)
	}
	if sp := q.served.Load(); sp != nil {
		src := "compiled (plan-cache miss)"
		if sp.planCacheHit {
			src = "plan-cache hit"
		}
		warm := "cold start"
		if sp.warmStart {
			warm = "feedback warm-start order " + fmtOrder(sp.warmOrder)
		}
		out.Provenance = fmt.Sprintf("%s; %s; fingerprint %s", src, warm, sp.fingerprint)
	}
	sels := make([]float64, len(q.q.Ops))
	widths := make([]int, len(q.q.Ops))
	input := 1.0
	for i, op := range q.q.Ops {
		oe := OpExplain{Position: i, Name: op.Name(), EstimatedInput: input}
		widths[i] = op.Width()
		switch o := op.(type) {
		case *exec.Predicate:
			oe.Kind = "predicate"
			oe.TrueSelectivity = o.TrueSelectivity()
		case *exec.FKJoin:
			oe.Kind = "join"
			oe.TrueSelectivity = o.JoinSelectivity()
		default:
			oe.Kind = "operator"
			oe.TrueSelectivity = 1
		}
		sels[i] = oe.TrueSelectivity
		input *= oe.TrueSelectivity
		out.Ops = append(out.Ops, oe)
	}
	if !e.scalar && e.eng.Fused() {
		out.Pipeline = fusedPipelineDesc(q)
	}
	if s := q.storage; s != nil {
		out.StorageBlocksTotal = s.plan.BlocksTotal()
		out.StorageBlocksPruned = s.plan.BlocksPruned()
		out.StorageVectorsSkipped = s.plan.VectorsSkipped()
		out.Storage = storageDesc(s)
	}
	prof := e.cpu.Profile()
	params := peo.Params{
		N:        out.Rows,
		Widths:   widths,
		Geometry: cachemodel.Geometry{LineSize: prof.Hierarchy.L3.LineSize, CapacityLines: prof.Hierarchy.L3.Lines()},
		Chain:    markov.Paper(),
	}
	if q.q.Agg != nil {
		for _, col := range q.q.Agg.Cols {
			params.AggWidths = append(params.AggWidths, col.Width())
		}
	}
	est, err := peo.Counters(params, sels)
	if err != nil {
		return PlanExplain{}, err
	}
	out.PredictedBNT = est.BNT
	out.PredictedMP = est.MP()
	out.PredictedL3 = est.L3
	out.PredictedQualifying = est.Qualifying
	return out, nil
}
