package core

import (
	"fmt"
	"math"
	"sort"
)

// NMOptions configure the Nelder-Mead simplex search. The defaults follow
// the paper's tuning (§4.2): a maximum of 10k iterations and an absolute
// tolerance of one between successive best values.
type NMOptions struct {
	// MaxIter bounds the number of simplex iterations.
	MaxIter int
	// AbsTol terminates when the spread between the best and worst simplex
	// vertex values falls below it.
	AbsTol float64
	// Lo and Hi are per-dimension box bounds; points are clamped into the
	// box before evaluation. Nil means unbounded.
	Lo, Hi []float64
	// InitialStep sizes the starting simplex relative to the box (default
	// 0.1 of the box width, or 0.1 absolute when unbounded).
	InitialStep float64
	// XTol, when positive, additionally requires the simplex diameter to
	// fall below it before terminating on AbsTol. This guards against the
	// classic Nelder-Mead stall where vertices straddle a minimum
	// symmetrically and their values tie exactly. Zero keeps the paper's
	// value-spread-only criterion.
	XTol float64
}

// NMResult reports the optimization outcome.
type NMResult struct {
	// X is the best point found (clamped into the box).
	X []float64
	// F is the objective value at X.
	F float64
	// Iterations is the number of simplex iterations performed.
	Iterations int
	// Evaluations counts objective calls (the re-optimization overhead the
	// progressive driver charges to the simulated CPU).
	Evaluations int
}

// NelderMead minimizes f starting from x0 using the Nelder-Mead simplex
// method (Nelder & Mead 1965), the algorithm the paper selected from NLopt
// for its selectivity estimation.
func NelderMead(f func([]float64) float64, x0 []float64, opt NMOptions) (NMResult, error) {
	d := len(x0)
	if d == 0 {
		return NMResult{}, fmt.Errorf("core: zero-dimensional optimization")
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10000
	}
	if opt.AbsTol <= 0 {
		opt.AbsTol = 1e-8
	}
	if opt.Lo != nil && len(opt.Lo) != d {
		return NMResult{}, fmt.Errorf("core: lower bound dimension %d != %d", len(opt.Lo), d)
	}
	if opt.Hi != nil && len(opt.Hi) != d {
		return NMResult{}, fmt.Errorf("core: upper bound dimension %d != %d", len(opt.Hi), d)
	}
	step := opt.InitialStep
	if step <= 0 {
		step = 0.1
	}

	evals := 0
	clamp := func(x []float64) {
		for i := range x {
			if opt.Lo != nil && x[i] < opt.Lo[i] {
				x[i] = opt.Lo[i]
			}
			if opt.Hi != nil && x[i] > opt.Hi[i] {
				x[i] = opt.Hi[i]
			}
		}
	}
	eval := func(x []float64) float64 {
		clamp(x)
		evals++
		return f(x)
	}

	// Initial simplex: x0 plus d vertices offset along each axis.
	simplex := make([][]float64, d+1)
	values := make([]float64, d+1)
	simplex[0] = append([]float64(nil), x0...)
	clamp(simplex[0])
	values[0] = eval(simplex[0])
	for i := 0; i < d; i++ {
		v := append([]float64(nil), simplex[0]...)
		h := step
		if opt.Lo != nil && opt.Hi != nil {
			h = step * (opt.Hi[i] - opt.Lo[i])
			if h == 0 {
				h = 1e-12
			}
		}
		// Step toward the interior if at the upper bound.
		if opt.Hi != nil && v[i]+h > opt.Hi[i] {
			v[i] -= h
		} else {
			v[i] += h
		}
		simplex[i+1] = v
		values[i+1] = eval(v)
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	order := make([]int, d+1)
	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return values[order[a]] < values[order[b]] })
		best, worst := order[0], order[d]
		if math.Abs(values[worst]-values[best]) < opt.AbsTol {
			if opt.XTol <= 0 {
				break
			}
			diam := 0.0
			for i := 1; i <= d; i++ {
				for j := 0; j < d; j++ {
					if dd := math.Abs(simplex[i][j] - simplex[0][j]); dd > diam {
						diam = dd
					}
				}
			}
			if diam < opt.XTol {
				break
			}
		}
		// Centroid of all but the worst.
		centroid := make([]float64, d)
		for _, idx := range order[:d] {
			for j := range centroid {
				centroid[j] += simplex[idx][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(d)
		}
		// Reflection.
		refl := make([]float64, d)
		for j := range refl {
			refl[j] = centroid[j] + alpha*(centroid[j]-simplex[worst][j])
		}
		fRefl := eval(refl)
		secondWorst := order[d-1]
		switch {
		case fRefl < values[best]:
			// Expansion.
			expd := make([]float64, d)
			for j := range expd {
				expd[j] = centroid[j] + gamma*(refl[j]-centroid[j])
			}
			if fExp := eval(expd); fExp < fRefl {
				simplex[worst], values[worst] = expd, fExp
			} else {
				simplex[worst], values[worst] = refl, fRefl
			}
		case fRefl < values[secondWorst]:
			simplex[worst], values[worst] = refl, fRefl
		default:
			// Contraction.
			contr := make([]float64, d)
			for j := range contr {
				contr[j] = centroid[j] + rho*(simplex[worst][j]-centroid[j])
			}
			if fContr := eval(contr); fContr < values[worst] {
				simplex[worst], values[worst] = contr, fContr
			} else {
				// Shrink toward the best vertex.
				for _, idx := range order[1:] {
					for j := range simplex[idx] {
						simplex[idx][j] = simplex[best][j] + sigma*(simplex[idx][j]-simplex[best][j])
					}
					values[idx] = eval(simplex[idx])
				}
			}
		}
	}

	bestIdx := 0
	for i := 1; i <= d; i++ {
		if values[i] < values[bestIdx] {
			bestIdx = i
		}
	}
	return NMResult{
		X:           simplex[bestIdx],
		F:           values[bestIdx],
		Iterations:  iter,
		Evaluations: evals,
	}, nil
}
