// Command progopt regenerates the paper's figures as tables on stdout.
//
// Usage:
//
//	progopt -fig fig11            # one figure, full scale
//	progopt -fig all -quick       # every figure, reduced scale
//	progopt -fig fig14 -csv       # CSV instead of the ASCII table
//	progopt -fig fig14 -trace out.json  # also record a Chrome/Perfetto trace
//	progopt -list                 # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"progopt/internal/experiments"
	"progopt/internal/trace"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "experiment id (fig01..fig16) or 'all'")
		quick   = flag.Bool("quick", false, "reduced data sizes and sweeps")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		seed    = flag.Int64("seed", 1, "data generation seed")
		vector  = flag.Int("vector", 0, "vector size in tuples (0 = default)")
		perms   = flag.Int("perms", 0, "cap on PEO permutations in sweeps (0 = experiment default)")
		workers = flag.Int("workers", 1, "simulated cores per measurement (morsel-driven when > 1)")
		scalar  = flag.Bool("scalar", false, "tuple-at-a-time row loop instead of batch kernels")
		trc     = flag.String("trace", "", "write a Chrome trace-event JSON of every measurement to this path")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{
		Quick:      *quick,
		Seed:       *seed,
		VectorSize: *vector,
		PermSample: *perms,
		Workers:    *workers,
		ScalarExec: *scalar,
	}
	if *trc != "" {
		cfg.Trace = trace.New()
	}

	var exps []experiments.Experiment
	if *fig == "all" {
		exps = experiments.All()
	} else {
		e, err := experiments.ByID(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []experiments.Experiment{e}
	}

	for _, e := range exps {
		fmt.Fprintf(os.Stderr, "running %s: %s ...\n", e.ID, e.Title)
		reps, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, r := range reps {
			if *csv {
				fmt.Printf("# %s: %s\n%s\n", r.ID, r.Title, r.CSV())
			} else {
				fmt.Println(r.String())
			}
		}
	}

	if *trc != "" {
		f, err := os.Create(*trc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := cfg.Trace.WriteChrome(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events on %d tracks -> %s\n",
			cfg.Trace.Events(), cfg.Trace.NumTracks(), *trc)
	}
}
