package exec

import (
	"testing"

	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// groupedQuery builds a filtered lineitem query plus per-core group tables
// over a fresh data set; allocations go through the first allocator so
// serial and parallel configurations see identical address layouts.
func groupedQuery(t *testing.T, tables int) (*tpch.Dataset, *Query, []*GroupBy, *cpu.CPU) {
	t.Helper()
	d, err := tpch.Generate(tpch.Config{Lineitems: 20000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.MustNew(cpu.ScaledXeon())
	q := &Query{
		Table: d.Lineitem,
		Ops: []Op{
			&Predicate{Col: d.Lineitem.Column("l_discount"), Op: GE, F: 0.04},
		},
	}
	if err := MustEngine(c, 1024).BindQuery(q); err != nil {
		t.Fatal(err)
	}
	gs := make([]*GroupBy, tables)
	for i := range gs {
		g, err := NewGroupBy(c, d.Lineitem.Column("l_quantity"), d.Lineitem.Column("l_extendedprice"), 50)
		if err != nil {
			t.Fatal(err)
		}
		gs[i] = g
	}
	return d, q, gs, c
}

// TestParallelRunGroupBy checks the morsel-parallel grouped aggregation
// against the serial engine: identical groups (bit-identical sums), a
// makespan below the serial cycle count, and deterministic repetition.
func TestParallelRunGroupBy(t *testing.T) {
	_, q, gs, c := groupedQuery(t, 1)
	serialEng := MustEngine(c, 1024)
	serial, err := serialEng.RunGroupBy(q, gs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Groups) == 0 {
		t.Fatal("no groups")
	}

	runPar := func(workers int) GroupResult {
		_, qp, gsp, _ := groupedQuery(t, workers)
		p, err := NewParallel(cpu.ScaledXeon(), workers, 1024)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.RunGroupBy(qp, gsp)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, workers := range []int{1, 2, 4} {
		res := runPar(workers)
		if res.Qualifying != serial.Qualifying {
			t.Errorf("%d workers: qualifying %d vs serial %d", workers, res.Qualifying, serial.Qualifying)
		}
		if len(res.Groups) != len(serial.Groups) {
			t.Fatalf("%d workers: %d groups vs serial %d", workers, len(res.Groups), len(serial.Groups))
		}
		for i, g := range res.Groups {
			s := serial.Groups[i]
			if g.Key != s.Key || g.Count != s.Count || g.Sum != s.Sum {
				t.Fatalf("%d workers: group %d = %+v, serial %+v", workers, i, g, s)
			}
		}
	}
	par4a, par4b := runPar(4), runPar(4)
	if par4a.Cycles != par4b.Cycles {
		t.Errorf("parallel group-by not deterministic: %d vs %d cycles", par4a.Cycles, par4b.Cycles)
	}
	if par4a.Cycles >= serial.Cycles {
		t.Errorf("4-core makespan %d not below serial %d", par4a.Cycles, serial.Cycles)
	}
}

// TestParallelRunGroupByValidation covers the error paths.
func TestParallelRunGroupByValidation(t *testing.T) {
	_, q, gs, _ := groupedQuery(t, 2)
	p, err := NewParallel(cpu.ScaledXeon(), 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunGroupBy(q, gs); err == nil {
		t.Error("accepted 2 partial tables for 4 workers")
	}
	if _, err := p.RunGroupBy(q, []*GroupBy{nil, nil, nil, nil}); err == nil {
		t.Error("accepted nil partial tables")
	}
	if _, err := p.RunGroupBy(&Query{}, gs); err == nil {
		t.Error("accepted an invalid query")
	}
}

// TestGroupVectorMatchesScalar pins the refactor: the batch and scalar
// forms of GroupVector qualify the same rows.
func TestGroupVectorMatchesScalar(t *testing.T) {
	_, q, gs, c := groupedQuery(t, 1)
	batch := MustEngine(c, 1024)
	scalar := MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024)
	scalar.SetScalar(true)
	for lo := 0; lo < q.Table.NumRows(); lo += 4096 {
		hi := lo + 1024
		selB, err := batch.GroupVector(q, gs[0], lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		selS, err := scalar.GroupVector(q, gs[0], lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(selB) != len(selS) {
			t.Fatalf("[%d,%d): batch %d rows, scalar %d", lo, hi, len(selB), len(selS))
		}
		for i := range selB {
			if selB[i] != selS[i] {
				t.Fatalf("[%d,%d): row %d: batch %d, scalar %d", lo, hi, i, selB[i], selS[i])
			}
		}
	}
}
