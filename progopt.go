package progopt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"progopt/internal/columnar"
	"progopt/internal/core"
	"progopt/internal/exec"
	"progopt/internal/hw/branch"
	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
	"progopt/internal/tpch"
)

// Arch names the simulated branch-predictor microarchitecture.
type Arch string

// Supported architectures (see internal/hw/branch for the models).
const (
	ArchDefault     Arch = ""
	ArchNehalem     Arch = "nehalem"
	ArchSandyBridge Arch = "sandy-bridge"
	ArchIvyBridge   Arch = "ivy-bridge"
	ArchBroadwell   Arch = "broadwell"
	ArchAMD         Arch = "amd"
)

// Config configures an Engine.
type Config struct {
	// VectorSize is tuples per execution vector (default 2048).
	VectorSize int
	// Arch selects the simulated branch predictor (default Ivy Bridge, the
	// paper's evaluation machine).
	Arch Arch
	// DisablePrefetch turns the simulated L2 streamer off.
	DisablePrefetch bool
	// Workers is the number of simulated cores executing queries with the
	// morsel-driven scheduler (default 1 = serial). Every Exec mode honors
	// it — fixed, progressive, micro-adaptive, and grouped runs all report
	// the makespan (slowest core) and the PMU counters merged across cores,
	// with results bit-identical across worker counts. Of the deprecated run
	// methods only RunMicroAdaptive does not: it keeps its single-core
	// contract and returns an error when Workers > 1.
	Workers int
	// ScalarExec forces the seed's tuple-at-a-time row loop instead of the
	// batch-kernel pipeline (for comparison; PMU load/branch counts and
	// results are identical either way).
	ScalarExec bool
	// NoFuse disables the fused filter→join→aggregate batch kernels and runs
	// the per-operator kernel pipeline instead — the equivalence oracle.
	// Results, cycles, and every PMU counter are bit-identical either way;
	// only host wall-clock differs. Ignored under ScalarExec, which is its
	// own reference semantics.
	NoFuse bool
	// Storage, when non-nil, executes queries over the stored (PCOL v2)
	// image of the driving table, priced through a simulated storage tier
	// below DRAM. See StorageConfig.
	Storage *StorageConfig
	// Trace, when non-nil, records execution spans, optimizer decisions, and
	// storage-tier events on the simulated clock, exportable as Chrome
	// trace-event JSON (Perfetto). A pure observer: traced and untraced runs
	// are bit-identical. See TraceOptions and Engine.Trace.
	Trace *TraceOptions
}

// Engine is the public facade: one or more simulated cores plus the
// vectorized query engine and the progressive optimizer.
type Engine struct {
	cpu *cpu.CPU
	eng *exec.Engine
	// par is the morsel-driven multi-core executor, nil when Workers <= 1.
	par     *exec.Parallel
	workers int
	scalar  bool
	// stcfg is the engine's storage configuration, nil for in-RAM engines;
	// stored caches each data set's stored driving table by generation.
	stcfg  *StorageConfig
	stored map[uint64]*storedTable
	// tr is the engine's event recorder, nil when tracing is disabled.
	tr *Trace
}

// New builds an Engine.
func New(cfg Config) (*Engine, error) {
	if cfg.VectorSize <= 0 {
		cfg.VectorSize = 2048
	}
	prof := cpu.ScaledXeon()
	if cfg.Arch != ArchDefault {
		prof = cpu.ForArch(branch.Arch(cfg.Arch))
	}
	if cfg.DisablePrefetch {
		prof.Hierarchy.PrefetchDisabled = true
	}
	c, err := cpu.New(prof)
	if err != nil {
		return nil, err
	}
	e, err := exec.NewEngine(c, cfg.VectorSize)
	if err != nil {
		return nil, err
	}
	e.SetScalar(cfg.ScalarExec)
	e.SetFuse(!cfg.NoFuse)
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	var par *exec.Parallel
	if workers > 1 {
		par, err = exec.NewParallel(prof, workers, cfg.VectorSize)
		if err != nil {
			return nil, err
		}
		par.SetScalar(cfg.ScalarExec)
		par.SetFuse(!cfg.NoFuse)
	}
	stcfg := cfg.Storage
	if stcfg != nil {
		// Copy so later caller mutation cannot skew compiled plans.
		cp := *stcfg
		stcfg = &cp
	}
	var tr *Trace
	if cfg.Trace != nil {
		tr = newTrace(cfg.Trace, workers)
		// Per-core tracks attach to whichever cores will execute queries:
		// the parallel pool when one exists, the serial engine otherwise.
		if par != nil {
			par.SetTrace(tr.cores)
		} else {
			e.SetTrace(tr.cores[0])
		}
	}
	return &Engine{cpu: c, eng: e, par: par, workers: workers, scalar: cfg.ScalarExec, stcfg: stcfg, tr: tr}, nil
}

// Workers returns the number of simulated cores the engine runs queries on.
func (e *Engine) Workers() int { return e.workers }

// Close releases the multi-core executor's host worker goroutines, if any
// were started (multi-core hosts only; see exec.Parallel.Close). The engine
// remains usable afterwards.
func (e *Engine) Close() {
	if e.par != nil {
		e.par.Close()
	}
}

// Ordering selects the physical row order of a generated TPC-H data set.
type Ordering string

// Row orderings (the paper's Figure 13 axis plus the bulk-load default).
const (
	// OrderNatural is dbgen bulk-load order: weakly clustered shipdate,
	// lineitem co-clustered with orders.
	OrderNatural Ordering = "natural"
	// OrderSorted sorts lineitem by shipdate.
	OrderSorted Ordering = "sorted"
	// OrderClustered shuffles within shipdate months.
	OrderClustered Ordering = "clustered"
	// OrderRandom fully shuffles rows.
	OrderRandom Ordering = "random"
)

// Dataset wraps a generated TPC-H data set.
type Dataset struct {
	d *tpch.Dataset
	// gen is the data-set generation counter: every generated data set gets
	// a fresh value, and plan fingerprints include it, so a workload
	// server's caches never serve a plan compiled against different data.
	gen uint64
	// encMu guards encCache, the per-block-size PCOL v2 encodings of the
	// lineitem table shared by storage-backed engines and experiments.
	encMu    sync.Mutex
	encCache map[int]*columnar.EncodedTable
}

// datasetGen issues data-set generation numbers.
var datasetGen atomic.Uint64

// GenerateTPCH produces a TPC-H-shaped data set with the given lineitem
// count and row ordering.
func (e *Engine) GenerateTPCH(lineitems int, seed int64, order Ordering) (*Dataset, error) {
	d, err := tpch.Generate(tpch.Config{Lineitems: lineitems, Seed: seed})
	if err != nil {
		return nil, err
	}
	switch order {
	case OrderNatural, "":
	case OrderSorted:
		d = d.ReorderLineitem(tpch.OrderingShipdateSorted, seed+1)
	case OrderClustered:
		d = d.ReorderLineitem(tpch.OrderingClusteredMonth, seed+1)
	case OrderRandom:
		d = d.ReorderLineitem(tpch.OrderingRandom, seed+1)
	default:
		return nil, fmt.Errorf("progopt: unknown ordering %q", order)
	}
	return &Dataset{d: d, gen: datasetGen.Add(1)}, nil
}

// Lineitems returns the lineitem row count.
func (d *Dataset) Lineitems() int { return d.d.Lineitem.NumRows() }

// Generation returns the data-set generation counter, part of every plan
// fingerprint: two data sets never share a generation, even when generated
// with identical parameters, so cached plans cannot outlive their data.
func (d *Dataset) Generation() uint64 { return d.gen }

// ShipdateCutoff returns a shipdate bound hitting the given selectivity.
func (d *Dataset) ShipdateCutoff(sel float64) int32 { return d.d.ShipdateCutoff(sel) }

// Query wraps a compiled, executable query plan whose operator order the
// progressive optimizer may permute. Queries are produced by Engine.Compile
// (or the deprecated Build* methods) and executed by Engine.Exec.
type Query struct {
	q *exec.Query
	// group is the compiled grouped aggregation, nil for plain scans.
	group *groupExec
	// sort is the compiled OrderBy/Limit, nil for unordered plans.
	sort *sortExec
	// sumExpr is the plan's aggregate expression ("" = none), kept for
	// Explain.
	sumExpr string
	// served records how the most recent Server.Submit obtained this query
	// (plan-cache hit, feedback warm start); nil when the query has never
	// been served. Reported by Explain. Atomic because the plan cache
	// shares compiled queries across concurrently-waited submissions.
	served atomic.Pointer[servedProvenance]
	// traced holds the span summary of this query's most recent traced Exec
	// (nil when it never ran under tracing). Reported by Explain.
	traced atomic.Pointer[[]TraceAgg]
	// storage is the compiled stored-scan state, nil when the engine reads
	// from RAM. Zone-map pruning is order-independent, so reordered queries
	// share it.
	storage *storedQuery
	// joins describes the plan's resolved join-graph edges (nil for plans
	// without JoinOn). Reported by Explain.
	joins []JoinEdgeExplain
}

// NumOps returns the number of reorderable operators.
func (q *Query) NumOps() int { return len(q.q.Ops) }

// OpNames returns operator names in the current evaluation order.
func (q *Query) OpNames() []string { return q.q.OpNames() }

// WithOrder returns the query with operators permuted (position i takes old
// operator perm[i]).
func (q *Query) WithOrder(perm []int) (*Query, error) {
	qo, err := q.q.WithOrder(perm)
	if err != nil {
		return nil, err
	}
	return &Query{q: qo, group: q.group, sort: q.sort, sumExpr: q.sumExpr, storage: q.storage}, nil
}

// BuildQ6 builds TPC-H Query 6 (five reorderable predicates) over the data
// set and binds it into the engine's address space.
//
// Deprecated: Q6 is an ordinary plan; build it with Scan and Compile. This
// wrapper compiles exactly the plan below.
func (e *Engine) BuildQ6(d *Dataset) (*Query, error) {
	return e.Compile(d, Scan("lineitem").
		Filter("l_shipdate", CmpGE, int64(tpch.Q6ShipdateLo())).Label("shipdate>=lo").
		Filter("l_shipdate", CmpLT, int64(tpch.Q6ShipdateHi())).Label("shipdate<hi").
		Filter("l_discount", CmpGE, tpch.Q6DiscountLo-1e-9).Label("discount>=0.05").
		Filter("l_discount", CmpLE, tpch.Q6DiscountHi+1e-9).Label("discount<=0.07").
		Filter("l_quantity", CmpLT, int64(tpch.Q6QuantityBound)).Label("quantity<24").
		Sum("l_extendedprice * l_discount"))
}

// BuildQ6Shipdate builds the introduction's modified Q6 (four predicates)
// with the given shipdate cutoff.
//
// Deprecated: build the plan with Scan and Compile.
func (e *Engine) BuildQ6Shipdate(d *Dataset, cutoff int32) (*Query, error) {
	return e.Compile(d, Scan("lineitem").
		Filter("l_shipdate", CmpLE, int64(cutoff)).Label("shipdate<=v").
		Filter("l_quantity", CmpLT, int64(tpch.Q6QuantityBound)).Label("quantity<24").
		Filter("l_discount", CmpGE, tpch.Q6DiscountLo-1e-9).Label("discount>=0.05").
		Filter("l_discount", CmpLE, tpch.Q6DiscountHi+1e-9).Label("discount<=0.07").
		Sum("l_extendedprice * l_discount"))
}

// Cmp is a predicate comparison operator.
type Cmp string

// Comparison operators for Predicate.
const (
	CmpLE Cmp = "<="
	CmpLT Cmp = "<"
	CmpGE Cmp = ">="
	CmpGT Cmp = ">"
	CmpEQ Cmp = "="
)

// Predicate specifies one selection predicate for the deprecated BuildScan
// and BuildPipeline builders. New code passes bounds directly to
// Plan.Filter.
type Predicate struct {
	// Table must be empty or "lineitem": scans always drive from lineitem,
	// and a predicate on another table's column would index that shorter
	// column with lineitem row ids. Historically accepted "orders"/"part"
	// values are now rejected with an error.
	Table string
	// Column is the column name (e.g. "l_quantity").
	Column string
	// Op is the comparison.
	Op Cmp
	// Int is the bound for integer/date columns; Float for float columns.
	Int   int64
	Float float64
	// ExtraCostInstr models an expensive predicate (UDF, string match).
	ExtraCostInstr int
}

// cmpOf maps the public comparison to the executor's.
func cmpOf(c Cmp) (exec.CmpOp, error) {
	switch c {
	case CmpLE:
		return exec.LE, nil
	case CmpLT:
		return exec.LT, nil
	case CmpGE:
		return exec.GE, nil
	case CmpGT:
		return exec.GT, nil
	case CmpEQ:
		return exec.EQ, nil
	default:
		return 0, fmt.Errorf("progopt: unknown comparison %q", c)
	}
}

// scanPlan translates legacy Predicate specs into plan filter steps.
func scanPlan(preds []Predicate) (*Plan, error) {
	p := Scan("lineitem")
	for _, pr := range preds {
		switch pr.Table {
		case "", "lineitem":
		case "orders", "part":
			return nil, fmt.Errorf(
				"progopt: predicate on %s.%s: cross-table predicates are rejected (they would read the build-side column with lineitem row ids); use Plan.Join",
				pr.Table, pr.Column)
		default:
			return nil, fmt.Errorf("progopt: unknown table %q", pr.Table)
		}
		p.legacyFilter(pr.Column, pr.Op, pr.Int, pr.Float, pr.ExtraCostInstr)
	}
	return p, nil
}

// BuildScan builds a multi-predicate selection over lineitem with an
// optional sum(l_extendedprice*l_discount) aggregate.
//
// Deprecated: build the plan with Scan, Filter, and Sum, then Compile.
func (e *Engine) BuildScan(d *Dataset, preds []Predicate, withAgg bool) (*Query, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("progopt: scan needs at least one predicate")
	}
	p, err := scanPlan(preds)
	if err != nil {
		return nil, err
	}
	if withAgg {
		p.Sum("l_extendedprice * l_discount")
	}
	return e.Compile(d, p)
}

// Result reports a query execution.
type Result struct {
	// Qualifying is the output cardinality.
	Qualifying int64
	// Sum is the aggregate value (0 without an aggregate).
	Sum float64
	// Cycles is the simulated cycle cost.
	Cycles uint64
	// Millis is Cycles at the simulated clock.
	Millis float64
	// Counters holds the PMU deltas by perf-style event name.
	Counters map[string]uint64
}

func toResult(r exec.Result) Result {
	counters := make(map[string]uint64, pmu.NumEvents)
	for ev := pmu.Event(0); ev < pmu.NumEvents; ev++ {
		counters[ev.String()] = r.Counters.Get(ev)
	}
	return Result{
		Qualifying: r.Qualifying,
		Sum:        r.Sum,
		Cycles:     r.Cycles,
		Millis:     r.Millis,
		Counters:   counters,
	}
}

// Run executes the query with a fixed operator order (the baseline "common
// execution pattern") from a cold hardware state. With Workers > 1 the
// driving table is consumed as morsels by all cores; the result's Cycles and
// Millis are the makespan and Counters the merged per-core PMU deltas.
//
// Deprecated: use Exec with ModeFixed, which this wrapper forwards to.
func (e *Engine) Run(q *Query) (Result, error) {
	r, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
	if err != nil {
		return Result{}, err
	}
	return r.Result, nil
}

// Progressive configures progressive optimization.
type Progressive struct {
	// Interval is the number of vectors between optimization cycles
	// (default 10, the paper's best setting).
	Interval int
	// DisableValidation skips the reorder validation step (ablation).
	DisableValidation bool
}

// Stats reports what the progressive optimizer did.
type Stats struct {
	// Optimizations, Reorders, and Reverts count optimizer actions.
	Optimizations, Reorders, Reverts int
	// FinalOrder is the final operator permutation.
	FinalOrder []int
	// LastEstimate is the final selectivity estimate per operator position.
	LastEstimate []float64
	// ConvergedAtCycles is the run's cycle clock at the last plan change
	// the optimizer applied — the cost of finding the final order. Zero
	// means the initial order was never changed, the signature of a
	// feedback-cache warm start that began at the converged order.
	ConvergedAtCycles uint64
	// Samples is the per-optimization-cycle observation series (bounded to
	// the most recent 512): the PMU evidence each sampling point saw and the
	// selectivity estimate it produced, on the run's cycle clock. The trace's
	// optimizer track and the ext-* convergence figures render this same
	// series.
	Samples []SampleObs
}

// SampleObs is one progressive-sampling observation retained on Stats.
type SampleObs struct {
	// Cycles is the sampling time relative to the run's start.
	Cycles uint64
	// Tuples is how many tuples the sampled PMU delta covers.
	Tuples int
	// Counters holds the paper-group PMU delta by perf-style event name.
	Counters map[string]uint64
	// Sels is the selectivity estimate in current-order space.
	Sels []float64
}

// RunProgressive executes the query with progressive re-optimization from a
// cold hardware state. With Workers > 1 re-optimization runs at morsel-block
// granularity: every block spans Interval vectors per core, the per-core PMU
// deltas are merged, and the estimator inverts the cost models over the
// aggregate (see core.RunParallelProgressive).
//
// Deprecated: use Exec with ModeProgressive, which this wrapper forwards to.
func (e *Engine) RunProgressive(q *Query, p Progressive) (Result, Stats, error) {
	r, err := e.Exec(q, ExecOptions{Mode: ModeProgressive, Progressive: p})
	if err != nil {
		return Result{}, Stats{}, err
	}
	return r.Result, r.Stats, nil
}

// MicroAdaptiveStats extends Stats with implementation-choice telemetry.
type MicroAdaptiveStats struct {
	Stats
	// BranchingVectors and BranchFreeVectors count vectors per scan
	// implementation; ImplSwitches counts changes.
	BranchingVectors, BranchFreeVectors, ImplSwitches int
}

// RunMicroAdaptive executes the query with progressive re-optimization plus
// micro-adaptive implementation choice: each optimization cycle also decides
// whether upcoming vectors run the branching (short-circuiting) or the
// branch-free (predicated) scan, from the counter-estimated selectivities.
//
// Its stats contract is single-core: it returns an error when Config.Workers
// exceeds 1 rather than reporting single-core cycle counts next to
// multi-core makespans. Use Exec with ModeMicroAdaptive for morsel-driven
// micro-adaptive execution.
//
// Deprecated: use Exec with ModeMicroAdaptive, which this wrapper forwards
// to on single-core engines.
func (e *Engine) RunMicroAdaptive(q *Query, p Progressive) (Result, MicroAdaptiveStats, error) {
	if e.workers > 1 {
		return Result{}, MicroAdaptiveStats{}, fmt.Errorf(
			"progopt: RunMicroAdaptive is single-core only (its cycle counts are not makespans); with Workers = %d use Exec(q, ExecOptions{Mode: ModeMicroAdaptive})",
			e.workers)
	}
	r, err := e.Exec(q, ExecOptions{Mode: ModeMicroAdaptive, Progressive: p})
	if err != nil {
		return Result{}, MicroAdaptiveStats{}, err
	}
	return r.Result, MicroAdaptiveStats{
		Stats:             r.Stats,
		BranchingVectors:  r.Impl.BranchingVectors,
		BranchFreeVectors: r.Impl.BranchFreeVectors,
		ImplSwitches:      r.Impl.ImplSwitches,
	}, nil
}

// EstimateSelectivities runs one estimation cycle offline: it executes a
// single vector of the query, samples the four paper counters, and inverts
// the cost models. Exposed so applications can inspect the estimator
// directly (see examples/skew_detection).
func (e *Engine) EstimateSelectivities(q *Query) ([]float64, error) {
	n := q.q.Table.NumRows()
	vs := e.eng.VectorSize()
	if n < vs {
		vs = n
	}
	before := e.cpu.Sample()
	if _, err := e.eng.RunVector(q.q, 0, vs); err != nil {
		return nil, err
	}
	delta := e.cpu.Sample().Sub(before)
	sample := core.SampleFromPMU(delta, vs)
	widths := make([]int, len(q.q.Ops))
	for i, op := range q.q.Ops {
		widths[i] = op.Width()
	}
	prof := e.cpu.Profile()
	est, err := core.EstimateSelectivities(sample, core.EstimatorConfig{
		Widths:   widths,
		Geometry: cacheGeometry(prof),
	})
	if err != nil {
		return nil, err
	}
	return est.Sels, nil
}
