package experiments

import (
	"fmt"
	"math"

	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// Fig12 reproduces Figure 12: runtime of the modified Q6 over the shipdate
// selectivity sweep — minimum, maximum, and average over the PEOs for the
// baseline, and the PEO-averaged runtime under progressive optimization at
// re-optimization intervals 10, 75, and 200 vectors.
func Fig12(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	// 300 vectors keeps the 24-PEO x 4-mode x selectivity sweep tractable
	// while still giving ReopInt 200 one optimization point.
	rows := 300 * cfg.VectorSize
	if cfg.Quick {
		rows = 30 * cfg.VectorSize
	}
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	d = d.ReorderLineitem(tpch.OrderingRandom, cfg.Seed+1)

	sels := []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0}
	reops := []int{10, 75, 200}
	permSample := cfg.PermSample
	if permSample == 0 {
		permSample = 8 // 24 PEOs x 4 modes x 8 selectivities is the budget ceiling
	}
	if cfg.Quick {
		sels = []float64{1e-4, 1e-2, 0.5}
		reops = []int{10}
	}
	perms := samplePerms(exec.Permutations(4), permSample)

	r, err := newRig(cpu.ScaledXeon(), cfg)
	if err != nil {
		return nil, err
	}

	cols := []string{"shipdate_sel_pct", "min_base_ms", "max_base_ms", "avg_base_ms"}
	for _, ri := range reops {
		cols = append(cols, fmt.Sprintf("avg_reopint_%d_ms", ri))
	}
	rep := &Report{
		ID:      "fig12",
		Title:   "Q6 with varying shipdate selectivity",
		Columns: cols,
		Notes: []string{
			fmt.Sprintf("%d lineitems (randomly ordered), %d of 24 PEOs averaged", rows, len(perms)),
		},
	}

	for _, sel := range sels {
		cutoff := d.ShipdateCutoff(sel)
		q, err := exec.Q6Shipdate(d, cutoff)
		if err != nil {
			return nil, err
		}
		if err := r.bind(q); err != nil {
			return nil, err
		}
		minB, maxB, sumB := math.Inf(1), 0.0, 0.0
		progSums := make([]float64, len(reops))
		for _, perm := range perms {
			base, err := r.measureBaseline(q, perm)
			if err != nil {
				return nil, err
			}
			ms := base.Millis
			minB = math.Min(minB, ms)
			maxB = math.Max(maxB, ms)
			sumB += ms
			for ri, reop := range reops {
				prog, _, err := r.measureProgressive(q, perm, reop)
				if err != nil {
					return nil, err
				}
				progSums[ri] += prog.Millis
			}
		}
		np := float64(len(perms))
		row := []string{fmtF(sel * 100), fmtMs(minB), fmtMs(maxB), fmtMs(sumB / np)}
		for ri := range reops {
			row = append(row, fmtMs(progSums[ri]/np))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return []*Report{rep}, nil
}
