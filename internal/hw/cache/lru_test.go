package cache

import (
	"math/rand"
	"testing"
)

// The level's recency state is a positional ring (slot.prev/next), not a
// timestamp counter, so there is nothing to overflow no matter how many
// accesses a run simulates — that is the overflow-safety guarantee for what
// used to be a uint64 LRU clock, whose stamps a sufficiently long run could
// in principle have wrapped. These tests pin the ring against an explicit
// stamp-based reference with an *unbounded* clock (the semantics the ring
// must reproduce), including across stamp ranges where a fixed-width clock
// would be near wrapping.

// refLRU is the stamp-based reference: one unbounded timestamp per resident
// line, refreshed on every touch; eviction removes the minimum.
type refLRU struct {
	sets  []map[uint64]uint64 // line -> stamp
	ways  int
	mask  uint64
	clock uint64
}

func newRefLRU(cfg Config, startClock uint64) *refLRU {
	sets := make([]map[uint64]uint64, cfg.Lines()/cfg.Ways)
	for i := range sets {
		sets[i] = make(map[uint64]uint64)
	}
	return &refLRU{sets: sets, ways: cfg.Ways, mask: uint64(len(sets) - 1), clock: startClock}
}

func (r *refLRU) lookup(ln uint64) bool {
	r.clock++
	s := r.sets[ln&r.mask]
	if _, ok := s[ln]; ok {
		s[ln] = r.clock
		return true
	}
	return false
}

func (r *refLRU) insert(ln uint64) {
	r.clock++
	s := r.sets[ln&r.mask]
	if _, ok := s[ln]; ok {
		s[ln] = r.clock
		return
	}
	if len(s) == r.ways { // evict the LRU line
		var victim uint64
		oldest := ^uint64(0)
		for l, st := range s {
			if st < oldest {
				victim, oldest = l, st
			}
		}
		delete(s, victim)
	}
	s[ln] = r.clock
}

// TestRingLRUMatchesStampReference drives the ring-based level and the
// stamp-based reference with the same random access stream and asserts
// identical hit/miss outcomes and counters throughout — including with the
// reference clock started just below 2^64, where the positional ring by
// construction cannot care.
func TestRingLRUMatchesStampReference(t *testing.T) {
	cfg := Config{Name: "T", SizeBytes: 2048, LineSize: 64, Ways: 4, LatencyCycles: 1}
	for _, startClock := range []uint64{0, ^uint64(0) - 1<<40} {
		lvl, err := NewLevel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefLRU(cfg, startClock)
		rng := rand.New(rand.NewSource(int64(startClock%97) + 3))
		lines := cfg.Lines() * 3 // oversubscribed: evictions happen constantly
		for i := 0; i < 20000; i++ {
			addr := uint64(rng.Intn(lines)) * uint64(cfg.LineSize)
			ln := lvl.line(addr)
			switch rng.Intn(4) {
			case 0:
				got, want := lvl.Lookup(addr), ref.lookup(ln)
				if got != want {
					t.Fatalf("start %d step %d: Lookup(%#x) = %v, reference %v", startClock, i, addr, got, want)
				}
			case 1:
				lvl.Insert(addr, false)
				ref.insert(ln)
			case 2: // touch fast path must equal n hit lookups
				if tag := lvl.tags[lvl.lastSlot]; tag != 0 {
					n := rng.Intn(3) + 1
					if !lvl.TouchLineN(lvl.lastSlot, tag, n) {
						t.Fatalf("start %d step %d: touch of resident line failed", startClock, i)
					}
					for k := 0; k < n; k++ {
						ref.lookup(tag)
					}
				}
			default:
				got, want := lvl.ContainsLine(ln), false
				if _, ok := ref.sets[ln&ref.mask][ln]; ok {
					want = true
				}
				if got != want {
					t.Fatalf("start %d step %d: Contains(%#x) = %v, reference %v", startClock, i, addr, got, want)
				}
			}
		}
	}
}

// TestRingFillsEmptiesFirst pins the fill policy the ring inherits from the
// old first-empty scan: no eviction happens while the set has an empty way.
func TestRingFillsEmptiesFirst(t *testing.T) {
	cfg := Config{Name: "T", SizeBytes: 256, LineSize: 64, Ways: 4, LatencyCycles: 1}
	lvl, err := NewLevel(cfg) // one set, four ways
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		lvl.Insert(uint64(i*64), false)
		for j := 0; j <= i; j++ {
			if !lvl.ContainsLine(lvl.line(uint64(j * 64))) {
				t.Fatalf("after %d fills, line %d was evicted with empty ways available", i+1, j)
			}
		}
	}
	// Fifth insert must evict exactly the LRU (line 0).
	lvl.Insert(4*64, false)
	if lvl.ContainsLine(lvl.line(0)) {
		t.Fatal("LRU line survived a full-set fill")
	}
	for j := 1; j <= 4; j++ {
		if !lvl.ContainsLine(lvl.line(uint64(j * 64))) {
			t.Fatalf("non-LRU line %d evicted", j)
		}
	}
}
