package columnar

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// failWriter fails after n bytes, exercising mid-stream write errors.
type failWriter struct {
	n       int
	written int
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		return 0, errors.New("disk full")
	}
	f.written += len(p)
	return len(p), nil
}

func TestWriteTableFailurePaths(t *testing.T) {
	tb := NewTable("t")
	tb.MustAddColumn(NewInt64("a", make([]int64, 1000)))
	tb.MustAddColumn(NewFloat64("b", make([]float64, 1000)))
	tb.MustAddColumn(NewInt32("c", make([]int32, 1000)))
	// Fail at several depths into the stream: header, column header, payload.
	for _, lim := range []int{0, 2, 10, 30, 600, 9000} {
		if err := WriteTable(&failWriter{n: lim}, tb); err == nil {
			t.Errorf("write with %d-byte budget succeeded", lim)
		}
	}
	// A generous budget succeeds.
	if err := WriteTable(&failWriter{n: 1 << 20}, tb); err != nil {
		t.Errorf("write with ample budget failed: %v", err)
	}
}

func TestWriteTableRejectsHugeName(t *testing.T) {
	tb := NewTable(strings.Repeat("x", 1<<17))
	var buf bytes.Buffer
	if err := WriteTable(&buf, tb); err == nil {
		t.Error("oversized table name accepted")
	}
}

// corruptAt flips the table stream at a field and checks ReadTable rejects it.
func TestReadTableCorruptions(t *testing.T) {
	tb := NewTable("t")
	tb.MustAddColumn(NewInt64("a", []int64{1, 2, 3}))
	var buf bytes.Buffer
	if err := WriteTable(&buf, tb); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	mutate := func(name string, f func(b []byte)) {
		b := append([]byte(nil), good...)
		f(b)
		if _, err := ReadTable(bytes.NewReader(b)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	mutate("bad version", func(b []byte) {
		binary.LittleEndian.PutUint32(b[4:], 99)
	})
	mutate("huge name length", func(b []byte) {
		binary.LittleEndian.PutUint32(b[8:], 1<<30)
	})
	mutate("huge column count", func(b []byte) {
		// name "t" is 1 byte; numCols lives at offset 4+4+4+1.
		binary.LittleEndian.PutUint32(b[13:], 1<<20)
	})
	// Unknown column kind: kind field follows numCols(4) + colNameLen(4) +
	// colName("a" = 1 byte).
	mutate("unknown kind", func(b []byte) {
		binary.LittleEndian.PutUint32(b[22:], 77)
	})
	// Huge row count follows the kind.
	mutate("huge rows", func(b []byte) {
		binary.LittleEndian.PutUint64(b[26:], 1<<40)
	})
}

func TestReadTableTruncatedAtEveryBoundary(t *testing.T) {
	tb := NewTable("tbl")
	tb.MustAddColumn(NewDate("d", []int32{100, 200}))
	tb.MustAddColumn(NewFloat64("f", []float64{1.5, 2.5}))
	var buf bytes.Buffer
	if err := WriteTable(&buf, tb); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		if _, err := ReadTable(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(full))
		}
	}
	if _, err := ReadTable(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

func TestMustAddColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAddColumn on duplicate did not panic")
		}
	}()
	tb := NewTable("t")
	tb.MustAddColumn(NewInt64("a", nil))
	tb.MustAddColumn(NewInt64("a", nil))
}

type failAlloc struct{}

func (failAlloc) Alloc(int) (uint64, error) { return 0, errors.New("address space exhausted") }

func TestBindAllPropagatesAllocError(t *testing.T) {
	tb := NewTable("t")
	tb.MustAddColumn(NewInt64("a", make([]int64, 10)))
	if err := tb.BindAll(failAlloc{}); err == nil {
		t.Error("allocator failure swallowed")
	}
	// Zero-row tables still bind (1-byte allocation).
	empty := NewTable("e")
	empty.MustAddColumn(NewInt64("a", nil))
	ok := &fakeAlloc{next: 4096}
	if err := empty.BindAll(ok); err != nil {
		t.Errorf("empty table bind failed: %v", err)
	}
}
