// Command progopt-serve drives a multi-query workload through the progopt
// workload server: a seeded trace of recurring plans (so the plan cache and
// the PMU-feedback cache see repeats) is submitted with exponentially spaced
// simulated arrivals, scheduled across the engine's simulated cores, and
// summarized as throughput, p50/p95 latency, and cache effectiveness.
//
// Everything runs on the simulated clock, so the output — including the
// -bench JSON artifact — is bit-identical for a fixed flag set on every
// host, which CI exploits by running the smoke workload twice and diffing.
//
// Usage:
//
//	progopt-serve -quick                  # small deterministic workload
//	progopt-serve -queries 64 -workers 8  # bigger trace
//	progopt-serve -quick -bench BENCH_serve.json
//	progopt-serve -quick -cold            # feedback cache disabled
//	progopt-serve -quick -trace out.json  # Chrome/Perfetto trace of the run
//	progopt-serve -quick -metrics out.prom  # Prometheus text exposition
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"progopt"
)

// benchDoc is the machine-readable benchmark artifact (schema
// progopt-serve-bench/v1, documented in DESIGN.md). Only simulated
// quantities appear, so the document is reproducible bit for bit.
type benchDoc struct {
	Schema string      `json:"schema"`
	Config benchConfig `json:"config"`

	MakespanCycles uint64  `json:"makespan_cycles"`
	MakespanMs     float64 `json:"makespan_ms"`
	ThroughputQPS  float64 `json:"throughput_qps"`

	LatencyMs benchLatency  `json:"latency_ms"`
	PlanCache benchCache    `json:"plan_cache"`
	Feedback  benchFeedback `json:"feedback"`

	Queries []benchQuery `json:"queries"`
}

type benchConfig struct {
	Workers          int    `json:"workers"`
	VectorSize       int    `json:"vector_size"`
	Lineitems        int    `json:"lineitems"`
	Queries          int    `json:"queries"`
	Templates        int    `json:"templates"`
	MaxActive        int    `json:"max_active"`
	Seed             int64  `json:"seed"`
	Mode             string `json:"mode"`
	ReopInterval     int    `json:"reop_interval"`
	MeanGapCycles    int    `json:"mean_arrival_gap_cycles"`
	PlanCacheSize    int    `json:"plan_cache_size"`
	FeedbackDisabled bool   `json:"feedback_disabled"`
}

type benchLatency struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

type benchCache struct {
	Hits      int     `json:"hits"`
	Misses    int     `json:"misses"`
	Evictions int     `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

type benchFeedback struct {
	WarmStarts int `json:"warm_starts"`
	Stores     int `json:"stores"`
}

type benchQuery struct {
	ID            int     `json:"id"`
	Fingerprint   string  `json:"fingerprint"`
	ArrivalCycles uint64  `json:"arrival_cycles"`
	LatencyCycles uint64  `json:"latency_cycles"`
	LatencyMs     float64 `json:"latency_ms"`
	PlanCacheHit  bool    `json:"plan_cache_hit"`
	WarmStart     bool    `json:"warm_start"`
	Qualifying    int64   `json:"qualifying"`
	Reorders      int     `json:"reorders"`
}

func main() {
	var (
		queries   = flag.Int("queries", 32, "queries in the trace")
		templates = flag.Int("templates", 4, "distinct recurring plan templates")
		workers   = flag.Int("workers", 8, "simulated cores in the pool")
		vector    = flag.Int("vector", 2048, "vector size in tuples")
		lineitems = flag.Int("lineitems", 0, "lineitem rows (0 = 96 vectors)")
		seed      = flag.Int64("seed", 1, "trace and data seed")
		maxActive = flag.Int("maxactive", 0, "admission cap (0 = workers)")
		gap       = flag.Int("gap", 20000, "mean inter-arrival gap in simulated cycles")
		mode      = flag.String("mode", "progressive", "execution mode: fixed, progressive, micro")
		interval  = flag.Int("interval", 5, "re-optimization interval (vectors per core)")
		planCache = flag.Int("plancache", 64, "plan cache capacity")
		cold      = flag.Bool("cold", false, "disable the PMU-feedback cache")
		quick     = flag.Bool("quick", false, "small preset: 4 workers, 512-tuple vectors, 12 queries")
		benchPath = flag.String("bench", "", "write the machine-readable benchmark artifact to this path")
		trcPath   = flag.String("trace", "", "write a Chrome trace-event JSON of the workload to this path")
		metPath   = flag.String("metrics", "", "write the Prometheus text exposition to this path ('-' = stdout)")
		verbose   = flag.Bool("v", false, "print the per-query table")
	)
	flag.Parse()
	if *quick {
		*workers = 4
		*vector = 512
		*queries = 12
		*templates = 3
	}
	if *lineitems <= 0 {
		*lineitems = 96 * *vector
	}

	if err := run(*queries, *templates, *workers, *vector, *lineitems, *seed,
		*maxActive, *gap, *mode, *interval, *planCache, *cold, *benchPath,
		*trcPath, *metPath, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(queries, templates, workers, vector, lineitems int, seed int64,
	maxActive, gap int, modeName string, interval, planCacheSize int,
	cold bool, benchPath, trcPath, metPath string, verbose bool) error {

	if queries < 1 {
		return fmt.Errorf("progopt-serve: -queries must be at least 1, got %d", queries)
	}
	if templates < 1 {
		return fmt.Errorf("progopt-serve: -templates must be at least 1, got %d", templates)
	}
	var mode progopt.Mode
	switch modeName {
	case "fixed":
		mode = progopt.ModeFixed
	case "progressive":
		mode = progopt.ModeProgressive
	case "micro":
		mode = progopt.ModeMicroAdaptive
	default:
		return fmt.Errorf("progopt-serve: unknown mode %q", modeName)
	}
	if maxActive <= 0 {
		maxActive = workers // the server's own default, resolved here so the bench artifact records the effective cap
	}

	cfg := progopt.Config{VectorSize: vector, Workers: workers}
	if trcPath != "" {
		cfg.Trace = &progopt.TraceOptions{}
	}
	eng, err := progopt.New(cfg)
	if err != nil {
		return err
	}
	ds, err := eng.GenerateTPCH(lineitems, seed, progopt.OrderRandom)
	if err != nil {
		return err
	}
	srv, err := progopt.NewServer(eng, progopt.ServerConfig{
		MaxActive:       maxActive,
		PlanCacheSize:   planCacheSize,
		DisableFeedback: cold,
	})
	if err != nil {
		return err
	}

	// Recurring templates: worst-first predicate chains plus a join, with
	// bounds drawn from small discrete sets so fingerprints repeat exactly.
	rng := rand.New(rand.NewSource(seed))
	plans := make([]*progopt.Plan, templates)
	shipSels := []float64{0.7, 0.8, 0.9}
	qtyBounds := []int{8, 10, 15, 20}
	joinSels := []float64{0.4, 0.5, 0.6}
	for i := range plans {
		plans[i] = progopt.Scan("lineitem").
			Filter("l_shipdate", progopt.CmpLE, int64(ds.ShipdateCutoff(shipSels[rng.Intn(len(shipSels))]))).Label("shipdate").
			Filter("l_discount", progopt.CmpLE, 0.05).Label("discount").
			Join("orders", joinSels[rng.Intn(len(joinSels))]).
			Filter("l_quantity", progopt.CmpLT, qtyBounds[rng.Intn(len(qtyBounds))]).Label("quantity")
	}

	opts := progopt.ExecOptions{Mode: mode, Progressive: progopt.Progressive{Interval: interval}}
	type submission struct {
		ticket  *progopt.Ticket
		arrival uint64
	}
	subs := make([]submission, queries)
	var arrival uint64
	for i := 0; i < queries; i++ {
		arrival += uint64(rng.ExpFloat64() * float64(gap))
		tk, err := srv.SubmitAt(ds, plans[rng.Intn(len(plans))], opts, arrival)
		if err != nil {
			return err
		}
		subs[i] = submission{ticket: tk, arrival: arrival}
	}

	doc := benchDoc{
		Schema: "progopt-serve-bench/v1",
		Config: benchConfig{
			Workers: workers, VectorSize: vector, Lineitems: lineitems,
			Queries: queries, Templates: templates, MaxActive: maxActive,
			Seed: seed, Mode: modeName, ReopInterval: interval,
			MeanGapCycles: gap, PlanCacheSize: planCacheSize,
			FeedbackDisabled: cold,
		},
	}
	if verbose {
		fmt.Printf("%-4s %-10s %-12s %-12s %-10s %-5s %-5s %s\n",
			"id", "fprint", "arrival", "latency", "qualifying", "hit", "warm", "reorders")
	}
	latencies := make([]float64, 0, queries)
	var latSum, latMax float64
	for i, sub := range subs {
		res, err := sub.ticket.Wait()
		if err != nil {
			return err
		}
		sv := res.Served
		latencies = append(latencies, sv.LatencyMillis)
		latSum += sv.LatencyMillis
		if sv.LatencyMillis > latMax {
			latMax = sv.LatencyMillis
		}
		doc.Queries = append(doc.Queries, benchQuery{
			ID:            i,
			Fingerprint:   sv.Fingerprint[:10],
			ArrivalCycles: sv.Arrival,
			LatencyCycles: sv.LatencyCycles,
			LatencyMs:     sv.LatencyMillis,
			PlanCacheHit:  sv.PlanCacheHit,
			WarmStart:     sv.WarmStart,
			Qualifying:    res.Qualifying,
			Reorders:      res.Stats.Reorders,
		})
		if verbose {
			fmt.Printf("%-4d %-10s %-12d %-12d %-10d %-5v %-5v %d\n",
				i, sv.Fingerprint[:10], sv.Arrival, sv.LatencyCycles,
				res.Qualifying, sv.PlanCacheHit, sv.WarmStart, res.Stats.Reorders)
		}
	}

	st := srv.Stats()
	sort.Float64s(latencies)
	doc.MakespanCycles = st.MakespanCycles
	doc.MakespanMs = st.MakespanMillis
	if st.MakespanMillis > 0 {
		doc.ThroughputQPS = float64(queries) / (st.MakespanMillis / 1000)
	}
	doc.LatencyMs = benchLatency{
		P50:  latencies[len(latencies)/2],
		P95:  latencies[(len(latencies)*95)/100],
		Mean: latSum / float64(len(latencies)),
		Max:  latMax,
	}
	lookups := st.PlanCacheHits + st.PlanCacheMisses
	doc.PlanCache = benchCache{
		Hits: st.PlanCacheHits, Misses: st.PlanCacheMisses,
		Evictions: st.PlanCacheEvictions,
	}
	if lookups > 0 {
		doc.PlanCache.HitRate = float64(st.PlanCacheHits) / float64(lookups)
	}
	doc.Feedback = benchFeedback{WarmStarts: st.FeedbackWarmStarts, Stores: st.FeedbackStores}

	fmt.Printf("workload: %d queries over %d templates, %d workers (max active %d), mode %s\n",
		queries, templates, workers, st.PeakActive, modeName)
	fmt.Printf("makespan: %d cycles (%.2f simulated ms), throughput %.0f q/s\n",
		doc.MakespanCycles, doc.MakespanMs, doc.ThroughputQPS)
	fmt.Printf("latency:  p50 %.3f ms, p95 %.3f ms, mean %.3f ms, max %.3f ms\n",
		doc.LatencyMs.P50, doc.LatencyMs.P95, doc.LatencyMs.Mean, doc.LatencyMs.Max)
	fmt.Printf("plan cache: %d hits / %d misses (%.0f%% hit rate), %d evictions\n",
		doc.PlanCache.Hits, doc.PlanCache.Misses, 100*doc.PlanCache.HitRate, doc.PlanCache.Evictions)
	fmt.Printf("feedback: %d warm starts, %d stores\n",
		doc.Feedback.WarmStarts, doc.Feedback.Stores)

	if benchPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(benchPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("bench artifact: %s\n", benchPath)
	}
	if trcPath != "" {
		tr := eng.Trace()
		if err := tr.WriteChromeFile(trcPath); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s\n", tr.NumEvents(), trcPath)
	}
	if metPath != "" {
		if metPath == "-" {
			return srv.WriteMetrics(os.Stdout)
		}
		f, err := os.Create(metPath)
		if err != nil {
			return err
		}
		if err := srv.WriteMetrics(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics: %s\n", metPath)
	}
	return nil
}
