package exec

import (
	"progopt/internal/hw/cache"
	"progopt/internal/trace"
)

// StorageScan attaches a compiled storage-scan plan to one engine core. It
// carries two independent capabilities of a stored (PCOL v2) driving table:
//
//   - Skip is the zone-map verdict per global vector index: true means the
//     compiled predicates prove no row of the vector can qualify, so the
//     vector is answered from metadata alone — no load, instruction, or
//     branch is simulated. Consulting the zone maps is not charged: they are
//     a few words per block, read at plan time.
//   - Set is this core's private view of the storage tier below DRAM (see
//     cache.StorageSet), attached to the core's hierarchy for the duration
//     of a run so every access that reaches memory prices block transfers.
//
// Both fields may be nil/empty independently. The Skip slice is shared
// read-only across cores of one run; Set must be per-core (residency and
// counters are mutable simulation state).
type StorageScan struct {
	Skip []bool
	Set  *cache.StorageSet
}

// SetStorage attaches (or, with nil, detaches) a storage-scan plan. The
// caller owns the lifecycle, mirroring SetSortRun: attach per run, detach
// after the barrier. Attaching also installs the plan's tier view on the
// core's cache hierarchy.
func (e *Engine) SetStorage(s *StorageScan) {
	if old := e.stor; old != nil && old.Set != nil {
		old.Set.SetObserver(nil)
	}
	e.stor = s
	if s != nil {
		e.cpu.Hierarchy().AttachStorage(s.Set)
	} else {
		e.cpu.Hierarchy().AttachStorage(nil)
	}
	e.wireStorageObserver()
}

// wireStorageObserver connects the attached tier view's fetch/evict stream to
// this core's event track, stamping events with the core's simulated clock.
// Events land on the track of whichever core caused the traffic, so per-track
// order stays single-writer and deterministic. Called from both SetStorage
// and SetTrace — attach order does not matter.
func (e *Engine) wireStorageObserver() {
	s := e.stor
	if s == nil || s.Set == nil {
		return
	}
	if e.tr == nil {
		s.Set.SetObserver(nil)
		return
	}
	tr, c := e.tr, e.cpu
	s.Set.SetObserver(func(kind cache.StorageEventKind, block int, bytes, stall uint64) {
		switch kind {
		case cache.StorageFetch:
			tr.Instant("tier-fetch", c.Cycles(),
				trace.A("block", block), trace.A("bytes", bytes), trace.A("stall", stall))
		case cache.StorageEvict:
			tr.Instant("tier-evict", c.Cycles(), trace.A("block", block))
		}
	})
}

// Storage returns the attached storage-scan plan, or nil.
func (e *Engine) Storage() *StorageScan { return e.stor }

// skipVector reports whether [lo, hi) is a vector the attached storage plan
// proves empty. Skip verdicts are computed for the engine's vector geometry,
// so only exactly-aligned vector ranges are eligible — an arbitrary row
// range falls back to full evaluation.
func (e *Engine) skipVector(lo, hi int) bool {
	s := e.stor
	if s == nil || len(s.Skip) == 0 {
		return false
	}
	if lo%e.vectorSize != 0 || hi-lo > e.vectorSize {
		return false
	}
	v := lo / e.vectorSize
	return v < len(s.Skip) && s.Skip[v]
}
