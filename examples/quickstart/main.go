// Quickstart: declare a TPC-H Q6-style plan with the composable builder,
// compile it, and execute it through the unified Exec entry point — first
// with a fixed operator order, then with counter-driven progressive
// re-optimization. The engine executes on a simulated Ivy Bridge core whose
// PMU counters drive mid-query re-optimization of the predicate order.
package main

import (
	"fmt"
	"log"

	"progopt"
)

func main() {
	eng, err := progopt.New(progopt.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// 200k lineitems in bulk-load order: shipdate is weakly clustered, so
	// the best predicate order changes over the course of the scan.
	ds, err := eng.GenerateTPCH(200_000, 42, progopt.OrderNatural)
	if err != nil {
		log.Fatal(err)
	}

	// A Q6-style revenue query, declared as a plan: chainable filters over
	// the driving table plus a sum aggregate. Compile validates every column
	// and bound against the data set and binds the plan into the simulated
	// address space.
	q, err := eng.Compile(ds, progopt.Scan("lineitem").
		Filter("l_shipdate", progopt.CmpLE, int64(ds.ShipdateCutoff(0.5))).
		Filter("l_discount", progopt.CmpGE, 0.05).
		Filter("l_discount", progopt.CmpLE, 0.07).
		Filter("l_quantity", progopt.CmpLT, 24).
		Sum("l_extendedprice * l_discount"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("predicates:", q.OpNames())

	// Deliberately bad initial order: reverse of the written order.
	bad, err := q.WithOrder([]int{3, 2, 1, 0})
	if err != nil {
		log.Fatal(err)
	}

	baseline, err := eng.Exec(bad, progopt.ExecOptions{Mode: progopt.ModeFixed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (fixed bad order):  %8.2f ms, revenue=%.2f, rows=%d\n",
		baseline.Millis, baseline.Sum, baseline.Qualifying)

	adaptive, err := eng.Exec(bad, progopt.ExecOptions{
		Mode:        progopt.ModeProgressive,
		Progressive: progopt.Progressive{Interval: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("progressive (reopt every 10): %7.2f ms, revenue=%.2f, rows=%d\n",
		adaptive.Millis, adaptive.Sum, adaptive.Qualifying)
	fmt.Printf("speedup %.2fx with %d optimizations, %d reorders, %d reverts\n",
		baseline.Millis/adaptive.Millis,
		adaptive.Stats.Optimizations, adaptive.Stats.Reorders, adaptive.Stats.Reverts)
	fmt.Printf("final predicate order: %v\n", adaptive.Stats.FinalOrder)
	fmt.Printf("PMU: %d branches not taken, %d mispredictions, %d L3 accesses\n",
		adaptive.Counters["br_not_taken"], adaptive.Counters["br_mp"], adaptive.Counters["l3_access"])
}
