package cache

import (
	"math"
	"strings"
	"testing"
)

func TestSTrav(t *testing.T) {
	g := geo()
	p := STrav{N: 10000, Width: 8}
	if got := p.Misses(g); got != g.Lines(10000, 8) {
		t.Errorf("s_trav misses %v, want one per line %v", got, g.Lines(10000, 8))
	}
	if p.FootprintBytes() != 80000 {
		t.Error("footprint wrong")
	}
}

func TestRTravMatchesEq1(t *testing.T) {
	g := geo()
	p := RTrav{N: 4 << 20, Width: 8, Probes: 100000}
	if got, want := p.Misses(g), g.RandomMisses(4<<20, 8, 100000); math.Abs(got-want) > 1e-9 {
		t.Errorf("r_trav %v != Eq.(1) %v", got, want)
	}
}

func TestRRAccRegimes(t *testing.T) {
	g := geo() // 16384-line capacity = 1 MB
	// Fitting region: cold misses only.
	small := RRAcc{RegionBytes: 64 << 10, Probes: 1 << 20}
	if got := small.Misses(g); got != 1024 {
		t.Errorf("fitting rr_acc misses %v, want 1024 cold misses", got)
	}
	// Fewer probes than lines: at most one miss per probe.
	sparse := RRAcc{RegionBytes: 64 << 10, Probes: 10}
	if got := sparse.Misses(g); got != 10 {
		t.Errorf("sparse rr_acc misses %v, want 10", got)
	}
	// Thrashing region: probes keep missing.
	big := RRAcc{RegionBytes: 64 << 20, Probes: 1 << 20}
	if got := big.Misses(g); got < float64(1<<20)*0.9 {
		t.Errorf("thrashing rr_acc misses %v, want ~every probe", got)
	}
}

func TestSeqAddsMisses(t *testing.T) {
	g := geo()
	a := STrav{N: 1000, Width: 8}
	b := STrav{N: 2000, Width: 8}
	if got := (Seq{a, b}).Misses(g); math.Abs(got-(a.Misses(g)+b.Misses(g))) > 1e-9 {
		t.Error("seq composition must add misses")
	}
	if (Seq{a, b}).FootprintBytes() != b.FootprintBytes() {
		t.Error("seq footprint is the max phase footprint")
	}
}

func TestConcurrentInterference(t *testing.T) {
	g := geo()
	// Two repetitive regions that fit alone but not together must miss more
	// when concurrent than the sum of their solo misses.
	a := RRAcc{RegionBytes: 768 << 10, Probes: 1 << 20}
	b := RRAcc{RegionBytes: 768 << 10, Probes: 1 << 20}
	solo := a.Misses(g) + b.Misses(g)
	together := (Concurrent{a, b}).Misses(g)
	if together <= solo {
		t.Errorf("concurrent misses %v not above solo sum %v (no interference)", together, solo)
	}
}

func TestConcurrentNoInterferenceWhenTiny(t *testing.T) {
	g := geo()
	a := RRAcc{RegionBytes: 4 << 10, Probes: 100000}
	b := RRAcc{RegionBytes: 4 << 10, Probes: 100000}
	solo := a.Misses(g) + b.Misses(g)
	together := (Concurrent{a, b}).Misses(g)
	if math.Abs(together-solo) > solo*0.01 {
		t.Errorf("tiny concurrent regions interfered: %v vs %v", together, solo)
	}
}

func TestHashJoinPattern(t *testing.T) {
	g := geo()
	// Small build side: table resident, probes nearly free beyond cold
	// misses. Large build side: probe phase thrashes.
	small := HashJoinPattern(1000, 8, 1<<20, 8, 16)
	big := HashJoinPattern(4<<20, 8, 1<<20, 8, 16)
	ms, mb := small.Misses(g), big.Misses(g)
	if ms >= mb {
		t.Errorf("small-build join misses %v not below large-build %v", ms, mb)
	}
	// The large join's misses must be dominated by probe-side random reads:
	// at least ~half the probes miss.
	if mb < float64(1<<20)/2 {
		t.Errorf("large-build join misses %v implausibly low", mb)
	}
	if !strings.Contains(small.String(), "seq") {
		t.Error("pattern description missing")
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range []Pattern{
		STrav{N: 1, Width: 8},
		RTrav{N: 1, Width: 8, Probes: 1},
		RRAcc{RegionBytes: 64, Probes: 1},
		Seq{STrav{N: 1, Width: 8}},
		Concurrent{STrav{N: 1, Width: 8}},
	} {
		if p.String() == "" {
			t.Errorf("%T has empty description", p)
		}
	}
}
