package columnar

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// PCOL v2 stream layout (all integers little-endian):
//
//	magic "PCOL" | version u32 = 2 | nameLen u32 | name | numCols u32
//	blockRows u32 | numRows u64
//	per column:
//	  nameLen u32 | name | kind u32 | rows u64 | enc u8 | numBlocks u32
//	  per block: rows u32 | minBits u64 | maxBits u64 | flags u8
//	  payload:
//	    Plain: raw values (v1 payload)
//	    Dict:  dictLen u32 | dict values u64 each | codeWidth u8 | codes
//	    FoR:   per block: ref i64 | widthBits u8 | packedLen u32 | packed
//
// Zone maps precede payloads so a reader can plan skip-scans without
// decoding; every length is validated against the declared geometry before
// allocation, which is what the FuzzLoadTable target hammers on.

const formatVersion2 = 2

// zoneFlagNullFree marks a block with no null rows.
const zoneFlagNullFree = 1

// WriteTableV2 encodes t at the given block geometry and serializes it in
// the v2 format.
func WriteTableV2(w io.Writer, t *Table, blockRows int) error {
	et, err := EncodeTable(t, blockRows)
	if err != nil {
		return err
	}
	return WriteEncoded(w, et)
}

// WriteEncoded serializes an already-encoded table in the v2 format.
func WriteEncoded(w io.Writer, t *EncodedTable) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(formatMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(formatVersion2)); err != nil {
		return err
	}
	if err := writeString(bw, t.name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.cols))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(t.blockRows)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(t.rows)); err != nil {
		return err
	}
	for _, c := range t.cols {
		if err := writeEncodedColumn(bw, c); err != nil {
			return fmt.Errorf("columnar: writing column %q: %w", c.name, err)
		}
	}
	return bw.Flush()
}

func writeEncodedColumn(w io.Writer, c *EncodedColumn) error {
	if err := writeString(w, c.name); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(c.kind)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(c.rows)); err != nil {
		return err
	}
	if _, err := w.Write([]byte{byte(c.enc)}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(c.blocks))); err != nil {
		return err
	}
	for _, b := range c.blocks {
		var flags byte
		if b.NullFree {
			flags |= zoneFlagNullFree
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(b.Rows)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, b.MinBits); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, b.MaxBits); err != nil {
			return err
		}
		if _, err := w.Write([]byte{flags}); err != nil {
			return err
		}
	}
	switch c.enc {
	case EncPlain:
		return writePlainPayload(w, c)
	case EncDict:
		return writeDictPayload(w, c)
	case EncFoR:
		for _, b := range c.blocks {
			if err := binary.Write(w, binary.LittleEndian, b.Ref); err != nil {
				return err
			}
			if _, err := w.Write([]byte{b.WidthBits}); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(len(b.Packed))); err != nil {
				return err
			}
			if _, err := w.Write(b.Packed); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown encoding %v", c.enc)
}

func writePlainPayload(w io.Writer, c *EncodedColumn) error {
	var buf [8]byte
	switch c.kind {
	case Int64:
		for _, v := range c.plainI64 {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			if _, err := w.Write(buf[:8]); err != nil {
				return err
			}
		}
	case Float64:
		for _, v := range c.plainF64 {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := w.Write(buf[:8]); err != nil {
				return err
			}
		}
	case Int32, Date:
		for _, v := range c.plainI32 {
			binary.LittleEndian.PutUint32(buf[:4], uint32(v))
			if _, err := w.Write(buf[:4]); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unsupported kind %v", c.kind)
	}
	return nil
}

func writeDictPayload(w io.Writer, c *EncodedColumn) error {
	dictLen := len(c.dictI) + len(c.dictF)
	if err := binary.Write(w, binary.LittleEndian, uint32(dictLen)); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range c.dictI {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		if _, err := w.Write(buf[:8]); err != nil {
			return err
		}
	}
	for _, v := range c.dictF {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := w.Write(buf[:8]); err != nil {
			return err
		}
	}
	if _, err := w.Write([]byte{byte(c.codeWidth)}); err != nil {
		return err
	}
	for _, code := range c.codes {
		switch c.codeWidth {
		case 1:
			buf[0] = byte(code)
		case 2:
			binary.LittleEndian.PutUint16(buf[:2], uint16(code))
		case 4:
			binary.LittleEndian.PutUint32(buf[:4], code)
		default:
			return fmt.Errorf("bad code width %d", c.codeWidth)
		}
		if _, err := w.Write(buf[:c.codeWidth]); err != nil {
			return err
		}
	}
	return nil
}

// ReadEncoded parses a v2 stream into its encoded form (zone maps and
// payloads intact) — the shape the storage tier binds block-at-a-time.
func ReadEncoded(r io.Reader) (*EncodedTable, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	version, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if version != formatVersion2 {
		return nil, fmt.Errorf("columnar: expected v2 stream, found version %d", version)
	}
	return readEncodedBody(br)
}

// LoadTable parses a table from r, dispatching on the stream's format
// version: v1 streams load directly, v2 streams are decoded from their
// encoded form. Unknown versions are rejected.
func LoadTable(r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	version, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	switch version {
	case formatVersion:
		return readV1Body(br)
	case formatVersion2:
		et, err := readEncodedBody(br)
		if err != nil {
			return nil, err
		}
		return et.Decode()
	}
	return nil, fmt.Errorf("columnar: unsupported format version %d", version)
}

// readHeader consumes the magic and version common to both formats.
func readHeader(r io.Reader) (uint32, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, fmt.Errorf("columnar: reading magic: %w", err)
	}
	if string(magic) != formatMagic {
		return 0, fmt.Errorf("columnar: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return 0, err
	}
	return version, nil
}

func readEncodedBody(r io.Reader) (*EncodedTable, error) {
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	var numCols, blockRows uint32
	var numRows uint64
	if err := binary.Read(r, binary.LittleEndian, &numCols); err != nil {
		return nil, err
	}
	if numCols > 4096 {
		return nil, fmt.Errorf("columnar: implausible column count %d", numCols)
	}
	if err := binary.Read(r, binary.LittleEndian, &blockRows); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &numRows); err != nil {
		return nil, err
	}
	if blockRows == 0 || blockRows > maxRows {
		return nil, fmt.Errorf("columnar: block rows %d out of range", blockRows)
	}
	if numRows > maxRows {
		return nil, fmt.Errorf("columnar: row count %d exceeds limit", numRows)
	}
	t := &EncodedTable{
		name:      name,
		rows:      int(numRows),
		blockRows: int(blockRows),
		byName:    make(map[string]*EncodedColumn),
	}
	for i := uint32(0); i < numCols; i++ {
		c, err := readEncodedColumn(r, t.rows, t.blockRows)
		if err != nil {
			return nil, fmt.Errorf("columnar: reading column %d: %w", i, err)
		}
		if _, dup := t.byName[c.name]; dup {
			return nil, fmt.Errorf("columnar: duplicate column %q", c.name)
		}
		t.cols = append(t.cols, c)
		t.byName[c.name] = c
	}
	return t, nil
}

func readEncodedColumn(r io.Reader, tableRows, blockRows int) (*EncodedColumn, error) {
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	var kind uint32
	if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return nil, err
	}
	switch Kind(kind) {
	case Int64, Int32, Float64, Date:
	default:
		return nil, fmt.Errorf("unknown kind %d", kind)
	}
	var rows uint64
	if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
		return nil, err
	}
	if int(rows) != tableRows {
		return nil, fmt.Errorf("column rows %d disagree with table rows %d", rows, tableRows)
	}
	var encByte [1]byte
	if _, err := io.ReadFull(r, encByte[:]); err != nil {
		return nil, err
	}
	c := &EncodedColumn{name: name, kind: Kind(kind), rows: int(rows), enc: Encoding(encByte[0])}
	switch c.enc {
	case EncPlain, EncDict, EncFoR:
	default:
		return nil, fmt.Errorf("unknown encoding %d", encByte[0])
	}

	var numBlocks uint32
	if err := binary.Read(r, binary.LittleEndian, &numBlocks); err != nil {
		return nil, err
	}
	wantBlocks := 0
	if c.rows > 0 {
		wantBlocks = (c.rows + blockRows - 1) / blockRows
	}
	if int(numBlocks) != wantBlocks {
		return nil, fmt.Errorf("block count %d disagrees with geometry (%d rows / %d per block)", numBlocks, c.rows, blockRows)
	}
	c.blocks = make([]BlockMeta, 0, minInt(int(numBlocks), 4096))
	for i := 0; i < int(numBlocks); i++ {
		c.blocks = append(c.blocks, BlockMeta{})
		b := &c.blocks[i]
		var blockRowCount uint32
		if err := binary.Read(r, binary.LittleEndian, &blockRowCount); err != nil {
			return nil, err
		}
		want := blockRows
		if i == int(numBlocks)-1 {
			want = c.rows - (int(numBlocks)-1)*blockRows
		}
		if int(blockRowCount) != want {
			return nil, fmt.Errorf("block %d declares %d rows, geometry says %d", i, blockRowCount, want)
		}
		b.Rows = int(blockRowCount)
		if err := binary.Read(r, binary.LittleEndian, &b.MinBits); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.LittleEndian, &b.MaxBits); err != nil {
			return nil, err
		}
		var flags [1]byte
		if _, err := io.ReadFull(r, flags[:]); err != nil {
			return nil, err
		}
		b.NullFree = flags[0]&zoneFlagNullFree != 0
	}

	switch c.enc {
	case EncPlain:
		return c, readPlainPayload(r, c)
	case EncDict:
		return c, readDictPayload(r, c)
	case EncFoR:
		if c.kind == Float64 {
			return nil, fmt.Errorf("FoR encoding is integer-only, column is %v", c.kind)
		}
		for i := range c.blocks {
			b := &c.blocks[i]
			if err := binary.Read(r, binary.LittleEndian, &b.Ref); err != nil {
				return nil, err
			}
			var width [1]byte
			if _, err := io.ReadFull(r, width[:]); err != nil {
				return nil, err
			}
			if width[0] > 64 {
				return nil, fmt.Errorf("block %d delta width %d exceeds 64 bits", i, width[0])
			}
			b.WidthBits = width[0]
			var packedLen uint32
			if err := binary.Read(r, binary.LittleEndian, &packedLen); err != nil {
				return nil, err
			}
			want := (b.Rows*int(b.WidthBits) + 7) / 8
			if int(packedLen) != want {
				return nil, fmt.Errorf("block %d packed length %d, geometry says %d", i, packedLen, want)
			}
			if b.Packed, err = readBytes(r, int(packedLen)); err != nil {
				return nil, err
			}
		}
		return c, nil
	}
	return nil, fmt.Errorf("unknown encoding %v", c.enc)
}

func readPlainPayload(r io.Reader, c *EncodedColumn) error {
	var err error
	switch c.kind {
	case Int64:
		c.plainI64, err = readI64s(r, c.rows)
		return err
	case Float64:
		raw, err := readI64s(r, c.rows)
		if err != nil {
			return err
		}
		c.plainF64 = make([]float64, c.rows)
		for i, v := range raw {
			c.plainF64[i] = math.Float64frombits(uint64(v))
		}
		return nil
	case Int32, Date:
		c.plainI32, err = readI32s(r, c.rows)
		return err
	}
	return fmt.Errorf("unsupported kind %v", c.kind)
}

func readDictPayload(r io.Reader, c *EncodedColumn) error {
	var dictLen uint32
	if err := binary.Read(r, binary.LittleEndian, &dictLen); err != nil {
		return err
	}
	if dictLen > maxDictLen {
		return fmt.Errorf("dictionary of %d entries exceeds limit %d", dictLen, maxDictLen)
	}
	if c.rows > 0 && dictLen == 0 {
		return fmt.Errorf("empty dictionary for %d rows", c.rows)
	}
	raw, err := readI64s(r, int(dictLen))
	if err != nil {
		return err
	}
	if c.kind == Float64 {
		c.dictF = make([]float64, dictLen)
		for i, v := range raw {
			c.dictF[i] = math.Float64frombits(uint64(v))
		}
	} else {
		c.dictI = raw
	}
	var widthByte [1]byte
	if _, err := io.ReadFull(r, widthByte[:]); err != nil {
		return err
	}
	c.codeWidth = int(widthByte[0])
	switch c.codeWidth {
	case 1, 2, 4:
	default:
		return fmt.Errorf("bad dictionary code width %d", c.codeWidth)
	}
	packed, err := readBytes(r, c.rows*c.codeWidth)
	if err != nil {
		return err
	}
	c.codes = make([]uint32, c.rows)
	for i := range c.codes {
		var code uint32
		switch c.codeWidth {
		case 1:
			code = uint32(packed[i])
		case 2:
			code = uint32(binary.LittleEndian.Uint16(packed[i*2:]))
		case 4:
			code = binary.LittleEndian.Uint32(packed[i*4:])
		}
		if code >= dictLen {
			return fmt.Errorf("row %d dictionary code %d out of range %d", i, code, dictLen)
		}
		c.codes[i] = code
	}
	return nil
}
