package experiments

import (
	"fmt"

	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// Fig11 reproduces Figure 11: all 120 predicate evaluation orders of the
// original Q6, executed with the common (fixed-order) pattern and with
// progressive optimization (reopt every 10 vectors), sorted by baseline
// runtime. The paper's claim: the optimized runtime is largely flat across
// initial PEOs — bad initial orders are repaired.
func Fig11(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	d, err := tpch.Generate(tpch.Config{Lineitems: cfg.Lineitems, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	q, err := exec.Q6(d)
	if err != nil {
		return nil, err
	}
	r, err := newRig(cpu.ScaledXeon(), cfg)
	if err != nil {
		return nil, err
	}
	if err := r.bind(q); err != nil {
		return nil, err
	}
	perms := samplePerms(exec.Permutations(5), cfg.PermSample)

	rep := &Report{
		ID:      "fig11",
		Title:   "TPC-H common case: Q6 PEOs, baseline v. progressive (ReopInt 10)",
		Columns: []string{"rank", "peo", "base_ms", "optimized_ms", "speedup"},
		Notes: []string{
			fmt.Sprintf("%d lineitems, %d vectors of %d tuples, %d of 120 PEOs",
				cfg.Lineitems, (cfg.Lineitems+cfg.VectorSize-1)/cfg.VectorSize, cfg.VectorSize, len(perms)),
			"natural (bulk-load) row order: shipdate weakly clustered, as the paper's intro motivates",
		},
	}
	type entry struct {
		perm       []int
		base, prog float64
	}
	var entries []entry
	for _, perm := range perms {
		base, err := r.measureBaseline(q, perm)
		if err != nil {
			return nil, err
		}
		prog, _, err := r.measureProgressive(q, perm, 10)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{perm, base.Millis, prog.Millis})
	}
	// Sort by baseline runtime, matching the paper's x-axis.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].base < entries[j-1].base; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	for i, e := range entries {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmtPerm(e.perm),
			fmtMs(e.base), fmtMs(e.prog),
			fmt.Sprintf("%.2f", e.base/e.prog),
		})
	}
	return []*Report{rep}, nil
}
