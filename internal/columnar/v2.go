package columnar

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// PCOL v2 is the encoded, block-structured revision of the table format:
// every column is cut into fixed-size blocks of blockRows rows, each block
// carries a zone map (min/max plus a null-free flag), and the payload is
// stored under one of three per-column encodings chosen by size:
//
//   - Plain: the v1 payload, raw little-endian values.
//   - Dict: a sorted dictionary of distinct values plus per-row codes of
//     1/2/4 bytes — the low-cardinality case (l_discount has 11 distinct
//     values; one byte per row instead of eight).
//   - FoR: frame-of-reference — per block, the minimum value as the
//     reference plus bit-packed unsigned deltas at the block's exact bit
//     width. Delta arithmetic is wrapping uint64, so any int64 range
//     round-trips exactly (width tops out at 64).
//
// Encoding and decoding are exact inverses for every value (floats are
// compared and stored by bit pattern), which is what lets the storage tier
// price compressed block transfers while the engine's results stay
// bit-identical to an in-RAM run.

// Encoding identifies a v2 column payload encoding.
type Encoding uint8

const (
	// EncPlain stores raw little-endian values (the v1 payload).
	EncPlain Encoding = iota
	// EncDict stores a sorted dictionary plus fixed-width per-row codes.
	EncDict
	// EncFoR stores per-block reference values plus bit-packed deltas.
	EncFoR
)

// String names the encoding for stats output and Explain lines.
func (e Encoding) String() string {
	switch e {
	case EncPlain:
		return "plain"
	case EncDict:
		return "dict"
	case EncFoR:
		return "for"
	}
	return fmt.Sprintf("enc(%d)", uint8(e))
}

// maxDictLen bounds dictionary sizes: past 64Ki distinct values the codes
// would need 4 bytes and the dictionary itself stops paying for itself on
// the column shapes this engine stores.
const maxDictLen = 1 << 16

// BlockMeta is one block's zone map plus, for FoR columns, its packed
// payload.
type BlockMeta struct {
	// Rows is the number of rows in this block (BlockRows except possibly
	// for the final block).
	Rows int
	// MinBits and MaxBits hold the zone map bounds: the int64 bit pattern
	// for integer kinds, the float64 bit pattern for Float64.
	MinBits, MaxBits uint64
	// NullFree records that no row of the block is null. The engine has no
	// null representation today, so every written block sets it; the flag
	// exists so the format does not need a revision when nulls arrive.
	NullFree bool

	// Ref is the FoR reference value (the block minimum); unused otherwise.
	Ref int64
	// WidthBits is the FoR delta width in bits (0..64); unused otherwise.
	WidthBits uint8
	// Packed is the FoR bit-packed delta payload, LSB-first; nil otherwise.
	Packed []byte
}

// EncodedColumn is one v2 column: zone-mapped blocks over an encoded
// payload.
type EncodedColumn struct {
	name   string
	kind   Kind
	rows   int
	enc    Encoding
	blocks []BlockMeta

	// Dict state: exactly one of dictI/dictF is set, sorted ascending.
	dictI     []int64
	dictF     []float64
	codes     []uint32
	codeWidth int

	// Plain payloads (also the decode scratch for v1 parity).
	plainI64 []int64
	plainI32 []int32
	plainF64 []float64
}

// Name returns the column name.
func (c *EncodedColumn) Name() string { return c.name }

// Kind returns the value kind.
func (c *EncodedColumn) Kind() Kind { return c.kind }

// Rows returns the row count.
func (c *EncodedColumn) Rows() int { return c.rows }

// Encoding returns the payload encoding.
func (c *EncodedColumn) Encoding() Encoding { return c.enc }

// NumBlocks returns the block count.
func (c *EncodedColumn) NumBlocks() int { return len(c.blocks) }

// Block returns block i's metadata.
func (c *EncodedColumn) Block(i int) BlockMeta { return c.blocks[i] }

// ZoneInt returns block i's zone map as int64 bounds (integer kinds only).
func (c *EncodedColumn) ZoneInt(i int) (min, max int64) {
	return int64(c.blocks[i].MinBits), int64(c.blocks[i].MaxBits)
}

// ZoneFloat returns block i's zone map as float64 bounds (Float64 only).
func (c *EncodedColumn) ZoneFloat(i int) (min, max float64) {
	return math.Float64frombits(c.blocks[i].MinBits), math.Float64frombits(c.blocks[i].MaxBits)
}

// PlainBytes is the uncompressed payload size (the v1 footprint).
func (c *EncodedColumn) PlainBytes() int { return c.rows * c.kind.Width() }

// EncodedBytes is the encoded payload size: the sum over blocks of
// BlockEncodedBytes plus, for Dict, the dictionary itself.
func (c *EncodedColumn) EncodedBytes() int {
	total := 0
	for i := range c.blocks {
		total += c.BlockEncodedBytes(i)
	}
	if c.enc == EncDict {
		total += len(c.dictI)*8 + len(c.dictF)*8
	}
	return total
}

// BlockEncodedBytes is the transfer size of block i under the column's
// encoding — what the simulated storage tier charges to fault the block in.
func (c *EncodedColumn) BlockEncodedBytes(i int) int {
	b := c.blocks[i]
	switch c.enc {
	case EncDict:
		return b.Rows * c.codeWidth
	case EncFoR:
		return len(b.Packed) + 9 // ref + width prefix travel with the block
	default:
		return b.Rows * c.kind.Width()
	}
}

// PackedWidthBytes is the uniform per-row width of the column's encoded
// image: the stride a compressed scan addresses the column at. Dict columns
// scan their codes; FoR columns scan at the widest block's delta width
// rounded up to a power-of-two byte width; Plain columns scan the raw
// values.
func (c *EncodedColumn) PackedWidthBytes() int {
	switch c.enc {
	case EncDict:
		return c.codeWidth
	case EncFoR:
		w := 0
		for _, b := range c.blocks {
			if int(b.WidthBits) > w {
				w = int(b.WidthBits)
			}
		}
		switch {
		case w == 0:
			return 1
		case w <= 8:
			return 1
		case w <= 16:
			return 2
		case w <= 32:
			return 4
		default:
			return 8
		}
	default:
		return c.kind.Width()
	}
}

// EncodedTable is a v2 table: encoded, zone-mapped columns over a shared
// block geometry.
type EncodedTable struct {
	name      string
	rows      int
	blockRows int
	cols      []*EncodedColumn
	byName    map[string]*EncodedColumn
}

// Name returns the table name.
func (t *EncodedTable) Name() string { return t.name }

// NumRows returns the row count.
func (t *EncodedTable) NumRows() int { return t.rows }

// BlockRows returns the rows-per-block geometry.
func (t *EncodedTable) BlockRows() int { return t.blockRows }

// NumBlocks returns the per-column block count.
func (t *EncodedTable) NumBlocks() int {
	if t.rows == 0 {
		return 0
	}
	return (t.rows + t.blockRows - 1) / t.blockRows
}

// Columns returns the columns in insertion order.
func (t *EncodedTable) Columns() []*EncodedColumn { return t.cols }

// Column returns the named column, or nil.
func (t *EncodedTable) Column(name string) *EncodedColumn { return t.byName[name] }

// PlainBytes is the table's uncompressed payload footprint.
func (t *EncodedTable) PlainBytes() int {
	total := 0
	for _, c := range t.cols {
		total += c.PlainBytes()
	}
	return total
}

// EncodedBytes is the table's encoded payload footprint.
func (t *EncodedTable) EncodedBytes() int {
	total := 0
	for _, c := range t.cols {
		total += c.EncodedBytes()
	}
	return total
}

// EncodeTable cuts t into blockRows-row blocks and encodes every column
// under the smallest of Plain/Dict/FoR. The encoding is exact: Decode
// returns a table whose every value is bit-identical to t's.
func EncodeTable(t *Table, blockRows int) (*EncodedTable, error) {
	if blockRows <= 0 {
		return nil, fmt.Errorf("columnar: non-positive block rows %d", blockRows)
	}
	if blockRows > maxRows {
		return nil, fmt.Errorf("columnar: block rows %d exceed limit", blockRows)
	}
	out := &EncodedTable{
		name:      t.Name(),
		rows:      t.NumRows(),
		blockRows: blockRows,
		byName:    make(map[string]*EncodedColumn),
	}
	for _, c := range t.Columns() {
		ec, err := encodeColumn(c, blockRows)
		if err != nil {
			return nil, fmt.Errorf("columnar: encoding column %q: %w", c.Name(), err)
		}
		out.cols = append(out.cols, ec)
		out.byName[ec.name] = ec
	}
	return out, nil
}

// Decode reconstructs the plain table. Every value round-trips exactly.
func (t *EncodedTable) Decode() (*Table, error) {
	out := NewTable(t.name)
	for _, ec := range t.cols {
		c, err := ec.decode()
		if err != nil {
			return nil, fmt.Errorf("columnar: decoding column %q: %w", ec.name, err)
		}
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// blockSpans iterates [lo,hi) row ranges of the block geometry.
func blockSpans(rows, blockRows int, f func(i, lo, hi int)) {
	for i, lo := 0, 0; lo < rows; i, lo = i+1, lo+blockRows {
		hi := lo + blockRows
		if hi > rows {
			hi = rows
		}
		f(i, lo, hi)
	}
}

func encodeColumn(c *Column, blockRows int) (*EncodedColumn, error) {
	ec := &EncodedColumn{name: c.Name(), kind: c.Kind(), rows: c.Len()}
	switch c.Kind() {
	case Float64:
		encodeFloatColumn(ec, c.F64(), blockRows)
	case Int64:
		encodeIntColumn(ec, c.I64(), nil, blockRows)
	case Int32, Date:
		encodeIntColumn(ec, nil, c.I32(), blockRows)
	default:
		return nil, fmt.Errorf("unsupported kind %v", c.Kind())
	}
	return ec, nil
}

// intAt reads row i of whichever integer slice is populated, widened.
func intAt(i64 []int64, i32 []int32, i int) int64 {
	if i64 != nil {
		return i64[i]
	}
	return int64(i32[i])
}

func encodeIntColumn(ec *EncodedColumn, i64 []int64, i32 []int32, blockRows int) {
	rows := ec.rows
	// Zone maps plus FoR sizing in one pass over the blocks.
	forBytes := 0
	blockSpans(rows, blockRows, func(_, lo, hi int) {
		min, max := intAt(i64, i32, lo), intAt(i64, i32, lo)
		for r := lo + 1; r < hi; r++ {
			if v := intAt(i64, i32, r); v < min {
				min = v
			} else if v > max {
				max = v
			}
		}
		width := bits.Len64(uint64(max) - uint64(min))
		forBytes += ((hi-lo)*width+7)/8 + 9
		ec.blocks = append(ec.blocks, BlockMeta{
			Rows: hi - lo, MinBits: uint64(min), MaxBits: uint64(max), NullFree: true,
		})
	})

	// Distinct scan for the dictionary candidate, bailing past the cap.
	distinct := make(map[int64]struct{})
	for r := 0; r < rows && len(distinct) <= maxDictLen; r++ {
		distinct[intAt(i64, i32, r)] = struct{}{}
	}
	dictBytes := math.MaxInt
	var dict []int64
	if len(distinct) <= maxDictLen {
		dict = make([]int64, 0, len(distinct))
		for v := range distinct {
			dict = append(dict, v)
		}
		sort.Slice(dict, func(a, b int) bool { return dict[a] < dict[b] })
		dictBytes = len(dict)*8 + rows*codeWidthFor(len(dict))
	}

	plainBytes := ec.PlainBytes()
	switch {
	case dictBytes < forBytes && dictBytes < plainBytes:
		ec.enc = EncDict
		ec.dictI = dict
		ec.codeWidth = codeWidthFor(len(dict))
		ec.codes = make([]uint32, rows)
		idx := make(map[int64]uint32, len(dict))
		for i, v := range dict {
			idx[v] = uint32(i)
		}
		for r := 0; r < rows; r++ {
			ec.codes[r] = idx[intAt(i64, i32, r)]
		}
	case forBytes < plainBytes:
		ec.enc = EncFoR
		deltas := make([]uint64, 0, blockRows)
		blockSpans(rows, blockRows, func(i, lo, hi int) {
			b := &ec.blocks[i]
			b.Ref = int64(b.MinBits)
			b.WidthBits = uint8(bits.Len64(b.MaxBits - b.MinBits))
			deltas = deltas[:0]
			for r := lo; r < hi; r++ {
				deltas = append(deltas, uint64(intAt(i64, i32, r))-uint64(b.Ref))
			}
			b.Packed = packBits(deltas, int(b.WidthBits))
		})
	default:
		ec.enc = EncPlain
		if i64 != nil {
			ec.plainI64 = i64
		} else {
			ec.plainI32 = i32
		}
	}
}

func encodeFloatColumn(ec *EncodedColumn, vals []float64, blockRows int) {
	rows := ec.rows
	blockSpans(rows, blockRows, func(_, lo, hi int) {
		min, max := vals[lo], vals[lo]
		for _, v := range vals[lo+1 : hi] {
			if v < min {
				min = v
			} else if v > max {
				max = v
			}
		}
		ec.blocks = append(ec.blocks, BlockMeta{
			Rows: hi - lo, MinBits: math.Float64bits(min), MaxBits: math.Float64bits(max), NullFree: true,
		})
	})

	// Floats have no FoR form; the dictionary is the only compressed option.
	// Distinctness is by bit pattern so every value (signed zeros included)
	// round-trips exactly; the dictionary sorts by value with ties broken by
	// bit pattern to stay deterministic.
	distinct := make(map[uint64]struct{})
	for r := 0; r < rows && len(distinct) <= maxDictLen; r++ {
		distinct[math.Float64bits(vals[r])] = struct{}{}
	}
	plainBytes := ec.PlainBytes()
	if len(distinct) <= maxDictLen {
		dict := make([]float64, 0, len(distinct))
		for b := range distinct {
			dict = append(dict, math.Float64frombits(b))
		}
		sort.Slice(dict, func(a, b int) bool {
			if dict[a] != dict[b] {
				return dict[a] < dict[b]
			}
			return math.Float64bits(dict[a]) < math.Float64bits(dict[b])
		})
		if dictBytes := len(dict)*8 + rows*codeWidthFor(len(dict)); dictBytes < plainBytes {
			ec.enc = EncDict
			ec.dictF = dict
			ec.codeWidth = codeWidthFor(len(dict))
			ec.codes = make([]uint32, rows)
			idx := make(map[uint64]uint32, len(dict))
			for i, v := range dict {
				idx[math.Float64bits(v)] = uint32(i)
			}
			for r := 0; r < rows; r++ {
				ec.codes[r] = idx[math.Float64bits(vals[r])]
			}
			return
		}
	}
	ec.enc = EncPlain
	ec.plainF64 = vals
}

// codeWidthFor is the narrowest {1,2,4}-byte code width indexing n entries.
func codeWidthFor(n int) int {
	switch {
	case n <= 1<<8:
		return 1
	case n <= 1<<16:
		return 2
	default:
		return 4
	}
}

func (c *EncodedColumn) decode() (*Column, error) {
	switch c.enc {
	case EncPlain:
		return c.wrap(c.plainI64, c.plainI32, c.plainF64)
	case EncDict:
		if c.kind == Float64 {
			vals := make([]float64, c.rows)
			for r, code := range c.codes {
				if int(code) >= len(c.dictF) {
					return nil, fmt.Errorf("dict code %d out of range %d", code, len(c.dictF))
				}
				vals[r] = c.dictF[code]
			}
			return c.wrap(nil, nil, vals)
		}
		wide := make([]int64, c.rows)
		for r, code := range c.codes {
			if int(code) >= len(c.dictI) {
				return nil, fmt.Errorf("dict code %d out of range %d", code, len(c.dictI))
			}
			wide[r] = c.dictI[code]
		}
		return c.wrapInts(wide)
	case EncFoR:
		wide := make([]int64, 0, c.rows)
		for i := range c.blocks {
			b := &c.blocks[i]
			deltas, err := unpackBits(b.Packed, b.Rows, int(b.WidthBits))
			if err != nil {
				return nil, fmt.Errorf("block %d: %w", i, err)
			}
			for _, d := range deltas {
				wide = append(wide, int64(uint64(b.Ref)+d))
			}
		}
		if len(wide) != c.rows {
			return nil, fmt.Errorf("block rows sum to %d, want %d", len(wide), c.rows)
		}
		return c.wrapInts(wide)
	}
	return nil, fmt.Errorf("unknown encoding %v", c.enc)
}

// wrapInts narrows a widened integer slice back to the column's kind.
func (c *EncodedColumn) wrapInts(wide []int64) (*Column, error) {
	if c.kind == Int64 {
		return c.wrap(wide, nil, nil)
	}
	narrow := make([]int32, len(wide))
	for i, v := range wide {
		narrow[i] = int32(v)
	}
	return c.wrap(nil, narrow, nil)
}

func (c *EncodedColumn) wrap(i64 []int64, i32 []int32, f64 []float64) (*Column, error) {
	switch c.kind {
	case Int64:
		return NewInt64(c.name, i64), nil
	case Int32:
		return NewInt32(c.name, i32), nil
	case Date:
		return NewDate(c.name, i32), nil
	case Float64:
		return NewFloat64(c.name, f64), nil
	}
	return nil, fmt.Errorf("unsupported kind %v", c.kind)
}

// packBits packs each value's low width bits LSB-first into a byte stream.
// Values must fit width bits.
func packBits(vals []uint64, width int) []byte {
	if width == 0 {
		return nil
	}
	out := make([]byte, (len(vals)*width+7)/8)
	bitPos := 0
	for _, v := range vals {
		for w := 0; w < width; {
			idx, off := bitPos>>3, bitPos&7
			take := 8 - off
			if take > width-w {
				take = width - w
			}
			out[idx] |= byte((v >> uint(w)) << uint(off))
			w += take
			bitPos += take
		}
	}
	return out
}

// unpackBits is packBits' inverse: n width-bit values from src.
func unpackBits(src []byte, n, width int) ([]uint64, error) {
	if width < 0 || width > 64 {
		return nil, fmt.Errorf("bit width %d out of range", width)
	}
	need := (n*width + 7) / 8
	if len(src) < need {
		return nil, fmt.Errorf("packed payload %d bytes, need %d", len(src), need)
	}
	out := make([]uint64, n)
	if width == 0 {
		return out, nil
	}
	bitPos := 0
	for i := range out {
		var v uint64
		for w := 0; w < width; {
			idx, off := bitPos>>3, bitPos&7
			take := 8 - off
			if take > width-w {
				take = width - w
			}
			v |= (uint64(src[idx]>>uint(off)) & (1<<uint(take) - 1)) << uint(w)
			w += take
			bitPos += take
		}
		out[i] = v
	}
	return out, nil
}
