package experiments

import (
	"fmt"

	"progopt/internal/core"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
)

// rig bundles one simulated CPU and engine for a sequence of measurements
// over the same bound data set. Between measurements the caches are flushed
// and the predictor reset, so every run starts cold, like the paper's
// separately executed queries.
type rig struct {
	cpu *cpu.CPU
	eng *exec.Engine
}

func newRig(prof cpu.Profile, vectorSize int) (*rig, error) {
	c, err := cpu.New(prof)
	if err != nil {
		return nil, err
	}
	e, err := exec.NewEngine(c, vectorSize)
	if err != nil {
		return nil, err
	}
	return &rig{cpu: c, eng: e}, nil
}

func (r *rig) bind(q *exec.Query) error {
	return r.eng.BindQuery(q)
}

// cold resets transient hardware state (not counters) before a measurement.
func (r *rig) cold() {
	r.cpu.FlushCaches()
	r.cpu.ResetPredictor()
}

// measureBaseline runs q under the given operator permutation with the
// common (fixed-order) execution pattern and returns the result.
func (r *rig) measureBaseline(q *exec.Query, perm []int) (exec.Result, error) {
	qo, err := q.WithOrder(perm)
	if err != nil {
		return exec.Result{}, err
	}
	r.cold()
	return r.eng.Run(qo)
}

// measureProgressive runs q under the given initial permutation with
// progressive optimization at the given re-optimization interval.
func (r *rig) measureProgressive(q *exec.Query, perm []int, reopInt int) (exec.Result, core.Stats, error) {
	qo, err := q.WithOrder(perm)
	if err != nil {
		return exec.Result{}, core.Stats{}, err
	}
	r.cold()
	return core.RunProgressive(r.eng, qo, core.Options{ReopInterval: reopInt})
}

// millis converts simulated cycles to msec on the rig's clock.
func (r *rig) millis(cycles uint64) float64 { return r.cpu.MillisOf(cycles) }

func fmtMs(ms float64) string { return fmt.Sprintf("%.2f", ms) }
