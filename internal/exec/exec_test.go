package exec

import (
	"math"
	"testing"

	"progopt/internal/columnar"
	"progopt/internal/datagen"
	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
)

// testTable builds a small table with two int64 columns of controllable
// selectivity under "< threshold" predicates (values uniform in [0,100)).
func testTable(t *testing.T, n int) *columnar.Table {
	t.Helper()
	rng := datagen.NewRNG(42)
	tb := columnar.NewTable("t")
	tb.MustAddColumn(columnar.NewInt64("a", datagen.UniformInt64(rng, n, 0, 99)))
	tb.MustAddColumn(columnar.NewInt64("b", datagen.UniformInt64(rng, n, 0, 99)))
	tb.MustAddColumn(columnar.NewFloat64("v", datagen.UniformFloat64(rng, n, 0, 1)))
	return tb
}

func newEngine(t *testing.T) *Engine {
	t.Helper()
	return MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024)
}

func buildQuery(t *testing.T, tb *columnar.Table, e *Engine, aBound, bBound int64) *Query {
	t.Helper()
	q := &Query{
		Table: tb,
		Ops: []Op{
			&Predicate{Col: tb.Column("a"), Op: LT, I: aBound},
			&Predicate{Col: tb.Column("b"), Op: LT, I: bBound},
		},
		Agg: &Aggregate{
			Cols: []*columnar.Column{tb.Column("v")},
			F:    func(row int) float64 { return tb.Column("v").F64()[row] },
		},
	}
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	return q
}

// groundTruth evaluates the query directly.
func groundTruth(tb *columnar.Table, aBound, bBound int64) (int64, float64) {
	a, b, v := tb.Column("a").I64(), tb.Column("b").I64(), tb.Column("v").F64()
	var count int64
	var sum float64
	for i := range a {
		if a[i] < aBound && b[i] < bBound {
			count++
			sum += v[i]
		}
	}
	return count, sum
}

func TestRunCorrectness(t *testing.T) {
	tb := testTable(t, 10000)
	e := newEngine(t)
	q := buildQuery(t, tb, e, 30, 70)
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum := groundTruth(tb, 30, 70)
	if res.Qualifying != wantCount {
		t.Errorf("qualifying = %d, want %d", res.Qualifying, wantCount)
	}
	if math.Abs(res.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", res.Sum, wantSum)
	}
	if res.Vectors != 10 {
		t.Errorf("vectors = %d, want 10", res.Vectors)
	}
	if res.Cycles == 0 || res.Millis <= 0 {
		t.Error("no cycle accounting")
	}
}

func TestRunOrderIndependentResult(t *testing.T) {
	tb := testTable(t, 8000)
	e := newEngine(t)
	q := buildQuery(t, tb, e, 25, 60)
	r1, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := q.WithOrder([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(q2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Qualifying != r2.Qualifying || math.Abs(r1.Sum-r2.Sum) > 1e-9 {
		t.Error("query result depends on PEO")
	}
}

func TestBranchCounterIdentities(t *testing.T) {
	tb := testTable(t, 10000)
	e := newEngine(t)
	q := buildQuery(t, tb, e, 30, 70)
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(tb.NumRows())
	// §2.2.1: qualifying = 2n - branches taken.
	bt := int64(res.Counters.Get(pmu.BrTaken))
	if got := 2*n - bt; got != res.Qualifying {
		t.Errorf("2n - BT = %d, want qualifying %d", got, res.Qualifying)
	}
	// BNT = passes of op0 + passes of op1 = (#a<30) + qualifying.
	a := tb.Column("a").I64()
	var passA int64
	for _, v := range a {
		if v < 30 {
			passA++
		}
	}
	if got := int64(res.Counters.Get(pmu.BrNotTaken)); got != passA+res.Qualifying {
		t.Errorf("BNT = %d, want %d", got, passA+res.Qualifying)
	}
	// Conditional branches: evaluations + loop. Evaluations = n + passA.
	if got := int64(res.Counters.Get(pmu.BrCond)); got != n+passA+n {
		t.Errorf("BrCond = %d, want %d", got, 2*n+passA)
	}
}

func TestSelectiveFirstIsFaster(t *testing.T) {
	tb := testTable(t, 50000)
	run := func(order []int) uint64 {
		e := newEngine(t)
		q := buildQuery(t, tb, e, 5, 95) // a: 5%, b: 95%
		// Unbinding columns between engines is unnecessary; BindQuery binds
		// only never-bound columns, and addresses are engine-local anyway.
		qo, err := q.WithOrder(order)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(qo)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	fast := run([]int{0, 1}) // selective predicate (5%) first
	slow := run([]int{1, 0}) // non-selective (95%) first
	if fast >= slow {
		t.Errorf("selective-first %d cycles not below non-selective-first %d", fast, slow)
	}
}

func TestWithOrderValidation(t *testing.T) {
	tb := testTable(t, 100)
	e := newEngine(t)
	q := buildQuery(t, tb, e, 50, 50)
	if _, err := q.WithOrder([]int{0}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := q.WithOrder([]int{0, 0}); err == nil {
		t.Error("duplicate permutation accepted")
	}
	if _, err := q.WithOrder([]int{0, 5}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}

func TestRunVectorBounds(t *testing.T) {
	tb := testTable(t, 100)
	e := newEngine(t)
	q := buildQuery(t, tb, e, 50, 50)
	if _, err := e.RunVector(q, -1, 50); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := e.RunVector(q, 0, 101); err == nil {
		t.Error("hi beyond table accepted")
	}
	if _, err := e.RunVector(q, 60, 50); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	if err := (&Query{}).Validate(); err == nil {
		t.Error("empty query validated")
	}
	tb := testTable(t, 10)
	if err := (&Query{Table: tb}).Validate(); err == nil {
		t.Error("op-less query validated")
	}
	if err := (&Query{Table: tb, Ops: []Op{nil}}).Validate(); err == nil {
		t.Error("nil op validated")
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, 10); err == nil {
		t.Error("nil CPU accepted")
	}
	if _, err := NewEngine(cpu.MustNew(cpu.ScaledXeon()), 0); err == nil {
		t.Error("zero vector size accepted")
	}
}

func TestPredicateTrueSelectivity(t *testing.T) {
	tb := testTable(t, 20000)
	p := &Predicate{Col: tb.Column("a"), Op: LT, I: 25}
	got := p.TrueSelectivity()
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("selectivity %v, want ~0.25", got)
	}
	pf := &Predicate{Col: tb.Column("v"), Op: LE, F: 0.5}
	if got := pf.TrueSelectivity(); math.Abs(got-0.5) > 0.02 {
		t.Errorf("float selectivity %v, want ~0.5", got)
	}
	empty := &Predicate{Col: columnar.NewInt64("e", nil), Op: LT, I: 5}
	if empty.TrueSelectivity() != 0 {
		t.Error("empty column selectivity must be 0")
	}
}

func TestCmpOpSemantics(t *testing.T) {
	col := columnar.NewInt64("x", []int64{5})
	col.Bind(0x1000)
	c := cpu.MustNew(cpu.ScaledXeon())
	cases := []struct {
		op   CmpOp
		i    int64
		want bool
	}{
		{LE, 5, true}, {LE, 4, false},
		{LT, 6, true}, {LT, 5, false},
		{GE, 5, true}, {GE, 6, false},
		{GT, 4, true}, {GT, 5, false},
		{EQ, 5, true}, {EQ, 4, false},
	}
	for _, cse := range cases {
		p := &Predicate{Col: col, Op: cse.op, I: cse.i}
		if got := p.Eval(c, 0); got != cse.want {
			t.Errorf("5 %s %d = %v, want %v", cse.op, cse.i, got, cse.want)
		}
	}
}

func TestExpensivePredicateCostsMore(t *testing.T) {
	tb := testTable(t, 20000)
	run := func(extra int) uint64 {
		e := newEngine(t)
		q := &Query{
			Table: tb,
			Ops:   []Op{&Predicate{Col: tb.Column("a"), Op: LT, I: 50, ExtraCostInstr: extra}},
		}
		if err := e.BindQuery(q); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if cheap, exp := run(0), run(50); exp <= cheap {
		t.Errorf("expensive predicate (%d cycles) not slower than cheap (%d)", exp, cheap)
	}
}

func TestPermutations(t *testing.T) {
	for n := 0; n <= 5; n++ {
		perms := Permutations(n)
		want := 1
		for i := 2; i <= n; i++ {
			want *= i
		}
		if len(perms) != want {
			t.Errorf("Permutations(%d) = %d entries, want %d", n, len(perms), want)
		}
		seen := map[string]bool{}
		for _, p := range perms {
			key := ""
			check := make([]bool, n)
			for _, v := range p {
				if v < 0 || v >= n || check[v] {
					t.Fatalf("invalid permutation %v", p)
				}
				check[v] = true
				key += string(rune('0' + v))
			}
			if seen[key] {
				t.Fatalf("duplicate permutation %v", p)
			}
			seen[key] = true
		}
	}
}

func TestPermutationsPanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Permutations(9) did not panic")
		}
	}()
	Permutations(9)
}
