// Command progopt-tracecheck validates a Chrome trace-event JSON file as
// produced by the progopt tracing layer (-trace on cmd/progopt and
// cmd/progopt-serve, or Trace.WriteChrome). CI runs it on the traced smoke
// artifacts so a malformed exporter fails the build rather than silently
// producing a file Perfetto rejects.
//
// Checks: well-formed JSON with a traceEvents array; every event carries a
// name, a known phase (X span, i instant, M metadata), and integer pid/tid;
// spans have non-negative ts and dur; instants are thread-scoped; every
// event's track has exactly one thread_name metadata record; and the file
// holds at least -min-events non-metadata events.
//
// Usage:
//
//	progopt-tracecheck trace.json
//	progopt-tracecheck -min-events 100 -require reorder trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name  string          `json:"name"`
	Ph    string          `json:"ph"`
	Ts    *float64        `json:"ts"`
	Dur   *float64        `json:"dur"`
	Pid   *int64          `json:"pid"`
	Tid   *int64          `json:"tid"`
	Scope string          `json:"s"`
	Args  json.RawMessage `json:"args"`
}

func main() {
	var (
		minEvents = flag.Int("min-events", 1, "fail unless at least this many non-metadata events")
		require   = flag.String("require", "", "fail unless at least one event has this name (e.g. 'reorder')")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: progopt-tracecheck [-min-events N] [-require NAME] trace.json")
		os.Exit(2)
	}
	if err := check(flag.Arg(0), *minEvents, *require); err != nil {
		fmt.Fprintf(os.Stderr, "progopt-tracecheck: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
}

func check(path string, minEvents int, require string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc traceDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		return fmt.Errorf("displayTimeUnit = %q, want \"ns\" (1 trace ns = 1 simulated cycle)", doc.DisplayTimeUnit)
	}
	tracks := map[int64]string{} // tid -> thread name
	events, spans, instants := 0, 0, 0
	requireSeen := false
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("event %d: empty name", i)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("event %d (%q): missing pid/tid", i, ev.Name)
		}
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				return fmt.Errorf("event %d: unexpected metadata record %q", i, ev.Name)
			}
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(ev.Args, &args); err != nil || args.Name == "" {
				return fmt.Errorf("event %d: thread_name without args.name", i)
			}
			if prev, dup := tracks[*ev.Tid]; dup {
				return fmt.Errorf("event %d: tid %d named twice (%q, %q)", i, *ev.Tid, prev, args.Name)
			}
			tracks[*ev.Tid] = args.Name
			continue
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("event %d (%q): span without non-negative dur", i, ev.Name)
			}
			spans++
		case "i":
			if ev.Scope != "t" {
				return fmt.Errorf("event %d (%q): instant scope = %q, want \"t\"", i, ev.Name, ev.Scope)
			}
			instants++
		default:
			return fmt.Errorf("event %d (%q): unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			return fmt.Errorf("event %d (%q): missing or negative ts", i, ev.Name)
		}
		if _, ok := tracks[*ev.Tid]; !ok {
			return fmt.Errorf("event %d (%q): tid %d has no thread_name metadata", i, ev.Name, *ev.Tid)
		}
		if ev.Name == require {
			requireSeen = true
		}
		events++
	}
	if events < minEvents {
		return fmt.Errorf("%d events, want at least %d", events, minEvents)
	}
	if require != "" && !requireSeen {
		return fmt.Errorf("no event named %q", require)
	}
	fmt.Printf("%s: ok — %d tracks, %d spans, %d instants\n", path, len(tracks), spans, instants)
	return nil
}
