// Grouped report: a small end-to-end analytics job on the public API —
// filter lineitems progressively, then aggregate revenue per quantity
// bucket with the hash group-by operator. Shows that the adaptive machinery
// composes with downstream operators (the paper's §7 direction).
package main

import (
	"fmt"
	"log"

	"progopt"
)

func main() {
	eng, err := progopt.New(progopt.Config{VectorSize: 2048})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := eng.GenerateTPCH(150_000, 5, progopt.OrderNatural)
	if err != nil {
		log.Fatal(err)
	}

	q, err := eng.BuildScan(ds, []progopt.Predicate{
		{Column: "l_shipdate", Op: progopt.CmpLE, Int: int64(ds.ShipdateCutoff(0.6))},
		{Column: "l_discount", Op: progopt.CmpGE, Float: 0.04},
	}, false)
	if err != nil {
		log.Fatal(err)
	}

	// First: progressive filtering run, to show the adaptive order.
	res, stats, err := eng.RunProgressive(q, progopt.Progressive{Interval: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("progressive filter: %d of %d rows in %.2f ms (%d reorders)\n",
		res.Qualifying, ds.Lineitems(), res.Millis, stats.Reorders)

	// Then: group the survivors by quantity decile.
	rows, gres, err := eng.RunGroupBy(ds, q, "l_quantity", "l_extendedprice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngroup-by run: %.2f ms, %d groups\n", gres.Millis, len(rows))
	fmt.Println("quantity   revenue_sum      rows")
	fmt.Println("---------------------------------")
	var shown int
	for _, g := range rows {
		if g.Key%10 != 0 { // print every 10th quantity for brevity
			continue
		}
		fmt.Printf("%8d   %12.2f   %6d\n", g.Key, g.Sum, g.Count)
		shown++
	}
	if shown == 0 && len(rows) > 0 {
		fmt.Printf("%8d   %12.2f   %6d\n", rows[0].Key, rows[0].Sum, rows[0].Count)
	}
}
