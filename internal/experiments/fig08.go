package experiments

import (
	"fmt"

	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/costmodel/markov"
	"progopt/internal/costmodel/peo"
)

// Fig08 reproduces Figure 8: the cost models' predictions of the four
// exploited counters over the (sel1, sel2) grid of a two-predicate
// selection on 10M tuples. These are the surfaces the learning algorithm
// inverts; two queries are distinguishable whenever they differ in at least
// one surface.
func Fig08(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	const n = 10_000_000 // the paper's 10M-tuple presentation; pure model, no simulation cost
	step := 0.1
	if cfg.Quick {
		step = 0.25
	}
	params := peo.Params{
		N:        n,
		Widths:   []int{8, 8},
		Geometry: cachemodel.MustGeometry(64, 16384),
		Chain:    markov.Paper(),
	}
	var axis []float64
	for s := 0.0; s <= 1.0+1e-9; s += step {
		axis = append(axis, s)
	}
	cols := []string{"sel1\\sel2"}
	for _, s := range axis {
		cols = append(cols, fmtF(s))
	}
	mk := func(sub, what string) *Report {
		return &Report{
			ID:      "fig08" + sub,
			Title:   fmt.Sprintf("Prediction: %s (two predicates, 10M tuples)", what),
			Columns: cols,
		}
	}
	repBNT := mk("a", "branches not taken")
	repMPNT := mk("b", "mispredicted branches not taken")
	repMPT := mk("c", "mispredicted branches taken")
	repL3 := mk("d", "L3 accesses")

	for _, s1 := range axis {
		rBNT := []string{fmtF(s1)}
		rMPNT := []string{fmtF(s1)}
		rMPT := []string{fmtF(s1)}
		rL3 := []string{fmtF(s1)}
		for _, s2 := range axis {
			est, err := peo.Counters(params, []float64{s1, s2})
			if err != nil {
				return nil, err
			}
			rBNT = append(rBNT, fmt.Sprintf("%.3g", est.BNT))
			rMPNT = append(rMPNT, fmt.Sprintf("%.3g", est.MPNotTaken))
			rMPT = append(rMPT, fmt.Sprintf("%.3g", est.MPTaken))
			rL3 = append(rL3, fmt.Sprintf("%.3g", est.L3))
		}
		repBNT.Rows = append(repBNT.Rows, rBNT)
		repMPNT.Rows = append(repMPNT.Rows, rMPNT)
		repMPT.Rows = append(repMPT.Rows, rMPT)
		repL3.Rows = append(repL3.Rows, rL3)
	}
	return []*Report{repBNT, repMPNT, repMPT, repL3}, nil
}
