// Command peoexplore enumerates the predicate evaluation orders of TPC-H Q6
// on a generated data set, measures each on the simulated core, and shows
// what the progressive optimizer would infer from one sampled vector: the
// four counter values, the restricted search space, and the estimated
// per-predicate selectivities.
//
// Usage:
//
//	peoexplore -rows 200000 -seed 1 -ordering random
package main

import (
	"flag"
	"fmt"
	"os"

	"progopt/internal/core"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
	"progopt/internal/tpch"
)

func main() {
	var (
		rows     = flag.Int("rows", 200_000, "lineitem row count")
		seed     = flag.Int64("seed", 1, "generation seed")
		ordering = flag.String("ordering", "random", "lineitem order: natural|sorted|clustered|random")
		vector   = flag.Int("vector", 2048, "vector size in tuples")
	)
	flag.Parse()

	d, err := tpch.Generate(tpch.Config{Lineitems: *rows, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	switch *ordering {
	case "natural":
	case "sorted":
		d = d.ReorderLineitem(tpch.OrderingShipdateSorted, *seed+1)
	case "clustered":
		d = d.ReorderLineitem(tpch.OrderingClusteredMonth, *seed+1)
	case "random":
		d = d.ReorderLineitem(tpch.OrderingRandom, *seed+1)
	default:
		fatal(fmt.Errorf("unknown ordering %q", *ordering))
	}

	c := cpu.MustNew(cpu.ScaledXeon())
	eng := exec.MustEngine(c, *vector)
	q, err := exec.Q6(d)
	if err != nil {
		fatal(err)
	}
	if err := eng.BindQuery(q); err != nil {
		fatal(err)
	}

	// True standalone selectivities, for reference.
	fmt.Println("predicates (true standalone selectivity):")
	for i, op := range q.Ops {
		p := op.(*exec.Predicate)
		fmt.Printf("  [%d] %-18s sel=%.4f\n", i, p.Name(), p.TrueSelectivity())
	}

	// Measure every PEO.
	fmt.Println("\nall 120 predicate evaluation orders (simulated msec):")
	type entry struct {
		perm []int
		ms   float64
	}
	var entries []entry
	for _, perm := range exec.Permutations(len(q.Ops)) {
		qo, err := q.WithOrder(perm)
		if err != nil {
			fatal(err)
		}
		c.FlushCaches()
		c.ResetPredictor()
		res, err := eng.Run(qo)
		if err != nil {
			fatal(err)
		}
		entries = append(entries, entry{perm, res.Millis})
	}
	best, worst := 0, 0
	for i, e := range entries {
		if e.ms < entries[best].ms {
			best = i
		}
		if e.ms > entries[worst].ms {
			worst = i
		}
	}
	fmt.Printf("  best : %v  %.2f ms\n", entries[best].perm, entries[best].ms)
	fmt.Printf("  worst: %v  %.2f ms  (%.2fx)\n",
		entries[worst].perm, entries[worst].ms, entries[worst].ms/entries[best].ms)

	// Sample one vector of the worst order and run the estimator on it.
	qo, err := q.WithOrder(entries[worst].perm)
	if err != nil {
		fatal(err)
	}
	c.FlushCaches()
	c.ResetPredictor()
	before := c.Sample()
	if _, err := eng.RunVector(qo, 0, *vector); err != nil {
		fatal(err)
	}
	delta := c.Sample().Sub(before)
	sample := core.SampleFromPMU(delta, *vector)
	fmt.Printf("\nsampled counters for one vector of the worst PEO:\n")
	fmt.Printf("  branches not taken : %.0f\n", sample.BNT)
	fmt.Printf("  mispredicted taken : %.0f\n", sample.MPTaken)
	fmt.Printf("  mispred. not taken : %.0f\n", sample.MPNotTaken)
	fmt.Printf("  L3 accesses        : %.0f\n", sample.L3)
	fmt.Printf("  derived output     : %.0f of %d tuples\n", sample.Qualifying, *vector)

	bounds, err := core.Restrict(len(q.Ops), sample.N, sample.Qualifying, sample.BNT)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nsearch space restriction (accesses per predicate):")
	for i := range bounds.UpperBNT {
		fmt.Printf("  p%d: [%.0f, %.0f]\n", i+1, bounds.LowerBNT[i], bounds.UpperBNT[i])
	}

	widths := make([]int, len(qo.Ops))
	for i, op := range qo.Ops {
		widths[i] = op.Width()
	}
	est, err := core.EstimateSelectivities(sample, core.EstimatorConfig{
		Widths:    widths,
		AggWidths: []int{8, 8},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nestimated per-predicate selectivities (worst PEO order):")
	for i, s := range est.Sels {
		fmt.Printf("  %-18s est=%.4f\n", qo.Ops[i].Name(), s)
	}
	order := core.AscendingOrder(est.Sels)
	fmt.Printf("\nrecommended reorder (positions in worst PEO): %v\n", order)
	fmt.Printf("branch identity check: 2n - taken = %d (qualifying)\n",
		2*int64(*vector)-int64(delta.Get(pmu.BrTaken)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "peoexplore:", err)
	os.Exit(1)
}
