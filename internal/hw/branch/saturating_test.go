package branch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSaturatingValidation(t *testing.T) {
	cases := []struct {
		states int
		bias   Bias
		ok     bool
		taken  int
	}{
		{2, BiasNone, true, 1},
		{4, BiasNone, true, 2},
		{6, BiasNone, true, 3},
		{8, BiasNone, true, 4},
		{5, BiasTaken, true, 3},
		{5, BiasNotTaken, true, 2},
		{7, BiasTaken, true, 4},
		{7, BiasNotTaken, true, 3},
		{5, BiasNone, false, 0},  // odd count needs a bias
		{6, BiasTaken, false, 0}, // even count must not have a bias
		{1, BiasNone, false, 0},
		{17, BiasTaken, false, 0},
	}
	for _, c := range cases {
		p, err := NewSaturating(c.states, c.bias)
		if c.ok && err != nil {
			t.Errorf("NewSaturating(%d,%v): unexpected error %v", c.states, c.bias, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("NewSaturating(%d,%v): expected error", c.states, c.bias)
			}
			continue
		}
		if got := p.TakenStates(); got != c.taken {
			t.Errorf("NewSaturating(%d,%v).TakenStates() = %d, want %d", c.states, c.bias, got, c.taken)
		}
	}
}

func TestSaturatingLearnsConstantStream(t *testing.T) {
	// After warm-up, an all-taken stream must be predicted perfectly, and
	// likewise an all-not-taken stream.
	for _, taken := range []bool{true, false} {
		p := MustSaturating(6, BiasNone)
		for i := 0; i < 10; i++ {
			p.Observe(0, taken)
		}
		for i := 0; i < 100; i++ {
			if out := p.Observe(0, taken); out.Mispredicted() {
				t.Fatalf("saturating mispredicted constant stream (taken=%v) at step %d", taken, i)
			}
		}
	}
}

func TestSaturatingAlternatingStreamWorstCase(t *testing.T) {
	// A two-state (last-direction) predictor mispredicts a strictly
	// alternating stream on every branch after warm-up.
	p := MustSaturating(2, BiasNone)
	taken := true
	p.Observe(0, taken)
	mp := 0
	const n = 1000
	for i := 0; i < n; i++ {
		taken = !taken
		if p.Observe(0, taken).Mispredicted() {
			mp++
		}
	}
	if mp != n {
		t.Fatalf("two-state predictor on alternating stream: %d/%d mispredictions, want all", mp, n)
	}
}

func TestSaturatingSitesAreIndependent(t *testing.T) {
	p := MustSaturating(6, BiasNone)
	// Train site 0 strongly not-taken, site 1 strongly taken.
	for i := 0; i < 10; i++ {
		p.Observe(0, false)
		p.Observe(1, true)
	}
	if out := p.Observe(0, false); out.PredictedTaken {
		t.Error("site 0 should predict not-taken after not-taken training")
	}
	if out := p.Observe(1, true); !out.PredictedTaken {
		t.Error("site 1 should predict taken after taken training")
	}
}

func TestSaturatingReset(t *testing.T) {
	p := MustSaturating(6, BiasNone)
	for i := 0; i < 10; i++ {
		p.Observe(0, false)
	}
	p.Reset()
	// After reset the initial state is the weakest taken state.
	if out := p.Observe(0, true); !out.PredictedTaken {
		t.Error("fresh predictor should start predicting taken")
	}
}

// TestSaturatingMatchesMarkovStationary checks that the long-run
// misprediction rate of the simulated 6-state counter on an i.i.d. Bernoulli
// stream matches the closed-form stationary distribution of the paper's
// Markov chain (Figure 5) to within sampling error. This is the keystone
// property: it is why the paper can invert counter values into selectivities.
func TestSaturatingMatchesMarkovStationary(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 400000
	for _, p := range []float64{0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95} {
		pred := MustSaturating(6, BiasNone)
		mp := 0
		for i := 0; i < n; i++ {
			taken := rng.Float64() >= p // "not taken" w.p. p, as in a selection
			if pred.Observe(0, taken).Mispredicted() {
				mp++
			}
		}
		got := float64(mp) / n
		want := markovMPRef(6, 3, p)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("sel=%.2f: simulated MP rate %.4f, stationary model %.4f", p, got, want)
		}
	}
}

// markovMPRef computes the stationary misprediction probability of an
// n-state saturating counter where the branch is NOT taken with probability
// p. Kept local and independent from costmodel/markov so the two
// implementations cross-check each other.
func markovMPRef(states, takenStates int, p float64) float64 {
	q := 1 - p
	pi := make([]float64, states)
	// Detailed balance with ratio r = p/q stepping toward the not-taken end.
	pi[0] = 1
	sum := 1.0
	for i := 1; i < states; i++ {
		if q == 0 {
			pi[i] = math.Inf(1)
		} else {
			pi[i] = pi[i-1] * (p / q)
		}
		sum += pi[i]
	}
	probNotTak := 0.0
	for i := takenStates; i < states; i++ {
		probNotTak += pi[i] / sum
	}
	probTak := 1 - probNotTak
	// Mispredicted taken: outcome taken (q) while predicting not-taken.
	// Mispredicted not-taken: outcome not-taken (p) while predicting taken.
	return q*probNotTak + p*probTak
}

func TestSaturatingDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := make([]bool, 200)
		for i := range stream {
			stream[i] = rng.Intn(2) == 0
		}
		a := MustSaturating(6, BiasNone)
		b := MustSaturating(6, BiasNone)
		for _, tk := range stream {
			oa := a.Observe(3, tk)
			ob := b.Observe(3, tk)
			if oa != ob {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSaturatingMPRateBounded: misprediction rate can never exceed 50% by
// more than the transient on an i.i.d. stream — the predictor is at least as
// good as random in steady state.
func TestSaturatingMPRateBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Float64()
		pred := MustSaturating(6, BiasNone)
		mp := 0
		const n = 20000
		for i := 0; i < n; i++ {
			taken := rng.Float64() >= p
			if pred.Observe(0, taken).Mispredicted() {
				mp++
			}
		}
		return float64(mp)/n <= 0.55
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
