// Package cache implements a software model of a multi-level CPU data-cache
// hierarchy: set-associative LRU levels, a sequential stream prefetcher, and
// per-level access/hit/miss accounting.
//
// The paper's cache cost model (§3.1) reasons about *L3 accesses*, defined as
// demand requests that miss L2 plus prefetcher requests, because that event
// count is independent of out-of-order execution. The hierarchy here produces
// exactly that counter from the address stream of the simulated query, which
// is what the progressive optimizer samples at vector boundaries.
package cache

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	// Name is a short label such as "L1" (for reports and errors).
	Name string
	// SizeBytes is the total capacity of the level.
	SizeBytes int
	// LineSize is the cache-line size in bytes; it must be a power of two and
	// identical across all levels of a hierarchy.
	LineSize int
	// Ways is the set associativity; it must divide SizeBytes/LineSize.
	Ways int
	// LatencyCycles is the load-to-use latency of a hit in this level.
	LatencyCycles int
}

// Lines returns the capacity of the level in cache lines (the paper's "#_i").
func (c Config) Lines() int { return c.SizeBytes / c.LineSize }

func (c Config) validate() error {
	if c.SizeBytes <= 0 {
		return fmt.Errorf("cache %s: non-positive size %d", c.Name, c.SizeBytes)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d is not a positive power of two", c.Name, c.LineSize)
	}
	lines := c.SizeBytes / c.LineSize
	if lines*c.LineSize != c.SizeBytes || lines == 0 {
		return fmt.Errorf("cache %s: size %d is not a positive multiple of line size %d", c.Name, c.SizeBytes, c.LineSize)
	}
	if c.Ways <= 0 || lines%c.Ways != 0 {
		return fmt.Errorf("cache %s: %d ways does not divide %d lines", c.Name, c.Ways, lines)
	}
	if c.Ways > 1<<16 {
		return fmt.Errorf("cache %s: %d ways exceeds the supported maximum of %d", c.Name, c.Ways, 1<<16)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, sets)
	}
	if c.LatencyCycles < 0 {
		return fmt.Errorf("cache %s: negative latency", c.Name)
	}
	return nil
}

// Stats accumulates the per-level event counts the PMU exposes.
type Stats struct {
	// Accesses counts lookups (demand only; prefetch inserts are separate).
	Accesses uint64
	// Hits counts lookups that found the line.
	Hits uint64
	// Misses counts lookups that did not find the line.
	Misses uint64
	// PrefetchInserts counts lines installed by the prefetcher.
	PrefetchInserts uint64
}

// Level is one set-associative LRU cache level. The tag array is kept apart
// from the recency links so a set probe — the hot path — scans a contiguous
// run of bare uint64 tags, half the memory of an interleaved record.
type Level struct {
	cfg      Config
	setMask  uint64
	setShift uint
	// pshift is the set-index bit count: ln >> pshift strips the bits every
	// tag of a set shares, so the byte below is the partial tag (see findWay).
	pshift uint
	ways   int
	tags   []uint64 // sets*ways entries, way-major; line id + 1, 0 = empty
	// ptags holds one partial tag per way — the low byte of the line id above
	// the set index — maintained on every tags write. A set's ptags are a
	// contiguous byte run, so an 8- or 16-way probe filters candidates with
	// one or two word-sized SWAR compares before touching full tags.
	ptags []uint8
	// prev/next thread each set's ways into a circular list ordered by
	// recency: the set's head way is the MRU, head.prev is the LRU. Recency
	// is therefore *positional* — there is no timestamp counter anywhere in
	// the level, so LRU state cannot overflow in any run, of any length, by
	// construction (the overflow-safety proof for what used to be a uint64
	// LRU clock). Values are way indices within the set; both slices are
	// indexed like tags (set base + way).
	prev, next []uint16
	heads      []uint16 // per-set MRU way index
	stats      Stats
	// lastSlot is the tag-array index touched by the most recent Lookup hit
	// or Insert, consumed by the hierarchy's same-line fast path.
	lastSlot int
}

// NewLevel builds a cache level from its configuration.
func NewLevel(cfg Config) (*Level, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lines := cfg.Lines()
	sets := lines / cfg.Ways
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	l := &Level{
		cfg:      cfg,
		setMask:  uint64(sets - 1),
		setShift: shift,
		pshift:   uint(bits.TrailingZeros64(uint64(sets))),
		ways:     cfg.Ways,
		tags:     make([]uint64, lines),
		ptags:    make([]uint8, lines),
		prev:     make([]uint16, lines),
		next:     make([]uint16, lines),
		heads:    make([]uint16, sets),
	}
	l.linkRings()
	return l, nil
}

// linkRings threads every set's ways into the initial recency ring
// w0 → w1 → ... → w(ways-1) with w0 as head. Empty slots are never touched,
// so they sink behind every occupied way and the ring tail is an empty slot
// for as long as the set has one — matching a fill policy that never evicts
// while an empty way exists.
func (l *Level) linkRings() {
	w := l.ways
	for s := 0; s < len(l.heads); s++ {
		base := s * w
		for i := 0; i < w; i++ {
			l.prev[base+i] = uint16((i - 1 + w) % w)
			l.next[base+i] = uint16((i + 1) % w)
		}
		l.heads[s] = 0
	}
}

// Config returns the level's configuration.
func (l *Level) Config() Config { return l.cfg }

// Stats returns a copy of the level's counters.
func (l *Level) Stats() Stats { return l.stats }

// line converts a byte address to a line id offset by 1 so that 0 stays an
// "empty slot" sentinel in the tag arrays.
func (l *Level) line(addr uint64) uint64 { return (addr >> l.setShift) + 1 }

// swarOnes/swarHighs are the byte-broadcast constants of the SWAR
// has-zero-byte trick.
const (
	swarOnes  = 0x0101010101010101
	swarHighs = 0x8080808080808080
)

// findWay scans the set at tag base for ln and returns its way index or -1.
//
// The scan is two-tier for the shipped associativities (8- and 16-way): the
// set's one-byte partial tags are compared eight ways at a time with one
// word-sized SWAR operation, and only candidate ways are verified against
// the full tag. A zero byte in word^broadcast(h) always flags its position
// (no false negatives), while borrow artifacts and genuine hash collisions
// only flag spurious candidates that the full-tag compare rejects — so the
// result is exactly the linear scan's, but a probe of a 16-way set that
// misses touches ~2 words instead of 16 tags (with an 8-bit partial tag,
// ~94% of random 16-way misses have no candidate at all). The generic loop
// covers other (test-only) geometries.
func (l *Level) findWay(base int, ln uint64) int {
	h := uint8(ln >> l.pshift)
	switch l.ways {
	case 16:
		if w := matchWord(binary.LittleEndian.Uint64(l.ptags[base:base+8]), h, l.tags[base:base+8], ln); w >= 0 {
			return w
		}
		if w := matchWord(binary.LittleEndian.Uint64(l.ptags[base+8:base+16]), h, l.tags[base+8:base+16], ln); w >= 0 {
			return 8 + w
		}
		return -1
	case 8:
		return matchWord(binary.LittleEndian.Uint64(l.ptags[base:base+8]), h, l.tags[base:base+8], ln)
	default:
		tags := l.tags[base : base+l.ways]
		for w := range tags {
			if tags[w] == ln {
				return w
			}
		}
		return -1
	}
}

// matchWord locates ln among eight ways whose partial tags are packed
// little-endian in word: byte positions equal to h become zero bytes of
// word XOR broadcast(h), are flagged low-to-high by the has-zero-byte trick,
// and each flagged way is verified against the full tag.
func matchWord(word uint64, h uint8, tags []uint64, ln uint64) int {
	x := word ^ (swarOnes * uint64(h))
	zeros := (x - swarOnes) &^ x & swarHighs
	for zeros != 0 {
		w := bits.TrailingZeros64(zeros) >> 3
		if tags[w] == ln {
			return w
		}
		zeros &= zeros - 1
	}
	return -1
}

// moveToHead makes way w the MRU of the set rooted at base. O(1): a no-op
// when w is already the head (the overwhelmingly common case for repeated
// touches, kept small enough to inline), else unlink-and-relink.
func (l *Level) moveToHead(set int, base, w int) {
	if int(l.heads[set]) != w {
		l.moveToHeadSlow(set, base, w)
	}
}

func (l *Level) moveToHeadSlow(set int, base, w int) {
	head := int(l.heads[set])
	if int(l.prev[base+head]) == w {
		// w is the ring predecessor of head: rotating the head makes w MRU
		// and keeps every other relative position.
		l.heads[set] = uint16(w)
		return
	}
	// Unlink w ...
	pw, nw := l.prev[base+w], l.next[base+w]
	l.next[base+int(pw)] = nw
	l.prev[base+int(nw)] = pw
	// ... and splice it in before head (between head.prev and head).
	tail := l.prev[base+head]
	l.prev[base+w] = tail
	l.next[base+w] = uint16(head)
	l.next[base+int(tail)] = uint16(w)
	l.prev[base+head] = uint16(w)
	l.heads[set] = uint16(w)
}

// Lookup probes the level for the line containing addr, updating LRU state
// and counters. It reports whether the line was present and does NOT insert
// on a miss; the hierarchy decides fills.
func (l *Level) Lookup(addr uint64) bool {
	return l.LookupLine(l.line(addr))
}

// LookupLine is Lookup on a precomputed line id (the hierarchy computes the
// id once per access and probes every level with it — all levels of a
// hierarchy share one line size).
func (l *Level) LookupLine(ln uint64) bool {
	set := int(ln & l.setMask)
	base := set * l.ways
	l.stats.Accesses++
	if w := l.findWay(base, ln); w >= 0 {
		l.moveToHead(set, base, w)
		l.stats.Hits++
		l.lastSlot = base + w
		return true
	}
	l.stats.Misses++
	return false
}

// LastSlot returns the tag-array index touched by the most recent Lookup hit
// or Insert.
func (l *Level) LastSlot() int { return l.lastSlot }

// TouchLine re-references line ln known (from the immediately preceding
// access) to reside at tag slot idx, with counter and LRU effects identical
// to a hit Lookup: one access, one hit, promotion to MRU. It reports false —
// leaving all state untouched — if the slot no longer holds the line, in
// which case the caller must fall back to Lookup.
func (l *Level) TouchLine(idx int, ln uint64) bool {
	return l.TouchLineN(idx, ln, 1)
}

// TouchLineN is TouchLine repeated n times in one step. Because no other
// access intervenes, n sequential hit Lookups of the same line leave exactly
// this state: n accesses and n hits counted and the line at MRU.
func (l *Level) TouchLineN(idx int, ln uint64, n int) bool {
	if n <= 0 || idx < 0 || idx >= len(l.tags) {
		return false
	}
	return l.touchLineSlotN(idx, ln, n)
}

// touchLineSlotN records n hit-Lookup-equivalent touches of line ln at slot
// idx, validating only that the slot still holds the line (the index is known
// in range). The set is derived from the line id — the same computation every
// probe uses — so the touch fast path carries no division or scan.
func (l *Level) touchLineSlotN(idx int, ln uint64, n int) bool {
	if l.tags[idx] != ln {
		return false
	}
	l.stats.Accesses += uint64(n)
	l.stats.Hits += uint64(n)
	set := int(ln & l.setMask)
	l.moveToHead(set, set*l.ways, idx-set*l.ways)
	l.lastSlot = idx
	return true
}

// touchSlotN is touchLineSlotN for a slot the caller just demand-loaded in
// the same batched run (validity established, line id known).
func (l *Level) touchSlotN(idx int, ln uint64, n int) {
	l.stats.Accesses += uint64(n)
	l.stats.Hits += uint64(n)
	set := int(ln & l.setMask)
	l.moveToHead(set, set*l.ways, idx-set*l.ways)
	l.lastSlot = idx
}

// Contains reports whether the line holding addr is present, without touching
// counters or LRU state (used by the prefetcher to avoid duplicate inserts).
func (l *Level) Contains(addr uint64) bool {
	return l.ContainsLine(l.line(addr))
}

// ContainsLine is Contains on a precomputed line id.
func (l *Level) ContainsLine(ln uint64) bool {
	return l.findWay(int(ln&l.setMask)*l.ways, ln) >= 0
}

// Insert installs the line containing addr, evicting the LRU way of its set
// if needed. prefetch marks the insert as prefetcher-initiated for counting.
func (l *Level) Insert(addr uint64, prefetch bool) {
	l.InsertLine(l.line(addr), prefetch)
}

// InsertLine is Insert on a precomputed line id.
func (l *Level) InsertLine(ln uint64, prefetch bool) {
	set := int(ln & l.setMask)
	base := set * l.ways
	if w := l.findWay(base, ln); w >= 0 {
		// Already present; refresh to MRU.
		l.moveToHead(set, base, w)
		l.lastSlot = base + w
		return
	}
	l.fillLRU(set, base, ln)
	if prefetch {
		l.stats.PrefetchInserts++
	}
}

// insertLineAbsent is InsertLine for a line the caller has just proven absent
// (its own Lookup missed with no intervening mutation of this level) — the
// demand-fill path, which skips the present-already probe entirely.
func (l *Level) insertLineAbsent(ln uint64) {
	set := int(ln & l.setMask)
	l.fillLRU(set, set*l.ways, ln)
}

// fillLRU installs ln in the set's LRU way — the ring tail, which is an
// empty slot whenever the set has one (see linkRings) — and promotes it to
// MRU by rotating the head onto it. O(1), no scan.
func (l *Level) fillLRU(set, base int, ln uint64) {
	victim := l.prev[base+int(l.heads[set])]
	l.tags[base+int(victim)] = ln
	l.ptags[base+int(victim)] = uint8(ln >> l.pshift)
	l.heads[set] = victim
	l.lastSlot = base + int(victim)
}

// Flush empties the level and leaves counters intact. Ring order is not
// reset: with every slot empty, recency among empties is irrelevant (fills
// take the tail, which cycles through the empty ways in ring order).
func (l *Level) Flush() {
	for i := range l.tags {
		l.tags[i] = 0
	}
	for i := range l.ptags {
		l.ptags[i] = 0
	}
}

// ResetStats zeroes the level's counters.
func (l *Level) ResetStats() { l.stats = Stats{} }
