package service

// LRU is a small least-recently-used cache keyed by plan fingerprint. It is
// deliberately simple — cache sizes are tens of entries, and the linear
// recency scan keeps it allocation-free and deterministic. Not safe for
// concurrent use; callers hold the server lock.
type LRU struct {
	cap       int
	values    map[Fingerprint]any
	recency   []Fingerprint // least recently used first
	evictions int
}

// NewLRU builds a cache holding at most cap entries (cap <= 0 means 1).
func NewLRU(cap int) *LRU {
	if cap <= 0 {
		cap = 1
	}
	return &LRU{cap: cap, values: make(map[Fingerprint]any, cap)}
}

// Get returns the cached value and marks it most recently used.
func (l *LRU) Get(k Fingerprint) (any, bool) {
	v, ok := l.values[k]
	if ok {
		l.touch(k)
	}
	return v, ok
}

// Put inserts or refreshes an entry, evicting the least recently used entry
// beyond capacity.
func (l *LRU) Put(k Fingerprint, v any) {
	if _, ok := l.values[k]; ok {
		l.values[k] = v
		l.touch(k)
		return
	}
	if len(l.values) >= l.cap {
		victim := l.recency[0]
		l.recency = l.recency[1:]
		delete(l.values, victim)
		l.evictions++
	}
	l.values[k] = v
	l.recency = append(l.recency, k)
}

// touch moves k to the most-recently-used position.
func (l *LRU) touch(k Fingerprint) {
	for i, r := range l.recency {
		if r == k {
			copy(l.recency[i:], l.recency[i+1:])
			l.recency[len(l.recency)-1] = k
			return
		}
	}
}

// Len returns the number of cached entries.
func (l *LRU) Len() int { return len(l.values) }

// Cap returns the configured capacity.
func (l *LRU) Cap() int { return l.cap }

// Evictions returns how many entries capacity pressure has evicted.
func (l *LRU) Evictions() int { return l.evictions }
