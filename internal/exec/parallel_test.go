package exec

import (
	"testing"

	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

func parallelFixture(t *testing.T) (*tpch.Dataset, *Query) {
	t.Helper()
	d := tpch.MustGenerate(tpch.Config{Lineitems: 50000, Seed: 2})
	q, err := Q6(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024).BindQuery(q); err != nil {
		t.Fatal(err)
	}
	return d, q
}

// TestParallelMatchesSerial: the morsel-driven executor produces bit-
// identical Qualifying and Sum to a serial run for every worker count, and
// because scheduling runs on simulated clocks, repeated runs reproduce the
// cycle counts exactly.
func TestParallelMatchesSerial(t *testing.T) {
	_, q := parallelFixture(t)
	serialEng := MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024)
	serial, err := serialEng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		var prevCycles uint64
		for rep := 0; rep < 2; rep++ {
			p, err := NewParallel(cpu.ScaledXeon(), workers, 1024)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Qualifying != serial.Qualifying {
				t.Errorf("workers=%d: qualifying %d, serial %d", workers, res.Qualifying, serial.Qualifying)
			}
			if res.Sum != serial.Sum { // bit-identical reduction
				t.Errorf("workers=%d: sum %v, serial %v", workers, res.Sum, serial.Sum)
			}
			if res.Vectors != serial.Vectors {
				t.Errorf("workers=%d: vectors %d, serial %d", workers, res.Vectors, serial.Vectors)
			}
			if rep == 1 && res.Cycles != prevCycles {
				t.Errorf("workers=%d: nondeterministic makespan %d vs %d", workers, res.Cycles, prevCycles)
			}
			prevCycles = res.Cycles
		}
	}
}

// TestParallelSpeedup: the makespan shrinks with added cores on a morsel-
// decomposable scan.
func TestParallelSpeedup(t *testing.T) {
	_, q := parallelFixture(t)
	makespan := func(workers int) uint64 {
		p, err := NewParallel(cpu.ScaledXeon(), workers, 1024)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	one, four := makespan(1), makespan(4)
	if speedup := float64(one) / float64(four); speedup < 2.5 {
		t.Errorf("4-core speedup %.2f, want >= 2.5 (1 core: %d cycles, 4 cores: %d)", speedup, one, four)
	}
}

// TestParallelLoadBalance: the simulated-clock scheduler keeps per-core work
// within a morsel of each other.
func TestParallelLoadBalance(t *testing.T) {
	_, q := parallelFixture(t)
	p, err := NewParallel(cpu.ScaledXeon(), 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	br, err := p.RunBlock(q, 0, p.NumVectors(q))
	if err != nil {
		t.Fatal(err)
	}
	var min uint64 = ^uint64(0)
	for _, c := range br.WorkerCycles {
		if c < min {
			min = c
		}
	}
	if float64(br.MaxCycles) > 1.25*float64(min) {
		t.Errorf("imbalanced workers: %v", br.WorkerCycles)
	}
}

// TestParallelBlockValidation pins RunBlock's range checking.
func TestParallelBlockValidation(t *testing.T) {
	_, q := parallelFixture(t)
	p, err := NewParallel(cpu.ScaledXeon(), 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	nv := p.NumVectors(q)
	if _, err := p.RunBlock(q, -1, nv); err == nil {
		t.Error("negative block start accepted")
	}
	if _, err := p.RunBlock(q, 0, nv+1); err == nil {
		t.Error("block beyond table accepted")
	}
	if _, err := p.RunBlock(q, 3, 2); err == nil {
		t.Error("inverted block accepted")
	}
	if _, err := NewParallel(cpu.ScaledXeon(), 0, 1024); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewParallel(cpu.ScaledXeon(), 2, 0); err == nil {
		t.Error("zero vector size accepted")
	}
}
