package cache

import (
	"fmt"
	"sort"
)

// StorageSet models one core's view of a persistent storage tier below DRAM.
// Address windows of the simulated address space (the decoded image of a
// stored column, and optionally its packed image) are registered against
// logical blocks — the unit of transfer. Whenever a demand or prefetch
// access misses all the way to memory, the hierarchy consults the set: if
// the line belongs to a block that is not resident in the DRAM budget, the
// access additionally pays a block fetch (seek latency plus the block's
// encoded bytes over the tier bandwidth) and the block becomes resident,
// evicting least-recently-used blocks past the budget.
//
// The tier is an observer: it never changes which cache level satisfies an
// access, which lines are installed, or any PMU-visible counter — it only
// adds whole stall cycles. That is the bit-identity contract: a run over
// stored data retires the identical instruction and event stream as the
// in-RAM run and differs in cycles by exactly the accumulated storage
// stalls.
type StorageSet struct {
	cfg StorageConfig

	// ranges map address windows to logical blocks, kept sorted by base.
	ranges []storRange
	sorted bool
	// lastRange memoizes the previously matched range (scans touch blocks
	// in long sequential runs).
	lastRange int

	// Per logical block: transfer cost and residency/LRU state. The LRU is
	// an intrusive doubly-linked list over resident blocks (head = MRU).
	costBytes  []uint64
	resident   []bool
	prev, next []int32
	head, tail int32

	residentBytes uint64
	ctr           StorageCounters

	// obs, when non-nil, is notified of fetches and evictions (see
	// StorageObserver). Purely observational: set after counter updates.
	obs StorageObserver
}

// StorageConfig prices the tier.
type StorageConfig struct {
	// LatencyCycles is the fixed cost of one block fetch (the seek).
	LatencyCycles uint64
	// BytesPerCycle is the transfer bandwidth (minimum 1).
	BytesPerCycle uint64
	// BudgetBytes bounds the resident set, in encoded bytes; 0 = unbounded.
	BudgetBytes uint64
}

// StorageEventKind discriminates the tier events an observer can receive.
type StorageEventKind uint8

// Storage event kinds.
const (
	// StorageFetch is a block transfer from the tier (carries bytes + stall).
	StorageFetch StorageEventKind = iota
	// StorageEvict is a block dropped to fit the budget.
	StorageEvict
)

// StorageObserver receives tier events as they are priced: the block id, the
// encoded bytes moved (fetches only), and the stall cycles charged. Observers
// must be pure with respect to the simulation — the set calls them after all
// counter updates, and they see exactly the deterministic per-core event
// order. Per-access hits are not reported (residency is visible through
// Counters); fetch/evict traffic is bounded by the block count per pass.
type StorageObserver func(kind StorageEventKind, block int, bytes, stall uint64)

// SetObserver installs (or, with nil, removes) the tier event observer.
func (s *StorageSet) SetObserver(obs StorageObserver) { s.obs = obs }

// StorageCounters are the tier's monotonic statistics.
type StorageCounters struct {
	// BlockFetches counts block transfers from the tier.
	BlockFetches uint64
	// BlockHits counts accesses to already-resident blocks.
	BlockHits uint64
	// BytesFetched sums the encoded bytes of every fetch.
	BytesFetched uint64
	// Evictions counts blocks dropped to fit the budget.
	Evictions uint64
	// StallCycles sums the stall cycles charged for fetches.
	StallCycles uint64
}

// Sub returns a - b, counter-wise.
func (a StorageCounters) Sub(b StorageCounters) StorageCounters {
	return StorageCounters{
		BlockFetches: a.BlockFetches - b.BlockFetches,
		BlockHits:    a.BlockHits - b.BlockHits,
		BytesFetched: a.BytesFetched - b.BytesFetched,
		Evictions:    a.Evictions - b.Evictions,
		StallCycles:  a.StallCycles - b.StallCycles,
	}
}

// Add returns a + b, counter-wise.
func (a StorageCounters) Add(b StorageCounters) StorageCounters {
	return StorageCounters{
		BlockFetches: a.BlockFetches + b.BlockFetches,
		BlockHits:    a.BlockHits + b.BlockHits,
		BytesFetched: a.BytesFetched + b.BytesFetched,
		Evictions:    a.Evictions + b.Evictions,
		StallCycles:  a.StallCycles + b.StallCycles,
	}
}

type storRange struct {
	base, end uint64
	block     int32
}

// NewStorageSet builds an empty tier view.
func NewStorageSet(cfg StorageConfig) *StorageSet {
	if cfg.BytesPerCycle == 0 {
		cfg.BytesPerCycle = 1
	}
	return &StorageSet{cfg: cfg, head: -1, tail: -1, lastRange: -1}
}

// Config returns the pricing configuration.
func (s *StorageSet) Config() StorageConfig { return s.cfg }

// NumBlocks returns the logical block count.
func (s *StorageSet) NumBlocks() int { return len(s.costBytes) }

// AddBlock registers a logical block of the given encoded transfer size and
// returns its id.
func (s *StorageSet) AddBlock(costBytes uint64) int {
	s.costBytes = append(s.costBytes, costBytes)
	s.resident = append(s.resident, false)
	s.prev = append(s.prev, -1)
	s.next = append(s.next, -1)
	return len(s.costBytes) - 1
}

// AddRange maps the address window [base, base+span) to the given block.
// Windows must not overlap; several windows may share a block (a column
// block's decoded and packed images are one residency unit).
func (s *StorageSet) AddRange(base, span uint64, block int) error {
	if block < 0 || block >= len(s.costBytes) {
		return fmt.Errorf("cache: storage range names unknown block %d", block)
	}
	if span == 0 {
		return nil
	}
	s.ranges = append(s.ranges, storRange{base: base, end: base + span, block: int32(block)})
	s.sorted = false
	return nil
}

// seal sorts and validates the range table (called on first touch).
func (s *StorageSet) seal() {
	sort.Slice(s.ranges, func(a, b int) bool { return s.ranges[a].base < s.ranges[b].base })
	for i := 1; i < len(s.ranges); i++ {
		if s.ranges[i].base < s.ranges[i-1].end {
			panic(fmt.Sprintf("cache: storage ranges overlap at %#x", s.ranges[i].base))
		}
	}
	s.sorted = true
	s.lastRange = -1
}

// Touch observes a memory-level access to addr and returns the stall cycles
// it causes: zero for addresses outside every registered window or within a
// resident block, the fetch cost otherwise. Resident blocks are bumped to
// MRU either way.
func (s *StorageSet) Touch(addr uint64) uint64 {
	if !s.sorted {
		s.seal()
	}
	ri := s.lastRange
	if ri < 0 || addr < s.ranges[ri].base || addr >= s.ranges[ri].end {
		ri = s.findRange(addr)
		if ri < 0 {
			return 0
		}
		s.lastRange = ri
	}
	b := s.ranges[ri].block
	if s.resident[b] {
		s.ctr.BlockHits++
		s.bumpMRU(b)
		return 0
	}
	return s.fetch(b)
}

// findRange locates the window containing addr, or -1.
func (s *StorageSet) findRange(addr uint64) int {
	lo, hi := 0, len(s.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.ranges[mid].end <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.ranges) && addr >= s.ranges[lo].base {
		return lo
	}
	return -1
}

// fetch transfers block b in, evicting past the budget, and returns the
// stall cycles charged.
func (s *StorageSet) fetch(b int32) uint64 {
	cost := s.costBytes[b]
	stall := s.cfg.LatencyCycles + (cost+s.cfg.BytesPerCycle-1)/s.cfg.BytesPerCycle
	s.ctr.BlockFetches++
	s.ctr.BytesFetched += cost
	s.ctr.StallCycles += stall

	s.resident[b] = true
	s.residentBytes += cost
	s.prev[b] = -1
	s.next[b] = s.head
	if s.head >= 0 {
		s.prev[s.head] = b
	}
	s.head = b
	if s.tail < 0 {
		s.tail = b
	}
	if s.obs != nil {
		s.obs(StorageFetch, int(b), cost, stall)
	}
	if s.cfg.BudgetBytes > 0 {
		for s.residentBytes > s.cfg.BudgetBytes && s.tail != b {
			s.evictTail()
		}
	}
	return stall
}

// bumpMRU moves resident block b to the list head.
func (s *StorageSet) bumpMRU(b int32) {
	if s.head == b {
		return
	}
	p, n := s.prev[b], s.next[b]
	if p >= 0 {
		s.next[p] = n
	}
	if n >= 0 {
		s.prev[n] = p
	}
	if s.tail == b {
		s.tail = p
	}
	s.prev[b] = -1
	s.next[b] = s.head
	if s.head >= 0 {
		s.prev[s.head] = b
	}
	s.head = b
}

// evictTail drops the LRU block.
func (s *StorageSet) evictTail() {
	b := s.tail
	if b < 0 {
		return
	}
	s.resident[b] = false
	s.residentBytes -= s.costBytes[b]
	s.ctr.Evictions++
	if s.obs != nil {
		s.obs(StorageEvict, int(b), 0, 0)
	}
	p := s.prev[b]
	s.tail = p
	if p >= 0 {
		s.next[p] = -1
	} else {
		s.head = -1
	}
	s.prev[b] = -1
	s.next[b] = -1
}

// Counters returns the monotonic statistics.
func (s *StorageSet) Counters() StorageCounters { return s.ctr }

// ResidentBytes returns the bytes currently held in the DRAM budget.
func (s *StorageSet) ResidentBytes() uint64 { return s.residentBytes }

// DropResidency empties the resident set without touching counters — the
// storage-tier analogue of a cache flush, used to measure cold scans.
func (s *StorageSet) DropResidency() {
	for i := range s.resident {
		s.resident[i] = false
		s.prev[i] = -1
		s.next[i] = -1
	}
	s.head, s.tail = -1, -1
	s.residentBytes = 0
}
