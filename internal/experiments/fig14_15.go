package experiments

import (
	"fmt"
	"sort"

	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
)

// Fig14 reproduces Figure 14: an expensive selection combined with a
// foreign-key join, executed in both operator orders over data sets of
// decreasing sortedness (windowed Knuth shuffle at 1 tuple, one cache line,
// 100 tuples, 1K tuples, L1-, L2-, L3-sized windows, and fully random).
// Runtime and L3 cache misses both cross over once the shuffle distance
// exceeds the upper cache levels.
func Fig14(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	rows := 128 * cfg.VectorSize
	if cfg.Quick {
		// Keep the orders table beyond the upper cache levels at quick scale:
		// the batch kernels gather join keys op-major, and a cache-resident
		// build side would erase the locality contrast the figure measures.
		rows = 96 * cfg.VectorSize
	}
	prof := cpu.ScaledXeon()
	// Shuffle windows in tuples of the 8-byte orderkey column.
	type win struct {
		label  string
		tuples int
	}
	wins := []win{
		{"1T", 1},
		{"CL", prof.Hierarchy.L1.LineSize / 8},
		{"100T", 100},
		{"L1", prof.Hierarchy.L1.SizeBytes / 8},
		{"1KT", 1000},
		{"L2", prof.Hierarchy.L2.SizeBytes / 8},
		{"L3", prof.Hierarchy.L3.SizeBytes / 8},
		{"Mem", rows},
	}
	// The scaled L1 covers fewer tuples than the paper's (2 KB vs 32 KB), so
	// keep the axis sorted by window size rather than by the paper's labels.
	sort.Slice(wins, func(a, b int) bool { return wins[a].tuples < wins[b].tuples })
	if cfg.Quick {
		wins = []win{{"1T", 1}, {"L1", prof.Hierarchy.L1.SizeBytes / 8}, {"Mem", rows}}
	}
	d0, err := cachedDataset(rows, cfg.Seed)
	if err != nil {
		return nil, err
	}

	repRT := &Report{
		ID:      "fig14a",
		Title:   "Exploitation of sortedness: runtime",
		Columns: []string{"sortedness", "selection_first_ms", "join_first_ms"},
		Notes: []string{
			fmt.Sprintf("%d lineitems; expensive selection (sel 0.5) + FK join to orders (filter sel 0.5)", rows),
			"windowed Knuth shuffle over the orderkey-sorted (co-clustered) order",
		},
	}
	repCM := &Report{
		ID:      "fig14b",
		Title:   "Exploitation of sortedness: L3 cache misses",
		Columns: []string{"sortedness", "selection_first_l3miss", "join_first_l3miss"},
	}

	for _, w := range wins {
		d := cachedShuffledDataset(d0, rows, cfg.Seed, w.tuples, cfg.Seed+int64(w.tuples))
		r, err := newRig(prof, cfg)
		if err != nil {
			return nil, err
		}
		// Expensive selection: quantity <= 25 has selectivity ~0.5; the
		// extra cost models a string match / UDF.
		sel := &exec.Predicate{
			Col: d.Lineitem.Column("l_quantity"), Op: exec.LE, I: 25,
			ExtraCostInstr: 40, Label: "expensive-sel",
		}
		dateCut := cachedQuantileInt32(d.Orders.Column("o_orderdate"), 0.5)
		filter := &exec.Predicate{Col: d.Orders.Column("o_orderdate"), Op: exec.LE, I: int64(dateCut)}
		join, err := exec.NewFKJoin(r.cpu, d.Lineitem.Column("l_orderkey"), d.NumOrders, filter, "fk-orders")
		if err != nil {
			return nil, err
		}
		q := &exec.Query{Table: d.Lineitem, Ops: []exec.Op{sel, join}}
		if err := r.bind(q); err != nil {
			return nil, err
		}

		measure := func(perm []int) (float64, uint64, error) {
			res, err := r.measureBaseline(q, perm)
			if err != nil {
				return 0, 0, err
			}
			return res.Millis, res.Counters.Get(pmu.L3Miss), nil
		}
		selMs, selMiss, err := measure([]int{0, 1})
		if err != nil {
			return nil, err
		}
		joinMs, joinMiss, err := measure([]int{1, 0})
		if err != nil {
			return nil, err
		}
		repRT.Rows = append(repRT.Rows, []string{w.label, fmtMs(selMs), fmtMs(joinMs)})
		repCM.Rows = append(repCM.Rows, []string{w.label,
			fmt.Sprintf("%d", selMiss), fmt.Sprintf("%d", joinMiss)})
	}
	return []*Report{repRT, repCM}, nil
}

// Fig15 reproduces Figure 15: joining lineitem with orders and part in both
// orders over a sweep of the joins' filter selectivities. Orders is eight
// times larger than part, yet joining orders first is always faster because
// lineitem and orders are co-clustered — the size-based heuristic is wrong
// and the sampled cache misses reveal it.
func Fig15(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	rows := 128 * cfg.VectorSize
	if cfg.Quick {
		// The quick scale still has to keep the part table (rows/30 entries of
		// bucket array + filter column) well beyond the scaled L2: the batch
		// kernels probe the build side op-major, so a cache-resident part
		// table would erase the random-access penalty the figure measures.
		rows = 96 * cfg.VectorSize
	}
	d, err := cachedDataset(rows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sels := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	if cfg.Quick {
		sels = []float64{0.2, 0.8}
	}
	repRT := &Report{
		ID:      "fig15a",
		Title:   "Foreign-key join order: runtime",
		Columns: []string{"join_sel_pct", "orders_first_ms", "part_first_ms"},
		Notes: []string{
			fmt.Sprintf("%d lineitems; orders %d rows (co-clustered), part %d rows (random access)",
				rows, d.NumOrders, d.NumParts),
		},
	}
	repCM := &Report{
		ID:      "fig15b",
		Title:   "Foreign-key join order: L3 cache misses",
		Columns: []string{"join_sel_pct", "orders_first_l3miss", "part_first_l3miss"},
	}
	for _, sel := range sels {
		r, err := newRig(cpu.ScaledXeon(), cfg)
		if err != nil {
			return nil, err
		}
		dateCut := cachedQuantileInt32(d.Orders.Column("o_orderdate"), sel)
		oFilter := &exec.Predicate{Col: d.Orders.Column("o_orderdate"), Op: exec.LE, I: int64(dateCut)}
		oJoin, err := exec.NewFKJoin(r.cpu, d.Lineitem.Column("l_orderkey"), d.NumOrders, oFilter, "join-orders")
		if err != nil {
			return nil, err
		}
		sizeCut := int64(float64(50) * sel)
		pFilter := &exec.Predicate{Col: d.Part.Column("p_size"), Op: exec.LE, I: sizeCut}
		pJoin, err := exec.NewFKJoin(r.cpu, d.Lineitem.Column("l_partkey"), d.NumParts, pFilter, "join-part")
		if err != nil {
			return nil, err
		}
		q := &exec.Query{Table: d.Lineitem, Ops: []exec.Op{oJoin, pJoin}}
		if err := r.bind(q); err != nil {
			return nil, err
		}
		measure := func(perm []int) (float64, uint64, error) {
			res, err := r.measureBaseline(q, perm)
			if err != nil {
				return 0, 0, err
			}
			return res.Millis, res.Counters.Get(pmu.L3Miss), nil
		}
		ordMs, ordMiss, err := measure([]int{0, 1})
		if err != nil {
			return nil, err
		}
		partMs, partMiss, err := measure([]int{1, 0})
		if err != nil {
			return nil, err
		}
		repRT.Rows = append(repRT.Rows, []string{fmtF(sel * 100), fmtMs(ordMs), fmtMs(partMs)})
		repCM.Rows = append(repCM.Rows, []string{fmtF(sel * 100),
			fmt.Sprintf("%d", ordMiss), fmt.Sprintf("%d", partMiss)})
	}
	return []*Report{repRT, repCM}, nil
}
