package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteChrome serializes the recorder as Chrome trace-event JSON (the format
// Perfetto and chrome://tracing load). One trace nanosecond equals one
// simulated cycle: timestamps are emitted as microseconds with three decimal
// places (ts = cycles/1000), which is exact for every cycle count below 2^53
// and keeps distinct cycles at distinct timestamps.
//
// The layout is fixed: a thread_name metadata event per track (pid 1, tid =
// track creation index), then each track's events in append order. Because
// append order per track is deterministic (see the package comment) and all
// numeric formatting is exact, identical simulations produce byte-identical
// files across runs, GOMAXPROCS settings, and hosts.
func (r *Recorder) WriteChrome(w io.Writer) error {
	var b bytes.Buffer
	b.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func() {
		if !first {
			b.WriteString(",\n")
		}
		first = false
	}
	for tid, t := range r.tracks {
		emit()
		fmt.Fprintf(&b, "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}",
			tid, jsonString(t.name))
	}
	for tid, t := range r.tracks {
		for i := range t.events {
			ev := &t.events[i]
			emit()
			if ev.Instant {
				fmt.Fprintf(&b, "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"s\":\"t\",\"name\":%s",
					tid, cyclesToTs(ev.Start), jsonString(ev.Name))
			} else {
				fmt.Fprintf(&b, "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%s",
					tid, cyclesToTs(ev.Start), cyclesToTs(ev.End-ev.Start), jsonString(ev.Name))
			}
			writeArgs(&b, ev.Args)
			b.WriteByte('}')
		}
		if t.dropped > 0 {
			emit()
			last := t.events[len(t.events)-1].End
			fmt.Fprintf(&b, "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"s\":\"t\",\"name\":\"events_dropped\",\"args\":{\"count\":%d}}",
				tid, cyclesToTs(last), t.dropped)
		}
	}
	b.WriteString("\n]}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// cyclesToTs renders a cycle count as microseconds at 1 cycle = 1 ns, with
// exactly three decimals: integer arithmetic only, so the rendering is exact.
func cyclesToTs(cycles uint64) string {
	return fmt.Sprintf("%d.%03d", cycles/1000, cycles%1000)
}

func writeArgs(b *bytes.Buffer, args []Arg) {
	if len(args) == 0 {
		return
	}
	b.WriteString(",\"args\":{")
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(jsonString(a.Key))
		b.WriteByte(':')
		writeVal(b, a.Val)
	}
	b.WriteByte('}')
}

func writeVal(b *bytes.Buffer, v any) {
	switch x := v.(type) {
	case uint64:
		b.WriteString(strconv.FormatUint(x, 10))
	case int:
		b.WriteString(strconv.Itoa(x))
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
	case float64:
		// shortest round-trip form; deterministic (pure-Go Ryū formatting)
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case bool:
		b.WriteString(strconv.FormatBool(x))
	case string:
		b.WriteString(jsonString(x))
	case []int:
		b.WriteByte('[')
		for i, n := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(n))
		}
		b.WriteByte(']')
	case []float64:
		b.WriteByte('[')
		for i, f := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
		}
		b.WriteByte(']')
	default:
		b.WriteString(jsonString(fmt.Sprintf("%v", x)))
	}
}

// jsonString renders s as a JSON string literal via encoding/json, whose
// escaping is deterministic.
func jsonString(s string) string {
	buf, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `"?"`
	}
	return string(buf)
}
