// Package pmu defines the performance-monitoring-unit event vocabulary of the
// simulated CPU and the sample arithmetic the progressive optimizer uses.
//
// The paper's approach (§2.2) hinges on two properties of real PMUs that this
// package preserves: reading counters is (virtually) free and non-invasive,
// and only a small number of programmable counters can be gathered
// simultaneously — the paper's four chosen events (branches not taken, taken
// mispredictions, not-taken mispredictions, L3 accesses) exactly fill the
// four programmable counter slots of an Intel core, which Group enforces.
package pmu

import "fmt"

// Event identifies one countable hardware event.
type Event int

// Events of the simulated PMU. BrNotTaken, BrMPTaken, BrMPNotTaken and
// L3Access are the four the paper samples.
const (
	// BrCond counts retired conditional branches.
	BrCond Event = iota
	// BrTaken counts retired conditional branches that were taken.
	BrTaken
	// BrNotTaken counts retired conditional branches that were not taken.
	BrNotTaken
	// BrMPTaken counts taken branches that were mispredicted (predicted not
	// taken, actually taken).
	BrMPTaken
	// BrMPNotTaken counts not-taken branches that were mispredicted.
	BrMPNotTaken
	// BrMP counts all mispredicted conditional branches.
	BrMP
	// L1Access counts demand loads presented to L1.
	L1Access
	// L1Miss counts demand loads that missed L1.
	L1Miss
	// L2Access counts demand requests presented to L2.
	L2Access
	// L2Miss counts demand requests that missed L2.
	L2Miss
	// L3Access counts requests presented to L3: demand requests from L2
	// misses plus prefetcher requests (the paper's counter, §2.2.2).
	L3Access
	// L3DemandAccess counts only the demand part of L3Access.
	L3DemandAccess
	// L3PrefetchAccess counts only the prefetcher part of L3Access.
	L3PrefetchAccess
	// L3Miss counts demand requests that missed L3 and went to memory.
	L3Miss
	// L3Hit counts demand requests that hit in L3.
	L3Hit
	// MemAccess counts cache lines transferred from memory (demand+prefetch).
	MemAccess
	// Instructions counts retired instructions (fixed counter 0).
	Instructions
	// Cycles counts elapsed core cycles (fixed counter 1).
	Cycles

	// NumEvents is the size of the event space.
	NumEvents
)

var eventNames = [NumEvents]string{
	"br_cond", "br_taken", "br_not_taken", "br_mp_taken", "br_mp_not_taken",
	"br_mp", "l1_access", "l1_miss", "l2_access", "l2_miss", "l3_access",
	"l3_demand_access", "l3_prefetch_access", "l3_miss", "l3_hit",
	"mem_access", "instructions", "cycles",
}

// String returns the perf-style event name.
func (e Event) String() string {
	if e < 0 || e >= NumEvents {
		return fmt.Sprintf("event(%d)", int(e))
	}
	return eventNames[e]
}

// Fixed reports whether the event occupies a fixed counter (always available,
// does not consume a programmable slot).
func (e Event) Fixed() bool { return e == Instructions || e == Cycles }

// ProgrammableSlots is the number of simultaneously available programmable
// counters, matching Intel general-purpose counters with hyper-threading on.
const ProgrammableSlots = 4

// Group is a validated set of events that can be collected in one run without
// multiplexing.
type Group struct {
	events []Event
}

// NewGroup validates that the given events fit the PMU simultaneously.
func NewGroup(events ...Event) (Group, error) {
	prog := 0
	seen := map[Event]bool{}
	for _, e := range events {
		if e < 0 || e >= NumEvents {
			return Group{}, fmt.Errorf("pmu: unknown event %d", int(e))
		}
		if seen[e] {
			return Group{}, fmt.Errorf("pmu: duplicate event %v", e)
		}
		seen[e] = true
		if !e.Fixed() {
			prog++
		}
	}
	if prog > ProgrammableSlots {
		return Group{}, fmt.Errorf("pmu: %d programmable events exceed %d slots", prog, ProgrammableSlots)
	}
	g := Group{events: append([]Event(nil), events...)}
	return g, nil
}

// PaperGroup returns the four-event group the paper's optimizer samples
// (§4.2) plus the two fixed counters.
func PaperGroup() Group {
	g, err := NewGroup(BrNotTaken, BrMPTaken, BrMPNotTaken, L3Access, Instructions, Cycles)
	if err != nil {
		panic(err) // statically valid
	}
	return g
}

// Events returns the group's event list.
func (g Group) Events() []Event { return append([]Event(nil), g.events...) }

// Sample is a snapshot of all counter values at one instant.
type Sample [NumEvents]uint64

// Get returns the value of one event.
func (s Sample) Get(e Event) uint64 { return s[e] }

// Sub returns s - prev per event (the delta over an execution interval, e.g.
// one vector).
func (s Sample) Sub(prev Sample) Sample {
	var d Sample
	for i := range s {
		d[i] = s[i] - prev[i]
	}
	return d
}

// Add returns s + other per event.
func (s Sample) Add(other Sample) Sample {
	var d Sample
	for i := range s {
		d[i] = s[i] + other[i]
	}
	return d
}

// Project returns a copy of s with every event outside the group zeroed,
// modelling that only the configured counters were actually collected.
func (s Sample) Project(g Group) Sample {
	var d Sample
	for _, e := range g.events {
		d[e] = s[e]
	}
	return d
}
