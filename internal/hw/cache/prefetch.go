package cache

// StreamPrefetcher models the L2 streamer of modern Intel parts: it watches
// the demand access stream at L2 (line granularity), detects ascending
// sequential streams, and pulls upcoming lines into L2 and L3 ahead of use.
// Each stream remembers how far it has already fetched so steady-state
// sequential scans issue exactly one new prefetch per new line.
//
// The prefetcher is what turns the paper's "random miss" into *two* L3 line
// transfers (§3.1's double-counting modification of the Pirk model): when a
// conditional-read column skips ahead of the prefetched window, the line the
// streamer fetched goes unused while the line actually needed costs a fresh
// demand access.
type StreamPrefetcher struct {
	// Degree is how many lines ahead the prefetcher runs once a stream is
	// confirmed.
	Degree int
	// Window is the maximum forward line distance still treated as the same
	// stream (tolerates skipped lines, as real streamers do).
	Window int
	// MinConfidence is how many consecutive stream hits are needed before
	// prefetching starts.
	MinConfidence int

	// The stream table is stored struct-of-arrays so the match scan — the
	// hottest loop of join-probe simulation, paid on every L1 miss — walks one
	// contiguous [16]uint64 of last-seen lines and nothing else. Empty entries
	// hold invalidLine, which no reachable observation can continue, so the
	// scan needs no validity test.
	lastLine   [streamTableSize]uint64
	issuedUpTo [streamTableSize]uint64
	confidence [streamTableSize]int32
	// prev/next thread the table entries into one circular list ordered by
	// recency (head = most recently touched, head.prev = victim). This is the
	// same positional-LRU construction as the cache sets: because every
	// Observe touches exactly one entry, recency order equals the old
	// last-use-timestamp order, and entries never touched (the empties) stay
	// in their seeded order so victims pop in index order 0, 1, 2, ... —
	// reproducing the old two-pass rule (first invalid entry, else least
	// recently used with ties impossible) without a victim scan.
	prev, next [streamTableSize]uint8
	head       uint8
	linked     bool
	buf        []uint64
	// Issued counts prefetch requests issued; each consumes an L3 access
	// slot, which is why the paper's L3-access counter includes them.
	Issued uint64
}

const streamTableSize = 16

// invalidLine marks an empty stream-table entry. A demand line would need to
// be within Window past it to continue the "stream", i.e. fall in
// [1<<63 + 1, 1<<63 + Window] — beyond any address a simulated allocation can
// produce — so empty entries can share the match scan with live ones.
const invalidLine = uint64(1) << 63

// NewStreamPrefetcher returns a prefetcher with typical streamer parameters:
// degree 2, window 4 lines, confidence threshold 2.
func NewStreamPrefetcher() *StreamPrefetcher {
	return &StreamPrefetcher{Degree: 2, Window: 4, MinConfidence: 2}
}

// link seeds the table: all entries empty, recency ring ordered so that the
// victim (ring tail) cycles 0, 1, ..., 15 while empties remain. The zero
// value of StreamPrefetcher is usable: Observe and Reset link on first use.
func (p *StreamPrefetcher) link() {
	for i := range p.lastLine {
		p.lastLine[i] = invalidLine
		// Recency order 15, 14, ..., 1, 0 from head to tail: entry 0 is the
		// first victim, then 1, matching first-empty-in-index-order.
		p.prev[i] = uint8((i + 1) % streamTableSize)
		p.next[i] = uint8((i - 1 + streamTableSize) % streamTableSize)
	}
	p.head = streamTableSize - 1
	p.linked = true
}

// Observe feeds one demand line id into the prefetcher and returns the line
// ids to prefetch, if any. The returned slice aliases an internal buffer and
// is valid until the next call.
//
// The first stream (in index order) whose window covers the line wins; when
// none matches, the least-recently-touched entry is replaced. Random access
// patterns match nothing and pay the full 16-entry scan on every L1 miss.
func (p *StreamPrefetcher) Observe(line uint64) []uint64 {
	if !p.linked {
		p.link()
	}
	window := uint64(p.Window)
	bestIdx := -1
	for i := range p.lastLine {
		// line continues the stream when 1 <= line-lastLine <= window;
		// unsigned wrap makes the two-sided check one compare.
		if line-p.lastLine[i]-1 < window {
			bestIdx = i
			break
		}
	}
	if bestIdx < 0 {
		victim := p.prev[p.head]
		p.lastLine[victim] = line
		p.issuedUpTo[victim] = line
		p.confidence[victim] = 0
		p.head = victim // rotate: tail becomes head, rest keep order
		return nil
	}
	p.confidence[bestIdx]++
	p.lastLine[bestIdx] = line
	p.touch(uint8(bestIdx))
	if int(p.confidence[bestIdx]) < p.MinConfidence {
		return nil
	}
	// Fetch up to Degree lines ahead of the demand line, skipping anything
	// this stream already issued.
	from := line + 1
	if p.issuedUpTo[bestIdx] >= from {
		from = p.issuedUpTo[bestIdx] + 1
	}
	to := line + uint64(p.Degree)
	if from > to {
		return nil
	}
	out := p.buf[:0]
	for l := from; l <= to; l++ {
		out = append(out, l)
	}
	p.issuedUpTo[bestIdx] = to
	p.buf = out
	p.Issued += uint64(len(out))
	return out
}

// touch makes entry w the most recently used.
func (p *StreamPrefetcher) touch(w uint8) {
	head := p.head
	if w == head {
		return
	}
	if p.prev[head] == w {
		// w is the ring tail: rotating the head promotes it and keeps every
		// other relative position.
		p.head = w
		return
	}
	// Unlink w ...
	p.next[p.prev[w]] = p.next[w]
	p.prev[p.next[w]] = p.prev[w]
	// ... and splice it in before head.
	tail := p.prev[head]
	p.prev[w] = tail
	p.next[w] = head
	p.next[tail] = w
	p.prev[head] = w
	p.head = w
}

// Reset clears all detected streams and the issue counter.
func (p *StreamPrefetcher) Reset() {
	p.link()
	p.Issued = 0
}
