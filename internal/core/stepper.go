package core

import (
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/trace"
)

// BlockStepper holds the between-block coordination state of block-granular
// progressive (and micro-adaptive) execution: the current operator
// permutation, the pending validation against the previous block's
// per-vector cost, the selectivity estimation over merged per-core PMU
// deltas, and — in micro mode — the branching/branch-free implementation
// choice. It is the shared brain of RunParallelProgressive,
// RunParallelMicroAdaptive, and the workload service's scheduler, which
// drives the same coordination while the query runs on a *dynamic* subset of
// cores: the stepper never talks to the morsel scheduler, it only consumes
// finished BlockResults and tells the caller which query order and scan
// implementation the next block must run.
type BlockStepper struct {
	base *exec.Query
	opt  Options

	micro    bool
	eligible bool
	costP    ImplCostParams

	curPerm, prevPerm []int
	curQ              *exec.Query
	// curWidths caches opWidths(curQ), refreshed only when the order changes
	// — the estimator consumes it once per block.
	curWidths []int
	aggWidths []int

	impl        exec.ScanImpl
	bfOptPoints int

	prevCostPerVec    float64
	pendingValidation bool
	// stableBlocks counts consecutive optimization epochs that confirmed the
	// current order (drives the §4.5 correlation probe at block granularity;
	// progressive mode only — the serial micro-adaptive driver has no probe
	// either, keeping worker counts decision-identical).
	stableBlocks int
	// rejected remembers the last order validation reverted, so neither the
	// estimator nor the probe proposes the measured regression again.
	rejected []int

	// accounted is the simulated cycle cost attributed to the query so far
	// (block makespans plus coordination), the clock ConvergedAtCycles is
	// stamped from.
	accounted uint64

	st ParallelMicroAdaptiveStats
}

// bfResampleEvery spaces the branching sampling blocks while running
// branch-free (the serial micro-adaptive driver's resampling policy at block
// granularity).
const bfResampleEvery = 3

// NewBlockStepper builds the coordination state for one query. prof supplies
// the cache geometry the estimator defaults to; workers is reported in the
// stats (the pool size the run is scheduled on). micro enables per-block
// implementation choice.
func NewBlockStepper(q *exec.Query, prof cpu.Profile, workers int, micro bool, opt Options) (*BlockStepper, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	opt.setDefaults()
	if opt.Geometry.LineSize == 0 {
		hier := prof.Hierarchy
		opt.Geometry.LineSize = hier.L3.LineSize
		opt.Geometry.CapacityLines = hier.L3.Lines()
	}
	costP := DefaultImplCostParams()
	costP.Chain = opt.Chain
	nOps := len(q.Ops)
	s := &BlockStepper{
		base:      q,
		opt:       opt,
		micro:     micro,
		eligible:  micro && exec.BranchFreeEligible(q),
		costP:     costP,
		curPerm:   identity(nOps),
		prevPerm:  identity(nOps),
		curQ:      q,
		curWidths: opWidths(q),

		aggWidths:      aggColumnWidths(q),
		impl:           exec.ImplBranching,
		prevCostPerVec: -1.0,
	}
	s.st.Workers = workers
	return s, nil
}

// Query returns the query in its current operator order; the next block must
// execute it.
func (s *BlockStepper) Query() *exec.Query { return s.curQ }

// Impl returns the scan implementation the next block must run
// (ImplBranching unless a micro stepper chose predication).
func (s *BlockStepper) Impl() exec.ScanImpl { return s.impl }

// SetImpl overrides the initial scan implementation (feedback-cache warm
// start). Only meaningful before the first block of a micro stepper.
func (s *BlockStepper) SetImpl(impl exec.ScanImpl) {
	if s.micro && s.eligible {
		s.impl = impl
	}
}

// BlockVectors returns how many vectors the next optimization block spans on
// k cores (ReopInterval per core), or 0 when re-optimization is disabled.
func (s *BlockStepper) BlockVectors(k int) int {
	if s.opt.ReopInterval <= 0 {
		return 0
	}
	return s.opt.ReopInterval * k
}

// AfterBlock runs the coordination that follows one finished morsel block:
// validate the previous reorder against the block's per-vector cost (revert
// on regression), and — unless the block was the query's last — sample the
// merged counters, estimate selectivities, reorder by ascending estimate,
// and in micro mode choose the next block's scan implementation. tuples is
// the number of driving-table tuples the block covered. coord is the core
// the estimation runs on (the others idle at the block barrier); engines are
// the cores currently executing the query, each of which pays the recompile
// of a reorder or implementation switch. The returned cycles are the
// makespan extension of the coordination; the caller adds them to the
// query's clock.
func (s *BlockStepper) AfterBlock(br exec.BlockResult, tuples int, last bool, coord *cpu.CPU, engines []*exec.Engine) (uint64, error) {
	s.st.Blocks++
	if s.micro {
		if s.impl == exec.ImplBranchFree {
			s.st.BranchFreeVectors += br.Vectors
		} else {
			s.st.BranchingVectors += br.Vectors
		}
	}
	s.accounted += br.MaxCycles
	changed := false
	var extra uint64
	costPerVec := float64(br.MaxCycles) / float64(br.Vectors)

	if s.pendingValidation && !s.opt.DisableValidation {
		s.pendingValidation = false
		if s.prevCostPerVec > 0 && costPerVec > s.prevCostPerVec*(1+s.opt.ValidationTolerance) {
			// Deteriorated: re-establish the previous order on every core and
			// remember the rejected one so it is not proposed again.
			s.rejected = append([]int(nil), s.curPerm...)
			s.curPerm = append([]int(nil), s.prevPerm...)
			var err error
			s.curQ, err = s.base.WithOrder(s.curPerm)
			if err != nil {
				return 0, err
			}
			s.curWidths = opWidths(s.curQ)
			extra += recompileEngines(engines, s.opt)
			s.st.Reverts++
			changed = true
			traceDecision(s.opt.Trace, "revert", s.accounted+extra, br.Counters,
				trace.A("to", s.curPerm),
				trace.A("cost_per_vec", costPerVec),
				trace.A("prev_cost_per_vec", s.prevCostPerVec))
		}
	}

	runOpt := s.opt.ReopInterval > 0 && !last
	if runOpt && !s.micro && s.opt.ExploreEvery > 0 && s.stableBlocks >= s.opt.ExploreEvery {
		// §4.5 correlation probe at block granularity: the estimator has
		// confirmed the same order ExploreEvery epochs in a row; run the next
		// block under a rotation of the current order and let validation
		// decide. A rotation validation already rejected is skipped and the
		// epoch falls through to plain estimation.
		if probe := rotate(s.curPerm); !equalPerm(probe, s.rejected) {
			s.stableBlocks = 0
			s.st.Explorations++
			s.prevPerm = append([]int(nil), s.curPerm...)
			s.curPerm = probe
			var err error
			s.curQ, err = s.base.WithOrder(s.curPerm)
			if err != nil {
				return 0, err
			}
			s.curWidths = opWidths(s.curQ)
			extra += recompileEngines(engines, s.opt)
			s.pendingValidation = true
			changed = true
			traceDecision(s.opt.Trace, "explore", s.accounted+extra, br.Counters,
				trace.A("from", s.prevPerm), trace.A("to", s.curPerm))
			s.prevCostPerVec = costPerVec
			s.accounted += extra
			s.st.ConvergedAtCycles = s.accounted
			return extra, nil
		}
	}
	if runOpt && s.impl == exec.ImplBranching {
		// Estimation epoch on the coordinator core.
		c0 := coord.Cycles()
		coord.Exec(s.opt.SampleCostInstr)
		sample := SampleFromPMU(br.Counters, tuples)
		cfg := EstimatorConfig{
			Widths:    s.curWidths,
			AggWidths: s.aggWidths,
			Geometry:  s.opt.Geometry,
			Chain:     s.opt.Chain,
			MaxStarts: s.opt.MaxStartsOverride,
		}
		est, err := EstimateSelectivities(sample, cfg)
		if err != nil {
			return 0, err
		}
		s.st.Optimizations++
		s.st.EstimatorEvaluations += est.NMEvaluations
		s.st.LastEstimate = est.Sels
		coord.Exec(est.NMEvaluations * s.opt.NMEvalCostInstr)
		extra += coord.Cycles() - c0
		smp := Sample{
			Cycles:   s.accounted + extra,
			Tuples:   tuples,
			Counters: br.Counters.Project(paperGroup),
			Sels:     est.Sels,
		}
		s.st.addSample(smp)
		traceSample(s.opt.Trace, s.accounted+extra, smp)

		order := RankOrder(LoadWeights(s.curQ), est.Sels)
		newPerm := compose(s.curPerm, order)
		if !equalPerm(newPerm, s.curPerm) && !equalPerm(newPerm, s.rejected) {
			s.stableBlocks = 0
			s.prevPerm = append([]int(nil), s.curPerm...)
			s.curPerm = newPerm
			s.curQ, err = s.base.WithOrder(s.curPerm)
			if err != nil {
				return 0, err
			}
			s.curWidths = opWidths(s.curQ)
			extra += recompileEngines(engines, s.opt)
			s.st.Reorders++
			s.pendingValidation = true
			changed = true
			traceDecision(s.opt.Trace, "reorder", s.accounted+extra, smp.Counters,
				trace.A("from", s.prevPerm), trace.A("to", s.curPerm),
				trace.A("est_sels", est.Sels))
		} else {
			s.stableBlocks++
		}
		if s.eligible {
			ordered := make([]float64, len(est.Sels))
			for i, o := range order {
				ordered[i] = est.Sels[o]
			}
			next := ChooseImpl(ordered, s.costP)
			if next != s.impl {
				s.st.ImplSwitches++
				s.impl = next
				extra += recompileEngines(engines, s.opt)
				changed = true
				traceDecision(s.opt.Trace, "impl-switch", s.accounted+extra, smp.Counters,
					trace.A("impl", implName(s.impl)),
					trace.A("est_sels", ordered))
			}
		}
	} else if runOpt && s.impl == exec.ImplBranchFree {
		// Branch-free blocks carry no per-predicate branch signal; return to
		// the branching scan for one sampling block every few points.
		s.bfOptPoints++
		if s.bfOptPoints >= bfResampleEvery {
			s.bfOptPoints = 0
			s.st.ImplSwitches++
			s.impl = exec.ImplBranching
			extra += recompileEngines(engines, s.opt)
			traceDecision(s.opt.Trace, "impl-switch", s.accounted+extra, br.Counters,
				trace.A("impl", implName(s.impl)),
				trace.A("resample", true))
		}
	}
	s.prevCostPerVec = costPerVec
	s.accounted += extra
	if changed {
		s.st.ConvergedAtCycles = s.accounted
	}
	return extra, nil
}

// TraceFinal emits the plan-final event on the stepper's decision track (if
// any), stamped with the accounted query clock. Callers invoke it once, when
// the query's last block has been coordinated.
func (s *BlockStepper) TraceFinal() {
	if s.opt.Trace == nil {
		return
	}
	s.opt.Trace.Instant("plan-final", s.accounted,
		trace.A("order", s.curPerm), trace.A("reorders", s.st.Reorders),
		trace.A("impl", implName(s.impl)),
		trace.A("converged_at", s.st.ConvergedAtCycles))
}

// Stats snapshots the coordination telemetry; FinalOrder is the permutation
// currently in effect (relative to the stepper's base query).
func (s *BlockStepper) Stats() ParallelMicroAdaptiveStats {
	st := s.st
	st.FinalOrder = append([]int(nil), s.curPerm...)
	return st
}

// recompileEngines re-JITs the scan loop on every given core (new branch
// addresses, re-chained primitives) and returns the resulting makespan
// extension: the largest per-core cycle delta of the recompile.
func recompileEngines(engines []*exec.Engine, opt Options) uint64 {
	var max uint64
	for _, e := range engines {
		c := e.CPU()
		c0 := c.Cycles()
		if !opt.DisablePredictorReset {
			c.ResetPredictor()
		}
		c.Exec(opt.ReorderCostInstr)
		if d := c.Cycles() - c0; d > max {
			max = d
		}
	}
	return max
}
