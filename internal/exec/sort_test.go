package exec

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"progopt/internal/columnar"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// sortFixture builds a data set, a two-predicate query, and the qualifying
// row ids in ascending order (the sequence every execution mode feeds the
// sort).
func sortFixture(t testing.TB, rows int, seed int64) (*tpch.Dataset, *Query, []int32) {
	t.Helper()
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{
		Table: d.Lineitem,
		Ops: []Op{
			&Predicate{Col: d.Lineitem.Column("l_discount"), Op: GE, F: 0.03},
			&Predicate{Col: d.Lineitem.Column("l_quantity"), Op: LT, I: 40},
		},
	}
	disc := d.Lineitem.Column("l_discount").F64()
	qty := d.Lineitem.Column("l_quantity").I64()
	var sel []int32
	for r := 0; r < rows; r++ {
		if disc[r] >= 0.03 && qty[r] < 40 {
			sel = append(sel, int32(r))
		}
	}
	return d, q, sel
}

// referenceSort is the oracle: qualifying rows stably sorted by the keys
// alone — stability supplies the row-id tie-break the operator implements
// explicitly — truncated to the limit.
func referenceSort(sel []int32, keys []SortKey, limit int) []int32 {
	out := append([]int32(nil), sel...)
	sort.SliceStable(out, func(a, b int) bool {
		for _, k := range keys {
			va, vb := k.Col.Float64At(int(out[a])), k.Col.Float64At(int(out[b]))
			if va != vb {
				return (va < vb) != k.Desc
			}
		}
		return false
	})
	if limit >= 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func rowIDs(rows []SortedRow) []int32 {
	out := make([]int32, len(rows))
	for i, r := range rows {
		out[i] = int32(r.Row)
	}
	return out
}

// TestSortRunAgainstSliceStable fuzzes the operator end to end on one core:
// random key sets, directions, and limits, fed through AddOne, must
// reproduce the stable reference sort exactly.
func TestSortRunAgainstSliceStable(t *testing.T) {
	d, _, sel := sortFixture(t, 6000, 9)
	cols := []string{"l_extendedprice", "l_quantity", "l_shipdate", "l_discount", "l_orderkey"}
	rng := rand.New(rand.NewSource(42))
	for it := 0; it < 20; it++ {
		nKeys := 1 + rng.Intn(2)
		keys := make([]SortKey, nKeys)
		for i := range keys {
			keys[i] = SortKey{
				Col:  d.Lineitem.Column(cols[rng.Intn(len(cols))]),
				Desc: rng.Intn(2) == 1,
			}
		}
		limit := -1
		switch rng.Intn(4) {
		case 0:
			limit = rng.Intn(5)
		case 1:
			limit = 1 + rng.Intn(len(sel))
		case 2:
			limit = len(sel) + rng.Intn(100) // beyond the qualifying count
		}
		c := cpu.MustNew(cpu.ScaledXeon())
		s, err := NewSort(c, keys, limit, nil, 6000, 512)
		if err != nil {
			t.Fatal(err)
		}
		run := NewSortRun(s)
		for _, r := range sel {
			run.AddOne(c, int(r))
		}
		got := rowIDs(FinalizeSort(c, 0, []*SortRun{run}))
		want := referenceSort(sel, keys, limit)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d (keys %v, limit %d): got %d rows %v..., want %d rows %v...",
				it, keys, limit, len(got), head(got), len(want), head(want))
		}
	}
}

func head(v []int32) []int32 {
	if len(v) > 5 {
		return v[:5]
	}
	return v
}

// TestSortMergeMatchesSingleState: splitting the qualifying rows across
// several per-core states and merging cannot change the output — the
// comparator is total, so the result is unique.
func TestSortMergeMatchesSingleState(t *testing.T) {
	d, _, sel := sortFixture(t, 8000, 17)
	keys := []SortKey{{Col: d.Lineitem.Column("l_extendedprice"), Desc: true}}
	for _, limit := range []int{-1, 0, 1, 33, 5000} {
		c := cpu.MustNew(cpu.ScaledXeon())
		states := make([]*Sort, 4)
		runs := make([]*SortRun, 4)
		for i := range states {
			s, err := NewSort(c, keys, limit, nil, 8000, 256)
			if err != nil {
				t.Fatal(err)
			}
			states[i] = s
			runs[i] = NewSortRun(s)
		}
		// Deal rows round-robin in uneven chunks, as a morsel scheduler would.
		for i, r := range sel {
			runs[(i/97)%4].AddOne(c, int(r))
		}
		got := rowIDs(FinalizeSort(c, 0, runs))
		want := referenceSort(sel, keys, limit)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("limit %d: merged output diverges from reference (%d vs %d rows)", limit, len(got), len(want))
		}
	}
}

// TestSortBatchScalarParity: Add (batch gather) and AddOne (scalar
// row-at-a-time) perform identical loads, instructions, and touches when
// fed the same sequence.
func TestSortBatchScalarParity(t *testing.T) {
	d, _, sel := sortFixture(t, 4000, 3)
	keys := []SortKey{{Col: d.Lineitem.Column("l_quantity")}, {Col: d.Lineitem.Column("l_discount"), Desc: true}}
	for _, limit := range []int{-1, 50} {
		cA := cpu.MustNew(cpu.ScaledXeon())
		sA, err := NewSort(cA, keys, limit, nil, 4000, 512)
		if err != nil {
			t.Fatal(err)
		}
		runA := NewSortRun(sA)
		for lo := 0; lo < len(sel); lo += 512 {
			hi := min(lo+512, len(sel))
			runA.Add(cA, sel[lo:hi])
		}

		cB := cpu.MustNew(cpu.ScaledXeon())
		sB, err := NewSort(cB, keys, limit, nil, 4000, 512)
		if err != nil {
			t.Fatal(err)
		}
		runB := NewSortRun(sB)
		for _, r := range sel {
			runB.AddOne(cB, int(r))
		}

		ra := FinalizeSort(cA, 0, []*SortRun{runA})
		rb := FinalizeSort(cB, 0, []*SortRun{runB})
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("limit %d: batch and scalar outputs diverge", limit)
		}
		a, b := cA.Sample(), cB.Sample()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("limit %d: PMU samples diverge:\n batch  %v\n scalar %v", limit, a, b)
		}
	}
}

// TestSortCarriedValue: the Val aggregate rides through the sort per row.
func TestSortCarriedValue(t *testing.T) {
	d, _, sel := sortFixture(t, 3000, 5)
	price := d.Lineitem.Column("l_extendedprice")
	disc := d.Lineitem.Column("l_discount")
	agg := &Aggregate{
		Cols: []*columnar.Column{price, disc},
		F:    func(row int) float64 { return price.F64()[row] * disc.F64()[row] },
	}
	c := cpu.MustNew(cpu.ScaledXeon())
	s, err := NewSort(c, []SortKey{{Col: price, Desc: true}}, 7, agg, 3000, 512)
	if err != nil {
		t.Fatal(err)
	}
	run := NewSortRun(s)
	for _, r := range sel {
		run.AddOne(c, int(r))
	}
	rows := FinalizeSort(c, 0, []*SortRun{run})
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	for _, r := range rows {
		want := price.F64()[r.Row] * disc.F64()[r.Row]
		if r.Value != want {
			t.Errorf("row %d: carried value %v, want %v", r.Row, r.Value, want)
		}
		if r.Keys[0] != price.F64()[r.Row] {
			t.Errorf("row %d: key %v, want %v", r.Row, r.Keys[0], price.F64()[r.Row])
		}
	}
}

// TestNewSortValidation pins the constructor's error checks.
func TestNewSortValidation(t *testing.T) {
	c := cpu.MustNew(cpu.ScaledXeon())
	d, _, _ := sortFixture(t, 100, 1)
	key := SortKey{Col: d.Lineitem.Column("l_quantity")}
	if _, err := NewSort(c, nil, -1, nil, 100, 10); err == nil {
		t.Error("no keys accepted")
	}
	if _, err := NewSort(c, []SortKey{{Col: nil}}, -1, nil, 100, 10); err == nil {
		t.Error("nil key column accepted")
	}
	if _, err := NewSort(c, []SortKey{key}, -1, nil, 0, 10); err == nil {
		t.Error("zero input size accepted")
	}
	if _, err := NewSort(c, []SortKey{key}, -1, nil, 100, 0); err == nil {
		t.Error("zero run length accepted")
	}
	if _, err := NewSort(c, []SortKey{key}, 0, nil, 100, 10); err != nil {
		t.Errorf("limit 0 rejected: %v", err)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
