// Package stats implements the classical statistics machinery the paper's
// progressive approach replaces: equi-width histograms built from a loaded
// sample, selectivity estimation from them, and a static optimizer that
// fixes the predicate order at "compile time". Its failure modes — stale
// samples on bulk-loaded data, correlation-blind independence — are exactly
// the uncertainties §4 lists as the reasons progressive optimization exists,
// and the ext-static experiment measures them head to head.
package stats

import (
	"fmt"
	"sort"

	"progopt/internal/columnar"
	"progopt/internal/exec"
)

// Histogram is an equi-width histogram over an integer-kind or float column.
type Histogram struct {
	name    string
	lo, hi  float64
	buckets []int64
	total   int64
}

// DefaultBuckets is the histogram resolution used by BuildHistogram.
const DefaultBuckets = 64

// BuildHistogram builds an equi-width histogram from the first sampleRows
// rows of the column (sampleRows <= 0 or > len means the whole column).
// Sampling a prefix is what a bulk-loading system effectively does when
// statistics are gathered at load time — and is what goes stale.
func BuildHistogram(col *columnar.Column, sampleRows, buckets int) (*Histogram, error) {
	if col == nil {
		return nil, fmt.Errorf("stats: nil column")
	}
	n := col.Len()
	if n == 0 {
		return nil, fmt.Errorf("stats: empty column %q", col.Name())
	}
	if sampleRows <= 0 || sampleRows > n {
		sampleRows = n
	}
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	lo, hi := col.Float64At(0), col.Float64At(0)
	for i := 1; i < sampleRows; i++ {
		v := col.Float64At(i)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	h := &Histogram{name: col.Name(), lo: lo, hi: hi, buckets: make([]int64, buckets)}
	span := hi - lo
	for i := 0; i < sampleRows; i++ {
		v := col.Float64At(i)
		b := 0
		if span > 0 {
			b = int((v - lo) / span * float64(buckets))
		}
		if b >= buckets {
			b = buckets - 1
		}
		if b < 0 {
			b = 0
		}
		h.buckets[b]++
		h.total++
	}
	return h, nil
}

// Name returns the column the histogram describes.
func (h *Histogram) Name() string { return h.name }

// Rows returns the number of sampled rows.
func (h *Histogram) Rows() int64 { return h.total }

// EstimateLE estimates the selectivity of "col <= bound" by summing full
// buckets below the bound and interpolating linearly within the boundary
// bucket.
func (h *Histogram) EstimateLE(bound float64) float64 {
	if h.total == 0 {
		return 0
	}
	if bound < h.lo {
		return 0
	}
	if bound >= h.hi {
		return 1
	}
	span := h.hi - h.lo
	if span == 0 {
		return 1
	}
	pos := (bound - h.lo) / span * float64(len(h.buckets))
	full := int(pos)
	frac := pos - float64(full)
	var count float64
	for i := 0; i < full && i < len(h.buckets); i++ {
		count += float64(h.buckets[i])
	}
	if full < len(h.buckets) {
		count += frac * float64(h.buckets[full])
	}
	return count / float64(h.total)
}

// Estimate estimates the selectivity of one comparison against the bound.
func (h *Histogram) Estimate(op exec.CmpOp, bound float64) float64 {
	switch op {
	case exec.LE:
		return h.EstimateLE(bound)
	case exec.LT:
		// Continuous approximation: LT ~ LE just below the bound.
		return h.EstimateLE(bound - 1e-9)
	case exec.GE:
		return 1 - h.EstimateLE(bound-1e-9)
	case exec.GT:
		return 1 - h.EstimateLE(bound)
	case exec.EQ:
		// One bucket's density spread over its width.
		w := (h.hi - h.lo) / float64(len(h.buckets))
		if w <= 0 {
			return 1
		}
		return h.EstimateLE(bound+w/2) - h.EstimateLE(bound-w/2)
	default:
		return 0.5
	}
}

// Catalog holds histograms per column name.
type Catalog struct {
	hists map[string]*Histogram
}

// BuildCatalog builds histograms for every column of the table from the
// first sampleRows rows.
func BuildCatalog(t *columnar.Table, sampleRows int) (*Catalog, error) {
	c := &Catalog{hists: make(map[string]*Histogram)}
	for _, col := range t.Columns() {
		h, err := BuildHistogram(col, sampleRows, DefaultBuckets)
		if err != nil {
			return nil, err
		}
		c.hists[col.Name()] = h
	}
	return c, nil
}

// Histogram returns the histogram for a column, or nil.
func (c *Catalog) Histogram(name string) *Histogram { return c.hists[name] }

// EstimatePredicate estimates one predicate's selectivity from the catalog
// (0.5 for unknown columns, the textbook default).
func (c *Catalog) EstimatePredicate(p *exec.Predicate) float64 {
	h := c.hists[p.Col.Name()]
	if h == nil {
		return 0.5
	}
	bound := p.F
	if p.Col.Kind() != columnar.Float64 {
		bound = float64(p.I)
	}
	return h.Estimate(p.Op, bound)
}

// StaticOrder is the static optimizer: it orders the query's predicates by
// ascending histogram-estimated selectivity (assuming independence) and
// returns the permutation. Non-predicate operators keep their relative
// position at the end.
func (c *Catalog) StaticOrder(q *exec.Query) ([]int, []float64, error) {
	type ranked struct {
		idx int
		sel float64
	}
	var preds []ranked
	var rest []int
	sels := make([]float64, len(q.Ops))
	for i, op := range q.Ops {
		if p, ok := op.(*exec.Predicate); ok {
			s := c.EstimatePredicate(p)
			sels[i] = s
			preds = append(preds, ranked{i, s})
		} else {
			sels[i] = 1
			rest = append(rest, i)
		}
	}
	if len(preds) == 0 {
		return nil, nil, fmt.Errorf("stats: query has no predicates to order")
	}
	sort.SliceStable(preds, func(a, b int) bool { return preds[a].sel < preds[b].sel })
	perm := make([]int, 0, len(q.Ops))
	for _, r := range preds {
		perm = append(perm, r.idx)
	}
	perm = append(perm, rest...)
	return perm, sels, nil
}
