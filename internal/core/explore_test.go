package core

import (
	"math"
	"testing"

	"progopt/internal/columnar"
	"progopt/internal/datagen"
	"progopt/internal/exec"
	"progopt/internal/tpch"
)

// explorationQuery builds a scan with well-separated independent
// selectivities (10/50/90 %) already in the optimal order, so the estimator
// confirms the order every cycle and the probe trigger condition is met.
func explorationQuery(t *testing.T, n int) (*exec.Engine, *exec.Query) {
	t.Helper()
	rng := datagen.NewRNG(23)
	tb := columnar.NewTable("sep")
	tb.MustAddColumn(columnar.NewInt64("a", datagen.UniformInt64(rng, n, 0, 999)))
	tb.MustAddColumn(columnar.NewInt64("b", datagen.UniformInt64(rng, n, 0, 999)))
	tb.MustAddColumn(columnar.NewInt64("c", datagen.UniformInt64(rng, n, 0, 999)))
	e := progEngine(t)
	q := &exec.Query{
		Table: tb,
		Ops: []exec.Op{
			&exec.Predicate{Col: tb.Column("a"), Op: exec.LT, I: 100, Label: "a<100"},
			&exec.Predicate{Col: tb.Column("b"), Op: exec.LT, I: 500, Label: "b<500"},
			&exec.Predicate{Col: tb.Column("c"), Op: exec.LT, I: 900, Label: "c<900"},
		},
	}
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	return e, q
}

func TestExplorationTriggersAndPreservesResults(t *testing.T) {
	eBase, qBase := explorationQuery(t, 60000)
	want, err := eBase.Run(qBase)
	if err != nil {
		t.Fatal(err)
	}

	eProg, qProg := explorationQuery(t, 60000)
	got, st, err := RunProgressive(eProg, qProg, Options{ReopInterval: 2, ExploreEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Qualifying != want.Qualifying {
		t.Errorf("exploration changed results: %d vs %d", got.Qualifying, want.Qualifying)
	}
	if math.Abs(got.Sum-want.Sum) > math.Abs(want.Sum)*1e-9 {
		t.Error("exploration changed aggregate")
	}
	// The estimator confirms the (already optimal) order every cycle, so
	// probes must fire — and validation must revert every one of them.
	if st.Explorations == 0 {
		t.Fatal("no correlation probes fired despite stable optimal order")
	}
	if st.Reverts == 0 {
		t.Error("probes of a worse rotation were never reverted")
	}
	// Probing an optimal order must stay cheap.
	if float64(got.Cycles) > float64(want.Cycles)*1.25 {
		t.Errorf("exploration overhead too high: %d vs %d", got.Cycles, want.Cycles)
	}
}

func TestExplorationDisabledByDefault(t *testing.T) {
	d := progDataset(t, 30000).ReorderLineitem(tpch.OrderingRandom, 6)
	q, err := exec.Q6(d)
	if err != nil {
		t.Fatal(err)
	}
	e := progEngine(t)
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	_, st, err := RunProgressive(e, q, Options{ReopInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Explorations != 0 {
		t.Errorf("%d probes fired with ExploreEvery=0", st.Explorations)
	}
}

// TestExplorationFindsCorrelatedOrder builds the §4.5 failure mode: three
// predicates where the pairwise-unobservable conditional makes the
// estimator's order stick at a suboptimal PEO. The correlation probe tries
// the rotation, validation measures it genuinely faster, and the better
// order survives.
func TestExplorationFindsCorrelatedOrder(t *testing.T) {
	const n = 120000
	rng := datagen.NewRNG(17)
	// c0: passes 60%. c1: perfectly correlated with c0 (equal values), so
	// after "c0 < 600", "c1 < 600" passes everything — but standalone it
	// also passes 60%. c2: independent 50%.
	c0 := datagen.UniformInt64(rng, n, 0, 999)
	c1 := append([]int64(nil), c0...)
	c2 := datagen.UniformInt64(rng, n, 0, 999)
	tb := columnar.NewTable("corr")
	tb.MustAddColumn(columnar.NewInt64("c0", c0))
	tb.MustAddColumn(columnar.NewInt64("c1", c1))
	tb.MustAddColumn(columnar.NewInt64("c2", c2))

	mk := func() (*exec.Engine, *exec.Query) {
		e := progEngine(t)
		q := &exec.Query{
			Table: tb,
			Ops: []exec.Op{
				&exec.Predicate{Col: tb.Column("c0"), Op: exec.LT, I: 600, Label: "c0<600"},
				&exec.Predicate{Col: tb.Column("c1"), Op: exec.LT, I: 600, Label: "c1<600"},
				&exec.Predicate{Col: tb.Column("c2"), Op: exec.LT, I: 500, Label: "c2<500"},
			},
		}
		if err := e.BindQuery(q); err != nil {
			t.Fatal(err)
		}
		return e, q
	}

	// Without exploration, starting from [c0, c1, c2].
	e1, q1 := mk()
	plain, _, err := RunProgressive(e1, q1, Options{ReopInterval: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With exploration.
	e2, q2 := mk()
	probed, st, err := RunProgressive(e2, q2, Options{ReopInterval: 3, ExploreEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if probed.Qualifying != plain.Qualifying {
		t.Fatalf("results diverged: %d vs %d", probed.Qualifying, plain.Qualifying)
	}
	if st.Explorations == 0 {
		t.Skip("no probes fired; estimator kept reordering on this data")
	}
	// Exploration must not cost more than a modest overhead, and may win.
	if float64(probed.Cycles) > float64(plain.Cycles)*1.10 {
		t.Errorf("exploration cost too much: %d vs %d cycles", probed.Cycles, plain.Cycles)
	}
}
