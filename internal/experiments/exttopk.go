package experiments

import (
	"fmt"
	"reflect"

	"progopt/internal/columnar"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// ExtTopK measures the order-aware operator: the latency of a filtered
// Top-K revenue report as K grows from 1 to a full sort, serially and on
// 2/4/8 simulated cores. Limited plans run the bounded-heap path (one root
// compare per qualifying tuple, log K sifts for displacing ones); the full
// sort runs the run-generating merge path. Reported times are makespans
// including the coordinator's barrier merge and emission; the ordered rows
// — float carried values included — are verified bit-identical across
// worker counts.
func ExtTopK(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	rows := 96 * cfg.VectorSize
	if cfg.Quick {
		rows = 32 * cfg.VectorSize
	}
	workers := []int{1, 2, 4, 8}
	ks := []int{1, 16, 256, -1}

	rep := &Report{
		ID:      "ext-topk",
		Title:   "Extension: morsel-parallel Top-K/OrderBy (bounded heap v. run merge sort)",
		Columns: []string{"k", "w1_ms", "w2_ms", "w4_ms", "w8_ms", "rows_out"},
		Notes: []string{
			fmt.Sprintf("%d lineitems; filter 60%% shipdate + discount>=0.03, order by l_extendedprice desc", rows),
			"k = limit (bounded-heap Top-K); 'full' = no limit (run-generating merge sort)",
			"makespan incl. the coordinator's barrier merge + emission; ordered rows bit-identical across workers",
		},
	}

	for _, k := range ks {
		label := "full"
		if k >= 0 {
			label = fmt.Sprintf("%d", k)
		}
		row := []string{label}
		var ref []exec.SortedRow
		for _, w := range workers {
			out, ms, err := runTopK(cfg, rows, w, k)
			if err != nil {
				return nil, err
			}
			if ref == nil {
				ref = out
			} else if !reflect.DeepEqual(out, ref) {
				return nil, fmt.Errorf("experiments: %d-core top-%s output diverges from serial", w, label)
			}
			row = append(row, fmtMs(ms))
		}
		row = append(row, fmt.Sprintf("%d", len(ref)))
		rep.Rows = append(rep.Rows, row)
	}
	return []*Report{rep}, nil
}

// runTopK executes one (workers, limit) cell: a fresh data set and rig (so
// every configuration binds identically), the filtered ordered query, and
// the coordinator merge, returning the ordered rows and the makespan.
func runTopK(cfg Config, rows, workers, limit int) ([]exec.SortedRow, float64, error) {
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, 0, err
	}
	li := d.Lineitem
	price := li.Column("l_extendedprice")
	disc := li.Column("l_discount")
	agg := &exec.Aggregate{
		Cols: []*columnar.Column{price, disc},
		F:    func(r int) float64 { return price.F64()[r] * disc.F64()[r] },
	}
	cut := d.ShipdateCutoff(0.6)
	q := &exec.Query{
		Table: li,
		Ops: []exec.Op{
			&exec.Predicate{Col: li.Column("l_shipdate"), Op: exec.LE, I: int64(cut)},
			&exec.Predicate{Col: disc, Op: exec.GE, F: 0.03},
		},
		Agg: agg,
	}
	wcfg := cfg
	wcfg.Workers = workers
	r, err := newRig(cpu.ScaledXeon(), wcfg)
	if err != nil {
		return nil, 0, err
	}
	if err := r.bind(q); err != nil {
		return nil, 0, err
	}
	keys := []exec.SortKey{{Col: price, Desc: true}}
	n := 1
	if r.par != nil {
		n = workers
	}
	runs := make([]*exec.SortRun, n)
	for i := range runs {
		s, err := exec.NewSort(r.cpu, keys, limit, agg, rows, cfg.VectorSize)
		if err != nil {
			return nil, 0, err
		}
		runs[i] = exec.NewSortRun(s)
	}
	r.cold()
	var res exec.Result
	if r.par != nil {
		for i, eng := range r.par.Engines() {
			eng.SetSortRun(runs[i])
		}
		res, err = r.par.Run(q)
		for _, eng := range r.par.Engines() {
			eng.SetSortRun(nil)
		}
	} else {
		r.eng.SetSortRun(runs[0])
		res, err = r.eng.Run(q)
		r.eng.SetSortRun(nil)
	}
	if err != nil {
		return nil, 0, err
	}
	coord := r.cpu
	if r.par != nil {
		coord = r.par.Engines()[0].CPU()
	}
	c0 := coord.Cycles()
	out := exec.FinalizeSort(coord, 0, runs)
	cycles := res.Cycles + coord.Cycles() - c0
	return out, r.millis(cycles), nil
}
