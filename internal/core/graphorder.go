package core

import (
	"fmt"
	"sort"
	"strings"

	cachemodel "progopt/internal/costmodel/cache"
)

// GraphJoin describes one equi-join edge of a join graph for the static
// orderers: the edge attaches table To to the already-joined part of the
// graph through a foreign-key column of table From. Exactly the facts a
// planner has before running anything — physical sizes and, for the
// cost-model orderer, a filter-selectivity estimate.
type GraphJoin struct {
	// Name labels the edge in errors and reports.
	Name string
	// From and To are the edge's endpoint tables; From must be the driving
	// table or some earlier edge's To.
	From, To string
	// BuildRows is |To|, the only statistic the greedy orderer consults.
	BuildRows int
	// BuildWidth is the byte width of the build-side column the edge's filter
	// touches (Eq. (1)'s tuple width); only the cost-model orderer reads it.
	BuildWidth int
	// Probes is the expected probe count (the driving cardinality); only the
	// cost-model orderer reads it.
	Probes int
	// Selectivity estimates the fraction of probes surviving the edge's
	// pushed-down filter (1 = no filter); only the cost-model orderer reads
	// it.
	Selectivity float64
}

// GreedyGraphOrder orders a join graph's edges with the statistics-free
// greedy heuristic (janus-datalog's "When Greedy Beats Optimal" baseline):
// repeatedly place, among the edges whose From table is already joined
// (connectivity constraint — the driving table starts joined), the one with
// the smallest build relation. No cardinality estimates, no sampled
// statistics, only physical table sizes; ties break by To-table name, then
// declaration order, so the result is deterministic. Returns indexes into
// joins.
func GreedyGraphOrder(driving string, joins []GraphJoin) ([]int, error) {
	return placeAll(driving, joins, func(i int) float64 { return float64(joins[i].BuildRows) })
}

// CostModelGraphOrder orders the same search space with the classic static
// rank criterion, rank = cost/(1-selectivity) ascending, where each edge's
// per-probe cost is Eq. (1)'s *predicted random-access* miss rate — the
// paper's §5.6 straw man: without observed PMU counters the model must
// assume random probe locality, so a co-clustered build side (cheap in
// reality) is priced as expensive as a random one and can be ordered after a
// genuinely random-access edge that filters slightly more.
func CostModelGraphOrder(g cachemodel.Geometry, driving string, joins []GraphJoin) ([]int, error) {
	ranks := make([]float64, len(joins))
	for i, j := range joins {
		if j.Probes <= 0 {
			return nil, fmt.Errorf("core: graph join %q has no probes", name(j, i))
		}
		if j.Selectivity < 0 || j.Selectivity > 1 {
			return nil, fmt.Errorf("core: graph join %q selectivity %v outside [0,1]", name(j, i), j.Selectivity)
		}
		missRate := g.RandomMisses(j.BuildRows, j.BuildWidth, j.Probes) / float64(j.Probes)
		cost := evalCost + missRate*missStallWeight
		drop := 1 - j.Selectivity
		if drop <= 1e-9 {
			ranks[i] = cost * 1e9
		} else {
			ranks[i] = cost / drop
		}
	}
	return placeAll(driving, joins, func(i int) float64 { return ranks[i] })
}

// placeAll runs the connectivity-constrained placement loop shared by both
// orderers: each step places the unplaced edge with the lowest score among
// those whose From table is already joined.
func placeAll(driving string, joins []GraphJoin, score func(int) float64) ([]int, error) {
	if len(joins) == 0 {
		return nil, fmt.Errorf("core: no graph joins to order")
	}
	if driving == "" {
		return nil, fmt.Errorf("core: graph order needs a driving table")
	}
	for i, j := range joins {
		if j.BuildRows <= 0 {
			return nil, fmt.Errorf("core: graph join %q has non-positive build cardinality %d", name(j, i), j.BuildRows)
		}
	}
	joined := map[string]bool{driving: true}
	order := make([]int, 0, len(joins))
	placed := make([]bool, len(joins))
	for len(order) < len(joins) {
		best := -1
		for i, j := range joins {
			if placed[i] || !joined[j.From] {
				continue
			}
			if best < 0 || less(score(i), joins[i], score(best), joins[best]) {
				best = i
			}
		}
		if best < 0 {
			var stuck []string
			for i, j := range joins {
				if !placed[i] {
					stuck = append(stuck, fmt.Sprintf("%s (from %q)", name(j, i), j.From))
				}
			}
			sort.Strings(stuck)
			return nil, fmt.Errorf("core: join graph is not connected to %q: cannot place %s",
				driving, strings.Join(stuck, ", "))
		}
		placed[best] = true
		joined[joins[best].To] = true
		order = append(order, best)
	}
	return order, nil
}

// less is the deterministic placement comparison: score, then To name, then
// declaration order (indexes are distinct, so the loop's best-so-far scan is
// a total order).
func less(sa float64, a GraphJoin, sb float64, b GraphJoin) bool {
	if sa != sb {
		return sa < sb
	}
	if a.To != b.To {
		return a.To < b.To
	}
	return false // equal keys: keep the earlier index (best-so-far wins ties)
}

// name labels an edge for errors.
func name(j GraphJoin, i int) string {
	if j.Name != "" {
		return j.Name
	}
	return fmt.Sprintf("%s→%s[%d]", j.From, j.To, i)
}
