package datagen

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestUniformRanges(t *testing.T) {
	rng := NewRNG(1)
	for _, v := range UniformInt64(rng, 1000, -5, 5) {
		if v < -5 || v > 5 {
			t.Fatalf("int64 draw %d outside [-5,5]", v)
		}
	}
	for _, v := range UniformInt32(rng, 1000, 10, 20) {
		if v < 10 || v > 20 {
			t.Fatalf("int32 draw %d outside [10,20]", v)
		}
	}
	for _, v := range UniformFloat64(rng, 1000, 0.25, 0.75) {
		if v < 0.25 || v >= 0.75 {
			t.Fatalf("float draw %v outside [0.25,0.75)", v)
		}
	}
}

func TestUniformPanicsOnEmptyRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty range did not panic")
		}
	}()
	UniformInt64(NewRNG(1), 1, 5, 4)
}

func TestUniformCoversDomain(t *testing.T) {
	rng := NewRNG(2)
	seen := map[int64]bool{}
	for _, v := range UniformInt64(rng, 5000, 1, 50) {
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Errorf("uniform draw over 50 values covered %d", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(3)
	draws := ZipfInt64(rng, 20000, 1.5, 999)
	counts := map[int64]int{}
	for _, v := range draws {
		if v < 0 || v > 999 {
			t.Fatalf("zipf draw %d outside [0,999]", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[500]*3 {
		t.Errorf("zipf head %d not ≫ tail %d", counts[0], counts[500])
	}
}

func TestAscending(t *testing.T) {
	a := Ascending(5)
	for i, v := range a {
		if v != int64(i) {
			t.Fatalf("Ascending[%d] = %d", i, v)
		}
	}
}

func isPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestWindowPermutationIsPermutation(t *testing.T) {
	f := func(seed int64, nRaw, wRaw uint16) bool {
		n := int(nRaw%500) + 1
		w := int(wRaw % 600)
		return isPermutation(WindowPermutation(NewRNG(seed), n, w))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWindowPermutationIdentityAtWindowOne(t *testing.T) {
	p := WindowPermutation(NewRNG(1), 100, 1)
	for i, v := range p {
		if v != i {
			t.Fatalf("window=1 permuted position %d -> %d", i, v)
		}
	}
}

// maxDisplacement measures how far any element moved.
func maxDisplacement(p []int) int {
	m := 0
	for i, v := range p {
		d := i - v
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

func TestWindowPermutationBoundsDisplacementOrder(t *testing.T) {
	// Displacement grows with window: a window-4 shuffle stays far more local
	// than a window-1000 shuffle. (The windowed swap chain can move an
	// element more than one window, but locality must still be ordered.)
	small := maxDisplacement(WindowPermutation(NewRNG(7), 5000, 4))
	large := maxDisplacement(WindowPermutation(NewRNG(7), 5000, 1000))
	if small >= large {
		t.Errorf("window 4 displacement %d >= window 1000 displacement %d", small, large)
	}
	if small > 64 {
		t.Errorf("window 4 produced displacement %d, far beyond local", small)
	}
}

func TestGroupPermutationStaysInGroups(t *testing.T) {
	groups := []int32{0, 0, 0, 1, 1, 2, 2, 2, 2, 3}
	p := GroupPermutation(NewRNG(5), groups)
	if !isPermutation(p) {
		t.Fatal("not a permutation")
	}
	for i, src := range p {
		if groups[i] != groups[src] {
			t.Fatalf("position %d (group %d) filled from group %d", i, groups[i], groups[src])
		}
	}
}

func TestGroupPermutationShuffles(t *testing.T) {
	groups := make([]int32, 1000) // one big group: must actually shuffle
	p := GroupPermutation(NewRNG(6), groups)
	moved := 0
	for i, v := range p {
		if i != v {
			moved++
		}
	}
	if moved < 900 {
		t.Errorf("only %d/1000 positions moved in a full-group shuffle", moved)
	}
}

func TestApplyPerm(t *testing.T) {
	perm := []int{2, 0, 1}
	if got := ApplyPermInt64([]int64{10, 20, 30}, perm); got[0] != 30 || got[1] != 10 || got[2] != 20 {
		t.Errorf("ApplyPermInt64 = %v", got)
	}
	if got := ApplyPermInt32([]int32{1, 2, 3}, perm); got[0] != 3 {
		t.Errorf("ApplyPermInt32 = %v", got)
	}
	if got := ApplyPermFloat64([]float64{0.1, 0.2, 0.3}, perm); got[0] != 0.3 {
		t.Errorf("ApplyPermFloat64 = %v", got)
	}
}

func TestCorrelated(t *testing.T) {
	rng := NewRNG(8)
	base := UniformInt64(rng, 10000, 0, 100)
	dup := Correlated(rng, base, 1, 0, 100)
	for i := range base {
		if dup[i] != base[i] {
			t.Fatal("corr=1 must duplicate base")
		}
	}
	ind := Correlated(rng, base, 0, 0, 100)
	same := 0
	for i := range base {
		if ind[i] == base[i] {
			same++
		}
	}
	// Independent uniform over 101 values matches ~1% of the time.
	if same > 500 {
		t.Errorf("corr=0 matched base %d/10000 times", same)
	}
}

func TestCorrelatedPanicsOnBadCorr(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("corr=2 did not panic")
		}
	}()
	Correlated(NewRNG(1), []int64{1}, 2, 0, 10)
}

func TestPiecewiseSelectivity(t *testing.T) {
	rng := NewRNG(9)
	const n = 30000
	out := PiecewiseSelectivity(rng, n, []float64{0.9, 0.1, 0.5})
	third := n / 3
	frac := func(lo, hi int) float64 {
		c := 0
		for _, v := range out[lo:hi] {
			if v == 1 {
				c++
			}
		}
		return float64(c) / float64(hi-lo)
	}
	if f := frac(0, third); f < 0.85 || f > 0.95 {
		t.Errorf("segment 0 selectivity %v, want ~0.9", f)
	}
	if f := frac(third, 2*third); f < 0.05 || f > 0.15 {
		t.Errorf("segment 1 selectivity %v, want ~0.1", f)
	}
	if f := frac(2*third, n); f < 0.45 || f > 0.55 {
		t.Errorf("segment 2 selectivity %v, want ~0.5", f)
	}
}

func TestWindowPermutationSortednessSpectrum(t *testing.T) {
	// Kendall-tau-ish proxy: count adjacent inversions after permuting an
	// ascending sequence; must increase with window size.
	inv := func(window int) int {
		p := WindowPermutation(NewRNG(11), 4000, window)
		data := ApplyPermInt64(Ascending(4000), p)
		c := 0
		for i := 1; i < len(data); i++ {
			if data[i] < data[i-1] {
				c++
			}
		}
		return c
	}
	results := []int{inv(1), inv(8), inv(64), inv(4000)}
	if !sort.IntsAreSorted(results) {
		t.Errorf("inversions not monotone over windows: %v", results)
	}
	if results[0] != 0 {
		t.Errorf("window 1 produced %d inversions", results[0])
	}
}
