// Package cache implements a software model of a multi-level CPU data-cache
// hierarchy: set-associative LRU levels, a sequential stream prefetcher, and
// per-level access/hit/miss accounting.
//
// The paper's cache cost model (§3.1) reasons about *L3 accesses*, defined as
// demand requests that miss L2 plus prefetcher requests, because that event
// count is independent of out-of-order execution. The hierarchy here produces
// exactly that counter from the address stream of the simulated query, which
// is what the progressive optimizer samples at vector boundaries.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	// Name is a short label such as "L1" (for reports and errors).
	Name string
	// SizeBytes is the total capacity of the level.
	SizeBytes int
	// LineSize is the cache-line size in bytes; it must be a power of two and
	// identical across all levels of a hierarchy.
	LineSize int
	// Ways is the set associativity; it must divide SizeBytes/LineSize.
	Ways int
	// LatencyCycles is the load-to-use latency of a hit in this level.
	LatencyCycles int
}

// Lines returns the capacity of the level in cache lines (the paper's "#_i").
func (c Config) Lines() int { return c.SizeBytes / c.LineSize }

func (c Config) validate() error {
	if c.SizeBytes <= 0 {
		return fmt.Errorf("cache %s: non-positive size %d", c.Name, c.SizeBytes)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d is not a positive power of two", c.Name, c.LineSize)
	}
	lines := c.SizeBytes / c.LineSize
	if lines*c.LineSize != c.SizeBytes || lines == 0 {
		return fmt.Errorf("cache %s: size %d is not a positive multiple of line size %d", c.Name, c.SizeBytes, c.LineSize)
	}
	if c.Ways <= 0 || lines%c.Ways != 0 {
		return fmt.Errorf("cache %s: %d ways does not divide %d lines", c.Name, c.Ways, lines)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, sets)
	}
	if c.LatencyCycles < 0 {
		return fmt.Errorf("cache %s: negative latency", c.Name)
	}
	return nil
}

// Stats accumulates the per-level event counts the PMU exposes.
type Stats struct {
	// Accesses counts lookups (demand only; prefetch inserts are separate).
	Accesses uint64
	// Hits counts lookups that found the line.
	Hits uint64
	// Misses counts lookups that did not find the line.
	Misses uint64
	// PrefetchInserts counts lines installed by the prefetcher.
	PrefetchInserts uint64
}

// Level is one set-associative LRU cache level.
type Level struct {
	cfg      Config
	setMask  uint64
	setShift uint
	ways     int
	tags     []uint64 // sets*ways entries; tag 0 means empty (addresses are offset to avoid tag 0)
	stamps   []uint64 // LRU timestamps parallel to tags
	clock    uint64
	stats    Stats
	// lastSlot is the tag-array index touched by the most recent Lookup hit
	// or Insert, consumed by the hierarchy's same-line fast path.
	lastSlot int
}

// NewLevel builds a cache level from its configuration.
func NewLevel(cfg Config) (*Level, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lines := cfg.Lines()
	sets := lines / cfg.Ways
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	return &Level{
		cfg:      cfg,
		setMask:  uint64(sets - 1),
		setShift: shift,
		ways:     cfg.Ways,
		tags:     make([]uint64, lines),
		stamps:   make([]uint64, lines),
	}, nil
}

// Config returns the level's configuration.
func (l *Level) Config() Config { return l.cfg }

// Stats returns a copy of the level's counters.
func (l *Level) Stats() Stats { return l.stats }

// line converts a byte address to a line id offset by 1 so that 0 stays an
// "empty slot" sentinel in the tag arrays.
func (l *Level) line(addr uint64) uint64 { return (addr >> l.setShift) + 1 }

// Lookup probes the level for the line containing addr, updating LRU state
// and counters. It reports whether the line was present and does NOT insert
// on a miss; the hierarchy decides fills.
func (l *Level) Lookup(addr uint64) bool {
	ln := l.line(addr)
	set := int(ln & l.setMask)
	base := set * l.ways
	l.clock++
	l.stats.Accesses++
	for w := 0; w < l.ways; w++ {
		if l.tags[base+w] == ln {
			l.stamps[base+w] = l.clock
			l.stats.Hits++
			l.lastSlot = base + w
			return true
		}
	}
	l.stats.Misses++
	return false
}

// LastSlot returns the tag-array index touched by the most recent Lookup hit
// or Insert.
func (l *Level) LastSlot() int { return l.lastSlot }

// TouchLine re-references line ln known (from the immediately preceding
// access) to reside at tag slot idx, with counter and LRU effects identical
// to a hit Lookup: one clock tick, one access, one hit, an MRU stamp
// refresh. It reports false — leaving all state untouched — if the slot no
// longer holds the line, in which case the caller must fall back to Lookup.
func (l *Level) TouchLine(idx int, ln uint64) bool {
	return l.TouchLineN(idx, ln, 1)
}

// TouchLineN is TouchLine repeated n times in one step. Because no other
// access intervenes, n sequential hit Lookups of the same line leave exactly
// this state: the clock advanced n ticks, n accesses and n hits counted, and
// the line stamped with the final clock value.
func (l *Level) TouchLineN(idx int, ln uint64, n int) bool {
	if n <= 0 || idx < 0 || idx >= len(l.tags) || l.tags[idx] != ln {
		return false
	}
	l.clock += uint64(n)
	l.stats.Accesses += uint64(n)
	l.stats.Hits += uint64(n)
	l.stamps[idx] = l.clock
	l.lastSlot = idx
	return true
}

// Contains reports whether the line holding addr is present, without touching
// counters or LRU state (used by the prefetcher to avoid duplicate inserts).
func (l *Level) Contains(addr uint64) bool {
	ln := l.line(addr)
	base := int(ln&l.setMask) * l.ways
	for w := 0; w < l.ways; w++ {
		if l.tags[base+w] == ln {
			return true
		}
	}
	return false
}

// Insert installs the line containing addr, evicting the LRU way of its set
// if needed. prefetch marks the insert as prefetcher-initiated for counting.
func (l *Level) Insert(addr uint64, prefetch bool) {
	ln := l.line(addr)
	base := int(ln&l.setMask) * l.ways
	l.clock++
	victim := base
	oldest := l.stamps[base]
	for w := 0; w < l.ways; w++ {
		i := base + w
		if l.tags[i] == ln { // already present; refresh
			l.stamps[i] = l.clock
			l.lastSlot = i
			return
		}
		if l.tags[i] == 0 { // empty slot
			victim, oldest = i, 0
			break
		}
		if l.stamps[i] < oldest {
			victim, oldest = i, l.stamps[i]
		}
	}
	_ = oldest
	l.tags[victim] = ln
	l.stamps[victim] = l.clock
	l.lastSlot = victim
	if prefetch {
		l.stats.PrefetchInserts++
	}
}

// Flush empties the level and leaves counters intact.
func (l *Level) Flush() {
	for i := range l.tags {
		l.tags[i] = 0
		l.stamps[i] = 0
	}
}

// ResetStats zeroes the level's counters.
func (l *Level) ResetStats() { l.stats = Stats{} }
