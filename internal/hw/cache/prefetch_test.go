package cache

import "testing"

func TestPrefetcherDetectsSequentialStream(t *testing.T) {
	p := NewStreamPrefetcher()
	var got []uint64
	for line := uint64(100); line < 110; line++ {
		got = p.Observe(line)
	}
	// Steady state: exactly one new line per observed line (the rest of the
	// degree-2 window was issued on earlier observations).
	if len(got) != 1 {
		t.Fatalf("steady-state stream returned %d prefetches, want 1", len(got))
	}
	if got[0] != 111 {
		t.Fatalf("prefetch target %v, want [111] (degree 2 ahead of line 109)", got)
	}
	// Total issues: first trigger at confidence 2 issues the full degree-2
	// window, then one per line.
	if p.Issued == 0 || p.Issued > 2+uint64(9) {
		t.Fatalf("issued %d prefetches over 10-line stream", p.Issued)
	}
}

func TestPrefetcherNeedsConfidence(t *testing.T) {
	p := NewStreamPrefetcher()
	if out := p.Observe(100); out != nil {
		t.Fatal("first miss must not prefetch")
	}
	if out := p.Observe(101); out != nil {
		t.Fatal("second miss (confidence 1 < 2) must not prefetch")
	}
	if out := p.Observe(102); len(out) == 0 {
		t.Fatal("third sequential miss should trigger prefetch")
	}
}

func TestPrefetcherIgnoresRandomStream(t *testing.T) {
	p := NewStreamPrefetcher()
	// Large random jumps never form a stream.
	lines := []uint64{10, 5000, 90, 70000, 33, 123456, 9}
	issued := 0
	for _, l := range lines {
		issued += len(p.Observe(l))
	}
	if issued != 0 {
		t.Errorf("random stream issued %d prefetches, want 0", issued)
	}
}

func TestPrefetcherToleratesSkippedLines(t *testing.T) {
	// Conditional-read pattern: every other line. Window 4 must still track
	// it — this is the source of the paper's double-counted random misses.
	p := NewStreamPrefetcher()
	issued := 0
	for line := uint64(0); line < 40; line += 2 {
		issued += len(p.Observe(line))
	}
	if issued == 0 {
		t.Error("stride-2 stream inside the window issued no prefetches")
	}
}

func TestPrefetcherTracksMultipleStreams(t *testing.T) {
	p := NewStreamPrefetcher()
	// Interleave two streams (two columns scanned in one loop).
	a, b := uint64(1000), uint64(500000)
	issuedA, issuedB := 0, 0
	for i := 0; i < 10; i++ {
		if out := p.Observe(a + uint64(i)); len(out) > 0 && out[0] > a {
			issuedA += len(out)
		}
		if out := p.Observe(b + uint64(i)); len(out) > 0 && out[0] > b {
			issuedB += len(out)
		}
	}
	if issuedA == 0 || issuedB == 0 {
		t.Errorf("interleaved streams: issued A=%d B=%d, both must be > 0", issuedA, issuedB)
	}
}

func TestPrefetcherReset(t *testing.T) {
	p := NewStreamPrefetcher()
	for line := uint64(0); line < 10; line++ {
		p.Observe(line)
	}
	if p.Issued == 0 {
		t.Fatal("setup failed to issue prefetches")
	}
	p.Reset()
	if p.Issued != 0 {
		t.Error("Reset did not clear Issued")
	}
	if out := p.Observe(10); out != nil {
		t.Error("stream survived Reset")
	}
}
