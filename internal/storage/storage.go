// Package storage compiles stored (PCOL v2) tables into executable scan
// plans: it prunes blocks against predicate bounds using the format's zone
// maps, derives per-vector skip verdicts for the execution engine, and
// builds the per-core storage-tier views (cache.StorageSet) that price cold
// scans through the full simulated hierarchy — caches, DRAM, and the
// below-DRAM block tier.
//
// The package sits between the columnar codec (block geometry, zone maps,
// encodings) and the execution engine (vector geometry, predicate ops). It
// holds no mutable execution state itself: plans are immutable once built,
// and each core receives its own StorageSet because residency and counters
// are simulation state.
package storage

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/exec"
	"progopt/internal/hw/cache"
)

// Config configures a stored scan: block-tier pricing, the resident-set
// budget, and the two optional scan capabilities.
type Config struct {
	// LatencyCycles is the fixed seek cost of one block fetch.
	LatencyCycles uint64
	// BytesPerCycle is the tier's transfer bandwidth (0 = 1).
	BytesPerCycle uint64
	// ResidentBytes bounds the DRAM-resident encoded bytes (0 = unbounded).
	ResidentBytes uint64
	// SkipScan enables zone-map block pruning: vectors proven empty by the
	// compiled predicate bounds are answered from metadata alone.
	SkipScan bool
	// CompressedScan prices predicate scans over the packed column images
	// (dictionary codes, FoR-packed deltas) instead of the decoded values —
	// fewer simulated bytes move through the hierarchy.
	CompressedScan bool
}

// tierConfig maps the public knobs to the cache layer's pricing.
func (c Config) tierConfig() cache.StorageConfig {
	return cache.StorageConfig{
		LatencyCycles: c.LatencyCycles,
		BytesPerCycle: c.BytesPerCycle,
		BudgetBytes:   c.ResidentBytes,
	}
}

// PackedImage locates a column's packed (encoded) image in the simulated
// address space: Width bytes per row at Base. The image aliases the decoded
// column's logical blocks in the tier.
type PackedImage struct {
	Base  uint64
	Width int
}

// Plan is a compiled stored scan over one driving table.
type Plan struct {
	// Enc is the stored table; Tab its decoded image, bound into the
	// engine's address space (the table the query executes over).
	Enc *columnar.EncodedTable
	Tab *columnar.Table

	// Pruned flags each table block (aligned across columns) that the
	// predicates prove empty. Nil when skip-scanning is off.
	Pruned []bool
	// Skip is Pruned translated to the engine's vector geometry: vector v is
	// skippable iff every block overlapping it is pruned.
	Skip []bool
	// Packed locates each column's packed image; nil when compressed
	// scanning is off.
	Packed map[string]PackedImage

	cfg Config
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// BlocksTotal returns the stored table's block count.
func (p *Plan) BlocksTotal() int { return p.Enc.NumBlocks() }

// BlocksPruned counts blocks the zone maps proved empty.
func (p *Plan) BlocksPruned() int {
	n := 0
	for _, pr := range p.Pruned {
		if pr {
			n++
		}
	}
	return n
}

// VectorsSkipped counts vectors the plan answers from metadata alone.
func (p *Plan) VectorsSkipped() int {
	n := 0
	for _, s := range p.Skip {
		if s {
			n++
		}
	}
	return n
}

// Compile builds the stored-scan plan for a query over the decoded image of
// enc: block pruning and vector skip verdicts from the query's predicate
// ops (when cfg.SkipScan), in the given vector geometry. The decoded table
// must be the query's driving table. Packed images are registered
// separately (the caller allocates them after all ordinary binds, to keep
// the faithful configuration address-identical to an in-RAM run).
func Compile(enc *columnar.EncodedTable, tab *columnar.Table, q *exec.Query, vectorSize int, cfg Config) (*Plan, error) {
	if enc == nil || tab == nil {
		return nil, fmt.Errorf("storage: Compile needs an encoded table and its decoded image")
	}
	if enc.NumRows() != tab.NumRows() {
		return nil, fmt.Errorf("storage: decoded image has %d rows, stored table %d", tab.NumRows(), enc.NumRows())
	}
	if vectorSize <= 0 {
		return nil, fmt.Errorf("storage: non-positive vector size %d", vectorSize)
	}
	p := &Plan{Enc: enc, Tab: tab, cfg: cfg}
	if cfg.SkipScan && q != nil {
		p.Pruned = pruneBlocks(enc, tab, q)
		p.Skip = skipVectors(p.Pruned, enc.BlockRows(), enc.NumRows(), vectorSize)
	}
	return p, nil
}

// pruneBlocks marks each table block that at least one predicate proves
// empty via its column's zone map. A block any single predicate empties
// yields no qualifying row regardless of the other operators, so pruning is
// sound for arbitrary operator mixes (joins never prune, they only filter
// further).
func pruneBlocks(enc *columnar.EncodedTable, tab *columnar.Table, q *exec.Query) []bool {
	pruned := make([]bool, enc.NumBlocks())
	for _, op := range q.Ops {
		pred, ok := op.(*exec.Predicate)
		if !ok {
			continue
		}
		col := enc.Column(pred.Col.Name())
		if col == nil || tab.Column(pred.Col.Name()) != pred.Col {
			// The predicate reads some other table (e.g. a join filter) or an
			// unstored column — its bounds say nothing about these blocks.
			continue
		}
		for b := range pruned {
			if !pruned[b] && blockPruned(col, b, pred) {
				pruned[b] = true
			}
		}
	}
	return pruned
}

// blockPruned reports whether the predicate's bound excludes every value of
// the column's block, per its zone map.
func blockPruned(col *columnar.EncodedColumn, b int, pred *exec.Predicate) bool {
	if col.Kind() == columnar.Float64 {
		min, max := col.ZoneFloat(b)
		return rangeEmpty(pred.Op, min, max, pred.F)
	}
	min, max := col.ZoneInt(b)
	return rangeEmpty(pred.Op, min, max, pred.I)
}

// rangeEmpty reports whether no value in [min, max] can satisfy `v op
// bound`.
func rangeEmpty[T int64 | float64](op exec.CmpOp, min, max, bound T) bool {
	switch op {
	case exec.LE:
		return min > bound
	case exec.LT:
		return min >= bound
	case exec.GE:
		return max < bound
	case exec.GT:
		return max <= bound
	case exec.EQ:
		return bound < min || bound > max
	}
	return false
}

// skipVectors translates block-granularity pruning to the engine's vector
// geometry: a vector is skippable iff every block overlapping its row range
// is pruned (possibly by different predicates).
func skipVectors(pruned []bool, blockRows, numRows, vectorSize int) []bool {
	numVec := (numRows + vectorSize - 1) / vectorSize
	skip := make([]bool, numVec)
	for v := range skip {
		lo := v * vectorSize
		hi := lo + vectorSize
		if hi > numRows {
			hi = numRows
		}
		ok := true
		for b := lo / blockRows; b*blockRows < hi; b++ {
			if !pruned[b] {
				ok = false
				break
			}
		}
		skip[v] = ok
	}
	return skip
}

// NewSet builds one core's storage-tier view of the plan: one logical block
// per (column, block) — the unit the tier transfers, costing the block's
// encoded bytes — with the decoded address window and, when present, the
// packed image's window aliased onto it. Every core of a run gets its own
// set over identical geometry, so residency evolves per simulated core and
// stays deterministic.
func (p *Plan) NewSet() (*cache.StorageSet, error) {
	s := cache.NewStorageSet(p.cfg.tierConfig())
	blockRows := uint64(p.Enc.BlockRows())
	for _, ec := range p.Enc.Columns() {
		dc := p.Tab.Column(ec.Name())
		if dc == nil {
			return nil, fmt.Errorf("storage: decoded image misses column %q", ec.Name())
		}
		if !dc.Bound() {
			return nil, fmt.Errorf("storage: column %q is not bound", ec.Name())
		}
		base := dc.Base()
		w := uint64(dc.Width())
		var pk PackedImage
		if p.Packed != nil {
			pk = p.Packed[ec.Name()]
		}
		for b := 0; b < ec.NumBlocks(); b++ {
			id := s.AddBlock(uint64(ec.BlockEncodedBytes(b)))
			lo := uint64(b) * blockRows
			rows := uint64(ec.Block(b).Rows)
			if err := s.AddRange(base+lo*w, rows*w, id); err != nil {
				return nil, err
			}
			if pk.Width > 0 {
				pw := uint64(pk.Width)
				if err := s.AddRange(pk.Base+lo*pw, rows*pw, id); err != nil {
					return nil, err
				}
			}
		}
	}
	return s, nil
}
