package core

import (
	"sort"

	"progopt/internal/exec"
)

// LoadWeights returns each operator's dependent loads per driving row: one
// for a predicate's column read; for a foreign-key join the key read, each
// via hop, the hash-bucket probe, and the pushed build-side filter column if
// present. The weights are structural — read off the compiled operators, no
// statistics — and feed RankOrder so the progressive optimizer prices a
// multi-hop probe at what it actually costs per row instead of treating
// every operator as one load.
func LoadWeights(q *exec.Query) []float64 {
	w := make([]float64, len(q.Ops))
	for i, op := range q.Ops {
		switch j := op.(type) {
		case *exec.FKJoin:
			loads := 2 + len(j.Via) // key read, via hops, bucket probe
			if j.Filter != nil {
				loads++
			}
			w[i] = float64(loads)
		default:
			w[i] = 1
		}
	}
	return w
}

// RankOrder returns the positions sorted by the classic rank criterion
// ascending: rank_i = w_i / (1 - s_i), an operator's per-row cost divided by
// the fraction of rows it removes. With uniform weights this is exactly
// AscendingOrder — the paper's predicate-only rule — so all-predicate plans
// behave identically; with join operators in the pipeline it keeps a cheap
// selective predicate ahead of an expensive multi-hop probe that filters
// only slightly harder, which plain selectivity ordering gets wrong.
//
// Exact rank ties break by ascending selectivity, then input position, so
// the order is deterministic for any input.
func RankOrder(weights, sels []float64) []int {
	order := make([]int, len(sels))
	for i := range order {
		order[i] = i
	}
	rank := func(i int) float64 {
		drop := 1 - sels[i]
		if drop < 1e-9 {
			drop = 1e-9
		}
		w := 1.0
		if i < len(weights) {
			w = weights[i]
		}
		return w / drop
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := order[x], order[y]
		ra, rb := rank(a), rank(b)
		if ra != rb {
			return ra < rb
		}
		return sels[a] < sels[b]
	})
	return order
}
