// Package markov implements the paper's branch cost model (§3.2): the
// stationary distribution of an n-state Markov chain whose transition
// probability is the predicate's selectivity, and the misprediction formulas
// (Eq. 5) derived from it. It also implements the simpler piecewise model of
// Zeuch et al. (Eq. 3) the paper compares against.
//
// Note on the paper's equation system (Eq. 4): equation (4f) as printed is
// not a balance equation of the chain in Figure 5 (its right-hand side mixes
// an extra factor p into the inflow term). The chain is a birth-death process
// with reflecting boundaries, so we solve it in closed form through detailed
// balance, which reproduces the paper's plotted six-state curves.
package markov

import (
	"fmt"
	"math"
)

// Chain is an n-state saturating-counter chain. TakenStates of the states
// predict "taken"; the rest predict "not taken". Selectivity p is the
// probability that a branch is NOT taken (the tuple qualifies), matching the
// compiled selection loop of §2.1.
type Chain struct {
	states      int
	takenStates int
}

// NewChain builds a chain with the given total and taken-predicting state
// counts.
func NewChain(states, takenStates int) (Chain, error) {
	if states < 2 {
		return Chain{}, fmt.Errorf("markov: need at least 2 states, got %d", states)
	}
	if takenStates < 1 || takenStates >= states {
		return Chain{}, fmt.Errorf("markov: taken states %d outside [1,%d]", takenStates, states-1)
	}
	return Chain{states: states, takenStates: takenStates}, nil
}

// MustChain is NewChain that panics on invalid arguments.
func MustChain(states, takenStates int) Chain {
	c, err := NewChain(states, takenStates)
	if err != nil {
		panic(err)
	}
	return c
}

// Paper returns the six-state chain the paper selects for Intel CPUs
// (Sandy Bridge through Broadwell).
func Paper() Chain { return MustChain(6, 3) }

// AMD returns the four-state chain the paper found most precise on AMD CPUs.
func AMD() Chain { return MustChain(4, 2) }

// Variant couples a chain with the label used in the paper's Figure 3.
type Variant struct {
	Label string
	Chain Chain
}

// Variants returns the chains compared in Figure 3: 2, 4, 5(+1NT), 5(+1T),
// 6, 7(+1T), 7(+1NT), and 8 states.
func Variants() []Variant {
	return []Variant{
		{"2 States", MustChain(2, 1)},
		{"4 States", MustChain(4, 2)},
		{"5 States (+1NT)", MustChain(5, 2)},
		{"5 States (+1T)", MustChain(5, 3)},
		{"6 States", MustChain(6, 3)},
		{"7 States (+1T)", MustChain(7, 4)},
		{"7 States (+1NT)", MustChain(7, 3)},
		{"8 States", MustChain(8, 4)},
	}
}

// States returns the total state count.
func (c Chain) States() int { return c.states }

// TakenStates returns the count of taken-predicting states.
func (c Chain) TakenStates() int { return c.takenStates }

// Stationary returns the stationary distribution over states for selectivity
// p in [0,1]. State 0 is "strong taken"; state states-1 is "strong not
// taken". A not-taken outcome (probability p) moves one state up, a taken
// outcome (probability 1-p) one state down, saturating at the ends.
func (c Chain) Stationary(p float64) []float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	pi := make([]float64, c.states)
	switch {
	case p == 0:
		pi[0] = 1
	case p == 1:
		pi[c.states-1] = 1
	default:
		// Detailed balance: pi[i+1]/pi[i] = p/(1-p).
		r := p / (1 - p)
		pi[0] = 1
		sum := 1.0
		for i := 1; i < c.states; i++ {
			pi[i] = pi[i-1] * r
			sum += pi[i]
		}
		for i := range pi {
			pi[i] /= sum
		}
	}
	return pi
}

// ProbPredictTaken returns the stationary probability that the predictor
// predicts "taken" (the paper's B_Tak).
func (c Chain) ProbPredictTaken(p float64) float64 {
	pi := c.Stationary(p)
	t := 0.0
	for i := 0; i < c.takenStates; i++ {
		t += pi[i]
	}
	return t
}

// Rates are the per-branch event probabilities of Eq. (5). Multiplying by
// the number of branches yields expected event counts.
type Rates struct {
	// MPTaken is the probability of a mispredicted taken branch (Eq. 5a).
	MPTaken float64
	// RPTaken is the probability of a correctly predicted taken branch (5b).
	RPTaken float64
	// MPNotTaken is the probability of a mispredicted not-taken branch (5c).
	MPNotTaken float64
	// RPNotTaken is a correctly predicted not-taken branch (5d).
	RPNotTaken float64
}

// MP returns the total misprediction probability. (The paper's Eq. 5e prints
// BTakMP + BNotTakRP, an evident typo for BTakMP + BNotTakMP.)
func (r Rates) MP() float64 { return r.MPTaken + r.MPNotTaken }

// RP returns the total correct-prediction probability.
func (r Rates) RP() float64 { return r.RPTaken + r.RPNotTaken }

// Predict evaluates Eq. (5) for a branch that is not taken with probability p
// (i.e. a selection predicate of selectivity p).
func (c Chain) Predict(p float64) Rates {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	bTak := c.ProbPredictTaken(p)
	bNotTak := 1 - bTak
	q := 1 - p // probability the branch is taken
	return Rates{
		MPTaken:    q * bNotTak,
		RPTaken:    q * bTak,
		MPNotTaken: p * bTak,
		RPNotTaken: p * bNotTak,
	}
}

// Counts scales Predict by n branches, returning expected event counts.
func (c Chain) Counts(p float64, n float64) (mpTaken, mpNotTaken, mp float64) {
	r := c.Predict(p)
	return r.MPTaken * n, r.MPNotTaken * n, r.MP() * n
}

// ZeuchMP is the baseline estimate of Zeuch et al. (Eq. 3): mispredictions
// equal branches not taken below 50% selectivity and branches taken above.
// As a per-branch probability that is min(p, 1-p).
func ZeuchMP(p float64) float64 {
	return math.Min(math.Max(p, 0), math.Max(1-p, 0))
}
