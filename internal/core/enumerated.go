package core

import (
	"progopt/internal/exec"
)

// RunProgressiveEnumerated is the §5.7 comparator as a complete system: a
// progressive optimizer driven by enumerator-based instrumentation instead
// of performance counters. Every ReopInterval vectors it executes ONE vector
// through the instrumented loop — explicit counter increments after every
// predicate evaluation — which yields the exact conditional selectivities of
// the current order, then reorders ascending and validates like the PMU
// driver.
//
// The paper's argument reproduced end-to-end: the enumerated sample vector
// costs ~1.5x a plain vector (Figure 16), so the approach pays a real
// runtime tax each optimization cycle and requires maintaining a second,
// instrumented implementation of every operator — whereas the PMU driver's
// sampling is free and works on unmodified (even black-box) operators.
func RunProgressiveEnumerated(e *exec.Engine, q *exec.Query, opt Options) (exec.Result, Stats, error) {
	if err := q.Validate(); err != nil {
		return exec.Result{}, Stats{}, err
	}
	opt.setDefaults()
	c := e.CPU()

	nOps := len(q.Ops)
	curPerm := identity(nOps)
	prevPerm := identity(nOps)
	curQ := q

	start := c.Sample()
	startCycles := c.Cycles()
	var out exec.Result
	var st Stats

	n := q.Table.NumRows()
	vs := e.VectorSize()
	numVectors := (n + vs - 1) / vs

	var prevVecCycles uint64
	pendingValidation := false

	vec := 0
	for lo := 0; lo < n; lo += vs {
		hi := lo + vs
		if hi > n {
			hi = n
		}
		c0 := c.Cycles()
		sampleThis := opt.ReopInterval > 0 && (vec+1)%opt.ReopInterval == 0 && vec+1 < numVectors

		var sels []float64
		if sampleThis {
			// The instrumented implementation of the loop.
			oc := &exec.OpCounts{
				Evaluated: make([]int64, len(curQ.Ops)),
				Passed:    make([]int64, len(curQ.Ops)),
			}
			vr, err := e.RunVectorInstrumented(curQ, lo, hi, oc)
			if err != nil {
				return exec.Result{}, Stats{}, err
			}
			out.Qualifying += vr.Qualifying
			out.Sum += vr.Sum
			sels = oc.Selectivities()
		} else {
			vr, err := e.RunVector(curQ, lo, hi)
			if err != nil {
				return exec.Result{}, Stats{}, err
			}
			out.Qualifying += vr.Qualifying
			out.Sum += vr.Sum
		}
		out.Vectors++
		vecCycles := c.Cycles() - c0
		vec++

		if pendingValidation && !opt.DisableValidation {
			pendingValidation = false
			limit := float64(prevVecCycles) * (1 + opt.ValidationTolerance)
			if float64(vecCycles) > limit && (hi-lo) == vs {
				curPerm = append([]int(nil), prevPerm...)
				var err error
				curQ, err = q.WithOrder(curPerm)
				if err != nil {
					return exec.Result{}, Stats{}, err
				}
				if !opt.DisablePredictorReset {
					c.ResetPredictor()
				}
				c.Exec(opt.ReorderCostInstr)
				st.Reverts++
			}
		}

		if sels != nil {
			st.Optimizations++
			st.LastEstimate = sels
			order := AscendingOrder(sels)
			newPerm := compose(curPerm, order)
			if !equalPerm(newPerm, curPerm) {
				prevPerm = append([]int(nil), curPerm...)
				curPerm = newPerm
				var err error
				curQ, err = q.WithOrder(curPerm)
				if err != nil {
					return exec.Result{}, Stats{}, err
				}
				if !opt.DisablePredictorReset {
					c.ResetPredictor()
				}
				c.Exec(opt.ReorderCostInstr)
				st.Reorders++
				pendingValidation = true
			}
		}
		prevVecCycles = vecCycles
	}

	out.Cycles = c.Cycles() - startCycles
	out.Millis = c.MillisOf(out.Cycles)
	out.Counters = c.Sample().Sub(start)
	st.Vectors = out.Vectors
	st.FinalOrder = curPerm
	return out, st, nil
}
