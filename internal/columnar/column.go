// Package columnar implements the in-memory column store the query engine
// scans: typed columns, tables, and a binary on-disk format. Each column is
// bound to a range of the simulated CPU's synthetic address space so that the
// cache hierarchy sees the exact access pattern a columnar layout produces
// (sequential for the first predicate, conditional-read for the rest — the
// two patterns of the paper's §3.1 cost model).
package columnar

import "fmt"

// Kind is the physical type of a column.
type Kind int

// Physical column types.
const (
	// Int64 is an 8-byte signed integer column.
	Int64 Kind = iota
	// Int32 is a 4-byte signed integer column.
	Int32
	// Float64 is an 8-byte IEEE-754 column.
	Float64
	// Date is a 4-byte column of days since 1970-01-01; comparisons are
	// integer comparisons, matching the paper's timestamp conversion (§2.1).
	Date
)

// String returns the SQL-ish type name.
func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Int32:
		return "int32"
	case Float64:
		return "float64"
	case Date:
		return "date"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Width returns the storage width of the kind in bytes.
func (k Kind) Width() int {
	switch k {
	case Int64, Float64:
		return 8
	case Int32, Date:
		return 4
	}
	return 0
}

// Column is one typed, contiguously stored attribute.
type Column struct {
	name  string
	kind  Kind
	width int // cached kind.Width(): Addr sits on the per-tuple hot path
	i64   []int64
	i32   []int32
	f64   []float64
	base  uint64
	bound bool
}

// NewInt64 builds an int64 column. The slice is owned by the column.
func NewInt64(name string, data []int64) *Column {
	return &Column{name: name, kind: Int64, width: Int64.Width(), i64: data}
}

// NewInt32 builds an int32 column.
func NewInt32(name string, data []int32) *Column {
	return &Column{name: name, kind: Int32, width: Int32.Width(), i32: data}
}

// NewFloat64 builds a float64 column.
func NewFloat64(name string, data []float64) *Column {
	return &Column{name: name, kind: Float64, width: Float64.Width(), f64: data}
}

// NewDate builds a date column from days since 1970-01-01.
func NewDate(name string, days []int32) *Column {
	return &Column{name: name, kind: Date, width: Date.Width(), i32: days}
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the physical type.
func (c *Column) Kind() Kind { return c.kind }

// Width returns the per-value width in bytes.
func (c *Column) Width() int { return c.width }

// Len returns the number of rows.
func (c *Column) Len() int {
	switch c.kind {
	case Int64:
		return len(c.i64)
	case Int32, Date:
		return len(c.i32)
	case Float64:
		return len(c.f64)
	}
	return 0
}

// SizeBytes returns the storage footprint.
func (c *Column) SizeBytes() int { return c.Len() * c.Width() }

// Bind assigns the column's base in the simulated address space and marks the
// column bound. Any base — including 0 — is legitimate; use Bound to test
// binding state rather than comparing Base against a sentinel.
func (c *Column) Bind(base uint64) {
	c.base = base
	c.bound = true
}

// Bound reports whether the column has been bound into an address space.
func (c *Column) Bound() bool { return c.bound }

// Base returns the bound base address (0 if unbound).
func (c *Column) Base() uint64 { return c.base }

// Addr returns the simulated address of row i.
func (c *Column) Addr(i int) uint64 { return c.base + uint64(i)*uint64(c.width) }

// Int64At returns row i widened to int64 (valid for Int64, Int32, Date).
func (c *Column) Int64At(i int) int64 {
	switch c.kind {
	case Int64:
		return c.i64[i]
	case Int32, Date:
		return int64(c.i32[i])
	}
	panic(fmt.Sprintf("columnar: Int64At on %v column %q", c.kind, c.name))
}

// Float64At returns row i as float64 (valid for any kind).
func (c *Column) Float64At(i int) float64 {
	switch c.kind {
	case Float64:
		return c.f64[i]
	case Int64:
		return float64(c.i64[i])
	case Int32, Date:
		return float64(c.i32[i])
	}
	panic(fmt.Sprintf("columnar: Float64At on %v column %q", c.kind, c.name))
}

// I64 exposes the raw int64 payload (nil for other kinds).
func (c *Column) I64() []int64 { return c.i64 }

// I32 exposes the raw int32/date payload (nil for other kinds).
func (c *Column) I32() []int32 { return c.i32 }

// F64 exposes the raw float64 payload (nil for other kinds).
func (c *Column) F64() []float64 { return c.f64 }
