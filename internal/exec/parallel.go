package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
	"progopt/internal/trace"
)

// Parallel executes queries with morsel-driven parallelism (Leis et al.,
// "Morsel-driven parallelism", SIGMOD 2014) across N simulated cores. The
// driving table is split into morsels of one vector each and the scheduler
// dispenses the next morsel to whichever core is idle first in *simulated*
// time (the core with the smallest cycle clock) — a discrete-event
// simulation of the work-stealing queue, so cores that drew expensive
// morsels automatically receive fewer of them, exactly the self-balancing
// property morsel-driven execution is built for.
//
// All cores share one synthetic physical address space (columns are bound
// once, by whichever CPU allocated them) but simulate private cache
// hierarchies, branch predictors, and PMUs — the private-L1/L2 topology of
// the paper's evaluation machine. Scheduling decisions depend only on
// simulated clocks, so everything is deterministic: Qualifying and Sum are
// bit-identical to a serial run (the aggregate is reduced in global vector
// order), and cycle counts and PMU samples reproduce exactly across runs,
// host machines, and GOMAXPROCS settings.
//
// On multi-core hosts the simulated cores really do run in parallel: the
// scheduler certifies *waves* of morsel assignments whose core choice is
// provably independent of the in-flight morsels' still-unknown durations
// (see buildWave), executes each wave's members concurrently on a persistent
// per-core goroutine pool, and merges results at the wave barrier in global
// vector order. Because each member touches only its own simulated core and
// the merge order is fixed by morsel index — never by host completion order
// — the host schedule cannot influence any simulated observable.
type Parallel struct {
	workers    []*Engine
	vectorSize int
	// blockCores/blockClocks are the reusable identity subset of the
	// whole-pool entry points (RunBlock*, RunGroupBy), which always have a
	// single driver.
	blockCores  []int
	blockClocks []uint64
	// run is the default block-run context of the single-driver entry
	// points. Drivers that execute blocks concurrently (the workload
	// service's host-parallel scheduling rounds) allocate their own context
	// per driver with NewBlockRun.
	run BlockRun
	// pool holds the persistent host worker goroutines, started lazily by
	// the first multi-member wave (or segment fan-out) on a GOMAXPROCS > 1
	// host and reused across blocks until Close. Guarded by poolMu for
	// concurrent starters; readers load the atomic pointer.
	poolMu sync.Mutex
	pool   atomic.Pointer[hostPool]
}

// BlockRun is one driver's reusable scratch for block execution: wave slots,
// per-core busy flags, PMU sample snapshots, and the per-call busy-cycle
// counters. The simulation state lives in the Parallel's engines; a BlockRun
// only buffers the coordinator-side bookkeeping of one driver, so several
// drivers may execute blocks on one Parallel concurrently as long as each
// uses its own BlockRun over a disjoint core subset.
type BlockRun struct {
	p             *Parallel
	sampleScratch []pmu.Sample
	waveSlots     []waveSlot
	waveBusy      []bool
	// busyScratch backs BlockResult.WorkerCycles, which therefore stays
	// valid only until the next call on the same BlockRun.
	busyScratch []uint64
}

// NewBlockRun returns a fresh block-run context for one concurrent driver.
func (p *Parallel) NewBlockRun() *BlockRun { return &BlockRun{p: p} }

// NewParallel builds a parallel executor with the given number of worker
// cores, each a fresh CPU of the given profile.
func NewParallel(prof cpu.Profile, workers, vectorSize int) (*Parallel, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("exec: non-positive worker count %d", workers)
	}
	if vectorSize <= 0 {
		return nil, fmt.Errorf("exec: non-positive vector size %d", vectorSize)
	}
	ws := make([]*Engine, workers)
	for i := range ws {
		c, err := cpu.New(prof)
		if err != nil {
			return nil, err
		}
		e, err := NewEngine(c, vectorSize)
		if err != nil {
			return nil, err
		}
		ws[i] = e
	}
	p := &Parallel{workers: ws, vectorSize: vectorSize}
	p.run.p = p
	return p, nil
}

// Workers returns the number of simulated cores.
func (p *Parallel) Workers() int { return len(p.workers) }

// Engines exposes the per-core engines (shared slice; do not mutate).
func (p *Parallel) Engines() []*Engine { return p.workers }

// VectorSize returns tuples per vector (= per morsel).
func (p *Parallel) VectorSize() int { return p.vectorSize }

// SetScalar switches every worker between batch-kernel and tuple-at-a-time
// execution.
func (p *Parallel) SetScalar(scalar bool) {
	for _, w := range p.workers {
		w.SetScalar(scalar)
	}
}

// SetFuse toggles the fused batch kernels on every worker (see
// Engine.SetFuse). Both settings are bit-identical; the unfused path is the
// equivalence oracle.
func (p *Parallel) SetFuse(enable bool) {
	for _, w := range p.workers {
		w.SetFuse(enable)
	}
}

// SetTrace attaches one event track per simulated core (tracks[i] goes to
// core i; nil detaches all). During a wave, core i's track is written only by
// the host goroutine running core i, and the coordinator adds morsel spans at
// the wave barrier while the members are quiesced — single-writer per track
// throughout, so append order is the certified serial schedule and traces
// reproduce byte-for-byte at any GOMAXPROCS.
func (p *Parallel) SetTrace(tracks []*trace.Track) {
	for i, w := range p.workers {
		if tracks == nil || i >= len(tracks) {
			w.SetTrace(nil)
		} else {
			w.SetTrace(tracks[i])
		}
	}
}

// Close stops the persistent host worker goroutines, if any were started.
// The Parallel remains usable afterwards (a later multi-member wave simply
// starts a fresh pool); Close exists so long-lived processes that retire an
// executor on a multi-core host do not leak its goroutines. On single-
// threaded hosts no pool is ever started and Close is a no-op.
func (p *Parallel) Close() {
	p.poolMu.Lock()
	defer p.poolMu.Unlock()
	if hp := p.pool.Swap(nil); hp != nil {
		hp.close()
	}
}

// hostPoolStart returns the persistent host pool, starting it on first use.
// Safe for concurrent callers: the first-start race is resolved under
// poolMu, and the fast path is one atomic load.
func (p *Parallel) hostPoolStart() *hostPool {
	if hp := p.pool.Load(); hp != nil {
		return hp
	}
	p.poolMu.Lock()
	defer p.poolMu.Unlock()
	if hp := p.pool.Load(); hp != nil {
		return hp
	}
	hp := newHostPool(len(p.workers))
	p.pool.Store(hp)
	return hp
}

// Cold flushes caches and resets predictors on every core.
func (p *Parallel) Cold() {
	for _, w := range p.workers {
		w.CPU().FlushCaches()
		w.CPU().ResetPredictor()
	}
}

// NumVectors returns how many vectors (morsels) cover the query's table.
func (p *Parallel) NumVectors(q *Query) int {
	return (q.Table.NumRows() + p.vectorSize - 1) / p.vectorSize
}

// BindQuery binds the query through worker 0's address space and starts all
// cores cold. When the query was already bound by an external engine sharing
// the address-space convention (the usual facade setup), binding is a no-op
// and only the cold start applies.
func (p *Parallel) BindQuery(q *Query) error {
	if err := p.workers[0].BindQuery(q); err != nil {
		return err
	}
	p.Cold()
	return nil
}

// BlockResult reports one morsel block execution.
type BlockResult struct {
	// Qualifying and Sum are the block's query results, reduced in vector
	// order (bit-identical to a serial run).
	Qualifying int64
	Sum        float64
	// Vectors is the number of morsels executed.
	Vectors int
	// MaxCycles is the block makespan: the largest per-core cycle delta.
	MaxCycles uint64
	// WorkerCycles are the per-core cycle deltas.
	WorkerCycles []uint64
	// Counters is the PMU delta summed across cores — the aggregate a
	// multi-core deployment reads by sampling every core's PMU.
	Counters pmu.Sample
}

// RunBlock executes vectors [vecLo, vecHi) of the query morsel-driven: each
// vector is one morsel, claimed by the core whose simulated clock is
// furthest behind (ties go to the lowest core id).
func (p *Parallel) RunBlock(q *Query, vecLo, vecHi int) (BlockResult, error) {
	return p.RunBlockImpl(q, vecLo, vecHi, ImplBranching)
}

// RunBlockImpl is RunBlock with an explicit scan implementation: the
// micro-adaptive driver runs whole morsel blocks branch-free when the merged
// counters say predication is cheaper on every core.
func (p *Parallel) RunBlockImpl(q *Query, vecLo, vecHi int, impl ScanImpl) (BlockResult, error) {
	return p.RunBlockImplSum(q, vecLo, vecHi, impl, nil)
}

// fullCores returns the reusable identity core subset and zeroed entry
// clocks covering the whole pool.
func (p *Parallel) fullCores() ([]int, []uint64) {
	if p.blockCores == nil {
		p.blockCores = make([]int, len(p.workers))
		for i := range p.blockCores {
			p.blockCores[i] = i
		}
		p.blockClocks = make([]uint64, len(p.workers))
	}
	for i := range p.blockClocks {
		p.blockClocks[i] = 0
	}
	return p.blockCores, p.blockClocks
}

// RunBlockImplSum is RunBlockImpl with RunBlockSubset's external aggregate
// accumulator: a driver that splits one scan into many blocks passes the
// same *float64 to every call and gets the exact per-vector addition order
// (and therefore bit pattern) of an unsplit serial run, regardless of block
// boundaries.
func (p *Parallel) RunBlockImplSum(q *Query, vecLo, vecHi int, impl ScanImpl, sum *float64) (BlockResult, error) {
	cores, clocks := p.fullCores()
	return p.run.RunBlockSubset(q, vecLo, vecHi, cores, clocks, impl, sum)
}

// waveSlot is one certified (core, morsel) assignment of a wave: the
// scheduling decision plus the member's results, written by whichever host
// goroutine runs the member and read by the coordinator after the wave
// barrier.
type waveSlot struct {
	pos    int // index into the block's core subset
	core   int // pool core id
	v      int // morsel (vector) index
	lo, hi int // row range
	// minEnd is the entry clock plus the guaranteed minimum duration of the
	// morsel — the earliest simulated instant this core could possibly be
	// idle again (see minVectorCycles).
	minEnd uint64
	group  *GroupBy // non-nil: run GroupVector instead of RunVectorImpl
	// Results.
	res      VectorResult
	sel      []int32 // GroupVector survivors (aliases the engine's buffers)
	cycles   uint64
	err      error
	pv       any // panic value captured on a pool goroutine
	panicked bool
}

// minVectorCycles returns a guaranteed lower bound on the simulated cycles
// any engine spends on an n-row vector: every execution mode of every driver
// (batch, fused, scalar, branch-free, and GroupVector) unconditionally
// retires the per-row loop bookkeeping (loopOverheadInstr = 2 instructions)
// and the always-taken back-edge branch (2 instructions: cmp + jcc), so at
// least 4n instructions issue, and load latencies, operator work, and stalls
// only add. The bound is evaluated with the exact integer arithmetic of
// CPU.Cycles (issue quarters, floored), which never exceeds the cycle delta
// the extra instructions alone produce.
func minVectorCycles(n, issueWidth int) uint64 {
	return uint64(4*n) * 4 / uint64(issueWidth) / 4
}

// buildWave certifies a maximal run of morsels starting at vector v for
// concurrent execution and returns the assignments (ascending morsel order)
// plus the next unassigned vector.
//
// The serial reference scheduler assigns each morsel to the idle-first core:
// the smallest clock, ties to the lowest subset position. A wave extends
// this one decision at a time without waiting for in-flight durations: the
// next morsel's core is chosen as the argmin over cores NOT yet in the wave
// (their clocks are exact), and the choice is *certified* by checking that
// the candidate's clock is strictly below every in-flight member's minEnd.
// An in-flight core finishes at entry + duration >= minEnd > candidate
// clock, so whatever the durations turn out to be, the reference scheduler
// would also have picked this candidate — the strict inequality even
// preserves the lowest-position tie rule, because a tie with an in-flight
// core is impossible. The first morsel that fails certification ends the
// wave (a barrier); each core therefore carries at most one morsel per wave.
func (r *BlockRun) buildWave(cores []int, clocks []uint64, v, vecHi, nRows int, gs []*GroupBy) ([]waveSlot, int) {
	p := r.p
	iw := p.workers[0].CPU().Profile().IssueWidth
	// A zone-map-skipped vector (see StorageScan) answers from metadata in
	// zero simulated cycles, so its guaranteed minimum duration is zero:
	// minEnd collapses to the entry clock, no later candidate can certify
	// against it (clocks are >= the argmin's), and the wave ends right after
	// the skipped member — the serial argmin schedule is replayed exactly.
	// The skip bitmap is shared across the run's cores; the subset's first
	// core carries it like every other.
	var skip []bool
	if st := p.workers[cores[0]].stor; st != nil {
		skip = st.Skip
	}
	slots := r.waveSlots[:0]
	if cap(r.waveBusy) < len(cores) {
		r.waveBusy = make([]bool, len(cores))
	}
	busy := r.waveBusy[:len(cores)]
	for i := range busy {
		busy[i] = false
	}
	for v < vecHi {
		i := -1
		for j := range clocks {
			if !busy[j] && (i < 0 || clocks[j] < clocks[i]) {
				i = j
			}
		}
		if i < 0 {
			break // every core already carries a morsel
		}
		certified := true
		for s := range slots {
			if clocks[i] >= slots[s].minEnd {
				certified = false
				break
			}
		}
		if !certified {
			break
		}
		lo := v * p.vectorSize
		hi := lo + p.vectorSize
		if hi > nRows {
			hi = nRows
		}
		minVC := minVectorCycles(hi-lo, iw)
		if v < len(skip) && skip[v] {
			minVC = 0
		}
		slot := waveSlot{
			pos: i, core: cores[i], v: v, lo: lo, hi: hi,
			minEnd: clocks[i] + minVC,
		}
		if gs != nil {
			slot.group = gs[cores[i]]
		}
		slots = append(slots, slot)
		busy[i] = true
		v++
	}
	r.waveSlots = slots
	return slots, v
}

// hostPool holds the persistent host worker goroutines: one per simulated
// core for wave members (each drains its own job channel, so a wave member
// always runs on the goroutine dedicated to its simulated core — one core's
// simulation state is only ever touched from one goroutine at a time), plus
// a separate set of segment drivers that execute whole-segment closures for
// RunSegments. The two sets must be distinct: a segment closure itself
// dispatches wave jobs and blocks at wave barriers, so running it on a
// per-core wave goroutine could deadlock waiting for its own core's jobs.
type hostPool struct {
	jobs []chan func()
	seg  chan func()
}

func newHostPool(n int) *hostPool {
	hp := &hostPool{jobs: make([]chan func(), n), seg: make(chan func(), n)}
	for i := range hp.jobs {
		ch := make(chan func(), 1)
		hp.jobs[i] = ch
		go func() {
			for f := range ch {
				f()
			}
		}()
	}
	for i := 0; i < n; i++ {
		go func() {
			for f := range hp.seg {
				f()
			}
		}()
	}
	return hp
}

func (hp *hostPool) close() {
	for _, ch := range hp.jobs {
		close(ch)
	}
	close(hp.seg)
}

// RunSegments executes the given closures concurrently on the persistent
// host pool's segment drivers and returns after all complete — the fan-out
// primitive for the workload service's host-parallel scheduling rounds. The
// closures must be mutually data-independent (distinct queries on disjoint
// core subsets, each with its own BlockRun). On a single-threaded host, or
// with a single closure, everything runs inline on the caller in slice order
// with zero dispatch overhead. A closure panic is captured on its driver
// goroutine and re-raised on the caller after the barrier; when several
// members panic, the lowest slice index wins, so the surfaced failure is
// deterministic.
func (p *Parallel) RunSegments(fns []func()) {
	if len(fns) == 0 {
		return
	}
	if len(fns) == 1 || runtime.GOMAXPROCS(0) == 1 {
		for _, f := range fns {
			f()
		}
		return
	}
	hp := p.hostPoolStart()
	pvs := make([]any, len(fns))
	panicked := make([]bool, len(fns))
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for i := 1; i < len(fns); i++ {
		i, f := i, fns[i]
		hp.seg <- func() {
			defer func() {
				if r := recover(); r != nil {
					pvs[i], panicked[i] = r, true
				}
				wg.Done()
			}()
			f()
		}
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				pvs[0], panicked[0] = r, true
			}
		}()
		fns[0]()
	}()
	wg.Wait()
	for i := range fns {
		if panicked[i] {
			panic(pvs[i])
		}
	}
}

// runSlot executes one wave member on its simulated core and records the
// result and cycle delta.
func (p *Parallel) runSlot(q *Query, impl ScanImpl, s *waveSlot) {
	eng := p.workers[s.core]
	c := eng.CPU()
	c0 := c.Cycles()
	if s.group != nil {
		s.sel, s.err = eng.GroupVector(q, s.group, s.lo, s.hi)
	} else {
		s.res, s.err = eng.RunVectorImpl(q, s.lo, s.hi, impl)
	}
	s.cycles = c.Cycles() - c0
}

// runWave executes the wave's members. Single-member waves — and any wave on
// a single-threaded host — run inline on the calling goroutine with zero
// dispatch overhead (and, on an error or panic, behavior identical to the
// fully serial scheduler). Larger waves dispatch members 1..k to the
// persistent per-core goroutines, run member 0 on the coordinator, and block
// at the wave barrier. A member panic (e.g. an out-of-range foreign key) is
// captured on the worker goroutine and re-raised on the coordinator after
// the barrier.
func (r *BlockRun) runWave(q *Query, impl ScanImpl, slots []waveSlot) {
	p := r.p
	if len(slots) == 1 || runtime.GOMAXPROCS(0) == 1 {
		for i := range slots {
			p.runSlot(q, impl, &slots[i])
		}
		return
	}
	hp := p.hostPoolStart()
	var wg sync.WaitGroup
	wg.Add(len(slots) - 1)
	for i := 1; i < len(slots); i++ {
		s := &slots[i]
		hp.jobs[s.core] <- func() {
			defer func() {
				if r := recover(); r != nil {
					s.pv, s.panicked = r, true
				}
				wg.Done()
			}()
			p.runSlot(q, impl, s)
		}
	}
	p.runSlot(q, impl, &slots[0])
	wg.Wait()
	for i := range slots {
		if slots[i].panicked {
			panic(slots[i].pv)
		}
	}
}

// RunBlockSubset executes vectors [vecLo, vecHi) of the query morsel-driven
// on a dynamic subset of the pool's cores — the primitive the workload
// service partitions cores across concurrent queries with. cores lists the
// participating core ids in strictly ascending order; clocks[i] is the
// absolute simulated time core cores[i] is next free, continued from the
// caller's discrete-event state and updated in place. Each morsel goes to
// the subset core whose clock is smallest (ties to the lowest position), so
// a core that enters the block behind the others naturally backfills first —
// the same self-balancing rule RunBlock applies from an even start.
//
// Execution proceeds in certified waves (see buildWave) whose members run
// host-parallel on multi-core machines; results merge at each wave barrier
// in ascending morsel order, so every simulated observable — results, cycle
// clocks, PMU counters, float bit patterns — is identical to the serial
// scheduler's for every Workers and GOMAXPROCS combination.
//
// The returned BlockResult reports WorkerCycles[i] as the busy cycles core
// cores[i] consumed in this call, MaxCycles as the block makespan measured
// from the earliest entry clock, and Counters as the subset's merged PMU
// deltas. With the full pool and zero entry clocks this is exactly
// RunBlockImpl.
//
// sum, when non-nil, receives the per-vector aggregate contributions in
// global vector order and BlockResult.Sum stays zero: a caller that splits
// one logical scan into many scheduling quanta accumulates into the same
// float across all of them, preserving the exact addition order (and
// therefore the bit pattern) of an unsplit run. With sum == nil the block's
// contribution is reduced into BlockResult.Sum, the dedicated drivers'
// per-block contract.
func (p *Parallel) RunBlockSubset(q *Query, vecLo, vecHi int, cores []int, clocks []uint64, impl ScanImpl, sum *float64) (BlockResult, error) {
	return p.run.RunBlockSubset(q, vecLo, vecHi, cores, clocks, impl, sum)
}

// RunBlockSubset is the per-driver form of Parallel.RunBlockSubset: identical
// semantics, but the coordinator-side scratch (wave slots, PMU snapshots, the
// WorkerCycles backing array) comes from this BlockRun, so concurrent drivers
// over disjoint core subsets do not contend.
func (r *BlockRun) RunBlockSubset(q *Query, vecLo, vecHi int, cores []int, clocks []uint64, impl ScanImpl, sum *float64) (BlockResult, error) {
	p := r.p
	if err := q.Validate(); err != nil {
		return BlockResult{}, err
	}
	if len(cores) == 0 {
		return BlockResult{}, fmt.Errorf("exec: block needs at least one core")
	}
	if len(clocks) != len(cores) {
		return BlockResult{}, fmt.Errorf("exec: %d clocks for %d cores", len(clocks), len(cores))
	}
	for i, w := range cores {
		if w < 0 || w >= len(p.workers) {
			return BlockResult{}, fmt.Errorf("exec: core %d outside pool of %d", w, len(p.workers))
		}
		if i > 0 && w <= cores[i-1] {
			return BlockResult{}, fmt.Errorf("exec: core subset %v not strictly ascending", cores)
		}
	}
	n := q.Table.NumRows()
	numVec := (n + p.vectorSize - 1) / p.vectorSize
	if vecLo < 0 || vecHi > numVec || vecLo > vecHi {
		return BlockResult{}, fmt.Errorf("exec: block [%d,%d) outside %d vectors", vecLo, vecHi, numVec)
	}
	nw := len(cores)
	entryMin := clocks[0]
	for _, cl := range clocks[1:] {
		if cl < entryMin {
			entryMin = cl
		}
	}
	if cap(r.busyScratch) < nw {
		r.busyScratch = make([]uint64, nw)
	}
	busy := r.busyScratch[:nw]
	for i := range busy {
		busy[i] = 0
	}
	if cap(r.sampleScratch) < nw {
		r.sampleScratch = make([]pmu.Sample, nw)
	}
	startSamples := r.sampleScratch[:nw]
	for i, w := range cores {
		startSamples[i] = p.workers[w].CPU().Sample()
	}
	var out BlockResult
	wave := 0
	for v := vecLo; v < vecHi; {
		slots, nv := r.buildWave(cores, clocks, v, vecHi, n, nil)
		r.runWave(q, impl, slots)
		// Wave barrier: merge in ascending morsel order. Clock updates feed
		// the next wave's scheduling; the aggregate accumulates in global
		// vector order for a serial-identical float bit pattern.
		for i := range slots {
			s := &slots[i]
			if s.err != nil {
				return BlockResult{}, s.err
			}
			clocks[s.pos] += s.cycles
			busy[s.pos] += s.cycles
			out.Qualifying += s.res.Qualifying
			if sum != nil {
				*sum += s.res.Sum
			} else {
				out.Sum += s.res.Sum
			}
			out.Vectors++
			// Morsel spans are emitted by the coordinator while the members
			// are quiesced at the barrier: the core clock still reads the
			// slot's end, and append order (ascending morsel) is a pure
			// function of the certified schedule.
			if tr := p.workers[s.core].tr; tr != nil {
				end := p.workers[s.core].CPU().Cycles()
				tr.Span("morsel", end-s.cycles, end,
					trace.A("v", s.v), trace.A("wave", wave), trace.A("rows", s.hi-s.lo))
			}
		}
		wave++
		v = nv
	}
	out.WorkerCycles = busy
	if out.Vectors > 0 {
		for _, cl := range clocks {
			if cl-entryMin > out.MaxCycles {
				out.MaxCycles = cl - entryMin
			}
		}
	}
	for i, w := range cores {
		out.Counters = out.Counters.Add(p.workers[w].CPU().Sample().Sub(startSamples[i]))
	}
	return out, nil
}

// RunGroupBy executes the query's filters and aggregates survivors
// morsel-driven across all cores with per-core partial hash tables: worker w
// updates only gs[w] (its private table region, so hash-table maintenance
// hits its own cache hierarchy), and at the barrier after the scan core 0
// merges every other core's partial slots into its table, extending the
// makespan — the standard shared-nothing parallel aggregation plan.
//
// The scan runs in the same certified waves as RunBlockSubset (host-parallel
// on multi-core machines); each wave's survivor vectors reduce into the
// accumulator at the barrier in global vector order, so Groups (keys, sums,
// counts) are bit-identical to a serial Engine.RunGroupBy and deterministic
// across worker counts and GOMAXPROCS settings.
func (p *Parallel) RunGroupBy(q *Query, gs []*GroupBy) (GroupResult, error) {
	if err := q.Validate(); err != nil {
		return GroupResult{}, err
	}
	nw := len(p.workers)
	if len(gs) != nw {
		return GroupResult{}, fmt.Errorf("exec: %d partial group tables for %d workers", len(gs), nw)
	}
	for w, g := range gs {
		if g == nil {
			return GroupResult{}, fmt.Errorf("exec: nil partial group table for worker %d", w)
		}
	}
	n := q.Table.NumRows()
	numVec := p.NumVectors(q)
	cores, clocks := p.fullCores()
	if cap(p.run.sampleScratch) < nw {
		p.run.sampleScratch = make([]pmu.Sample, nw)
	}
	startSamples := p.run.sampleScratch[:nw]
	for w, eng := range p.workers {
		startSamples[w] = eng.CPU().Sample()
	}
	acc := gs[0].accTable()
	// workerKeys tracks which keys each core's partial table holds, for the
	// merge phase (sorted for determinism). Count doubles as the presence
	// marker; sums stay zero. The tables escape into nothing but grow with
	// the key domain, so they stay per-call rather than pool scratch.
	workerKeys := make([]*groupTable, nw)
	for w := range workerKeys {
		workerKeys[w] = gs[w].accTable()
	}
	var out GroupResult
	for v := 0; v < numVec; {
		slots, nv := p.run.buildWave(cores, clocks, v, numVec, n, gs)
		p.run.runWave(q, ImplBranching, slots)
		// Wave barrier: reduce survivor vectors in ascending morsel order, so
		// per-key accumulation order is the global row order — identical
		// float association to a serial run for every worker count.
		for si := range slots {
			s := &slots[si]
			if s.err != nil {
				return GroupResult{}, s.err
			}
			w := s.pos
			clocks[w] += s.cycles
			for _, r := range s.sel {
				gs[w].apply(acc, int(r))
				workerKeys[w].at(gs[w].GroupCol.Int64At(int(r))).Count = 1
			}
			out.Qualifying += int64(len(s.sel))
			out.Vectors++
			if tr := p.workers[s.core].tr; tr != nil {
				end := p.workers[s.core].CPU().Cycles()
				tr.Span("morsel", end-s.cycles, end,
					trace.A("v", s.v), trace.A("rows", s.hi-s.lo), trace.A("grouped", true))
			}
		}
		v = nv
	}
	// Merge barrier: every core must finish scanning before core 0 folds the
	// partial tables, so the merge starts at the scan makespan (the slowest
	// core's clock) and extends it — not core 0's own scan clock.
	var scanMakespan uint64
	for _, cl := range clocks {
		if cl > scanMakespan {
			scanMakespan = cl
		}
	}
	// Core 0 folds every other core's partial slots into its table (one read
	// of the remote slot, one read-modify-write of its own).
	c0 := p.workers[0].CPU()
	mergeStart := c0.Cycles()
	for w := 1; w < nw; w++ {
		for _, k := range workerKeys[w].sortedKeys() {
			c0.Load(gs[w].slotAddr(k))
			c0.Load(gs[0].slotAddr(k))
			c0.Exec(groupMergeCostInstr)
		}
	}
	mergeCycles := c0.Cycles() - mergeStart
	if tr := p.workers[0].tr; tr != nil && mergeCycles > 0 {
		tr.Span("group-merge", mergeStart, c0.Cycles(), trace.A("workers", nw))
	}

	for w, eng := range p.workers {
		out.Counters = out.Counters.Add(eng.CPU().Sample().Sub(startSamples[w]))
	}
	out.Groups = acc.groups()
	out.Cycles = scanMakespan + mergeCycles
	out.Millis = p.workers[0].CPU().MillisOf(out.Cycles)
	return out, nil
}

// Run executes the whole table morsel-driven under the query's fixed
// operator order. Result.Cycles is the makespan (the slowest core's cycle
// count) and Result.Counters the merged per-core PMU deltas.
func (p *Parallel) Run(q *Query) (Result, error) {
	br, err := p.RunBlock(q, 0, p.NumVectors(q))
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Qualifying: br.Qualifying,
		Sum:        br.Sum,
		Vectors:    br.Vectors,
		Cycles:     br.MaxCycles,
		Counters:   br.Counters,
	}
	out.Millis = p.workers[0].CPU().MillisOf(out.Cycles)
	return out, nil
}
