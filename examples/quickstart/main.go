// Quickstart: run TPC-H Q6 with and without progressive optimization and
// compare. The engine executes on a simulated Ivy Bridge core whose PMU
// counters drive mid-query re-optimization of the predicate order.
package main

import (
	"fmt"
	"log"

	"progopt"
)

func main() {
	eng, err := progopt.New(progopt.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// 200k lineitems in bulk-load order: shipdate is weakly clustered, so
	// the best predicate order changes over the course of the scan.
	ds, err := eng.GenerateTPCH(200_000, 42, progopt.OrderNatural)
	if err != nil {
		log.Fatal(err)
	}

	q, err := eng.BuildQ6(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q6 predicates:", q.OpNames())

	// Deliberately bad initial order: reverse of the written order.
	bad, err := q.WithOrder([]int{4, 3, 2, 1, 0})
	if err != nil {
		log.Fatal(err)
	}

	baseline, err := eng.Run(bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (fixed bad order):  %8.2f ms, revenue=%.2f, rows=%d\n",
		baseline.Millis, baseline.Sum, baseline.Qualifying)

	adaptive, stats, err := eng.RunProgressive(bad, progopt.Progressive{Interval: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("progressive (reopt every 10): %7.2f ms, revenue=%.2f, rows=%d\n",
		adaptive.Millis, adaptive.Sum, adaptive.Qualifying)
	fmt.Printf("speedup %.2fx with %d optimizations, %d reorders, %d reverts\n",
		baseline.Millis/adaptive.Millis, stats.Optimizations, stats.Reorders, stats.Reverts)
	fmt.Printf("final predicate order: %v\n", stats.FinalOrder)
	fmt.Printf("PMU: %d branches not taken, %d mispredictions, %d L3 accesses\n",
		adaptive.Counters["br_not_taken"], adaptive.Counters["br_mp"], adaptive.Counters["l3_access"])
}
