module progopt

go 1.24
