package exec

import (
	"fmt"

	"progopt/internal/trace"
)

// BranchFreeScan executes a multi-predicate selection without data-dependent
// branches: every predicate is evaluated for every tuple and the outcomes
// are combined with logical AND into a 0/1 mask (Ross, "Selection conditions
// in main memory", TODS 2004 — reference [19] of the paper).
//
// The trade-off against the branching scan of RunVector is the one the
// paper's §2.2.1 describes: branch-free evaluation retires more instructions
// and touches every predicate column unconditionally, but suffers no
// misprediction penalty. Around 50% selectivity, where the predictor
// mispredicts most, branch-free wins; at the extremes the branching scan's
// short-circuiting wins. The micro-adaptive driver (core package) chooses
// between the two implementations from estimated selectivities — the
// paper's related-work contrast with Vectorwise's micro adaptivity, driven
// here by counters instead of runtime trials.
//
// Only the loop branch remains, and it is perfectly predictable; operators
// must be Predicates (joins short-circuit by nature and stay branching).
type BranchFreeScan struct{}

// maskCostInstr is the per-predicate cost of the branch-free combine: the
// comparison materialized as a flag plus the AND.
const maskCostInstr = 2

// RunVectorBranchFree executes rows [lo, hi) evaluating all predicates for
// every tuple, without per-predicate conditional branches, dispatching to
// the batch mask kernel or the scalar row loop per the engine mode.
func (e *Engine) RunVectorBranchFree(q *Query, lo, hi int) (VectorResult, error) {
	if err := e.checkVector(q, lo, hi); err != nil {
		return VectorResult{}, err
	}
	for i, op := range q.Ops {
		if _, ok := op.(*Predicate); !ok {
			return VectorResult{}, fmt.Errorf("exec: branch-free scan requires predicates only; op %d is %T", i, op)
		}
	}
	if e.skipVector(lo, hi) {
		if e.tr != nil {
			e.tr.Instant("skip", e.cpu.Cycles(), trace.A("lo", lo), trace.A("rows", hi-lo))
		}
		return VectorResult{}, nil
	}
	var t0 uint64
	if e.tr != nil {
		t0 = e.cpu.Cycles()
	}
	if !e.scalar {
		vr, err := e.runVectorBranchFreeBatch(q, lo, hi)
		if err == nil && e.tr != nil {
			e.tr.Span("vector", t0, e.cpu.Cycles(), trace.A("lo", lo),
				trace.A("rows", hi-lo), trace.A("qual", vr.Qualifying), trace.A("impl", "branch-free"))
		}
		return vr, err
	}
	c := e.cpu
	ops := q.Ops
	loopSite := len(ops)
	// The back-edge is the only branch of the predicated loop; with a
	// site-independent predictor it batches after the loop (see
	// runVectorScalar).
	deferEdge := c.SiteIndependentPredictor()
	var res VectorResult
	for row := lo; row < hi; row++ {
		pass := true
		for _, op := range ops {
			ok := op.Eval(c, row)
			c.Exec(maskCostInstr)
			pass = pass && ok
		}
		if pass {
			if q.Agg != nil {
				for _, col := range q.Agg.Cols {
					c.Load(col.Addr(row))
				}
				c.Exec(q.Agg.cost())
				res.Sum += q.Agg.F(row)
			}
			if r := e.sortRun; r != nil {
				for _, k := range r.s.Keys {
					c.Load(k.Col.Addr(row))
				}
				r.AddOne(c, row)
			}
			res.Qualifying++
		}
		if !deferEdge {
			c.Exec(loopOverheadInstr)
			// The only branch: the loop back-edge, always taken.
			c.CondBranch(loopSite, true)
		}
	}
	if deferEdge {
		c.Exec(loopOverheadInstr * (hi - lo))
		c.CondBranchN(loopSite, true, hi-lo)
	}
	if e.tr != nil {
		e.tr.Span("vector", t0, c.Cycles(), trace.A("lo", lo),
			trace.A("rows", hi-lo), trace.A("qual", res.Qualifying), trace.A("impl", "branch-free"))
	}
	return res, nil
}

// RunBranchFree executes the whole table with the branch-free scan.
func (e *Engine) RunBranchFree(q *Query) (Result, error) {
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	start := e.cpu.Sample()
	startCycles := e.cpu.Cycles()
	var out Result
	n := q.Table.NumRows()
	for lo := 0; lo < n; lo += e.vectorSize {
		hi := lo + e.vectorSize
		if hi > n {
			hi = n
		}
		vr, err := e.RunVectorBranchFree(q, lo, hi)
		if err != nil {
			return Result{}, err
		}
		out.Qualifying += vr.Qualifying
		out.Sum += vr.Sum
		out.Vectors++
	}
	out.Cycles = e.cpu.Cycles() - startCycles
	out.Millis = e.cpu.MillisOf(out.Cycles)
	out.Counters = e.cpu.Sample().Sub(start)
	return out, nil
}

// ScanImpl identifies a scan implementation for the micro-adaptive choice.
type ScanImpl int

// Scan implementations.
const (
	// ImplBranching is the short-circuiting compiled loop of §2.1.
	ImplBranching ScanImpl = iota
	// ImplBranchFree is the predicated full-evaluation loop.
	ImplBranchFree
)

// String names the implementation.
func (s ScanImpl) String() string {
	switch s {
	case ImplBranching:
		return "branching"
	case ImplBranchFree:
		return "branch-free"
	}
	return fmt.Sprintf("impl(%d)", int(s))
}

// RunVectorImpl dispatches one vector to the chosen implementation.
func (e *Engine) RunVectorImpl(q *Query, lo, hi int, impl ScanImpl) (VectorResult, error) {
	switch impl {
	case ImplBranching:
		return e.RunVector(q, lo, hi)
	case ImplBranchFree:
		return e.RunVectorBranchFree(q, lo, hi)
	default:
		return VectorResult{}, fmt.Errorf("exec: unknown scan implementation %d", int(impl))
	}
}

// BranchFreeEligible reports whether the query can run branch-free (all
// operators are plain predicates).
func BranchFreeEligible(q *Query) bool {
	for _, op := range q.Ops {
		if _, ok := op.(*Predicate); !ok {
			return false
		}
	}
	return true
}
