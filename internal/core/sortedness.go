package core

import (
	"fmt"

	cachemodel "progopt/internal/costmodel/cache"
)

// SortednessClass classifies how local a sampled access pattern is relative
// to the random-access prediction of Eq. (1).
type SortednessClass int

// Sortedness classes.
const (
	// CoClustered means sampled misses are far below the random prediction:
	// the access pattern is (nearly) sequential (§5.5's break-even side where
	// join-first wins).
	CoClustered SortednessClass = iota
	// PartiallyClustered means misses are noticeably but not dramatically
	// below prediction.
	PartiallyClustered
	// RandomAccess means the sample matches the random model.
	RandomAccess
)

// String names the class.
func (s SortednessClass) String() string {
	switch s {
	case CoClustered:
		return "co-clustered"
	case PartiallyClustered:
		return "partially-clustered"
	case RandomAccess:
		return "random"
	}
	return fmt.Sprintf("sortedness(%d)", int(s))
}

// SortednessReport is the outcome of a sortedness probe.
type SortednessReport struct {
	// SampledMisses is the observed miss count.
	SampledMisses float64
	// PredictedRandom is Eq. (1)'s expectation for a random pattern.
	PredictedRandom float64
	// Ratio is sampled/predicted (0 when prediction is 0).
	Ratio float64
	// Class is the derived classification.
	Class SortednessClass
}

// coClusterRatio and partialRatio are the classification thresholds.
const (
	coClusterRatio = 0.25
	partialRatio   = 0.75
)

// DetectSortedness compares sampled cache misses against the random-access
// prediction of Eq. (1) for r probes into a relation of relTuples rows of
// the given width. The paper's §5.5/§5.6 insight is that this comparison —
// impossible with tuple counters alone — reveals sortedness/co-clustering
// and thereby the right operator order.
func DetectSortedness(g cachemodel.Geometry, relTuples, width, probes int, sampledMisses float64) SortednessReport {
	pred := g.RandomMisses(relTuples, width, probes)
	rep := SortednessReport{SampledMisses: sampledMisses, PredictedRandom: pred}
	if pred > 0 {
		rep.Ratio = sampledMisses / pred
	}
	switch {
	case rep.Ratio < coClusterRatio:
		rep.Class = CoClustered
	case rep.Ratio < partialRatio:
		rep.Class = PartiallyClustered
	default:
		rep.Class = RandomAccess
	}
	return rep
}
