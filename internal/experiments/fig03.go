package experiments

import (
	"fmt"
	"math/rand"

	"progopt/internal/costmodel/markov"
	"progopt/internal/hw/branch"
)

// Fig03 reproduces Figure 3: Markov chains with 2..8 states (including the
// +1T/+1NT biased odd counts) against a sampled run of the Ivy Bridge
// predictor model, for taken, not-taken, and total mispredictions as a
// percentage of all branches.
func Fig03(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	n := 200000
	step := 5
	if cfg.Quick {
		n = 20000
		step = 20
	}
	variants := markov.Variants()
	rng := rand.New(rand.NewSource(cfg.Seed))

	cols := []string{"sel_pct"}
	for _, v := range variants {
		cols = append(cols, v.Label)
	}
	cols = append(cols, "Ivy Sample")

	mk := func(sub, what string) *Report {
		return &Report{
			ID:      "fig03" + sub,
			Title:   fmt.Sprintf("Markov model bits: %s misprediction (%% of all branches)", what),
			Columns: cols,
			Notes:   []string{fmt.Sprintf("Ivy sample: %d i.i.d. branches through the simulated Ivy Bridge predictor", n)},
		}
	}
	repT, repNT, repAll := mk("a", "taken"), mk("b", "not taken"), mk("c", "all")

	for s := 0; s <= 100; s += step {
		p := float64(s) / 100
		rowT := []string{fmtF(float64(s))}
		rowNT := []string{fmtF(float64(s))}
		rowAll := []string{fmtF(float64(s))}
		for _, v := range variants {
			r := v.Chain.Predict(p)
			rowT = append(rowT, fmt.Sprintf("%.2f", r.MPTaken*100))
			rowNT = append(rowNT, fmt.Sprintf("%.2f", r.MPNotTaken*100))
			rowAll = append(rowAll, fmt.Sprintf("%.2f", r.MP()*100))
		}
		// Sampled Ivy Bridge predictor on an i.i.d. stream.
		pred, err := branch.ForArch(branch.ArchIvyBridge)
		if err != nil {
			return nil, err
		}
		mpT, mpNT := 0, 0
		for i := 0; i < n; i++ {
			taken := rng.Float64() >= p
			out := pred.Observe(0, taken)
			if out.Mispredicted() {
				if taken {
					mpT++
				} else {
					mpNT++
				}
			}
		}
		rowT = append(rowT, fmt.Sprintf("%.2f", float64(mpT)/float64(n)*100))
		rowNT = append(rowNT, fmt.Sprintf("%.2f", float64(mpNT)/float64(n)*100))
		rowAll = append(rowAll, fmt.Sprintf("%.2f", float64(mpT+mpNT)/float64(n)*100))
		repT.Rows = append(repT.Rows, rowT)
		repNT.Rows = append(repNT.Rows, rowNT)
		repAll.Rows = append(repAll.Rows, rowAll)
	}
	return []*Report{repT, repNT, repAll}, nil
}
