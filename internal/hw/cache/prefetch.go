package cache

// StreamPrefetcher models the L2 streamer of modern Intel parts: it watches
// the demand access stream at L2 (line granularity), detects ascending
// sequential streams, and pulls upcoming lines into L2 and L3 ahead of use.
// Each stream remembers how far it has already fetched so steady-state
// sequential scans issue exactly one new prefetch per new line.
//
// The prefetcher is what turns the paper's "random miss" into *two* L3 line
// transfers (§3.1's double-counting modification of the Pirk model): when a
// conditional-read column skips ahead of the prefetched window, the line the
// streamer fetched goes unused while the line actually needed costs a fresh
// demand access.
type StreamPrefetcher struct {
	// Degree is how many lines ahead the prefetcher runs once a stream is
	// confirmed.
	Degree int
	// Window is the maximum forward line distance still treated as the same
	// stream (tolerates skipped lines, as real streamers do).
	Window int
	// MinConfidence is how many consecutive stream hits are needed before
	// prefetching starts.
	MinConfidence int

	streams [streamTableSize]stream
	clock   uint64
	buf     []uint64
	// Issued counts prefetch requests issued; each consumes an L3 access
	// slot, which is why the paper's L3-access counter includes them.
	Issued uint64
}

const streamTableSize = 16

type stream struct {
	lastLine   uint64
	issuedUpTo uint64
	confidence int
	lastUse    uint64
	valid      bool
}

// NewStreamPrefetcher returns a prefetcher with typical streamer parameters:
// degree 2, window 4 lines, confidence threshold 2.
func NewStreamPrefetcher() *StreamPrefetcher {
	return &StreamPrefetcher{Degree: 2, Window: 4, MinConfidence: 2}
}

// Observe feeds one demand line id into the prefetcher and returns the line
// ids to prefetch, if any. The returned slice aliases an internal buffer and
// is valid until the next call.
//
// The table walk fuses the stream-match scan and the victim scan into one
// pass: the first stream (in index order) whose window covers the line wins,
// exactly as before, and when none matches the victim — the first invalid
// entry, else the least recently used — has already been found without a
// second walk. Random access patterns match nothing and pay this walk on
// every L1 miss, which makes it the hottest loop of join-probe simulation.
func (p *StreamPrefetcher) Observe(line uint64) []uint64 {
	p.clock++
	window := uint64(p.Window)
	bestIdx := -1
	victim := 0
	// oldest doubles as the victim-search state: an invalid entry locks the
	// victim by dropping oldest to 0 (no valid entry's lastUse is 0 — the
	// clock pre-increments), reproducing the old two-pass rule: first invalid
	// entry, else minimum lastUse with ties to the lowest index.
	oldest := ^uint64(0)
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			if oldest != 0 {
				victim, oldest = i, 0
			}
			continue
		}
		// line continues the stream when 1 <= line-lastLine <= window;
		// unsigned wrap makes the two-sided check one compare.
		if line-s.lastLine-1 < window {
			bestIdx = i
			break
		}
		if s.lastUse < oldest {
			victim, oldest = i, s.lastUse
		}
	}
	if bestIdx < 0 {
		p.streams[victim] = stream{lastLine: line, issuedUpTo: line, confidence: 0, lastUse: p.clock, valid: true}
		return nil
	}
	s := &p.streams[bestIdx]
	s.confidence++
	s.lastLine = line
	s.lastUse = p.clock
	if s.confidence < p.MinConfidence {
		return nil
	}
	// Fetch up to Degree lines ahead of the demand line, skipping anything
	// this stream already issued.
	from := line + 1
	if s.issuedUpTo >= from {
		from = s.issuedUpTo + 1
	}
	to := line + uint64(p.Degree)
	if from > to {
		return nil
	}
	out := p.buf[:0]
	for l := from; l <= to; l++ {
		out = append(out, l)
	}
	s.issuedUpTo = to
	p.buf = out
	p.Issued += uint64(len(out))
	return out
}

// Reset clears all detected streams and the issue counter.
func (p *StreamPrefetcher) Reset() {
	for i := range p.streams {
		p.streams[i] = stream{}
	}
	p.Issued = 0
}
