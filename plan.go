package progopt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Plan is a declarative description of a query over one driving table: a
// chain of reorderable filtering steps (predicates and foreign-key joins),
// optionally followed by a sum aggregate or a grouped aggregation. Plans are
// built with the chainable Scan/Filter/Join/Sum/GroupBy methods, carry no
// engine or data-set state, and become executable only through
// Engine.Compile, which validates every step against a concrete data set.
//
// Builder methods never fail in place; the first construction error is
// remembered and reported by Compile, so chains stay uncluttered:
//
//	q, err := eng.Compile(ds, progopt.Scan("lineitem").
//		Filter("l_shipdate", progopt.CmpLE, cutoff).
//		Filter("l_discount", progopt.CmpGE, 0.05).
//		Sum("l_extendedprice * l_discount"))
type Plan struct {
	table string
	steps []planStep
	sum   string // aggregate expression, "" = none
	group *groupSpec
	order []orderSpec
	// limit is the Top-K bound; hasLimit distinguishes Limit(0) from "no
	// limit declared".
	limit    int
	hasLimit bool
	err      error // first builder error, surfaced by Compile
}

// stepKind discriminates plan steps.
type stepKind int

const (
	stepFilter stepKind = iota
	stepJoin
	stepEdge
)

// boundKind records which bound representation a filter step carries.
type boundKind int

const (
	// boundInt / boundFloat: the public Filter API, checked against the
	// column kind at compile time.
	boundInt boundKind = iota
	boundFloat
	// boundLegacy carries both representations and resolves by column kind
	// (the deprecated Predicate struct's contract).
	boundLegacy
)

// planStep is one chainable step of a Plan.
type planStep struct {
	kind stepKind

	// Filter fields.
	col       string
	op        Cmp
	i         int64
	f         float64
	bound     boundKind
	extraCost int
	label     string

	// Join fields.
	build     string
	filterSel float64

	// Edge fields (JoinOn).
	from, key, to string
}

// groupSpec is a Plan's grouped aggregation.
type groupSpec struct {
	key, value string
}

// orderSpec is one ordering key of a Plan.
type orderSpec struct {
	col  string
	desc bool
}

// SortDir selects an ordering direction for Plan.OrderBy.
type SortDir int

// Ordering directions.
const (
	// Asc orders ascending (the default).
	Asc SortDir = iota
	// Desc orders descending.
	Desc
)

// Scan starts a plan over the named driving table. The engine's data sets
// drive scans from "lineitem"; the orders and part tables are build sides
// reachable through Join.
func Scan(table string) *Plan {
	return &Plan{table: table}
}

// Filter appends a selection predicate comparing the column against bound.
// bound must be an int, int32, or int64 for integer and date columns, or a
// float32/float64 for float columns; mismatches are reported by Compile.
func (p *Plan) Filter(col string, op Cmp, bound any) *Plan {
	return p.FilterCost(col, op, bound, 0)
}

// FilterCost is Filter with an extra per-evaluation instruction cost,
// modeling an expensive predicate (a string match or UDF).
func (p *Plan) FilterCost(col string, op Cmp, bound any, extraCostInstr int) *Plan {
	step := planStep{kind: stepFilter, col: col, op: op, extraCost: extraCostInstr}
	switch b := bound.(type) {
	case int:
		step.i, step.bound = int64(b), boundInt
	case int32:
		step.i, step.bound = int64(b), boundInt
	case int64:
		step.i, step.bound = b, boundInt
	case float32:
		step.f, step.bound = float64(b), boundFloat
	case float64:
		step.f, step.bound = b, boundFloat
	default:
		p.fail(fmt.Errorf("progopt: filter on %q: unsupported bound type %T", col, bound))
		return p
	}
	p.steps = append(p.steps, step)
	return p
}

// legacyFilter appends a filter carrying both bound representations, to be
// resolved by column kind at compile time — the deprecated Predicate
// struct's behavior, used by the BuildScan/BuildPipeline wrappers.
func (p *Plan) legacyFilter(col string, op Cmp, i int64, f float64, extraCostInstr int) *Plan {
	p.steps = append(p.steps, planStep{
		kind: stepFilter, col: col, op: op,
		i: i, f: f, bound: boundLegacy, extraCost: extraCostInstr,
	})
	return p
}

// Join appends a foreign-key join from the driving table into the named
// build table ("orders" or "part") with a build-side filter of the given
// selectivity in (0, 1].
//
// Join predates the join-graph API and survives for compatibility: it only
// reaches orders and part, hard-codes the probe key and a quantile-derived
// build filter, and keeps its declaration position in the operator order.
// New plans should declare edges with JoinOn and push build-side predicates
// with Filter; see the package example.
func (p *Plan) Join(build string, filterSelectivity float64) *Plan {
	p.steps = append(p.steps, planStep{kind: stepJoin, build: build, filterSel: filterSelectivity})
	return p
}

// JoinOn declares an equi-join edge of the plan's join graph: rows of table
// from reach table to through from's integer foreign-key column keyCol,
// whose values are row ids of to. Edges may be declared in any order and may
// chain off each other's tables (from must be the driving table or some
// other edge's to; Compile resolves connectivity), so star and snowflake
// shapes compose:
//
//	progopt.Scan("lineitem").
//		JoinOn("lineitem", "l_orderkey", "orders").
//		JoinOn("orders", "o_custkey", "customer").
//		Filter("o_totalprice", progopt.CmpGE, 1000.0). // pushed to orders
//		Filter("c_acctbal", progopt.CmpGE, 0.0)        // pushed to customer
//
// Predicates on joined tables are pushed to their owning table's edge
// automatically; a joined table with no predicate still pays its probe. The
// compiled operators are ordered by the statistics-free greedy orderer
// (smallest build relation first under connectivity) and remain fully
// permutable, so adaptive modes reorder across the whole join-graph search
// space.
func (p *Plan) JoinOn(from, keyCol, to string) *Plan {
	p.steps = append(p.steps, planStep{kind: stepEdge, from: from, key: keyCol, to: to})
	return p
}

// Label names the most recently appended step, overriding the generated
// operator name in plans and reports.
func (p *Plan) Label(name string) *Plan {
	if len(p.steps) == 0 {
		p.fail(fmt.Errorf("progopt: Label(%q) before any step", name))
		return p
	}
	p.steps[len(p.steps)-1].label = name
	return p
}

// Sum aggregates the given expression over qualifying tuples: either a
// single numeric column ("l_extendedprice") or a product of two
// ("l_extendedprice * l_discount").
func (p *Plan) Sum(expr string) *Plan {
	p.sum = expr
	return p
}

// GroupBy aggregates qualifying tuples as SELECT key, SUM(value), COUNT(*)
// GROUP BY key. The key column must be integer-kind; the hash table is sized
// from the key column's actual domain at compile time.
func (p *Plan) GroupBy(key, value string) *Plan {
	p.group = &groupSpec{key: key, value: value}
	return p
}

// OrderBy emits the qualifying tuples ordered by the named driving-table
// column, ascending unless Desc is given. Repeated OrderBy calls append
// secondary keys (earlier calls take precedence); remaining ties break by
// table row order, so the output is fully deterministic. The ordered rows
// appear in ExecResult.Rows, each carrying its sort-key values and — when
// the plan also has Sum — the per-row value of the aggregate expression.
func (p *Plan) OrderBy(col string, dir ...SortDir) *Plan {
	spec := orderSpec{col: col}
	switch len(dir) {
	case 0:
	case 1:
		switch dir[0] {
		case Asc:
		case Desc:
			spec.desc = true
		default:
			p.fail(fmt.Errorf("progopt: OrderBy(%q): unknown direction %d", col, int(dir[0])))
			return p
		}
	default:
		p.fail(fmt.Errorf("progopt: OrderBy(%q): at most one direction, got %d", col, len(dir)))
		return p
	}
	p.order = append(p.order, spec)
	return p
}

// Limit truncates the ordered output to its first n rows (Top-K). It
// requires OrderBy and n >= 0, both validated by Compile; a limited plan
// executes the cache-conscious bounded-heap path instead of the full
// run-merge sort.
func (p *Plan) Limit(n int) *Plan {
	p.limit, p.hasLimit = n, true
	return p
}

// fail records the first builder error for Compile to report.
func (p *Plan) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// fingerprintTable returns the canonical driving-table name ("" and
// "lineitem" are the same scan).
func (p *Plan) fingerprintTable() string {
	if p.table == "" {
		return "lineitem"
	}
	return p.table
}

// fingerprintTerms encodes each plan step, the aggregate, and the grouping
// as a canonical term. Terms are hashed order-independently (the optimizer
// permutes operators anyway), bounds are encoded exactly (hex floats, full
// integers), and labels participate so differently-annotated plans do not
// collide in the plan cache. Together with the driving table and the
// data-set generation, the sorted terms form the plan fingerprint that keys
// a workload server's plan and feedback caches.
func (p *Plan) fingerprintTerms() ([]string, error) {
	if p.err != nil {
		return nil, p.err
	}
	terms := make([]string, 0, len(p.steps)+2)
	for _, step := range p.steps {
		var b strings.Builder
		switch step.kind {
		case stepFilter:
			b.WriteString("f|")
			b.WriteString(step.col)
			b.WriteString("|")
			b.WriteString(string(step.op))
			switch step.bound {
			case boundInt:
				b.WriteString("|i:")
				b.WriteString(strconv.FormatInt(step.i, 10))
			case boundFloat:
				b.WriteString("|x:")
				b.WriteString(strconv.FormatFloat(step.f, 'x', -1, 64))
			case boundLegacy:
				b.WriteString("|b:")
				b.WriteString(strconv.FormatInt(step.i, 10))
				b.WriteString(":")
				b.WriteString(strconv.FormatFloat(step.f, 'x', -1, 64))
			default:
				return nil, fmt.Errorf("progopt: unknown bound kind %d", step.bound)
			}
			if step.extraCost != 0 {
				b.WriteString("|c:")
				b.WriteString(strconv.Itoa(step.extraCost))
			}
		case stepJoin:
			b.WriteString("j|")
			b.WriteString(step.build)
			b.WriteString("|x:")
			b.WriteString(strconv.FormatFloat(step.filterSel, 'x', -1, 64))
		case stepEdge:
			// Graph edges canonicalize by content alone: the order-independent
			// hash then makes isomorphic graphs (same edges, any declaration
			// order) collide exactly, while any shape difference — another key
			// column, a re-rooted edge, an extra table — changes a term.
			b.WriteString("e|")
			b.WriteString(step.from)
			b.WriteString("|")
			b.WriteString(step.key)
			b.WriteString("|")
			b.WriteString(step.to)
		default:
			return nil, fmt.Errorf("progopt: unknown plan step kind %d", step.kind)
		}
		if step.label != "" {
			b.WriteString("|l:")
			b.WriteString(step.label)
		}
		terms = append(terms, b.String())
	}
	if p.sum != "" {
		// Canonicalize the aggregate expression: trimmed factors in sorted
		// order (float multiplication commutes bitwise).
		factors := strings.Split(p.sum, "*")
		for i := range factors {
			factors[i] = strings.TrimSpace(factors[i])
		}
		sort.Strings(factors)
		terms = append(terms, "s|"+strings.Join(factors, "*"))
	}
	if p.group != nil {
		terms = append(terms, "g|"+p.group.key+"|"+p.group.value)
	}
	if len(p.order) > 0 {
		// All ordering keys form one term: unlike filter steps, sort-key
		// precedence is semantic, and a single term preserves it through the
		// order-independent hash.
		var b strings.Builder
		b.WriteString("o")
		for _, o := range p.order {
			b.WriteString("|")
			b.WriteString(o.col)
			if o.desc {
				b.WriteString(":d")
			} else {
				b.WriteString(":a")
			}
		}
		terms = append(terms, b.String())
	}
	if p.hasLimit {
		terms = append(terms, "k|"+strconv.Itoa(p.limit))
	}
	return terms, nil
}
