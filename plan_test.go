package progopt

import (
	"strings"
	"testing"
)

// TestCompileValidation exercises the compiler's rejection paths: plans that
// would have corrupted reads or produced meaningless results under the old
// builders now fail with targeted errors.
func TestCompileValidation(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(5000, 11, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		plan *Plan
		want string // substring of the error
	}{
		{"nil steps", Scan("lineitem"), "at least one operator"},
		{"unknown driving table", Scan("galaxy").Filter("x", CmpLT, 1), "unknown table"},
		{"orders cannot drive", Scan("orders").Filter("o_orderdate", CmpLT, 1), "cannot drive"},
		{"part cannot drive", Scan("part").Filter("p_size", CmpLT, 1), "cannot drive"},
		{"cross-table predicate", Scan("lineitem").Filter("o_orderdate", CmpLE, 1), "belongs to \"orders\""},
		{"cross-table part predicate", Scan("lineitem").Filter("p_size", CmpLE, 1), "belongs to \"part\""},
		{"unknown column", Scan("lineitem").Filter("l_nope", CmpLE, 1), "unknown column"},
		{"unknown comparison", Scan("lineitem").Filter("l_quantity", "!=", 1), "unknown comparison"},
		{"float bound on int column", Scan("lineitem").Filter("l_quantity", CmpLE, 2.5), "integer bound"},
		{"int bound on float column", Scan("lineitem").Filter("l_discount", CmpLE, 1), "float bound"},
		{"unsupported bound type", Scan("lineitem").Filter("l_quantity", CmpLE, "ten"), "unsupported bound type"},
		{"label before step", Scan("lineitem").Label("x"), "before any step"},
		{"join selectivity zero", Scan("lineitem").Join("orders", 0), "outside (0,1]"},
		{"join selectivity above one", Scan("lineitem").Join("orders", 1.5), "outside (0,1]"},
		{"unknown build table", Scan("lineitem").Join("supplier", 0.5), "unknown build table"},
		{"unknown aggregate column", Scan("lineitem").Filter("l_quantity", CmpLE, 10).Sum("l_nope"), "unknown aggregate column"},
		{"three-factor aggregate", Scan("lineitem").Filter("l_quantity", CmpLE, 10).Sum("l_tax * l_tax * l_tax"), "factors"},
		{"empty aggregate factor", Scan("lineitem").Filter("l_quantity", CmpLE, 10).Sum("l_tax * "), "malformed"},
		{"sum and group together", Scan("lineitem").Filter("l_quantity", CmpLE, 10).
			Sum("l_extendedprice").GroupBy("l_quantity", "l_extendedprice"), "both Sum and GroupBy"},
		{"group on float key", Scan("lineitem").Filter("l_quantity", CmpLE, 10).
			GroupBy("l_discount", "l_extendedprice"), "integer-kind"},
		{"group on unknown key", Scan("lineitem").Filter("l_quantity", CmpLE, 10).
			GroupBy("l_nope", "l_extendedprice"), "unknown column"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := e.Compile(d, tc.plan)
			if err == nil {
				t.Fatalf("compile accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := e.Compile(nil, Scan("lineitem")); err == nil {
		t.Error("nil data set accepted")
	}
	if _, err := e.Compile(d, nil); err == nil {
		t.Error("nil plan accepted")
	}
}

// TestPlanBuilderEndToEnd compiles and executes a plan using every builder
// feature: typed bounds, expensive filters, joins, labels, and a sum.
func TestPlanBuilderEndToEnd(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(20000, 12, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(d, Scan("lineitem").
		Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.6))).Label("ship<=p60").
		FilterCost("l_quantity", CmpLT, 30, 20).
		Filter("l_discount", CmpGE, 0.03).
		Join("orders", 0.5).
		Sum("l_extendedprice * l_discount"))
	if err != nil {
		t.Fatal(err)
	}
	if q.NumOps() != 4 {
		t.Fatalf("%d ops", q.NumOps())
	}
	if names := q.OpNames(); names[0] != "ship<=p60" || names[3] != "join-orders" {
		t.Errorf("op names %v", names)
	}
	res, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Qualifying == 0 || res.Sum <= 0 {
		t.Fatalf("degenerate result %+v", res.Result)
	}
	frac := float64(res.Qualifying) / float64(d.Lineitems())
	if frac <= 0 || frac >= 0.5 {
		t.Errorf("conjunctive selectivity %v implausible", frac)
	}
	prog, err := e.Exec(q, ExecOptions{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Qualifying != res.Qualifying || prog.Sum != res.Sum {
		t.Errorf("progressive changed results: %d/%v vs %d/%v",
			prog.Qualifying, prog.Sum, res.Qualifying, res.Sum)
	}
	if prog.Stats.Optimizations == 0 {
		t.Error("no optimizations ran")
	}
}

// TestExecModeErrors covers the entry point's own validation.
func TestExecModeErrors(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(5000, 13, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(d, Scan("lineitem").Filter("l_quantity", CmpLE, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(nil, ExecOptions{}); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := e.Exec(q, ExecOptions{Mode: Mode(42)}); err == nil {
		t.Error("unknown mode accepted")
	}
	gq, err := e.Compile(d, Scan("lineitem").
		Filter("l_quantity", CmpLE, 10).GroupBy("l_quantity", "l_extendedprice"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(gq, ExecOptions{Mode: ModeProgressive}); err == nil {
		t.Error("progressive grouped plan accepted")
	}
}

// TestGroupByDomainSizing verifies the satellite fix: the hash table is
// sized from the key column's actual domain, not a hard-coded 1024.
func TestGroupByDomainSizing(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(20000, 14, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	// l_orderkey has a wide domain (~n/4 distinct orders), far beyond the old
	// hard-coded 1024; l_quantity spans 1..50.
	wide, err := e.Compile(d, Scan("lineitem").
		Filter("l_discount", CmpGE, 0.05).GroupBy("l_orderkey", "l_extendedprice"))
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := e.Compile(d, Scan("lineitem").
		Filter("l_discount", CmpGE, 0.05).GroupBy("l_quantity", "l_extendedprice"))
	if err != nil {
		t.Fatal(err)
	}
	we, err := e.Explain(wide)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := e.Explain(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if we.GroupDistinct <= 1024 {
		t.Errorf("wide-domain key sized to %d slots; the old hard-coded sizing was 1024", we.GroupDistinct)
	}
	if ne.GroupDistinct > 64 {
		t.Errorf("narrow-domain key (1..50) sized to %d slots", ne.GroupDistinct)
	}
	// The wide grouping must actually produce its many groups intact.
	res, err := e.Exec(wide, ExecOptions{Mode: ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) <= 1024 {
		t.Errorf("only %d groups out of a ~%d-key domain", len(res.Groups), we.GroupDistinct)
	}
	var total int64
	for _, g := range res.Groups {
		total += g.Count
	}
	if total != res.Qualifying {
		t.Errorf("group counts sum to %d, run qualified %d", total, res.Qualifying)
	}
}

// TestParallelGroupByDeterminism verifies the tentpole's new capability:
// grouped aggregation through Exec is morsel-parallel under Workers > 1 with
// bit-identical groups across worker counts and a makespan below the serial
// cycle count.
func TestParallelGroupByDeterminism(t *testing.T) {
	type run struct {
		res ExecResult
	}
	runWith := func(workers int) run {
		e, err := New(Config{VectorSize: 1024, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.GenerateTPCH(30000, 15, OrderNatural)
		if err != nil {
			t.Fatal(err)
		}
		q, err := e.Compile(d, Scan("lineitem").
			Filter("l_discount", CmpGE, 0.03).
			Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.7))).
			GroupBy("l_quantity", "l_extendedprice"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		return run{res: res}
	}
	serial := runWith(1)
	if len(serial.res.Groups) == 0 {
		t.Fatal("no groups")
	}
	for _, workers := range []int{2, 4} {
		par := runWith(workers)
		if par.res.Qualifying != serial.res.Qualifying {
			t.Errorf("%d workers: qualifying %d vs serial %d", workers, par.res.Qualifying, serial.res.Qualifying)
		}
		if len(par.res.Groups) != len(serial.res.Groups) {
			t.Fatalf("%d workers: %d groups vs serial %d", workers, len(par.res.Groups), len(serial.res.Groups))
		}
		for i, g := range par.res.Groups {
			s := serial.res.Groups[i]
			if g.Key != s.Key || g.Count != s.Count || g.Sum != s.Sum {
				t.Fatalf("%d workers: group %d = %+v, serial %+v (sums must be bit-identical)", workers, i, g, s)
			}
		}
	}
	par4 := runWith(4)
	if par4.res.Cycles >= serial.res.Cycles {
		t.Errorf("4-core grouped makespan %d not below serial %d", par4.res.Cycles, serial.res.Cycles)
	}
	// Determinism: an identical configuration reproduces cycles and counters.
	again := runWith(4)
	if again.res.Cycles != par4.res.Cycles {
		t.Errorf("parallel grouped run not deterministic: %d vs %d cycles", again.res.Cycles, par4.res.Cycles)
	}
}

// TestParallelMicroAdaptive verifies micro-adaptive execution through Exec
// under Workers > 1: identical results to the serial driver, branch-free
// vectors actually chosen from merged counters, and deterministic makespans.
func TestParallelMicroAdaptive(t *testing.T) {
	runWith := func(workers int) ExecResult {
		e, err := New(Config{VectorSize: 1024, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.GenerateTPCH(60000, 9, OrderRandom)
		if err != nil {
			t.Fatal(err)
		}
		// Mid-selectivity predicates: branch-free should win most vectors.
		q, err := e.Compile(d, Scan("lineitem").
			Filter("l_quantity", CmpLE, 25).
			Filter("l_discount", CmpLE, 0.05))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Exec(q, ExecOptions{Mode: ModeMicroAdaptive, Progressive: Progressive{Interval: 2}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := runWith(1)
	par := runWith(4)
	if par.Qualifying != serial.Qualifying || par.Sum != serial.Sum {
		t.Errorf("parallel micro-adaptive result %d/%v, serial %d/%v",
			par.Qualifying, par.Sum, serial.Qualifying, serial.Sum)
	}
	if par.Impl.BranchFreeVectors == 0 {
		t.Error("merged counters never selected the branch-free scan")
	}
	if par.Cycles >= serial.Cycles {
		t.Errorf("4-core micro-adaptive makespan %d not below serial %d", par.Cycles, serial.Cycles)
	}
	again := runWith(4)
	if again.Cycles != par.Cycles || again.Impl != par.Impl {
		t.Errorf("parallel micro-adaptive not deterministic: %d/%+v vs %d/%+v",
			again.Cycles, again.Impl, par.Cycles, par.Impl)
	}
}

// TestExplainPlanFeatures checks that Explain surfaces the aggregate and
// grouping of a compiled plan.
func TestExplainPlanFeatures(t *testing.T) {
	e, err := New(Config{VectorSize: 1024, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.GenerateTPCH(5000, 16, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(d, Scan("lineitem").
		Filter("l_quantity", CmpLE, 10).
		GroupBy("l_quantity", "l_extendedprice"))
	if err != nil {
		t.Fatal(err)
	}
	pe, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Group != "l_quantity, l_extendedprice" {
		t.Errorf("Group = %q", pe.Group)
	}
	if pe.GroupTables != 2 {
		t.Errorf("GroupTables = %d, want one per worker", pe.GroupTables)
	}
	if !strings.Contains(pe.String(), "group by") {
		t.Errorf("rendering lacks grouping: %q", pe.String())
	}
}
