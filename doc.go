// Package progopt is a from-scratch reproduction of "Non-Invasive
// Progressive Optimization for In-Memory Databases" (Zeuch, Pirk, Freytag,
// PVLDB 9(14), 2016): an in-memory columnar query engine that re-optimizes
// multi-selection queries and join orders *during* execution, driven purely
// by CPU performance counters.
//
// Because real performance-monitoring units are neither portable nor
// deterministic, the engine runs on simulated cores (branch predictors, a
// three-level cache hierarchy with a stream prefetcher, PMU counters, and
// cycle accounting) that mirror every column access and conditional branch
// of query execution. Everything above the counters — the Markov-chain
// branch cost model, the Pirk/Manegold cache cost models, the Nelder-Mead
// selectivity estimator with search-space restriction, and the progressive
// reorder-validate-revert loop — is the paper's machinery, unchanged.
//
// # Quick start
//
// Queries are declared as composable plans, compiled against a data set,
// and executed through one entry point:
//
//	eng, err := progopt.New(progopt.Config{})
//	if err != nil { ... }
//	ds, err := eng.GenerateTPCH(1_000_000, 42, progopt.OrderNatural)
//	q, err := eng.Compile(ds, progopt.Scan("lineitem").
//		Filter("l_shipdate", progopt.CmpLE, int64(ds.ShipdateCutoff(0.5))).
//		Filter("l_discount", progopt.CmpGE, 0.05).
//		Filter("l_quantity", progopt.CmpLT, 24).
//		Sum("l_extendedprice * l_discount"))
//	baseline, err := eng.Exec(q, progopt.ExecOptions{Mode: progopt.ModeFixed})
//	adaptive, err := eng.Exec(q, progopt.ExecOptions{
//		Mode:        progopt.ModeProgressive,
//		Progressive: progopt.Progressive{Interval: 10},
//	})
//	fmt.Printf("%.1fx faster, %d reorders\n",
//		baseline.Millis/adaptive.Millis, adaptive.Stats.Reorders)
//
// Plans compose filters (Filter/FilterCost), join-graph edges (JoinOn) or
// legacy single-FK joins (Join), a sum aggregate (Sum), a grouped
// aggregation (GroupBy), or ordered output (OrderBy with an optional Top-K
// Limit); Compile validates every column, bound, and selectivity against
// the data set. Exec drives every execution shape: ModeFixed,
// ModeProgressive, and
// ModeMicroAdaptive all honor Config.Workers (morsel-driven multi-core
// scans with makespan cycle counts and merged PMU counters), grouped plans
// aggregate with per-core partial hash tables merged at the barrier, and
// ordered plans collect into per-core bounded heaps (Limit) or sorted runs
// (full sort) merged by the coordinator at the barrier, emitting
// ExecResult.Rows — each row carrying its sort-key values and the per-row
// value of the plan's Sum expression. Results, grouped output, and ordered
// rows are bit-identical across modes, worker counts, and Config.ScalarExec
// (the tuple-at-a-time ablation).
//
// The former per-shape methods (BuildQ6, BuildScan, BuildPipeline, Run,
// RunProgressive, RunMicroAdaptive, RunGroupBy) remain as deprecated thin
// wrappers over Compile/Exec; see DESIGN.md for the migration table.
//
// # Join graphs
//
// JoinOn(from, key, to) declares an equi-join edge between any two plan
// tables, in any order — Compile resolves the edge set into a tree rooted
// at the driving table, routes each filter to whichever table owns its
// column (driving-table predicates stay put, joined-table predicates push
// down onto their edge), and compiles every edge into an independently
// permutable driving-row probe (multi-hop for edges that do not start at
// the driving table). The default operator order is a statistics-free
// greedy one — smallest build relation first under connectivity — and the
// adaptive modes reorder joins and filters across the whole search space
// from observed PMU counters, bit-identical at every worker count:
//
//	q, err := eng.Compile(ds, progopt.Scan("lineitem").
//		JoinOn("lineitem", "l_orderkey", "orders").
//		JoinOn("lineitem", "l_partkey", "part").
//		JoinOn("orders", "o_custkey", "customer"). // probes lineitem→orders→customer
//		Filter("l_quantity", progopt.CmpLT, 30).
//		Filter("o_orderdate", progopt.CmpLE, int64(ds.ShipdateCutoff(0.05))).
//		Filter("c_acctbal", progopt.CmpGE, 4500.0).
//		Sum("l_extendedprice * l_discount"))
//	res, err := eng.Exec(q, progopt.ExecOptions{Mode: progopt.ModeProgressive,
//		Progressive: progopt.Progressive{Interval: 10}})
//
// Migration note: the single-FK Join(table, selectivity) builder predates
// join graphs and survives unchanged for existing callers, but it cannot
// be mixed with JoinOn in one plan (Compile rejects the mix and names the
// fix). New code should declare edges with JoinOn — the build-side filter
// that Join approximated with a nominal selectivity becomes a real pushed-
// down Filter on the joined table's columns. See DESIGN.md "Join-graph
// architecture" for the greedy baseline, the rank-based PMU proposal, and
// why bit-identity survives join reordering.
//
// # Serving a workload
//
// Above the single-query engine sits a workload server that runs many
// concurrent queries against one shared pool of simulated cores
// (Server -> plan/feedback cache -> Engine -> exec.Parallel):
//
//	srv, err := progopt.NewServer(eng, progopt.ServerConfig{MaxActive: 4})
//	t1, err := srv.SubmitAt(ds, plan, opts, 0)      // arrival on the simulated clock
//	t2, err := srv.SubmitAt(ds, plan, opts, 50_000) // same plan, recurring
//	res1, err := t1.Wait()
//	res2, err := t2.Wait()
//	fmt.Println(res2.Served.PlanCacheHit, res2.Served.WarmStart,
//		res2.Served.LatencyMillis, srv.Stats().MakespanMillis)
//
// An admission controller and fair scheduler partition Config.Workers cores
// across active queries at morsel granularity; a plan cache keyed by a
// canonical fingerprint (table + operators + bounds + data-set generation)
// skips re-compilation of recurring plans; and a PMU-feedback cache
// warm-starts adaptive runs at the operator order a previous run of the
// same fingerprint converged to, so recurring queries stop paying the
// paper's observation cost. Scheduling runs entirely on the simulated
// clock: a fixed submission trace yields bit-identical per-query results,
// latencies, and total makespan on every host run, at any GOMAXPROCS. A
// query that has the pool to itself is bit-identical to Engine.Exec
// (equivalence_test.go). Each scheduling round's query segments execute
// concurrently on the host (their simulated core subsets are disjoint),
// with all order-sensitive effects published at a deterministic round
// barrier — behavior is unchanged from the serial service, rounds are just
// faster when several queries are in flight. cmd/progopt-serve drives
// seeded workload traces and emits the BENCH_serve.json artifact.
//
// # Stored tables
//
// Config.Storage puts the driving table on simulated persistent storage:
// the data set encodes into the PCOL v2 block format (dictionary and
// frame-of-reference compression, per-block zone maps) and a storage tier
// below DRAM prices block-granularity transfers under an LRU resident-set
// budget:
//
//	eng, err := progopt.New(progopt.Config{Storage: &progopt.StorageConfig{
//		LatencyCycles: 400, BytesPerCycle: 16,
//		ResidentBytes: 1 << 20, SkipScan: true, CompressedScan: true,
//	}})
//
// The tier is a pure observer: a stored run's rows, aggregates, morsel
// schedule, and every PMU counter are bit-identical to the in-RAM engine's,
// and only reported Cycles grows by the tier's stall debt. SkipScan answers
// vectors that zone maps prove empty from metadata alone; CompressedScan
// prices predicate scans over the packed column images, moving fewer
// simulated bytes without changing any answer. ExecResult.Storage reports
// block pruning and tier activity; Explain renders the same provenance.
// cmd/tpchgen writes both file formats (-format v1|v2 -compress), and the
// version-dispatching loader reads either.
//
// # Tracing and metrics
//
// Config.Trace attaches a deterministic event recorder keyed entirely on
// the simulated clock: per-operator and per-vector spans, morsel spans,
// the reoptimizer's decision log (sample/reorder/revert/impl-switch
// instants carrying their PMU evidence), storage-tier fetch/evict
// instants, and the workload server's admission events. Tracing is a pure
// observer — a traced run's results, cycles, and every PMU counter are
// bit-identical to the untraced run — and identical configurations
// produce byte-identical trace files on every host:
//
//	eng, err := progopt.New(progopt.Config{Trace: &progopt.TraceOptions{}})
//	if err != nil { ... }
//	ds, err := eng.GenerateTPCH(100_000, 42, progopt.OrderRandom)
//	q, err := eng.Compile(ds, progopt.Scan("lineitem").
//		Filter("l_shipdate", progopt.CmpLE, int64(ds.ShipdateCutoff(0.5))).
//		Filter("l_discount", progopt.CmpGE, 0.05).
//		Sum("l_extendedprice * l_discount"))
//	res, err := eng.Exec(q, progopt.ExecOptions{
//		Mode:        progopt.ModeProgressive,
//		Progressive: progopt.Progressive{Interval: 10},
//	})
//	err = eng.Trace().WriteChromeFile("trace.json") // load in Perfetto
//	pe, err := eng.Explain(q)                       // includes a trace: span summary
//
// One trace nanosecond equals one simulated cycle, with one named track
// per simulated core plus optimizer and service tracks. Servers
// additionally expose a simulated-time metrics registry in Prometheus
// text format — queries served, plan/feedback cache hit rates,
// p50/p95/p99 simulated latency, storage-tier residency — via
// Server.WriteMetrics. Per-sample PMU series are retained on
// Stats.Samples (a bounded ring), one source of truth shared by the
// trace, the metrics, and the ext-trace convergence figure. The -trace
// flag on cmd/progopt and cmd/progopt-serve records whole figure runs and
// served workloads; cmd/progopt-tracecheck validates the artifacts.
//
// See the examples/ directory for runnable programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology and per-figure results.
package progopt
