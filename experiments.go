package progopt

import (
	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/experiments"
	"progopt/internal/hw/cpu"
)

func cacheGeometry(prof cpu.Profile) cachemodel.Geometry {
	return cachemodel.Geometry{
		LineSize:      prof.Hierarchy.L3.LineSize,
		CapacityLines: prof.Hierarchy.L3.Lines(),
	}
}

// ExperimentIDs lists the reproducible figure experiments in paper order.
func ExperimentIDs() []string {
	all := experiments.All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// ExperimentTable is one rendered result table of an experiment.
type ExperimentTable struct {
	// ID identifies the (sub)figure, e.g. "fig13a".
	ID string
	// Title describes the table.
	Title string
	// Text is the aligned ASCII rendering.
	Text string
	// CSV is the same data as comma-separated values.
	CSV string
}

// RunExperiment regenerates one of the paper's figures. quick shrinks data
// sizes and sweep resolution (seconds instead of minutes).
func RunExperiment(id string, quick bool) ([]ExperimentTable, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	reps, err := e.Run(experiments.Config{Quick: quick})
	if err != nil {
		return nil, err
	}
	out := make([]ExperimentTable, len(reps))
	for i, r := range reps {
		out[i] = ExperimentTable{ID: r.ID, Title: r.Title, Text: r.String(), CSV: r.CSV()}
	}
	return out, nil
}
