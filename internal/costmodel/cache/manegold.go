package cache

import (
	"fmt"
	"math"
)

// This file implements the generic cost model of Manegold, Boncz, Kersten
// ("Generic database cost models for hierarchical memory systems", VLDB
// 2002), which the paper's §3.1 builds on: database operators are described
// as compositions of basic data-access patterns, and each pattern's cache
// misses are predicted per level. The paper combines these patterns to model
// joins and sorts beyond the selection-only Pirk model.

// Pattern is one data-access pattern whose expected cache misses (for a
// given cache geometry) can be predicted.
type Pattern interface {
	// Misses predicts the expected line misses of the pattern.
	Misses(g Geometry) float64
	// FootprintBytes is the amount of data the pattern touches, used to
	// attribute cache capacity when patterns run concurrently.
	FootprintBytes() float64
	// String describes the pattern.
	String() string
}

// STrav is a single sequential traversal: n tuples of the given width read
// (or written) front to back.
type STrav struct {
	N     int
	Width int
}

// Misses implements Pattern: one miss per covering line.
func (s STrav) Misses(g Geometry) float64 { return g.Lines(s.N, s.Width) }

// FootprintBytes implements Pattern.
func (s STrav) FootprintBytes() float64 { return float64(s.N) * float64(s.Width) }

// String implements Pattern.
func (s STrav) String() string { return fmt.Sprintf("s_trav(%d x %dB)", s.N, s.Width) }

// RTrav is a random traversal: R accesses spread uniformly over a region of
// n tuples, with no correlation between consecutive accesses.
type RTrav struct {
	N      int
	Width  int
	Probes int
}

// Misses implements Pattern via the paper's Eq. (1) (Yao below capacity,
// cached-fraction above).
func (r RTrav) Misses(g Geometry) float64 { return g.RandomMisses(r.N, r.Width, r.Probes) }

// FootprintBytes implements Pattern.
func (r RTrav) FootprintBytes() float64 { return float64(r.N) * float64(r.Width) }

// String implements Pattern.
func (r RTrav) String() string {
	return fmt.Sprintf("r_trav(%d probes over %d x %dB)", r.Probes, r.N, r.Width)
}

// RRAcc is repetitive random access to a small region (e.g. a hash table's
// hot buckets): after the region is resident, accesses hit.
type RRAcc struct {
	RegionBytes int
	Probes      int
}

// Misses implements Pattern: cold misses to load the region if it fits,
// otherwise every probe misses with the uncached fraction.
func (r RRAcc) Misses(g Geometry) float64 {
	lines := math.Ceil(float64(r.RegionBytes) / float64(g.LineSize))
	if int(lines) <= g.CapacityLines {
		if float64(r.Probes) < lines {
			return float64(r.Probes)
		}
		return lines
	}
	frac := 1 - float64(g.CapacityLines)/lines
	return lines + float64(r.Probes)*frac
}

// FootprintBytes implements Pattern.
func (r RRAcc) FootprintBytes() float64 { return float64(r.RegionBytes) }

// String implements Pattern.
func (r RRAcc) String() string {
	return fmt.Sprintf("rr_acc(%d probes over %dB)", r.Probes, r.RegionBytes)
}

// Seq composes patterns executed one after the other (Manegold's ⊕): the
// cache is reused between phases only as far as footprints fit, which the
// basic model ignores — misses simply add.
type Seq []Pattern

// Misses implements Pattern.
func (q Seq) Misses(g Geometry) float64 {
	sum := 0.0
	for _, p := range q {
		sum += p.Misses(g)
	}
	return sum
}

// FootprintBytes implements Pattern (the maximum of the phases).
func (q Seq) FootprintBytes() float64 {
	m := 0.0
	for _, p := range q {
		if f := p.FootprintBytes(); f > m {
			m = f
		}
	}
	return m
}

// String implements Pattern.
func (q Seq) String() string { return fmt.Sprintf("seq(%d patterns)", len(q)) }

// Concurrent composes patterns executed in an interleaved fashion
// (Manegold's ⊙): each pattern effectively sees the cache capacity divided
// in proportion to its footprint, so patterns that would fit alone may
// thrash together.
type Concurrent []Pattern

// Misses implements Pattern.
func (cc Concurrent) Misses(g Geometry) float64 {
	total := 0.0
	for _, p := range cc {
		total += p.FootprintBytes()
	}
	sum := 0.0
	for _, p := range cc {
		sub := g
		if total > 0 {
			share := p.FootprintBytes() / total
			sub.CapacityLines = int(float64(g.CapacityLines) * share)
		}
		sum += p.Misses(sub)
	}
	return sum
}

// FootprintBytes implements Pattern.
func (cc Concurrent) FootprintBytes() float64 {
	sum := 0.0
	for _, p := range cc {
		sum += p.FootprintBytes()
	}
	return sum
}

// String implements Pattern.
func (cc Concurrent) String() string { return fmt.Sprintf("concurrent(%d patterns)", len(cc)) }

// HashJoinPattern models a canonical hash equi-join as pattern composition:
// build = sequential read of the build input plus random writes into the
// hash table; probe = sequential read of the probe input plus random reads
// of the table. This is how the generic model prices the operators the
// paper's §7 plans to integrate.
func HashJoinPattern(buildTuples, buildWidth, probeTuples, probeWidth, slotBytes int) Pattern {
	tableBytes := buildTuples * slotBytes
	return Seq{
		Concurrent{
			STrav{N: buildTuples, Width: buildWidth},
			RRAcc{RegionBytes: tableBytes, Probes: buildTuples},
		},
		Concurrent{
			STrav{N: probeTuples, Width: probeWidth},
			RRAcc{RegionBytes: tableBytes, Probes: probeTuples},
		},
	}
}
