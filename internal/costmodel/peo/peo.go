// Package peo predicts the performance-counter values a multi-selection
// query produces under a given predicate evaluation order (PEO) and
// per-predicate selectivities. It composes the Markov branch model with the
// conditional-read cache model, exactly the forward model the paper's
// learning algorithm (§4.2) inverts: Nelder-Mead searches the selectivity
// space for the vector that makes these estimates match the sampled
// counters.
package peo

import (
	"fmt"

	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/costmodel/markov"
)

// Params describes the scanned data and hardware the estimates are for.
type Params struct {
	// N is the number of tuples scanned (one vector or a whole run).
	N int
	// Widths are the byte widths of each predicate's column in PEO order.
	Widths []int
	// AggWidths are the widths of columns read for fully qualifying tuples
	// (aggregation inputs).
	AggWidths []int
	// Geometry is the modelled cache level (L3 for the paper's counter).
	Geometry cachemodel.Geometry
	// Chain is the branch-predictor model.
	Chain markov.Chain
}

func (p Params) validate(sels []float64) error {
	if p.N <= 0 {
		return fmt.Errorf("peo: non-positive tuple count %d", p.N)
	}
	if len(p.Widths) == 0 {
		return fmt.Errorf("peo: no predicates")
	}
	if len(sels) != len(p.Widths) {
		return fmt.Errorf("peo: %d selectivities for %d predicates", len(sels), len(p.Widths))
	}
	for i, w := range p.Widths {
		if w <= 0 {
			return fmt.Errorf("peo: predicate %d has non-positive width %d", i, w)
		}
	}
	return nil
}

// Estimate holds predicted counter values for one PEO.
type Estimate struct {
	// BNT is the number of branches not taken: the sum over predicates of
	// tuples qualifying that predicate (§2.2.1).
	BNT float64
	// BTaken is the number of branches taken: one per failing tuple plus the
	// loop-back branch per tuple.
	BTaken float64
	// MPTaken and MPNotTaken are mispredicted taken / not-taken branches.
	MPTaken, MPNotTaken float64
	// L3 is the modelled L3-access count (demand + prefetch line accesses).
	L3 float64
	// Qualifying is the expected output cardinality.
	Qualifying float64
}

// MP returns total mispredictions.
func (e Estimate) MP() float64 { return e.MPTaken + e.MPNotTaken }

// Counters predicts the counter values for the PEO whose per-predicate
// selectivities (in evaluation order) are sels. Selectivities are clamped to
// [0,1]; independence between predicates is assumed, as in the paper.
func Counters(par Params, sels []float64) (Estimate, error) {
	if err := par.validate(sels); err != nil {
		return Estimate{}, err
	}
	n := float64(par.N)
	var est Estimate
	prod := 1.0
	for i, raw := range sels {
		sel := raw
		if sel < 0 {
			sel = 0
		}
		if sel > 1 {
			sel = 1
		}
		input := n * prod
		// Branch events of predicate i (§2.2.1): not taken when the tuple
		// qualifies, taken when it fails.
		est.BNT += input * sel
		est.BTaken += input * (1 - sel)
		r := par.Chain.Predict(sel)
		est.MPTaken += r.MPTaken * input
		est.MPNotTaken += r.MPNotTaken * input
		// Column of predicate i is read for every tuple reaching it: a
		// conditional-read pattern with access probability prod (sequential
		// scan when prod == 1).
		est.L3 += par.Geometry.CondReadAccesses(par.N, par.Widths[i], prod).Accesses
		prod *= sel
	}
	// Loop-back branch: taken once per tuple, fully predictable.
	est.BTaken += n
	for _, w := range par.AggWidths {
		est.L3 += par.Geometry.CondReadAccesses(par.N, w, prod).Accesses
	}
	est.Qualifying = n * prod
	return est, nil
}

// CostParams convert counter estimates into cycles, mirroring the simulated
// core's accounting closely enough to rank PEOs.
type CostParams struct {
	// IssueWidth spreads retired instructions over cycles.
	IssueWidth int
	// MPPenaltyCycles is the misprediction flush cost.
	MPPenaltyCycles int
	// LineStallCycles is the average stall charged per L3 line access
	// (memory latency diluted by memory-level parallelism).
	LineStallCycles float64
	// InstrPerEval is the instruction cost of one predicate evaluation
	// (load + compare + jump).
	InstrPerEval float64
	// InstrPerTuple is the loop overhead per tuple.
	InstrPerTuple float64
	// InstrPerOutput is the aggregation cost per qualifying tuple.
	InstrPerOutput float64
}

// DefaultCostParams matches the simulated ScaledXeon core.
func DefaultCostParams() CostParams {
	return CostParams{
		IssueWidth:      4,
		MPPenaltyCycles: 15,
		LineStallCycles: 45, // 180-cycle memory latency / MemParallelism 4
		InstrPerEval:    3,
		InstrPerTuple:   4,
		InstrPerOutput:  5,
	}
}

// Cycles converts an estimate into a cycle count for ranking PEOs.
func Cycles(par Params, cost CostParams, sels []float64) (float64, error) {
	est, err := Counters(par, sels)
	if err != nil {
		return 0, err
	}
	n := float64(par.N)
	evals := 0.0
	prod := 1.0
	for _, sel := range sels {
		evals += n * prod
		s := sel
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		prod *= s
	}
	instr := evals*cost.InstrPerEval + n*cost.InstrPerTuple + est.Qualifying*cost.InstrPerOutput
	cycles := instr/float64(cost.IssueWidth) +
		est.MP()*float64(cost.MPPenaltyCycles) +
		est.L3*cost.LineStallCycles
	return cycles, nil
}

// BestOrder returns the permutation of predicate indexes that minimizes
// Cycles for the given per-predicate selectivities (indexes refer to the
// Params/sels order). For equal widths this is ascending selectivity, the
// classical result the paper's reordering step applies.
func BestOrder(par Params, cost CostParams, sels []float64) ([]int, error) {
	if err := par.validate(sels); err != nil {
		return nil, err
	}
	idx := make([]int, len(sels))
	for i := range idx {
		idx[i] = i
	}
	// Selection-cost exchange argument: sorting by ascending selectivity is
	// optimal when per-predicate costs are equal; with unequal widths the
	// standard rank is (sel-1)/cost, but widths only perturb the cache term,
	// so we sort by ascending selectivity and break ties by width.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if sels[b] < sels[a] || (sels[b] == sels[a] && par.Widths[b] < par.Widths[a]) {
				idx[j-1], idx[j] = idx[j], idx[j-1]
			} else {
				break
			}
		}
	}
	return idx, nil
}
