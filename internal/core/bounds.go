// Package core implements the paper's progressive optimization approach:
// search-space restriction from exact counter identities (§4.1), selectivity
// estimation by non-linear optimization of the counter cost models (§4.2),
// start-point generation (§4.3), the progressive re-optimization driver that
// wraps vectorized execution (§4.4, Figure 10), and the sortedness/join-order
// rules of §5.5-§5.6.
package core

import "fmt"

// Bounds restricts the per-predicate access counts ("branches not taken by
// predicate i", equivalently tuples qualifying predicates 1..i) of a
// multi-selection query, from three exact facts: the input cardinality, the
// output cardinality (2n - branchesTaken), and the sampled total number of
// branches not taken. Index i is the 0-based PEO position.
type Bounds struct {
	// TupsIn and TupsOut are the input/output cardinalities.
	TupsIn, TupsOut float64
	// BNT is the sampled total branches-not-taken.
	BNT float64
	// UpperTuple and LowerTuple are the cardinality-only bounds (Eq. 6, 7).
	UpperTuple, LowerTuple []float64
	// UpperBNT and LowerBNT are the tighter bounds using the sampled BNT
	// (Eq. 8, 9).
	UpperBNT, LowerBNT []float64
}

// Restrict computes the §4.1 bounds for a query with p predicates.
//
// The paper's Eq. (9) prints the divisor n-1; deriving the bound (maximize
// the accesses of the predicates before position i at tupsIn, fix the last
// at tupsOut, and spread the remaining BNT equally over positions i..n-2,
// of which position i is the largest) gives divisor n-p in the paper's
// 1-based indexing — which also reproduces the paper's own worked example
// ([67, 50, 10, 10] for accesses [80,70,50,10]); we implement that.
func Restrict(p int, tupsIn, tupsOut, bntSampled float64) (Bounds, error) {
	if p <= 0 {
		return Bounds{}, fmt.Errorf("core: non-positive predicate count %d", p)
	}
	if tupsIn <= 0 {
		return Bounds{}, fmt.Errorf("core: non-positive input cardinality %v", tupsIn)
	}
	if tupsOut < 0 || tupsOut > tupsIn {
		return Bounds{}, fmt.Errorf("core: output cardinality %v outside [0, %v]", tupsOut, tupsIn)
	}
	if bntSampled < 0 {
		return Bounds{}, fmt.Errorf("core: negative sampled BNT %v", bntSampled)
	}
	b := Bounds{
		TupsIn:     tupsIn,
		TupsOut:    tupsOut,
		BNT:        bntSampled,
		UpperTuple: make([]float64, p),
		LowerTuple: make([]float64, p),
		UpperBNT:   make([]float64, p),
		LowerBNT:   make([]float64, p),
	}
	for i := 0; i < p; i++ {
		// Eq. (6)/(7): only the last access count is pinned to the output.
		if i == p-1 {
			b.UpperTuple[i] = tupsOut
		} else {
			b.UpperTuple[i] = tupsIn
		}
		b.LowerTuple[i] = tupsOut

		if i == p-1 {
			b.UpperBNT[i] = tupsOut
			b.LowerBNT[i] = tupsOut
			continue
		}
		// Eq. (8): positions 0..i all take the same maximal value x while
		// later positions take tupsOut: (i+1)*x + (p-1-i)*tupsOut = BNT.
		up := (bntSampled - float64(p-1-i)*tupsOut) / float64(i+1)
		if up > tupsIn {
			up = tupsIn
		}
		if up < tupsOut {
			up = tupsOut
		}
		b.UpperBNT[i] = up

		// Eq. (9), corrected divisor: positions before i maxed at tupsIn,
		// last pinned at tupsOut, remainder spread over p-1-i positions of
		// which position i is the largest.
		lo := (bntSampled - tupsOut - float64(i)*tupsIn) / float64(p-1-i)
		if lo < tupsOut {
			lo = tupsOut
		}
		if lo > b.UpperBNT[i] {
			lo = b.UpperBNT[i]
		}
		b.LowerBNT[i] = lo
	}
	return b, nil
}

// ProductBounds converts the BNT access bounds into bounds on cumulative
// selectivity products x_i = accesses(i)/tupsIn, the space the estimator's
// non-linear optimization searches.
func (b Bounds) ProductBounds() (lo, hi []float64) {
	p := len(b.UpperBNT)
	lo = make([]float64, p)
	hi = make([]float64, p)
	for i := 0; i < p; i++ {
		lo[i] = b.LowerBNT[i] / b.TupsIn
		hi[i] = b.UpperBNT[i] / b.TupsIn
	}
	return lo, hi
}

// Feasible reports whether a per-predicate access vector satisfies all
// bounds and monotonicity (each predicate passes at most as many tuples as
// the one before).
func (b Bounds) Feasible(accesses []float64) bool {
	if len(accesses) != len(b.UpperBNT) {
		return false
	}
	prev := b.TupsIn
	for i, a := range accesses {
		if a < b.LowerBNT[i]-1e-9 || a > b.UpperBNT[i]+1e-9 {
			return false
		}
		if a > prev+1e-9 {
			return false
		}
		prev = a
	}
	return true
}
