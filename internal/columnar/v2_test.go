package columnar

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// randomTable builds a table exercising every kind and value-shape corner:
// low cardinality (dict bait), narrow ranges (FoR bait), full-range int64
// extremes (wrapping delta math), and high-cardinality floats (plain).
func randomTable(rng *rand.Rand, rows int) *Table {
	t := NewTable("t")
	lowCard := make([]int64, rows)
	narrow := make([]int64, rows)
	extreme := make([]int64, rows)
	smallI32 := make([]int32, rows)
	dates := make([]int32, rows)
	lowF := make([]float64, rows)
	wideF := make([]float64, rows)
	for i := 0; i < rows; i++ {
		lowCard[i] = int64(rng.Intn(7))
		narrow[i] = 1_000_000 + int64(rng.Intn(100_000))
		switch rng.Intn(4) {
		case 0:
			extreme[i] = math.MinInt64
		case 1:
			extreme[i] = math.MaxInt64
		default:
			extreme[i] = rng.Int63() - rng.Int63()
		}
		smallI32[i] = int32(rng.Intn(1 << 20))
		dates[i] = 7000 + int32(rng.Intn(2500))
		lowF[i] = float64(rng.Intn(11)) / 100
		wideF[i] = rng.NormFloat64() * 1e6
	}
	if rows > 0 {
		lowF[rng.Intn(rows)] = math.Copysign(0, -1) // signed zero round-trips by bits
	}
	t.MustAddColumn(NewInt64("low_card", lowCard))
	t.MustAddColumn(NewInt64("narrow", narrow))
	t.MustAddColumn(NewInt64("extreme", extreme))
	t.MustAddColumn(NewInt32("small_i32", smallI32))
	t.MustAddColumn(NewDate("dates", dates))
	t.MustAddColumn(NewFloat64("low_f", lowF))
	t.MustAddColumn(NewFloat64("wide_f", wideF))
	return t
}

// sameTable compares every value of two tables by bit pattern.
func sameTable(t *testing.T, want, got *Table) {
	t.Helper()
	if want.Name() != got.Name() {
		t.Fatalf("name %q != %q", got.Name(), want.Name())
	}
	if want.NumCols() != got.NumCols() || want.NumRows() != got.NumRows() {
		t.Fatalf("shape (%d cols, %d rows) != (%d cols, %d rows)",
			got.NumCols(), got.NumRows(), want.NumCols(), want.NumRows())
	}
	for i, wc := range want.Columns() {
		gc := got.Columns()[i]
		if wc.Name() != gc.Name() || wc.Kind() != gc.Kind() {
			t.Fatalf("column %d: (%q, %v) != (%q, %v)", i, gc.Name(), gc.Kind(), wc.Name(), wc.Kind())
		}
		switch wc.Kind() {
		case Int64:
			for r, v := range wc.I64() {
				if gc.I64()[r] != v {
					t.Fatalf("%s[%d] = %d, want %d", wc.Name(), r, gc.I64()[r], v)
				}
			}
		case Int32, Date:
			for r, v := range wc.I32() {
				if gc.I32()[r] != v {
					t.Fatalf("%s[%d] = %d, want %d", wc.Name(), r, gc.I32()[r], v)
				}
			}
		case Float64:
			for r, v := range wc.F64() {
				if math.Float64bits(gc.F64()[r]) != math.Float64bits(v) {
					t.Fatalf("%s[%d] = %v, want %v (bits differ)", wc.Name(), r, gc.F64()[r], v)
				}
			}
		}
	}
}

// TestEncodeDecodeRoundTrip fuzzes EncodeTable/Decode over random tables and
// block geometries, including blocks of one row and non-dividing sizes.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		rows := rng.Intn(3000)
		blockRows := 1 + rng.Intn(rows+2)
		tb := randomTable(rng, rows)
		et, err := EncodeTable(tb, blockRows)
		if err != nil {
			t.Fatalf("trial %d (rows %d, block %d): %v", trial, rows, blockRows, err)
		}
		dec, err := et.Decode()
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		sameTable(t, tb, dec)
	}
}

// TestV2FileRoundTrip pins the full disk path: encode, serialize, reload via
// both ReadEncoded+Decode and the version-dispatching LoadTable.
func TestV2FileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := randomTable(rng, 2500)
	for _, blockRows := range []int{1, 7, 512, 2500, 4096} {
		var buf bytes.Buffer
		if err := WriteTableV2(&buf, tb, blockRows); err != nil {
			t.Fatalf("block %d: write: %v", blockRows, err)
		}
		et, err := ReadEncoded(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("block %d: read encoded: %v", blockRows, err)
		}
		if et.BlockRows() != blockRows {
			t.Fatalf("block rows %d, want %d", et.BlockRows(), blockRows)
		}
		dec, err := et.Decode()
		if err != nil {
			t.Fatalf("block %d: decode: %v", blockRows, err)
		}
		sameTable(t, tb, dec)

		loaded, err := LoadTable(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("block %d: LoadTable: %v", blockRows, err)
		}
		sameTable(t, tb, loaded)
	}
}

// TestLoadTableReadsV1 is the back-compat satellite: a v1 file written by
// the current writer loads through the dispatching LoadTable (and through
// ReadTable, which now shares the dispatch).
func TestLoadTableReadsV1(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tb := randomTable(rng, 1200)
	var buf bytes.Buffer
	if err := WriteTable(&buf, tb); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadTable on v1 stream: %v", err)
	}
	sameTable(t, tb, loaded)
	reread, err := ReadTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTable on v1 stream: %v", err)
	}
	sameTable(t, tb, reread)
}

// TestEncodingChoices pins the size-driven encoding selection on the column
// shapes the TPC-H generator produces.
func TestEncodingChoices(t *testing.T) {
	rows := 4096
	rng := rand.New(rand.NewSource(2))
	lowCard := make([]float64, rows)
	seq := make([]int64, rows)
	wide := make([]float64, rows)
	for i := range lowCard {
		lowCard[i] = float64(rng.Intn(11)) / 100
		seq[i] = int64(i) * 3
		wide[i] = rng.NormFloat64()
	}
	tb := NewTable("t")
	tb.MustAddColumn(NewFloat64("low", lowCard))
	tb.MustAddColumn(NewInt64("seq", seq))
	tb.MustAddColumn(NewFloat64("wide", wide))
	et, err := EncodeTable(tb, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got := et.Column("low").Encoding(); got != EncDict {
		t.Errorf("low-cardinality float encoded %v, want dict", got)
	}
	if got := et.Column("seq").Encoding(); got != EncFoR {
		t.Errorf("narrow-range int encoded %v, want FoR", got)
	}
	if got := et.Column("wide").Encoding(); got != EncPlain {
		t.Errorf("high-cardinality float encoded %v, want plain", got)
	}
	for _, name := range []string{"low", "seq"} {
		c := et.Column(name)
		if c.EncodedBytes() >= c.PlainBytes() {
			t.Errorf("%s: encoded %d bytes >= plain %d", name, c.EncodedBytes(), c.PlainBytes())
		}
	}
}

// TestZoneMaps checks per-block min/max against a direct scan.
func TestZoneMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows, blockRows := 1000, 96
	tb := randomTable(rng, rows)
	et, err := EncodeTable(tb, blockRows)
	if err != nil {
		t.Fatal(err)
	}
	ec := et.Column("extreme")
	vals := tb.Column("extreme").I64()
	blockSpans(rows, blockRows, func(i, lo, hi int) {
		wantMin, wantMax := vals[lo], vals[lo]
		for _, v := range vals[lo+1 : hi] {
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
		}
		gotMin, gotMax := ec.ZoneInt(i)
		if gotMin != wantMin || gotMax != wantMax {
			t.Errorf("block %d zone [%d,%d], want [%d,%d]", i, gotMin, gotMax, wantMin, wantMax)
		}
		if !ec.Block(i).NullFree {
			t.Errorf("block %d not marked null-free", i)
		}
	})
	fc := et.Column("wide_f")
	fvals := tb.Column("wide_f").F64()
	blockSpans(rows, blockRows, func(i, lo, hi int) {
		wantMin, wantMax := fvals[lo], fvals[lo]
		for _, v := range fvals[lo+1 : hi] {
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
		}
		gotMin, gotMax := fc.ZoneFloat(i)
		if gotMin != wantMin || gotMax != wantMax {
			t.Errorf("float block %d zone [%g,%g], want [%g,%g]", i, gotMin, gotMax, wantMin, wantMax)
		}
	})
}

// TestPackBitsRoundTrip fuzzes the bit packer across widths 0..64.
func TestPackBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for width := 0; width <= 64; width++ {
		n := 1 + rng.Intn(200)
		vals := make([]uint64, n)
		for i := range vals {
			if width == 64 {
				vals[i] = rng.Uint64()
			} else {
				vals[i] = rng.Uint64() & (1<<uint(width) - 1)
			}
		}
		packed := packBits(vals, width)
		if want := (n*width + 7) / 8; len(packed) != want {
			t.Fatalf("width %d: packed %d bytes, want %d", width, len(packed), want)
		}
		got, err := unpackBits(packed, n, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("width %d: value %d = %d, want %d", width, i, got[i], vals[i])
			}
		}
	}
}

// TestV2Corruptions flips fields of a valid v2 stream and checks rejection.
func TestV2Corruptions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tb := randomTable(rng, 300)
	var buf bytes.Buffer
	if err := WriteTableV2(&buf, tb, 64); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := LoadTable(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
	mutate := func(name string, f func(b []byte)) {
		b := append([]byte(nil), good...)
		f(b)
		if _, err := LoadTable(bytes.NewReader(b)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	mutate("bad version", func(b []byte) { b[4] = 99 })
	mutate("zero block rows", func(b []byte) {
		// name "t" (1 byte) follows magic+version+nameLen; then numCols u32.
		// blockRows u32 lives at 4+4+4+1+4 = 17.
		copy(b[17:21], []byte{0, 0, 0, 0})
	})
	mutate("huge block rows", func(b []byte) {
		copy(b[17:21], []byte{0xff, 0xff, 0xff, 0xff})
	})
	mutate("huge row count", func(b []byte) {
		copy(b[21:29], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	})
	// Truncations at every boundary must error, never panic.
	for cut := 0; cut < len(good); cut += 7 {
		if _, err := LoadTable(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(good))
		}
	}
}
