package experiments

import (
	"fmt"

	"progopt/internal/columnar"
	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/costmodel/markov"
	"progopt/internal/costmodel/peo"
	"progopt/internal/datagen"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
)

// Fig04 reproduces Figure 4: for a two-predicate selection, the ratio of
// measured to predicted branch mispredictions (not-taken, taken, all) over a
// grid of (sel1, sel2). Ratios near 1 everywhere validate the multi-
// predicate branch model.
func Fig04(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	n := 64 * cfg.VectorSize
	step := 0.2
	if cfg.Quick {
		step = 0.5
	}
	rng := datagen.NewRNG(cfg.Seed)
	tb := columnar.NewTable("t")
	tb.MustAddColumn(columnar.NewInt64("a", datagen.UniformInt64(rng, n, 0, 999)))
	tb.MustAddColumn(columnar.NewInt64("b", datagen.UniformInt64(rng, n, 0, 999)))

	r, err := newRig(cpu.ScaledXeon(), cfg)
	if err != nil {
		return nil, err
	}
	prof := r.cpu.Profile()
	params := peo.Params{
		N:        n,
		Widths:   []int{8, 8},
		Geometry: cachemodel.Geometry{LineSize: prof.Hierarchy.L3.LineSize, CapacityLines: prof.Hierarchy.L3.Lines()},
		Chain:    markov.Paper(),
	}

	var selAxis []float64
	for s := step; s < 1.0-1e-9; s += step {
		selAxis = append(selAxis, s)
	}
	cols := []string{"sel1\\sel2"}
	for _, s2 := range selAxis {
		cols = append(cols, fmtF(s2))
	}
	mk := func(sub, what string) *Report {
		return &Report{
			ID:      "fig04" + sub,
			Title:   fmt.Sprintf("Two-predicate %s mispredictions: measured/predicted", what),
			Columns: cols,
			Notes:   []string{fmt.Sprintf("%d tuples per cell; interior grid (ratios are unstable where counts ~0)", n)},
		}
	}
	repNT, repT, repAll := mk("a", "not-taken"), mk("b", "taken"), mk("c", "all")

	for _, s1 := range selAxis {
		rowNT := []string{fmtF(s1)}
		rowT := []string{fmtF(s1)}
		rowAll := []string{fmtF(s1)}
		for _, s2 := range selAxis {
			q := &exec.Query{
				Table: tb,
				Ops: []exec.Op{
					&exec.Predicate{Col: tb.Column("a"), Op: exec.LT, I: int64(s1 * 1000)},
					&exec.Predicate{Col: tb.Column("b"), Op: exec.LT, I: int64(s2 * 1000)},
				},
			}
			if err := r.bind(q); err != nil {
				return nil, err
			}
			r.cold()
			res, err := r.eng.Run(q)
			if err != nil {
				return nil, err
			}
			est, err := peo.Counters(params, []float64{s1, s2})
			if err != nil {
				return nil, err
			}
			ratio := func(meas, pred float64) string {
				if pred < 1 {
					return "-"
				}
				return fmt.Sprintf("%.2f", meas/pred)
			}
			c := res.Counters
			rowNT = append(rowNT, ratio(float64(c.Get(pmu.BrMPNotTaken)), est.MPNotTaken))
			rowT = append(rowT, ratio(float64(c.Get(pmu.BrMPTaken)), est.MPTaken))
			rowAll = append(rowAll, ratio(float64(c.Get(pmu.BrMP)), est.MP()))
		}
		repNT.Rows = append(repNT.Rows, rowNT)
		repT.Rows = append(repT.Rows, rowT)
		repAll.Rows = append(repAll.Rows, rowAll)
	}
	return []*Report{repNT, repT, repAll}, nil
}
