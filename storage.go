package progopt

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/exec"
	"progopt/internal/hw/cache"
	"progopt/internal/storage"
)

// StorageConfig puts the driving table on simulated persistent storage: the
// data set is encoded into the PCOL v2 block format (dictionary and
// frame-of-reference compression, per-block zone maps), its decoded image is
// what queries execute over, and a storage tier below DRAM prices every
// access that misses the whole cache hierarchy with block-granularity
// transfers under a resident-set budget.
//
// The zero value of every field is a valid "faithful" configuration: blocks
// price at zero seek latency and unit bandwidth, the resident set is
// unbounded, and both scan optimizations are off. A faithful stored run
// retires the identical instruction, load, and branch stream as the same
// plan over the in-RAM data set — results, morsel schedule, and every PMU
// counter are bit-identical; only the reported Cycles grows, by the tier's
// stall debt (on a serial engine exactly the run's stall cycles, on a
// parallel one the slowest core's).
type StorageConfig struct {
	// BlockRows is rows per storage block (default 4096).
	BlockRows int
	// LatencyCycles is the fixed seek cost per block fetch.
	LatencyCycles uint64
	// BytesPerCycle is the tier's transfer bandwidth (0 = 1).
	BytesPerCycle uint64
	// ResidentBytes bounds DRAM-resident encoded bytes; blocks evict LRU
	// past the budget (0 = unbounded).
	ResidentBytes uint64
	// SkipScan answers vectors that zone maps prove empty from metadata
	// alone — no loads, instructions, or branches are simulated for them.
	SkipScan bool
	// CompressedScan prices predicate scans over the packed column images
	// (dictionary codes, FoR deltas) instead of the decoded values, moving
	// fewer simulated bytes. Results are unchanged; the simulated address
	// stream is what differs.
	CompressedScan bool
}

// storageBlockRows applies the BlockRows default.
func (c *StorageConfig) blockRows() int {
	if c.BlockRows > 0 {
		return c.BlockRows
	}
	return 4096
}

// storageCfg maps the public knobs to the storage compiler's.
func (c *StorageConfig) planConfig() storage.Config {
	return storage.Config{
		LatencyCycles:  c.LatencyCycles,
		BytesPerCycle:  c.BytesPerCycle,
		ResidentBytes:  c.ResidentBytes,
		SkipScan:       c.SkipScan,
		CompressedScan: c.CompressedScan,
	}
}

// storedTable is one data set's stored driving table materialized in one
// engine: the encoded table, its decoded image (bound into the engine's
// address space by the first Compile), and — for compressed scans — the
// packed images, allocated once after every ordinary bind.
type storedTable struct {
	enc    *columnar.EncodedTable
	tab    *columnar.Table
	packed map[string]storage.PackedImage
}

// storedQuery is a compiled query's stored-scan state: the immutable plan
// plus one engine attachment per simulated core (each with a private tier
// view).
type storedQuery struct {
	plan  *storage.Plan
	views []*exec.StorageScan
}

// StorageStats reports a stored scan: the plan's zone-map pruning and the
// run's tier activity summed across cores.
type StorageStats struct {
	// BlocksTotal is the stored table's block count; BlocksPruned how many
	// the compiled predicates proved empty; VectorsSkipped how many
	// execution vectors were answered from metadata alone.
	BlocksTotal, BlocksPruned, VectorsSkipped int
	// PlainBytes and EncodedBytes are the table's decoded and stored sizes.
	PlainBytes, EncodedBytes int
	// BlockFetches, BlockHits, BytesFetched, Evictions, StallCycles are the
	// tier counters accumulated during the run, summed across cores.
	BlockFetches, BlockHits, BytesFetched, Evictions, StallCycles uint64
}

// storedLineitem returns (building and caching on first use) the engine's
// stored image of the data set's lineitem table.
func (e *Engine) storedLineitem(d *Dataset) (*storedTable, error) {
	if st, ok := e.stored[d.gen]; ok {
		return st, nil
	}
	enc, err := d.EncodedLineitem(e.stcfg.blockRows())
	if err != nil {
		return nil, err
	}
	tab, err := enc.Decode()
	if err != nil {
		return nil, err
	}
	if e.stored == nil {
		e.stored = make(map[uint64]*storedTable)
	}
	st := &storedTable{enc: enc, tab: tab}
	e.stored[d.gen] = st
	return st, nil
}

// compileStorage builds the stored-scan plan and per-core tier views for a
// freshly compiled and bound query. Packed images (compressed scan) are
// allocated on first use, after every ordinary bind of the engine's first
// compile, so a faithful configuration stays address-identical to an in-RAM
// engine.
func (e *Engine) compileStorage(st *storedTable, q *exec.Query) (*storedQuery, error) {
	plan, err := storage.Compile(st.enc, st.tab, q, e.eng.VectorSize(), e.stcfg.planConfig())
	if err != nil {
		return nil, err
	}
	if e.stcfg.CompressedScan {
		if st.packed == nil {
			st.packed = make(map[string]storage.PackedImage, len(st.enc.Columns()))
			for _, ec := range st.enc.Columns() {
				w := ec.PackedWidthBytes()
				base, err := e.cpu.Alloc(ec.Rows() * w)
				if err != nil {
					return nil, err
				}
				st.packed[ec.Name()] = storage.PackedImage{Base: base, Width: w}
			}
		}
		plan.Packed = st.packed
		for _, op := range q.Ops {
			p, ok := op.(*exec.Predicate)
			if !ok {
				continue
			}
			if img, ok := st.packed[p.Col.Name()]; ok && st.tab.Column(p.Col.Name()) == p.Col {
				p.ScanBase, p.ScanWidth = img.Base, img.Width
			}
		}
	}
	views := make([]*exec.StorageScan, e.workers)
	for i := range views {
		set, err := plan.NewSet()
		if err != nil {
			return nil, err
		}
		views[i] = &exec.StorageScan{Skip: plan.Skip, Set: set}
	}
	return &storedQuery{plan: plan, views: views}, nil
}

// attachStorage installs the query's stored-scan state on every core the run
// will use, drops tier residency (every Exec is a cold scan), and snapshots
// the tier counters for the post-run delta.
func (e *Engine) attachStorage(s *storedQuery) ([]cache.StorageCounters, error) {
	if e.par != nil && len(s.views) != len(e.par.Engines()) {
		return nil, fmt.Errorf("progopt: stored query compiled for %d cores, engine has %d", len(s.views), len(e.par.Engines()))
	}
	before := make([]cache.StorageCounters, len(s.views))
	for i, v := range s.views {
		v.Set.DropResidency()
		before[i] = v.Set.Counters()
	}
	if e.par != nil {
		for i, w := range e.par.Engines() {
			w.SetStorage(s.views[i])
		}
	} else {
		e.eng.SetStorage(s.views[0])
	}
	return before, nil
}

// detachStorage removes the stored-scan state from every core.
func (e *Engine) detachStorage() {
	if e.par != nil {
		for _, w := range e.par.Engines() {
			w.SetStorage(nil)
		}
	} else {
		e.eng.SetStorage(nil)
	}
}

// freshViews builds a new per-core set of tier views over the same plan —
// one per pool core, residency starting cold. The workload server gives each
// submission its own views so concurrently served queries sharing a cached
// plan never share residency state.
func (s *storedQuery) freshViews() ([]*exec.StorageScan, error) {
	views := make([]*exec.StorageScan, len(s.views))
	for i := range views {
		set, err := s.plan.NewSet()
		if err != nil {
			return nil, err
		}
		views[i] = &exec.StorageScan{Skip: s.plan.Skip, Set: set}
	}
	return views, nil
}

// storageStats folds the plan facts and the run's tier-counter deltas into
// the public report. The second return is the largest single view's stall
// delta — the stall debt of the run's slowest core, which extends the
// reported makespan (cores synchronize at the scan barrier, so the run
// completes no earlier than its largest per-core tier debt; on a serial
// engine this is exactly the run's stall cycles). before may be nil (fresh
// views).
func storageStats(p *storage.Plan, views []*exec.StorageScan, before []cache.StorageCounters) (*StorageStats, uint64) {
	out := &StorageStats{
		BlocksTotal:    p.BlocksTotal(),
		BlocksPruned:   p.BlocksPruned(),
		VectorsSkipped: p.VectorsSkipped(),
		PlainBytes:     p.Enc.PlainBytes(),
		EncodedBytes:   p.Enc.EncodedBytes(),
	}
	var maxStall uint64
	for i, v := range views {
		d := v.Set.Counters()
		if before != nil {
			d = d.Sub(before[i])
		}
		out.BlockFetches += d.BlockFetches
		out.BlockHits += d.BlockHits
		out.BytesFetched += d.BytesFetched
		out.Evictions += d.Evictions
		out.StallCycles += d.StallCycles
		if d.StallCycles > maxStall {
			maxStall = d.StallCycles
		}
	}
	return out, maxStall
}

// EncodedLineitem returns (encoding and caching on first use) the data set's
// lineitem table in the PCOL v2 block format with the given block size.
// Experiments and storage-backed engines share the cached encoding; it is
// deterministic, so sharing is observation-free.
func (d *Dataset) EncodedLineitem(blockRows int) (*columnar.EncodedTable, error) {
	d.encMu.Lock()
	defer d.encMu.Unlock()
	if d.encCache == nil {
		d.encCache = make(map[int]*columnar.EncodedTable)
	}
	if enc, ok := d.encCache[blockRows]; ok {
		return enc, nil
	}
	enc, err := columnar.EncodeTable(d.d.Lineitem, blockRows)
	if err != nil {
		return nil, err
	}
	d.encCache[blockRows] = enc
	return enc, nil
}
