package core

import (
	"progopt/internal/exec"
	"progopt/internal/hw/pmu"
)

// ParallelStats reports what the parallel progressive driver did.
type ParallelStats struct {
	Stats
	// Workers is the number of simulated cores.
	Workers int
	// Blocks is the number of morsel blocks (optimization epochs) executed.
	Blocks int
}

// RunParallelProgressive executes the query morsel-driven across the
// parallel executor's cores with progressive re-optimization at block
// granularity: each block spans ReopInterval vectors per core; at every
// block boundary the per-core PMU deltas are merged and the selectivity
// estimator inverts the cost models over the aggregate — summing per-core
// counters is exactly how a multi-core deployment samples its PMUs — then
// operators are reordered by ascending estimate. The next block validates
// the reorder against the previous block's per-vector cost and reverts on
// regression, the parallel analogue of §4.4's vector-level validation.
//
// Estimation runs on core 0 while the other cores idle at the block barrier,
// so its cycle cost extends the makespan; a reorder re-JITs the scan loop on
// every core (predictor reset + recompile charge). The coordination logic
// itself lives in BlockStepper, shared with the workload service's
// scheduler.
//
// Query results (Qualifying, Sum) are bit-identical to a serial run and
// deterministic across worker counts; because the morsel scheduler runs on
// simulated clocks, cycle counts, counter samples, and optimizer decisions
// are also fully reproducible run to run.
func RunParallelProgressive(p *exec.Parallel, q *exec.Query, opt Options) (exec.Result, ParallelStats, error) {
	r, st, err := runParallelAdaptive(p, q, opt, false)
	return r, st.ParallelStats, err
}

// runParallelAdaptive is the shared block loop of the parallel progressive
// and micro-adaptive drivers: run one block over the whole pool, then let the
// stepper validate, estimate, reorder, and (micro) choose the scan
// implementation.
func runParallelAdaptive(p *exec.Parallel, q *exec.Query, opt Options, micro bool) (exec.Result, ParallelMicroAdaptiveStats, error) {
	if err := q.Validate(); err != nil {
		return exec.Result{}, ParallelMicroAdaptiveStats{}, err
	}
	engines := p.Engines()
	w0 := engines[0].CPU()
	s, err := NewBlockStepper(q, w0.Profile(), p.Workers(), micro, opt)
	if err != nil {
		return exec.Result{}, ParallelMicroAdaptiveStats{}, err
	}

	startSamples := make([]pmu.Sample, len(engines))
	for i, e := range engines {
		startSamples[i] = e.CPU().Sample()
	}

	n := q.Table.NumRows()
	vs := p.VectorSize()
	numVec := p.NumVectors(q)
	blockVecs := s.BlockVectors(p.Workers())
	if blockVecs <= 0 {
		blockVecs = numVec // no re-optimization: one block
	}
	if blockVecs <= 0 {
		blockVecs = 1
	}

	var out exec.Result
	var totalCycles uint64

	for v0 := 0; v0 < numVec; v0 += blockVecs {
		v1 := v0 + blockVecs
		if v1 > numVec {
			v1 = numVec
		}
		// The external accumulator keeps the aggregate's float addition in
		// global vector order across block boundaries: Sum is bit-identical
		// to a serial per-vector run for every worker count and interval.
		br, err := p.RunBlockImplSum(s.Query(), v0, v1, s.Impl(), &out.Sum)
		if err != nil {
			return exec.Result{}, ParallelMicroAdaptiveStats{}, err
		}
		out.Qualifying += br.Qualifying
		out.Vectors += br.Vectors
		totalCycles += br.MaxCycles
		tuples := v1*vs - v0*vs
		if v1*vs > n {
			tuples = n - v0*vs
		}
		extra, err := s.AfterBlock(br, tuples, v1 == numVec, w0, engines)
		if err != nil {
			return exec.Result{}, ParallelMicroAdaptiveStats{}, err
		}
		totalCycles += extra
	}

	s.TraceFinal()
	out.Cycles = totalCycles
	out.Millis = w0.MillisOf(totalCycles)
	var merged pmu.Sample
	for i, e := range engines {
		merged = merged.Add(e.CPU().Sample().Sub(startSamples[i]))
	}
	out.Counters = merged
	st := s.Stats()
	st.Vectors = out.Vectors
	return out, st, nil
}
