package progopt

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// The host-parallel scheduler executes simulated cores on real goroutines,
// so the determinism contract gets its own matrix: for a fixed (Workers,
// mode) cell, results, cycles, optimizer stats, and every PMU counter must
// be bit-identical whether the host runs the wave on one OS thread or four,
// and whether the batch kernels run fused or per-operator. Fused vs unfused
// is the oracle relation of the kernel fusion; GOMAXPROCS 1 vs 4 is the
// oracle relation of the host pool (at GOMAXPROCS 1 the scheduler takes the
// serial inline path, so matching it proves the pool introduces no
// scheduling-order dependence). Run with -race to also check the pool for
// data races while it reproduces the reference bit patterns.

// detRun executes the three-predicate aggregate plan on a fresh engine in
// the given configuration.
func detRun(t *testing.T, workers int, mode Mode, noFuse bool) ExecResult {
	t.Helper()
	e, err := New(Config{VectorSize: 1024, Workers: workers, NoFuse: noFuse})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.GenerateTPCH(24*1024, 37, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(d, Scan("lineitem").
		Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.8))).
		Filter("l_discount", CmpLE, 0.05).
		Filter("l_quantity", CmpLT, 10).
		Sum("l_extendedprice * l_discount"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(q, ExecOptions{Mode: mode, Progressive: Progressive{Interval: 5}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDeterminismMatrix(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		for _, mode := range []Mode{ModeFixed, ModeProgressive, ModeMicroAdaptive} {
			// Reference: serial host (inline wave path), fused kernels.
			prev := runtime.GOMAXPROCS(1)
			ref := detRun(t, workers, mode, false)
			runtime.GOMAXPROCS(prev)
			if ref.Qualifying == 0 {
				t.Fatalf("workers=%d/%s: reference selected nothing", workers, mode)
			}
			for _, gmp := range []int{1, 4} {
				for _, noFuse := range []bool{false, true} {
					name := fmt.Sprintf("workers=%d/%s/gomaxprocs=%d/nofuse=%v", workers, mode, gmp, noFuse)
					t.Run(name, func(t *testing.T) {
						defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gmp))
						got := detRun(t, workers, mode, noFuse)
						sameResult(t, name, ref.Result, got.Result)
						sameStats(t, name, ref.Stats, got.Stats)
						if ref.Impl != got.Impl {
							t.Errorf("impl stats diverge: ref %+v got %+v", ref.Impl, got.Impl)
						}
					})
				}
			}
		}
	}
}

// detServe runs the same plan through a workload server (its own core pool,
// block-granular scheduling) in the given configuration.
func detServe(t *testing.T, workers int, noFuse bool) ExecResult {
	t.Helper()
	e, err := New(Config{VectorSize: 1024, Workers: workers, NoFuse: noFuse})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.GenerateTPCH(24*1024, 37, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(e, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tk, err := srv.Submit(d, Scan("lineitem").
		Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.8))).
		Filter("l_discount", CmpLE, 0.05).
		Filter("l_quantity", CmpLT, 10).
		Sum("l_extendedprice * l_discount"),
		ExecOptions{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDeterminismMatrixServed extends the matrix to the served path: the
// server's pool must also be indifferent to host parallelism and fusion.
func TestDeterminismMatrixServed(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		prev := runtime.GOMAXPROCS(1)
		ref := detServe(t, workers, false)
		runtime.GOMAXPROCS(prev)
		for _, gmp := range []int{1, 4} {
			for _, noFuse := range []bool{false, true} {
				name := fmt.Sprintf("workers=%d/gomaxprocs=%d/nofuse=%v", workers, gmp, noFuse)
				t.Run(name, func(t *testing.T) {
					defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gmp))
					got := detServe(t, workers, noFuse)
					sameResult(t, name, ref.Result, got.Result)
					sameStats(t, name, ref.Stats, got.Stats)
				})
			}
		}
	}
}

// TestRunMicroAdaptiveMultiCoreError pins the refusal contract of the
// deprecated single-core entry point: the error must say why (per-vector
// cycle stats are not multi-core makespans) and name the supported route
// (ModeMicroAdaptive through Engine.Exec).
func TestRunMicroAdaptiveMultiCoreError(t *testing.T) {
	e, err := New(Config{VectorSize: 1024, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.GenerateTPCH(4096, 3, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.BuildScan(d, []Predicate{{Column: "l_quantity", Op: CmpLE, Int: 25}}, false)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = e.RunMicroAdaptive(q, Progressive{Interval: 3})
	if err == nil {
		t.Fatal("RunMicroAdaptive accepted a multi-core engine")
	}
	for _, want := range []string{"single-core", "Workers = 4", "ModeMicroAdaptive", "Exec"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
