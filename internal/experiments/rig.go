package experiments

import (
	"fmt"

	"progopt/internal/core"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/trace"
)

// rig bundles the simulated cores and engine for a sequence of measurements
// over the same bound data set. Between measurements the caches are flushed
// and the predictors reset, so every run starts cold, like the paper's
// separately executed queries. The config's Workers and ScalarExec knobs
// select the morsel-driven multi-core executor and the tuple-at-a-time row
// loop respectively; measurements dispatch accordingly.
type rig struct {
	cpu *cpu.CPU
	eng *exec.Engine
	// par is the morsel-driven multi-core executor, nil when Workers <= 1.
	par *exec.Parallel
	// opt is the optimizer-decision track when the config carries a trace
	// recorder, nil otherwise. Rigs within one recorder get uniquely prefixed
	// track names so sweeps over several rigs stay distinguishable.
	opt *trace.Track
}

func newRig(prof cpu.Profile, cfg Config) (*rig, error) {
	c, err := cpu.New(prof)
	if err != nil {
		return nil, err
	}
	e, err := exec.NewEngine(c, cfg.VectorSize)
	if err != nil {
		return nil, err
	}
	e.SetScalar(cfg.ScalarExec)
	r := &rig{cpu: c, eng: e}
	if cfg.Workers > 1 {
		par, err := exec.NewParallel(prof, cfg.Workers, cfg.VectorSize)
		if err != nil {
			return nil, err
		}
		par.SetScalar(cfg.ScalarExec)
		r.par = par
	}
	if cfg.Trace != nil {
		// Track names embed the recorder's current track count so each rig
		// in a sweep gets its own set (determinism: rigs are created in
		// program order, never concurrently).
		id := cfg.Trace.NumTracks()
		workers := cfg.Workers
		if workers < 1 {
			workers = 1
		}
		cores := make([]*trace.Track, workers)
		for i := range cores {
			cores[i] = cfg.Trace.NewTrack(fmt.Sprintf("rig%d/core %d", id, i))
		}
		r.opt = cfg.Trace.NewTrack(fmt.Sprintf("rig%d/optimizer", id))
		if r.par != nil {
			r.par.SetTrace(cores)
		} else {
			r.eng.SetTrace(cores[0])
		}
	}
	return r, nil
}

// withVector returns the config with a different vector size (for sweeps).
func (c Config) withVector(vs int) Config {
	c.VectorSize = vs
	return c
}

func (r *rig) bind(q *exec.Query) error {
	return r.eng.BindQuery(q)
}

// cold resets transient hardware state (not counters) before a measurement.
func (r *rig) cold() {
	r.cpu.FlushCaches()
	r.cpu.ResetPredictor()
	if r.par != nil {
		r.par.Cold()
	}
}

// measureBaseline runs q under the given operator permutation with the
// common (fixed-order) execution pattern and returns the result.
func (r *rig) measureBaseline(q *exec.Query, perm []int) (exec.Result, error) {
	qo, err := q.WithOrder(perm)
	if err != nil {
		return exec.Result{}, err
	}
	r.cold()
	if r.par != nil {
		return r.par.Run(qo)
	}
	return r.eng.Run(qo)
}

// measureProgressive runs q under the given initial permutation with
// progressive optimization at the given re-optimization interval.
func (r *rig) measureProgressive(q *exec.Query, perm []int, reopInt int) (exec.Result, core.Stats, error) {
	return r.measureProgressiveOpts(q, perm, core.Options{ReopInterval: reopInt})
}

// measureProgressiveOpts is measureProgressive with full control over the
// driver options (exploration probes, validation knobs); the rig attaches
// its own trace track.
func (r *rig) measureProgressiveOpts(q *exec.Query, perm []int, opts core.Options) (exec.Result, core.Stats, error) {
	qo, err := q.WithOrder(perm)
	if err != nil {
		return exec.Result{}, core.Stats{}, err
	}
	r.cold()
	opts.Trace = r.opt
	if r.par != nil {
		res, pst, err := core.RunParallelProgressive(r.par, qo, opts)
		return res, pst.Stats, err
	}
	return core.RunProgressive(r.eng, qo, opts)
}

// millis converts simulated cycles to msec on the rig's clock.
func (r *rig) millis(cycles uint64) float64 { return r.cpu.MillisOf(cycles) }

func fmtMs(ms float64) string { return fmt.Sprintf("%.2f", ms) }
