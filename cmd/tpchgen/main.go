// Command tpchgen generates the TPC-H-shaped data set and writes each table
// in the engine's binary column format: v1 (plain columns) or v2 (the PCOL
// block format with per-column compression and zone maps).
//
// Usage:
//
//	tpchgen -rows 1000000 -seed 42 -ordering natural -out ./data
//	tpchgen -rows 1000000 -format v2 -blockrows 4096 -compress -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"progopt/internal/columnar"
	"progopt/internal/tpch"
)

func main() {
	var (
		rows      = flag.Int("rows", 1_000_000, "lineitem row count")
		seed      = flag.Int64("seed", 1, "generation seed")
		ordering  = flag.String("ordering", "natural", "lineitem row order: natural|sorted|clustered|random")
		out       = flag.String("out", ".", "output directory")
		format    = flag.String("format", "v1", "file format: v1 (plain) | v2 (compressed blocks + zone maps)")
		blockRows = flag.Int("blockrows", 4096, "rows per block (v2 only)")
		compress  = flag.Bool("compress", false, "print per-column compression statistics (v2 only)")
	)
	flag.Parse()
	if *format != "v1" && *format != "v2" {
		fatal(fmt.Errorf("unknown format %q (want v1 or v2)", *format))
	}
	if *compress && *format != "v2" {
		fatal(fmt.Errorf("-compress needs -format v2"))
	}

	d, err := tpch.Generate(tpch.Config{Lineitems: *rows, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	switch *ordering {
	case "natural":
	case "sorted":
		d = d.ReorderLineitem(tpch.OrderingShipdateSorted, *seed+1)
	case "clustered":
		d = d.ReorderLineitem(tpch.OrderingClusteredMonth, *seed+1)
	case "random":
		d = d.ReorderLineitem(tpch.OrderingRandom, *seed+1)
	default:
		fatal(fmt.Errorf("unknown ordering %q", *ordering))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, t := range []*columnar.Table{d.Lineitem, d.Orders, d.Part} {
		path := filepath.Join(*out, t.Name()+".pcol")
		if *format == "v2" {
			writeV2(path, t, *blockRows, *compress)
			continue
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := columnar.WriteTable(f, t); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d rows, %d columns, %.1f MB\n",
			path, t.NumRows(), t.NumCols(), float64(t.SizeBytes())/(1<<20))
	}
}

// writeV2 encodes the table into the PCOL v2 block format and writes it,
// optionally printing the per-column compression report.
func writeV2(path string, t *columnar.Table, blockRows int, compress bool) {
	enc, err := columnar.EncodeTable(t, blockRows)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := columnar.WriteEncoded(f, enc); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d rows, %d columns, %d blocks x %d rows, %.1f -> %.1f MB (%.2fx)\n",
		path, enc.NumRows(), len(enc.Columns()), enc.NumBlocks(), enc.BlockRows(),
		float64(enc.PlainBytes())/(1<<20), float64(enc.EncodedBytes())/(1<<20),
		float64(enc.PlainBytes())/float64(enc.EncodedBytes()))
	if !compress {
		return
	}
	fmt.Printf("  %-18s %-8s %12s %12s %8s\n", "column", "encoding", "plain_bytes", "encoded_bytes", "ratio")
	for _, ec := range enc.Columns() {
		fmt.Printf("  %-18s %-8s %12d %12d %8.2f\n",
			ec.Name(), ec.Encoding(), ec.PlainBytes(), ec.EncodedBytes(),
			float64(ec.PlainBytes())/float64(ec.EncodedBytes()))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpchgen:", err)
	os.Exit(1)
}
