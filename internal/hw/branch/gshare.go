package branch

import "fmt"

// Gshare is a global-history two-level predictor: a register of the last h
// branch directions is XOR-folded with the branch-site id to index a table of
// two-bit saturating counters. Unlike the per-site saturating predictor, two
// branch sites (or two history patterns of one site) can alias onto the same
// counter, and correlated outcome patterns are learned through the history.
//
// The reproduction uses it for the Nehalem hardware profile: the paper's
// Figure 6 shows Nehalem as the one microarchitecture whose measured
// misprediction curve deviates from the saturating/Markov model, which is the
// signature of a history-based predictor on a selection loop.
type Gshare struct {
	historyBits int
	history     uint32
	table       []uint8 // two-bit counters, 0..3; >=2 predicts taken
	mask        uint32
	initVal     uint8
}

// NewGshare returns a gshare predictor with 2^tableBits two-bit counters and
// the given global-history length in bits (1..16, historyBits <= tableBits).
func NewGshare(tableBits, historyBits int) (*Gshare, error) {
	if tableBits < 2 || tableBits > 24 {
		return nil, fmt.Errorf("branch: gshare table bits %d out of range [2,24]", tableBits)
	}
	if historyBits < 1 || historyBits > 16 || historyBits > tableBits {
		return nil, fmt.Errorf("branch: gshare history bits %d invalid for table bits %d", historyBits, tableBits)
	}
	g := &Gshare{
		historyBits: historyBits,
		mask:        uint32(1)<<tableBits - 1,
		initVal:     2, // weakly taken
	}
	g.table = make([]uint8, g.mask+1)
	g.Reset()
	return g, nil
}

// MustGshare is NewGshare that panics on invalid configuration.
func MustGshare(tableBits, historyBits int) *Gshare {
	g, err := NewGshare(tableBits, historyBits)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Gshare) index(site int) uint32 {
	// Spread the site id so neighbouring sites don't collide trivially.
	h := uint32(site) * 2654435761
	return (h ^ g.history) & g.mask
}

// Observe implements Predictor.
func (g *Gshare) Observe(site int, taken bool) Outcome {
	idx := g.index(site)
	ctr := g.table[idx]
	out := Outcome{PredictedTaken: ctr >= 2, Taken: taken}
	if taken {
		if ctr < 3 {
			ctr++
		}
	} else if ctr > 0 {
		ctr--
	}
	g.table[idx] = ctr
	hmask := uint32(1)<<g.historyBits - 1
	g.history = (g.history << 1) & hmask
	if taken {
		g.history |= 1
	}
	return out
}

// ObserveN observes n consecutive branches at the given site, all with the
// same direction, and returns how many of them were mispredicted. Effects are
// exactly those of n Observe calls. A same-direction stream drives gshare to
// a fixed point: after historyBits steps the global history register is
// constant (all ones for taken, zero for not taken), pinning the table index,
// and the indexed counter then saturates in at most three more steps — after
// which every further observation predicts correctly and changes no state, so
// the loop exits early and the batch costs O(historyBits), not O(n).
func (g *Gshare) ObserveN(site int, taken bool, n int) int {
	var steady uint32
	var steadyCtr uint8
	if taken {
		steady = uint32(1)<<g.historyBits - 1
		steadyCtr = 3
	}
	mp := 0
	for i := 0; i < n; i++ {
		if g.Observe(site, taken).Mispredicted() {
			mp++
		}
		if g.history == steady && g.table[g.index(site)] == steadyCtr {
			break
		}
	}
	return mp
}

// Reset implements Predictor.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = g.initVal
	}
	g.history = 0
}

// Name implements Predictor.
func (g *Gshare) Name() string {
	return fmt.Sprintf("gshare-%dx%d", len(g.table), g.historyBits)
}
