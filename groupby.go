package progopt

import (
	"fmt"

	"progopt/internal/exec"
)

// GroupRow is one output row of a grouped aggregation.
type GroupRow struct {
	// Key is the group key.
	Key int64
	// Sum is the aggregated value and Count the contributing tuple count.
	Sum   float64
	Count int64
}

// RunGroupBy executes the query's filters and aggregates the survivors as
// SELECT groupCol, SUM(valueCol), COUNT(*) GROUP BY groupCol, returning the
// groups sorted by key plus the run's execution result.
func (e *Engine) RunGroupBy(d *Dataset, q *Query, groupCol, valueCol string) ([]GroupRow, Result, error) {
	g := d.d.Lineitem.Column(groupCol)
	v := d.d.Lineitem.Column(valueCol)
	if g == nil || v == nil {
		return nil, Result{}, fmt.Errorf("progopt: unknown column %q or %q", groupCol, valueCol)
	}
	// Size the hash table from the key domain (bounded by row count).
	distinct := 1024
	if n := d.d.Lineitem.NumRows(); n < distinct {
		distinct = n
	}
	gb, err := exec.NewGroupBy(e.cpu, g, v, distinct)
	if err != nil {
		return nil, Result{}, err
	}
	e.cpu.FlushCaches()
	e.cpu.ResetPredictor()
	res, err := e.eng.RunGroupBy(q.q, gb)
	if err != nil {
		return nil, Result{}, err
	}
	rows := make([]GroupRow, len(res.Groups))
	for i, gr := range res.Groups {
		rows[i] = GroupRow{Key: gr.Key, Sum: gr.Sum, Count: gr.Count}
	}
	return rows, toResult(res.Result), nil
}
