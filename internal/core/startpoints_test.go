package core

import (
	"math"
	"testing"
)

func TestStartPointGenValidation(t *testing.T) {
	if _, err := NewStartPointGen(nil, nil, nil); err == nil {
		t.Error("empty dimensions accepted")
	}
	if _, err := NewStartPointGen([]float64{0}, []float64{1, 2}, []float64{0.5}); err == nil {
		t.Error("mismatched dimensions accepted")
	}
	if _, err := NewStartPointGen([]float64{1}, []float64{0}, []float64{0.5}); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestStartPointSequencePaperFigure9(t *testing.T) {
	// 2-D unit box, null point at the centre of a 25%-selectivity query.
	lo := []float64{0, 0}
	hi := []float64{1, 1}
	null := []float64{0.5, 0.5}
	g, err := NewStartPointGen(lo, hi, null)
	if err != nil {
		t.Fatal(err)
	}
	// C1 = null hypothesis.
	first := g.Next()
	if first[0] != 0.5 || first[1] != 0.5 {
		t.Fatalf("first point %v, want null (0.5,0.5)", first)
	}
	// Next 4 = vertices.
	vertices := map[[2]float64]bool{}
	for i := 0; i < 4; i++ {
		p := g.Next()
		vertices[[2]float64{p[0], p[1]}] = true
	}
	for _, want := range [][2]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		if !vertices[want] {
			t.Errorf("vertex %v missing from %v", want, vertices)
		}
	}
	// Then centroids of the four equal quadrants (C2..C5), in any order.
	quads := map[[2]float64]bool{}
	for i := 0; i < 4; i++ {
		p := g.Next()
		quads[[2]float64{p[0], p[1]}] = true
	}
	for _, want := range [][2]float64{{0.25, 0.25}, {0.75, 0.25}, {0.25, 0.75}, {0.75, 0.75}} {
		if !quads[want] {
			t.Errorf("quadrant centroid %v missing from %v", want, quads)
		}
	}
}

func TestStartPointsStayInBox(t *testing.T) {
	lo := []float64{0.1, 0.2, 0.0}
	hi := []float64{0.9, 0.6, 1.0}
	g, err := NewStartPointGen(lo, hi, []float64{0.5, 0.4, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p := g.Next()
		for j := range p {
			if p[j] < lo[j]-1e-12 || p[j] > hi[j]+1e-12 {
				t.Fatalf("point %d dim %d = %v outside [%v,%v]", i, j, p[j], lo[j], hi[j])
			}
		}
	}
}

func TestStartPointsNullClamped(t *testing.T) {
	g, err := NewStartPointGen([]float64{0.2}, []float64{0.8}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if p := g.Next(); p[0] != 0.8 {
		t.Errorf("null point %v, want clamped 0.8", p[0])
	}
}

func TestStartPointsSpreadOut(t *testing.T) {
	// The interior points (excluding vertices) must not collapse: minimum
	// pairwise distance over the first 20 interior points stays positive.
	g, err := NewStartPointGen([]float64{0, 0}, []float64{1, 1}, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	var pts [][]float64
	for i := 0; i < 25; i++ {
		p := g.Next()
		interior := true
		for j := range p {
			if p[j] == 0 || p[j] == 1 {
				interior = false
			}
		}
		if interior {
			pts = append(pts, p)
		}
	}
	if len(pts) < 10 {
		t.Fatalf("only %d interior points of 25", len(pts))
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := math.Hypot(pts[i][0]-pts[j][0], pts[i][1]-pts[j][1])
			if d < 1e-9 {
				t.Fatalf("points %d and %d coincide at %v", i, j, pts[i])
			}
		}
	}
}

func TestStartPointsHighDimensionFallback(t *testing.T) {
	// 8 dimensions exceeds maxSplitDims: the Halton fallback must still
	// produce in-box, distinct points.
	d := 8
	lo := make([]float64, d)
	hi := make([]float64, d)
	null := make([]float64, d)
	for i := range hi {
		hi[i] = 1
		null[i] = 0.5
	}
	g, err := NewStartPointGen(lo, hi, null)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 80; i++ {
		p := g.Next()
		key := ""
		for j := range p {
			if p[j] < 0 || p[j] > 1 {
				t.Fatalf("point outside box: %v", p)
			}
			key += string(rune('a' + int(p[j]*25)))
		}
		_ = seen[key]
		seen[key] = true
	}
	if len(seen) < 40 {
		t.Errorf("high-dimensional fallback produced only %d distinct coarse cells", len(seen))
	}
}
