package exec

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
	"progopt/internal/trace"
)

// Aggregate computes a running float64 sum over qualifying tuples.
type Aggregate struct {
	// Cols are the input columns; the engine loads each per qualifying tuple.
	Cols []*columnar.Column
	// F computes the tuple's contribution to the sum.
	F func(row int) float64
	// CostInstr is the per-tuple arithmetic cost (default 3 if zero).
	CostInstr int
}

func (a *Aggregate) cost() int {
	if a.CostInstr > 0 {
		return a.CostInstr
	}
	return 3
}

// Query is a driving-table pipeline: an ordered list of filtering operators
// (predicates and FK joins) over one table, optionally aggregating the
// survivors. Ops order is the PEO the optimizer permutes.
type Query struct {
	// Table is the driving (probe-side) table.
	Table *columnar.Table
	// Ops is the evaluation order.
	Ops []Op
	// Agg, if non-nil, sums over qualifying tuples.
	Agg *Aggregate
}

// Validate checks that the query is runnable.
func (q *Query) Validate() error {
	if q.Table == nil {
		return fmt.Errorf("exec: query has no table")
	}
	if len(q.Ops) == 0 {
		return fmt.Errorf("exec: query has no operators")
	}
	for i, op := range q.Ops {
		if op == nil {
			return fmt.Errorf("exec: nil operator at position %d", i)
		}
	}
	return nil
}

// WithOrder returns a copy of the query whose operators are permuted: new
// position i holds old operator perm[i].
func (q *Query) WithOrder(perm []int) (*Query, error) {
	if len(perm) != len(q.Ops) {
		return nil, fmt.Errorf("exec: permutation length %d for %d ops", len(perm), len(q.Ops))
	}
	seen := make([]bool, len(perm))
	ops := make([]Op, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(q.Ops) || seen[p] {
			return nil, fmt.Errorf("exec: invalid permutation %v", perm)
		}
		seen[p] = true
		ops[i] = q.Ops[p]
	}
	return &Query{Table: q.Table, Ops: ops, Agg: q.Agg}, nil
}

// OpNames returns the operator names in evaluation order.
func (q *Query) OpNames() []string {
	names := make([]string, len(q.Ops))
	for i, op := range q.Ops {
		names[i] = op.Name()
	}
	return names
}

// VectorResult reports one vector's execution.
type VectorResult struct {
	// Qualifying is the number of tuples that passed all operators.
	Qualifying int64
	// Sum is the aggregate contribution of the vector.
	Sum float64
}

// Result reports a full query execution.
type Result struct {
	// Qualifying is the output cardinality.
	Qualifying int64
	// Sum is the aggregate value.
	Sum float64
	// Cycles is the simulated cycle count consumed by the run.
	Cycles uint64
	// Millis is Cycles at the profile's clock.
	Millis float64
	// Counters is the PMU delta over the run.
	Counters pmu.Sample
	// Vectors is the number of vectors executed.
	Vectors int
}

// Engine executes queries vector-at-a-time on a simulated CPU. By default a
// vector runs as a batch-kernel pipeline over a reusable selection vector
// (see batch.go); SetScalar restores the seed's tuple-at-a-time row loop.
type Engine struct {
	cpu        *cpu.CPU
	vectorSize int
	scalar     bool
	// noFuse disables the fused batch pipeline (see fuse.go), keeping the
	// per-op EvalBatch path as the property-test oracle. Fused and unfused
	// runs are bit-identical in results, cycles, and every PMU counter.
	noFuse bool
	// selA/selB are the reusable selection-vector buffers of the batch
	// pipeline; mask is the branch-free batch kernel's qualification mask.
	selA, selB []int32
	mask       []bool
	// preds caches per-vector *Predicate type assertions of the scalar row
	// loop, so the per-(row, op) dispatch is a direct call for the common
	// operator kind instead of an interface call.
	preds []*Predicate
	// sortRun, when non-nil, collects every qualifying row into an attached
	// Top-K/OrderBy state (see sort.go). Drivers attach a fresh state per
	// run and detach it afterwards; the engine itself holds no sort state
	// across runs.
	sortRun *SortRun
	// stor, when non-nil, is the attached storage-scan plan: zone-map skip
	// verdicts per vector plus this core's private storage-tier view (see
	// storage.go). Same lifecycle as sortRun.
	stor *StorageScan
	// tr, when non-nil, receives this core's execution spans (vectors,
	// operators, morsels) keyed on the core's simulated clock. Recording is a
	// pure observer — only Cycles() reads on the enabled path — so traced and
	// untraced runs are bit-identical; a nil track is the zero-overhead
	// disabled state.
	tr *trace.Track
}

// NewEngine returns an engine with the given vector size (tuples per vector).
func NewEngine(c *cpu.CPU, vectorSize int) (*Engine, error) {
	if c == nil {
		return nil, fmt.Errorf("exec: nil CPU")
	}
	if vectorSize <= 0 {
		return nil, fmt.Errorf("exec: non-positive vector size %d", vectorSize)
	}
	return &Engine{cpu: c, vectorSize: vectorSize}, nil
}

// SetScalar switches between the batch-kernel pipeline (default, scalar ==
// false) and the tuple-at-a-time row loop of the seed engine. Both modes
// produce bit-identical results and identical PMU load/branch counts; only
// access interleaving (and therefore host wall-clock) differs.
func (e *Engine) SetScalar(scalar bool) { e.scalar = scalar }

// Scalar reports whether the engine runs the tuple-at-a-time row loop.
func (e *Engine) Scalar() bool { return e.scalar }

// SetFuse enables (default) or disables the fused batch pipeline: specialized
// Filter→FKJoin→aggregate kernels with run-length-encoded branch retirement.
// Both settings produce bit-identical results, cycles, and PMU counters; the
// unfused path exists as the equivalence oracle. Ignored by the scalar row
// loop, which is its own reference semantics.
func (e *Engine) SetFuse(enable bool) { e.noFuse = !enable }

// Fused reports whether the batch pipeline runs its fused kernels.
func (e *Engine) Fused() bool { return !e.noFuse }

// MustEngine is NewEngine that panics on error.
func MustEngine(c *cpu.CPU, vectorSize int) *Engine {
	e, err := NewEngine(c, vectorSize)
	if err != nil {
		panic(err)
	}
	return e
}

// CPU exposes the engine's simulated core.
func (e *Engine) CPU() *cpu.CPU { return e.cpu }

// SetTrace attaches (or, with nil, detaches) the event track this simulated
// core's execution spans are recorded on. The track must have a single writer
// at any instant: attach per core, and only while the core is quiesced.
func (e *Engine) SetTrace(t *trace.Track) {
	e.tr = t
	e.wireStorageObserver()
}

// Trace returns the attached event track (nil when tracing is disabled).
func (e *Engine) Trace() *trace.Track { return e.tr }

// SetSortRun attaches (or, with nil, detaches) the order-by collector every
// qualifying row of subsequent vectors feeds. The caller owns the state's
// lifecycle: one fresh SortRun per core per run, detached after the
// barrier.
func (e *Engine) SetSortRun(r *SortRun) { e.sortRun = r }

// VectorSize returns tuples per vector.
func (e *Engine) VectorSize() int { return e.vectorSize }

// NumVectors returns how many vectors cover the query's table.
func (e *Engine) NumVectors(q *Query) int {
	n := q.Table.NumRows()
	return (n + e.vectorSize - 1) / e.vectorSize
}

// loopOverheadInstr is the per-tuple loop bookkeeping cost (increment,
// bounds arithmetic).
const loopOverheadInstr = 2

// checkVector validates the query and the [lo, hi) range.
func (e *Engine) checkVector(q *Query, lo, hi int) error {
	if err := q.Validate(); err != nil {
		return err
	}
	n := q.Table.NumRows()
	if lo < 0 || hi > n || lo > hi {
		return fmt.Errorf("exec: vector [%d,%d) outside table of %d rows", lo, hi, n)
	}
	return nil
}

// RunVector executes rows [lo, hi) of the query in its current operator
// order, dispatching to the batch-kernel pipeline or the scalar row loop per
// the engine mode. Branch sites are operator positions; site len(Ops) is the
// loop-back branch.
func (e *Engine) RunVector(q *Query, lo, hi int) (VectorResult, error) {
	if err := e.checkVector(q, lo, hi); err != nil {
		return VectorResult{}, err
	}
	if e.skipVector(lo, hi) {
		if e.tr != nil {
			e.tr.Instant("skip", e.cpu.Cycles(), trace.A("lo", lo), trace.A("rows", hi-lo))
		}
		return VectorResult{}, nil
	}
	if e.tr == nil {
		if e.scalar {
			return e.runVectorScalar(q, lo, hi), nil
		}
		return e.runVectorBatch(q, lo, hi)
	}
	t0 := e.cpu.Cycles()
	var vr VectorResult
	var err error
	if e.scalar {
		vr = e.runVectorScalar(q, lo, hi)
	} else {
		vr, err = e.runVectorBatch(q, lo, hi)
	}
	if err != nil {
		return vr, err
	}
	e.tr.Span("vector", t0, e.cpu.Cycles(),
		trace.A("lo", lo), trace.A("rows", hi-lo), trace.A("qual", vr.Qualifying))
	return vr, nil
}

// RunVectorScalar executes rows [lo, hi) with the tuple-at-a-time row loop
// regardless of the engine mode (the seed engine's interpreted scan).
func (e *Engine) RunVectorScalar(q *Query, lo, hi int) (VectorResult, error) {
	if err := e.checkVector(q, lo, hi); err != nil {
		return VectorResult{}, err
	}
	if e.skipVector(lo, hi) {
		return VectorResult{}, nil
	}
	return e.runVectorScalar(q, lo, hi), nil
}

// RunVectorBatch executes rows [lo, hi) with the batch-kernel pipeline
// regardless of the engine mode.
func (e *Engine) RunVectorBatch(q *Query, lo, hi int) (VectorResult, error) {
	if err := e.checkVector(q, lo, hi); err != nil {
		return VectorResult{}, err
	}
	if e.skipVector(lo, hi) {
		return VectorResult{}, nil
	}
	return e.runVectorBatch(q, lo, hi)
}

func (e *Engine) runVectorScalar(q *Query, lo, hi int) VectorResult {
	c := e.cpu
	ops := q.Ops
	loopSite := len(ops)
	// Hoist the operator type dispatch out of the row loop: predicates (the
	// common case) evaluate through a direct call. Simulation order and
	// effects per (row, op) are untouched.
	preds := e.preds[:0]
	for _, op := range ops {
		p, _ := op.(*Predicate)
		preds = append(preds, p)
	}
	e.preds = preds
	// With a site-independent predictor the always-taken back-edge branch can
	// be retired in one batched call after the loop: its observations commute
	// with the operator sites' and every counter is an order-independent sum.
	// Global-history predictors keep the interleaved per-row retirement — the
	// scalar loop is the reference semantics.
	deferEdge := c.SiteIndependentPredictor()
	var res VectorResult
	for row := lo; row < hi; row++ {
		pass := true
		for si := 0; si < len(ops); si++ {
			var ok bool
			if p := preds[si]; p != nil {
				ok = p.Eval(c, row)
			} else {
				ok = ops[si].Eval(c, row)
			}
			c.CondBranch(si, !ok)
			if !ok {
				pass = false
				break
			}
		}
		if pass {
			if q.Agg != nil {
				for _, col := range q.Agg.Cols {
					c.Load(col.Addr(row))
				}
				c.Exec(q.Agg.cost())
				res.Sum += q.Agg.F(row)
			}
			if r := e.sortRun; r != nil {
				for _, k := range r.s.Keys {
					c.Load(k.Col.Addr(row))
				}
				r.AddOne(c, row)
			}
			res.Qualifying++
		}
		if !deferEdge {
			c.Exec(loopOverheadInstr)
			c.CondBranch(loopSite, true)
		}
	}
	if deferEdge {
		c.Exec(loopOverheadInstr * (hi - lo))
		c.CondBranchN(loopSite, true, hi-lo)
	}
	return res
}

// Run executes the whole table vector by vector under a fixed operator order
// (the paper's "common execution pattern" baseline) and returns totals.
func (e *Engine) Run(q *Query) (Result, error) {
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	start := e.cpu.Sample()
	startCycles := e.cpu.Cycles()
	var out Result
	n := q.Table.NumRows()
	for lo := 0; lo < n; lo += e.vectorSize {
		hi := lo + e.vectorSize
		if hi > n {
			hi = n
		}
		vr, err := e.RunVector(q, lo, hi)
		if err != nil {
			return Result{}, err
		}
		out.Qualifying += vr.Qualifying
		out.Sum += vr.Sum
		out.Vectors++
	}
	out.Cycles = e.cpu.Cycles() - startCycles
	out.Millis = e.cpu.MillisOf(out.Cycles)
	out.Counters = e.cpu.Sample().Sub(start)
	if e.tr != nil {
		e.tr.Span("run", startCycles, e.cpu.Cycles(),
			trace.A("vectors", out.Vectors), trace.A("qual", out.Qualifying))
	}
	return out, nil
}

// BindQuery binds the query's table columns and any join filter columns that
// are still unbound into the CPU's address space, and flushes caches so runs
// start cold (the paper's scans never reuse data between runs anyway).
// Binding state is tracked explicitly per column (columnar.Column.Bound), so
// a column legitimately bound at address 0 is never re-bound.
func (e *Engine) BindQuery(q *Query) error {
	if err := q.Table.BindAll(e.cpu); err != nil {
		return err
	}
	for _, op := range q.Ops {
		j, ok := op.(*FKJoin)
		if !ok {
			continue
		}
		cols := append([]*columnar.Column(nil), j.Via...)
		if j.Filter != nil {
			cols = append(cols, j.Filter.Col)
		}
		for _, col := range cols {
			if col.Bound() {
				continue
			}
			base, err := e.cpu.Alloc(col.SizeBytes())
			if err != nil {
				return err
			}
			col.Bind(base)
		}
	}
	e.cpu.FlushCaches()
	return nil
}
