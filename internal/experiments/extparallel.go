package experiments

import (
	"fmt"

	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// ExtParallel measures morsel-driven multi-core scaling: TPC-H Q6 from its
// worst PEO, executed serially and on 2/4/8 simulated cores, with and
// without progressive re-optimization. Reported times are makespans (the
// slowest core); the progressive runs merge per-core PMU deltas at every
// block boundary, so the estimator sees aggregate counters — the scenario
// the paper's §7 names as future work and Polynesia-style co-design argues
// for. Results are bit-identical across worker counts; only time changes.
func ExtParallel(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	rows := 256 * cfg.VectorSize
	if cfg.Quick {
		// Even at quick scale the table must span several optimization
		// blocks for the widest sweep entry (8 workers x ReopInterval 10 =
		// 80 vectors per block), or the progressive column would silently
		// measure an unoptimized run.
		rows = 192 * cfg.VectorSize
	}
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	q, err := exec.Q6(d)
	if err != nil {
		return nil, err
	}
	// Worst-ish initial order: reversed identity.
	desc := make([]int, len(q.Ops))
	for i := range desc {
		desc[i] = len(desc) - 1 - i
	}

	rep := &Report{
		ID:      "ext-parallel",
		Title:   "Extension: morsel-driven multi-core scaling (Q6, worst initial PEO)",
		Columns: []string{"workers", "base_ms", "prog_ms", "base_speedup", "qualifying"},
		Notes: []string{
			fmt.Sprintf("%d lineitems; makespan of the slowest simulated core; ReopInt 10 per core", rows),
			"progressive estimation inverts cost models over PMU counters merged across cores",
		},
	}

	var serialMs float64
	var serialQual int64
	for _, workers := range []int{1, 2, 4, 8} {
		wcfg := cfg
		wcfg.Workers = workers
		r, err := newRig(cpu.ScaledXeon(), wcfg)
		if err != nil {
			return nil, err
		}
		if err := r.bind(q); err != nil {
			return nil, err
		}
		base, err := r.measureBaseline(q, desc)
		if err != nil {
			return nil, err
		}
		prog, _, err := r.measureProgressive(q, desc, 10)
		if err != nil {
			return nil, err
		}
		if workers == 1 {
			serialMs = base.Millis
			serialQual = base.Qualifying
		}
		if base.Qualifying != serialQual || prog.Qualifying != serialQual {
			return nil, fmt.Errorf("experiments: parallel run changed the result (%d/%d vs %d)",
				base.Qualifying, prog.Qualifying, serialQual)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", workers), fmtMs(base.Millis), fmtMs(prog.Millis),
			fmtF(serialMs / base.Millis), fmt.Sprintf("%d", base.Qualifying),
		})
	}
	return []*Report{rep}, nil
}
