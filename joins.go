package progopt

import (
	"fmt"

	"progopt/internal/core"
	"progopt/internal/exec"
	"progopt/internal/tpch"
)

// ShuffleWindow returns a copy of the data set whose lineitem rows are
// permuted by a windowed Knuth shuffle over the current order: window 1
// keeps the order, larger windows progressively destroy locality (the
// paper's §5.5 sortedness axis).
func (d *Dataset) ShuffleWindow(window int, seed int64) *Dataset {
	return &Dataset{d: d.d.ShuffleLineitemWindow(window, seed)}
}

// JoinSpec specifies one foreign-key join from lineitem into a build table.
type JoinSpec struct {
	// Build is "orders" (co-clustered with lineitem in natural order) or
	// "part" (uniformly random access).
	Build string
	// FilterSelectivity in (0, 1] sets the build-side filter's selectivity.
	FilterSelectivity float64
}

// BuildPipeline builds a query over lineitem whose reorderable operators are
// the given predicates followed by the given FK joins (initial order as
// listed; the progressive optimizer may permute all of them).
func (e *Engine) BuildPipeline(d *Dataset, preds []Predicate, joins []JoinSpec) (*Query, error) {
	if len(preds)+len(joins) == 0 {
		return nil, fmt.Errorf("progopt: pipeline needs at least one operator")
	}
	var ops []exec.Op
	if len(preds) > 0 {
		pq, err := e.BuildScan(d, preds, false)
		if err != nil {
			return nil, err
		}
		ops = append(ops, pq.q.Ops...)
	}
	for _, js := range joins {
		if js.FilterSelectivity <= 0 || js.FilterSelectivity > 1 {
			return nil, fmt.Errorf("progopt: join filter selectivity %v outside (0,1]", js.FilterSelectivity)
		}
		var j *exec.FKJoin
		var err error
		switch js.Build {
		case "orders":
			cut := tpch.QuantileInt32(d.d.Orders.Column("o_orderdate"), js.FilterSelectivity)
			filter := &exec.Predicate{Col: d.d.Orders.Column("o_orderdate"), Op: exec.LE, I: int64(cut)}
			j, err = exec.NewFKJoin(e.cpu, d.d.Lineitem.Column("l_orderkey"), d.d.NumOrders, filter, "join-orders")
		case "part":
			cut := int64(50 * js.FilterSelectivity)
			filter := &exec.Predicate{Col: d.d.Part.Column("p_size"), Op: exec.LE, I: cut}
			j, err = exec.NewFKJoin(e.cpu, d.d.Lineitem.Column("l_partkey"), d.d.NumParts, filter, "join-part")
		default:
			return nil, fmt.Errorf("progopt: unknown build table %q", js.Build)
		}
		if err != nil {
			return nil, err
		}
		ops = append(ops, j)
	}
	q := &exec.Query{Table: d.d.Lineitem, Ops: ops}
	if err := e.eng.BindQuery(q); err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// SortednessReport classifies the locality of a join's build-side accesses
// from its sampled miss count (§5.5-§5.6).
type SortednessReport struct {
	// Ratio is sampled misses / Eq.(1)-predicted random misses.
	Ratio float64
	// Class is "co-clustered", "partially-clustered", or "random".
	Class string
}

// DetectJoinLocality runs the query once, attributes its L3 misses to the
// given build table, and classifies the access pattern against the paper's
// random-access prediction (Eq. 1). The returned result is the measurement
// run's result.
func (e *Engine) DetectJoinLocality(q *Query, d *Dataset, build string) (Result, SortednessReport, error) {
	var buildTuples int
	switch build {
	case "orders":
		buildTuples = d.d.NumOrders
	case "part":
		buildTuples = d.d.NumParts
	default:
		return Result{}, SortednessReport{}, fmt.Errorf("progopt: unknown build table %q", build)
	}
	res, err := e.Run(q)
	if err != nil {
		return Result{}, SortednessReport{}, err
	}
	rep := core.DetectSortedness(
		cacheGeometry(e.cpu.Profile()),
		buildTuples, 8, d.Lineitems(),
		float64(res.Counters["l3_miss"]),
	)
	return res, SortednessReport{Ratio: rep.Ratio, Class: rep.Class.String()}, nil
}
