package experiments

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/datagen"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
)

// Fig02 reproduces Figure 2: the six branch- and cache-related counters of a
// single-predicate selection over the full selectivity range, each
// normalized to percent (branch events as % of tuples, L3 accesses as % of
// their plateau).
func Fig02(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	n := 128 * cfg.VectorSize
	rng := datagen.NewRNG(cfg.Seed)
	tb := columnar.NewTable("t")
	tb.MustAddColumn(columnar.NewInt64("v", datagen.UniformInt64(rng, n, 0, 999)))
	// The summed column is read only for qualifying tuples: the
	// conditional-read pattern whose L3 accesses rise with selectivity and
	// plateau once every line is touched (~20%), §3.1.
	tb.MustAddColumn(columnar.NewFloat64("x", datagen.UniformFloat64(rng, n, 0, 1)))

	step := 5
	if cfg.Quick {
		step = 20
	}

	r, err := newRig(cpu.ScaledXeon(), cfg)
	if err != nil {
		return nil, err
	}
	type row struct {
		sel                              float64
		l3, bt, bnt, mp, mpTak, mpNotTak float64
	}
	var rows []row
	maxL3 := 0.0
	for s := 0; s <= 100; s += step {
		// "v < s*10" has selectivity s% on uniform [0,999].
		xs := tb.Column("x").F64()
		q := &exec.Query{
			Table: tb,
			Ops:   []exec.Op{&exec.Predicate{Col: tb.Column("v"), Op: exec.LT, I: int64(s * 10)}},
			Agg: &exec.Aggregate{
				Cols: []*columnar.Column{tb.Column("x")},
				F:    func(row int) float64 { return xs[row] },
			},
		}
		if err := r.bind(q); err != nil {
			return nil, err
		}
		r.cold()
		res, err := r.eng.Run(q)
		if err != nil {
			return nil, err
		}
		c := res.Counters
		nf := float64(n)
		// Exclude the fully predictable loop branch so percentages reflect
		// the predicate's branch, matching the paper's presentation.
		rw := row{
			sel:      float64(s),
			l3:       float64(c.Get(pmu.L3Access)),
			bt:       (float64(c.Get(pmu.BrTaken)) - nf) / nf * 100,
			bnt:      float64(c.Get(pmu.BrNotTaken)) / nf * 100,
			mp:       float64(c.Get(pmu.BrMP)) / nf * 100,
			mpTak:    float64(c.Get(pmu.BrMPTaken)) / nf * 100,
			mpNotTak: float64(c.Get(pmu.BrMPNotTaken)) / nf * 100,
		}
		if rw.l3 > maxL3 {
			maxL3 = rw.l3
		}
		rows = append(rows, rw)
	}
	rep := &Report{
		ID:    "fig02",
		Title: "Counter overview: single selection, event counts in % (branch events per tuple, L3 of plateau)",
		Columns: []string{"sel_pct", "l3_access_pct", "br_taken_pct", "br_not_taken_pct",
			"br_mp_pct", "br_taken_mp_pct", "br_not_taken_mp_pct"},
		Notes: []string{fmt.Sprintf("%d tuples, int64 column, simulated ScaledXeon", n)},
	}
	for _, rw := range rows {
		l3pct := 0.0
		if maxL3 > 0 {
			l3pct = rw.l3 / maxL3 * 100
		}
		rep.Rows = append(rep.Rows, []string{
			fmtF(rw.sel), fmt.Sprintf("%.1f", l3pct), fmt.Sprintf("%.1f", rw.bt),
			fmt.Sprintf("%.1f", rw.bnt), fmt.Sprintf("%.1f", rw.mp),
			fmt.Sprintf("%.1f", rw.mpTak), fmt.Sprintf("%.1f", rw.mpNotTak),
		})
	}
	return []*Report{rep}, nil
}
