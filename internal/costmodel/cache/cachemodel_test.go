package cache

import (
	"math"
	"testing"
	"testing/quick"
)

func geo() Geometry { return MustGeometry(64, 16384) } // 1 MB L3 in lines

func TestGeometryValidation(t *testing.T) {
	if _, err := NewGeometry(0, 10); err == nil {
		t.Error("zero line size accepted")
	}
	if _, err := NewGeometry(64, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewGeometry(64, 16384); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
}

func TestLines(t *testing.T) {
	g := geo()
	if got := g.Lines(16, 4); got != 1 {
		t.Errorf("16x4B = %v lines, want 1", got)
	}
	if got := g.Lines(17, 4); got != 2 {
		t.Errorf("17x4B = %v lines, want 2", got)
	}
	if got := g.Lines(0, 8); got != 0 {
		t.Errorf("0 tuples = %v lines, want 0", got)
	}
	if got := g.Lines(1000, 8); got != 125 {
		t.Errorf("1000x8B = %v lines, want 125", got)
	}
}

func TestCondReadExtremes(t *testing.T) {
	g := geo()
	n := 100000
	// access=1 touches every line with no random component.
	full := g.CondReadAccesses(n, 8, 1)
	if math.Abs(full.Touched-g.Lines(n, 8)) > 1e-6 {
		t.Errorf("access=1 touched %v lines, want all %v", full.Touched, g.Lines(n, 8))
	}
	if full.Random > 1e-6 {
		t.Errorf("access=1 random misses %v, want 0", full.Random)
	}
	// access=0 touches nothing.
	if z := g.CondReadAccesses(n, 8, 0); z.Accesses != 0 {
		t.Errorf("access=0 accesses %v, want 0", z.Accesses)
	}
	// Clamps access > 1.
	if c := g.CondReadAccesses(n, 8, 1.5); math.Abs(c.Accesses-full.Accesses) > 1e-9 {
		t.Error("access > 1 not clamped")
	}
}

func TestCondReadPlateau(t *testing.T) {
	// The paper's Figure 2 shape: accesses rise with selectivity and plateau
	// once every line is touched (~20% for 8-byte values).
	g := geo()
	n := 100000
	at := func(a float64) float64 { return g.CondReadAccesses(n, 8, a).Accesses }
	if !(at(0.001) < at(0.01) && at(0.01) < at(0.1)) {
		t.Error("accesses not increasing at low selectivity")
	}
	plateau := at(1)
	if math.Abs(at(0.5)-plateau) > plateau*0.01 {
		t.Errorf("no plateau: at(0.5)=%v, at(1)=%v", at(0.5), plateau)
	}
	// Mid-range overshoot from double-counted randoms: accesses around the
	// knee exceed touched lines.
	mid := g.CondReadAccesses(n, 8, 0.08)
	if mid.Accesses <= mid.Touched {
		t.Error("random misses not double counted")
	}
}

func TestCondReadRandomPeak(t *testing.T) {
	// Random component peaks where pTouch=0.5 and vanishes at the ends.
	g := geo()
	n := 1 << 20
	peak := 0.0
	for a := 0.001; a < 1; a *= 1.3 {
		r := g.CondReadAccesses(n, 8, a).Random
		if r > peak {
			peak = r
		}
	}
	lines := g.Lines(n, 8)
	if math.Abs(peak-lines/4) > lines*0.02 {
		t.Errorf("random peak %v, want ~lines/4 = %v", peak, lines/4)
	}
}

func TestYao(t *testing.T) {
	g := geo()
	// One access touches exactly one line.
	if got := g.Yao(1000000, 8, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("Yao(1 access) = %v", got)
	}
	// Infinite accesses converge to all lines.
	lines := g.Lines(100000, 8)
	if got := g.Yao(100000, 8, 100000000); math.Abs(got-lines) > lines*0.001 {
		t.Errorf("Yao(many) = %v, want ~%v", got, lines)
	}
	// Monotone in r.
	if g.Yao(100000, 8, 100) >= g.Yao(100000, 8, 10000) {
		t.Error("Yao not monotone in accesses")
	}
	if g.Yao(0, 8, 10) != 0 || g.Yao(100, 8, 0) != 0 {
		t.Error("Yao degenerate cases wrong")
	}
}

func TestRandomMissesRegimes(t *testing.T) {
	g := geo() // capacity 16384 lines = 1 MB
	// Small relation (fits in cache): misses equal distinct lines touched
	// (cold misses only).
	small := 1000 // 8 KB => 125 lines << capacity
	got := g.RandomMisses(small, 8, 100000)
	want := g.Yao(small, 8, 100000)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("fitting relation: misses %v, want Yao %v", got, want)
	}
	// Huge relation: misses ≈ r * (1 - cachedFraction).
	huge := 64 << 20 // 512 MB of 8B tuples
	r := 1000000
	got = g.RandomMisses(huge, 8, r)
	frac := 1 - float64(16384*64)/(float64(huge)*8)
	if math.Abs(got-float64(r)*frac) > 1 {
		t.Errorf("thrashing relation: misses %v, want %v", got, float64(r)*frac)
	}
	if got > float64(r) {
		t.Error("misses exceed accesses")
	}
}

func TestRandomMissesMonotoneInRelationSize(t *testing.T) {
	g := geo()
	f := func(rTuples uint32) bool {
		n := int(rTuples%1000000) + 1
		r := 50000
		m := g.RandomMisses(n, 8, r)
		return m >= 0 && m <= float64(r)+g.Lines(n, 8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// Larger relations never miss less.
	prev := -1.0
	for _, n := range []int{1000, 10000, 100000, 1000000, 10000000} {
		m := g.RandomMisses(n, 8, 50000)
		if m < prev-1e-9 {
			t.Errorf("misses decreased for larger relation: %v after %v", m, prev)
		}
		prev = m
	}
}

func TestJoinMisses(t *testing.T) {
	g := geo()
	rel := 4 << 20 // 32 MB build side
	// Probes must outnumber build-side lines for co-clustering to pay off
	// (TPC-H: ~4 lineitem probes per orders row, i.e. ~32 per line).
	r := 16 << 20
	random := g.JoinMisses(JoinRandom, rel, 8, r)
	co := g.JoinMisses(JoinCoClustered, rel, 8, r)
	if co*4 >= random {
		t.Errorf("co-clustered misses %v not ≪ random %v", co, random)
	}
	// Co-clustered bounded by min(probes, lines).
	if co > math.Min(float64(r), g.Lines(rel, 8)) {
		t.Errorf("co-clustered misses %v exceed bound", co)
	}
	// Few probes over a big sequential region: one miss per probe at most.
	if got := g.JoinMisses(JoinCoClustered, rel, 8, 10); got != 10 {
		t.Errorf("sparse co-clustered misses %v, want 10", got)
	}
}

func TestJoinMissesPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown kind did not panic")
		}
	}()
	geo().JoinMisses(JoinAccessKind(42), 100, 8, 10)
}

func TestSeqAccessesMatchesLines(t *testing.T) {
	g := geo()
	if g.SeqAccesses(1000, 8) != g.Lines(1000, 8) {
		t.Error("sequential accesses must equal covering lines")
	}
	if g.SeqMisses(1000, 8) != g.Lines(1000, 8) {
		t.Error("sequential misses must equal covering lines")
	}
}
