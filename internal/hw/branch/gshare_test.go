package branch

import (
	"math/rand"
	"testing"
)

func TestNewGshareValidation(t *testing.T) {
	cases := []struct {
		table, hist int
		ok          bool
	}{
		{12, 8, true},
		{2, 1, true},
		{24, 16, true},
		{1, 1, false},   // table too small
		{25, 8, false},  // table too large
		{12, 0, false},  // no history
		{12, 17, false}, // history too long
		{4, 8, false},   // history longer than table index
	}
	for _, c := range cases {
		_, err := NewGshare(c.table, c.hist)
		if c.ok != (err == nil) {
			t.Errorf("NewGshare(%d,%d): ok=%v, err=%v", c.table, c.hist, c.ok, err)
		}
	}
}

func TestGshareLearnsConstantStream(t *testing.T) {
	for _, taken := range []bool{true, false} {
		g := MustGshare(12, 8)
		for i := 0; i < 64; i++ {
			g.Observe(0, taken)
		}
		for i := 0; i < 100; i++ {
			if g.Observe(0, taken).Mispredicted() {
				t.Fatalf("gshare mispredicted constant stream (taken=%v) at %d", taken, i)
			}
		}
	}
}

// TestGshareLearnsPeriodicPattern: the defining capability gshare has over a
// per-site saturating counter — a short repeating pattern becomes perfectly
// predictable once each history context's counter saturates.
func TestGshareLearnsPeriodicPattern(t *testing.T) {
	g := MustGshare(12, 8)
	pattern := []bool{true, true, false, true, false, false, true, false}
	// Warm up several full periods.
	for i := 0; i < 64*len(pattern); i++ {
		g.Observe(0, pattern[i%len(pattern)])
	}
	mp := 0
	for i := 0; i < 10*len(pattern); i++ {
		if g.Observe(0, pattern[i%len(pattern)]).Mispredicted() {
			mp++
		}
	}
	if mp != 0 {
		t.Errorf("gshare mispredicted trained periodic pattern %d times", mp)
	}

	sat := MustSaturating(6, BiasNone)
	for i := 0; i < 64*len(pattern); i++ {
		sat.Observe(0, pattern[i%len(pattern)])
	}
	satMP := 0
	for i := 0; i < 10*len(pattern); i++ {
		if sat.Observe(0, pattern[i%len(pattern)]).Mispredicted() {
			satMP++
		}
	}
	if satMP == 0 {
		t.Error("saturating counter unexpectedly predicted the mixed periodic pattern perfectly")
	}
}

func TestGshareReset(t *testing.T) {
	g := MustGshare(12, 8)
	for i := 0; i < 100; i++ {
		g.Observe(0, false)
	}
	g.Reset()
	if out := g.Observe(0, true); !out.PredictedTaken {
		t.Error("fresh gshare should start weakly taken")
	}
}

func TestGshareDeviatesFromSaturatingMidRange(t *testing.T) {
	// On an i.i.d. 50% stream both predictors hover near 50% MP; the point of
	// this test is that they do NOT produce identical counts, i.e. the
	// Nehalem profile is a genuinely different mechanism.
	rng := rand.New(rand.NewSource(7))
	stream := make([]bool, 50000)
	for i := range stream {
		stream[i] = rng.Intn(100) >= 35
	}
	g := MustGshare(12, 8)
	s := MustSaturating(6, BiasNone)
	gm, sm := 0, 0
	for _, tk := range stream {
		if g.Observe(0, tk).Mispredicted() {
			gm++
		}
		if s.Observe(0, tk).Mispredicted() {
			sm++
		}
	}
	if gm == sm {
		t.Errorf("gshare and saturating produced identical misprediction counts (%d); profiles are not distinct", gm)
	}
}

func TestForArch(t *testing.T) {
	for _, a := range Arches() {
		p, err := ForArch(a)
		if err != nil {
			t.Fatalf("ForArch(%v): %v", a, err)
		}
		if p.Name() == "" {
			t.Errorf("ForArch(%v): empty name", a)
		}
	}
	if _, err := ForArch("z80"); err == nil {
		t.Error("ForArch(z80): expected error")
	}
	// Spot-check the mechanisms behind the profiles.
	if p, _ := ForArch(ArchIvyBridge); p.(*Saturating).States() != 6 {
		t.Error("Ivy Bridge must be a 6-state saturating counter")
	}
	if p, _ := ForArch(ArchAMD); p.(*Saturating).States() != 4 {
		t.Error("AMD must be a 4-state saturating counter")
	}
	if _, ok := mustForArch(t, ArchNehalem).(*Gshare); !ok {
		t.Error("Nehalem must be a gshare predictor")
	}
}

func mustForArch(t *testing.T, a Arch) Predictor {
	t.Helper()
	p, err := ForArch(a)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
