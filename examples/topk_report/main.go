// Top-K report: the ten highest-revenue qualifying lineitems, declared as
// one ordered plan — filters, OrderBy descending revenue key, Limit 10, and
// a Sum expression carried through the sort as each row's value — executed
// serially and morsel-parallel on four simulated cores with per-core
// bounded heaps merged at the barrier. The ordered rows (float values
// included) are bit-identical for every worker count; only the makespan
// shrinks.
package main

import (
	"fmt"
	"log"

	"progopt"
)

func main() {
	report := func(workers int) {
		eng, err := progopt.New(progopt.Config{VectorSize: 2048, Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		ds, err := eng.GenerateTPCH(150_000, 5, progopt.OrderNatural)
		if err != nil {
			log.Fatal(err)
		}

		// One declarative plan: filters, ordering, Top-K bound, and the
		// revenue expression each emitted row carries.
		q, err := eng.Compile(ds, progopt.Scan("lineitem").
			Filter("l_shipdate", progopt.CmpLE, int64(ds.ShipdateCutoff(0.6))).
			Filter("l_discount", progopt.CmpGE, 0.04).
			OrderBy("l_extendedprice", progopt.Desc).
			Limit(10).
			Sum("l_extendedprice * l_discount"))
		if err != nil {
			log.Fatal(err)
		}

		res, err := eng.Exec(q, progopt.ExecOptions{Mode: progopt.ModeFixed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d core(s): %8.2f ms, top %d of %d qualifying rows (total revenue %.2f)\n",
			workers, res.Millis, len(res.Rows), res.Qualifying, res.Sum)

		if workers > 1 {
			return // the table below is identical for every worker count
		}
		fmt.Println("\n rank      row   extendedprice      revenue")
		fmt.Println("---------------------------------------------")
		for i, row := range res.Rows {
			fmt.Printf("%5d %8d   %13.2f %12.2f\n", i+1, row.Row, row.Keys[0], row.Value)
		}
		fmt.Println()
	}
	report(1)
	report(4)
}
