package cache

import "fmt"

// HierarchyConfig describes a three-level data-cache hierarchy plus memory.
type HierarchyConfig struct {
	// L1, L2, L3 are the per-level geometries; all must share one LineSize
	// and each level must be at least as large as the one above it.
	L1, L2, L3 Config
	// MemLatencyCycles is the load-to-use latency of a main-memory access.
	MemLatencyCycles int
	// PrefetchDisabled turns the L2 streamer off (used by ablation benches;
	// the paper's cost model explicitly includes prefetch traffic).
	PrefetchDisabled bool
}

func (c HierarchyConfig) validate() error {
	for _, lv := range []Config{c.L1, c.L2, c.L3} {
		if err := lv.validate(); err != nil {
			return err
		}
	}
	if c.L1.LineSize != c.L2.LineSize || c.L2.LineSize != c.L3.LineSize {
		return fmt.Errorf("cache: line sizes differ across levels (%d/%d/%d)",
			c.L1.LineSize, c.L2.LineSize, c.L3.LineSize)
	}
	if c.L1.SizeBytes > c.L2.SizeBytes || c.L2.SizeBytes > c.L3.SizeBytes {
		return fmt.Errorf("cache: levels must not shrink downward (%d/%d/%d bytes)",
			c.L1.SizeBytes, c.L2.SizeBytes, c.L3.SizeBytes)
	}
	if c.MemLatencyCycles <= 0 {
		return fmt.Errorf("cache: non-positive memory latency %d", c.MemLatencyCycles)
	}
	return nil
}

// HitLevel identifies where a load was satisfied.
type HitLevel int

// Hit levels, ordered by distance from the core.
const (
	HitL1 HitLevel = iota + 1
	HitL2
	HitL3
	HitMem
)

// String returns "L1", "L2", "L3", or "Mem".
func (h HitLevel) String() string {
	switch h {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitL3:
		return "L3"
	case HitMem:
		return "Mem"
	}
	return fmt.Sprintf("HitLevel(%d)", int(h))
}

// AccessResult describes one completed load.
type AccessResult struct {
	// Level is where the line was found.
	Level HitLevel
	// LatencyCycles is the load-to-use latency implied by Level.
	LatencyCycles int
}

// Counters is a snapshot of every event count the hierarchy maintains.
type Counters struct {
	L1, L2, L3 Stats
	// L3PrefetchAccesses counts streamer requests presented to L3; the
	// paper's "L3 access" PMU event is L3.Accesses + L3PrefetchAccesses.
	L3PrefetchAccesses uint64
	// MemAccesses counts line transfers from memory (demand and prefetch).
	MemAccesses uint64
}

// L3TotalAccesses returns the paper's L3-access counter: demand requests that
// missed L2 plus prefetcher requests (§2.2.2).
func (c Counters) L3TotalAccesses() uint64 { return c.L3.Accesses + c.L3PrefetchAccesses }

// Sub returns c - prev, field by field (for vector-granular deltas).
func (c Counters) Sub(prev Counters) Counters {
	sub := func(a, b Stats) Stats {
		return Stats{
			Accesses:        a.Accesses - b.Accesses,
			Hits:            a.Hits - b.Hits,
			Misses:          a.Misses - b.Misses,
			PrefetchInserts: a.PrefetchInserts - b.PrefetchInserts,
		}
	}
	return Counters{
		L1:                 sub(c.L1, prev.L1),
		L2:                 sub(c.L2, prev.L2),
		L3:                 sub(c.L3, prev.L3),
		L3PrefetchAccesses: c.L3PrefetchAccesses - prev.L3PrefetchAccesses,
		MemAccesses:        c.MemAccesses - prev.MemAccesses,
	}
}

// Hierarchy is a three-level inclusive cache hierarchy with an L2 streamer.
type Hierarchy struct {
	cfg                HierarchyConfig
	l1, l2, l3         *Level
	pf                 *StreamPrefetcher
	lineShift          uint
	l3PrefetchAccesses uint64
	memAccesses        uint64
	// lastLine (line id + 1; 0 = invalid) and lastSlot memoize the line of
	// the immediately preceding demand load and its L1 tag slot. A repeat
	// load of the same line is then a guaranteed L1-MRU hit — nothing but
	// the demand load itself writes L1 — and takes an exact fast path that
	// replicates a hit Lookup's counter and LRU effects without the
	// associative search. Batch kernels stream columns op-major, so their
	// sequential loads repeat lines back to back and ride this path.
	lastLine uint64
	lastSlot int
	// memoLines/memoSlots generalize the same memo to a small direct-mapped
	// table of recently loaded lines, which catches the row-major pattern of
	// the scalar engine (one resident line per column, touched in rotation).
	// Unlike lastLine, an entry here is a *guess*: the line may have been
	// evicted since. Every use is validated by TouchLine (slot still holds
	// the line), which makes the fast path exact — a line present at the
	// memoized slot would hit an associative Lookup with precisely the same
	// counter, clock, and MRU-stamp effects.
	memoLines [memoEntries]uint64
	memoSlots [memoEntries]int
	// st, when attached, is a storage tier below DRAM: every access that
	// reaches memory consults it and may pay additional whole-cycle block
	// stalls, accumulated in storageStalls. The tier never alters cache
	// contents or any counter above, so attaching it leaves the PMU event
	// stream bit-identical. storageStalls is monotonic across ResetCounters
	// (like the CPU's own stall clock); cores snapshot and subtract.
	st            *StorageSet
	storageStalls uint64
}

// memoEntries sizes the direct-mapped line memo (power of two, comfortably
// more than the column count of typical plans).
const memoEntries = 32

// NewHierarchy builds a hierarchy from its configuration.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l1, err := NewLevel(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := NewLevel(cfg.L2)
	if err != nil {
		return nil, err
	}
	l3, err := NewLevel(cfg.L3)
	if err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift < cfg.L1.LineSize {
		shift++
	}
	return &Hierarchy{cfg: cfg, l1: l1, l2: l2, l3: l3, pf: NewStreamPrefetcher(), lineShift: shift}, nil
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// LineSize returns the cache-line size in bytes.
func (h *Hierarchy) LineSize() int { return h.cfg.L1.LineSize }

// LineShift returns log2(LineSize), the byte-address-to-line-id shift.
func (h *Hierarchy) LineShift() uint { return h.lineShift }

// Load performs a demand load of the line containing addr and returns where
// it hit. Fills are inclusive (a miss installs the line in every level above
// the hit level). The streamer observes all demand traffic reaching L2 (that
// is, L1 misses) and pulls upcoming lines into L2 and L3, consuming one L3
// access slot per prefetch request — so the exposed L3-access count is the
// paper's counter: demand L2-misses plus prefetcher requests.
func (h *Hierarchy) Load(addr uint64) AccessResult {
	ln := (addr >> h.lineShift) + 1
	mi := ln & (memoEntries - 1)
	if h.memoHit(ln, mi) {
		return AccessResult{Level: HitL1, LatencyCycles: h.cfg.L1.LatencyCycles}
	}
	res := h.loadLine(ln)
	h.lastLine, h.lastSlot = ln, h.l1.lastSlot
	h.memoLines[mi], h.memoSlots[mi] = ln, h.l1.lastSlot
	return res
}

// memoHit tries the validated memo fast path for line ln (memo index mi):
// when the memoized slot still holds the line, it records exactly one hit
// Lookup — counters, MRU promotion, lastSlot — with the associative probe
// skipped, and refreshes the same-line memo. This is the hottest path of
// both engines; the single copy keeps the hit accounting impossible to
// drift between the scalar and run-batched entry points.
func (h *Hierarchy) memoHit(ln, mi uint64) bool {
	if h.memoLines[mi] != ln {
		return false
	}
	l1, idx := h.l1, h.memoSlots[mi]
	if l1.tags[idx] != ln {
		return false
	}
	l1.stats.Accesses++
	l1.stats.Hits++
	set := int(ln & l1.setMask)
	l1.moveToHead(set, set*l1.ways, idx-set*l1.ways)
	l1.lastSlot = idx
	h.lastLine, h.lastSlot = ln, idx
	return true
}

// loadLine is the full lookup-and-fill path for the line with id ln; after it
// returns, the demand line is L1-resident at l1.lastSlot as the MRU of its
// set. The line id is computed once by the caller and shared by every level
// probe — all levels of a hierarchy have one line size, so the set/tag math
// is hoisted out of the per-level (and, for batched runs, per-element) loop.
func (h *Hierarchy) loadLine(ln uint64) AccessResult {
	if h.l1.LookupLine(ln) {
		return AccessResult{Level: HitL1, LatencyCycles: h.cfg.L1.LatencyCycles}
	}
	if !h.cfg.PrefetchDisabled {
		for _, pl := range h.pf.Observe(ln - 1) {
			// Each prefetch request occupies an L3 access slot whether or not
			// the line is already present somewhere.
			h.l3PrefetchAccesses++
			pln := pl + 1
			if !h.l3.ContainsLine(pln) {
				h.memAccesses++
				if h.st != nil {
					h.storageStalls += h.st.Touch((pln - 1) << h.lineShift)
				}
				h.l3.insertLineAbsent(pln)
				h.l3.stats.PrefetchInserts++
			}
			h.l2.InsertLine(pln, true)
		}
	}
	// Demand fills below insert lines their own level's lookup just missed,
	// so the present-already re-check is skipped (insertLineAbsent).
	if h.l2.LookupLine(ln) {
		h.l1.insertLineAbsent(ln)
		return AccessResult{Level: HitL2, LatencyCycles: h.cfg.L2.LatencyCycles}
	}
	if h.l3.LookupLine(ln) {
		h.l2.insertLineAbsent(ln)
		h.l1.insertLineAbsent(ln)
		return AccessResult{Level: HitL3, LatencyCycles: h.cfg.L3.LatencyCycles}
	}
	h.memAccesses++
	if h.st != nil {
		h.storageStalls += h.st.Touch((ln - 1) << h.lineShift)
	}
	h.l3.insertLineAbsent(ln)
	h.l2.insertLineAbsent(ln)
	h.l1.insertLineAbsent(ln)
	return AccessResult{Level: HitMem, LatencyCycles: h.cfg.MemLatencyCycles}
}

// RunHits counts the demand loads of one batched run by the level that
// satisfied each of them. It is the whole result a caller needs to account a
// run: per-load latency is a function of the hit level alone, so the CPU
// converts the four counts into stall cycles without ever seeing individual
// loads.
type RunHits struct {
	L1, L2, L3, Mem int
}

// Total returns the number of demand loads in the run.
func (r RunHits) Total() int { return r.L1 + r.L2 + r.L3 + r.Mem }

// add accounts one completed load at the given hit level.
func (r *RunHits) add(lv HitLevel) {
	switch lv {
	case HitL1:
		r.L1++
	case HitL2:
		r.L2++
	case HitL3:
		r.L3++
	default:
		r.Mem++
	}
}

// loadRunFirst performs the leading demand load of a same-line streak —
// validated memo fast path or full lookup-and-fill — and leaves the memo
// pointing at the streak's line.
func (h *Hierarchy) loadRunFirst(ln uint64, rh *RunHits) {
	mi := ln & (memoEntries - 1)
	if h.memoHit(ln, mi) {
		rh.L1++
		return
	}
	rh.add(h.loadLine(ln).Level)
	h.lastLine, h.lastSlot = ln, h.l1.lastSlot
	h.memoLines[mi], h.memoSlots[mi] = ln, h.l1.lastSlot
}

// LoadRun performs n demand loads at start, start+stride, ... in one call,
// with counter, LRU, and prefetcher effects identical to n Load calls.
// Same-line streaks are collapsed: the streak length is computed in closed
// form from the stride, the first access runs the full path, and the
// remaining accesses are guaranteed L1-MRU hits recorded as one counted
// touch. stride must be positive.
func (h *Hierarchy) LoadRun(start uint64, stride, n int) RunHits {
	var rh RunHits
	if n <= 0 {
		return rh
	}
	shift := h.lineShift
	lineSize := uint64(1) << shift
	st := uint64(stride)
	for i := 0; i < n; {
		addr := start + uint64(i)*st
		ln := (addr >> shift) + 1
		// Elements i..j-1 share the line: the next line starts at boundary.
		boundary := (addr | (lineSize - 1)) + 1
		j := i + int((boundary-addr+st-1)/st)
		if j > n {
			j = n
		}
		h.loadRunFirst(ln, &rh)
		if rep := j - i - 1; rep > 0 {
			h.l1.touchSlotN(h.lastSlot, ln, rep)
			rh.L1 += rep
		}
		i = j
	}
	return rh
}

// LoadSel performs one demand load per selected row of a column at base with
// the given stride, in selection order, with effects identical to per-row
// Load calls. Runs of rows sharing one cache line after the run's first load
// are guaranteed L1-MRU repeats and are recorded as one counted touch.
func (h *Hierarchy) LoadSel(base uint64, stride int, rows []int32) RunHits {
	var rh RunHits
	shift := h.lineShift
	st := uint64(stride)
	n := len(rows)
	for i := 0; i < n; {
		ln := ((base + uint64(rows[i])*st) >> shift) + 1
		j := i + 1
		for j < n && ((base+uint64(rows[j])*st)>>shift)+1 == ln {
			j++
		}
		h.loadRunFirst(ln, &rh)
		if rep := j - i - 1; rep > 0 {
			h.l1.touchSlotN(h.lastSlot, ln, rep)
			rh.L1 += rep
		}
		i = j
	}
	return rh
}

// LoadStream performs one demand load per address, in order, with effects
// identical to per-element Load calls — the gather path of kernels whose
// address streams are data-dependent (join probes, hash-table touches).
// Consecutive same-line addresses collapse into counted L1 touches.
func (h *Hierarchy) LoadStream(addrs []uint64) RunHits {
	var rh RunHits
	shift := h.lineShift
	n := len(addrs)
	for i := 0; i < n; {
		ln := (addrs[i] >> shift) + 1
		j := i + 1
		for j < n && (addrs[j]>>shift)+1 == ln {
			j++
		}
		h.loadRunFirst(ln, &rh)
		if rep := j - i - 1; rep > 0 {
			h.l1.touchSlotN(h.lastSlot, ln, rep)
			rh.L1 += rep
		}
		i = j
	}
	return rh
}

// Counters returns a snapshot of all event counts.
func (h *Hierarchy) Counters() Counters {
	return Counters{
		L1:                 h.l1.Stats(),
		L2:                 h.l2.Stats(),
		L3:                 h.l3.Stats(),
		L3PrefetchAccesses: h.l3PrefetchAccesses,
		MemAccesses:        h.memAccesses,
	}
}

// Flush empties all levels and prefetcher streams; counters are preserved.
func (h *Hierarchy) Flush() {
	h.l1.Flush()
	h.l2.Flush()
	h.l3.Flush()
	h.pf.Reset()
	h.lastLine = 0
	h.memoLines = [memoEntries]uint64{}
}

// AttachStorage installs (or, with nil, removes) a storage tier below DRAM.
// The tier observes every access that reaches memory and charges block-fetch
// stalls; it has no effect on cache contents or counters.
func (h *Hierarchy) AttachStorage(st *StorageSet) { h.st = st }

// Storage returns the attached storage tier, or nil.
func (h *Hierarchy) Storage() *StorageSet { return h.st }

// StorageStallCycles returns the cumulative stall cycles charged by the
// storage tier. Monotonic: not cleared by ResetCounters, so it composes with
// the CPU's cycle clock the way stallQuarters does.
func (h *Hierarchy) StorageStallCycles() uint64 { return h.storageStalls }

// ResetCounters zeroes all event counts; cache contents are preserved.
func (h *Hierarchy) ResetCounters() {
	h.l1.ResetStats()
	h.l2.ResetStats()
	h.l3.ResetStats()
	h.l3PrefetchAccesses = 0
	h.memAccesses = 0
}
