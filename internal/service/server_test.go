package service

import (
	"reflect"
	"testing"

	"progopt/internal/core"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

func testQuery(t *testing.T, rows int, seed int64) *exec.Query {
	t.Helper()
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	q, err := exec.Q6(d)
	if err != nil {
		t.Fatal(err)
	}
	// Worst-ish initial order so progressive runs have something to fix.
	desc := make([]int, len(q.Ops))
	for i := range desc {
		desc[i] = len(desc) - 1 - i
	}
	qo, err := q.WithOrder(desc)
	if err != nil {
		t.Fatal(err)
	}
	return qo
}

// TestLoneFixedMatchesParallelRun: a query that has the pool to itself is
// bit-identical — results, cycles, PMU counters — to a dedicated
// Parallel.Run, even though the server chops it into scheduling quanta.
func TestLoneFixedMatchesParallelRun(t *testing.T) {
	const workers, vs = 4, 512
	q := testQuery(t, 64*vs, 11)
	prof := cpu.ScaledXeon()

	ref, err := exec.NewParallel(prof, workers, vs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(q)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(prof, workers, vs, false, Config{QuantumVectors: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit(Request{Query: q, Mode: ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got.Qualifying != want.Qualifying || got.Sum != want.Sum {
		t.Errorf("results diverge: %d/%v vs %d/%v", got.Qualifying, got.Sum, want.Qualifying, want.Sum)
	}
	if got.Cycles != want.Cycles || got.Millis != want.Millis {
		t.Errorf("cycles diverge: %d/%v vs %d/%v", got.Cycles, got.Millis, want.Cycles, want.Millis)
	}
	if got.Counters != want.Counters {
		t.Errorf("counters diverge:\n got %v\nwant %v", got.Counters, want.Counters)
	}
	if got.Done != want.Cycles || got.Start != 0 {
		t.Errorf("timeline wrong: start %d done %d, want 0 and %d", got.Start, got.Done, want.Cycles)
	}
}

// TestLoneProgressiveMatchesDriver: same property for progressive execution
// against core.RunParallelProgressive, including the optimizer stats.
func TestLoneProgressiveMatchesDriver(t *testing.T) {
	const workers, vs = 4, 512
	q := testQuery(t, 64*vs, 11)
	prof := cpu.ScaledXeon()
	opt := core.Options{ReopInterval: 5}

	ref, err := exec.NewParallel(prof, workers, vs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	want, wantSt, err := core.RunParallelProgressive(ref, q, opt)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(prof, workers, vs, false, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit(Request{Query: q, Mode: ModeProgressive, Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got.Qualifying != want.Qualifying || got.Sum != want.Sum {
		t.Errorf("results diverge: %d/%v vs %d/%v", got.Qualifying, got.Sum, want.Qualifying, want.Sum)
	}
	if got.Cycles != want.Cycles {
		t.Errorf("cycles diverge: %d vs %d", got.Cycles, want.Cycles)
	}
	if got.Counters != want.Counters {
		t.Errorf("counters diverge:\n got %v\nwant %v", got.Counters, want.Counters)
	}
	if !reflect.DeepEqual(got.Stats.ParallelStats, wantSt) {
		t.Errorf("stats diverge:\n got %+v\nwant %+v", got.Stats.ParallelStats, wantSt)
	}
}

// TestConcurrentTraceDeterministic: a fixed trace of overlapping queries
// yields identical outcomes and makespan on repeated simulations, no matter
// in which order the tickets are waited on.
func TestConcurrentTraceDeterministic(t *testing.T) {
	const workers, vs = 4, 512
	prof := cpu.ScaledXeon()
	q1 := testQuery(t, 24*vs, 5)
	q2 := testQuery(t, 32*vs, 6)
	q3 := testQuery(t, 16*vs, 7)

	type obs struct {
		Qual     int64
		Sum      float64
		Cycles   uint64
		Done     uint64
		Makespan uint64
	}
	run := func(waitOrder []int) []obs {
		s, err := New(prof, workers, vs, false, Config{MaxActive: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []*exec.Query{q1, q2, q3} {
			if err := s.BindQuery(q); err != nil {
				t.Fatal(err)
			}
		}
		reqs := []Request{
			{Query: q1, Mode: ModeFixed, Arrival: 0},
			{Query: q2, Mode: ModeProgressive, Opt: core.Options{ReopInterval: 5}, Arrival: 1000},
			{Query: q3, Mode: ModeFixed, Arrival: 2000},
		}
		tks := make([]*Ticket, len(reqs))
		for i, r := range reqs {
			tk, err := s.Submit(r)
			if err != nil {
				t.Fatal(err)
			}
			tks[i] = tk
		}
		out := make([]obs, len(tks))
		for _, i := range waitOrder {
			o, err := tks[i].Wait()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = obs{o.Qualifying, o.Sum, o.Cycles, o.Done, 0}
		}
		out[0].Makespan = s.Stats().MakespanCycles
		return out
	}

	a := run([]int{0, 1, 2})
	b := run([]int{2, 0, 1})
	c := run([]int{1, 2, 0})
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
		t.Errorf("trace not deterministic across wait orders:\n a %+v\n b %+v\n c %+v", a, b, c)
	}
}

// TestSharedPoolPreservesResults: queries sharing the pool still produce the
// same Qualifying/Sum as dedicated runs (scheduling may change cycles, never
// answers).
func TestSharedPoolPreservesResults(t *testing.T) {
	const workers, vs = 2, 512
	prof := cpu.ScaledXeon()
	q1 := testQuery(t, 24*vs, 5)
	q2 := testQuery(t, 32*vs, 6)

	ref, err := exec.NewParallel(prof, workers, vs)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []*exec.Query{q1, q2} {
		if err := ref.BindQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	w1, err := ref.Run(q1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ref.Run(q2)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(prof, workers, vs, false, Config{MaxActive: 2})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := s.Submit(Request{Query: q1, Mode: ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Submit(Request{Query: q2, Mode: ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	o1, err := t1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	o2, err := t2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if o1.Qualifying != w1.Qualifying || o1.Sum != w1.Sum {
		t.Errorf("q1 diverges under sharing: %d/%v vs %d/%v", o1.Qualifying, o1.Sum, w1.Qualifying, w1.Sum)
	}
	if o2.Qualifying != w2.Qualifying || o2.Sum != w2.Sum {
		t.Errorf("q2 diverges under sharing: %d/%v vs %d/%v", o2.Qualifying, o2.Sum, w2.Qualifying, w2.Sum)
	}
	st := s.Stats()
	if st.PeakActive != 2 {
		t.Errorf("peak active %d, want 2 (fair sharing)", st.PeakActive)
	}
}

// TestAdmissionHonorsArrival: a query whose arrival lies beyond another
// query's whole runtime must not be activated early — otherwise it would
// reserve (and fast-forward) cores the present query should use. The
// present query therefore runs on the full pool, exactly like a dedicated
// run, and the future query starts at its arrival.
func TestAdmissionHonorsArrival(t *testing.T) {
	const workers, vs = 4, 512
	prof := cpu.ScaledXeon()
	q1 := testQuery(t, 24*vs, 5)
	q2 := testQuery(t, 16*vs, 7)

	ref, err := exec.NewParallel(prof, workers, vs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.BindQuery(q1); err != nil {
		t.Fatal(err)
	}
	w1, err := ref.Run(q1)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(prof, workers, vs, false, Config{MaxActive: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BindQuery(q2); err != nil {
		t.Fatal(err)
	}
	farFuture := 100 * w1.Cycles
	t1, err := s.Submit(Request{Query: q1, Mode: ModeFixed, Arrival: 0})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Submit(Request{Query: q2, Mode: ModeFixed, Arrival: farFuture})
	if err != nil {
		t.Fatal(err)
	}
	o1, err := t1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if o1.Cycles != w1.Cycles || o1.Done != w1.Cycles {
		t.Errorf("present query did not get the whole pool: cycles %d done %d, want %d",
			o1.Cycles, o1.Done, w1.Cycles)
	}
	o2, err := t2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if o2.Start < farFuture {
		t.Errorf("future query started at %d, before its arrival %d", o2.Start, farFuture)
	}
}

// TestQueueLimitRejects: the admission controller sheds load beyond the
// queue limit.
func TestQueueLimitRejects(t *testing.T) {
	const vs = 512
	prof := cpu.ScaledXeon()
	q := testQuery(t, 8*vs, 5)
	s, err := New(prof, 1, vs, false, Config{MaxActive: 1, QueueLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	// Nothing is active until a Wait drives the scheduler, so both land in
	// the queue; the second overflows it.
	if _, err := s.Submit(Request{Query: q, Mode: ModeFixed}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Request{Query: q, Mode: ModeFixed}); err == nil {
		t.Fatal("second submission accepted beyond the queue limit")
	}
	st := s.Stats()
	if st.Rejected != 1 || st.Submitted != 2 {
		t.Errorf("rejected=%d submitted=%d", st.Rejected, st.Submitted)
	}
}

// convergentQuery builds a scan whose three predicates have cleanly
// separated selectivities (~0.18 / ~0.5 / ~0.8) in the worst order, so a
// cold progressive run reliably reorders once and then confirms the order —
// the regime a feedback warm start is designed for.
func convergentQuery(t *testing.T, rows int, seed int64) *exec.Query {
	t.Helper()
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	li := d.Lineitem
	return &exec.Query{Table: li, Ops: []exec.Op{
		&exec.Predicate{Col: li.Column("l_shipdate"), Op: exec.LE, I: int64(d.ShipdateCutoff(0.8)), Label: "ship80"},
		&exec.Predicate{Col: li.Column("l_discount"), Op: exec.LE, F: 0.05, Label: "disc<=.05"},
		&exec.Predicate{Col: li.Column("l_quantity"), Op: exec.LT, I: 10, Label: "qty<10"},
	}}
}

// TestFeedbackWarmStart: the second submission of the same fingerprint
// starts at the converged order and settles in strictly fewer cycles.
func TestFeedbackWarmStart(t *testing.T) {
	const workers, vs = 4, 512
	prof := cpu.ScaledXeon()
	q := convergentQuery(t, 96*vs, 11)
	s, err := New(prof, workers, vs, false, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	fp := Compute("lineitem", 1, []string{"q6-test"})
	opt := core.Options{ReopInterval: 5}

	t1, err := s.Submit(Request{Query: q, Mode: ModeProgressive, Opt: opt, Fingerprint: fp})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := t1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmStarted {
		t.Fatal("first submission warm-started")
	}
	if cold.Stats.Reorders == 0 {
		t.Fatal("cold run never reordered; workload too easy to measure warm start")
	}

	t2, err := s.Submit(Request{Query: q, Mode: ModeProgressive, Opt: opt, Fingerprint: fp})
	if err != nil {
		t.Fatal(err)
	}
	if warmed, _ := t2.WarmStarted(); warmed {
		t.Fatal("warm start decided before admission")
	}
	warm, err := t2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("second submission did not warm-start")
	}
	if !reflect.DeepEqual(warm.WarmOrder, cold.Stats.FinalOrder) {
		t.Errorf("warm order %v, converged order %v", warm.WarmOrder, cold.Stats.FinalOrder)
	}
	if warm.Qualifying != cold.Qualifying || warm.Sum != cold.Sum {
		t.Errorf("warm start changed the answer: %d/%v vs %d/%v", warm.Qualifying, warm.Sum, cold.Qualifying, cold.Sum)
	}
	if warm.Stats.ConvergedAtCycles >= cold.Stats.ConvergedAtCycles {
		t.Errorf("warm run converged at %d cycles, cold at %d — warm start did not help",
			warm.Stats.ConvergedAtCycles, cold.Stats.ConvergedAtCycles)
	}
	if warm.Cycles >= cold.Cycles {
		t.Errorf("warm run spent %d cycles, cold %d", warm.Cycles, cold.Cycles)
	}
	st := s.Stats()
	if st.FeedbackWarmStarts != 1 || st.FeedbackStores != 2 {
		t.Errorf("warm starts %d stores %d, want 1 and 2", st.FeedbackWarmStarts, st.FeedbackStores)
	}
}
