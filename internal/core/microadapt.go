package core

import (
	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/costmodel/markov"
	"progopt/internal/exec"
	"progopt/internal/trace"
)

// ImplCostParams parameterize the branching-vs-branch-free decision.
type ImplCostParams struct {
	// MPPenaltyCycles is the misprediction flush cost of the core.
	MPPenaltyCycles float64
	// EvalInstr is the instruction cost of one predicate evaluation
	// (load + compare) and MaskInstr the extra combine cost of the
	// branch-free form; BranchInstr the cmp+jcc of the branching form.
	EvalInstr, MaskInstr, BranchInstr float64
	// IssueWidth converts instructions to cycles.
	IssueWidth float64
	// Chain models the predictor for the branching form's mispredictions.
	Chain markov.Chain
	// Geometry models the cache for the memory term; Widths are the
	// predicate column widths in evaluation order (default 8 each).
	Geometry cachemodel.Geometry
	Widths   []int
	// SeqLineStall is the cycles per sequentially streamed (prefetched)
	// line; RandomLineStall per conditional-read line the streamer misses.
	// The asymmetry is the paper's §3.1 point: skipping tuples does not
	// proportionally skip memory cost.
	SeqLineStall, RandomLineStall float64
}

// DefaultImplCostParams matches the simulated ScaledXeon core and the
// engine's instruction accounting.
func DefaultImplCostParams() ImplCostParams {
	return ImplCostParams{
		MPPenaltyCycles: 15,
		EvalInstr:       1, // the load
		MaskInstr:       2,
		BranchInstr:     2,
		IssueWidth:      4,
		Chain:           markov.Paper(),
		Geometry:        cachemodel.MustGeometry(64, 16384),
		SeqLineStall:    2,
		RandomLineStall: 25,
	}
}

// ChooseImpl picks the cheaper scan implementation for one vector given the
// estimated per-predicate selectivities (in evaluation order), per tuple:
//
//	branching:   (eval+branch) instructions for reached predicates,
//	             misprediction penalties from the chain model, and the
//	             conditional-read memory cost (random misses weighted by
//	             RandomLineStall — the §3.1 double-counting effect)
//	branch-free: every predicate evaluated and every column fully streamed,
//	             but no mispredictions and purely sequential memory
//
// This is micro adaptivity (Răducanu et al., the paper's related work)
// driven by the counter-estimated selectivities instead of runtime trials:
// no alternative implementation ever needs to be executed to be costed.
func ChooseImpl(sels []float64, p ImplCostParams) exec.ScanImpl {
	if len(sels) == 0 {
		return exec.ImplBranching
	}
	// Per-tuple costing over a nominal vector.
	const n = 4096
	branching, branchFree := 0.0, 0.0
	reach := 1.0
	for i, s := range sels {
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		width := 8
		if i < len(p.Widths) && p.Widths[i] > 0 {
			width = p.Widths[i]
		}
		branching += reach * (p.EvalInstr + p.BranchInstr) / p.IssueWidth
		branching += reach * p.Chain.Predict(s).MP() * p.MPPenaltyCycles
		cr := p.Geometry.CondReadAccesses(n, width, reach)
		branching += (cr.Touched*p.SeqLineStall + cr.Random*p.RandomLineStall) / n

		branchFree += (p.EvalInstr + p.MaskInstr) / p.IssueWidth
		branchFree += p.Geometry.Lines(n, width) * p.SeqLineStall / n
		reach *= s
	}
	if branchFree < branching {
		return exec.ImplBranchFree
	}
	return exec.ImplBranching
}

// MicroAdaptiveStats extends Stats with the implementation decisions.
type MicroAdaptiveStats struct {
	Stats
	// BranchingVectors and BranchFreeVectors count vectors per
	// implementation.
	BranchingVectors, BranchFreeVectors int
	// ImplSwitches counts implementation changes.
	ImplSwitches int
}

// RunMicroAdaptive is RunProgressive extended with per-cycle implementation
// choice: after each selectivity estimation it also decides whether the next
// vectors run the branching or the branch-free scan. Queries containing
// non-predicate operators always run branching.
func RunMicroAdaptive(e *exec.Engine, q *exec.Query, opt Options) (exec.Result, MicroAdaptiveStats, error) {
	if err := q.Validate(); err != nil {
		return exec.Result{}, MicroAdaptiveStats{}, err
	}
	opt.setDefaults()
	c := e.CPU()
	eligible := exec.BranchFreeEligible(q)
	costP := DefaultImplCostParams()
	costP.Chain = opt.Chain

	nOps := len(q.Ops)
	curPerm := identity(nOps)
	prevPerm := identity(nOps)
	curQ := q
	impl := exec.ImplBranching
	// resampleEvery spaces the sampling windows while running branch-free:
	// return to the (counter-observable) branching scan only every Nth
	// optimization point, keeping most vectors on the cheaper
	// implementation.
	const resampleEvery = 3
	bfOptPoints := 0

	start := c.Sample()
	startCycles := c.Cycles()
	var out exec.Result
	var st MicroAdaptiveStats

	n := q.Table.NumRows()
	vs := e.VectorSize()
	numVectors := (n + vs - 1) / vs

	var prevVecCycles uint64
	pendingValidation := false
	// rejected remembers the last order validation reverted (see
	// RunProgressive); the estimator's output is ignored while it equals it.
	var rejected []int
	if opt.Geometry.LineSize == 0 {
		hier := c.Profile().Hierarchy
		opt.Geometry.LineSize = hier.L3.LineSize
		opt.Geometry.CapacityLines = hier.L3.Lines()
	}
	aggWidths := aggColumnWidths(q)

	vec := 0
	for lo := 0; lo < n; lo += vs {
		hi := lo + vs
		if hi > n {
			hi = n
		}
		s0 := c.Sample()
		c0 := c.Cycles()
		vr, err := e.RunVectorImpl(curQ, lo, hi, impl)
		if err != nil {
			return exec.Result{}, MicroAdaptiveStats{}, err
		}
		if impl == exec.ImplBranchFree {
			st.BranchFreeVectors++
		} else {
			st.BranchingVectors++
		}
		out.Qualifying += vr.Qualifying
		out.Sum += vr.Sum
		out.Vectors++
		vecCycles := c.Cycles() - c0
		delta := c.Sample().Sub(s0)
		vec++

		if pendingValidation && !opt.DisableValidation {
			pendingValidation = false
			limit := float64(prevVecCycles) * (1 + opt.ValidationTolerance)
			if float64(vecCycles) > limit && (hi-lo) == vs {
				rejected = append([]int(nil), curPerm...)
				curPerm = append([]int(nil), prevPerm...)
				curQ, err = q.WithOrder(curPerm)
				if err != nil {
					return exec.Result{}, MicroAdaptiveStats{}, err
				}
				if !opt.DisablePredictorReset {
					c.ResetPredictor()
				}
				c.Exec(opt.ReorderCostInstr)
				st.Reverts++
				st.ConvergedAtCycles = c.Cycles() - startCycles
				traceDecision(opt.Trace, "revert", c.Cycles(), delta,
					trace.A("to", curPerm),
					trace.A("vec_cycles", vecCycles), trace.A("limit", limit))
			}
		}

		runOpt := opt.ReopInterval > 0 && vec%opt.ReopInterval == 0 && vec < numVectors
		// Estimation requires the branching scan's counters (branch-free
		// vectors carry no per-predicate branch signal); sample only then.
		if runOpt && impl == exec.ImplBranching {
			c.Exec(opt.SampleCostInstr)
			sample := SampleFromPMU(delta, hi-lo)
			cfg := EstimatorConfig{
				Widths:    opWidths(curQ),
				AggWidths: aggWidths,
				Geometry:  opt.Geometry,
				Chain:     opt.Chain,
				MaxStarts: opt.MaxStartsOverride,
			}
			est, err := EstimateSelectivities(sample, cfg)
			if err != nil {
				return exec.Result{}, MicroAdaptiveStats{}, err
			}
			st.Optimizations++
			st.EstimatorEvaluations += est.NMEvaluations
			st.LastEstimate = est.Sels
			c.Exec(est.NMEvaluations * opt.NMEvalCostInstr)
			smp := Sample{
				Cycles:   c.Cycles() - startCycles,
				Tuples:   hi - lo,
				Counters: delta.Project(paperGroup),
				Sels:     est.Sels,
			}
			st.addSample(smp)
			traceSample(opt.Trace, c.Cycles(), smp)

			order := RankOrder(LoadWeights(curQ), est.Sels)
			newPerm := compose(curPerm, order)
			if !equalPerm(newPerm, curPerm) && !equalPerm(newPerm, rejected) {
				prevPerm = append([]int(nil), curPerm...)
				curPerm = newPerm
				curQ, err = q.WithOrder(curPerm)
				if err != nil {
					return exec.Result{}, MicroAdaptiveStats{}, err
				}
				if !opt.DisablePredictorReset {
					c.ResetPredictor()
				}
				c.Exec(opt.ReorderCostInstr)
				st.Reorders++
				pendingValidation = true
				st.ConvergedAtCycles = c.Cycles() - startCycles
				traceDecision(opt.Trace, "reorder", c.Cycles(), smp.Counters,
					trace.A("from", prevPerm), trace.A("to", curPerm),
					trace.A("est_sels", est.Sels))
			}
			if eligible {
				ordered := make([]float64, len(est.Sels))
				for i, o := range order {
					ordered[i] = est.Sels[o]
				}
				next := ChooseImpl(ordered, costP)
				if next != impl {
					st.ImplSwitches++
					impl = next
					if !opt.DisablePredictorReset {
						c.ResetPredictor()
					}
					c.Exec(opt.ReorderCostInstr)
					st.ConvergedAtCycles = c.Cycles() - startCycles
					traceDecision(opt.Trace, "impl-switch", c.Cycles(), smp.Counters,
						trace.A("impl", implName(impl)),
						trace.A("est_sels", ordered))
				}
			}
		} else if runOpt && impl == exec.ImplBranchFree {
			// Periodically return to the branching scan for one sampling
			// window so selectivity drift remains observable — but only
			// every resampleEvery optimization points, so the branch-free
			// savings are not squandered on sampling.
			bfOptPoints++
			if bfOptPoints >= resampleEvery {
				bfOptPoints = 0
				st.ImplSwitches++
				impl = exec.ImplBranching
				if !opt.DisablePredictorReset {
					c.ResetPredictor()
				}
				c.Exec(opt.ReorderCostInstr)
				traceDecision(opt.Trace, "impl-switch", c.Cycles(), delta,
					trace.A("impl", implName(impl)),
					trace.A("resample", true))
			}
		}
		prevVecCycles = vecCycles
	}

	out.Cycles = c.Cycles() - startCycles
	out.Millis = c.MillisOf(out.Cycles)
	out.Counters = c.Sample().Sub(start)
	st.Vectors = out.Vectors
	st.FinalOrder = curPerm
	if opt.Trace != nil {
		opt.Trace.Instant("plan-final", c.Cycles(),
			trace.A("order", curPerm), trace.A("reorders", st.Reorders),
			trace.A("impl", implName(impl)),
			trace.A("converged_at", st.ConvergedAtCycles))
	}
	return out, st, nil
}

// implName renders a scan implementation for trace args.
func implName(impl exec.ScanImpl) string {
	if impl == exec.ImplBranchFree {
		return "branch-free"
	}
	return "branching"
}
