package cache

import "fmt"

// HierarchyConfig describes a three-level data-cache hierarchy plus memory.
type HierarchyConfig struct {
	// L1, L2, L3 are the per-level geometries; all must share one LineSize
	// and each level must be at least as large as the one above it.
	L1, L2, L3 Config
	// MemLatencyCycles is the load-to-use latency of a main-memory access.
	MemLatencyCycles int
	// PrefetchDisabled turns the L2 streamer off (used by ablation benches;
	// the paper's cost model explicitly includes prefetch traffic).
	PrefetchDisabled bool
}

func (c HierarchyConfig) validate() error {
	for _, lv := range []Config{c.L1, c.L2, c.L3} {
		if err := lv.validate(); err != nil {
			return err
		}
	}
	if c.L1.LineSize != c.L2.LineSize || c.L2.LineSize != c.L3.LineSize {
		return fmt.Errorf("cache: line sizes differ across levels (%d/%d/%d)",
			c.L1.LineSize, c.L2.LineSize, c.L3.LineSize)
	}
	if c.L1.SizeBytes > c.L2.SizeBytes || c.L2.SizeBytes > c.L3.SizeBytes {
		return fmt.Errorf("cache: levels must not shrink downward (%d/%d/%d bytes)",
			c.L1.SizeBytes, c.L2.SizeBytes, c.L3.SizeBytes)
	}
	if c.MemLatencyCycles <= 0 {
		return fmt.Errorf("cache: non-positive memory latency %d", c.MemLatencyCycles)
	}
	return nil
}

// HitLevel identifies where a load was satisfied.
type HitLevel int

// Hit levels, ordered by distance from the core.
const (
	HitL1 HitLevel = iota + 1
	HitL2
	HitL3
	HitMem
)

// String returns "L1", "L2", "L3", or "Mem".
func (h HitLevel) String() string {
	switch h {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitL3:
		return "L3"
	case HitMem:
		return "Mem"
	}
	return fmt.Sprintf("HitLevel(%d)", int(h))
}

// AccessResult describes one completed load.
type AccessResult struct {
	// Level is where the line was found.
	Level HitLevel
	// LatencyCycles is the load-to-use latency implied by Level.
	LatencyCycles int
}

// Counters is a snapshot of every event count the hierarchy maintains.
type Counters struct {
	L1, L2, L3 Stats
	// L3PrefetchAccesses counts streamer requests presented to L3; the
	// paper's "L3 access" PMU event is L3.Accesses + L3PrefetchAccesses.
	L3PrefetchAccesses uint64
	// MemAccesses counts line transfers from memory (demand and prefetch).
	MemAccesses uint64
}

// L3TotalAccesses returns the paper's L3-access counter: demand requests that
// missed L2 plus prefetcher requests (§2.2.2).
func (c Counters) L3TotalAccesses() uint64 { return c.L3.Accesses + c.L3PrefetchAccesses }

// Sub returns c - prev, field by field (for vector-granular deltas).
func (c Counters) Sub(prev Counters) Counters {
	sub := func(a, b Stats) Stats {
		return Stats{
			Accesses:        a.Accesses - b.Accesses,
			Hits:            a.Hits - b.Hits,
			Misses:          a.Misses - b.Misses,
			PrefetchInserts: a.PrefetchInserts - b.PrefetchInserts,
		}
	}
	return Counters{
		L1:                 sub(c.L1, prev.L1),
		L2:                 sub(c.L2, prev.L2),
		L3:                 sub(c.L3, prev.L3),
		L3PrefetchAccesses: c.L3PrefetchAccesses - prev.L3PrefetchAccesses,
		MemAccesses:        c.MemAccesses - prev.MemAccesses,
	}
}

// Hierarchy is a three-level inclusive cache hierarchy with an L2 streamer.
type Hierarchy struct {
	cfg                HierarchyConfig
	l1, l2, l3         *Level
	pf                 *StreamPrefetcher
	lineShift          uint
	l3PrefetchAccesses uint64
	memAccesses        uint64
	// lastLine (line id + 1; 0 = invalid) and lastSlot memoize the line of
	// the immediately preceding demand load and its L1 tag slot. A repeat
	// load of the same line is then a guaranteed L1-MRU hit — nothing but
	// the demand load itself writes L1 — and takes an exact fast path that
	// replicates a hit Lookup's counter and LRU effects without the
	// associative search. Batch kernels stream columns op-major, so their
	// sequential loads repeat lines back to back and ride this path.
	lastLine uint64
	lastSlot int
}

// NewHierarchy builds a hierarchy from its configuration.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l1, err := NewLevel(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := NewLevel(cfg.L2)
	if err != nil {
		return nil, err
	}
	l3, err := NewLevel(cfg.L3)
	if err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift < cfg.L1.LineSize {
		shift++
	}
	return &Hierarchy{cfg: cfg, l1: l1, l2: l2, l3: l3, pf: NewStreamPrefetcher(), lineShift: shift}, nil
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// LineSize returns the cache-line size in bytes.
func (h *Hierarchy) LineSize() int { return h.cfg.L1.LineSize }

// LineShift returns log2(LineSize), the byte-address-to-line-id shift.
func (h *Hierarchy) LineShift() uint { return h.lineShift }

// Load performs a demand load of the line containing addr and returns where
// it hit. Fills are inclusive (a miss installs the line in every level above
// the hit level). The streamer observes all demand traffic reaching L2 (that
// is, L1 misses) and pulls upcoming lines into L2 and L3, consuming one L3
// access slot per prefetch request — so the exposed L3-access count is the
// paper's counter: demand L2-misses plus prefetcher requests.
func (h *Hierarchy) Load(addr uint64) AccessResult {
	ln := (addr >> h.lineShift) + 1
	if ln == h.lastLine && h.l1.TouchLine(h.lastSlot, ln) {
		return AccessResult{Level: HitL1, LatencyCycles: h.cfg.L1.LatencyCycles}
	}
	res := h.loadSlow(addr)
	h.lastLine = ln
	h.lastSlot = h.l1.LastSlot()
	return res
}

// loadSlow is the full lookup-and-fill path; after it returns, the demand
// line is L1-resident at l1.LastSlot() as the MRU of its set.
func (h *Hierarchy) loadSlow(addr uint64) AccessResult {
	if h.l1.Lookup(addr) {
		return AccessResult{Level: HitL1, LatencyCycles: h.cfg.L1.LatencyCycles}
	}
	if !h.cfg.PrefetchDisabled {
		line := addr >> h.lineShift
		for _, pl := range h.pf.Observe(line) {
			paddr := pl << h.lineShift
			// Each prefetch request occupies an L3 access slot whether or not
			// the line is already present somewhere.
			h.l3PrefetchAccesses++
			if !h.l3.Contains(paddr) {
				h.memAccesses++
				h.l3.Insert(paddr, true)
			}
			h.l2.Insert(paddr, true)
		}
	}
	if h.l2.Lookup(addr) {
		h.l1.Insert(addr, false)
		return AccessResult{Level: HitL2, LatencyCycles: h.cfg.L2.LatencyCycles}
	}
	if h.l3.Lookup(addr) {
		h.l2.Insert(addr, false)
		h.l1.Insert(addr, false)
		return AccessResult{Level: HitL3, LatencyCycles: h.cfg.L3.LatencyCycles}
	}
	h.memAccesses++
	h.l3.Insert(addr, false)
	h.l2.Insert(addr, false)
	h.l1.Insert(addr, false)
	return AccessResult{Level: HitMem, LatencyCycles: h.cfg.MemLatencyCycles}
}

// TouchRepeat records n further demand loads of the line hit by the
// immediately preceding Load — guaranteed L1-MRU repeats — with effects
// identical to n Load calls of that address. It reports false (no state
// touched) when no valid memo exists; the caller then falls back to Load.
func (h *Hierarchy) TouchRepeat(n int) bool {
	if h.lastLine == 0 {
		return false
	}
	return h.l1.TouchLineN(h.lastSlot, h.lastLine, n)
}

// Counters returns a snapshot of all event counts.
func (h *Hierarchy) Counters() Counters {
	return Counters{
		L1:                 h.l1.Stats(),
		L2:                 h.l2.Stats(),
		L3:                 h.l3.Stats(),
		L3PrefetchAccesses: h.l3PrefetchAccesses,
		MemAccesses:        h.memAccesses,
	}
}

// Flush empties all levels and prefetcher streams; counters are preserved.
func (h *Hierarchy) Flush() {
	h.l1.Flush()
	h.l2.Flush()
	h.l3.Flush()
	h.pf.Reset()
	h.lastLine = 0
}

// ResetCounters zeroes all event counts; cache contents are preserved.
func (h *Hierarchy) ResetCounters() {
	h.l1.ResetStats()
	h.l2.ResetStats()
	h.l3.ResetStats()
	h.l3PrefetchAccesses = 0
	h.memAccesses = 0
}
