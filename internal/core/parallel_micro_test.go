package core

import (
	"testing"

	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// microQuery builds a two-predicate mid-selectivity scan (where branch-free
// execution should win) over a fresh engine/data set pair.
func microQuery(t *testing.T) (*exec.Query, *exec.Engine) {
	t.Helper()
	d, err := tpch.Generate(tpch.Config{Lineitems: 60000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	q := &exec.Query{
		Table: d.Lineitem,
		Ops: []exec.Op{
			&exec.Predicate{Col: d.Lineitem.Column("l_quantity"), Op: exec.LE, I: 25},
			&exec.Predicate{Col: d.Lineitem.Column("l_discount"), Op: exec.LE, F: 0.05},
		},
	}
	e := exec.MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024)
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	return q, e
}

// TestRunParallelMicroAdaptive checks the block-granular micro-adaptive
// driver: results identical to the serial driver, branch-free blocks chosen
// from the merged counters, deterministic repetition, and a makespan below
// the serial run.
func TestRunParallelMicroAdaptive(t *testing.T) {
	q, e := microQuery(t)
	serial, _, err := RunMicroAdaptive(e, q, Options{ReopInterval: 2})
	if err != nil {
		t.Fatal(err)
	}

	runPar := func(workers int) (exec.Result, ParallelMicroAdaptiveStats) {
		qp, _ := microQuery(t)
		p, err := exec.NewParallel(cpu.ScaledXeon(), workers, 1024)
		if err != nil {
			t.Fatal(err)
		}
		res, st, err := RunParallelMicroAdaptive(p, qp, Options{ReopInterval: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res, st
	}

	res4, st4 := runPar(4)
	if res4.Qualifying != serial.Qualifying || res4.Sum != serial.Sum {
		t.Errorf("parallel result %d/%v, serial %d/%v",
			res4.Qualifying, res4.Sum, serial.Qualifying, serial.Sum)
	}
	if st4.BranchFreeVectors == 0 {
		t.Error("merged counters never selected the branch-free scan")
	}
	if st4.Optimizations == 0 {
		t.Error("no optimizations ran")
	}
	if st4.Workers != 4 {
		t.Errorf("Workers = %d", st4.Workers)
	}
	if res4.Vectors != serial.Vectors {
		t.Errorf("vector counts diverge: %d vs %d", res4.Vectors, serial.Vectors)
	}
	if res4.Cycles >= serial.Cycles {
		t.Errorf("4-core makespan %d not below serial %d", res4.Cycles, serial.Cycles)
	}

	resAgain, stAgain := runPar(4)
	if resAgain.Cycles != res4.Cycles || resAgain.Counters != res4.Counters {
		t.Error("parallel micro-adaptive run not deterministic")
	}
	if stAgain.BranchFreeVectors != st4.BranchFreeVectors || stAgain.ImplSwitches != st4.ImplSwitches {
		t.Errorf("impl decisions not deterministic: %+v vs %+v", stAgain, st4)
	}
}

// TestRunParallelMicroAdaptiveJoinIneligible: queries with non-predicate
// operators must run fully branching.
func TestRunParallelMicroAdaptiveJoinIneligible(t *testing.T) {
	d, err := tpch.Generate(tpch.Config{Lineitems: 20000, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.MustNew(cpu.ScaledXeon())
	filter := &exec.Predicate{Col: d.Orders.Column("o_orderdate"), Op: exec.LE, I: int64(tpch.QuantileInt32(d.Orders.Column("o_orderdate"), 0.5))}
	j, err := exec.NewFKJoin(c, d.Lineitem.Column("l_orderkey"), d.NumOrders, filter, "join-orders")
	if err != nil {
		t.Fatal(err)
	}
	q := &exec.Query{
		Table: d.Lineitem,
		Ops: []exec.Op{
			&exec.Predicate{Col: d.Lineitem.Column("l_quantity"), Op: exec.LE, I: 25},
			j,
		},
	}
	if err := exec.MustEngine(c, 1024).BindQuery(q); err != nil {
		t.Fatal(err)
	}
	p, err := exec.NewParallel(cpu.ScaledXeon(), 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := RunParallelMicroAdaptive(p, q, Options{ReopInterval: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.BranchFreeVectors != 0 || st.ImplSwitches != 0 {
		t.Errorf("join query ran branch-free: %+v", st)
	}
}
