package peo

import (
	"math"
	"testing"
	"testing/quick"

	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/costmodel/markov"
)

func params(nPreds int) Params {
	widths := make([]int, nPreds)
	for i := range widths {
		widths[i] = 8
	}
	return Params{
		N:         1 << 20,
		Widths:    widths,
		AggWidths: []int{8},
		Geometry:  cachemodel.MustGeometry(64, 16384),
		Chain:     markov.Paper(),
	}
}

func TestCountersValidation(t *testing.T) {
	p := params(2)
	if _, err := Counters(p, []float64{0.5}); err == nil {
		t.Error("selectivity count mismatch accepted")
	}
	p.N = 0
	if _, err := Counters(p, []float64{0.5, 0.5}); err == nil {
		t.Error("zero tuples accepted")
	}
	p = params(2)
	p.Widths[1] = 0
	if _, err := Counters(p, []float64{0.5, 0.5}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Counters(Params{N: 10, Chain: markov.Paper()}, nil); err == nil {
		t.Error("no predicates accepted")
	}
}

func TestCountersBNTExact(t *testing.T) {
	// BNT is an exact combinatorial quantity: sum of selectivity-product
	// prefixes times N.
	p := params(3)
	sels := []float64{0.5, 0.4, 0.2}
	est, err := Counters(p, sels)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(p.N)
	want := n*0.5 + n*0.5*0.4 + n*0.5*0.4*0.2
	if math.Abs(est.BNT-want) > 1e-6 {
		t.Errorf("BNT = %v, want %v", est.BNT, want)
	}
	if math.Abs(est.Qualifying-n*0.04) > 1e-6 {
		t.Errorf("Qualifying = %v, want %v", est.Qualifying, n*0.04)
	}
}

func TestCountersBranchIdentity(t *testing.T) {
	// 2n - BTaken = qualifying (§2.2.1): BTaken = n (loop) + failures, and
	// failures = n - qualifying.
	f := func(s1, s2, s3 uint16) bool {
		sels := []float64{
			float64(s1) / math.MaxUint16,
			float64(s2) / math.MaxUint16,
			float64(s3) / math.MaxUint16,
		}
		p := params(3)
		est, err := Counters(p, sels)
		if err != nil {
			return false
		}
		got := 2*float64(p.N) - est.BTaken
		return math.Abs(got-est.Qualifying) < 1e-6*float64(p.N)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCountersOrderSensitivity(t *testing.T) {
	// The same query under two PEOs: selective-first produces fewer BNT,
	// fewer L3 accesses, and fewer cycles. This is the signal the whole
	// paper exploits.
	p := params(2)
	selFirst := []float64{0.1, 0.9}
	selLast := []float64{0.9, 0.1}
	a, err := Counters(p, selFirst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Counters(p, selLast)
	if err != nil {
		t.Fatal(err)
	}
	if a.BNT >= b.BNT {
		t.Errorf("selective-first BNT %v not below %v", a.BNT, b.BNT)
	}
	if a.L3 >= b.L3 {
		t.Errorf("selective-first L3 %v not below %v", a.L3, b.L3)
	}
	if a.Qualifying != b.Qualifying {
		t.Error("output cardinality must be order independent")
	}
	ca, _ := Cycles(p, DefaultCostParams(), selFirst)
	cb, _ := Cycles(p, DefaultCostParams(), selLast)
	if ca >= cb {
		t.Errorf("selective-first cycles %v not below %v", ca, cb)
	}
}

func TestCountersMispredictionShape(t *testing.T) {
	p := params(1)
	mpAt := func(s float64) float64 {
		est, err := Counters(p, []float64{s})
		if err != nil {
			t.Fatal(err)
		}
		return est.MP()
	}
	if mpAt(0.001) > mpAt(0.5)/10 {
		t.Error("MP at extreme selectivity should be tiny vs 50%")
	}
	if mpAt(0.999) > mpAt(0.5)/10 {
		t.Error("MP at extreme selectivity should be tiny vs 50%")
	}
}

func TestCountersClampsSelectivities(t *testing.T) {
	p := params(2)
	a, err := Counters(p, []float64{-0.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Counters(p, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("out-of-range selectivities not clamped")
	}
}

func TestCyclesPositiveAndMonotoneInN(t *testing.T) {
	p := params(3)
	sels := []float64{0.3, 0.5, 0.7}
	c1, err := Cycles(p, DefaultCostParams(), sels)
	if err != nil {
		t.Fatal(err)
	}
	if c1 <= 0 {
		t.Fatal("non-positive cycle estimate")
	}
	p2 := p
	p2.N = p.N * 2
	c2, _ := Cycles(p2, DefaultCostParams(), sels)
	if c2 <= c1 {
		t.Error("cycles not increasing with tuple count")
	}
}

func TestBestOrderAscendingSelectivity(t *testing.T) {
	p := params(4)
	sels := []float64{0.9, 0.1, 0.5, 0.3}
	order, err := BestOrder(p, DefaultCostParams(), sels)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("BestOrder = %v, want %v", order, want)
		}
	}
}

func TestBestOrderIsPermutation(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		sels := make([]float64, len(raw))
		for i, r := range raw {
			sels[i] = float64(r) / math.MaxUint16
		}
		p := params(len(sels))
		order, err := BestOrder(p, DefaultCostParams(), sels)
		if err != nil {
			return false
		}
		seen := make([]bool, len(order))
		for _, v := range order {
			if v < 0 || v >= len(order) || seen[v] {
				return false
			}
			seen[v] = true
		}
		// Verify ascending selectivity.
		for i := 1; i < len(order); i++ {
			if sels[order[i]] < sels[order[i-1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBestOrderMinimizesCyclesExhaustively(t *testing.T) {
	// For uniform widths, ascending selectivity must beat every other
	// permutation under the Cycles model.
	p := params(3)
	sels := []float64{0.7, 0.2, 0.5}
	best, _ := BestOrder(p, DefaultCostParams(), sels)
	permuted := func(order []int) []float64 {
		out := make([]float64, len(order))
		for i, o := range order {
			out[i] = sels[o]
		}
		return out
	}
	bestCycles, _ := Cycles(p, DefaultCostParams(), permuted(best))
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		c, _ := Cycles(p, DefaultCostParams(), permuted(perm))
		if c < bestCycles-1e-6 {
			t.Errorf("permutation %v (%v cycles) beats BestOrder %v (%v)", perm, c, best, bestCycles)
		}
	}
}
