package exec

import (
	"math"
	"testing"

	"progopt/internal/columnar"
	"progopt/internal/datagen"
	"progopt/internal/hw/pmu"
	"progopt/internal/tpch"
)

func TestBranchFreeMatchesBranchingResults(t *testing.T) {
	tb := testTable(t, 30000)
	eA := newEngine(t)
	q := buildQuery(t, tb, eA, 35, 65)
	branching, err := eA.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	eB := newEngine(t)
	free, err := eB.RunBranchFree(q)
	if err != nil {
		t.Fatal(err)
	}
	if free.Qualifying != branching.Qualifying {
		t.Errorf("qualifying %d vs %d", free.Qualifying, branching.Qualifying)
	}
	if math.Abs(free.Sum-branching.Sum) > 1e-9 {
		t.Errorf("sum %v vs %v", free.Sum, branching.Sum)
	}
}

func TestBranchFreeHasNoPredicateMispredictions(t *testing.T) {
	tb := testTable(t, 30000)
	e := newEngine(t)
	q := buildQuery(t, tb, e, 50, 50) // worst case for the predictor
	res, err := e.RunBranchFree(q)
	if err != nil {
		t.Fatal(err)
	}
	// Only the always-taken loop branch exists; after warm-up it never
	// mispredicts.
	if mp := res.Counters.Get(pmu.BrMP); mp > 2 {
		t.Errorf("branch-free scan suffered %d mispredictions", mp)
	}
	if cond := res.Counters.Get(pmu.BrCond); cond != uint64(tb.NumRows()) {
		t.Errorf("conditional branches %d, want one loop branch per tuple (%d)", cond, tb.NumRows())
	}
}

// TestBranchFreeCrossover: branch-free wins at 50% selectivity (maximum
// misprediction cost for branching); with a very selective first predicate
// over a deeper PEO, branching's short-circuiting wins — the Ross [19]
// trade-off. (With only two cheap predicates branching does NOT win even at
// low selectivity: the conditional read's random misses cost more than the
// saved evaluation, the §3.1 double-counting effect.)
func TestBranchFreeCrossover(t *testing.T) {
	const n = 60000
	rng := datagen.NewRNG(77)
	tb := columnar.NewTable("bf")
	for _, name := range []string{"a", "b", "c", "d"} {
		tb.MustAddColumn(columnar.NewInt64(name, datagen.UniformInt64(rng, n, 0, 99)))
	}
	cost := func(firstBound int64, branchFree bool) uint64 {
		e := newEngine(t)
		q := &Query{
			Table: tb,
			Ops: []Op{
				&Predicate{Col: tb.Column("a"), Op: LT, I: firstBound},
				&Predicate{Col: tb.Column("b"), Op: LT, I: 50},
				&Predicate{Col: tb.Column("c"), Op: LT, I: 50},
				&Predicate{Col: tb.Column("d"), Op: LT, I: 50},
			},
		}
		if err := e.BindQuery(q); err != nil {
			t.Fatal(err)
		}
		var res Result
		var err error
		if branchFree {
			res, err = e.RunBranchFree(q)
		} else {
			res, err = e.Run(q)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	// Mid selectivity everywhere: branch-free must win.
	if bf, br := cost(50, true), cost(50, false); bf >= br {
		t.Errorf("sel 50%%: branch-free %d cycles not below branching %d", bf, br)
	}
	// Highly selective first predicate over four columns: branching must win.
	if bf, br := cost(2, true), cost(2, false); br >= bf {
		t.Errorf("sel 2%% of four: branching %d cycles not below branch-free %d", br, bf)
	}
}

func TestBranchFreeRejectsJoins(t *testing.T) {
	d := tpch.MustGenerate(tpch.Config{Lineitems: 1000, Seed: 1})
	e := newEngine(t)
	j, err := NewFKJoin(e.CPU(), d.Lineitem.Column("l_orderkey"), d.NumOrders, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{Table: d.Lineitem, Ops: []Op{j}}
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	if BranchFreeEligible(q) {
		t.Error("join marked branch-free eligible")
	}
	if _, err := e.RunVectorBranchFree(q, 0, 100); err == nil {
		t.Error("branch-free scan accepted a join")
	}
}

func TestRunVectorImplDispatch(t *testing.T) {
	tb := testTable(t, 2000)
	e := newEngine(t)
	q := buildQuery(t, tb, e, 50, 50)
	a, err := e.RunVectorImpl(q, 0, 1000, ImplBranching)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunVectorImpl(q, 0, 1000, ImplBranchFree)
	if err != nil {
		t.Fatal(err)
	}
	if a.Qualifying != b.Qualifying {
		t.Error("implementations disagree")
	}
	if _, err := e.RunVectorImpl(q, 0, 10, ScanImpl(9)); err == nil {
		t.Error("unknown implementation accepted")
	}
	if ImplBranching.String() != "branching" || ImplBranchFree.String() != "branch-free" {
		t.Error("impl names wrong")
	}
}

func TestGroupByCorrectness(t *testing.T) {
	d := tpch.MustGenerate(tpch.Config{Lineitems: 20000, Seed: 2})
	e := newEngine(t)
	qty := d.Lineitem.Column("l_quantity")
	disc := d.Lineitem.Column("l_discount")
	q := &Query{
		Table: d.Lineitem,
		Ops:   []Op{&Predicate{Col: qty, Op: LT, I: 25}},
	}
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	gb, err := NewGroupBy(e.CPU(), qty, disc, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunGroupBy(q, gb)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth.
	want := map[int64]*Group{}
	for i := 0; i < d.Lineitem.NumRows(); i++ {
		k := qty.Int64At(i)
		if k >= 25 {
			continue
		}
		g, ok := want[k]
		if !ok {
			g = &Group{Key: k}
			want[k] = g
		}
		g.Sum += disc.Float64At(i)
		g.Count++
	}
	if len(res.Groups) != len(want) {
		t.Fatalf("%d groups, want %d", len(res.Groups), len(want))
	}
	prev := int64(-1 << 62)
	for _, g := range res.Groups {
		if g.Key <= prev {
			t.Fatal("groups not sorted by key")
		}
		prev = g.Key
		w := want[g.Key]
		if w == nil || g.Count != w.Count || math.Abs(g.Sum-w.Sum) > 1e-9 {
			t.Fatalf("group %d: got (%v, %d), want (%v, %d)", g.Key, g.Sum, g.Count, w.Sum, w.Count)
		}
	}
	if res.Cycles == 0 {
		t.Error("no cycle accounting")
	}
}

func TestGroupByValidation(t *testing.T) {
	d := tpch.MustGenerate(tpch.Config{Lineitems: 100, Seed: 2})
	e := newEngine(t)
	qty := d.Lineitem.Column("l_quantity")
	disc := d.Lineitem.Column("l_discount")
	if _, err := NewGroupBy(e.CPU(), nil, disc, 10); err == nil {
		t.Error("nil group column accepted")
	}
	if _, err := NewGroupBy(e.CPU(), disc, disc, 10); err == nil {
		t.Error("float group column accepted")
	}
	if _, err := NewGroupBy(e.CPU(), qty, disc, 0); err == nil {
		t.Error("zero expected groups accepted")
	}
	q := &Query{Table: d.Lineitem, Ops: []Op{&Predicate{Col: qty, Op: LT, I: 25}}}
	if err := e.BindQuery(q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunGroupBy(q, nil); err == nil {
		t.Error("nil GroupBy accepted")
	}
}
