// Package cache implements a software model of a multi-level CPU data-cache
// hierarchy: set-associative LRU levels, a sequential stream prefetcher, and
// per-level access/hit/miss accounting.
//
// The paper's cache cost model (§3.1) reasons about *L3 accesses*, defined as
// demand requests that miss L2 plus prefetcher requests, because that event
// count is independent of out-of-order execution. The hierarchy here produces
// exactly that counter from the address stream of the simulated query, which
// is what the progressive optimizer samples at vector boundaries.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	// Name is a short label such as "L1" (for reports and errors).
	Name string
	// SizeBytes is the total capacity of the level.
	SizeBytes int
	// LineSize is the cache-line size in bytes; it must be a power of two and
	// identical across all levels of a hierarchy.
	LineSize int
	// Ways is the set associativity; it must divide SizeBytes/LineSize.
	Ways int
	// LatencyCycles is the load-to-use latency of a hit in this level.
	LatencyCycles int
}

// Lines returns the capacity of the level in cache lines (the paper's "#_i").
func (c Config) Lines() int { return c.SizeBytes / c.LineSize }

func (c Config) validate() error {
	if c.SizeBytes <= 0 {
		return fmt.Errorf("cache %s: non-positive size %d", c.Name, c.SizeBytes)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d is not a positive power of two", c.Name, c.LineSize)
	}
	lines := c.SizeBytes / c.LineSize
	if lines*c.LineSize != c.SizeBytes || lines == 0 {
		return fmt.Errorf("cache %s: size %d is not a positive multiple of line size %d", c.Name, c.SizeBytes, c.LineSize)
	}
	if c.Ways <= 0 || lines%c.Ways != 0 {
		return fmt.Errorf("cache %s: %d ways does not divide %d lines", c.Name, c.Ways, lines)
	}
	if c.Ways > 1<<16 {
		return fmt.Errorf("cache %s: %d ways exceeds the supported maximum of %d", c.Name, c.Ways, 1<<16)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, sets)
	}
	if c.LatencyCycles < 0 {
		return fmt.Errorf("cache %s: negative latency", c.Name)
	}
	return nil
}

// Stats accumulates the per-level event counts the PMU exposes.
type Stats struct {
	// Accesses counts lookups (demand only; prefetch inserts are separate).
	Accesses uint64
	// Hits counts lookups that found the line.
	Hits uint64
	// Misses counts lookups that did not find the line.
	Misses uint64
	// PrefetchInserts counts lines installed by the prefetcher.
	PrefetchInserts uint64
}

// slot is one tag-array entry: the resident line's tag plus the slot's links
// in its set's recency ring, interleaved into one cache-friendly record so a
// set probe walks a single contiguous run of memory.
type slot struct {
	tag uint64 // line id + 1; 0 means empty
	// prev/next thread the set's ways into a circular list ordered by
	// recency: the set's head way is the MRU, head.prev is the LRU. Recency
	// is therefore *positional* — there is no timestamp counter anywhere in
	// the level, so LRU state cannot overflow in any run, of any length, by
	// construction (the overflow-safety proof for what used to be a uint64
	// LRU clock). Values are way indices within the set.
	prev, next uint16
}

// Level is one set-associative LRU cache level.
type Level struct {
	cfg      Config
	setMask  uint64
	setShift uint
	ways     int
	slots    []slot   // sets*ways entries, way-major within each set
	heads    []uint16 // per-set MRU way index
	stats    Stats
	// lastSlot is the tag-array index touched by the most recent Lookup hit
	// or Insert, consumed by the hierarchy's same-line fast path.
	lastSlot int
}

// NewLevel builds a cache level from its configuration.
func NewLevel(cfg Config) (*Level, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lines := cfg.Lines()
	sets := lines / cfg.Ways
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	l := &Level{
		cfg:      cfg,
		setMask:  uint64(sets - 1),
		setShift: shift,
		ways:     cfg.Ways,
		slots:    make([]slot, lines),
		heads:    make([]uint16, sets),
	}
	l.linkRings()
	return l, nil
}

// linkRings threads every set's ways into the initial recency ring
// w0 → w1 → ... → w(ways-1) with w0 as head. Empty slots are never touched,
// so they sink behind every occupied way and the ring tail is an empty slot
// for as long as the set has one — matching a fill policy that never evicts
// while an empty way exists.
func (l *Level) linkRings() {
	w := l.ways
	for s := 0; s < len(l.heads); s++ {
		base := s * w
		for i := 0; i < w; i++ {
			l.slots[base+i].prev = uint16((i - 1 + w) % w)
			l.slots[base+i].next = uint16((i + 1) % w)
		}
		l.heads[s] = 0
	}
}

// Config returns the level's configuration.
func (l *Level) Config() Config { return l.cfg }

// Stats returns a copy of the level's counters.
func (l *Level) Stats() Stats { return l.stats }

// line converts a byte address to a line id offset by 1 so that 0 stays an
// "empty slot" sentinel in the tag arrays.
func (l *Level) line(addr uint64) uint64 { return (addr >> l.setShift) + 1 }

// findWay scans one set for the slot holding tag ln and returns its way index
// or -1. The scan is specialized for the shipped associativities (8- and
// 16-way) with constant-bound loops over fixed-size array views so the
// compiler drops all bounds checks and unrolls; the generic loop covers
// other (test-only) geometries.
func findWay(set []slot, ln uint64) int {
	switch len(set) {
	case 8:
		a := (*[8]slot)(set)
		for w := range a {
			if a[w].tag == ln {
				return w
			}
		}
	case 16:
		a := (*[16]slot)(set)
		for w := range a {
			if a[w].tag == ln {
				return w
			}
		}
	default:
		for w := range set {
			if set[w].tag == ln {
				return w
			}
		}
	}
	return -1
}

// moveToHead makes way w the MRU of the set rooted at base. O(1): a no-op
// when w is already the head (the overwhelmingly common case for repeated
// touches, kept small enough to inline), else unlink-and-relink.
func (l *Level) moveToHead(set int, base, w int) {
	if int(l.heads[set]) != w {
		l.moveToHeadSlow(set, base, w)
	}
}

func (l *Level) moveToHeadSlow(set int, base, w int) {
	head := int(l.heads[set])
	sl := &l.slots[base+w]
	if int(l.slots[base+head].prev) == w {
		// w is the ring predecessor of head: rotating the head makes w MRU
		// and keeps every other relative position.
		l.heads[set] = uint16(w)
		return
	}
	// Unlink w ...
	l.slots[base+int(sl.prev)].next = sl.next
	l.slots[base+int(sl.next)].prev = sl.prev
	// ... and splice it in before head (between head.prev and head).
	tail := l.slots[base+head].prev
	sl.prev = tail
	sl.next = uint16(head)
	l.slots[base+int(tail)].next = uint16(w)
	l.slots[base+head].prev = uint16(w)
	l.heads[set] = uint16(w)
}

// Lookup probes the level for the line containing addr, updating LRU state
// and counters. It reports whether the line was present and does NOT insert
// on a miss; the hierarchy decides fills.
func (l *Level) Lookup(addr uint64) bool {
	return l.LookupLine(l.line(addr))
}

// LookupLine is Lookup on a precomputed line id (the hierarchy computes the
// id once per access and probes every level with it — all levels of a
// hierarchy share one line size).
func (l *Level) LookupLine(ln uint64) bool {
	set := int(ln & l.setMask)
	base := set * l.ways
	l.stats.Accesses++
	if w := findWay(l.slots[base:base+l.ways], ln); w >= 0 {
		l.moveToHead(set, base, w)
		l.stats.Hits++
		l.lastSlot = base + w
		return true
	}
	l.stats.Misses++
	return false
}

// LastSlot returns the tag-array index touched by the most recent Lookup hit
// or Insert.
func (l *Level) LastSlot() int { return l.lastSlot }

// TouchLine re-references line ln known (from the immediately preceding
// access) to reside at tag slot idx, with counter and LRU effects identical
// to a hit Lookup: one access, one hit, promotion to MRU. It reports false —
// leaving all state untouched — if the slot no longer holds the line, in
// which case the caller must fall back to Lookup.
func (l *Level) TouchLine(idx int, ln uint64) bool {
	return l.TouchLineN(idx, ln, 1)
}

// TouchLineN is TouchLine repeated n times in one step. Because no other
// access intervenes, n sequential hit Lookups of the same line leave exactly
// this state: n accesses and n hits counted and the line at MRU.
func (l *Level) TouchLineN(idx int, ln uint64, n int) bool {
	if n <= 0 || idx < 0 || idx >= len(l.slots) {
		return false
	}
	return l.touchLineSlotN(idx, ln, n)
}

// touchLineSlotN records n hit-Lookup-equivalent touches of line ln at slot
// idx, validating only that the slot still holds the line (the index is known
// in range). The set is derived from the line id — the same computation every
// probe uses — so the touch fast path carries no division or scan.
func (l *Level) touchLineSlotN(idx int, ln uint64, n int) bool {
	if l.slots[idx].tag != ln {
		return false
	}
	l.stats.Accesses += uint64(n)
	l.stats.Hits += uint64(n)
	set := int(ln & l.setMask)
	l.moveToHead(set, set*l.ways, idx-set*l.ways)
	l.lastSlot = idx
	return true
}

// touchSlotN is touchLineSlotN for a slot the caller just demand-loaded in
// the same batched run (validity established, line id known).
func (l *Level) touchSlotN(idx int, ln uint64, n int) {
	l.stats.Accesses += uint64(n)
	l.stats.Hits += uint64(n)
	set := int(ln & l.setMask)
	l.moveToHead(set, set*l.ways, idx-set*l.ways)
	l.lastSlot = idx
}

// Contains reports whether the line holding addr is present, without touching
// counters or LRU state (used by the prefetcher to avoid duplicate inserts).
func (l *Level) Contains(addr uint64) bool {
	return l.ContainsLine(l.line(addr))
}

// ContainsLine is Contains on a precomputed line id.
func (l *Level) ContainsLine(ln uint64) bool {
	base := int(ln&l.setMask) * l.ways
	return findWay(l.slots[base:base+l.ways], ln) >= 0
}

// Insert installs the line containing addr, evicting the LRU way of its set
// if needed. prefetch marks the insert as prefetcher-initiated for counting.
func (l *Level) Insert(addr uint64, prefetch bool) {
	l.InsertLine(l.line(addr), prefetch)
}

// InsertLine is Insert on a precomputed line id.
func (l *Level) InsertLine(ln uint64, prefetch bool) {
	set := int(ln & l.setMask)
	base := set * l.ways
	if w := findWay(l.slots[base:base+l.ways], ln); w >= 0 {
		// Already present; refresh to MRU.
		l.moveToHead(set, base, w)
		l.lastSlot = base + w
		return
	}
	l.fillLRU(set, base, ln)
	if prefetch {
		l.stats.PrefetchInserts++
	}
}

// insertLineAbsent is InsertLine for a line the caller has just proven absent
// (its own Lookup missed with no intervening mutation of this level) — the
// demand-fill path, which skips the present-already probe entirely.
func (l *Level) insertLineAbsent(ln uint64) {
	set := int(ln & l.setMask)
	l.fillLRU(set, set*l.ways, ln)
}

// fillLRU installs ln in the set's LRU way — the ring tail, which is an
// empty slot whenever the set has one (see linkRings) — and promotes it to
// MRU by rotating the head onto it. O(1), no scan.
func (l *Level) fillLRU(set, base int, ln uint64) {
	victim := l.slots[base+int(l.heads[set])].prev
	l.slots[base+int(victim)].tag = ln
	l.heads[set] = victim
	l.lastSlot = base + int(victim)
}

// Flush empties the level and leaves counters intact. Ring order is not
// reset: with every slot empty, recency among empties is irrelevant (fills
// take the tail, which cycles through the empty ways in ring order).
func (l *Level) Flush() {
	for i := range l.slots {
		l.slots[i].tag = 0
	}
}

// ResetStats zeroes the level's counters.
func (l *Level) ResetStats() { l.stats = Stats{} }
