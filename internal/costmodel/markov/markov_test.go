package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"progopt/internal/hw/branch"
)

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(1, 1); err == nil {
		t.Error("1-state chain accepted")
	}
	if _, err := NewChain(6, 0); err == nil {
		t.Error("0 taken states accepted")
	}
	if _, err := NewChain(6, 6); err == nil {
		t.Error("all-taken chain accepted")
	}
	if _, err := NewChain(6, 3); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
}

func TestStationaryIsDistribution(t *testing.T) {
	f := func(pRaw uint16, statesRaw, takenRaw uint8) bool {
		states := int(statesRaw%7) + 2
		taken := int(takenRaw)%(states-1) + 1
		p := float64(pRaw) / math.MaxUint16
		pi := MustChain(states, taken).Stationary(p)
		sum := 0.0
		for _, v := range pi {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStationaryExtremes(t *testing.T) {
	c := Paper()
	pi0 := c.Stationary(0)
	if pi0[0] != 1 {
		t.Errorf("p=0 mass not at strong-taken: %v", pi0)
	}
	pi1 := c.Stationary(1)
	if pi1[len(pi1)-1] != 1 {
		t.Errorf("p=1 mass not at strong-not-taken: %v", pi1)
	}
	// Clamps out-of-range input.
	if got := c.Stationary(-0.5); got[0] != 1 {
		t.Error("negative p not clamped")
	}
	if got := c.Stationary(1.5); got[len(got)-1] != 1 {
		t.Error("p>1 not clamped")
	}
}

func TestStationarySymmetry(t *testing.T) {
	// An even chain is symmetric: Stationary(p) reversed equals
	// Stationary(1-p).
	c := Paper()
	for _, p := range []float64{0.1, 0.3, 0.5, 0.77} {
		a := c.Stationary(p)
		b := c.Stationary(1 - p)
		for i := range a {
			if math.Abs(a[i]-b[len(b)-1-i]) > 1e-12 {
				t.Fatalf("asymmetry at p=%v state %d: %v vs %v", p, i, a[i], b[len(b)-1-i])
			}
		}
	}
}

func TestPredictProbabilitiesSumToOne(t *testing.T) {
	c := Paper()
	for p := 0.0; p <= 1.0; p += 0.05 {
		r := c.Predict(p)
		if s := r.MP() + r.RP(); math.Abs(s-1) > 1e-9 {
			t.Errorf("p=%v: MP+RP = %v", p, s)
		}
		for _, v := range []float64{r.MPTaken, r.MPNotTaken, r.RPTaken, r.RPNotTaken} {
			if v < -1e-12 || v > 1 {
				t.Errorf("p=%v: rate %v outside [0,1]", p, v)
			}
		}
	}
}

func TestPredictExtremesAreRight(t *testing.T) {
	c := Paper()
	if mp := c.Predict(0).MP(); mp != 0 {
		t.Errorf("MP at p=0 is %v", mp)
	}
	if mp := c.Predict(1).MP(); mp != 0 {
		t.Errorf("MP at p=1 is %v", mp)
	}
	// Worst case near 50%.
	if mp := c.Predict(0.5).MP(); mp < 0.3 {
		t.Errorf("MP at p=0.5 is %v, expected near max", mp)
	}
}

func TestPredictPeakShift(t *testing.T) {
	// The paper (Fig 3) notes taken/not-taken misprediction peaks are offset
	// ~10% from the 50% peak of total mispredictions. Locate the peaks.
	c := Paper()
	argmax := func(f func(Rates) float64) float64 {
		best, bestP := -1.0, 0.0
		for p := 0.0; p <= 1.0; p += 0.01 {
			if v := f(c.Predict(p)); v > best {
				best, bestP = v, p
			}
		}
		return bestP
	}
	pTak := argmax(func(r Rates) float64 { return r.MPTaken })
	pNot := argmax(func(r Rates) float64 { return r.MPNotTaken })
	pAll := argmax(func(r Rates) float64 { return r.MP() })
	if math.Abs(pAll-0.5) > 0.03 {
		t.Errorf("total MP peak at %v, want ~0.5", pAll)
	}
	// A taken branch is mispredicted when the predictor leans not-taken,
	// which happens when most branches are not taken: the taken-MP peak sits
	// above 50% selectivity and the not-taken-MP peak below (Fig 3a/3b).
	if pTak <= 0.5 || pNot >= 0.5 {
		t.Errorf("taken MP peak %v must be above 0.5, not-taken peak %v below", pTak, pNot)
	}
	if math.Abs((0.5-pTak)-(pNot-0.5)) > 0.05 {
		t.Errorf("peak shifts asymmetric: %v vs %v", 0.5-pTak, pNot-0.5)
	}
}

func TestSixStateMatchesSimulatedIvy(t *testing.T) {
	// Keystone of Figure 3: the 6-state chain matches the simulated Ivy
	// Bridge predictor almost exactly, and the 2-state chain does not.
	rng := rand.New(rand.NewSource(99))
	const n = 200000
	maxErr6, maxErr2 := 0.0, 0.0
	for _, p := range []float64{0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9} {
		pred, err := branch.ForArch(branch.ArchIvyBridge)
		if err != nil {
			t.Fatal(err)
		}
		mpT, mpNT := 0, 0
		for i := 0; i < n; i++ {
			taken := rng.Float64() >= p
			out := pred.Observe(0, taken)
			if out.Mispredicted() {
				if taken {
					mpT++
				} else {
					mpNT++
				}
			}
		}
		gotT, gotNT := float64(mpT)/n, float64(mpNT)/n
		r6 := Paper().Predict(p)
		r2 := MustChain(2, 1).Predict(p)
		e6 := math.Max(math.Abs(gotT-r6.MPTaken), math.Abs(gotNT-r6.MPNotTaken))
		e2 := math.Max(math.Abs(gotT-r2.MPTaken), math.Abs(gotNT-r2.MPNotTaken))
		if e6 > maxErr6 {
			maxErr6 = e6
		}
		if e2 > maxErr2 {
			maxErr2 = e2
		}
	}
	if maxErr6 > 0.01 {
		t.Errorf("6-state chain max error vs simulated Ivy %v, want < 0.01", maxErr6)
	}
	if maxErr2 < maxErr6*2 {
		t.Errorf("2-state chain (err %v) should fit far worse than 6-state (err %v)", maxErr2, maxErr6)
	}
}

func TestCounts(t *testing.T) {
	mpT, mpNT, mp := Paper().Counts(0.5, 1000)
	if math.Abs(mp-(mpT+mpNT)) > 1e-9 {
		t.Error("Counts total != parts")
	}
	if mp <= 0 || mp > 500 {
		t.Errorf("Counts(0.5, 1000) mp = %v, want in (0, 500]", mp)
	}
}

func TestZeuchMP(t *testing.T) {
	cases := map[float64]float64{0: 0, 0.25: 0.25, 0.5: 0.5, 0.75: 0.25, 1: 0}
	for p, want := range cases {
		if got := ZeuchMP(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("ZeuchMP(%v) = %v, want %v", p, got, want)
		}
	}
	// The paper's point: Eq. 3 "becomes inaccurate in the selectivity range
	// around 50%". On i.i.d. streams a saturating counter is slightly WORSE
	// than the best static prediction near 50% (it spends stationary mass on
	// the minority side), so the chain model exceeds Eq. 3 there, while both
	// agree at the extremes.
	if diff := Paper().Predict(0.45).MP() - ZeuchMP(0.45); diff <= 0.01 {
		t.Errorf("chain-vs-Zeuch gap at p=0.45 is %v, want clearly positive", diff)
	}
	for _, p := range []float64{0.02, 0.98} {
		if diff := math.Abs(Paper().Predict(p).MP() - ZeuchMP(p)); diff > 0.01 {
			t.Errorf("models disagree by %v at extreme p=%v", diff, p)
		}
	}
}

func TestVariants(t *testing.T) {
	vs := Variants()
	if len(vs) != 8 {
		t.Fatalf("got %d variants, want 8", len(vs))
	}
	wantStates := []int{2, 4, 5, 5, 6, 7, 7, 8}
	for i, v := range vs {
		if v.Chain.States() != wantStates[i] {
			t.Errorf("variant %d (%s): %d states, want %d", i, v.Label, v.Chain.States(), wantStates[i])
		}
		if v.Label == "" {
			t.Errorf("variant %d lacks a label", i)
		}
	}
	// Bias variants differ from each other.
	if Variants()[2].Chain.TakenStates() == Variants()[3].Chain.TakenStates() {
		t.Error("5-state +1NT and +1T must differ in taken states")
	}
}

func TestFourStateFitsAMDSimBetterOnPaperMetric(t *testing.T) {
	// The AMD profile is a 4-state counter; verify the 4-state chain fits the
	// simulated AMD predictor better than the 6-state chain does.
	rng := rand.New(rand.NewSource(123))
	const n = 200000
	err4, err6 := 0.0, 0.0
	for _, p := range []float64{0.2, 0.4, 0.5, 0.6, 0.8} {
		pred, _ := branch.ForArch(branch.ArchAMD)
		mp := 0
		for i := 0; i < n; i++ {
			taken := rng.Float64() >= p
			if pred.Observe(0, taken).Mispredicted() {
				mp++
			}
		}
		got := float64(mp) / n
		err4 += math.Abs(got - AMD().Predict(p).MP())
		err6 += math.Abs(got - Paper().Predict(p).MP())
	}
	if err4 >= err6 {
		t.Errorf("4-state chain error %v not below 6-state %v on AMD sim", err4, err6)
	}
}
