package cpu

import (
	"math/rand"
	"reflect"
	"testing"

	"progopt/internal/hw/branch"
)

// Property test for the satellite acceptance criterion: the run-batched load
// and branch paths (LoadSeq, LoadSel, LoadAddrs, CondBranchN) must leave
// every PMU counter — cache events at every level, branch events, retired
// instructions — and the cycle clock bit-identical to the equivalent
// per-element Load/CondBranch sequences, across random strides, selections,
// address streams, cache configurations, and both predictor families.

func randProfile(rng *rand.Rand) Profile {
	p := ScaledXeon()
	if rng.Intn(2) == 0 {
		p.Arch = branch.ArchNehalem // gshare: exercises the loop ObserveN path
	}
	hier := &p.Hierarchy
	if rng.Intn(2) == 0 {
		hier.L1.Ways = 4
		hier.L2.Ways = 4
	}
	if rng.Intn(2) == 0 {
		hier.PrefetchDisabled = true
	}
	if rng.Intn(2) == 0 {
		hier.L1.SizeBytes = 1 << 10
	}
	return p
}

func TestRunBatchedPathsMatchPerElement(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		prof := randProfile(rng)
		ref := MustNew(prof)
		bat := MustNew(prof)
		for step := 0; step < 40; step++ {
			switch rng.Intn(5) {
			case 0: // strided run
				start := uint64(rng.Intn(1 << 22))
				stride := []int{4, 8, 24, 64, 160}[rng.Intn(5)]
				n := rng.Intn(400) + 1
				for i := 0; i < n; i++ {
					ref.Load(start + uint64(i)*uint64(stride))
				}
				bat.LoadSeq(start, stride, n)
			case 1: // selection gather
				base := uint64(rng.Intn(1 << 22))
				stride := []int{4, 8}[rng.Intn(2)]
				nrows := rng.Intn(300) + 1
				rows := make([]int32, 0, nrows)
				row := int32(rng.Intn(4))
				for len(rows) < nrows {
					rows = append(rows, row)
					row += int32(rng.Intn(12))
				}
				for _, r := range rows {
					ref.Load(base + uint64(r)*uint64(stride))
				}
				bat.LoadSel(base, stride, rows)
			case 2: // data-dependent address stream
				n := rng.Intn(300) + 1
				addrs := make([]uint64, n)
				for i := range addrs {
					addrs[i] = uint64(rng.Intn(1<<18)) * 16
					if i > 0 && rng.Intn(4) == 0 {
						addrs[i] = addrs[i-1]
					}
				}
				for _, a := range addrs {
					ref.Load(a)
				}
				bat.LoadAddrs(addrs)
			case 3: // same-direction branch batch
				site := rng.Intn(6)
				taken := rng.Intn(2) == 0
				n := rng.Intn(200) + 1
				for i := 0; i < n; i++ {
					ref.CondBranch(site, taken)
				}
				bat.CondBranchN(site, taken, n)
			default: // interleaved singles keep both sides' state honest
				site := rng.Intn(6)
				taken := rng.Intn(2) == 0
				addr := uint64(rng.Intn(1 << 22))
				ref.CondBranch(site, taken)
				ref.Load(addr)
				bat.CondBranch(site, taken)
				bat.Load(addr)
			}
			a, b := ref.Sample(), bat.Sample()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("trial %d step %d (arch %s): samples diverge:\n per-elem %v\n batched  %v",
					trial, step, prof.Arch, a, b)
			}
			if ref.Cycles() != bat.Cycles() {
				t.Fatalf("trial %d step %d: cycles %d vs %d", trial, step, ref.Cycles(), bat.Cycles())
			}
		}
	}
}

// TestAddrBufReuse pins the scratch contract: capacity grows to the largest
// request and the same backing array is handed out again.
func TestAddrBufReuse(t *testing.T) {
	c := MustNew(ScaledXeon())
	b1 := c.AddrBuf(100)
	if len(b1) != 0 || cap(b1) < 100 {
		t.Fatalf("AddrBuf(100) = len %d cap %d", len(b1), cap(b1))
	}
	b1 = append(b1, 1, 2, 3)
	b2 := c.AddrBuf(50)
	if &b1[0] != &b2[:1][0] {
		t.Fatal("AddrBuf did not reuse the backing array")
	}
}
