package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync"

	"progopt/internal/columnar"
	"progopt/internal/tpch"
)

// This file memoizes the deterministic parts of experiment setup. Dataset
// construction (tpch.Generate and the windowed shuffles) is a pure function
// of its parameters, yet the figure harnesses rebuild it from scratch on
// every invocation — under `go test -bench` that construction dominated a
// third of some figures' wall clock. The cache keeps one materialized copy
// per parameter tuple and hands out header-only clones: fresh Table/Column
// objects (so binding state never leaks between invocations — every caller
// binds exactly as if it had generated the data itself) over the shared,
// never-mutated value slices.
//
// Simulated results are unaffected: callers receive bit-identical values and
// identical (un)bound state, so the simulated address assignment and every
// event stream match a cache-free run exactly.

// dsKey identifies a deterministic dataset: the generator parameters plus,
// for shuffled variants, the shuffle window and seed (window 0 = unshuffled).
type dsKey struct {
	rows       int
	seed       int64
	window     int
	windowSeed int64
}

// dsCacheCap bounds retained datasets; misses past the cap build uncached.
const dsCacheCap = 32

var (
	dsMu    sync.Mutex
	dsCache = map[dsKey]*tpch.Dataset{}

	sortedMu sync.Mutex
	// sortedCache maps a column's backing array (first-element pointer —
	// clones share it) to an ascending-sorted copy for quantile probes.
	sortedCache = map[*int32][]int32{}
)

// cloneTable re-wraps every column of t in a fresh, unbound Column sharing
// the same value slice.
func cloneTable(t *columnar.Table) *columnar.Table {
	out := columnar.NewTable(t.Name())
	for _, c := range t.Columns() {
		switch c.Kind() {
		case columnar.Int64:
			out.MustAddColumn(columnar.NewInt64(c.Name(), c.I64()))
		case columnar.Int32:
			out.MustAddColumn(columnar.NewInt32(c.Name(), c.I32()))
		case columnar.Date:
			out.MustAddColumn(columnar.NewDate(c.Name(), c.I32()))
		case columnar.Float64:
			out.MustAddColumn(columnar.NewFloat64(c.Name(), c.F64()))
		}
	}
	return out
}

func cloneDataset(d *tpch.Dataset) *tpch.Dataset {
	return &tpch.Dataset{
		Lineitem:  cloneTable(d.Lineitem),
		Orders:    cloneTable(d.Orders),
		Part:      cloneTable(d.Part),
		NumOrders: d.NumOrders,
		NumParts:  d.NumParts,
	}
}

func dsLookup(k dsKey) (*tpch.Dataset, bool) {
	dsMu.Lock()
	d, ok := dsCache[k]
	dsMu.Unlock()
	if !ok {
		return nil, false
	}
	return cloneDataset(d), true
}

func dsStore(k dsKey, d *tpch.Dataset) {
	dsMu.Lock()
	if len(dsCache) < dsCacheCap {
		dsCache[k] = d
	}
	dsMu.Unlock()
}

// cachedDataset returns a private clone of tpch.Generate(rows, seed).
func cachedDataset(rows int, seed int64) (*tpch.Dataset, error) {
	k := dsKey{rows: rows, seed: seed}
	if d, ok := dsLookup(k); ok {
		return d, nil
	}
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: seed})
	if err != nil {
		return nil, err
	}
	dsStore(k, d)
	return cloneDataset(d), nil
}

// cachedShuffledDataset returns a private clone of
// base.ShuffleLineitemWindow(window, windowSeed), where base is the cached
// dataset for (rows, seed). d0 must be that base (any clone of it).
func cachedShuffledDataset(d0 *tpch.Dataset, rows int, seed int64, window int, windowSeed int64) *tpch.Dataset {
	k := dsKey{rows: rows, seed: seed, window: window, windowSeed: windowSeed}
	if d, ok := dsLookup(k); ok {
		return d
	}
	d := d0.ShuffleLineitemWindow(window, windowSeed)
	dsStore(k, d)
	return cloneDataset(d)
}

// cachedEncodedLineitem returns the PCOL v2 encoding of d.Lineitem at the
// given block size, caching the encoded file on disk so repeated harness
// invocations (and `go test -bench` re-runs) skip the encode. key must
// uniquely determine the lineitem contents (rows, seed, ordering). Files are
// written to a temp file in the cache directory and renamed into place, so a
// concurrent or interrupted writer never leaves a torn file; any unreadable
// cache entry falls back to a fresh encode.
func cachedEncodedLineitem(d *tpch.Dataset, key string, blockRows int) (*columnar.EncodedTable, error) {
	dir := filepath.Join(os.TempDir(), "progopt-pcol-cache")
	path := filepath.Join(dir, fmt.Sprintf("lineitem-%s-b%d.pcol", key, blockRows))
	if f, err := os.Open(path); err == nil {
		enc, rerr := columnar.ReadEncoded(f)
		f.Close()
		if rerr == nil && enc.NumRows() == d.Lineitem.NumRows() && enc.BlockRows() == blockRows {
			return enc, nil
		}
		// Torn or stale cache entry: drop it and re-encode.
		os.Remove(path)
	}
	enc, err := columnar.EncodeTable(d.Lineitem, blockRows)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return enc, nil // cache is best-effort
	}
	tmp, err := os.CreateTemp(dir, ".lineitem-*")
	if err != nil {
		return enc, nil
	}
	if err := columnar.WriteEncoded(tmp, enc); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return enc, nil
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return enc, nil
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
	return enc, nil
}

// cachedQuantileInt32 is tpch.QuantileInt32 with the sorted copy memoized per
// backing array, so repeated quantile probes of one (possibly cloned) column
// sort it once.
func cachedQuantileInt32(c *columnar.Column, q float64) int32 {
	vals := c.I32()
	if len(vals) == 0 {
		return tpch.QuantileInt32(c, q)
	}
	key := &vals[0]
	sortedMu.Lock()
	sorted, ok := sortedCache[key]
	if !ok {
		sorted = slices.Clone(vals)
		slices.Sort(sorted)
		if len(sortedCache) < dsCacheCap {
			sortedCache[key] = sorted
		}
	}
	sortedMu.Unlock()
	return tpch.QuantileSortedInt32(sorted, q)
}
