// Adaptive scan: the paper's headline experiment in miniature. Execute a
// Q6-style plan under every one of a set of initial predicate orders, with
// and without progressive optimization, on sorted data whose optimal order
// changes mid-scan (§5.4). Progressive optimization flattens the runtime
// across initial orders — robustness is the point, not just peak speed.
package main

import (
	"fmt"
	"log"

	"progopt"
)

func main() {
	eng, err := progopt.New(progopt.Config{VectorSize: 1024})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := eng.GenerateTPCH(120_000, 7, progopt.OrderSorted)
	if err != nil {
		log.Fatal(err)
	}
	// Q6's five atomic comparisons, declared as one plan.
	q, err := eng.Compile(ds, progopt.Scan("lineitem").
		Filter("l_shipdate", progopt.CmpGE, int64(ds.ShipdateCutoff(0.2))).Label("ship>=p20").
		Filter("l_shipdate", progopt.CmpLT, int64(ds.ShipdateCutoff(0.6))).Label("ship<p60").
		Filter("l_discount", progopt.CmpGE, 0.05).
		Filter("l_discount", progopt.CmpLE, 0.07).
		Filter("l_quantity", progopt.CmpLT, 24).
		Sum("l_extendedprice * l_discount"))
	if err != nil {
		log.Fatal(err)
	}

	orders := [][]int{
		{0, 1, 2, 3, 4}, // written order
		{4, 3, 2, 1, 0}, // reversed
		{2, 3, 0, 1, 4}, // discount first
		{1, 0, 4, 3, 2}, // shipdate upper bound first
		{3, 4, 1, 2, 0}, // mixed
	}

	fmt.Println("initial order     baseline_ms  progressive_ms  speedup")
	fmt.Println("--------------------------------------------------------")
	var worstBase, worstProg float64
	for _, perm := range orders {
		qo, err := q.WithOrder(perm)
		if err != nil {
			log.Fatal(err)
		}
		base, err := eng.Exec(qo, progopt.ExecOptions{Mode: progopt.ModeFixed})
		if err != nil {
			log.Fatal(err)
		}
		prog, err := eng.Exec(qo, progopt.ExecOptions{
			Mode:        progopt.ModeProgressive,
			Progressive: progopt.Progressive{Interval: 10},
		})
		if err != nil {
			log.Fatal(err)
		}
		if base.Millis > worstBase {
			worstBase = base.Millis
		}
		if prog.Millis > worstProg {
			worstProg = prog.Millis
		}
		fmt.Printf("%v   %8.2f     %8.2f       %.2fx\n", perm, base.Millis, prog.Millis, base.Millis/prog.Millis)
	}
	fmt.Printf("\nworst-case runtime: baseline %.2f ms vs progressive %.2f ms (%.2fx more robust)\n",
		worstBase, worstProg, worstBase/worstProg)
}
