package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 7} }

func cell(t *testing.T, r *Report, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(r.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("report %s cell (%d,%d) = %q not numeric: %v", r.ID, row, col, r.Rows[row][col], err)
	}
	return v
}

func colIndex(t *testing.T, r *Report, name string) int {
	t.Helper()
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("report %s lacks column %q (have %v)", r.ID, name, r.Columns)
	return -1
}

// runAll exercises every experiment in Quick mode; structural checks only.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments sweep")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			reps, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(reps) == 0 {
				t.Fatalf("%s returned no reports", e.ID)
			}
			for _, r := range reps {
				if len(r.Rows) == 0 {
					t.Errorf("%s/%s has no rows", e.ID, r.ID)
				}
				for i, row := range r.Rows {
					if len(row) != len(r.Columns) {
						t.Errorf("%s/%s row %d has %d cells for %d columns", e.ID, r.ID, i, len(row), len(r.Columns))
					}
				}
				if !strings.Contains(r.String(), r.Title) {
					t.Errorf("%s/%s String() lacks title", e.ID, r.ID)
				}
				if lines := strings.Count(r.CSV(), "\n"); lines != len(r.Rows)+1 {
					t.Errorf("%s/%s CSV has %d lines, want %d", e.ID, r.ID, lines, len(r.Rows)+1)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig07")
	if err != nil || e.ID != "fig07" {
		t.Fatalf("ByID(fig07) = %v, %v", e.ID, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFig01ShapeRatioAboveOneAtLowSelectivity(t *testing.T) {
	reps, err := Fig01(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := reps[0]
	ci := colIndex(t, r, "worst_best_ratio")
	// Figure 1's shape: the ratio is large (>2) at the lowest selectivity
	// and shrinks toward high selectivity.
	lowest := cell(t, r, 0, ci)
	highest := cell(t, r, len(r.Rows)-1, ci)
	if lowest < 1.5 {
		t.Errorf("worst/best at lowest selectivity = %v, want > 1.5", lowest)
	}
	if highest >= lowest {
		t.Errorf("ratio did not shrink with selectivity: %v -> %v", lowest, highest)
	}
	for i := range r.Rows {
		if v := cell(t, r, i, ci); v < 1 {
			t.Errorf("row %d: worst/best ratio %v < 1", i, v)
		}
	}
}

func TestFig02ShapeBranchCurves(t *testing.T) {
	reps, err := Fig02(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := reps[0]
	bnt := colIndex(t, r, "br_not_taken_pct")
	mp := colIndex(t, r, "br_mp_pct")
	// BNT rises 0 -> 100 with selectivity.
	if cell(t, r, 0, bnt) > 5 || cell(t, r, len(r.Rows)-1, bnt) < 95 {
		t.Error("branches-not-taken curve wrong")
	}
	// MP is low at the ends and higher in the middle.
	mid := len(r.Rows) / 2
	if !(cell(t, r, mid, mp) > cell(t, r, 0, mp) && cell(t, r, mid, mp) > cell(t, r, len(r.Rows)-1, mp)) {
		t.Error("misprediction curve not peaked in the middle")
	}
}

func TestFig03SixStateTracksIvy(t *testing.T) {
	reps, err := Fig03(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	all := reps[2]
	six := colIndex(t, all, "6 States")
	two := colIndex(t, all, "2 States")
	ivy := colIndex(t, all, "Ivy Sample")
	var err6, err2 float64
	for i := range all.Rows {
		d6 := cell(t, all, i, six) - cell(t, all, i, ivy)
		d2 := cell(t, all, i, two) - cell(t, all, i, ivy)
		err6 += d6 * d6
		err2 += d2 * d2
	}
	if err6 >= err2 {
		t.Errorf("6-state total error %v not below 2-state %v", err6, err2)
	}
}

func TestFig07MatchesPaperNumbers(t *testing.T) {
	reps, err := Fig07(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := reps[0]
	ub := colIndex(t, r, "upper_bnt")
	lb := colIndex(t, r, "lower_bnt")
	// Paper: upper [100, 95, 66, 10], lower [67, 50, 10, 10].
	wantU := []float64{100, 95, 66.7, 10}
	wantL := []float64{66.7, 50, 10, 10}
	for i := range wantU {
		if got := cell(t, r, i, ub); got < wantU[i]-1 || got > wantU[i]+1 {
			t.Errorf("upper BNT[%d] = %v, want ~%v", i, got, wantU[i])
		}
		if got := cell(t, r, i, lb); got < wantL[i]-1 || got > wantL[i]+1 {
			t.Errorf("lower BNT[%d] = %v, want ~%v", i, got, wantL[i])
		}
	}
}

func TestFig11ProgressiveFlattensBadOrders(t *testing.T) {
	reps, err := Fig11(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := reps[0]
	base := colIndex(t, r, "base_ms")
	opt := colIndex(t, r, "optimized_ms")
	last := len(r.Rows) - 1
	// For the slowest baseline PEO, progressive must win clearly.
	if cell(t, r, last, opt) >= cell(t, r, last, base) {
		t.Errorf("worst PEO: optimized %v not below baseline %v",
			cell(t, r, last, opt), cell(t, r, last, base))
	}
	// Spread of optimized times is much narrower than baseline spread.
	baseSpread := cell(t, r, last, base) / cell(t, r, 0, base)
	optSpread := cell(t, r, last, opt) / cell(t, r, 0, opt)
	if optSpread > baseSpread {
		t.Errorf("optimized spread %v exceeds baseline spread %v", optSpread, baseSpread)
	}
}

func TestFig14CrossoverInMissesAndRuntime(t *testing.T) {
	reps, err := Fig14(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rt := reps[0]
	selMs := colIndex(t, rt, "selection_first_ms")
	joinMs := colIndex(t, rt, "join_first_ms")
	// Sorted end (first row): join-first at least as good; random end (last
	// row): selection-first wins (the paper's break-even behaviour).
	first, last := 0, len(rt.Rows)-1
	if cell(t, rt, first, joinMs) > cell(t, rt, first, selMs)*1.05 {
		t.Errorf("sorted data: join-first %v much slower than selection-first %v",
			cell(t, rt, first, joinMs), cell(t, rt, first, selMs))
	}
	if cell(t, rt, last, selMs) >= cell(t, rt, last, joinMs) {
		t.Errorf("random data: selection-first %v not below join-first %v",
			cell(t, rt, last, selMs), cell(t, rt, last, joinMs))
	}
	// Cache misses grow with shuffle distance for join-first.
	cm := reps[1]
	jm := colIndex(t, cm, "join_first_l3miss")
	if cell(t, cm, last, jm) <= cell(t, cm, first, jm) {
		t.Error("join-first misses did not grow with shuffle distance")
	}
}

func TestFig15OrdersFirstAlwaysWins(t *testing.T) {
	reps, err := Fig15(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rt := reps[0]
	of := colIndex(t, rt, "orders_first_ms")
	pf := colIndex(t, rt, "part_first_ms")
	for i := range rt.Rows {
		if cell(t, rt, i, of) >= cell(t, rt, i, pf) {
			t.Errorf("row %d: orders-first %v not below part-first %v",
				i, cell(t, rt, i, of), cell(t, rt, i, pf))
		}
	}
	cm := reps[1]
	ofm := colIndex(t, cm, "orders_first_l3miss")
	pfm := colIndex(t, cm, "part_first_l3miss")
	for i := range cm.Rows {
		if cell(t, cm, i, ofm) >= cell(t, cm, i, pfm) {
			t.Errorf("row %d: orders-first misses %v not below part-first %v",
				i, cell(t, cm, i, ofm), cell(t, cm, i, pfm))
		}
	}
}

func TestFig16EnumeratorDwarfsPMU(t *testing.T) {
	reps, err := Fig16(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := reps[0]
	en := colIndex(t, r, "enumerator_overhead_pct")
	pa := colIndex(t, r, "papi_overhead_pct")
	for i := range r.Rows {
		enum, papi := cell(t, r, i, en), cell(t, r, i, pa)
		if enum < papi*10 {
			t.Errorf("row %d: enumerator overhead %v%% not ≫ papi %v%%", i, enum, papi)
		}
		if papi > 1 {
			t.Errorf("row %d: papi overhead %v%% not negligible", i, papi)
		}
	}
	// Enumerator overhead grows with predicate count.
	if cell(t, r, len(r.Rows)-1, en) <= cell(t, r, 0, en) {
		t.Error("enumerator overhead did not grow with predicates")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID: "x", Title: "t",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"33", "4"}},
		Notes:   []string{"n1"},
	}
	s := r.String()
	if !strings.Contains(s, "note: n1") {
		t.Error("notes missing")
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestSamplePerms(t *testing.T) {
	perms := [][]int{{0}, {1}, {2}, {3}, {4}, {5}}
	if got := samplePerms(perms, 0); len(got) != 6 {
		t.Error("k=0 must keep all")
	}
	if got := samplePerms(perms, 10); len(got) != 6 {
		t.Error("k>len must keep all")
	}
	got := samplePerms(perms, 3)
	if len(got) != 3 || got[0][0] != 0 {
		t.Errorf("samplePerms(3) = %v", got)
	}
}
