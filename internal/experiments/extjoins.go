package experiments

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/core"
	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// ExtJoins measures join-graph ordering as the graph grows from 2 to 5
// tables (lineitem → orders, part; orders → customer; customer → nation):
// the statistics-free greedy order (smallest build relation first under
// connectivity — janus-datalog's baseline), the static cost-model order
// (rank = predicted-random-miss cost / (1-selectivity), Eq. (1) without
// observed counters), and the PMU-progressive optimizer starting from the
// greedy order. The configurations are skewed the way §5.6 likes them: the
// orders edge filters hard (5% survive) and probes co-clustered keys, so
// both static orders are wrong — greedy prices by size alone, the cost
// model must assume random probe locality — and the observed PMU deltas are
// what reveals the cheap, selective join that belongs first.
//
// The figure self-validates: all three orders produce identical answers,
// the progressive run moves off the greedy order on every (skewed) point —
// by estimator-driven reorder or by a kept §4.5 exploration probe, which is
// what escapes the structural load weights' own static assumptions — and
// the converged order's fixed-cost run is never worse than greedy's.
func ExtJoins(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	rows := cfg.Lineitems
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	prof := cpu.ScaledXeon()
	geom := cachemodel.Geometry{
		LineSize:      prof.Hierarchy.L3.LineSize,
		CapacityLines: prof.Hierarchy.L3.Lines(),
	}
	reopInt := 5

	// The edge pool, in attachment order. Selectivities are the nominal
	// filter fractions the static cost model is given.
	ordersCut := int64(tpch.QuantileInt32(d.Orders.Column("o_orderdate"), 0.05))
	type edgeSpec struct {
		name    string
		keyCol  string   // driving-table key column
		viaCols []string // "table.column" hops after the key
		rows    int
		filter  func() *exec.Predicate
		stat    core.GraphJoin
	}
	edges := []edgeSpec{
		{
			name: "orders", keyCol: "l_orderkey", rows: d.NumOrders,
			filter: func() *exec.Predicate {
				return &exec.Predicate{Col: d.Orders.Column("o_orderdate"), Op: exec.LE, I: ordersCut}
			},
			stat: core.GraphJoin{Name: "orders", From: "lineitem", To: "orders",
				BuildRows: d.NumOrders, BuildWidth: 4, Probes: rows, Selectivity: 0.05},
		},
		{
			name: "part", keyCol: "l_partkey", rows: d.NumParts,
			filter: func() *exec.Predicate {
				return &exec.Predicate{Col: d.Part.Column("p_size"), Op: exec.LE, I: 45}
			},
			stat: core.GraphJoin{Name: "part", From: "lineitem", To: "part",
				BuildRows: d.NumParts, BuildWidth: 4, Probes: rows, Selectivity: 0.9},
		},
		{
			name: "customer", keyCol: "l_orderkey", viaCols: []string{"o_custkey"}, rows: d.NumCustomers,
			filter: func() *exec.Predicate {
				return &exec.Predicate{Col: d.Customer.Column("c_acctbal"), Op: exec.GE, F: 4500}
			},
			stat: core.GraphJoin{Name: "customer", From: "orders", To: "customer",
				BuildRows: d.NumCustomers, BuildWidth: 8, Probes: rows, Selectivity: 0.5},
		},
		{
			name: "nation", keyCol: "l_orderkey", viaCols: []string{"o_custkey", "c_nationkey"}, rows: d.NumNations,
			filter: func() *exec.Predicate {
				return &exec.Predicate{Col: d.Nation.Column("n_regionkey"), Op: exec.LE, I: 1}
			},
			stat: core.GraphJoin{Name: "nation", From: "customer", To: "nation",
				BuildRows: d.NumNations, BuildWidth: 4, Probes: rows, Selectivity: 0.4},
		},
	}
	// Multi-hop probe paths: o_custkey lives in orders, c_nationkey in
	// customer.
	viaColumn := map[string]*columnar.Column{
		"o_custkey":   d.Orders.Column("o_custkey"),
		"c_nationkey": d.Customer.Column("c_nationkey"),
	}

	rep := &Report{
		ID:    "ext-joins",
		Title: "Extension: join-graph ordering — greedy v. static cost model v. PMU-progressive, 2-5 tables",
		Columns: []string{
			"tables", "greedy_ms", "costmodel_ms",
			"pmu_run_ms", "pmu_final_ms", "converged_ms", "reorders", "probes",
		},
		Notes: []string{
			fmt.Sprintf("%d lineitems; orders edge: 5%% selective, co-clustered probes; part: 90%%, random probes", rows),
			"greedy: smallest build relation first under connectivity (no statistics)",
			"costmodel: rank = Eq.(1) predicted-random-miss cost / (1-sel) — cannot see co-clustering",
			"pmu_run: progressive run from the greedy order (observation included); pmu_final: fixed run under its converged order",
			"probes: §4.5 exploration rotations issued (validation keeps or reverts each)",
		},
	}

	for nTables := 2; nTables <= 5; nTables++ {
		active := edges[:nTables-1]
		r, err := newRig(prof, cfg)
		if err != nil {
			return nil, err
		}
		// Op 0 is the driving-table predicate (58% selective): both static
		// orders place it first — cheapest per row — which the skew makes
		// wrong, since the orders join drops 95% of rows.
		ops := []exec.Op{&exec.Predicate{Col: d.Lineitem.Column("l_quantity"), Op: exec.LT, I: 30}}
		for _, s := range active {
			via := make([]*columnar.Column, 0, len(s.viaCols))
			for _, vc := range s.viaCols {
				via = append(via, viaColumn[vc])
			}
			j, err := exec.NewFKJoinVia(r.cpu, d.Lineitem.Column(s.keyCol), via, s.rows, s.filter(), "join-"+s.name)
			if err != nil {
				return nil, err
			}
			ops = append(ops, j)
		}
		price := d.Lineitem.Column("l_extendedprice")
		disc := d.Lineitem.Column("l_discount")
		q := &exec.Query{Table: d.Lineitem, Ops: ops,
			Agg: &exec.Aggregate{
				Cols: []*columnar.Column{price, disc},
				F:    func(r int) float64 { return price.F64()[r] * disc.F64()[r] },
			}}
		if err := r.bind(q); err != nil {
			return nil, err
		}

		stats := make([]core.GraphJoin, len(active))
		for i, s := range active {
			stats[i] = s.stat
		}
		greedyEdges, err := core.GreedyGraphOrder("lineitem", stats)
		if err != nil {
			return nil, err
		}
		cmEdges, err := core.CostModelGraphOrder(geom, "lineitem", stats)
		if err != nil {
			return nil, err
		}
		// Edge-space → op-space: the driving predicate keeps position 0.
		toPerm := func(edgeOrder []int) []int {
			perm := make([]int, 0, len(edgeOrder)+1)
			perm = append(perm, 0)
			for _, ei := range edgeOrder {
				perm = append(perm, ei+1)
			}
			return perm
		}
		greedyPerm, cmPerm := toPerm(greedyEdges), toPerm(cmEdges)

		greedy, err := r.measureBaseline(q, greedyPerm)
		if err != nil {
			return nil, err
		}
		cm, err := r.measureBaseline(q, cmPerm)
		if err != nil {
			return nil, err
		}
		prog, pstats, err := r.measureProgressiveOpts(q, greedyPerm,
			core.Options{ReopInterval: reopInt, ExploreEvery: 2})
		if err != nil {
			return nil, err
		}
		// Fixed run under the converged order (plan quality of the PMU
		// optimizer's answer).
		qGreedy, err := q.WithOrder(greedyPerm)
		if err != nil {
			return nil, err
		}
		final, err := r.measureBaseline(qGreedy, pstats.FinalOrder)
		if err != nil {
			return nil, err
		}

		// Self-validation: same answer under every order; the PMU optimizer
		// must reorder on these skewed configurations and end no worse than
		// greedy.
		for label, res := range map[string]exec.Result{"costmodel": cm, "progressive": prog, "pmu-final": final} {
			if res.Qualifying != greedy.Qualifying || res.Sum != greedy.Sum {
				return nil, fmt.Errorf("experiments: ext-joins %d tables: %s answer diverges from greedy (%d/%v vs %d/%v)",
					nTables, label, res.Qualifying, res.Sum, greedy.Qualifying, greedy.Sum)
			}
		}
		moved := pstats.Reorders >= 1
		for i := range pstats.FinalOrder {
			if pstats.FinalOrder[i] != greedyPerm[i] {
				moved = true
			}
		}
		if !moved {
			return nil, fmt.Errorf("experiments: ext-joins %d tables: progressive never moved off the greedy order on a skewed configuration", nTables)
		}
		if final.Cycles > greedy.Cycles {
			return nil, fmt.Errorf("experiments: ext-joins %d tables: converged order (%d cycles) worse than greedy (%d)",
				nTables, final.Cycles, greedy.Cycles)
		}

		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", nTables),
			fmtMs(r.millis(greedy.Cycles)),
			fmtMs(r.millis(cm.Cycles)),
			fmtMs(r.millis(prog.Cycles)),
			fmtMs(r.millis(final.Cycles)),
			fmtMs(r.millis(pstats.ConvergedAtCycles)),
			fmt.Sprintf("%d", pstats.Reorders),
			fmt.Sprintf("%d", pstats.Explorations),
		})
	}
	return []*Report{rep}, nil
}
