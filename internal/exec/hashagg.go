package exec

import (
	"fmt"
	"sort"

	"progopt/internal/columnar"
	"progopt/internal/hw/cpu"
)

// GroupBy is a hash-based grouping aggregate over the qualifying tuples of a
// query: SELECT group, SUM(value), COUNT(*) ... GROUP BY group. It extends
// the engine beyond pure selections — the paper's future work (§7) names
// integrating further relational operators — and exercises the cache
// substrate with the random-write pattern of hash-table maintenance, which
// the Manegold cost model's r_trav pattern predicts.
type GroupBy struct {
	// GroupCol is the grouping key column (integer-kind).
	GroupCol *columnar.Column
	// ValueCol is the summed column.
	ValueCol *columnar.Column

	tableBase uint64
	mask      uint64
	expected  int
}

// groupSlotBytes models one hash-table slot (key, sum, count).
const groupSlotBytes = 24

// NewGroupBy builds the aggregate and reserves its hash-table region sized
// for the expected number of distinct groups.
func NewGroupBy(alloc columnar.Allocator, group, value *columnar.Column, expectedGroups int) (*GroupBy, error) {
	if group == nil || value == nil {
		return nil, fmt.Errorf("exec: group-by needs group and value columns")
	}
	switch group.Kind() {
	case columnar.Int64, columnar.Int32, columnar.Date:
	default:
		return nil, fmt.Errorf("exec: group column %q must be integer-kind, is %v", group.Name(), group.Kind())
	}
	if expectedGroups <= 0 {
		return nil, fmt.Errorf("exec: non-positive expected group count %d", expectedGroups)
	}
	buckets := uint64(1)
	for buckets < 2*uint64(expectedGroups) {
		buckets <<= 1
	}
	base, err := alloc.Alloc(int(buckets) * groupSlotBytes)
	if err != nil {
		return nil, err
	}
	return &GroupBy{GroupCol: group, ValueCol: value, tableBase: base, mask: buckets - 1, expected: expectedGroups}, nil
}

// Group is one output row of a GroupBy.
type Group struct {
	// Key is the group key.
	Key int64
	// Sum is the aggregated value.
	Sum float64
	// Count is the number of contributing tuples.
	Count int64
}

// GroupResult is the grouped output plus execution metrics.
type GroupResult struct {
	// Groups are the output rows, sorted by key.
	Groups []Group
	// Result carries cardinality/cycles/counters of the run.
	Result
}

// groupUpdateCostInstr is the hash-table maintenance cost per qualifying
// tuple (hash, compare key, add, increment).
const groupUpdateCostInstr = 6

// groupMergeCostInstr is the per-slot cost of merging one partial hash-table
// slot into the final table at the barrier of a parallel grouped aggregation
// (add sum, add count, possibly insert).
const groupMergeCostInstr = 4

// slotAddr returns the simulated address of the key's hash-table slot.
func (g *GroupBy) slotAddr(key int64) uint64 {
	bucket := (uint64(key) * 2654435761) & g.mask
	return g.tableBase + bucket*groupSlotBytes
}

// touch simulates the hash-table slot access of one aggregate update (the
// read-modify-write of key, sum, count) on c. Column loads are the caller's:
// per-row in the scalar loop, gathered per selection in the batch path.
func (g *GroupBy) touch(c *cpu.CPU, row int) {
	c.Load(g.slotAddr(g.GroupCol.Int64At(row)))
}

// apply performs the Go-level accumulation of one update into acc. Split
// from touch so a parallel run can simulate per-core partial tables while
// reducing values in global row order (deterministic, bit-identical sums
// across worker counts).
func (g *GroupBy) apply(acc *groupTable, row int) {
	gr := acc.at(g.GroupCol.Int64At(row))
	gr.Sum += g.ValueCol.Float64At(row)
	gr.Count++
}

// applyRef is the retired map-based accumulation, kept as the reference the
// property tests pin the open-addressing table against.
func (g *GroupBy) applyRef(acc map[int64]*Group, row int) {
	key := g.GroupCol.Int64At(row)
	gr, ok := acc[key]
	if !ok {
		gr = &Group{Key: key}
		acc[key] = gr
	}
	gr.Sum += g.ValueCol.Float64At(row)
	gr.Count++
}

// accTable builds the host accumulator sized from the Compile-time
// distinct-domain estimate this GroupBy was constructed with.
func (g *GroupBy) accTable() *groupTable { return newGroupTable(g.expected) }

// GroupVector runs the query's operators over rows [lo, hi) and simulates
// the hash-aggregate update for each survivor in g's table, under the
// engine's execution mode. It returns the qualifying selection in ascending
// row order (valid until the next batch call on e); the caller folds it into
// its accumulator via g's apply, so simulation placement (which core's cache
// sees the hash table) and value reduction order are decoupled.
func (e *Engine) GroupVector(q *Query, g *GroupBy, lo, hi int) ([]int32, error) {
	if err := e.checkVector(q, lo, hi); err != nil {
		return nil, err
	}
	if e.skipVector(lo, hi) {
		return nil, nil
	}
	c := e.cpu
	ops := q.Ops
	loopSite := len(ops)
	if e.scalar {
		if err := e.ensureSel(hi - lo); err != nil {
			return nil, err
		}
		sel := e.selA[:0]
		for row := lo; row < hi; row++ {
			pass := true
			for si := 0; si < len(ops); si++ {
				ok := ops[si].Eval(c, row)
				c.CondBranch(si, !ok)
				if !ok {
					pass = false
					break
				}
			}
			if pass {
				c.Load(g.GroupCol.Addr(row))
				c.Load(g.ValueCol.Addr(row))
				c.Exec(groupUpdateCostInstr)
				g.touch(c, row)
				sel = append(sel, int32(row))
			}
			c.Exec(loopOverheadInstr)
			c.CondBranch(loopSite, true)
		}
		return sel, nil
	}
	sel, err := e.batchSelect(q, lo, hi)
	if err != nil {
		return nil, err
	}
	c.LoadSel(g.GroupCol.Base(), g.GroupCol.Width(), sel)
	c.LoadSel(g.ValueCol.Base(), g.ValueCol.Width(), sel)
	// Hash-table slot touches: a data-dependent address stream, gathered and
	// simulated as one run (repeated keys collapse into counted touches
	// exactly as repeated per-row Loads would).
	addrs := c.AddrBuf(len(sel))
	for _, r := range sel {
		addrs = append(addrs, g.slotAddr(g.GroupCol.Int64At(int(r))))
	}
	c.LoadAddrs(addrs)
	c.Exec(groupUpdateCostInstr * len(sel))
	c.Exec(loopOverheadInstr * (hi - lo))
	c.CondBranchN(loopSite, true, hi-lo)
	return sel, nil
}

// RunGroupBy executes the query's filters and aggregates survivors into g's
// hash table, vector at a time under the engine's execution mode. The
// query's own Agg is ignored; g defines the aggregation.
func (e *Engine) RunGroupBy(q *Query, g *GroupBy) (GroupResult, error) {
	if err := q.Validate(); err != nil {
		return GroupResult{}, err
	}
	if g == nil {
		return GroupResult{}, fmt.Errorf("exec: nil GroupBy")
	}
	c := e.cpu
	start := c.Sample()
	startCycles := c.Cycles()

	acc := g.accTable()
	n := q.Table.NumRows()
	var out GroupResult
	for lo := 0; lo < n; lo += e.vectorSize {
		hi := lo + e.vectorSize
		if hi > n {
			hi = n
		}
		sel, err := e.GroupVector(q, g, lo, hi)
		if err != nil {
			return GroupResult{}, err
		}
		for _, r := range sel {
			g.apply(acc, int(r))
		}
		out.Qualifying += int64(len(sel))
		out.Vectors++
	}

	out.Groups = acc.groups()
	out.Cycles = c.Cycles() - startCycles
	out.Millis = c.MillisOf(out.Cycles)
	out.Counters = c.Sample().Sub(start)
	return out, nil
}

// groupsOfMap flattens a map-based reference accumulator into key-sorted
// output rows (test-only companion to applyRef).
func groupsOfMap(acc map[int64]*Group) []Group {
	out := make([]Group, 0, len(acc))
	for _, gr := range acc {
		out = append(out, *gr)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}
