package exec

import "fmt"

// OpCounts records explicit per-operator counters maintained by the
// enumerator-based (invasive) instrumentation the paper compares against in
// §5.7: the compiled loop increments a memory counter after every operator
// evaluation and every pass, which is how one obtains individual
// selectivities without a PMU.
type OpCounts struct {
	// Evaluated counts tuples reaching each operator.
	Evaluated []int64
	// Passed counts tuples surviving each operator.
	Passed []int64
}

// Selectivities derives per-operator selectivities from the counts.
func (oc OpCounts) Selectivities() []float64 {
	out := make([]float64, len(oc.Evaluated))
	for i := range out {
		if oc.Evaluated[i] > 0 {
			out[i] = float64(oc.Passed[i]) / float64(oc.Evaluated[i])
		}
	}
	return out
}

// counterCostInstr is the per-increment cost of an explicit counter: a
// load-increment-store chain on a hot cache line.
const counterCostInstr = 3

// RunVectorInstrumented is RunVector with enumerator-based instrumentation:
// the loop body additionally maintains the explicit counters, paying
// counterCostInstr per maintained count — the overhead Figure 16 measures.
func (e *Engine) RunVectorInstrumented(q *Query, lo, hi int, oc *OpCounts) (VectorResult, error) {
	if err := q.Validate(); err != nil {
		return VectorResult{}, err
	}
	if oc == nil {
		return VectorResult{}, fmt.Errorf("exec: nil OpCounts")
	}
	if len(oc.Evaluated) != len(q.Ops) || len(oc.Passed) != len(q.Ops) {
		return VectorResult{}, fmt.Errorf("exec: OpCounts sized %d/%d for %d ops",
			len(oc.Evaluated), len(oc.Passed), len(q.Ops))
	}
	n := q.Table.NumRows()
	if lo < 0 || hi > n || lo > hi {
		return VectorResult{}, fmt.Errorf("exec: vector [%d,%d) outside table of %d rows", lo, hi, n)
	}
	if e.skipVector(lo, hi) {
		return VectorResult{}, nil
	}
	c := e.cpu
	ops := q.Ops
	loopSite := len(ops)
	var res VectorResult
	for row := lo; row < hi; row++ {
		pass := true
		for si := 0; si < len(ops); si++ {
			ok := ops[si].Eval(c, row)
			oc.Evaluated[si]++
			c.Exec(counterCostInstr)
			if ok {
				oc.Passed[si]++
				c.Exec(counterCostInstr)
			}
			c.CondBranch(si, !ok)
			if !ok {
				pass = false
				break
			}
		}
		if pass {
			if q.Agg != nil {
				for _, col := range q.Agg.Cols {
					c.Load(col.Addr(row))
				}
				c.Exec(q.Agg.cost())
				res.Sum += q.Agg.F(row)
			}
			res.Qualifying++
		}
		c.Exec(loopOverheadInstr)
		c.CondBranch(loopSite, true)
	}
	return res, nil
}

// RunInstrumented executes the whole table with enumerator instrumentation
// and returns totals plus the explicit counters.
func (e *Engine) RunInstrumented(q *Query) (Result, OpCounts, error) {
	if err := q.Validate(); err != nil {
		return Result{}, OpCounts{}, err
	}
	oc := OpCounts{
		Evaluated: make([]int64, len(q.Ops)),
		Passed:    make([]int64, len(q.Ops)),
	}
	start := e.cpu.Sample()
	startCycles := e.cpu.Cycles()
	var out Result
	n := q.Table.NumRows()
	for lo := 0; lo < n; lo += e.vectorSize {
		hi := lo + e.vectorSize
		if hi > n {
			hi = n
		}
		vr, err := e.RunVectorInstrumented(q, lo, hi, &oc)
		if err != nil {
			return Result{}, OpCounts{}, err
		}
		out.Qualifying += vr.Qualifying
		out.Sum += vr.Sum
		out.Vectors++
	}
	out.Cycles = e.cpu.Cycles() - startCycles
	out.Millis = e.cpu.MillisOf(out.Cycles)
	out.Counters = e.cpu.Sample().Sub(start)
	return out, oc, nil
}
