package progopt

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// The storage acceptance criterion: a plan over the stored (PCOL v2) data
// set with an unbounded resident set produces the exact rows, aggregates,
// and PMU counters of the same plan over the in-RAM data set, in every Exec
// mode, at Workers 1 and 4, fused and unfused. Only reported Cycles may
// differ — by the priced tier's stall debt, and on a serial engine by
// exactly the run's stall cycles.

// storedQ6Plan is the suite's workhorse: Q6's five reorderable predicates
// plus the aggregate, in the deliberately bad reversed order.
func storedQ6Plan() *Plan {
	return Scan("lineitem").
		Filter("l_quantity", CmpLT, 24).Label("quantity<24").
		Filter("l_discount", CmpLE, 0.07+1e-9).Label("discount<=0.07").
		Filter("l_discount", CmpGE, 0.05-1e-9).Label("discount>=0.05").
		Filter("l_shipdate", CmpLT, 9000).Label("shipdate<hi").
		Filter("l_shipdate", CmpGE, 8766).Label("shipdate>=lo").
		Sum("l_extendedprice * l_discount")
}

// storedSetup compiles the plan on a fresh engine over a fresh data set.
func storedSetup(t *testing.T, cfg Config, order Ordering, p *Plan) (*Engine, *Dataset, *Query) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.GenerateTPCH(30000, 21, order)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(d, p)
	if err != nil {
		t.Fatal(err)
	}
	return e, d, q
}

// TestStoredFaithfulBitIdentity runs the full acceptance matrix: every mode,
// Workers 1 and 4, fused and unfused, RAM engine vs stored engine with a
// priced tier and unbounded resident set.
func TestStoredFaithfulBitIdentity(t *testing.T) {
	stcfg := &StorageConfig{LatencyCycles: 500, BytesPerCycle: 16}
	for _, workers := range []int{1, 4} {
		for _, noFuse := range []bool{false, true} {
			for _, mode := range []Mode{ModeFixed, ModeProgressive, ModeMicroAdaptive} {
				name := fmt.Sprintf("workers=%d/nofuse=%v/%s", workers, noFuse, mode)
				t.Run(name, func(t *testing.T) {
					opts := ExecOptions{Mode: mode, Progressive: Progressive{Interval: 5}}
					ramCfg := Config{VectorSize: 1024, Workers: workers, NoFuse: noFuse}
					eRAM, _, qRAM := storedSetup(t, ramCfg, OrderNatural, storedQ6Plan())
					want, err := eRAM.Exec(qRAM, opts)
					if err != nil {
						t.Fatal(err)
					}
					stCfg := ramCfg
					stCfg.Storage = stcfg
					eST, _, qST := storedSetup(t, stCfg, OrderNatural, storedQ6Plan())
					got, err := eST.Exec(qST, opts)
					if err != nil {
						t.Fatal(err)
					}
					if got.Qualifying != want.Qualifying || got.Sum != want.Sum {
						t.Errorf("answers diverge: %d/%v vs %d/%v",
							got.Qualifying, got.Sum, want.Qualifying, want.Sum)
					}
					// The tier observes: every PMU counter — cycles event
					// included — matches the in-RAM run bit for bit.
					if !reflect.DeepEqual(got.Counters, want.Counters) {
						t.Errorf("PMU counters diverge:\n ram    %v\n stored %v", want.Counters, got.Counters)
					}
					sameStats(t, "stored", want.Stats, got.Stats)
					st := got.Storage
					if st == nil {
						t.Fatal("stored run reported no StorageStats")
					}
					if st.BlockFetches == 0 || st.StallCycles == 0 {
						t.Fatalf("priced tier saw no traffic: %+v", st)
					}
					if st.Evictions != 0 {
						t.Errorf("unbounded resident set evicted %d blocks", st.Evictions)
					}
					if workers == 1 {
						if got.Cycles != want.Cycles+st.StallCycles {
							t.Errorf("serial cycles %d != ram %d + stalls %d",
								got.Cycles, want.Cycles, st.StallCycles)
						}
					} else {
						if got.Cycles <= want.Cycles || got.Cycles > want.Cycles+st.StallCycles {
							t.Errorf("parallel cycles %d outside (ram %d, ram+stalls %d]",
								got.Cycles, want.Cycles, want.Cycles+st.StallCycles)
						}
					}
				})
			}
		}
	}
}

// TestStoredDeterminism pins stored execution (priced tier, zone maps,
// compression, bounded budget all on) to itself: two independently built
// engines produce bit-identical everything, including tier counters.
func TestStoredDeterminism(t *testing.T) {
	cfg := Config{VectorSize: 1024, Workers: 4, Storage: &StorageConfig{
		BlockRows: 2048, LatencyCycles: 300, BytesPerCycle: 8,
		ResidentBytes: 64 << 10, SkipScan: true, CompressedScan: true,
	}}
	run := func() ExecResult {
		e, _, q := storedSetup(t, cfg, OrderSorted, storedQ6Plan())
		r, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	sameResult(t, "stored-determinism", a.Result, b.Result)
	if !reflect.DeepEqual(a.Storage, b.Storage) {
		t.Errorf("storage stats diverge:\n %+v\n %+v", a.Storage, b.Storage)
	}
}

// TestStoredSkipScanProperty is the randomized skip-scan oracle: for random
// predicates, block sizes, vector sizes, and row orderings, a zone-map
// skip-scan returns the answers of the same engine with skipping off.
func TestStoredSkipScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orders := []Ordering{OrderNatural, OrderSorted, OrderClustered, OrderRandom}
	cmps := []Cmp{CmpLE, CmpLT, CmpGE, CmpGT, CmpEQ}
	skippedTotal := 0
	for trial := 0; trial < 12; trial++ {
		vectorSize := []int{512, 1024, 1536}[rng.Intn(3)]
		blockRows := []int{512, 1000, 2048, 4096}[rng.Intn(4)]
		order := orders[rng.Intn(len(orders))]
		workers := []int{1, 4}[rng.Intn(2)]
		p := Scan("lineitem").
			Filter("l_shipdate", cmps[rng.Intn(4)], int64(8000+rng.Intn(2000))).
			Filter("l_quantity", cmps[rng.Intn(len(cmps))], int64(1+rng.Intn(50))).
			Sum("l_extendedprice * l_discount")
		run := func(skip bool) (ExecResult, int) {
			cfg := Config{VectorSize: vectorSize, Workers: workers, Storage: &StorageConfig{
				BlockRows: blockRows, LatencyCycles: 100, BytesPerCycle: 64, SkipScan: skip,
			}}
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			d, err := e.GenerateTPCH(20000+rng.Intn(3)*3000, int64(trial), order)
			if err != nil {
				t.Fatal(err)
			}
			q, err := e.Compile(d, p)
			if err != nil {
				t.Fatal(err)
			}
			r, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			return r, r.Storage.VectorsSkipped
		}
		// Same rng draws for both runs: rebuild the data set deterministically.
		seedState := rng.Int63()
		rng = rand.New(rand.NewSource(seedState))
		full, _ := run(false)
		rng = rand.New(rand.NewSource(seedState))
		skip, skipped := run(true)
		skippedTotal += skipped
		if full.Qualifying != skip.Qualifying || full.Sum != skip.Sum {
			t.Errorf("trial %d (vs=%d br=%d %s w=%d): skip-scan %d/%v, full scan %d/%v",
				trial, vectorSize, blockRows, order, workers,
				skip.Qualifying, skip.Sum, full.Qualifying, full.Sum)
		}
	}
	if skippedTotal == 0 {
		t.Error("no trial ever skipped a vector; the property test is vacuous")
	}
}

// TestStoredSkipScanPrunes pins the headline pruning claim: on shipdate-
// sorted data a selective shipdate predicate lets zone maps prune at least
// half the blocks, and the skipping engine spends fewer cycles than the
// non-skipping one.
func TestStoredSkipScanPrunes(t *testing.T) {
	plan := func(d *Dataset) *Plan {
		return Scan("lineitem").
			Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.10))).Label("ship10").
			Sum("l_extendedprice * l_discount")
	}
	run := func(skip bool) ExecResult {
		e, err := New(Config{VectorSize: 1024, Storage: &StorageConfig{
			BlockRows: 1024, LatencyCycles: 200, BytesPerCycle: 32, SkipScan: skip,
		}})
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.GenerateTPCH(30000, 3, OrderSorted)
		if err != nil {
			t.Fatal(err)
		}
		q, err := e.Compile(d, plan(d))
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	full, skip := run(false), run(true)
	if full.Qualifying != skip.Qualifying || full.Sum != skip.Sum {
		t.Fatalf("answers diverge: %d/%v vs %d/%v", skip.Qualifying, skip.Sum, full.Qualifying, full.Sum)
	}
	st := skip.Storage
	if st.BlocksPruned*2 < st.BlocksTotal {
		t.Errorf("selective predicate pruned %d/%d blocks, want >= half", st.BlocksPruned, st.BlocksTotal)
	}
	if st.VectorsSkipped == 0 {
		t.Error("no vectors skipped despite pruned blocks")
	}
	if skip.Cycles >= full.Cycles {
		t.Errorf("skip-scan cycles %d not below full-scan %d", skip.Cycles, full.Cycles)
	}
}

// TestStoredCompressedScan: pricing predicate scans over the packed images
// changes no answer but moves fewer simulated bytes through the hierarchy
// (the mem_access counter counts lines fetched from memory).
func TestStoredCompressedScan(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			run := func(compressed bool) ExecResult {
				cfg := Config{VectorSize: 1024, Workers: workers, Storage: &StorageConfig{
					LatencyCycles: 100, BytesPerCycle: 64, CompressedScan: compressed,
				}}
				e, _, q := storedSetup(t, cfg, OrderNatural, storedQ6Plan())
				r, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			plain, packed := run(false), run(true)
			if plain.Qualifying != packed.Qualifying || plain.Sum != packed.Sum {
				t.Fatalf("answers diverge: %d/%v vs %d/%v",
					packed.Qualifying, packed.Sum, plain.Qualifying, plain.Sum)
			}
			if pm, cm := plain.Counters["mem_access"], packed.Counters["mem_access"]; cm >= pm {
				t.Errorf("compressed scan moved %d lines from memory, plain %d; want fewer", cm, pm)
			}
		})
	}
}

// TestStoredResidentBudget: shrinking the resident-set budget forces
// evictions and re-fetches, so cold-scan cycles grow monotonically as the
// budget tightens; results never change. Blocks span four vectors (4096
// rows vs 1024-row vectors), so a budget below the plan's ~44 KB current-
// block working set evicts blocks that the very next vector re-fetches.
func TestStoredResidentBudget(t *testing.T) {
	run := func(budget uint64) ExecResult {
		e, _, q := storedSetup(t, Config{VectorSize: 1024, Storage: &StorageConfig{
			BlockRows: 4096, LatencyCycles: 400, BytesPerCycle: 8, ResidentBytes: budget,
		}}, OrderNatural, storedQ6Plan())
		r, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	unbounded := run(0)
	tight := run(40 << 10)
	tighter := run(16 << 10)
	for _, r := range []ExecResult{tight, tighter} {
		if r.Qualifying != unbounded.Qualifying || r.Sum != unbounded.Sum {
			t.Fatalf("budget changed the answer: %d/%v vs %d/%v",
				r.Qualifying, r.Sum, unbounded.Qualifying, unbounded.Sum)
		}
	}
	if unbounded.Storage.Evictions != 0 {
		t.Errorf("unbounded budget evicted %d blocks", unbounded.Storage.Evictions)
	}
	if tight.Storage.Evictions == 0 || tighter.Storage.Evictions <= tight.Storage.Evictions {
		t.Errorf("evictions not growing: unbounded %d, tight %d, tighter %d",
			unbounded.Storage.Evictions, tight.Storage.Evictions, tighter.Storage.Evictions)
	}
	if !(unbounded.Cycles < tight.Cycles && tight.Cycles < tighter.Cycles) {
		t.Errorf("cycles not growing as budget shrinks: %d, %d, %d",
			unbounded.Cycles, tight.Cycles, tighter.Cycles)
	}
}

// TestStoredServedEquivalence: a stored query submitted to an otherwise idle
// server matches Engine.Exec — answers everywhere; cycles, counters, and
// tier stats where the served protocol matches the dedicated drivers.
func TestStoredServedEquivalence(t *testing.T) {
	stcfg := &StorageConfig{LatencyCycles: 250, BytesPerCycle: 16, SkipScan: true}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := Config{VectorSize: 1024, Workers: workers, Storage: stcfg}
			eOld, _, qOld := storedSetup(t, cfg, OrderSorted, storedQ6Plan())
			want, err := eOld.Exec(qOld, ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			eNew, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			dNew, err := eNew.GenerateTPCH(30000, 21, OrderSorted)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := NewServer(eNew, ServerConfig{})
			if err != nil {
				t.Fatal(err)
			}
			tk, err := srv.Submit(dNew, storedQ6Plan(), ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			got, err := tk.Wait()
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "served-stored", want.Result, got.Result)
			if !reflect.DeepEqual(want.Storage, got.Storage) {
				t.Errorf("storage stats diverge:\n exec   %+v\n served %+v", want.Storage, got.Storage)
			}
		})
	}
}

// TestStoredExplain pins the storage provenance line of Explain: rendered
// facts must match the structured fields, and the faithful/skip/compressed
// capability flags must show up.
func TestStoredExplain(t *testing.T) {
	e, _, q := storedSetup(t, Config{VectorSize: 1024, Storage: &StorageConfig{
		BlockRows: 4096, LatencyCycles: 500, BytesPerCycle: 16,
		ResidentBytes: 128 << 10, SkipScan: true, CompressedScan: true,
	}}, OrderSorted, storedQ6Plan())
	pe, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if pe.StorageBlocksTotal != 8 { // ceil(30000/4096)
		t.Errorf("blocks total %d, want 8", pe.StorageBlocksTotal)
	}
	if pe.StorageBlocksPruned == 0 || pe.StorageVectorsSkipped == 0 {
		t.Errorf("sorted shipdate plan pruned %d blocks / skipped %d vectors, want > 0",
			pe.StorageBlocksPruned, pe.StorageVectorsSkipped)
	}
	line := fmt.Sprintf(
		"storage: pcol v2 (8 blocks x 4096 rows, %d -> %d bytes); zone maps prune %d/8 blocks (%d vectors skipped); compressed scan; tier 500 cyc + 16 B/cyc, 131072 B resident budget",
		q.storage.plan.Enc.PlainBytes(), q.storage.plan.Enc.EncodedBytes(),
		pe.StorageBlocksPruned, pe.StorageVectorsSkipped)
	if pe.Storage != strings.TrimPrefix(line, "storage: ") {
		t.Errorf("storage field:\n got  %q\n want %q", pe.Storage, strings.TrimPrefix(line, "storage: "))
	}
	if !strings.Contains(pe.String(), "  "+line+"\n") {
		t.Errorf("rendered explain misses the storage line:\n%s", pe.String())
	}

	// In-RAM engines render no storage line.
	eRAM, _, qRAM := storedSetup(t, Config{VectorSize: 1024}, OrderSorted, storedQ6Plan())
	peRAM, err := eRAM.Explain(qRAM)
	if err != nil {
		t.Fatal(err)
	}
	if peRAM.Storage != "" || strings.Contains(peRAM.String(), "storage:") {
		t.Errorf("in-RAM explain reports storage: %q", peRAM.Storage)
	}
}

// TestStoredWithOrder: reordering a stored query shares its storage plan
// (pruning is order-independent) and keeps answers identical.
func TestStoredWithOrder(t *testing.T) {
	e, _, q := storedSetup(t, Config{VectorSize: 1024, Storage: &StorageConfig{
		LatencyCycles: 100, BytesPerCycle: 32, SkipScan: true,
	}}, OrderSorted, storedQ6Plan())
	qo, err := q.WithOrder([]int{4, 3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if qo.storage != q.storage {
		t.Fatal("reordered query does not share the storage plan")
	}
	a, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Exec(qo, ExecOptions{Mode: ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	if a.Qualifying != b.Qualifying || a.Sum != b.Sum {
		t.Errorf("reorder changed the answer: %d/%v vs %d/%v", b.Qualifying, b.Sum, a.Qualifying, a.Sum)
	}
}

// TestStoredGroupedAndSorted covers the non-scan execution shapes over
// storage: grouped aggregation and Top-K ordering match their in-RAM twins.
func TestStoredGroupedAndSorted(t *testing.T) {
	stcfg := &StorageConfig{LatencyCycles: 200, BytesPerCycle: 16, SkipScan: true}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("grouped/workers=%d", workers), func(t *testing.T) {
			plan := func() *Plan {
				return Scan("lineitem").
					Filter("l_discount", CmpGE, 0.05).
					GroupBy("l_quantity", "l_extendedprice")
			}
			eRAM, _, qRAM := storedSetup(t, Config{VectorSize: 1024, Workers: workers}, OrderNatural, plan())
			want, err := eRAM.Exec(qRAM, ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			eST, _, qST := storedSetup(t, Config{VectorSize: 1024, Workers: workers, Storage: stcfg}, OrderNatural, plan())
			got, err := eST.Exec(qST, ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Groups, got.Groups) {
				t.Errorf("groups diverge:\n ram    %v\n stored %v", want.Groups, got.Groups)
			}
			if !reflect.DeepEqual(want.Counters, got.Counters) {
				t.Errorf("PMU counters diverge")
			}
		})
		t.Run(fmt.Sprintf("sorted/workers=%d", workers), func(t *testing.T) {
			plan := func() *Plan {
				return Scan("lineitem").
					Filter("l_discount", CmpLE, 0.05).
					OrderBy("l_extendedprice", Desc).
					Limit(25).
					Sum("l_extendedprice * l_discount")
			}
			eRAM, _, qRAM := storedSetup(t, Config{VectorSize: 1024, Workers: workers}, OrderNatural, plan())
			want, err := eRAM.Exec(qRAM, ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			eST, _, qST := storedSetup(t, Config{VectorSize: 1024, Workers: workers, Storage: stcfg}, OrderNatural, plan())
			got, err := eST.Exec(qST, ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Rows, got.Rows) {
				t.Errorf("ordered rows diverge:\n ram    %v\n stored %v", want.Rows[:2], got.Rows[:2])
			}
			if !reflect.DeepEqual(want.Counters, got.Counters) {
				t.Errorf("PMU counters diverge")
			}
		})
	}
}

// TestStoredJoin covers join plans over storage: probe keys read the stored
// driving table, build sides stay in RAM, answers and counters match.
func TestStoredJoin(t *testing.T) {
	plan := func() *Plan {
		return Scan("lineitem").
			Filter("l_quantity", CmpLT, 30).
			Join("orders", 0.5).
			Sum("l_extendedprice * l_discount")
	}
	for _, workers := range []int{1, 4} {
		eRAM, _, qRAM := storedSetup(t, Config{VectorSize: 1024, Workers: workers}, OrderNatural, plan())
		want, err := eRAM.Exec(qRAM, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		eST, _, qST := storedSetup(t, Config{VectorSize: 1024, Workers: workers,
			Storage: &StorageConfig{LatencyCycles: 150, BytesPerCycle: 32, SkipScan: true}}, OrderNatural, plan())
		got, err := eST.Exec(qST, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		if got.Qualifying != want.Qualifying || got.Sum != want.Sum {
			t.Errorf("workers=%d: join answers diverge: %d/%v vs %d/%v",
				workers, got.Qualifying, got.Sum, want.Qualifying, want.Sum)
		}
		if !reflect.DeepEqual(want.Counters, got.Counters) {
			t.Errorf("workers=%d: PMU counters diverge", workers)
		}
	}
}
