package progopt

import (
	"fmt"

	"progopt/internal/core"
)

// ShuffleWindow returns a copy of the data set whose lineitem rows are
// permuted by a windowed Knuth shuffle over the current order: window 1
// keeps the order, larger windows progressively destroy locality (the
// paper's §5.5 sortedness axis).
func (d *Dataset) ShuffleWindow(window int, seed int64) *Dataset {
	return &Dataset{d: d.d.ShuffleLineitemWindow(window, seed)}
}

// JoinSpec specifies one foreign-key join from lineitem into a build table.
type JoinSpec struct {
	// Build is "orders" (co-clustered with lineitem in natural order) or
	// "part" (uniformly random access).
	Build string
	// FilterSelectivity in (0, 1] sets the build-side filter's selectivity.
	FilterSelectivity float64
}

// BuildPipeline builds a query over lineitem whose reorderable operators are
// the given predicates followed by the given FK joins (initial order as
// listed; the progressive optimizer may permute all of them).
//
// Deprecated: build the plan with Scan, Filter, and Join, then Compile.
func (e *Engine) BuildPipeline(d *Dataset, preds []Predicate, joins []JoinSpec) (*Query, error) {
	if len(preds)+len(joins) == 0 {
		return nil, fmt.Errorf("progopt: pipeline needs at least one operator")
	}
	p, err := scanPlan(preds)
	if err != nil {
		return nil, err
	}
	for _, js := range joins {
		p.Join(js.Build, js.FilterSelectivity)
	}
	return e.Compile(d, p)
}

// SortednessReport classifies the locality of a join's build-side accesses
// from its sampled miss count (§5.5-§5.6).
type SortednessReport struct {
	// Ratio is sampled misses / Eq.(1)-predicted random misses.
	Ratio float64
	// Class is "co-clustered", "partially-clustered", or "random".
	Class string
}

// DetectJoinLocality runs the query once, attributes its L3 misses to the
// given build table, and classifies the access pattern against the paper's
// random-access prediction (Eq. 1). The returned result is the measurement
// run's result.
func (e *Engine) DetectJoinLocality(q *Query, d *Dataset, build string) (Result, SortednessReport, error) {
	var buildTuples int
	switch build {
	case "orders":
		buildTuples = d.d.NumOrders
	case "part":
		buildTuples = d.d.NumParts
	default:
		return Result{}, SortednessReport{}, fmt.Errorf("progopt: unknown build table %q", build)
	}
	res, err := e.Run(q)
	if err != nil {
		return Result{}, SortednessReport{}, err
	}
	rep := core.DetectSortedness(
		cacheGeometry(e.cpu.Profile()),
		buildTuples, 8, d.Lineitems(),
		float64(res.Counters["l3_miss"]),
	)
	return res, SortednessReport{Ratio: rep.Ratio, Class: rep.Class.String()}, nil
}
