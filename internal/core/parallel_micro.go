package core

import (
	"progopt/internal/exec"
	"progopt/internal/hw/pmu"
)

// ParallelMicroAdaptiveStats extends ParallelStats with the implementation
// decisions of the morsel-driven micro-adaptive driver.
type ParallelMicroAdaptiveStats struct {
	ParallelStats
	// BranchingVectors and BranchFreeVectors count vectors per scan
	// implementation across all cores.
	BranchingVectors, BranchFreeVectors int
	// ImplSwitches counts implementation changes (applied on every core).
	ImplSwitches int
}

// RunParallelMicroAdaptive is RunParallelProgressive extended with per-block
// implementation choice: at every block boundary the per-core PMU deltas are
// merged, selectivities estimated from the aggregate, operators reordered,
// and — when every operator is a plain predicate — the next block's scan
// implementation (branching v. branch-free) is chosen from the estimates.
// A chosen implementation applies to every core: the morsel scheduler keeps
// all cores inside the same compiled scan loop, so an implementation switch
// is a recompile on each core (predictor reset + recompile charge), exactly
// like a reorder.
//
// While running branch-free the merged counters carry no per-predicate
// branch signal, so the driver returns to the branching scan for one
// sampling block every few optimization points (the serial driver's
// resampling policy at block granularity).
//
// Query results are bit-identical to the serial micro-adaptive driver and
// deterministic across worker counts; cycle counts are makespans.
func RunParallelMicroAdaptive(p *exec.Parallel, q *exec.Query, opt Options) (exec.Result, ParallelMicroAdaptiveStats, error) {
	if err := q.Validate(); err != nil {
		return exec.Result{}, ParallelMicroAdaptiveStats{}, err
	}
	opt.setDefaults()
	engines := p.Engines()
	w0 := engines[0].CPU()
	if opt.Geometry.LineSize == 0 {
		hier := w0.Profile().Hierarchy
		opt.Geometry.LineSize = hier.L3.LineSize
		opt.Geometry.CapacityLines = hier.L3.Lines()
	}
	eligible := exec.BranchFreeEligible(q)
	costP := DefaultImplCostParams()
	costP.Chain = opt.Chain

	nOps := len(q.Ops)
	curPerm := identity(nOps)
	prevPerm := identity(nOps)
	curQ := q
	aggWidths := aggColumnWidths(q)
	impl := exec.ImplBranching
	// resampleEvery spaces the sampling blocks while running branch-free,
	// mirroring the serial driver.
	const resampleEvery = 3
	bfOptPoints := 0

	startSamples := make([]pmu.Sample, len(engines))
	for i, e := range engines {
		startSamples[i] = e.CPU().Sample()
	}

	n := q.Table.NumRows()
	vs := p.VectorSize()
	numVec := p.NumVectors(q)
	blockVecs := opt.ReopInterval * p.Workers()
	if opt.ReopInterval <= 0 || blockVecs <= 0 {
		blockVecs = numVec // no re-optimization: one block
	}
	if blockVecs <= 0 {
		blockVecs = 1
	}

	var out exec.Result
	st := ParallelMicroAdaptiveStats{ParallelStats: ParallelStats{Workers: p.Workers()}}
	var totalCycles uint64
	prevCostPerVec := -1.0
	pendingValidation := false

	for v0 := 0; v0 < numVec; v0 += blockVecs {
		v1 := v0 + blockVecs
		if v1 > numVec {
			v1 = numVec
		}
		br, err := p.RunBlockImpl(curQ, v0, v1, impl)
		if err != nil {
			return exec.Result{}, ParallelMicroAdaptiveStats{}, err
		}
		st.Blocks++
		if impl == exec.ImplBranchFree {
			st.BranchFreeVectors += br.Vectors
		} else {
			st.BranchingVectors += br.Vectors
		}
		out.Qualifying += br.Qualifying
		out.Sum += br.Sum
		out.Vectors += br.Vectors
		totalCycles += br.MaxCycles
		costPerVec := float64(br.MaxCycles) / float64(br.Vectors)

		if pendingValidation && !opt.DisableValidation {
			pendingValidation = false
			if prevCostPerVec > 0 && costPerVec > prevCostPerVec*(1+opt.ValidationTolerance) {
				// Deteriorated: re-establish the previous order on all cores.
				curPerm = append([]int(nil), prevPerm...)
				curQ, err = q.WithOrder(curPerm)
				if err != nil {
					return exec.Result{}, ParallelMicroAdaptiveStats{}, err
				}
				totalCycles += recompileAll(p, opt)
				st.Reverts++
			}
		}

		runOpt := opt.ReopInterval > 0 && v1 < numVec
		// Estimation requires the branching scan's counters; branch-free
		// blocks carry no per-predicate branch signal.
		if runOpt && impl == exec.ImplBranching {
			c0 := w0.Cycles()
			w0.Exec(opt.SampleCostInstr)
			tuples := v1*vs - v0*vs
			if v1*vs > n {
				tuples = n - v0*vs
			}
			sample := SampleFromPMU(br.Counters, tuples)
			cfg := EstimatorConfig{
				Widths:    opWidths(curQ),
				AggWidths: aggWidths,
				Geometry:  opt.Geometry,
				Chain:     opt.Chain,
				MaxStarts: opt.MaxStartsOverride,
			}
			est, err := EstimateSelectivities(sample, cfg)
			if err != nil {
				return exec.Result{}, ParallelMicroAdaptiveStats{}, err
			}
			st.Optimizations++
			st.EstimatorEvaluations += est.NMEvaluations
			st.LastEstimate = est.Sels
			w0.Exec(est.NMEvaluations * opt.NMEvalCostInstr)
			totalCycles += w0.Cycles() - c0

			order := AscendingOrder(est.Sels)
			newPerm := compose(curPerm, order)
			if !equalPerm(newPerm, curPerm) {
				prevPerm = append([]int(nil), curPerm...)
				curPerm = newPerm
				curQ, err = q.WithOrder(curPerm)
				if err != nil {
					return exec.Result{}, ParallelMicroAdaptiveStats{}, err
				}
				totalCycles += recompileAll(p, opt)
				st.Reorders++
				pendingValidation = true
			}
			if eligible {
				ordered := make([]float64, len(est.Sels))
				for i, o := range order {
					ordered[i] = est.Sels[o]
				}
				next := ChooseImpl(ordered, costP)
				if next != impl {
					st.ImplSwitches++
					impl = next
					totalCycles += recompileAll(p, opt)
				}
			}
		} else if runOpt && impl == exec.ImplBranchFree {
			bfOptPoints++
			if bfOptPoints >= resampleEvery {
				bfOptPoints = 0
				st.ImplSwitches++
				impl = exec.ImplBranching
				totalCycles += recompileAll(p, opt)
			}
		}
		prevCostPerVec = costPerVec
	}

	out.Cycles = totalCycles
	out.Millis = w0.MillisOf(totalCycles)
	var merged pmu.Sample
	for i, e := range engines {
		merged = merged.Add(e.CPU().Sample().Sub(startSamples[i]))
	}
	out.Counters = merged
	st.Vectors = out.Vectors
	st.FinalOrder = curPerm
	return out, st, nil
}
