// Command tpchgen generates the TPC-H-shaped data set and writes each table
// in the engine's binary column format.
//
// Usage:
//
//	tpchgen -rows 1000000 -seed 42 -ordering natural -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"progopt/internal/columnar"
	"progopt/internal/tpch"
)

func main() {
	var (
		rows     = flag.Int("rows", 1_000_000, "lineitem row count")
		seed     = flag.Int64("seed", 1, "generation seed")
		ordering = flag.String("ordering", "natural", "lineitem row order: natural|sorted|clustered|random")
		out      = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	d, err := tpch.Generate(tpch.Config{Lineitems: *rows, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	switch *ordering {
	case "natural":
	case "sorted":
		d = d.ReorderLineitem(tpch.OrderingShipdateSorted, *seed+1)
	case "clustered":
		d = d.ReorderLineitem(tpch.OrderingClusteredMonth, *seed+1)
	case "random":
		d = d.ReorderLineitem(tpch.OrderingRandom, *seed+1)
	default:
		fatal(fmt.Errorf("unknown ordering %q", *ordering))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, t := range []*columnar.Table{d.Lineitem, d.Orders, d.Part} {
		path := filepath.Join(*out, t.Name()+".pcol")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := columnar.WriteTable(f, t); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d rows, %d columns, %.1f MB\n",
			path, t.NumRows(), t.NumCols(), float64(t.SizeBytes())/(1<<20))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpchgen:", err)
	os.Exit(1)
}
