package cache

import (
	"testing"
	"testing/quick"
)

func cfg(name string, size, line, ways, lat int) Config {
	return Config{Name: name, SizeBytes: size, LineSize: line, Ways: ways, LatencyCycles: lat}
}

func TestConfigValidate(t *testing.T) {
	good := cfg("L1", 2048, 64, 8, 4)
	if _, err := NewLevel(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		cfg("x", 0, 64, 8, 4),     // zero size
		cfg("x", 2048, 48, 8, 4),  // line not power of two
		cfg("x", 2000, 64, 8, 4),  // size not multiple of line
		cfg("x", 2048, 64, 5, 4),  // ways don't divide lines
		cfg("x", 3072, 64, 8, 4),  // set count 6, not power of two
		cfg("x", 2048, 64, 8, -1), // negative latency
	}
	for i, c := range bad {
		if _, err := NewLevel(c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestLevelHitAfterInsert(t *testing.T) {
	l, _ := NewLevel(cfg("L1", 2048, 64, 8, 4))
	addr := uint64(0x1000)
	if l.Lookup(addr) {
		t.Fatal("empty cache reported a hit")
	}
	l.Insert(addr, false)
	if !l.Lookup(addr) {
		t.Fatal("miss immediately after insert")
	}
	// Same line, different byte offset.
	if !l.Lookup(addr + 63) {
		t.Fatal("miss within the same cache line")
	}
	if l.Lookup(addr + 64) {
		t.Fatal("hit on the next line which was never inserted")
	}
	st := l.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 4 accesses / 2 hits / 2 misses", st)
	}
}

func TestLevelLRUEviction(t *testing.T) {
	// 2 ways, 2 sets (256 B / 64 B line / 2 ways).
	l, _ := NewLevel(cfg("t", 256, 64, 2, 4))
	// Three lines mapping to set 0: line ids spaced by set count (2).
	a, b, c := uint64(0*128), uint64(2*128), uint64(4*128)
	l.Insert(a, false)
	l.Insert(b, false)
	l.Lookup(a) // touch a, making b the LRU way
	l.Insert(c, false)
	if !l.Contains(a) {
		t.Error("recently used line a was evicted")
	}
	if l.Contains(b) {
		t.Error("LRU line b survived eviction")
	}
	if !l.Contains(c) {
		t.Error("newly inserted line c missing")
	}
}

func TestLevelFlush(t *testing.T) {
	l, _ := NewLevel(cfg("t", 2048, 64, 8, 4))
	l.Insert(0x40, false)
	l.Flush()
	if l.Contains(0x40) {
		t.Error("line survived Flush")
	}
	if l.Stats().Accesses == 0 {
		// Flush must keep counters: force one access first in a fresh level.
		l2, _ := NewLevel(cfg("t", 2048, 64, 8, 4))
		l2.Lookup(0x40)
		l2.Flush()
		if l2.Stats().Accesses != 1 {
			t.Error("Flush cleared counters")
		}
	}
}

func TestLevelCapacityWorkingSet(t *testing.T) {
	// A working set exactly the size of the cache must fully hit on the
	// second pass (LRU, access order matches insert order per set).
	l, _ := NewLevel(cfg("t", 4096, 64, 4, 4))
	lines := 4096 / 64
	for i := 0; i < lines; i++ {
		addr := uint64(i * 64)
		if !l.Lookup(addr) {
			l.Insert(addr, false)
		}
	}
	misses := 0
	for i := 0; i < lines; i++ {
		if !l.Lookup(uint64(i * 64)) {
			misses++
		}
	}
	if misses != 0 {
		t.Errorf("second pass over cache-sized working set missed %d times", misses)
	}
	// A working set of 2x capacity with LRU and a sequential scan thrashes.
	l.Flush()
	hitsBefore := l.Stats().Hits
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 2*lines; i++ {
			addr := uint64(i * 64)
			if !l.Lookup(addr) {
				l.Insert(addr, false)
			}
		}
	}
	if hits := l.Stats().Hits - hitsBefore; hits != 0 {
		t.Errorf("sequential scan of 2x working set under LRU produced %d hits, want 0", hits)
	}
}

func hcfg() HierarchyConfig {
	return HierarchyConfig{
		L1:               cfg("L1", 2048, 64, 8, 4),
		L2:               cfg("L2", 16384, 64, 8, 12),
		L3:               cfg("L3", 262144, 64, 16, 36),
		MemLatencyCycles: 180,
	}
}

func TestHierarchyValidate(t *testing.T) {
	c := hcfg()
	c.L2.LineSize = 128
	c.L2.SizeBytes = 16384
	if _, err := NewHierarchy(c); err == nil {
		t.Error("mismatched line sizes accepted")
	}
	c = hcfg()
	c.L1.SizeBytes = 1 << 20
	c.L1.Ways = 16
	if _, err := NewHierarchy(c); err == nil {
		t.Error("L1 larger than L2 accepted")
	}
	c = hcfg()
	c.MemLatencyCycles = 0
	if _, err := NewHierarchy(c); err == nil {
		t.Error("zero memory latency accepted")
	}
}

func TestHierarchyInclusiveFill(t *testing.T) {
	h, err := NewHierarchy(hcfg())
	if err != nil {
		t.Fatal(err)
	}
	r := h.Load(0x100000)
	if r.Level != HitMem {
		t.Fatalf("cold load hit %v, want Mem", r.Level)
	}
	if r.LatencyCycles != 180 {
		t.Fatalf("cold load latency %d, want 180", r.LatencyCycles)
	}
	if r := h.Load(0x100000); r.Level != HitL1 {
		t.Fatalf("second load hit %v, want L1 (inclusive fill)", r.Level)
	}
}

func TestHierarchyLevelLatencies(t *testing.T) {
	h, _ := NewHierarchy(hcfg())
	addr := uint64(1 << 20)
	h.Load(addr) // mem
	// Evict from L1 by filling its sets with conflicting lines but staying
	// inside L2: L1 has 2048/64=32 lines, 8 ways, 4 sets. Stride by
	// 4*64=256 bytes to hammer one set.
	set := addr % 256
	for i := 1; i <= 8; i++ {
		h.Load(set + uint64(i)*256 + (1 << 21))
	}
	r := h.Load(addr)
	if r.Level != HitL2 {
		t.Fatalf("expected L2 hit after L1-only eviction, got %v", r.Level)
	}
	if r.LatencyCycles != 12 {
		t.Fatalf("L2 latency %d, want 12", r.LatencyCycles)
	}
}

func TestHierarchySequentialScanPrefetch(t *testing.T) {
	// A long sequential scan must mostly hit in L3 (streamer runs ahead)
	// after the stream is established, and L3 total accesses must be close to
	// the number of distinct lines touched.
	h, _ := NewHierarchy(hcfg())
	const lines = 4096
	memHits := 0
	for i := 0; i < lines; i++ {
		if r := h.Load(uint64(i * 64)); r.Level == HitMem {
			memHits++
		}
	}
	if memHits > lines/2 {
		t.Errorf("sequential scan: %d/%d loads went to memory; streamer ineffective", memHits, lines)
	}
	c := h.Counters()
	total := c.L3TotalAccesses()
	if total < lines || total > uint64(lines)*3 {
		t.Errorf("L3 total accesses %d for %d-line scan, want within [n, 3n]", total, lines)
	}
}

func TestHierarchyPrefetchDisabled(t *testing.T) {
	c := hcfg()
	c.PrefetchDisabled = true
	h, _ := NewHierarchy(c)
	const lines = 1024
	memHits := 0
	for i := 0; i < lines; i++ {
		if r := h.Load(uint64(i * 64)); r.Level == HitMem {
			memHits++
		}
	}
	if memHits != lines {
		t.Errorf("prefetch disabled: %d/%d memory hits, want all (no reuse)", memHits, lines)
	}
	if pc := h.Counters().L3PrefetchAccesses; pc != 0 {
		t.Errorf("prefetch disabled but %d prefetch accesses counted", pc)
	}
}

func TestHierarchyCountersSub(t *testing.T) {
	h, _ := NewHierarchy(hcfg())
	for i := 0; i < 100; i++ {
		h.Load(uint64(i * 64))
	}
	before := h.Counters()
	for i := 100; i < 150; i++ {
		h.Load(uint64(i * 64))
	}
	delta := h.Counters().Sub(before)
	if delta.L1.Accesses != 50 {
		t.Errorf("delta L1 accesses = %d, want 50", delta.L1.Accesses)
	}
	if got := h.Counters(); got.L1.Accesses != 150 {
		t.Errorf("total L1 accesses = %d, want 150", got.L1.Accesses)
	}
}

// TestHierarchyMonotonicCounters: accesses >= hits+misses equality and all
// counters are non-decreasing over arbitrary address streams.
func TestHierarchyMonotonicCounters(t *testing.T) {
	f := func(addrs []uint16) bool {
		h, _ := NewHierarchy(hcfg())
		var prev Counters
		for _, a := range addrs {
			h.Load(uint64(a) * 64)
			c := h.Counters()
			for _, pair := range [][2]Stats{{c.L1, prev.L1}, {c.L2, prev.L2}, {c.L3, prev.L3}} {
				cur, pv := pair[0], pair[1]
				if cur.Accesses < pv.Accesses || cur.Hits < pv.Hits || cur.Misses < pv.Misses {
					return false
				}
				if cur.Hits+cur.Misses != cur.Accesses {
					return false
				}
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHitLevelString(t *testing.T) {
	want := map[HitLevel]string{HitL1: "L1", HitL2: "L2", HitL3: "L3", HitMem: "Mem"}
	for lv, s := range want {
		if lv.String() != s {
			t.Errorf("HitLevel(%d).String() = %q, want %q", lv, lv.String(), s)
		}
	}
}
