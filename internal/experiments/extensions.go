package experiments

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/core"
	"progopt/internal/datagen"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/stats"
	"progopt/internal/tpch"
)

// ExtEnum compares the two complete adaptive systems end to end: the PMU
// counter-driven progressive optimizer against an enumerator-driven one that
// obtains exact selectivities by running instrumented sample vectors. It
// extends Figure 16 from per-loop overhead to whole-query runtime: the
// enumerated optimizer makes (exact) decisions but pays the instrumentation
// tax on every sampled vector.
func ExtEnum(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	rows := 150 * cfg.VectorSize
	if cfg.Quick {
		rows = 30 * cfg.VectorSize
	}
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	d = d.ReorderLineitem(tpch.OrderingRandom, cfg.Seed+1)
	// The 4-predicate modified Q6 at 1% shipdate selectivity: the clear
	// selectivity separation makes both optimizers converge to the same
	// order, isolating their sampling overheads (with the near-tie
	// 5-predicate Q6 the comparison would instead measure decision quality
	// under the PMU's 4-counters-for-5-unknowns ambiguity).
	q, err := exec.Q6Shipdate(d, d.ShipdateCutoff(0.01))
	if err != nil {
		return nil, err
	}
	vectorSizes := []int{512, 2048, 8192}
	if cfg.Quick {
		vectorSizes = []int{512, 2048}
	}
	const reop = 10

	// Worst initial order: descending true selectivity.
	sels := make([]float64, len(q.Ops))
	for i, op := range q.Ops {
		sels[i] = op.(*exec.Predicate).TrueSelectivity()
	}
	asc := core.AscendingOrder(sels)
	desc := make([]int, len(asc))
	for i, v := range asc {
		desc[len(asc)-1-i] = v
	}

	rep := &Report{
		ID:      "ext-enum",
		Title:   "Extension: counter-driven v. enumerator-driven progressive optimization (worst initial PEO)",
		Columns: []string{"vector_size", "baseline_ms", "pmu_ms", "enumerator_ms", "enum_vs_pmu"},
		Notes: []string{
			fmt.Sprintf("%d lineitems (random order), Q6 from its slowest PEO, ReopInt %d", rows, reop),
			"PMU pays Nelder-Mead inversion per sample; enumerator pays an instrumented vector per sample",
			"the PMU's fixed inversion cost amortizes with vector size; the enumerator's tax does not",
		},
	}
	for _, vs := range vectorSizes {
		r, err := newRig(cpu.ScaledXeon(), cfg.withVector(vs))
		if err != nil {
			return nil, err
		}
		if err := r.bind(q); err != nil {
			return nil, err
		}
		base, err := r.measureBaseline(q, desc)
		if err != nil {
			return nil, err
		}
		pmuRes, _, err := r.measureProgressive(q, desc, reop)
		if err != nil {
			return nil, err
		}
		qo, err := q.WithOrder(desc)
		if err != nil {
			return nil, err
		}
		r.cold()
		enumRes, _, err := core.RunProgressiveEnumerated(r.eng, qo, core.Options{ReopInterval: reop})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", vs),
			fmtMs(base.Millis), fmtMs(pmuRes.Millis), fmtMs(enumRes.Millis),
			fmt.Sprintf("%.3f", enumRes.Millis/pmuRes.Millis),
		})
	}
	return []*Report{rep}, nil
}

// ExtMicro sweeps a two-predicate scan's selectivity and compares the
// branching scan, the branch-free scan, and the micro-adaptive driver that
// picks per vector from counter-estimated selectivities. The adaptive line
// should track the lower envelope of the two static implementations.
func ExtMicro(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	n := 100 * cfg.VectorSize
	if cfg.Quick {
		n = 20 * cfg.VectorSize
	}
	rng := datagen.NewRNG(cfg.Seed)
	tb := columnar.NewTable("micro")
	tb.MustAddColumn(columnar.NewInt64("a", datagen.UniformInt64(rng, n, 0, 999)))
	tb.MustAddColumn(columnar.NewInt64("b", datagen.UniformInt64(rng, n, 0, 999)))

	selPoints := []int{2, 10, 30, 50, 70, 90, 98}
	if cfg.Quick {
		selPoints = []int{10, 50, 90}
	}
	rep := &Report{
		ID:      "ext-micro",
		Title:   "Extension: micro-adaptive implementation choice (branching v. branch-free)",
		Columns: []string{"sel_pct", "branching_ms", "branchfree_ms", "adaptive_ms", "adaptive_impl_mix"},
		Notes: []string{
			fmt.Sprintf("%d tuples, two equal predicates; adaptive = progressive driver choosing per cycle", n),
		},
	}
	for _, s := range selPoints {
		q := &exec.Query{
			Table: tb,
			Ops: []exec.Op{
				&exec.Predicate{Col: tb.Column("a"), Op: exec.LT, I: int64(s * 10)},
				&exec.Predicate{Col: tb.Column("b"), Op: exec.LT, I: int64(s * 10)},
			},
		}
		r, err := newRig(cpu.ScaledXeon(), cfg)
		if err != nil {
			return nil, err
		}
		if err := r.bind(q); err != nil {
			return nil, err
		}
		r.cold()
		branching, err := r.eng.Run(q)
		if err != nil {
			return nil, err
		}
		r.cold()
		free, err := r.eng.RunBranchFree(q)
		if err != nil {
			return nil, err
		}
		r.cold()
		adaptive, st, err := core.RunMicroAdaptive(r.eng, q, core.Options{ReopInterval: 5})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmtF(float64(s)),
			fmtMs(branching.Millis), fmtMs(free.Millis), fmtMs(adaptive.Millis),
			fmt.Sprintf("%db/%df", st.BranchingVectors, st.BranchFreeVectors),
		})
	}
	return []*Report{rep}, nil
}

// ExtStatic pits a classical static optimizer (equi-width histograms built
// from the bulk-load prefix, predicates ordered once at compile time)
// against progressive optimization on weakly clustered data — the situation
// the paper's introduction motivates. The static plan is correct for the
// sampled prefix and wrong for the rest of the table.
func ExtStatic(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	rows := 150 * cfg.VectorSize
	if cfg.Quick {
		rows = 30 * cfg.VectorSize
	}
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	samples := []float64{0.01, 0.05, 0.25, 1.0}
	if cfg.Quick {
		samples = []float64{0.01, 1.0}
	}
	rep := &Report{
		ID:      "ext-static",
		Title:   "Extension: histogram-based static optimizer v. progressive (bulk-loaded data)",
		Columns: []string{"stats_sample_pct", "static_ms", "static+prog_ms", "oracle_best_ms"},
		Notes: []string{
			fmt.Sprintf("%d lineitems in bulk-load order; Q6; histograms from the table prefix", rows),
			"static = order fixed from histogram estimates; static+prog = same start, progressive enabled",
			"oracle = best fixed order found by exhaustive search (unachievable in practice)",
		},
	}
	q, err := exec.Q6(d)
	if err != nil {
		return nil, err
	}
	r, err := newRig(cpu.ScaledXeon(), cfg)
	if err != nil {
		return nil, err
	}
	if err := r.bind(q); err != nil {
		return nil, err
	}

	// Oracle: best fixed order over all 120.
	oracle := -1.0
	for _, perm := range exec.Permutations(len(q.Ops)) {
		res, err := r.measureBaseline(q, perm)
		if err != nil {
			return nil, err
		}
		if oracle < 0 || res.Millis < oracle {
			oracle = res.Millis
		}
	}

	for _, frac := range samples {
		sampleRows := int(frac * float64(rows))
		cat, err := stats.BuildCatalog(d.Lineitem, sampleRows)
		if err != nil {
			return nil, err
		}
		perm, _, err := cat.StaticOrder(q)
		if err != nil {
			return nil, err
		}
		static, err := r.measureBaseline(q, perm)
		if err != nil {
			return nil, err
		}
		prog, _, err := r.measureProgressive(q, perm, 10)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmtF(frac * 100),
			fmtMs(static.Millis), fmtMs(prog.Millis), fmtMs(oracle),
		})
	}
	return []*Report{rep}, nil
}
