package progopt

// One benchmark per figure of the paper's evaluation regenerates that
// figure's data (reduced scale; run cmd/progopt for full sweeps), plus
// ablation benches for the design decisions called out in DESIGN.md.
// Benchmarks report headline metrics via b.ReportMetric so `go test
// -bench=.` output doubles as a reproduction summary.

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"testing"

	"progopt/internal/core"
	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/costmodel/markov"
	"progopt/internal/costmodel/peo"
	"progopt/internal/exec"
	"progopt/internal/experiments"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
	"progopt/internal/trace"
)

// benchCfg is the reduced-but-not-quick scale used by the figure benches.
func benchCfg() experiments.Config {
	return experiments.Config{
		VectorSize: 1024,
		Lineitems:  150 * 1024,
		PermSample: 12,
		Seed:       1,
	}
}

func runFigure(b *testing.B, id string, metric func([]*experiments.Report) (float64, string)) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var reps []*experiments.Report
	for i := 0; i < b.N; i++ {
		reps, err = e.Run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if metric != nil {
		v, unit := metric(reps)
		b.ReportMetric(v, unit)
	}
}

// cellF parses a report cell as float.
func cellF(b *testing.B, r *experiments.Report, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(r.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, r.Rows[row][col], err)
	}
	return v
}

func colOf(b *testing.B, r *experiments.Report, name string) int {
	b.Helper()
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	b.Fatalf("no column %q in %v", name, r.Columns)
	return -1
}

func BenchmarkFig01(b *testing.B) {
	runFigure(b, "fig01", func(reps []*experiments.Report) (float64, string) {
		r := reps[0]
		c := colOf(b, r, "worst_best_ratio")
		max := 0.0
		for i := range r.Rows {
			if v := cellF(b, r, i, c); v > max {
				max = v
			}
		}
		return max, "max_worst/best"
	})
}

func BenchmarkFig02(b *testing.B) {
	runFigure(b, "fig02", func(reps []*experiments.Report) (float64, string) {
		r := reps[0]
		c := colOf(b, r, "br_mp_pct")
		peak := 0.0
		for i := range r.Rows {
			if v := cellF(b, r, i, c); v > peak {
				peak = v
			}
		}
		return peak, "peak_mp_pct"
	})
}

func BenchmarkFig03(b *testing.B) {
	runFigure(b, "fig03", func(reps []*experiments.Report) (float64, string) {
		r := reps[2] // all mispredictions
		six, ivy := colOf(b, r, "6 States"), colOf(b, r, "Ivy Sample")
		maxErr := 0.0
		for i := range r.Rows {
			if d := math.Abs(cellF(b, r, i, six) - cellF(b, r, i, ivy)); d > maxErr {
				maxErr = d
			}
		}
		return maxErr, "max_err_pct"
	})
}

func BenchmarkFig04(b *testing.B) {
	runFigure(b, "fig04", func(reps []*experiments.Report) (float64, string) {
		// Worst measured/predicted ratio deviation from 1 over the grid.
		worst := 0.0
		r := reps[2]
		for i := range r.Rows {
			for j := 1; j < len(r.Columns); j++ {
				v, err := strconv.ParseFloat(r.Rows[i][j], 64)
				if err != nil {
					continue // "-" cells where prediction ~ 0
				}
				if d := math.Abs(v - 1); d > worst {
					worst = d
				}
			}
		}
		return worst, "max_ratio_dev"
	})
}

func BenchmarkFig06(b *testing.B) {
	runFigure(b, "fig06", func(reps []*experiments.Report) (float64, string) {
		// Relative error of the Markov estimate against the simulated Ivy
		// Bridge counts, averaged over the sweep (excluding ~zero rows).
		r := reps[0]
		ivy, est := colOf(b, r, "ivy-bridge"), colOf(b, r, "est_markov")
		sum, n := 0.0, 0
		for i := range r.Rows {
			m := cellF(b, r, i, ivy)
			if m < 100 {
				continue
			}
			sum += math.Abs(cellF(b, r, i, est)-m) / m
			n++
		}
		return sum / float64(n) * 100, "avg_rel_err_pct"
	})
}

func BenchmarkFig07(b *testing.B) { runFigure(b, "fig07", nil) }

func BenchmarkFig08(b *testing.B) { runFigure(b, "fig08", nil) }

func BenchmarkFig09(b *testing.B) { runFigure(b, "fig09", nil) }

func BenchmarkFig11(b *testing.B) {
	runFigure(b, "fig11", func(reps []*experiments.Report) (float64, string) {
		r := reps[0]
		base, opt := colOf(b, r, "base_ms"), colOf(b, r, "optimized_ms")
		last := len(r.Rows) - 1
		return cellF(b, r, last, base) / cellF(b, r, last, opt), "worst_peo_speedup"
	})
}

func BenchmarkFig12(b *testing.B) {
	runFigure(b, "fig12", func(reps []*experiments.Report) (float64, string) {
		// The paper's headline: progressive v. average baseline, best case
		// over the selectivity sweep.
		r := reps[0]
		avg, r10 := colOf(b, r, "avg_base_ms"), colOf(b, r, "avg_reopint_10_ms")
		best := 0.0
		for i := range r.Rows {
			if v := cellF(b, r, i, avg) / cellF(b, r, i, r10); v > best {
				best = v
			}
		}
		return best, "max_avg_speedup"
	})
}

func BenchmarkFig13(b *testing.B) {
	runFigure(b, "fig13", func(reps []*experiments.Report) (float64, string) {
		// Sorted data set, worst initial PEO, ReopInt 10 speedup.
		r := reps[0]
		base, r10 := colOf(b, r, "base_ms"), colOf(b, r, "reopint_10_ms")
		last := len(r.Rows) - 1
		return cellF(b, r, last, base) / cellF(b, r, last, r10), "sorted_worst_speedup"
	})
}

func BenchmarkFig14(b *testing.B) {
	runFigure(b, "fig14", func(reps []*experiments.Report) (float64, string) {
		// Break-even position: first sortedness level where selection-first
		// beats join-first (index into the window axis).
		r := reps[0]
		sel, join := colOf(b, r, "selection_first_ms"), colOf(b, r, "join_first_ms")
		for i := range r.Rows {
			if cellF(b, r, i, sel) < cellF(b, r, i, join) {
				return float64(i), "breakeven_idx"
			}
		}
		return float64(len(r.Rows)), "breakeven_idx"
	})
}

func BenchmarkFig15(b *testing.B) {
	runFigure(b, "fig15", func(reps []*experiments.Report) (float64, string) {
		// Minimum part-first/orders-first ratio; > 1 everywhere means orders
		// first always wins, as the paper reports.
		r := reps[0]
		of, pf := colOf(b, r, "orders_first_ms"), colOf(b, r, "part_first_ms")
		min := math.Inf(1)
		for i := range r.Rows {
			if v := cellF(b, r, i, pf) / cellF(b, r, i, of); v < min {
				min = v
			}
		}
		return min, "min_part/orders"
	})
}

func BenchmarkFig16(b *testing.B) {
	runFigure(b, "fig16", func(reps []*experiments.Report) (float64, string) {
		r := reps[0]
		en := colOf(b, r, "enumerator_overhead_pct")
		return cellF(b, r, len(r.Rows)-1, en), "enum_overhead_pct_10preds"
	})
}

func BenchmarkExtEnum(b *testing.B) {
	runFigure(b, "ext-enum", func(reps []*experiments.Report) (float64, string) {
		// Enumerator/PMU runtime ratio at the largest vector size: > 1 means
		// the PMU approach wins once its inversion cost amortizes.
		r := reps[0]
		c := colOf(b, r, "enum_vs_pmu")
		return cellF(b, r, len(r.Rows)-1, c), "enum/pmu_largest_vec"
	})
}

func BenchmarkExtMicro(b *testing.B) {
	runFigure(b, "ext-micro", func(reps []*experiments.Report) (float64, string) {
		// Adaptive runtime at 50% selectivity relative to pure branching:
		// < 1 means micro-adaptivity pays off where mispredictions peak.
		r := reps[0]
		br, ad := colOf(b, r, "branching_ms"), colOf(b, r, "adaptive_ms")
		mid := len(r.Rows) / 2
		return cellF(b, r, mid, ad) / cellF(b, r, mid, br), "adaptive/branching_mid"
	})
}

func BenchmarkExtStatic(b *testing.B) {
	runFigure(b, "ext-static", func(reps []*experiments.Report) (float64, string) {
		// Progressive speedup over the static plan built from the stale
		// 1%-prefix histogram.
		r := reps[0]
		st, pr := colOf(b, r, "static_ms"), colOf(b, r, "static+prog_ms")
		return cellF(b, r, 0, st) / cellF(b, r, 0, pr), "prog_vs_stale_static"
	})
}

// --- Execution-core benches: tuple-at-a-time v. batch kernels v. morsels ---

// benchQ6 builds a bound Q6 over a mid-sized data set shared by the
// execution-core benches.
func benchQ6(b *testing.B, rows int) *exec.Query {
	b.Helper()
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	q, err := exec.Q6(d)
	if err != nil {
		b.Fatal(err)
	}
	if err := exec.MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024).BindQuery(q); err != nil {
		b.Fatal(err)
	}
	return q
}

// benchRunMode measures host wall-clock per full-table Q6 execution in the
// given engine mode; the simulated cycle count is reported alongside. This
// is the acceptance gauge of the batch-kernel refactor: identical simulated
// work, less interpretation overhead per tuple.
func benchRunMode(b *testing.B, scalar bool) {
	q := benchQ6(b, 200_000)
	e := exec.MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024)
	e.SetScalar(scalar)
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(q)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// BenchmarkRunTupleAtATime is the seed engine's interpreted row loop.
func BenchmarkRunTupleAtATime(b *testing.B) { benchRunMode(b, true) }

// BenchmarkRunBatch is the batch-kernel pipeline over selection vectors.
func BenchmarkRunBatch(b *testing.B) { benchRunMode(b, false) }

// BenchmarkRunTopK is the order-aware hot path: a filtered Top-100 ordered
// scan through the public facade (bounded-heap collection per qualifying
// tuple plus the barrier merge and emission). Feeds the BENCH_perf.json
// sort row (schema progopt-perf/v2).
func BenchmarkRunTopK(b *testing.B) {
	e, err := New(Config{VectorSize: 1024})
	if err != nil {
		b.Fatal(err)
	}
	d, err := e.GenerateTPCH(200_000, 7, OrderNatural)
	if err != nil {
		b.Fatal(err)
	}
	q, err := e.Compile(d, Scan("lineitem").
		Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.6))).
		Filter("l_discount", CmpGE, 0.04).
		OrderBy("l_extendedprice", Desc).
		Limit(100).
		Sum("l_extendedprice * l_discount"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// benchJoinGraph measures a JoinOn join-graph query through the public
// facade under ModeFixed: compile resolves the edges, pushes the per-table
// filters down, and orders the probes with the statistics-free greedy
// orderer. sim_cycles is the deterministic simulated cost of the compiled
// order.
func benchJoinGraph(b *testing.B, nTables int) {
	e, err := New(Config{VectorSize: 1024})
	if err != nil {
		b.Fatal(err)
	}
	d, err := e.GenerateTPCH(200_000, 7, OrderNatural)
	if err != nil {
		b.Fatal(err)
	}
	p := Scan("lineitem").
		JoinOn("lineitem", "l_orderkey", "orders").
		Filter("o_orderdate", CmpLE, int64(d.ShipdateCutoff(0.8))).
		Filter("l_quantity", CmpLT, 30).
		Sum("l_extendedprice * l_discount")
	if nTables >= 4 {
		p = p.JoinOn("lineitem", "l_partkey", "part").
			JoinOn("orders", "o_custkey", "customer").
			Filter("p_size", CmpLE, 25).
			Filter("c_acctbal", CmpGE, 0.0)
	}
	q, err := e.Compile(d, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// BenchmarkRunJoinGraph2 is the 2-table graph (lineitem→orders with a
// pushed-down orders filter). Feeds the BENCH_perf.json join-graph rows
// (schema progopt-perf/v6).
func BenchmarkRunJoinGraph2(b *testing.B) { benchJoinGraph(b, 2) }

// BenchmarkRunJoinGraph4 is the 4-table star/snowflake (orders, part,
// customer via orders) with filters pushed to three tables.
func BenchmarkRunJoinGraph4(b *testing.B) { benchJoinGraph(b, 4) }

// benchStored runs the Q6 scan over the stored (PCOL v2) lineitem through
// the public facade with the given storage configuration; sim_cycles is the
// stall-inclusive reported cycle count.
func benchStored(b *testing.B, st *StorageConfig) {
	e, err := New(Config{VectorSize: 1024, Storage: st})
	if err != nil {
		b.Fatal(err)
	}
	d, err := e.GenerateTPCH(200_000, 7, OrderNatural)
	if err != nil {
		b.Fatal(err)
	}
	q, err := e.Compile(d, Scan("lineitem").
		Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.6))).
		Filter("l_discount", CmpGE, 0.04).
		Filter("l_quantity", CmpLT, 24).
		Sum("l_extendedprice * l_discount"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// BenchmarkScanStored is the stored-table hot path: the Q6 scan over the
// PCOL v2 image with a priced block tier and zone-map skipping. Feeds the
// BENCH_perf.json stored row (schema progopt-perf/v3).
func BenchmarkScanStored(b *testing.B) {
	benchStored(b, &StorageConfig{LatencyCycles: 400, BytesPerCycle: 16, SkipScan: true})
}

// BenchmarkScanCompressed adds the packed-image predicate scan: the same
// stored Q6 with predicates priced over the compressed column images. Feeds
// the BENCH_perf.json compressed row (schema progopt-perf/v3).
func BenchmarkScanCompressed(b *testing.B) {
	benchStored(b, &StorageConfig{LatencyCycles: 400, BytesPerCycle: 16, SkipScan: true, CompressedScan: true})
}

// BenchmarkRunParallel is the batch pipeline under the morsel scheduler;
// sim_cycles is the 4-core makespan (the simulated speedup), while ns/op
// remains host time for simulating all four cores.
func BenchmarkRunParallel(b *testing.B) {
	q := benchQ6(b, 200_000)
	p, err := exec.NewParallel(cpu.ScaledXeon(), 4, 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := p.Run(q)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// BenchmarkRunParallelTraced is BenchmarkRunParallel with the event recorder
// attached: same simulated work (sim_cycles must match BenchmarkRunParallel
// exactly — tracing is a pure observer), plus the host-side cost of recording
// every morsel span. The recorder is reset per iteration so the track buffers
// stay warm and the bench measures steady-state recording, not growth. Feeds
// the BENCH_perf.json traced row (schema progopt-perf/v4).
func BenchmarkRunParallelTraced(b *testing.B) {
	q := benchQ6(b, 200_000)
	p, err := exec.NewParallel(cpu.ScaledXeon(), 4, 1024)
	if err != nil {
		b.Fatal(err)
	}
	rec := trace.New()
	tracks := make([]*trace.Track, 4)
	for i := range tracks {
		tracks[i] = rec.NewTrack(fmt.Sprintf("core %d", i))
	}
	p.SetTrace(tracks)
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		rec.Reset()
		res, err := p.Run(q)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	if rec.Events() == 0 {
		b.Fatal("traced run recorded no events")
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// TestRunParallelSteadyStateAllocs pins the scratch-reuse audit of the
// morsel scheduler: once warm, Parallel.Run allocates only its per-call
// result bookkeeping (the busy and WorkerCycles slices and the boxed
// result), independent of table size — wave slots, per-core selection
// buffers, and sample scratch are all reused across calls. The budget has
// headroom for the handful of fixed-size allocations the run makes; what it
// must catch is any O(vectors) or O(rows) allocation sneaking into the wave
// loop. (AllocsPerRun measures at GOMAXPROCS 1, i.e. the inline wave path —
// the host pool's dispatch closures are per-wave by design and benchmarked,
// not asserted, via BenchmarkRunParallel -cpu 4.)
func TestRunParallelSteadyStateAllocs(t *testing.T) {
	d, err := tpch.Generate(tpch.Config{Lineitems: 64 * 1024, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q, err := exec.Q6(d)
	if err != nil {
		t.Fatal(err)
	}
	p, err := exec.NewParallel(cpu.ScaledXeon(), 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(q); err != nil { // warm-up: bind + grow scratch
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := p.Run(q); err != nil {
			t.Error(err)
		}
	})
	const budget = 16
	if avg > budget {
		t.Errorf("Parallel.Run steady state: %.1f allocs/op, budget %d", avg, budget)
	}
}

// benchServeConcurrent serves n simultaneous submissions of mixed shapes
// (plain scans, a join, a sorted query; fixed and progressive modes) against
// a fresh 4-core server per iteration, waiting from racing goroutines. At
// -cpu 4 the scheduling rounds execute distinct queries' segments on distinct
// host threads, so ns/op measures the host-concurrency win; sim_cycles (the
// workload makespan) is bit-identical at every -cpu, pinning that only host
// wall-clock changes. Feeds the BENCH_perf.json served rows (schema
// progopt-perf/v5).
func benchServeConcurrent(b *testing.B, n int) {
	e, err := New(Config{VectorSize: 512, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	d, err := e.GenerateTPCH(96*512, 31, OrderRandom)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var makespan uint64
	for i := 0; i < b.N; i++ {
		srv, err := NewServer(e, ServerConfig{MaxActive: 4})
		if err != nil {
			b.Fatal(err)
		}
		tks := make([]*Ticket, n)
		for j := range tks {
			opts := ExecOptions{Mode: ModeFixed}
			if j%2 == 1 {
				opts = ExecOptions{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}}
			}
			plan := convergentPlan(d, j%3 == 1)
			if j%4 == 3 {
				plan = plan.OrderBy("l_extendedprice", Desc).Limit(8)
			}
			tk, err := srv.SubmitAt(d, plan, opts, uint64(j)*40_000)
			if err != nil {
				b.Fatal(err)
			}
			tks[j] = tk
		}
		var wg sync.WaitGroup
		for _, tk := range tks {
			wg.Add(1)
			go func(tk *Ticket) {
				defer wg.Done()
				if _, err := tk.Wait(); err != nil {
					b.Error(err)
				}
			}(tk)
		}
		wg.Wait()
		makespan = srv.Stats().MakespanCycles
		srv.Close()
	}
	b.ReportMetric(float64(makespan), "sim_cycles")
}

// BenchmarkServeConcurrent4 serves four simultaneous queries — one per core.
func BenchmarkServeConcurrent4(b *testing.B) { benchServeConcurrent(b, 4) }

// BenchmarkServeConcurrent8 serves eight — queueing behind MaxActive 4.
func BenchmarkServeConcurrent8(b *testing.B) { benchServeConcurrent(b, 8) }

// --- Ablation benches (DESIGN.md, "Key design decisions") ---

func ablationDataset(b *testing.B, rows int, ord tpch.Ordering) *tpch.Dataset {
	b.Helper()
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	if ord != tpch.OrderingNatural {
		d = d.ReorderLineitem(ord, 4)
	}
	return d
}

func progressiveCycles(b *testing.B, d *tpch.Dataset, vectorSize int, opt core.Options) uint64 {
	b.Helper()
	c := cpu.MustNew(cpu.ScaledXeon())
	eng := exec.MustEngine(c, vectorSize)
	q, err := exec.Q6(d)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.BindQuery(q); err != nil {
		b.Fatal(err)
	}
	// Worst-ish initial order: reversed.
	qo, err := q.WithOrder([]int{4, 3, 2, 1, 0})
	if err != nil {
		b.Fatal(err)
	}
	res, _, err := core.RunProgressive(eng, qo, opt)
	if err != nil {
		b.Fatal(err)
	}
	return res.Cycles
}

// BenchmarkAblationVectorSize: sampling granularity v. adaptation lag.
func BenchmarkAblationVectorSize(b *testing.B) {
	for _, vs := range []int{512, 2048, 8192} {
		b.Run(fmt.Sprintf("vec%d", vs), func(b *testing.B) {
			d := ablationDataset(b, 120_000, tpch.OrderingShipdateSorted)
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = progressiveCycles(b, d, vs, core.Options{ReopInterval: 10})
			}
			b.ReportMetric(float64(cycles), "sim_cycles")
		})
	}
}

// BenchmarkAblationPredictorReset: JIT recompilation clears predictor state.
func BenchmarkAblationPredictorReset(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "reset"
		if disable {
			name = "no-reset"
		}
		b.Run(name, func(b *testing.B) {
			d := ablationDataset(b, 120_000, tpch.OrderingShipdateSorted)
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = progressiveCycles(b, d, 1024, core.Options{
					ReopInterval: 10, DisablePredictorReset: disable,
				})
			}
			b.ReportMetric(float64(cycles), "sim_cycles")
		})
	}
}

// BenchmarkAblationRevert: validation reverting bad reorders matters on
// random data (Figure 13c).
func BenchmarkAblationRevert(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "validate"
		if disable {
			name = "no-validate"
		}
		b.Run(name, func(b *testing.B) {
			d := ablationDataset(b, 120_000, tpch.OrderingRandom)
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = progressiveCycles(b, d, 1024, core.Options{
					ReopInterval: 5, DisableValidation: disable,
				})
			}
			b.ReportMetric(float64(cycles), "sim_cycles")
		})
	}
}

// estimationError measures mean absolute selectivity error of the estimator
// against a known synthetic forward-model sample.
func estimationError(b *testing.B, cfg core.EstimatorConfig, truth []float64) float64 {
	b.Helper()
	params := peo.Params{
		N: 1 << 20, Widths: cfg.Widths, AggWidths: cfg.AggWidths,
		Geometry: cfg.Geometry, Chain: cfg.Chain,
	}
	est, err := peo.Counters(params, truth)
	if err != nil {
		b.Fatal(err)
	}
	sample := core.CounterSample{
		N: float64(params.N), BNT: est.BNT, MPTaken: est.MPTaken,
		MPNotTaken: est.MPNotTaken, L3: est.L3, Qualifying: est.Qualifying,
	}
	got, err := core.EstimateSelectivities(sample, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sum := 0.0
	for i := range truth {
		sum += math.Abs(got.Sels[i] - truth[i])
	}
	return sum / float64(len(truth))
}

func ablationEstCfg() core.EstimatorConfig {
	return core.EstimatorConfig{
		Widths:    []int{8, 8, 8, 8},
		AggWidths: []int{8},
		Geometry:  cachemodel.MustGeometry(64, 16384),
		Chain:     markov.Paper(),
	}
}

// BenchmarkAblationStartPoints: §4.3's multi-start against a single
// null-hypothesis start. The truth vector is a skewed configuration whose
// counter surface has a local optimum near the even-split null hypothesis —
// exactly the ambiguity §4.3 describes.
func BenchmarkAblationStartPoints(b *testing.B) {
	truth := []float64{1, 0.02, 1, 0.9}
	for _, starts := range []int{1, 8} {
		b.Run(fmt.Sprintf("starts%d", starts), func(b *testing.B) {
			var errv float64
			for i := 0; i < b.N; i++ {
				cfg := ablationEstCfg()
				cfg.MaxStarts = starts
				errv = estimationError(b, cfg, truth)
			}
			b.ReportMetric(errv, "mean_abs_sel_err")
		})
	}
}

// BenchmarkAblationCounterSubsets: estimating from BNT alone v. all four
// counters of Eq. (10).
func BenchmarkAblationCounterSubsets(b *testing.B) {
	truth := []float64{0.8, 0.3, 0.6, 0.1}
	weights := map[string]*core.CounterWeights{
		"bnt-only": {BNT: 1},
		"all-four": nil,
	}
	for name, w := range weights {
		b.Run(name, func(b *testing.B) {
			var errv float64
			for i := 0; i < b.N; i++ {
				cfg := ablationEstCfg()
				cfg.Weights = w
				errv = estimationError(b, cfg, truth)
			}
			b.ReportMetric(errv, "mean_abs_sel_err")
		})
	}
}
