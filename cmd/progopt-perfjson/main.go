// Command progopt-perfjson converts `go test -bench` output on stdin into
// the BENCH_perf.json artifact CI uploads per commit — the host-performance
// trajectory of the simulator's hot paths (schema progopt-perf/v2; v2 adds
// the BenchmarkRunTopK sort row with an unchanged field layout, see
// DESIGN.md for the back-compat note).
//
// Usage:
//
//	go test -run xxx -bench 'BenchmarkRun(TupleAtATime|Batch|Parallel|TopK)$' \
//	    -benchmem -benchtime 3x . | go run ./cmd/progopt-perfjson -out BENCH_perf.json
//
// Only benchmark result lines are consumed; everything else (goos/pkg
// headers, PASS/ok trailers) is ignored, and the raw line is preserved in
// the artifact for forensics.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Schema is the artifact format identifier. v2 is v1 plus the sort
// benchmark row (BenchmarkRunTopK); the per-bench field layout is
// unchanged, so v1 consumers can read v2 documents by ignoring the version.
const Schema = "progopt-perf/v2"

// Bench is one benchmark result row.
type Bench struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is host wall-clock per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present when -benchmem was set.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries every custom b.ReportMetric unit (e.g. sim_cycles).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Raw is the verbatim result line.
	Raw string `json:"raw"`
}

// Artifact is the whole BENCH_perf.json document.
type Artifact struct {
	Schema  string  `json:"schema"`
	Benches []Bench `json:"benches"`
}

func main() {
	out := flag.String("out", "BENCH_perf.json", "output path")
	flag.Parse()

	art := Artifact{Schema: Schema}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseBenchLine(line); ok {
			art.Benches = append(art.Benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(art.Benches) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benches)\n", *out, len(art.Benches))
}

// parseBenchLine decodes one `BenchmarkName  N  v unit  v unit ...` row.
func parseBenchLine(line string) (Bench, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Bench{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip GOMAXPROCS suffix
		}
	}
	b := Bench{Name: name, Iterations: iters, Raw: line}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = ptr(v)
		case "allocs/op":
			b.AllocsPerOp = ptr(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}

func ptr(v float64) *float64 { return &v }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "progopt-perfjson:", err)
	os.Exit(1)
}
