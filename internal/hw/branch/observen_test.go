package branch

import (
	"math/rand"
	"testing"
)

// repeatObserver is the batched-observation fast path shared by the
// predictors under test.
type repeatObserver interface {
	Predictor
	ObserveN(site int, taken bool, n int) int
}

// drive feeds the same random schedule of single and batched same-direction
// observations to a fast-path predictor and a reference twin that only ever
// uses Observe, asserting identical misprediction counts at every step and
// identical outcome streams afterwards.
func drive(t *testing.T, name string, mk func() repeatObserver, rng *rand.Rand) {
	t.Helper()
	fast, ref := mk(), mk()
	sites := rng.Intn(4) + 1
	for step := 0; step < 200; step++ {
		site := rng.Intn(sites)
		taken := rng.Intn(2) == 0
		n := rng.Intn(40) + 1
		got := fast.ObserveN(site, taken, n)
		want := 0
		for i := 0; i < n; i++ {
			if ref.Observe(site, taken).Mispredicted() {
				want++
			}
		}
		if got != want {
			t.Fatalf("%s: step %d (site %d taken %v n %d): ObserveN %d mispredicts, Observe loop %d",
				name, step, site, taken, n, got, want)
		}
	}
	// Post-batch state must match: identical outcomes for a mixed tail.
	for i := 0; i < 64; i++ {
		site := rng.Intn(sites)
		taken := rng.Intn(3) != 0
		a, b := fast.Observe(site, taken), ref.Observe(site, taken)
		if a != b {
			t.Fatalf("%s: tail outcome %d diverged: %+v vs %+v", name, i, a, b)
		}
	}
}

func TestObserveNMatchesObserveLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		drive(t, "saturating-6", func() repeatObserver { return MustSaturating(6, BiasNone) }, rng)
		drive(t, "saturating-4", func() repeatObserver { return MustSaturating(4, BiasNone) }, rng)
		drive(t, "saturating-5+1T", func() repeatObserver { return MustSaturating(5, BiasTaken) }, rng)
		drive(t, "gshare", func() repeatObserver { return MustGshare(10, 6) }, rng)
	}
}

func TestObserveNZeroAndSaturated(t *testing.T) {
	s := MustSaturating(6, BiasNone)
	if got := s.ObserveN(0, true, 0); got != 0 {
		t.Fatalf("ObserveN(0) = %d", got)
	}
	// Saturate fully taken, then a long taken batch mispredicts nothing.
	s.ObserveN(0, true, 10)
	if got := s.ObserveN(0, true, 1_000_000); got != 0 {
		t.Fatalf("saturated taken batch mispredicted %d", got)
	}
	// Flipping direction mispredicts exactly takenStates times (states walked
	// from strong-taken across the taken side).
	if got := s.ObserveN(0, false, 1_000_000); got != s.TakenStates() {
		t.Fatalf("direction flip mispredicted %d, want %d", got, s.TakenStates())
	}
}
