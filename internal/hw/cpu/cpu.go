package cpu

import (
	"fmt"

	"progopt/internal/hw/branch"
	"progopt/internal/hw/cache"
	"progopt/internal/hw/pmu"
)

// CPU is one simulated core: predictor + cache hierarchy + PMU + cycle
// accounting, plus a bump allocator for the synthetic physical address space
// that columns and hash tables live in.
type CPU struct {
	prof Profile
	pred branch.Predictor
	// sat and gs alias pred when it is one of the two concrete predictor
	// models, devirtualizing the per-branch Observe call on the hot path and
	// enabling the O(1)/early-exit ObserveN batch forms.
	sat *branch.Saturating
	gs  *branch.Gshare
	mem *cache.Hierarchy

	// stallQ holds the per-hit-level memory stall in quarter-cycles, indexed
	// by cache.HitLevel; precomputed so batched runs convert per-level hit
	// counts into stall time with three multiplies.
	stallQ [cache.HitMem + 1]uint64

	// Branch event counters (cache events live in the hierarchy and are
	// merged into samples on read).
	brCond, brTaken, brNotTaken uint64
	brMPTaken, brMPNotTaken     uint64

	instructions uint64
	// stallQuarters accumulates memory/branch stall time in quarter-cycles so
	// cycle accounting stays integral at IssueWidth 4.
	stallQuarters uint64

	allocNext  uint64
	allocCount uint64

	// addrBuf is the reusable scratch batch kernels gather data-dependent
	// address streams (join probes, hash-table touches) into before handing
	// them to LoadAddrs in one call; keyBuf holds the values those addresses
	// were derived from, for kernels that need them again after the loads
	// (the join's branch phase).
	addrBuf []uint64
	keyBuf  []int64
}

// New builds a CPU from a profile.
func New(prof Profile) (*CPU, error) {
	if err := prof.validate(); err != nil {
		return nil, err
	}
	pred, err := branch.ForArch(prof.Arch)
	if err != nil {
		return nil, err
	}
	mem, err := cache.NewHierarchy(prof.Hierarchy)
	if err != nil {
		return nil, err
	}
	c := &CPU{
		prof: prof,
		pred: pred,
		mem:  mem,
		// Leave a null guard page; allocations start at 1 MB.
		allocNext: 1 << 20,
	}
	switch p := pred.(type) {
	case *branch.Saturating:
		c.sat = p
	case *branch.Gshare:
		c.gs = p
	}
	stall := func(lat int) uint64 {
		s := (lat - prof.Hierarchy.L1.LatencyCycles) * 4 / prof.MemParallelism
		if s < 0 {
			return 0
		}
		return uint64(s)
	}
	c.stallQ[cache.HitL2] = stall(prof.Hierarchy.L2.LatencyCycles)
	c.stallQ[cache.HitL3] = stall(prof.Hierarchy.L3.LatencyCycles)
	c.stallQ[cache.HitMem] = stall(prof.Hierarchy.MemLatencyCycles)
	return c, nil
}

// MustNew is New that panics on error, for statically valid profiles.
func MustNew(prof Profile) *CPU {
	c, err := New(prof)
	if err != nil {
		panic(err)
	}
	return c
}

// Profile returns the CPU's profile.
func (c *CPU) Profile() Profile { return c.prof }

// Hierarchy exposes the cache hierarchy (read-only use intended).
func (c *CPU) Hierarchy() *cache.Hierarchy { return c.mem }

// Alloc reserves size bytes of the synthetic address space, aligned to 4 KB
// with a 4 KB guard gap, and returns the base address. The engine assigns one
// allocation per column so access locality is faithful to a columnar layout.
//
// Bases are staggered by a few cache lines per allocation (cache coloring):
// purely page-aligned column bases would map every column's current line
// into the same L1 set when scanned in lockstep, a power-of-two-stride
// pathology the scaled-down L1 (few sets) would otherwise amplify far beyond
// what the paper's 64-set L1 exhibits.
func (c *CPU) Alloc(size int) (uint64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("cpu: non-positive allocation size %d", size)
	}
	const page = 4096
	lineSize := uint64(c.prof.Hierarchy.L1.LineSize)
	stagger := (c.allocCount * 5 % 63) * lineSize
	c.allocCount++
	base := c.allocNext + stagger
	c.allocNext += (uint64(size) + stagger + 2*page - 1) / page * page
	return base, nil
}

// Load performs one demand load at addr: one retired instruction plus the
// memory-stall cost of wherever the line was found.
func (c *CPU) Load(addr uint64) cache.AccessResult {
	c.instructions++
	r := c.mem.Load(addr)
	// L1-hit latency is hidden by the pipeline; deeper hits stall for the
	// differential latency, divided by the memory-parallelism factor
	// (precomputed per level in stallQ).
	c.stallQuarters += c.stallQ[r.Level]
	return r
}

// addRunHits accounts one batched run: every load retires one instruction
// and pays the per-level stall of wherever it hit, exactly as the same loads
// would through Load.
func (c *CPU) addRunHits(rh cache.RunHits) {
	c.instructions += uint64(rh.Total())
	c.stallQuarters += uint64(rh.L2)*c.stallQ[cache.HitL2] +
		uint64(rh.L3)*c.stallQ[cache.HitL3] +
		uint64(rh.Mem)*c.stallQ[cache.HitMem]
}

// CondBranch retires one conditional branch at the given site: one compare
// plus one jump instruction, plus the misprediction penalty when the
// predictor got it wrong. It returns the predictor outcome.
func (c *CPU) CondBranch(site int, taken bool) branch.Outcome {
	c.instructions += 2 // cmp + jcc
	c.brCond++
	var out branch.Outcome
	if c.sat != nil {
		out = c.sat.Observe(site, taken)
	} else {
		out = c.pred.Observe(site, taken)
	}
	mp := out.Mispredicted()
	if taken {
		c.brTaken++
		if mp {
			c.brMPTaken++
		}
	} else {
		c.brNotTaken++
		if mp {
			c.brMPNotTaken++
		}
	}
	if mp {
		c.stallQuarters += uint64(c.prof.BranchMissPenaltyCycles) * 4
	}
	return out
}

// LoadSeq performs n demand loads at start, start+stride, ... — a batch
// kernel streaming a column. Counter, cache, and stall effects are exactly
// those of n Load calls: the whole run is simulated by the hierarchy in one
// call, with same-line streaks collapsed into counted L1-MRU touches.
func (c *CPU) LoadSeq(start uint64, stride, n int) {
	c.addRunHits(c.mem.LoadRun(start, stride, n))
}

// LoadSel performs one demand load per selected row of a column at base with
// the given stride — a batch kernel gathering survivors. Effects are exactly
// those of per-row Load calls, simulated by the hierarchy in one run-batched
// call.
func (c *CPU) LoadSel(base uint64, stride int, rows []int32) {
	c.addRunHits(c.mem.LoadSel(base, stride, rows))
}

// LoadAddrs performs one demand load per address, in order — the gather path
// of kernels whose address streams are data-dependent (join probes,
// hash-table touches). Effects are exactly those of per-element Load calls.
func (c *CPU) LoadAddrs(addrs []uint64) {
	c.addRunHits(c.mem.LoadStream(addrs))
}

// AddrBuf returns the CPU's reusable address-gather scratch, emptied, with
// capacity for at least n addresses. The returned slice is valid until the
// next AddrBuf call; batch kernels append the vector's data-dependent
// addresses to it and pass the result to LoadAddrs.
func (c *CPU) AddrBuf(n int) []uint64 {
	if cap(c.addrBuf) < n {
		c.addrBuf = make([]uint64, 0, n)
	}
	return c.addrBuf[:0]
}

// KeyBuf is AddrBuf's companion for the key values the gathered addresses
// were computed from; valid until the next KeyBuf call.
func (c *CPU) KeyBuf(n int) []int64 {
	if cap(c.keyBuf) < n {
		c.keyBuf = make([]int64, 0, n)
	}
	return c.keyBuf[:0]
}

// CondBranchN retires n identical conditional branches at the given site
// (the batch engine's loop back-edge, or a kernel whose comparison outcome is
// constant over the vector). Counter and predictor effects are exactly those
// of calling CondBranch n times; with the concrete predictor models the
// misprediction count of a same-direction batch is computed in O(1)
// (saturating) or O(history) (gshare) instead of n predictor steps.
func (c *CPU) CondBranchN(site int, taken bool, n int) {
	if n <= 0 {
		return
	}
	var mp int
	switch {
	case c.sat != nil:
		mp = c.sat.ObserveN(site, taken, n)
	case c.gs != nil:
		mp = c.gs.ObserveN(site, taken, n)
	default:
		for i := 0; i < n; i++ {
			if c.pred.Observe(site, taken).Mispredicted() {
				mp++
			}
		}
	}
	c.instructions += 2 * uint64(n) // cmp + jcc each
	c.brCond += uint64(n)
	if taken {
		c.brTaken += uint64(n)
		c.brMPTaken += uint64(mp)
	} else {
		c.brNotTaken += uint64(n)
		c.brMPNotTaken += uint64(mp)
	}
	c.stallQuarters += uint64(mp) * uint64(c.prof.BranchMissPenaltyCycles) * 4
}

// SiteIndependentPredictor reports whether the branch predictor keeps fully
// independent per-site state (the saturating-counter models): observations at
// different sites then commute — each site's outcome stream and final state
// depend only on that site's own observation subsequence, and every PMU
// effect of a branch is an order-independent sum. Callers may batch a site's
// same-direction branches (e.g. a row loop's back-edge) out of line with
// other sites' without changing any counter. Global-history predictors
// (gshare) return false: their sites couple through the history register, so
// program order must be preserved.
func (c *CPU) SiteIndependentPredictor() bool { return c.sat != nil }

// Exec retires n plain ALU instructions.
func (c *CPU) Exec(n int) {
	if n > 0 {
		c.instructions += uint64(n)
	}
}

// ResetPredictor clears all branch-predictor state, emulating a JIT
// recompilation of the query loop (new branch addresses).
func (c *CPU) ResetPredictor() { c.pred.Reset() }

// FlushCaches empties the cache hierarchy (counters are preserved).
func (c *CPU) FlushCaches() { c.mem.Flush() }

// Cycles returns elapsed core cycles: retired instructions spread over the
// issue width plus accumulated stall time. Whole-cycle stalls charged by an
// attached storage tier are NOT included: the tier is a pure observer whose
// stall debt is read out-of-band (cache.StorageSet.Counters) and added to
// reported run times by the driver, so attaching a tier perturbs neither
// scheduling decisions nor any simulated observable.
func (c *CPU) Cycles() uint64 {
	issueQuarters := c.instructions * 4 / uint64(c.prof.IssueWidth)
	return (issueQuarters + c.stallQuarters) / 4
}

// Millis converts Cycles to milliseconds at the profile's clock.
func (c *CPU) Millis() float64 {
	return float64(c.Cycles()) / (c.prof.ClockGHz * 1e6)
}

// MillisOf converts a cycle count to milliseconds at the profile's clock.
func (c *CPU) MillisOf(cycles uint64) float64 {
	return float64(cycles) / (c.prof.ClockGHz * 1e6)
}

// Sample snapshots all PMU events, including the derived fixed counters.
func (c *CPU) Sample() pmu.Sample {
	var s pmu.Sample
	s[pmu.BrCond] = c.brCond
	s[pmu.BrTaken] = c.brTaken
	s[pmu.BrNotTaken] = c.brNotTaken
	s[pmu.BrMPTaken] = c.brMPTaken
	s[pmu.BrMPNotTaken] = c.brMPNotTaken
	s[pmu.BrMP] = c.brMPTaken + c.brMPNotTaken
	hc := c.mem.Counters()
	s[pmu.L1Access] = hc.L1.Accesses
	s[pmu.L1Miss] = hc.L1.Misses
	s[pmu.L2Access] = hc.L2.Accesses
	s[pmu.L2Miss] = hc.L2.Misses
	s[pmu.L3DemandAccess] = hc.L3.Accesses
	s[pmu.L3PrefetchAccess] = hc.L3PrefetchAccesses
	s[pmu.L3Access] = hc.L3TotalAccesses()
	s[pmu.L3Miss] = hc.L3.Misses
	s[pmu.L3Hit] = hc.L3.Hits
	s[pmu.MemAccess] = hc.MemAccesses
	s[pmu.Instructions] = c.instructions
	s[pmu.Cycles] = c.Cycles()
	return s
}

// ResetCounters zeroes every PMU event (cache contents and predictor state
// are preserved; real PMUs reset counters without touching the pipeline).
func (c *CPU) ResetCounters() {
	c.brCond, c.brTaken, c.brNotTaken = 0, 0, 0
	c.brMPTaken, c.brMPNotTaken = 0, 0
	c.instructions, c.stallQuarters = 0, 0
	c.mem.ResetCounters()
}
