package progopt

import (
	"math"
	"reflect"
	"testing"
)

// Fuzz vocabularies: every real table and column of the generated data set
// plus deliberately bogus names, so the mutator reaches both the happy paths
// and every compile-time validation branch.
var (
	fuzzTables = []string{"lineitem", "orders", "part", "customer", "nation", "galaxy"}
	fuzzCols   = []string{
		"l_orderkey", "l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_shipdate",
		"o_orderkey", "o_custkey", "o_orderdate", "o_totalprice",
		"p_partkey", "p_size", "p_retailprice",
		"c_custkey", "c_acctbal", "c_nationkey", "c_mktsegment",
		"n_nationkey", "n_regionkey",
		"nonesuch",
	}
	fuzzSums = []string{
		"l_extendedprice", "l_extendedprice * l_discount", "l_quantity",
		"o_totalprice", "nonesuch", "l_shipdate * nonesuch",
	}
	fuzzCmps = []Cmp{CmpLE, CmpLT, CmpGE, CmpGT, CmpEQ}
)

// fuzzPlan decodes a byte string into a plan: byte 0 picks the driving
// table, then each opcode byte plus its fixed operands appends one builder
// step (join edge, int/float filter, order-by, sum, legacy join, group-by).
// Operands past the end of the input read as zero, so every byte string
// decodes to some plan; whether it compiles is exactly what the fuzz target
// is probing.
func fuzzPlan(data []byte) *Plan {
	if len(data) == 0 {
		return Scan("lineitem")
	}
	p := Scan(fuzzTables[int(data[0])%len(fuzzTables)])
	i := 1
	next := func() int {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return int(b)
	}
	table := func() string { return fuzzTables[next()%len(fuzzTables)] }
	col := func() string { return fuzzCols[next()%len(fuzzCols)] }
	for steps := 0; i < len(data) && steps < 12; steps++ {
		switch next() % 7 {
		case 0:
			p = p.JoinOn(table(), col(), table())
		case 1:
			p = p.Filter(col(), fuzzCmps[next()%len(fuzzCmps)], int64(next())*64)
		case 2:
			p = p.Filter(col(), fuzzCmps[next()%len(fuzzCmps)], (float64(next())-128)*40)
		case 3:
			if next()%2 == 0 {
				p = p.OrderBy(col())
			} else {
				p = p.OrderBy(col(), Desc)
			}
			if n := next(); n%2 == 0 {
				p = p.Limit(n % 32)
			}
		case 4:
			p = p.Sum(fuzzSums[next()%len(fuzzSums)])
		case 5:
			p = p.Join(table(), float64(next())/255)
		case 6:
			p = p.GroupBy(col(), col())
		}
	}
	return p
}

// fuzzExec compiles and runs the plan on a fresh engine with the given
// worker count. A compile error returns (zero, error); an exec error fails
// the test — compilation is the validation boundary, so everything that
// compiles must run.
func fuzzExec(t *testing.T, workers int, plan *Plan) (ExecResult, error) {
	t.Helper()
	e, err := New(Config{VectorSize: 512, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.GenerateTPCH(4096, 7, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(d, plan)
	if err != nil {
		return ExecResult{}, err
	}
	res, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
	if err != nil {
		t.Fatalf("workers=%d: compiled plan failed to execute: %v", workers, err)
	}
	return res, nil
}

// FuzzPlanCompile drives randomly shaped join graphs, predicates, order-by
// and aggregation specs through Compile. Every input must either fail
// compilation with a validation error — identical at every worker count —
// or execute with results bit-identical at Workers 1 and 4.
func FuzzPlanCompile(f *testing.F) {
	// The scrambled 4-table join graph with pushed-down filters and a sum
	// (the joingraph_test determinism fixture, byte-encoded).
	f.Add([]byte{0,
		0, 1, 7, 3, // JoinOn(orders, o_custkey, customer)
		0, 0, 0, 1, // JoinOn(lineitem, l_orderkey, orders)
		0, 0, 1, 2, // JoinOn(lineitem, l_partkey, part)
		1, 2, 1, 1, // Filter(l_quantity < 64)
		2, 14, 0, 200, // float filter on c_acctbal
		4, 1, // Sum(l_extendedprice * l_discount)
	})
	// Legacy Join builder, still compiling through the untouched path.
	f.Add([]byte{0, 5, 1, 128, 1, 2, 1, 1, 4, 0})
	// Mixing Join and JoinOn must be rejected with the migration error.
	f.Add([]byte{0, 5, 1, 128, 0, 0, 0, 1})
	// Unknown driving table.
	f.Add([]byte{5, 1, 2, 1, 1})
	// Disconnected edge (customer→nation without reaching customer).
	f.Add([]byte{0, 0, 3, 15, 4})
	// Duplicate edge into the same table.
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 0, 1})
	// Non-integer key column (l_extendedprice as FK).
	f.Add([]byte{0, 0, 0, 3, 1})
	// Integer column whose values are not valid row ids (l_quantity→nation).
	f.Add([]byte{0, 0, 0, 2, 4})
	// Order-by + limit over a graph, group-by, and an empty plan.
	f.Add([]byte{0, 0, 0, 0, 1, 3, 1, 3, 8, 6, 0, 2})
	f.Add([]byte{0, 6, 0, 2})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		plan := fuzzPlan(data)
		r1, err1 := fuzzExec(t, 1, plan)
		r4, err4 := fuzzExec(t, 4, plan)
		if (err1 == nil) != (err4 == nil) {
			t.Fatalf("compile verdict differs by worker count: workers=1 %v, workers=4 %v", err1, err4)
		}
		if err1 != nil {
			if err1.Error() == "" || err1.Error() != err4.Error() {
				t.Fatalf("compile errors differ: %q vs %q", err1, err4)
			}
			return
		}
		if r1.Qualifying != r4.Qualifying {
			t.Fatalf("qualifying differs: workers=1 %d, workers=4 %d", r1.Qualifying, r4.Qualifying)
		}
		if math.Float64bits(r1.Sum) != math.Float64bits(r4.Sum) {
			t.Fatalf("sum differs: workers=1 %v, workers=4 %v", r1.Sum, r4.Sum)
		}
		if !reflect.DeepEqual(r1.Rows, r4.Rows) {
			t.Fatalf("ordered rows differ across worker counts (%d vs %d rows)", len(r1.Rows), len(r4.Rows))
		}
		if !reflect.DeepEqual(r1.Groups, r4.Groups) {
			t.Fatalf("groups differ across worker counts (%d vs %d groups)", len(r1.Groups), len(r4.Groups))
		}
	})
}
