package service

import "testing"

func TestFingerprintOrderIndependent(t *testing.T) {
	a := Compute("lineitem", 1, []string{"f|l_shipdate|<=|i:9000", "f|l_quantity|<|i:24", "j|orders|x:0x1p-01"})
	b := Compute("lineitem", 1, []string{"j|orders|x:0x1p-01", "f|l_quantity|<|i:24", "f|l_shipdate|<=|i:9000"})
	if a != b {
		t.Errorf("step order changed the fingerprint: %s vs %s", a, b)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Compute("lineitem", 1, []string{"f|l_quantity|<|i:24"})
	cases := map[string]Fingerprint{
		"bound":      Compute("lineitem", 1, []string{"f|l_quantity|<|i:25"}),
		"op":         Compute("lineitem", 1, []string{"f|l_quantity|<=|i:24"}),
		"column":     Compute("lineitem", 1, []string{"f|l_discount|<|i:24"}),
		"generation": Compute("lineitem", 2, []string{"f|l_quantity|<|i:24"}),
		"table":      Compute("orders", 1, []string{"f|l_quantity|<|i:24"}),
		"extra step": Compute("lineitem", 1, []string{"f|l_quantity|<|i:24", "f|l_quantity|<|i:24"}),
	}
	for name, fp := range cases {
		if fp == base {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
	if base.Zero() {
		t.Error("computed fingerprint is zero")
	}
}

// TestFingerprintNoAliasing: term boundaries are length-prefixed, so
// splitting content differently across terms must not collide.
func TestFingerprintNoAliasing(t *testing.T) {
	a := Compute("t", 1, []string{"ab", "c"})
	b := Compute("t", 1, []string{"a", "bc"})
	if a == b {
		t.Error("term boundary aliasing")
	}
}

func TestLRUEviction(t *testing.T) {
	l := NewLRU(2)
	k := func(i byte) Fingerprint { var f Fingerprint; f[0] = i; return f }
	l.Put(k(1), 1)
	l.Put(k(2), 2)
	if _, ok := l.Get(k(1)); !ok { // touches 1; 2 becomes LRU
		t.Fatal("entry 1 missing")
	}
	l.Put(k(3), 3)
	if _, ok := l.Get(k(2)); ok {
		t.Error("LRU entry 2 not evicted")
	}
	if _, ok := l.Get(k(1)); !ok {
		t.Error("recently used entry 1 evicted")
	}
	if _, ok := l.Get(k(3)); !ok {
		t.Error("new entry 3 missing")
	}
	if l.Evictions() != 1 || l.Len() != 2 {
		t.Errorf("evictions=%d len=%d", l.Evictions(), l.Len())
	}
	// Refreshing an existing key must not evict.
	l.Put(k(3), 33)
	if v, _ := l.Get(k(3)); v.(int) != 33 {
		t.Error("refresh did not replace value")
	}
	if l.Evictions() != 1 {
		t.Error("refresh evicted")
	}
}
