package core

import (
	"math"
	"testing"
	"testing/quick"
)

// TestRestrictPaperExample reproduces the paper's Figure 7 worked example:
// 4 predicates, 100 input tuples, 10 output tuples, accesses [80,70,50,10]
// (BNT = 210) restrict to lower [67,50,10,10] and upper [100,95,66,10].
func TestRestrictPaperExample(t *testing.T) {
	b, err := Restrict(4, 100, 10, 210)
	if err != nil {
		t.Fatal(err)
	}
	wantUpper := []float64{100, 95, 200.0 / 3, 10}
	wantLower := []float64{200.0 / 3, 50, 10, 10}
	for i := range wantUpper {
		if math.Abs(b.UpperBNT[i]-wantUpper[i]) > 0.5 {
			t.Errorf("UpperBNT[%d] = %v, want %v", i, b.UpperBNT[i], wantUpper[i])
		}
		if math.Abs(b.LowerBNT[i]-wantLower[i]) > 0.5 {
			t.Errorf("LowerBNT[%d] = %v, want %v", i, b.LowerBNT[i], wantLower[i])
		}
	}
	// Tuple bounds (Eq. 6/7).
	for i := 0; i < 3; i++ {
		if b.UpperTuple[i] != 100 || b.LowerTuple[i] != 10 {
			t.Errorf("tuple bounds[%d] = [%v,%v], want [10,100]", i, b.LowerTuple[i], b.UpperTuple[i])
		}
	}
	if b.UpperTuple[3] != 10 {
		t.Errorf("last upper tuple bound %v, want 10", b.UpperTuple[3])
	}
	// The true access vector must be feasible.
	if !b.Feasible([]float64{80, 70, 50, 10}) {
		t.Error("paper's example accesses rejected by its own bounds")
	}
	// Out-of-bound vectors must be rejected.
	if b.Feasible([]float64{100, 100, 100, 10}) {
		t.Error("accesses above upper BNT bound accepted")
	}
	if b.Feasible([]float64{60, 50, 10, 10}) {
		t.Error("accesses below lower BNT bound accepted")
	}
	if b.Feasible([]float64{70, 80, 50, 10}) {
		t.Error("non-monotone accesses accepted")
	}
}

func TestRestrictValidation(t *testing.T) {
	if _, err := Restrict(0, 100, 10, 50); err == nil {
		t.Error("zero predicates accepted")
	}
	if _, err := Restrict(3, 0, 0, 50); err == nil {
		t.Error("zero input accepted")
	}
	if _, err := Restrict(3, 100, 200, 50); err == nil {
		t.Error("output above input accepted")
	}
	if _, err := Restrict(3, 100, 10, -5); err == nil {
		t.Error("negative BNT accepted")
	}
}

// TestRestrictContainsTruth: for random monotone access vectors, the bounds
// computed from their implied (tupsIn, tupsOut, BNT) always contain the
// vector itself. This is the soundness property that guarantees the
// estimator never prunes the true selectivities.
func TestRestrictContainsTruth(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 1 || len(raw) > 7 {
			return true
		}
		const tupsIn = 10000.0
		// Build a monotone non-increasing access vector in [0, tupsIn].
		acc := make([]float64, len(raw))
		prev := tupsIn
		for i, r := range raw {
			v := float64(r) / math.MaxUint16 * prev
			acc[i] = v
			prev = v
		}
		bnt := 0.0
		for _, a := range acc {
			bnt += a
		}
		tupsOut := acc[len(acc)-1]
		b, err := Restrict(len(acc), tupsIn, tupsOut, bnt)
		if err != nil {
			return false
		}
		return b.Feasible(acc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRestrictBoundsOrdering(t *testing.T) {
	// Upper >= Lower everywhere, and the BNT bounds are within the tuple
	// bounds (they are strictly tighter restrictions).
	b, err := Restrict(5, 1000, 50, 1800)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.UpperBNT {
		if b.UpperBNT[i] < b.LowerBNT[i] {
			t.Errorf("position %d: upper %v < lower %v", i, b.UpperBNT[i], b.LowerBNT[i])
		}
		if b.UpperBNT[i] > b.UpperTuple[i]+1e-9 {
			t.Errorf("position %d: BNT upper %v above tuple upper %v", i, b.UpperBNT[i], b.UpperTuple[i])
		}
		if b.LowerBNT[i] < b.LowerTuple[i]-1e-9 {
			t.Errorf("position %d: BNT lower %v below tuple lower %v", i, b.LowerBNT[i], b.LowerTuple[i])
		}
	}
}

func TestProductBounds(t *testing.T) {
	b, err := Restrict(4, 100, 10, 210)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := b.ProductBounds()
	if len(lo) != 4 || len(hi) != 4 {
		t.Fatal("wrong dimensions")
	}
	for i := range lo {
		if lo[i] < 0 || hi[i] > 1 || lo[i] > hi[i] {
			t.Errorf("product bounds[%d] = [%v,%v] invalid", i, lo[i], hi[i])
		}
	}
	if math.Abs(hi[0]-1.0) > 1e-9 { // 100/100
		t.Errorf("hi[0] = %v, want 1", hi[0])
	}
	if math.Abs(lo[3]-0.1) > 1e-9 || math.Abs(hi[3]-0.1) > 1e-9 {
		t.Error("last product not pinned to output fraction")
	}
}
