package exec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"progopt/internal/columnar"
)

// Property test for the open-addressing group table: accumulating a random
// update stream through the flat table must produce exactly the rows the
// retired map-based reference (applyRef/groupsOfMap) produces — same keys,
// bit-identical sums, same counts — across random key domains, heavy
// collision mixes, under-estimated sizing (forcing growth), and extreme
// int64 keys.
func TestGroupTableMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	domains := [][]int64{
		{0, 1, 2, 3},                             // dense tiny
		{math.MinInt64, math.MaxInt64, -1, 0, 1}, // extreme bounds
		{1 << 62, 1<<62 + 16, 1<<62 + 32},        // same low bits: forced probes
		nil,                                      // random wide domain, filled below
	}
	for trial := 0; trial < 60; trial++ {
		domain := domains[trial%len(domains)]
		if domain == nil {
			domain = make([]int64, rng.Intn(400)+1)
			for i := range domain {
				domain[i] = rng.Int63() - rng.Int63()
			}
		}
		nRows := rng.Intn(3000) + 1
		keys := make([]int64, nRows)
		vals := make([]float64, nRows)
		for i := range keys {
			keys[i] = domain[rng.Intn(len(domain))]
			vals[i] = rng.NormFloat64() * 1e6
		}
		g := &GroupBy{
			GroupCol: columnar.NewInt64("k", keys),
			ValueCol: columnar.NewFloat64("v", vals),
			// Deliberately under-estimate sizing on most trials so the table
			// grows mid-stream.
			expected: rng.Intn(len(domain)) + 1,
		}
		acc := g.accTable()
		ref := make(map[int64]*Group)
		for row := 0; row < nRows; row++ {
			g.apply(acc, row)
			g.applyRef(ref, row)
		}
		got, want := acc.groups(), groupsOfMap(ref)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (domain %d, rows %d): table %v\nreference %v",
				trial, len(domain), nRows, got, want)
		}
		if acc.len() != len(ref) {
			t.Fatalf("trial %d: table len %d, reference %d", trial, acc.len(), len(ref))
		}
		// sortedKeys must agree with the reference key set, ascending.
		ks := acc.sortedKeys()
		if len(ks) != len(want) {
			t.Fatalf("trial %d: %d sorted keys for %d groups", trial, len(ks), len(want))
		}
		for i, k := range ks {
			if k != want[i].Key {
				t.Fatalf("trial %d: sortedKeys[%d] = %d, want %d", trial, i, k, want[i].Key)
			}
		}
	}
}
