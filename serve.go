package progopt

import (
	"fmt"
	"io"
	"sync"

	"progopt/internal/exec"
	"progopt/internal/service"
	"progopt/internal/trace"
)

// ServerConfig configures a workload server.
type ServerConfig struct {
	// MaxActive caps the queries sharing the engine's cores concurrently
	// (default: the engine's worker count). Submissions beyond it queue.
	MaxActive int
	// QueueLimit caps the pending queue; Submit rejects beyond it
	// (0 = unlimited).
	QueueLimit int
	// PlanCacheSize bounds the fingerprint-keyed compiled-plan cache
	// (default 64 plans). A hit skips Compile entirely.
	PlanCacheSize int
	// FeedbackCacheSize bounds the PMU-feedback cache of converged operator
	// orders (default 64 plans).
	FeedbackCacheSize int
	// QuantumVectors is the scheduling quantum of fixed-order queries:
	// morsels per assigned core between scheduling decisions (default 10).
	QuantumVectors int
	// DisableFeedback turns warm starts off (every run starts from the plan
	// order; nothing is stored) — the cold baseline of the ext-serve
	// experiment.
	DisableFeedback bool
	// SerialRounds forces each scheduling round to execute its queries'
	// segments serially on the host instead of concurrently — the oracle
	// path the host-concurrent scheduler is pinned bit-identical against.
	// Simulated results, latencies, traces, and metrics are unaffected;
	// only host wall-clock changes.
	SerialRounds bool
}

// ServerStats counts server activity since construction.
type ServerStats struct {
	// Submitted/Admitted/Rejected/Completed count queries through the
	// admission controller; PeakActive and PeakQueued are high-water marks.
	Submitted, Admitted, Rejected, Completed int
	PeakActive, PeakQueued                   int
	// PlanCacheHits/Misses/Evictions count fingerprint lookups that
	// skipped or required Compile, and capacity evictions.
	PlanCacheHits, PlanCacheMisses, PlanCacheEvictions int
	// FeedbackWarmStarts counts submissions that began at a cached
	// converged order; FeedbackStores counts adaptive completions that
	// deposited one.
	FeedbackWarmStarts, FeedbackStores int
	// MakespanCycles/Millis is the simulated time the core pool has been
	// driven to — the whole workload's completion time.
	MakespanCycles uint64
	MakespanMillis float64
}

// ServedInfo reports how a submission moved through the server, attached to
// its ExecResult. All times are simulated cycles.
type ServedInfo struct {
	// Arrival, Start, and Done are points on the simulated clock;
	// Done-Arrival is the query's latency including queueing and
	// Start-Arrival the queueing delay alone.
	Arrival, Start, Done uint64
	// LatencyCycles/Millis is Done-Arrival on the simulated clock.
	LatencyCycles uint64
	LatencyMillis float64
	// PlanCacheHit reports that Compile was skipped; WarmStart that the
	// run began at a feedback-cached converged order.
	PlanCacheHit, WarmStart bool
	// Fingerprint is the canonical plan fingerprint (hex).
	Fingerprint string
}

// servedProvenance records, on a compiled query, how the most recent
// Server.Submit obtained it; Explain reports it.
type servedProvenance struct {
	fingerprint  string
	planCacheHit bool
	warmStart    bool
	warmOrder    []int
}

// Server runs a multi-query workload against one engine's simulated cores:
// an admission controller and fair scheduler partition the Config.Workers
// cores across concurrent queries at morsel granularity, a plan cache keyed
// by canonical fingerprint (table + operators + bounds + data-set
// generation) skips re-compilation of recurring plans, and a feedback cache
// warm-starts adaptive runs at the operator order a previous run of the
// same fingerprint converged to — amortizing the paper's PMU-observation
// cost across a workload instead of paying it per query.
//
// Everything runs on the simulated clock: a fixed submission trace yields
// bit-identical per-query results, latencies, and makespan on every host
// run, from any goroutines, at any GOMAXPROCS. A query that has the pool to
// itself executes exactly like Engine.Exec (see equivalence_test.go);
// adaptive modes on a single-core engine use the multi-core drivers' block
// protocol, so their cycle counts differ from the serial Exec drivers while
// results stay bit-identical.
type Server struct {
	e   *Engine
	svc *service.Server

	mu              sync.Mutex
	plans           *service.LRU
	planHits        int
	planMisses      int
	disableFeedback bool

	// subSeq numbers submissions; resDone/resSeq stamp the stored query whose
	// residency the resident gauge currently reports, so racing waiters
	// publish the gauge in simulated completion order (ties to the later
	// submission), not host completion order.
	subSeq, resSeq uint64
	resDone        uint64
	resSet         bool

	// met is the server's simulated-time metrics registry, always on (see
	// WriteMetrics); metrics are host-side bookkeeping and perturb nothing.
	met *serverMetrics
}

// serverMetrics bundles the server's registry and its instruments, registered
// once in a fixed order so the exposition is byte-identical for identical
// workloads.
type serverMetrics struct {
	reg *trace.Metrics

	submitted, admitted, rejected, completed *trace.Gauge
	planHits, planMisses, planEvictions      *trace.Gauge
	warmStarts, feedbackStores               *trace.Gauge
	latency                                  *trace.Summary
	latP50, latP95, latP99                   *trace.Gauge
	makespan                                 *trace.Gauge
	resident                                 *trace.Gauge
}

func newServerMetrics() *serverMetrics {
	reg := trace.NewMetrics()
	return &serverMetrics{
		reg:            reg,
		submitted:      reg.Gauge("progopt_queries_submitted", "Queries submitted to the server."),
		admitted:       reg.Gauge("progopt_queries_admitted", "Queries admitted by the admission controller."),
		rejected:       reg.Gauge("progopt_queries_rejected", "Queries rejected at the queue limit."),
		completed:      reg.Gauge("progopt_queries_completed", "Queries completed."),
		planHits:       reg.Gauge("progopt_plan_cache_hits", "Plan-cache lookups that skipped Compile."),
		planMisses:     reg.Gauge("progopt_plan_cache_misses", "Plan-cache lookups that required Compile."),
		planEvictions:  reg.Gauge("progopt_plan_cache_evictions", "Plan-cache capacity evictions."),
		warmStarts:     reg.Gauge("progopt_feedback_warm_starts", "Submissions that began at a feedback-cached converged order."),
		feedbackStores: reg.Gauge("progopt_feedback_stores", "Adaptive completions that deposited a converged order."),
		latency:        reg.Summary("progopt_query_latency_cycles", "Per-query simulated latency (Done-Arrival), in cycles."),
		latP50:         reg.Gauge("progopt_query_latency_p50_millis", "p50 simulated query latency, in simulated milliseconds."),
		latP95:         reg.Gauge("progopt_query_latency_p95_millis", "p95 simulated query latency, in simulated milliseconds."),
		latP99:         reg.Gauge("progopt_query_latency_p99_millis", "p99 simulated query latency, in simulated milliseconds."),
		makespan:       reg.Gauge("progopt_makespan_millis", "Simulated time the core pool has been driven to."),
		resident:       reg.Gauge("progopt_storage_resident_bytes", "Storage-tier bytes resident in the DRAM budget after the most recent stored query."),
	}
}

// NewServer builds a workload server on the engine. The server schedules on
// its own pool of simulated cores (same profile and count as the engine's),
// so serving and direct Exec calls do not disturb each other's hardware
// state.
func NewServer(e *Engine, cfg ServerConfig) (*Server, error) {
	if e == nil {
		return nil, fmt.Errorf("progopt: NewServer needs an engine")
	}
	if cfg.PlanCacheSize <= 0 {
		cfg.PlanCacheSize = 64
	}
	svc, err := service.New(e.cpu.Profile(), e.workers, e.eng.VectorSize(), e.scalar, service.Config{
		MaxActive:         cfg.MaxActive,
		QueueLimit:        cfg.QueueLimit,
		QuantumVectors:    cfg.QuantumVectors,
		FeedbackCacheSize: cfg.FeedbackCacheSize,
		NoFuse:            !e.eng.Fused(),
		SerialRounds:      cfg.SerialRounds,
	})
	if err != nil {
		return nil, err
	}
	// When the engine traces, the server's pool and admission events join the
	// same recorder: per-pool-core tracks plus a service track. Track creation
	// happens here, before any scheduling, so track order is deterministic.
	if e.tr != nil {
		rec := e.tr.rec
		pool := make([]*trace.Track, svc.Workers())
		for i := range pool {
			pool[i] = rec.NewTrack(fmt.Sprintf("pool %d", i))
		}
		svc.SetTrace(rec.NewTrack("service"), pool)
	}
	return &Server{
		e:               e,
		svc:             svc,
		plans:           service.NewLRU(cfg.PlanCacheSize),
		disableFeedback: cfg.DisableFeedback,
		met:             newServerMetrics(),
	}, nil
}

// Ticket is the handle to one submission; Wait blocks until the query
// completes and returns its result.
type Ticket struct {
	s       *Server
	t       *service.Ticket
	q       *Query
	fp      service.Fingerprint
	planHit bool
	// stviews are this submission's private tier views (fresh residency per
	// submission, so plan-cache sharing never shares residency); nil for
	// in-RAM engines.
	stviews []*exec.StorageScan
	// seq is the submission's position in program submission order; it
	// tie-breaks the resident gauge when two stored queries complete at the
	// same simulated cycle.
	seq uint64
}

// Query returns the compiled query the server executes for this submission
// (shared with the plan cache). Engine.Explain on it reports the serving
// provenance — plan-cache hit, warm start, fingerprint.
func (t *Ticket) Query() *Query { return t.q }

// Submit enqueues a plan for execution with arrival "now" (the earliest
// simulated time a core is free). See SubmitAt for trace-driven arrivals.
func (s *Server) Submit(d *Dataset, p *Plan, opts ExecOptions) (*Ticket, error) {
	return s.SubmitAt(d, p, opts, s.svc.Now())
}

// SubmitAt enqueues a plan with an explicit simulated arrival time. The
// plan is fingerprinted (canonically, so step order does not matter),
// compiled unless the plan cache already holds its fingerprint, warm-started
// from the feedback cache when a previous run of the same fingerprint
// converged, and queued; execution happens inside Ticket.Wait's scheduling
// rounds. For a deterministic workload, submit the trace in arrival order
// before (or while) waiting.
func (s *Server) SubmitAt(d *Dataset, p *Plan, opts ExecOptions, arrival uint64) (*Ticket, error) {
	if d == nil {
		return nil, fmt.Errorf("progopt: Submit needs a data set")
	}
	if p == nil {
		return nil, fmt.Errorf("progopt: Submit needs a plan")
	}
	switch opts.Mode {
	case ModeFixed, ModeProgressive, ModeMicroAdaptive:
	default:
		return nil, fmt.Errorf("progopt: unknown execution mode %d", int(opts.Mode))
	}
	terms, err := p.fingerprintTerms()
	if err != nil {
		return nil, err
	}
	fp := service.Compute(p.fingerprintTable(), d.gen, terms)

	s.mu.Lock()
	var q *Query
	hit := false
	if v, ok := s.plans.Get(fp); ok {
		q = v.(*Query)
		hit = true
		s.planHits++
	} else {
		s.planMisses++
	}
	s.mu.Unlock()
	if !hit {
		q, err = s.e.Compile(d, p)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.plans.Put(fp, q)
		s.mu.Unlock()
	}
	if q.group != nil && opts.Mode != ModeFixed {
		return nil, fmt.Errorf("progopt: %s execution of grouped plans is not supported yet; use ModeFixed", opts.Mode)
	}

	req := service.Request{
		Query:       q.q,
		Mode:        serviceMode(opts.Mode),
		Opt:         opts.Progressive.coreOptions(),
		Arrival:     arrival,
		Fingerprint: fp,
		NoFeedback:  s.disableFeedback,
	}
	// Served steppers share the engine's optimizer track: each query's
	// stepper records decisions into a private stage and the scheduler
	// splices the stages into this track at the round barrier in admission
	// order, so decision events from concurrent queries interleave
	// deterministically (each stamped with its own query's accounted block
	// clock) even when segments execute host-parallel.
	req.Opt.Trace = s.e.optTrack()
	if q.group != nil {
		req.Groups = q.group.tables
	}
	if q.sort != nil {
		req.Sorts = q.sort.states
	}
	var stviews []*exec.StorageScan
	if q.storage != nil {
		stviews, err = q.storage.freshViews()
		if err != nil {
			return nil, err
		}
		req.Storage = stviews
	}
	tk, err := s.svc.Submit(req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.subSeq++
	seq := s.subSeq
	s.mu.Unlock()
	// Warm-start provenance is decided when the admission controller
	// activates the query; Wait refreshes it.
	q.served.Store(&servedProvenance{fingerprint: fp.String(), planCacheHit: hit})
	return &Ticket{s: s, t: tk, q: q, fp: fp, planHit: hit, stviews: stviews, seq: seq}, nil
}

// Close releases the host worker goroutines of the server's core pool, if
// any were started (see exec.Parallel.Close). The server remains usable
// afterwards.
func (s *Server) Close() { s.svc.Close() }

// serviceMode maps the public execution mode to the service's.
func serviceMode(m Mode) service.Mode {
	switch m {
	case ModeProgressive:
		return service.ModeProgressive
	case ModeMicroAdaptive:
		return service.ModeMicroAdaptive
	default:
		return service.ModeFixed
	}
}

// Wait drives the server's deterministic scheduler until this submission
// completes and returns its result. Result.Cycles/Millis are the query's
// execution span on its assigned cores (for a query that had the pool to
// itself, bit-identical to Engine.Exec); Served carries arrival/latency
// timestamps and cache provenance.
func (t *Ticket) Wait() (ExecResult, error) {
	o, err := t.t.Wait()
	if err != nil {
		return ExecResult{}, err
	}
	t.q.served.Store(&servedProvenance{
		fingerprint:  t.fp.String(),
		planCacheHit: t.planHit,
		warmStart:    o.WarmStarted,
		warmOrder:    o.WarmOrder,
	})
	out := ExecResult{Result: toResult(o.Result)}
	if o.Groups != nil {
		rows := make([]GroupRow, len(o.Groups))
		for i, g := range o.Groups {
			rows[i] = GroupRow{Key: g.Key, Sum: g.Sum, Count: g.Count}
		}
		out.Groups = rows
	}
	if o.Sorted != nil {
		out.Rows = toOrderedRows(o.Sorted)
	}
	out.Stats = toStats(o.Stats.ParallelStats.Stats)
	out.Impl = ImplStats{
		BranchingVectors:  o.Stats.BranchingVectors,
		BranchFreeVectors: o.Stats.BranchFreeVectors,
		ImplSwitches:      o.Stats.ImplSwitches,
	}
	if t.stviews != nil {
		// Same out-of-band accounting as Engine.Exec: the tier observes, its
		// stall debt extends the query's reported execution span (not the
		// server's discrete-event clock, which schedules on compute time).
		stats, maxStall := storageStats(t.q.storage.plan, t.stviews, nil)
		out.Storage = stats
		out.Cycles += maxStall
		out.Millis = t.s.e.cpu.MillisOf(out.Cycles)
	}
	lat := o.Done - o.Arrival
	// Latency observations are integral cycle counts, so the summary's sum
	// and quantiles are exact and independent of Wait completion order.
	t.s.met.latency.Observe(float64(lat))
	if t.stviews != nil {
		var res uint64
		for _, v := range t.stviews {
			if v != nil && v.Set != nil {
				res += v.Set.ResidentBytes()
			}
		}
		// The gauge reports the most recent stored query on the *simulated*
		// clock (ties to the later submission), so racing waiters publish it
		// deterministically regardless of host completion order.
		s := t.s
		s.mu.Lock()
		if !s.resSet || o.Done > s.resDone || (o.Done == s.resDone && t.seq > s.resSeq) {
			s.resSet, s.resDone, s.resSeq = true, o.Done, t.seq
			s.met.resident.Set(float64(res))
		}
		s.mu.Unlock()
	}
	out.Served = &ServedInfo{
		Arrival:       o.Arrival,
		Start:         o.Start,
		Done:          o.Done,
		LatencyCycles: lat,
		LatencyMillis: t.s.e.cpu.MillisOf(lat),
		PlanCacheHit:  t.planHit,
		WarmStart:     o.WarmStarted,
		Fingerprint:   t.fp.String(),
	}
	return out, nil
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	st := s.svc.Stats()
	s.mu.Lock()
	out := ServerStats{
		Submitted:          st.Submitted,
		Admitted:           st.Admitted,
		Rejected:           st.Rejected,
		Completed:          st.Completed,
		PeakActive:         st.PeakActive,
		PeakQueued:         st.PeakQueued,
		PlanCacheHits:      s.planHits,
		PlanCacheMisses:    s.planMisses,
		PlanCacheEvictions: s.plans.Evictions(),
		FeedbackWarmStarts: st.FeedbackWarmStarts,
		FeedbackStores:     st.FeedbackStores,
		MakespanCycles:     st.MakespanCycles,
	}
	s.mu.Unlock()
	out.MakespanMillis = s.e.cpu.MillisOf(out.MakespanCycles)
	return out
}

// Workers returns the size of the server's core pool.
func (s *Server) Workers() int { return s.svc.Workers() }

// WriteMetrics renders the server's metrics in the Prometheus text exposition
// format (version 0.0.4): query throughput, plan- and feedback-cache
// effectiveness, p50/p95/p99 simulated latency, pool makespan, and
// storage-tier residency. Every value is a simulated quantity; exposition is
// byte-identical for identical workloads.
func (s *Server) WriteMetrics(w io.Writer) error {
	st := s.Stats()
	m := s.met
	m.submitted.Set(float64(st.Submitted))
	m.admitted.Set(float64(st.Admitted))
	m.rejected.Set(float64(st.Rejected))
	m.completed.Set(float64(st.Completed))
	m.planHits.Set(float64(st.PlanCacheHits))
	m.planMisses.Set(float64(st.PlanCacheMisses))
	m.planEvictions.Set(float64(st.PlanCacheEvictions))
	m.warmStarts.Set(float64(st.FeedbackWarmStarts))
	m.feedbackStores.Set(float64(st.FeedbackStores))
	m.latP50.Set(s.e.cpu.MillisOf(uint64(m.latency.Quantile(0.5))))
	m.latP95.Set(s.e.cpu.MillisOf(uint64(m.latency.Quantile(0.95))))
	m.latP99.Set(s.e.cpu.MillisOf(uint64(m.latency.Quantile(0.99))))
	m.makespan.Set(st.MakespanMillis)
	return m.reg.WritePrometheus(w)
}
