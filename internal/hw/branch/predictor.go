// Package branch implements software models of CPU branch-prediction units.
//
// The paper's progressive optimizer consumes four performance counters, two
// of which (taken and not-taken branch mispredictions) depend on the CPU's
// branch predictor. Because this reproduction runs on simulated hardware,
// the predictors here stand in for the prediction units of the evaluated
// microarchitectures: an n-state saturating counter per branch site models
// Sandy Bridge, Ivy Bridge, Broadwell (6 states) and AMD (4 states) — the
// paper's own empirical finding (§3.2) — while a gshare predictor models the
// older Nehalem part, whose measured behaviour deviates from the saturating
// model in the paper's Figure 6.
//
// A "site" identifies one static conditional-branch instruction in the
// compiled query loop (one per predicate plus one loop branch). Re-JITing a
// query produces new branch addresses, which Reset emulates by clearing all
// per-site state.
package branch

// Outcome reports how a predictor handled one dynamic branch.
type Outcome struct {
	// PredictedTaken is the prediction made before the branch resolved.
	PredictedTaken bool
	// Taken is the actual direction of the branch.
	Taken bool
}

// Mispredicted reports whether the prediction disagreed with the outcome.
func (o Outcome) Mispredicted() bool { return o.PredictedTaken != o.Taken }

// Predictor models a branch-prediction unit with per-site state.
//
// Implementations must be deterministic: the same sequence of Observe calls
// after a Reset yields the same outcomes.
type Predictor interface {
	// Observe predicts the branch at the given site, then updates internal
	// state with the actual direction, returning both.
	Observe(site int, taken bool) Outcome
	// Reset clears all predictor state, emulating a JIT recompilation that
	// moves every branch to a fresh address.
	Reset()
	// Name identifies the predictor configuration (for reports).
	Name() string
}
