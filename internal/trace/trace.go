// Package trace is the engine's deterministic observability layer: an event
// recorder keyed entirely on the simulated clock, a Chrome trace-event (JSON)
// exporter loadable in Perfetto, and a simulated-time metrics registry with
// Prometheus text exposition.
//
// Two invariants shape the design:
//
//   - Pure observer. Recording an event performs no simulated work — callers
//     pass in cycle values they already read from their core's clock, and the
//     recorder touches no cache, predictor, or counter state. Traced and
//     untraced runs are therefore bit-identical in results, cycles, and every
//     PMU counter (pinned by the equivalence suite).
//
//   - Determinism. Events carry simulated cycles, never host time, and every
//     track has a single writer at any instant: a core's track is appended by
//     whichever host goroutine runs that simulated core (the wave scheduler
//     certifies the per-core morsel order equals the serial schedule), and the
//     optimizer/service tracks are appended only between waves or under the
//     service lock. Append order per track is thus a pure function of the
//     simulation, so exporting tracks in creation order and events in append
//     order yields byte-identical files across runs, GOMAXPROCS, and hosts.
//
// The zero-overhead-when-disabled contract is structural: a disabled path
// holds a nil *Track, every method is a nil-receiver no-op, and hot loops
// guard with a single pointer test before building any argument.
package trace

// Arg is one key/value annotation on an event. Values are restricted to the
// JSON-exact types the exporter can serialize deterministically.
type Arg struct {
	Key string
	Val any // uint64, int, int64, float64, bool, string, []int, []float64
}

// A returns an Arg; it exists so call sites read as A("rows", n).
func A(key string, val any) Arg { return Arg{Key: key, Val: val} }

// Event is one recorded span or instant on a track. Start and End are
// simulated cycles on the owning core's clock; an instant has End == Start.
type Event struct {
	Name    string
	Start   uint64
	End     uint64
	Instant bool
	Args    []Arg
}

// Track is an append-only event sequence owned by one timeline (a simulated
// core, the optimizer, the service scheduler). All methods are safe on a nil
// receiver and do nothing, so a nil Track is the disabled state.
type Track struct {
	name    string
	events  []Event
	limit   int
	dropped int
}

// Name returns the track's display name.
func (t *Track) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Events returns the recorded events (borrowed, not copied).
func (t *Track) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Dropped returns how many events were discarded after the track filled.
func (t *Track) Dropped() int {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Span records a [start, end] interval. Args are retained as given; callers
// must not mutate them afterwards.
func (t *Track) Span(name string, start, end uint64, args ...Arg) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Start: start, End: end, Args: args})
}

// Instant records a point event at the given cycle.
func (t *Track) Instant(name string, at uint64, args ...Arg) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Start: at, End: at, Instant: true, Args: args})
}

func (t *Track) add(ev Event) {
	if t.limit > 0 && len(t.events) >= t.limit {
		// Full tracks drop deterministically: the first limit events are
		// kept, the drop count is exported so truncation is visible.
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// NewStage returns a standalone staging track: a buffer that belongs to no
// recorder and never exports. A writer that would otherwise interleave with
// other writers on a shared track (a served query's optimizer decisions
// during a host-concurrent scheduling round) records into its own stage and
// the coordinator Splices the stages into the real track at a deterministic
// barrier, in a deterministic order.
func NewStage() *Track { return &Track{name: "stage", limit: DefaultMaxEventsPerTrack} }

// Splice appends every event of src to t, in src's append order, and resets
// src for reuse. Nil-safe on both ends: a nil t discards src's events (the
// disabled destination), a nil src is a no-op. Drop accounting carries over:
// events src already dropped stay dropped, and events t has no room for are
// dropped by t's own limit.
func (t *Track) Splice(src *Track) {
	if src == nil {
		return
	}
	if t != nil {
		for _, ev := range src.events {
			t.add(ev)
		}
		t.dropped += src.dropped
	}
	src.events = src.events[:0]
	src.dropped = 0
}

// DefaultMaxEventsPerTrack bounds a track's buffer when the recorder was not
// given an explicit limit; generous enough for every in-repo workload while
// keeping a runaway loop from exhausting host memory.
const DefaultMaxEventsPerTrack = 1 << 20

// Recorder owns an ordered set of tracks. Track creation is not synchronized:
// create every track up front, on one goroutine, before handing the handles
// to their owners (the engine attach path does exactly this).
type Recorder struct {
	tracks []*Track
	limit  int
}

// New returns an empty recorder with the default per-track event limit.
func New() *Recorder { return &Recorder{limit: DefaultMaxEventsPerTrack} }

// SetMaxEventsPerTrack bounds each subsequently created track's buffer;
// n <= 0 restores the default.
func (r *Recorder) SetMaxEventsPerTrack(n int) {
	if n <= 0 {
		n = DefaultMaxEventsPerTrack
	}
	r.limit = n
}

// NewTrack appends a track and returns its handle. Tracks export in creation
// order, so a fixed attach sequence yields a fixed file layout.
func (r *Recorder) NewTrack(name string) *Track {
	t := &Track{name: name, limit: r.limit}
	r.tracks = append(r.tracks, t)
	return t
}

// Tracks returns the tracks in creation order (borrowed, not copied).
func (r *Recorder) Tracks() []*Track { return r.tracks }

// NumTracks returns how many tracks exist.
func (r *Recorder) NumTracks() int { return len(r.tracks) }

// Events returns the total recorded event count across all tracks.
func (r *Recorder) Events() int {
	n := 0
	for _, t := range r.tracks {
		n += len(t.events)
	}
	return n
}

// Reset drops every recorded event and drop count but keeps the tracks, so
// long-lived attachments (benchmarks, serving sessions) can reuse buffers.
func (r *Recorder) Reset() {
	for _, t := range r.tracks {
		t.events = t.events[:0]
		t.dropped = 0
	}
}

// Marks snapshots each track's current event count; SummarizeSince uses it to
// aggregate only the events recorded after the snapshot (one run's worth on a
// recorder that accumulates across runs).
func (r *Recorder) Marks() []int {
	m := make([]int, len(r.tracks))
	for i, t := range r.tracks {
		m[i] = len(t.events)
	}
	return m
}

// NameAgg aggregates the events sharing one name: how often it occurred and
// the summed span length in simulated cycles (zero for instants).
type NameAgg struct {
	Name   string
	Count  int
	Cycles uint64
}

// SummarizeSince aggregates events recorded after marks (from Marks; nil
// means everything) grouped by event name, in first-appearance order.
func (r *Recorder) SummarizeSince(marks []int) []NameAgg {
	var (
		order []string
		byN   = map[string]*NameAgg{}
	)
	for i, t := range r.tracks {
		lo := 0
		if marks != nil && i < len(marks) {
			lo = marks[i]
		}
		for _, ev := range t.events[lo:] {
			a := byN[ev.Name]
			if a == nil {
				a = &NameAgg{Name: ev.Name}
				byN[ev.Name] = a
				order = append(order, ev.Name)
			}
			a.Count++
			a.Cycles += ev.End - ev.Start
		}
	}
	out := make([]NameAgg, len(order))
	for i, n := range order {
		out[i] = *byN[n]
	}
	return out
}
