package exec

import (
	"fmt"
	"math"

	"progopt/internal/columnar"
	"progopt/internal/hw/cpu"
)

// This file implements the fused form of the batch pipeline: the operator
// chain Filter*→FKJoin*→(Sum|GroupBy) runs through specialized kernels that
// keep the survivor selection in the pipeline's working buffers and retire
// each operator's conditional branch run-length encoded — one CondBranchN
// call per same-outcome run instead of one CondBranch call per row, plus one
// bulk survivor append per run instead of one per row.
//
// Fusion changes no simulated event. Per operator the fused kernel performs
// the same Exec charges, the same run-batched loads, and then emits the
// per-site branch-outcome stream in exactly the per-row order of the unfused
// kernel: CondBranchN(site, taken, n) is defined (and tested) to equal n
// sequential CondBranch(site, taken) calls for every predictor model, so
// instruction counts, branch counters, misprediction attribution, predictor
// state, and stall cycles are bit-identical to the unfused path — which is
// retained behind Engine.SetFuse(false) / Config.NoFuse as the oracle.
//
// The host win is mechanical: clustered columns (sorted dates, co-clustered
// join keys) produce long same-outcome runs whose whole branch accounting
// collapses into one closed-form predictor update, and even random 50/50
// outcomes halve the per-row call count.

// fusedPipeline runs the operator chain over cur, alternating between the two
// selection buffers, and returns the final survivors (aliasing one of the
// buffers). Operators without a fused kernel fall back to their EvalBatch —
// the pipeline is then partially fused, still event-exact.
func fusedPipeline(c *cpu.CPU, ops []Op, cur, next []int32) []int32 {
	for si, op := range ops {
		if len(cur) == 0 {
			// No survivors reach the remaining operators — the scalar loop
			// would not evaluate them either.
			break
		}
		switch t := op.(type) {
		case *Predicate:
			next = t.evalBatchFused(c, si, cur, next[:0])
		case *FKJoin:
			next = t.evalBatchFused(c, si, cur, next[:0])
		default:
			next = op.EvalBatch(c, si, cur, next[:0])
		}
		cur, next = next, cur
	}
	return cur
}

// evalBatchFused is Predicate.EvalBatch with the compare-and-branch phase
// run-length encoded. Charges, loads, and the branch-outcome stream are
// identical.
func (p *Predicate) evalBatchFused(c *cpu.CPU, site int, sel, out []int32) []int32 {
	if p.ExtraCostInstr > 0 {
		c.Exec(p.ExtraCostInstr * len(sel))
	}
	base, w := p.scanLayout()
	switch p.Col.Kind() {
	case columnar.Float64:
		return predLoopRLE(c, site, sel, out, p.Col.F64(), base, w, p.Op, p.F)
	case columnar.Int64:
		return predLoopRLE(c, site, sel, out, p.Col.I64(), base, w, p.Op, p.I)
	default: // Int32, Date
		if p.I > math.MaxInt32 || p.I < math.MinInt32 {
			return constLoop(c, site, sel, out, base, w, wideBoundPasses(p.Op, p.I))
		}
		return predLoopRLE(c, site, sel, out, p.Col.I32(), base, w, p.Op, int32(p.I))
	}
}

// predLoopRLE is predLoop with run-length-encoded branch retirement: each
// row's comparison is evaluated exactly once, maximal same-outcome runs
// retire as one CondBranchN (bit-identical to per-row CondBranch calls), and
// each passing run appends to the survivor vector in one copy.
func predLoopRLE[T int32 | int64 | float64](c *cpu.CPU, site int, sel, out []int32, vals []T, base, w uint64, op CmpOp, bound T) []int32 {
	selLoads(c, sel, base, w)
	n := len(sel)
	switch op {
	case LE:
		for i := 0; i < n; {
			ok := vals[sel[i]] <= bound
			j := i + 1
			for j < n && (vals[sel[j]] <= bound) == ok {
				j++
			}
			c.CondBranchN(site, !ok, j-i)
			if ok {
				out = append(out, sel[i:j]...)
			}
			i = j
		}
	case LT:
		for i := 0; i < n; {
			ok := vals[sel[i]] < bound
			j := i + 1
			for j < n && (vals[sel[j]] < bound) == ok {
				j++
			}
			c.CondBranchN(site, !ok, j-i)
			if ok {
				out = append(out, sel[i:j]...)
			}
			i = j
		}
	case GE:
		for i := 0; i < n; {
			ok := vals[sel[i]] >= bound
			j := i + 1
			for j < n && (vals[sel[j]] >= bound) == ok {
				j++
			}
			c.CondBranchN(site, !ok, j-i)
			if ok {
				out = append(out, sel[i:j]...)
			}
			i = j
		}
	case GT:
		for i := 0; i < n; {
			ok := vals[sel[i]] > bound
			j := i + 1
			for j < n && (vals[sel[j]] > bound) == ok {
				j++
			}
			c.CondBranchN(site, !ok, j-i)
			if ok {
				out = append(out, sel[i:j]...)
			}
			i = j
		}
	case EQ:
		for i := 0; i < n; {
			ok := vals[sel[i]] == bound
			j := i + 1
			for j < n && (vals[sel[j]] == bound) == ok {
				j++
			}
			c.CondBranchN(site, !ok, j-i)
			if ok {
				out = append(out, sel[i:j]...)
			}
			i = j
		}
	default:
		return predLoop(c, site, sel, out, vals, base, w, op, bound)
	}
	return out
}

// evalBatchFused is FKJoin.EvalBatch with the filter branch phase run-length
// encoded and the filter comparison monomorphized over the build column's
// kind (the per-row passRaw dispatch hoisted out of the loop). The gather
// phase — charges, key loads, interleaved hop/probe/filter address stream —
// is the unfused kernel's own gatherBatch, so it is byte-for-byte identical
// by construction.
func (j *FKJoin) evalBatchFused(c *cpu.CPU, site int, sel, out []int32) []int32 {
	keys := j.gatherBatch(c, sel)
	if j.Filter == nil {
		c.CondBranchN(site, false, len(sel))
		return append(out, sel...)
	}
	return filterKeysRLE(c, site, j.Filter, sel, keys, out)
}

// filterKeysRLE retires the join filter's branch phase with run-length
// encoding, dispatching once on the build column's kind. Outcomes match
// passRaw exactly, including integer bounds outside the int32 range.
func filterKeysRLE(c *cpu.CPU, site int, f *Predicate, sel []int32, keys []int64, out []int32) []int32 {
	switch f.Col.Kind() {
	case columnar.Float64:
		return keyLoopRLE(c, site, sel, keys, out, f.Col.F64(), f.Op, f.F)
	case columnar.Int64:
		return keyLoopRLE(c, site, sel, keys, out, f.Col.I64(), f.Op, f.I)
	default: // Int32, Date
		if f.I > math.MaxInt32 || f.I < math.MinInt32 {
			ok := wideBoundPasses(f.Op, f.I)
			c.CondBranchN(site, !ok, len(sel))
			if ok {
				out = append(out, sel...)
			}
			return out
		}
		return keyLoopRLE(c, site, sel, keys, out, f.Col.I32(), f.Op, int32(f.I))
	}
}

// keyLoopRLE is predLoopRLE's shape over gathered build rows: the filter
// value is indexed by the decoded key instead of the probe row, survivors are
// still the probe-side selection.
func keyLoopRLE[T int32 | int64 | float64](c *cpu.CPU, site int, sel []int32, keys []int64, out []int32, vals []T, op CmpOp, bound T) []int32 {
	n := len(sel)
	switch op {
	case LE:
		for i := 0; i < n; {
			ok := vals[keys[i]] <= bound
			j := i + 1
			for j < n && (vals[keys[j]] <= bound) == ok {
				j++
			}
			c.CondBranchN(site, !ok, j-i)
			if ok {
				out = append(out, sel[i:j]...)
			}
			i = j
		}
	case LT:
		for i := 0; i < n; {
			ok := vals[keys[i]] < bound
			j := i + 1
			for j < n && (vals[keys[j]] < bound) == ok {
				j++
			}
			c.CondBranchN(site, !ok, j-i)
			if ok {
				out = append(out, sel[i:j]...)
			}
			i = j
		}
	case GE:
		for i := 0; i < n; {
			ok := vals[keys[i]] >= bound
			j := i + 1
			for j < n && (vals[keys[j]] >= bound) == ok {
				j++
			}
			c.CondBranchN(site, !ok, j-i)
			if ok {
				out = append(out, sel[i:j]...)
			}
			i = j
		}
	case GT:
		for i := 0; i < n; {
			ok := vals[keys[i]] > bound
			j := i + 1
			for j < n && (vals[keys[j]] > bound) == ok {
				j++
			}
			c.CondBranchN(site, !ok, j-i)
			if ok {
				out = append(out, sel[i:j]...)
			}
			i = j
		}
	case EQ:
		for i := 0; i < n; {
			ok := vals[keys[i]] == bound
			j := i + 1
			for j < n && (vals[keys[j]] == bound) == ok {
				j++
			}
			c.CondBranchN(site, !ok, j-i)
			if ok {
				out = append(out, sel[i:j]...)
			}
			i = j
		}
	default:
		panic(fmt.Sprintf("exec: unknown comparison %d", int(op)))
	}
	return out
}
