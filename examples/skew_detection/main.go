// Skew detection (§4.5): the estimator inverts four PMU counters into
// per-predicate selectivities without any explicit counting. On skewed data
// the same query shows different estimated selectivities in different
// regions of the table — the signal that triggers mid-query reordering.
package main

import (
	"fmt"
	"log"

	"progopt"
)

func main() {
	eng, err := progopt.New(progopt.Config{VectorSize: 4096})
	if err != nil {
		log.Fatal(err)
	}

	// Natural (bulk-load) order: shipdate is weakly clustered, so shipdate
	// predicates are skewed along the table while quantity stays uniform.
	ds, err := eng.GenerateTPCH(200_000, 13, progopt.OrderNatural)
	if err != nil {
		log.Fatal(err)
	}

	cutoff := ds.ShipdateCutoff(0.5) // global selectivity 50%
	q, err := eng.Compile(ds, progopt.Scan("lineitem").
		Filter("l_shipdate", progopt.CmpLE, int64(cutoff)).
		Filter("l_quantity", progopt.CmpLT, 24))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("estimated selectivities from one sampled vector (PMU counters only):")
	sels, err := eng.EstimateSelectivities(q)
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range q.OpNames() {
		fmt.Printf("  %-22s est=%.3f\n", name, sels[i])
	}
	fmt.Println("\nglobally, shipdate<=cutoff selects 50% — but the sampled vector is at")
	fmt.Println("the start of the bulk-loaded table where nearly every row qualifies.")
	fmt.Println("That difference IS the skew: a static optimizer using the global")
	fmt.Println("statistic would order the predicates wrongly for this region.")

	// Run the full query progressively and show how often the optimizer
	// reacted to the drifting selectivity.
	res, err := eng.Exec(q, progopt.ExecOptions{
		Mode:        progopt.ModeProgressive,
		Progressive: progopt.Progressive{Interval: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprogressive run: %.2f ms, %d rows, %d optimizations, %d reorders (%d reverted)\n",
		res.Millis, res.Qualifying, res.Stats.Optimizations, res.Stats.Reorders, res.Stats.Reverts)
	fmt.Printf("final selectivity estimate per position: %.3v\n", res.Stats.LastEstimate)
}
