// Command progopt-perfjson converts `go test -bench` output on stdin into
// the BENCH_perf.json artifact CI uploads per commit — the host-performance
// trajectory of the simulator's hot paths (schema progopt-perf/v6; v2 added
// the BenchmarkRunTopK sort row, v3 added the stored-table scan rows
// BenchmarkScanStored and BenchmarkScanCompressed, v4 added the traced-run
// row BenchmarkRunParallelTraced, v5 added the served-workload rows
// BenchmarkServeConcurrent4 and BenchmarkServeConcurrent8, v6 adds the
// join-graph rows BenchmarkRunJoinGraph2 and BenchmarkRunJoinGraph4 — all
// with an unchanged field layout, see DESIGN.md for the back-compat note;
// later additive fields: cpu, samples).
//
// Usage:
//
//	go test -run xxx -bench 'BenchmarkRun(TupleAtATime|Batch|Parallel|ParallelTraced|TopK|JoinGraph[24])$|BenchmarkScan(Stored|Compressed)$|BenchmarkServeConcurrent[48]$' \
//	    -benchmem -benchtime 3x -count 3 -cpu 1,4 . \
//	    | go run ./cmd/progopt-perfjson -out BENCH_perf.json \
//	        [-baseline BENCH_baseline.json -max-regress 10 -summary sum.md]
//
// Result lines repeating the same benchmark (from -count) are aggregated to
// one row per (name, cpu) holding the median of every numeric column — the
// artifact records medians, not single samples. The -cpu GOMAXPROCS suffix
// becomes the row's cpu field, so `-cpu 1,4` yields two rows per benchmark.
//
// With -baseline, the freshly built artifact is compared row-by-row against
// a previously committed one: the run fails (exit 1) when any tracked
// median ns/op regresses by more than -max-regress percent, or when any
// sim_cycles metric differs at all — the simulated work is deterministic,
// so host-independent counters must match bit for bit while wall-clock gets
// a noise allowance. The comparison table (benchstat-style old/new/delta)
// goes to stdout and, with -summary, to a markdown file for the CI job
// summary.
//
// Only benchmark result lines are consumed; everything else (goos/pkg
// headers, PASS/ok trailers) is ignored, and a raw line is preserved in
// the artifact for forensics.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Schema is the artifact format identifier. v2 is v1 plus the sort
// benchmark row (BenchmarkRunTopK); v3 is v2 plus the stored-table scan
// rows (BenchmarkScanStored, BenchmarkScanCompressed); v4 is v3 plus the
// traced-run row (BenchmarkRunParallelTraced, whose sim_cycles must equal
// BenchmarkRunParallel's — tracing is a pure observer); v5 is v4 plus the
// served-workload rows (BenchmarkServeConcurrent4/8, whose sim_cycles — the
// workload makespan — must be identical at every cpu: host concurrency
// never touches the simulation); v6 is v5 plus the join-graph execution
// rows (BenchmarkRunJoinGraph2/4, ModeFixed over the greedy order). The
// per-bench field layout is unchanged throughout, so older consumers can
// read newer documents by ignoring the version. The cpu and samples fields
// are additive and omitted when absent.
const Schema = "progopt-perf/v6"

// Bench is one benchmark result row (the median across -count repeats).
type Bench struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Cpu is the GOMAXPROCS the row ran at (the -N suffix; 1 when absent).
	Cpu int `json:"cpu"`
	// Iterations is b.N of the median sample.
	Iterations int64 `json:"iterations"`
	// NsPerOp is host wall-clock per operation (median across samples).
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present when -benchmem was set.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries every custom b.ReportMetric unit (e.g. sim_cycles).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Samples is how many result lines were aggregated (omitted when 1).
	Samples int `json:"samples,omitempty"`
	// Raw is one verbatim result line of the group.
	Raw string `json:"raw"`
}

// Artifact is the whole BENCH_perf.json document.
type Artifact struct {
	Schema  string  `json:"schema"`
	Benches []Bench `json:"benches"`
}

func main() {
	out := flag.String("out", "BENCH_perf.json", "output path")
	baseline := flag.String("baseline", "", "baseline artifact to compare against (empty = no gate)")
	maxRegress := flag.Float64("max-regress", 10, "max tolerated median ns/op regression, percent")
	summary := flag.String("summary", "", "write the comparison table as markdown to this path")
	flag.Parse()

	art := Artifact{Schema: Schema}
	var samples []Bench
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if b, ok := parseBenchLine(sc.Text()); ok {
			samples = append(samples, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	art.Benches = aggregate(samples)
	if len(art.Benches) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benches)\n", *out, len(art.Benches))

	if *baseline != "" {
		ok, table := compare(loadArtifact(*baseline), art, *maxRegress)
		fmt.Print(table)
		if *summary != "" {
			if err := os.WriteFile(*summary, []byte(table), 0o644); err != nil {
				fatal(err)
			}
		}
		if !ok {
			fatal(fmt.Errorf("performance gate failed (max regression %.0f%%, sim_cycles exact)", *maxRegress))
		}
	}
}

// parseBenchLine decodes one `BenchmarkName  N  v unit  v unit ...` row.
func parseBenchLine(line string) (Bench, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Bench{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	name := fields[0]
	cpu := 1
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name, cpu = name[:i], n // split off the GOMAXPROCS suffix
		}
	}
	b := Bench{Name: name, Cpu: cpu, Iterations: iters, Raw: line}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = ptr(v)
		case "allocs/op":
			b.AllocsPerOp = ptr(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}

// aggregate folds repeated (name, cpu) samples — `-count N` runs — into one
// row holding the median of every numeric column, in first-seen order.
func aggregate(samples []Bench) []Bench {
	type key struct {
		name string
		cpu  int
	}
	groups := map[key][]Bench{}
	var order []key
	for _, s := range samples {
		k := key{s.Name, s.Cpu}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], s)
	}
	out := make([]Bench, 0, len(order))
	for _, k := range order {
		g := groups[k]
		b := g[0]
		if len(g) > 1 {
			b.Samples = len(g)
			b.NsPerOp = median(g, func(s Bench) (float64, bool) { return s.NsPerOp, true })
			b.BytesPerOp = medianPtr(g, func(s Bench) *float64 { return s.BytesPerOp })
			b.AllocsPerOp = medianPtr(g, func(s Bench) *float64 { return s.AllocsPerOp })
			units := map[string]bool{}
			for _, s := range g {
				for u := range s.Metrics {
					units[u] = true
				}
			}
			if len(units) > 0 {
				b.Metrics = map[string]float64{}
				for u := range units {
					b.Metrics[u] = median(g, func(s Bench) (float64, bool) { v, ok := s.Metrics[u]; return v, ok })
				}
			}
		}
		out = append(out, b)
	}
	return out
}

// median of a column across samples (lower-middle for even counts, so the
// value always comes from a real sample — sim_cycles stays exact).
func median(g []Bench, col func(Bench) (float64, bool)) float64 {
	var vals []float64
	for _, s := range g {
		if v, ok := col(s); ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	return vals[(len(vals)-1)/2]
}

func medianPtr(g []Bench, col func(Bench) *float64) *float64 {
	any := false
	m := median(g, func(s Bench) (float64, bool) {
		p := col(s)
		if p == nil {
			return 0, false
		}
		any = true
		return *p, true
	})
	if !any {
		return nil
	}
	return ptr(m)
}

// compare gates the new artifact against the baseline: every baseline row
// present in the new artifact must hold its median ns/op within maxRegress
// percent and reproduce sim_cycles exactly. Returns pass/fail and a
// benchstat-style markdown table.
func compare(old, cur Artifact, maxRegress float64) (bool, string) {
	find := func(a Artifact, name string, cpu int) *Bench {
		for i := range a.Benches {
			if a.Benches[i].Name == name && a.Benches[i].Cpu == cpu {
				return &a.Benches[i]
			}
		}
		return nil
	}
	ok := true
	var b strings.Builder
	b.WriteString("### Host-performance gate vs baseline\n\n")
	b.WriteString("| benchmark | cpu | old ns/op | new ns/op | delta | sim_cycles | status |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, o := range old.Benches {
		n := find(cur, o.Name, o.Cpu)
		if n == nil {
			ok = false
			fmt.Fprintf(&b, "| %s | %d | %.0f | — | — | — | MISSING |\n", o.Name, o.Cpu, o.NsPerOp)
			continue
		}
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		cyc := "n/a"
		status := "ok"
		if oc, hasOld := o.Metrics["sim_cycles"]; hasOld {
			if nc, hasNew := n.Metrics["sim_cycles"]; hasNew && nc == oc {
				cyc = "exact"
			} else {
				cyc = fmt.Sprintf("DIVERGED %.0f → %.0f", oc, n.Metrics["sim_cycles"])
				status = "FAIL"
				ok = false
			}
		}
		if delta > maxRegress {
			status = "FAIL"
			ok = false
		}
		fmt.Fprintf(&b, "| %s | %d | %.0f | %.0f | %+.1f%% | %s | %s |\n",
			o.Name, o.Cpu, o.NsPerOp, n.NsPerOp, delta, cyc, status)
	}
	return ok, b.String()
}

func loadArtifact(path string) Artifact {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if !strings.HasPrefix(a.Schema, "progopt-perf/") {
		fatal(fmt.Errorf("%s: unexpected schema %q", path, a.Schema))
	}
	return a
}

func ptr(v float64) *float64 { return &v }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "progopt-perfjson:", err)
	os.Exit(1)
}
