package core

import (
	"math"
	"testing"

	cachemodel "progopt/internal/costmodel/cache"
	"progopt/internal/costmodel/markov"
	"progopt/internal/costmodel/peo"
)

// syntheticSample produces the exact counter values the forward model
// predicts for known selectivities — the estimator must recover selectivities
// close to the truth from them (model inversion round trip).
func syntheticSample(t *testing.T, sels []float64, n int) (CounterSample, EstimatorConfig) {
	t.Helper()
	widths := make([]int, len(sels))
	for i := range widths {
		widths[i] = 8
	}
	cfg := EstimatorConfig{
		Widths:    widths,
		AggWidths: []int{8},
		Geometry:  cachemodel.MustGeometry(64, 16384),
		Chain:     markov.Paper(),
	}
	params := peo.Params{
		N: n, Widths: widths, AggWidths: cfg.AggWidths,
		Geometry: cfg.Geometry, Chain: cfg.Chain,
	}
	est, err := peo.Counters(params, sels)
	if err != nil {
		t.Fatal(err)
	}
	return CounterSample{
		N:          float64(n),
		BNT:        est.BNT,
		MPTaken:    est.MPTaken,
		MPNotTaken: est.MPNotTaken,
		L3:         est.L3,
		Qualifying: est.Qualifying,
	}, cfg
}

func TestEstimateSinglePredicateExact(t *testing.T) {
	s, cfg := syntheticSample(t, []float64{0.37}, 100000)
	est, err := EstimateSelectivities(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Sels[0]-0.37) > 1e-9 {
		t.Errorf("single-predicate estimate %v, want exact 0.37", est.Sels[0])
	}
}

func TestEstimateTwoPredicatesRoundTrip(t *testing.T) {
	// The paper's Figure 8 argument: two predicates with distinct counter
	// signatures are recoverable. Check order sensitivity explicitly:
	// (0.4, 0.2) vs (0.2, 0.4) differ in BNT, so both recover correctly.
	for _, truth := range [][]float64{{0.4, 0.2}, {0.2, 0.4}, {0.7, 0.5}, {0.1, 0.9}} {
		s, cfg := syntheticSample(t, truth, 200000)
		est, err := EstimateSelectivities(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range truth {
			if math.Abs(est.Sels[i]-truth[i]) > 0.05 {
				t.Errorf("truth %v: estimated %v (err at %d: %v)", truth, est.Sels, i, est.Sels[i]-truth[i])
				break
			}
		}
	}
}

func TestEstimateFourPredicatesRecoversOrdering(t *testing.T) {
	// With more predicates than counters the system is under-determined
	// (§4.3); the estimator cannot always pin exact values, but it must
	// recover the *ranking*, which is all the reorder step needs.
	truth := []float64{0.8, 0.3, 0.6, 0.1}
	s, cfg := syntheticSample(t, truth, 500000)
	est, err := EstimateSelectivities(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := AscendingOrder(truth)
	gotOrder := AscendingOrder(est.Sels)
	// Compare the top choice (most selective predicate) — the decision the
	// optimizer acts on most strongly.
	if gotOrder[0] != wantOrder[0] {
		t.Errorf("most selective predicate: estimated position %d, want %d (sels %v vs truth %v)",
			gotOrder[0], wantOrder[0], est.Sels, truth)
	}
	// Estimated products must satisfy the exact constraints.
	if math.Abs(est.Products[len(est.Products)-1]-s.Qualifying/s.N) > 0.01 {
		t.Errorf("final product %v, want output fraction %v",
			est.Products[len(est.Products)-1], s.Qualifying/s.N)
	}
}

func TestEstimateRespectsStartBudget(t *testing.T) {
	truth := []float64{0.5, 0.5, 0.5}
	s, cfg := syntheticSample(t, truth, 100000)
	cfg.MaxStarts = 2
	est, err := EstimateSelectivities(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.Starts > 2 {
		t.Errorf("used %d starts, budget 2", est.Starts)
	}
	if est.NMEvaluations == 0 {
		t.Error("no evaluations recorded")
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := EstimateSelectivities(CounterSample{N: 100}, EstimatorConfig{}); err == nil {
		t.Error("no widths accepted")
	}
	if _, err := EstimateSelectivities(CounterSample{N: 0}, EstimatorConfig{Widths: []int{8}}); err == nil {
		t.Error("zero sample size accepted")
	}
}

func TestEstimateDegenerateAllPass(t *testing.T) {
	s, cfg := syntheticSample(t, []float64{1, 1}, 50000)
	est, err := EstimateSelectivities(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, sl := range est.Sels {
		if sl < 0.95 {
			t.Errorf("all-pass predicate %d estimated at %v", i, sl)
		}
	}
}

func TestEstimateDegenerateFirstKillsAll(t *testing.T) {
	s, cfg := syntheticSample(t, []float64{0, 0.5}, 50000)
	est, err := EstimateSelectivities(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.Sels[0] > 0.05 {
		t.Errorf("first predicate estimated at %v, want ~0", est.Sels[0])
	}
}

// TestEstimateMultiStartEscapesLocalOptimum pins the §4.3 motivation: for a
// skewed truth whose counter surface traps Nelder-Mead near the even-split
// null hypothesis, the start-point sequence recovers a far better estimate
// than a single start.
func TestEstimateMultiStartEscapesLocalOptimum(t *testing.T) {
	truth := []float64{1, 0.02, 1, 0.9}
	s, cfg := syntheticSample(t, truth, 1<<20)
	meanErr := func(starts int) float64 {
		c := cfg
		c.MaxStarts = starts
		est, err := EstimateSelectivities(s, c)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := range truth {
			sum += math.Abs(est.Sels[i] - truth[i])
		}
		return sum / float64(len(truth))
	}
	single := meanErr(1)
	multi := meanErr(8)
	if single < 0.2 {
		t.Skipf("single start solved this instance (err %v); surface changed", single)
	}
	if multi > single/3 {
		t.Errorf("multi-start err %v not ≪ single-start err %v", multi, single)
	}
}

func TestAscendingOrder(t *testing.T) {
	got := AscendingOrder([]float64{0.9, 0.1, 0.5})
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendingOrder = %v, want %v", got, want)
		}
	}
	// Stability on ties: original order preserved.
	got = AscendingOrder([]float64{0.5, 0.5, 0.1})
	if got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Errorf("tie handling = %v, want [2 0 1]", got)
	}
	if len(AscendingOrder(nil)) != 0 {
		t.Error("nil input should give empty order")
	}
}

func TestSampleFromPMUClamps(t *testing.T) {
	var d [18]uint64 // pmu.Sample is an array; build via the typed path instead
	_ = d
}
