package progopt

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"progopt/internal/exec"
	"progopt/internal/hw/cache"
	"progopt/internal/service"
	"progopt/internal/trace"
)

// The host-concurrency acceptance criterion: a scheduling round that executes
// its queries' segments concurrently on the host is bit-identical — per-query
// results, simulated cycles, every PMU counter, trace bytes, Prometheus
// metrics — to the serial-round service (ServerConfig.SerialRounds), across
// Workers {1,4} × GOMAXPROCS {1,4} × the three exec modes × plain/stored/
// traced variants, with waits racing on goroutines.

// serveMatrixObs is everything one served workload reports that must match
// the serial oracle bit for bit.
type serveMatrixObs struct {
	Results []ExecResult
	Stats   ServerStats
	Metrics string
	Trace   string
}

// runServeMatrix serves a fixed eight-query trace — all three exec modes, a
// join, a sorted query, a grouped query, recurring fingerprints, staggered
// arrivals — and waits from racing goroutines.
func runServeMatrix(t *testing.T, workers int, variant string, serial bool) serveMatrixObs {
	t.Helper()
	cfg := Config{VectorSize: 512, Workers: workers}
	switch variant {
	case "stored":
		cfg.Storage = &StorageConfig{LatencyCycles: 500, BytesPerCycle: 16}
	case "traced":
		cfg.Trace = &TraceOptions{}
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.GenerateTPCH(48*512, 31, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(e, ServerConfig{MaxActive: 3, SerialRounds: serial})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	adaptive := Progressive{Interval: 5}
	subs := []struct {
		plan *Plan
		opts ExecOptions
	}{
		{convergentPlan(d, false), ExecOptions{Mode: ModeFixed}},
		{convergentPlan(d, true), ExecOptions{Mode: ModeProgressive, Progressive: adaptive}},
		{convergentPlan(d, false), ExecOptions{Mode: ModeMicroAdaptive, Progressive: adaptive}},
		{convergentPlan(d, false).OrderBy("l_extendedprice", Desc).Limit(8),
			ExecOptions{Mode: ModeProgressive, Progressive: adaptive}},
		{Scan("lineitem").
			Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.8))).
			GroupBy("l_quantity", "l_extendedprice"), ExecOptions{Mode: ModeFixed}},
		{convergentPlan(d, true), ExecOptions{Mode: ModeProgressive, Progressive: adaptive}},
		{convergentPlan(d, false), ExecOptions{Mode: ModeMicroAdaptive, Progressive: adaptive}},
		{convergentPlan(d, true), ExecOptions{Mode: ModeFixed}},
	}
	tks := make([]*Ticket, len(subs))
	for i, sub := range subs {
		tk, err := srv.SubmitAt(d, sub.plan, sub.opts, uint64(i)*40_000)
		if err != nil {
			t.Fatal(err)
		}
		tks[i] = tk
	}
	obs := serveMatrixObs{Results: make([]ExecResult, len(tks))}
	errs := make([]error, len(tks))
	var wg sync.WaitGroup
	for i, tk := range tks {
		wg.Add(1)
		go func(i int, tk *Ticket) {
			defer wg.Done()
			obs.Results[i], errs[i] = tk.Wait()
		}(i, tk)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		// Fingerprints hash the data-set generation, a process-global counter,
		// so they are unique per run by design; everything else must match.
		obs.Results[i].Served.Fingerprint = ""
	}
	obs.Stats = srv.Stats()
	var met bytes.Buffer
	if err := srv.WriteMetrics(&met); err != nil {
		t.Fatal(err)
	}
	obs.Metrics = met.String()
	if variant == "traced" {
		var tr bytes.Buffer
		if err := e.Trace().WriteChrome(&tr); err != nil {
			t.Fatal(err)
		}
		obs.Trace = tr.String()
	}
	return obs
}

// TestServeConcurrentBitIdentical pins the tentpole: the concurrent-round
// scheduler reproduces the serial-round oracle bit for bit over the full
// matrix. The oracle runs at GOMAXPROCS=1; the concurrent runs at 1 and 4.
func TestServeConcurrentBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, variant := range []string{"plain", "stored", "traced"} {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, variant), func(t *testing.T) {
				prev := runtime.GOMAXPROCS(1)
				ref := runServeMatrix(t, workers, variant, true)
				runtime.GOMAXPROCS(prev)
				for _, gmp := range []int{1, 4} {
					t.Run(fmt.Sprintf("gomaxprocs=%d", gmp), func(t *testing.T) {
						defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gmp))
						got := runServeMatrix(t, workers, variant, false)
						for i := range ref.Results {
							if !reflect.DeepEqual(ref.Results[i], got.Results[i]) {
								t.Errorf("query %d diverges from serial oracle:\n serial     %+v\n concurrent %+v",
									i, ref.Results[i], got.Results[i])
							}
						}
						if ref.Stats != got.Stats {
							t.Errorf("server stats diverge:\n serial     %+v\n concurrent %+v", ref.Stats, got.Stats)
						}
						if ref.Metrics != got.Metrics {
							t.Errorf("metrics exposition diverges:\n serial:\n%s\n concurrent:\n%s", ref.Metrics, got.Metrics)
						}
						if ref.Trace != got.Trace {
							t.Errorf("trace bytes diverge: %d vs %d bytes", len(ref.Trace), len(got.Trace))
						}
					})
				}
			})
		}
	}
}

// sharedStorObs is one run of the shared-tier workload: per-query outcomes,
// the shared view's counters and residency, and its exact fetch/evict
// sequence.
type sharedStorObs struct {
	Outcomes []service.Outcome
	Counters cache.StorageCounters
	Resident uint64
	Events   []string
}

// runSharedStorageTrace serves three queries whose tier views share one
// cache.StorageSet under an eviction-forcing budget: query j exposes the
// shared set at core slot j (and private sets elsewhere), so rounds where two
// queries both hold their shared slot exercise the scheduler's serial
// fallback, while single-toucher rounds stay host-concurrent.
func runSharedStorageTrace(t *testing.T) sharedStorObs {
	t.Helper()
	e, err := New(Config{VectorSize: 512, Workers: 4, Storage: &StorageConfig{
		BlockRows: 2048, LatencyCycles: 300, BytesPerCycle: 8, ResidentBytes: 8 << 10,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.GenerateTPCH(30000, 21, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(d, storedQ6Plan())
	if err != nil {
		t.Fatal(err)
	}
	shared, err := q.storage.plan.NewSet()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(e.cpu.Profile(), e.workers, e.eng.VectorSize(), e.scalar, service.Config{MaxActive: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// Trace the pool cores: SetStorage wires each attached tier view's
	// fetch/evict stream to the attaching core's track (the engine owns the
	// set's observer slot), so the tracks record the exact per-core tier event
	// sequence with block ids and cycle stamps.
	rec := trace.New()
	svcTrack := rec.NewTrack("service")
	coreTracks := make([]*trace.Track, e.workers)
	for i := range coreTracks {
		coreTracks[i] = rec.NewTrack(fmt.Sprintf("pool %d", i))
	}
	svc.SetTrace(svcTrack, coreTracks)
	modes := []service.Mode{service.ModeFixed, service.ModeProgressive, service.ModeFixed}
	tks := make([]*service.Ticket, len(modes))
	for j, mode := range modes {
		views := make([]*exec.StorageScan, e.workers)
		for i := range views {
			set := shared
			if i != j {
				if set, err = q.storage.plan.NewSet(); err != nil {
					t.Fatal(err)
				}
			}
			views[i] = &exec.StorageScan{Skip: q.storage.plan.Skip, Set: set}
		}
		req := service.Request{
			Query:       q.q,
			Mode:        mode,
			Arrival:     uint64(j) * 30_000,
			Fingerprint: service.Compute("lineitem", d.gen, []string{fmt.Sprintf("shared-stor-%d", j)}),
			Storage:     views,
		}
		if mode == service.ModeProgressive {
			req.Opt = Progressive{Interval: 5}.coreOptions()
		}
		tk, err := svc.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		tks[j] = tk
	}
	obs := sharedStorObs{Outcomes: make([]service.Outcome, len(tks))}
	errs := make([]error, len(tks))
	var wg sync.WaitGroup
	for j, tk := range tks {
		wg.Add(1)
		go func(j int, tk *service.Ticket) {
			defer wg.Done()
			obs.Outcomes[j], errs[j] = tk.Wait()
		}(j, tk)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", j, err)
		}
	}
	obs.Counters = shared.Counters()
	obs.Resident = shared.ResidentBytes()
	for ti, trk := range coreTracks {
		for _, ev := range trk.Events() {
			if ev.Name == "tier-fetch" || ev.Name == "tier-evict" {
				obs.Events = append(obs.Events,
					fmt.Sprintf("%d:%s:%v@%d", ti, ev.Name, ev.Args[0].Val, ev.Start))
			}
		}
	}
	return obs
}

// TestServeSharedStorageDeterministic pins storage-tier determinism under
// concurrent rounds: a tier view shared across three served queries
// reproduces identical counters, stall debt, residency, and the exact
// fetch/eviction sequence on repeated runs and across GOMAXPROCS {1,4}.
func TestServeSharedStorageDeterministic(t *testing.T) {
	a := runSharedStorageTrace(t)
	b := runSharedStorageTrace(t)
	prev := runtime.GOMAXPROCS(1)
	c := runSharedStorageTrace(t)
	runtime.GOMAXPROCS(4)
	e := runSharedStorageTrace(t)
	runtime.GOMAXPROCS(prev)
	if a.Counters.BlockFetches == 0 || a.Counters.StallCycles == 0 {
		t.Fatalf("shared tier view saw no traffic: %+v", a.Counters)
	}
	if a.Counters.Evictions == 0 || len(a.Events) == 0 {
		t.Fatalf("budget forced no evictions (%d events); the sequence check is vacuous", len(a.Events))
	}
	for name, got := range map[string]sharedStorObs{"repeat": b, "gomaxprocs=1": c, "gomaxprocs=4": e} {
		if !reflect.DeepEqual(a, got) {
			t.Errorf("%s run diverges:\n ref %+v\n got %+v", name, a, got)
		}
	}
}

// TestServeStatsNonBlockingMidRun pins the published-at-barrier regression:
// Ticket.WarmStarted and Server.Stats called from a second goroutine must not
// block behind an in-flight scheduling round, and Stats must observe the
// makespan advancing while the workload is still running (before this PR the
// driving waiter held the server mutex for the whole workload, so a mid-run
// Stats call could only ever see the pre-run or final makespan).
func TestServeStatsNonBlockingMidRun(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	e, d := serveEngine(t, 4)
	defer e.Close()
	srv, err := NewServer(e, ServerConfig{MaxActive: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tks := make([]*Ticket, 6)
	for i := range tks {
		mode := ExecOptions{Mode: ModeFixed}
		if i%2 == 1 {
			mode = ExecOptions{Mode: ModeProgressive, Progressive: Progressive{Interval: 5}}
		}
		tk, err := srv.SubmitAt(d, convergentPlan(d, i%2 == 1), mode, uint64(i)*40_000)
		if err != nil {
			t.Fatal(err)
		}
		tks[i] = tk
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, tk := range tks {
			if _, err := tk.Wait(); err != nil {
				t.Errorf("wait: %v", err)
				return
			}
		}
	}()
	var midrun []uint64
poll:
	for {
		select {
		case <-done:
			break poll
		default:
		}
		st := srv.Stats()
		tks[3].t.WarmStarted() // must not block either
		if n := len(midrun); n == 0 || midrun[n-1] != st.MakespanCycles {
			midrun = append(midrun, st.MakespanCycles)
		}
		runtime.Gosched()
	}
	final := srv.Stats().MakespanCycles
	if final == 0 {
		t.Fatal("workload drove the clock nowhere")
	}
	saw := 0
	for _, v := range midrun {
		if v > 0 && v < final {
			saw++
		}
	}
	if saw == 0 {
		t.Errorf("no mid-run Stats call observed an intermediate makespan (%d polls, final %d); reads are blocking behind the round", len(midrun), final)
	}
}

// TestServeSteadyStateAllocs pins the per-round allocation elimination: after
// warm-up, a served query's host allocations must not grow with its round
// count (the pre-PR scheduler allocated an active-set snapshot per round).
// AllocsPerRun measures at GOMAXPROCS=1, i.e. the inline round path.
func TestServeSteadyStateAllocs(t *testing.T) {
	measure := func(quantum int) float64 {
		e, err := New(Config{VectorSize: 512, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		d, err := e.GenerateTPCH(48*512, 31, OrderRandom)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(e, ServerConfig{QuantumVectors: quantum})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		run := func() {
			tk, err := srv.Submit(d, convergentPlan(d, false), ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tk.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the plan cache, scratch freelist, and exec wave scratch
		run()
		return testing.AllocsPerRun(5, run)
	}
	many := measure(1)   // ~48 scheduling rounds per query
	few := measure(1000) // one round per query
	if delta := many - few; delta > 16 {
		t.Errorf("allocs grow with round count: %.1f at quantum=1 vs %.1f at quantum=1000 (delta %.1f)", many, few, delta)
	}
	if many > 300 {
		t.Errorf("served query allocates %.1f times at steady state; budget 300", many)
	}
}
