package progopt

import (
	"math"
	"testing"
)

func TestRunGroupByFacade(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(20000, 14, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.BuildScan(d, []Predicate{
		{Column: "l_discount", Op: CmpGE, Float: 0.05},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	rows, res, err := e.RunGroupBy(d, q, "l_quantity", "l_extendedprice")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) > 50 {
		t.Fatalf("%d groups for a 1..50 quantity domain", len(rows))
	}
	var total int64
	var sum float64
	prev := int64(-1)
	for _, r := range rows {
		if r.Key <= prev {
			t.Fatal("groups not sorted")
		}
		prev = r.Key
		if r.Key < 1 || r.Key > 50 {
			t.Fatalf("group key %d outside quantity domain", r.Key)
		}
		total += r.Count
		sum += r.Sum
	}
	if total != res.Qualifying {
		t.Errorf("group counts sum to %d, run qualified %d", total, res.Qualifying)
	}
	// Cross-check with the plain aggregate over the same filter.
	q2, err := e.BuildScan(d, []Predicate{
		{Column: "l_discount", Op: CmpGE, Float: 0.05},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.Run(q2)
	if err != nil {
		t.Fatal(err)
	}
	if total != plain.Qualifying {
		t.Errorf("grouped cardinality %d != plain %d", total, plain.Qualifying)
	}
	if math.IsNaN(sum) || sum <= 0 {
		t.Error("degenerate grouped sum")
	}

	if _, _, err := e.RunGroupBy(d, q, "nope", "l_extendedprice"); err == nil {
		t.Error("unknown group column accepted")
	}
}
