package exec

import (
	"fmt"

	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
)

// Parallel executes queries with morsel-driven parallelism (Leis et al.,
// "Morsel-driven parallelism", SIGMOD 2014) across N simulated cores. The
// driving table is split into morsels of one vector each and the scheduler
// dispenses the next morsel to whichever core is idle first in *simulated*
// time (the core with the smallest cycle clock) — a discrete-event
// simulation of the work-stealing queue, so cores that drew expensive
// morsels automatically receive fewer of them, exactly the self-balancing
// property morsel-driven execution is built for.
//
// All cores share one synthetic physical address space (columns are bound
// once, by whichever CPU allocated them) but simulate private cache
// hierarchies, branch predictors, and PMUs — the private-L1/L2 topology of
// the paper's evaluation machine. Because scheduling runs on simulated
// clocks rather than host threads, everything is deterministic: Qualifying
// and Sum are bit-identical to a serial run (the aggregate is reduced in
// global vector order), and cycle counts and PMU samples reproduce exactly
// across runs and host machines.
type Parallel struct {
	workers    []*Engine
	vectorSize int
	// Per-block scratch, reused across blocks: the discrete-event scheduler
	// serializes all simulated cores in host time, so one set of buffers
	// serves every RunBlock/RunBlockSubset call. WorkerCycles is NOT part of
	// this scratch — it escapes in BlockResult and stays per-call.
	blockCores    []int
	blockClocks   []uint64
	sampleScratch []pmu.Sample
}

// NewParallel builds a parallel executor with the given number of worker
// cores, each a fresh CPU of the given profile.
func NewParallel(prof cpu.Profile, workers, vectorSize int) (*Parallel, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("exec: non-positive worker count %d", workers)
	}
	if vectorSize <= 0 {
		return nil, fmt.Errorf("exec: non-positive vector size %d", vectorSize)
	}
	ws := make([]*Engine, workers)
	for i := range ws {
		c, err := cpu.New(prof)
		if err != nil {
			return nil, err
		}
		e, err := NewEngine(c, vectorSize)
		if err != nil {
			return nil, err
		}
		ws[i] = e
	}
	return &Parallel{workers: ws, vectorSize: vectorSize}, nil
}

// Workers returns the number of simulated cores.
func (p *Parallel) Workers() int { return len(p.workers) }

// Engines exposes the per-core engines (shared slice; do not mutate).
func (p *Parallel) Engines() []*Engine { return p.workers }

// VectorSize returns tuples per vector (= per morsel).
func (p *Parallel) VectorSize() int { return p.vectorSize }

// SetScalar switches every worker between batch-kernel and tuple-at-a-time
// execution.
func (p *Parallel) SetScalar(scalar bool) {
	for _, w := range p.workers {
		w.SetScalar(scalar)
	}
}

// Cold flushes caches and resets predictors on every core.
func (p *Parallel) Cold() {
	for _, w := range p.workers {
		w.CPU().FlushCaches()
		w.CPU().ResetPredictor()
	}
}

// NumVectors returns how many vectors (morsels) cover the query's table.
func (p *Parallel) NumVectors(q *Query) int {
	return (q.Table.NumRows() + p.vectorSize - 1) / p.vectorSize
}

// BindQuery binds the query through worker 0's address space and starts all
// cores cold. When the query was already bound by an external engine sharing
// the address-space convention (the usual facade setup), binding is a no-op
// and only the cold start applies.
func (p *Parallel) BindQuery(q *Query) error {
	if err := p.workers[0].BindQuery(q); err != nil {
		return err
	}
	p.Cold()
	return nil
}

// BlockResult reports one morsel block execution.
type BlockResult struct {
	// Qualifying and Sum are the block's query results, reduced in vector
	// order (bit-identical to a serial run).
	Qualifying int64
	Sum        float64
	// Vectors is the number of morsels executed.
	Vectors int
	// MaxCycles is the block makespan: the largest per-core cycle delta.
	MaxCycles uint64
	// WorkerCycles are the per-core cycle deltas.
	WorkerCycles []uint64
	// Counters is the PMU delta summed across cores — the aggregate a
	// multi-core deployment reads by sampling every core's PMU.
	Counters pmu.Sample
}

// RunBlock executes vectors [vecLo, vecHi) of the query morsel-driven: each
// vector is one morsel, claimed by the core whose simulated clock is
// furthest behind (ties go to the lowest core id).
func (p *Parallel) RunBlock(q *Query, vecLo, vecHi int) (BlockResult, error) {
	return p.RunBlockImpl(q, vecLo, vecHi, ImplBranching)
}

// RunBlockImpl is RunBlock with an explicit scan implementation: the
// micro-adaptive driver runs whole morsel blocks branch-free when the merged
// counters say predication is cheaper on every core.
func (p *Parallel) RunBlockImpl(q *Query, vecLo, vecHi int, impl ScanImpl) (BlockResult, error) {
	return p.RunBlockImplSum(q, vecLo, vecHi, impl, nil)
}

// RunBlockImplSum is RunBlockImpl with RunBlockSubset's external aggregate
// accumulator: a driver that splits one scan into many blocks passes the
// same *float64 to every call and gets the exact per-vector addition order
// (and therefore bit pattern) of an unsplit serial run, regardless of block
// boundaries.
func (p *Parallel) RunBlockImplSum(q *Query, vecLo, vecHi int, impl ScanImpl, sum *float64) (BlockResult, error) {
	if p.blockCores == nil {
		p.blockCores = make([]int, len(p.workers))
		for i := range p.blockCores {
			p.blockCores[i] = i
		}
		p.blockClocks = make([]uint64, len(p.workers))
	}
	for i := range p.blockClocks {
		p.blockClocks[i] = 0
	}
	return p.RunBlockSubset(q, vecLo, vecHi, p.blockCores, p.blockClocks, impl, sum)
}

// RunBlockSubset executes vectors [vecLo, vecHi) of the query morsel-driven
// on a dynamic subset of the pool's cores — the primitive the workload
// service partitions cores across concurrent queries with. cores lists the
// participating core ids in strictly ascending order; clocks[i] is the
// absolute simulated time core cores[i] is next free, continued from the
// caller's discrete-event state and updated in place. Each morsel goes to
// the subset core whose clock is smallest (ties to the lowest position), so
// a core that enters the block behind the others naturally backfills first —
// the same self-balancing rule RunBlock applies from an even start.
//
// The returned BlockResult reports WorkerCycles[i] as the busy cycles core
// cores[i] consumed in this call, MaxCycles as the block makespan measured
// from the earliest entry clock, and Counters as the subset's merged PMU
// deltas. With the full pool and zero entry clocks this is exactly
// RunBlockImpl.
//
// sum, when non-nil, receives the per-vector aggregate contributions in
// global vector order and BlockResult.Sum stays zero: a caller that splits
// one logical scan into many scheduling quanta accumulates into the same
// float across all of them, preserving the exact addition order (and
// therefore the bit pattern) of an unsplit run. With sum == nil the block's
// contribution is reduced into BlockResult.Sum, the dedicated drivers'
// per-block contract.
func (p *Parallel) RunBlockSubset(q *Query, vecLo, vecHi int, cores []int, clocks []uint64, impl ScanImpl, sum *float64) (BlockResult, error) {
	if err := q.Validate(); err != nil {
		return BlockResult{}, err
	}
	if len(cores) == 0 {
		return BlockResult{}, fmt.Errorf("exec: block needs at least one core")
	}
	if len(clocks) != len(cores) {
		return BlockResult{}, fmt.Errorf("exec: %d clocks for %d cores", len(clocks), len(cores))
	}
	for i, w := range cores {
		if w < 0 || w >= len(p.workers) {
			return BlockResult{}, fmt.Errorf("exec: core %d outside pool of %d", w, len(p.workers))
		}
		if i > 0 && w <= cores[i-1] {
			return BlockResult{}, fmt.Errorf("exec: core subset %v not strictly ascending", cores)
		}
	}
	n := q.Table.NumRows()
	numVec := (n + p.vectorSize - 1) / p.vectorSize
	if vecLo < 0 || vecHi > numVec || vecLo > vecHi {
		return BlockResult{}, fmt.Errorf("exec: block [%d,%d) outside %d vectors", vecLo, vecHi, numVec)
	}
	nw := len(cores)
	entryMin := clocks[0]
	for _, cl := range clocks[1:] {
		if cl < entryMin {
			entryMin = cl
		}
	}
	busy := make([]uint64, nw)
	if cap(p.sampleScratch) < nw {
		p.sampleScratch = make([]pmu.Sample, nw)
	}
	startSamples := p.sampleScratch[:nw]
	for i, w := range cores {
		startSamples[i] = p.workers[w].CPU().Sample()
	}
	var out BlockResult
	for v := vecLo; v < vecHi; v++ {
		i := 0
		for j := 1; j < nw; j++ {
			if clocks[j] < clocks[i] {
				i = j
			}
		}
		eng := p.workers[cores[i]]
		c := eng.CPU()
		c0 := c.Cycles()
		lo := v * p.vectorSize
		hi := lo + p.vectorSize
		if hi > n {
			hi = n
		}
		vr, err := eng.RunVectorImpl(q, lo, hi, impl)
		if err != nil {
			return BlockResult{}, err
		}
		d := c.Cycles() - c0
		clocks[i] += d
		busy[i] += d
		out.Qualifying += vr.Qualifying
		if sum != nil {
			*sum += vr.Sum
		} else {
			out.Sum += vr.Sum
		}
		out.Vectors++
	}
	out.WorkerCycles = busy
	if out.Vectors > 0 {
		for _, cl := range clocks {
			if cl-entryMin > out.MaxCycles {
				out.MaxCycles = cl - entryMin
			}
		}
	}
	for i, w := range cores {
		out.Counters = out.Counters.Add(p.workers[w].CPU().Sample().Sub(startSamples[i]))
	}
	return out, nil
}

// RunGroupBy executes the query's filters and aggregates survivors
// morsel-driven across all cores with per-core partial hash tables: worker w
// updates only gs[w] (its private table region, so hash-table maintenance
// hits its own cache hierarchy), and at the barrier after the scan core 0
// merges every other core's partial slots into its table, extending the
// makespan — the standard shared-nothing parallel aggregation plan.
//
// Group values are reduced in global row order regardless of which core ran
// which morsel, so Groups (keys, sums, counts) are bit-identical to a serial
// Engine.RunGroupBy and deterministic across worker counts.
func (p *Parallel) RunGroupBy(q *Query, gs []*GroupBy) (GroupResult, error) {
	if err := q.Validate(); err != nil {
		return GroupResult{}, err
	}
	nw := len(p.workers)
	if len(gs) != nw {
		return GroupResult{}, fmt.Errorf("exec: %d partial group tables for %d workers", len(gs), nw)
	}
	for w, g := range gs {
		if g == nil {
			return GroupResult{}, fmt.Errorf("exec: nil partial group table for worker %d", w)
		}
	}
	n := q.Table.NumRows()
	numVec := p.NumVectors(q)
	clocks := make([]uint64, nw)
	startSamples := make([]pmu.Sample, nw)
	for w, eng := range p.workers {
		startSamples[w] = eng.CPU().Sample()
	}
	acc := gs[0].accTable()
	// workerKeys tracks which keys each core's partial table holds, for the
	// merge phase (sorted for determinism). Count doubles as the presence
	// marker; sums stay zero.
	workerKeys := make([]*groupTable, nw)
	for w := range workerKeys {
		workerKeys[w] = gs[w].accTable()
	}
	var out GroupResult
	for v := 0; v < numVec; v++ {
		w := 0
		for i := 1; i < nw; i++ {
			if clocks[i] < clocks[w] {
				w = i
			}
		}
		eng := p.workers[w]
		c := eng.CPU()
		c0 := c.Cycles()
		lo := v * p.vectorSize
		hi := lo + p.vectorSize
		if hi > n {
			hi = n
		}
		sel, err := eng.GroupVector(q, gs[w], lo, hi)
		if err != nil {
			return GroupResult{}, err
		}
		clocks[w] += c.Cycles() - c0
		// Reduce in global vector order (the scheduler walks v ascending), so
		// per-key accumulation order is the global row order: identical float
		// association to a serial run for every worker count.
		for _, r := range sel {
			gs[w].apply(acc, int(r))
			workerKeys[w].at(gs[w].GroupCol.Int64At(int(r))).Count = 1
		}
		out.Qualifying += int64(len(sel))
		out.Vectors++
	}
	// Merge barrier: every core must finish scanning before core 0 folds the
	// partial tables, so the merge starts at the scan makespan (the slowest
	// core's clock) and extends it — not core 0's own scan clock.
	var scanMakespan uint64
	for _, cl := range clocks {
		if cl > scanMakespan {
			scanMakespan = cl
		}
	}
	// Core 0 folds every other core's partial slots into its table (one read
	// of the remote slot, one read-modify-write of its own).
	c0 := p.workers[0].CPU()
	mergeStart := c0.Cycles()
	for w := 1; w < nw; w++ {
		for _, k := range workerKeys[w].sortedKeys() {
			c0.Load(gs[w].slotAddr(k))
			c0.Load(gs[0].slotAddr(k))
			c0.Exec(groupMergeCostInstr)
		}
	}
	mergeCycles := c0.Cycles() - mergeStart

	for w, eng := range p.workers {
		out.Counters = out.Counters.Add(eng.CPU().Sample().Sub(startSamples[w]))
	}
	out.Groups = acc.groups()
	out.Cycles = scanMakespan + mergeCycles
	out.Millis = p.workers[0].CPU().MillisOf(out.Cycles)
	return out, nil
}

// Run executes the whole table morsel-driven under the query's fixed
// operator order. Result.Cycles is the makespan (the slowest core's cycle
// count) and Result.Counters the merged per-core PMU deltas.
func (p *Parallel) Run(q *Query) (Result, error) {
	br, err := p.RunBlock(q, 0, p.NumVectors(q))
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Qualifying: br.Qualifying,
		Sum:        br.Sum,
		Vectors:    br.Vectors,
		Cycles:     br.MaxCycles,
		Counters:   br.Counters,
	}
	out.Millis = p.workers[0].CPU().MillisOf(out.Cycles)
	return out, nil
}
