package core

import (
	"reflect"
	"testing"
)

// TestRankOrderUniformWeightsMatchesAscending: with equal weights the rank
// criterion must reduce exactly to ascending selectivity, including ties.
func TestRankOrderUniformWeightsMatchesAscending(t *testing.T) {
	cases := [][]float64{
		{0.9, 0.1, 0.5},
		{0.5, 0.5, 0.1},
		{1.0, 0.2, 1.0, 0.2},
		{0.0, 0.0, 0.0},
	}
	for _, sels := range cases {
		w := make([]float64, len(sels))
		for i := range w {
			w[i] = 1
		}
		if got, want := RankOrder(w, sels), AscendingOrder(sels); !reflect.DeepEqual(got, want) {
			t.Errorf("RankOrder(uniform, %v) = %v, want AscendingOrder %v", sels, got, want)
		}
	}
}

// TestRankOrderWeighted: a cheap predicate that keeps 58% belongs before an
// expensive 3-load probe that keeps 50% — selectivity ordering alone would
// swap them. The strongly filtering probe still goes first overall.
func TestRankOrderWeighted(t *testing.T) {
	weights := []float64{1, 3, 3} // predicate, orders probe, part probe
	sels := []float64{0.58, 0.05, 0.9}
	// ranks: 1/0.42=2.4, 3/0.95=3.2, 3/0.1=30.
	if got, want := RankOrder(weights, sels), []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("RankOrder = %v, want %v", got, want)
	}
	// Plain selectivity would hoist the expensive probe above the predicate.
	if asc := AscendingOrder(sels); asc[0] != 1 || asc[1] != 0 {
		t.Fatalf("fixture lost its point: AscendingOrder = %v", asc)
	}
}

// TestRankOrderSaturated: estimates at (or numerically above) selectivity 1
// must not divide by zero; saturated operators order by selectivity then
// position, deterministically.
func TestRankOrderSaturated(t *testing.T) {
	got := RankOrder([]float64{1, 1, 1}, []float64{1.0, 0.3, 1.0})
	if want := []int{1, 0, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("RankOrder saturated = %v, want %v", got, want)
	}
}
