package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var tr *Track
	tr.Span("x", 0, 10)
	tr.Instant("y", 5)
	if tr.Events() != nil || tr.Name() != "" || tr.Dropped() != 0 {
		t.Fatal("nil track must be inert")
	}
	var c *Counter
	var g *Gauge
	var s *Summary
	c.Inc()
	c.Add(3)
	g.Set(1)
	s.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || s.Quantile(0.5) != 0 || s.Count() != 0 {
		t.Fatal("nil metrics must be inert")
	}
	var m *Metrics
	if m.Counter("a", "") != nil || m.Gauge("b", "") != nil || m.Summary("c", "") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if err := m.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackRecording(t *testing.T) {
	r := New()
	a := r.NewTrack("core 0")
	b := r.NewTrack("optimizer")
	a.Span("vector", 100, 220, A("rows", 1024))
	a.Instant("fetch", 150, A("block", uint64(7)))
	b.Instant("reorder", 200, A("order", []int{2, 0, 1}), A("sels", []float64{0.1, 0.5, 0.9}))
	if r.NumTracks() != 2 || r.Events() != 3 {
		t.Fatalf("got %d tracks, %d events", r.NumTracks(), r.Events())
	}
	if got := a.Events()[0]; got.Name != "vector" || got.Start != 100 || got.End != 220 || got.Instant {
		t.Fatalf("bad span: %+v", got)
	}
	if got := a.Events()[1]; !got.Instant || got.Start != 150 {
		t.Fatalf("bad instant: %+v", got)
	}
	sum := r.SummarizeSince(nil)
	if len(sum) != 3 || sum[0].Name != "vector" || sum[0].Cycles != 120 || sum[0].Count != 1 {
		t.Fatalf("bad summary: %+v", sum)
	}
	marks := r.Marks()
	a.Span("vector", 220, 300)
	since := r.SummarizeSince(marks)
	if len(since) != 1 || since[0].Name != "vector" || since[0].Cycles != 80 {
		t.Fatalf("bad incremental summary: %+v", since)
	}
	r.Reset()
	if r.Events() != 0 || r.NumTracks() != 2 {
		t.Fatal("reset must clear events and keep tracks")
	}
}

func TestTrackLimit(t *testing.T) {
	r := New()
	r.SetMaxEventsPerTrack(2)
	tr := r.NewTrack("tiny")
	for i := 0; i < 5; i++ {
		tr.Instant("e", uint64(i))
	}
	if len(tr.Events()) != 2 || tr.Dropped() != 3 {
		t.Fatalf("got %d events, %d dropped", len(tr.Events()), tr.Dropped())
	}
	var out bytes.Buffer
	if err := r.WriteChrome(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "events_dropped") {
		t.Fatal("truncation must be visible in the export")
	}
}

// TestWriteChrome checks the export is valid trace-event JSON with the fixed
// track layout and byte-identical across repeated writes.
func TestWriteChrome(t *testing.T) {
	r := New()
	core := r.NewTrack("core 0")
	opt := r.NewTrack("optimizer")
	core.Span("vector", 1000, 2500, A("rows", 512), A("note", `quoted "name"`))
	opt.Instant("reorder", 1800, A("order", []int{1, 0}), A("ok", true), A("gain", 1.25))

	var w1, w2 bytes.Buffer
	if err := r.WriteChrome(&w1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChrome(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("repeated exports must be byte-identical")
	}

	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(w1.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// Two thread_name metadata events, then the two recorded events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta["ph"] != "M" || meta["name"] != "thread_name" {
		t.Fatalf("first event must be track metadata, got %v", meta)
	}
	span := doc.TraceEvents[2]
	if span["ph"] != "X" || span["ts"].(float64) != 1.0 || span["dur"].(float64) != 1.5 {
		t.Fatalf("bad span event: %v", span)
	}
	inst := doc.TraceEvents[3]
	if inst["ph"] != "i" || inst["ts"].(float64) != 1.8 {
		t.Fatalf("bad instant event: %v", inst)
	}
	args := inst["args"].(map[string]any)
	if args["ok"] != true || args["gain"].(float64) != 1.25 {
		t.Fatalf("bad args: %v", args)
	}
}

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	served := m.Counter("progopt_queries_served_total", "queries completed")
	act := m.Gauge("progopt_peak_active_queries", "peak concurrently active queries")
	lat := m.Summary("progopt_sim_latency_ms", "simulated end-to-end latency")
	served.Inc()
	served.Add(2)
	act.Set(4)
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		lat.Observe(v)
	}
	if got := lat.Quantile(0.5); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := lat.Quantile(0.99); got != 10 {
		t.Fatalf("p99 = %v, want 10", got)
	}
	var out bytes.Buffer
	if err := m.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# TYPE progopt_queries_served_total counter",
		"progopt_queries_served_total 3",
		"# TYPE progopt_peak_active_queries gauge",
		"progopt_peak_active_queries 4",
		"# TYPE progopt_sim_latency_ms summary",
		`progopt_sim_latency_ms{quantile="0.5"} 5`,
		`progopt_sim_latency_ms{quantile="0.95"} 10`,
		"progopt_sim_latency_ms_sum 55",
		"progopt_sim_latency_ms_count 10",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Same name returns the same instrument.
	if m.Counter("progopt_queries_served_total", "").Value() != 3 {
		t.Fatal("re-registration must return the existing instrument")
	}
}
