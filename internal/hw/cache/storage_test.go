package cache

import (
	"math/rand"
	"testing"
)

func storCfg() StorageConfig {
	return StorageConfig{LatencyCycles: 1000, BytesPerCycle: 8, BudgetBytes: 0}
}

func TestStorageFetchPricing(t *testing.T) {
	s := NewStorageSet(storCfg())
	b := s.AddBlock(100) // ceil(100/8) = 13
	if err := s.AddRange(0x1000, 0x800, b); err != nil {
		t.Fatal(err)
	}
	want := uint64(1000 + 13)
	if got := s.Touch(0x1000); got != want {
		t.Fatalf("cold touch stall = %d, want %d", got, want)
	}
	if got := s.Touch(0x1400); got != 0 {
		t.Fatalf("resident touch stall = %d, want 0", got)
	}
	if got := s.Touch(0x999999); got != 0 {
		t.Fatalf("unmapped touch stall = %d, want 0", got)
	}
	c := s.Counters()
	if c.BlockFetches != 1 || c.BlockHits != 1 || c.BytesFetched != 100 || c.StallCycles != want {
		t.Fatalf("counters = %+v", c)
	}
}

func TestStorageZeroBandwidthDefaultsToOne(t *testing.T) {
	s := NewStorageSet(StorageConfig{LatencyCycles: 5})
	b := s.AddBlock(7)
	if err := s.AddRange(0, 64, b); err != nil {
		t.Fatal(err)
	}
	if got := s.Touch(0); got != 5+7 {
		t.Fatalf("stall = %d, want 12", got)
	}
}

func TestStorageAliasRangesShareResidency(t *testing.T) {
	s := NewStorageSet(storCfg())
	b := s.AddBlock(64)
	// Decoded and packed images of one logical block.
	if err := s.AddRange(0x1000, 0x100, b); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRange(0x9000, 0x40, b); err != nil {
		t.Fatal(err)
	}
	if s.Touch(0x1000) == 0 {
		t.Fatal("first touch should fetch")
	}
	if got := s.Touch(0x9000); got != 0 {
		t.Fatalf("alias window touch stall = %d, want 0 (block already resident)", got)
	}
	if c := s.Counters(); c.BlockFetches != 1 || c.BlockHits != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestStorageLRUEviction(t *testing.T) {
	cfg := storCfg()
	cfg.BudgetBytes = 200 // two 100-byte blocks fit
	s := NewStorageSet(cfg)
	var blocks [3]int
	for i := range blocks {
		blocks[i] = s.AddBlock(100)
		if err := s.AddRange(uint64(i)*0x1000, 0x100, blocks[i]); err != nil {
			t.Fatal(err)
		}
	}
	s.Touch(0x0000) // fetch 0
	s.Touch(0x1000) // fetch 1
	s.Touch(0x0000) // hit 0 → MRU order: 0, 1
	s.Touch(0x2000) // fetch 2 → evicts 1 (LRU)
	if c := s.Counters(); c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
	if got := s.Touch(0x0000); got != 0 {
		t.Fatal("block 0 should have survived eviction")
	}
	if got := s.Touch(0x1000); got == 0 {
		t.Fatal("block 1 should have been evicted")
	}
	if s.ResidentBytes() > cfg.BudgetBytes {
		t.Fatalf("resident bytes %d exceed budget %d", s.ResidentBytes(), cfg.BudgetBytes)
	}
}

func TestStorageBudgetNeverEvictsIncomingBlock(t *testing.T) {
	cfg := storCfg()
	cfg.BudgetBytes = 50 // smaller than any block
	s := NewStorageSet(cfg)
	a := s.AddBlock(100)
	b := s.AddBlock(100)
	if err := s.AddRange(0x0000, 0x100, a); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRange(0x1000, 0x100, b); err != nil {
		t.Fatal(err)
	}
	s.Touch(0x0000)
	if got := s.Touch(0x0000); got != 0 {
		t.Fatal("oversized block must stay resident until another fetch displaces it")
	}
	s.Touch(0x1000) // evicts a, keeps b
	if c := s.Counters(); c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
	if got := s.Touch(0x1000); got != 0 {
		t.Fatal("incoming block must never be evicted by its own fetch")
	}
}

func TestStorageDropResidency(t *testing.T) {
	s := NewStorageSet(storCfg())
	b := s.AddBlock(64)
	if err := s.AddRange(0, 0x100, b); err != nil {
		t.Fatal(err)
	}
	first := s.Touch(0)
	s.DropResidency()
	if s.ResidentBytes() != 0 {
		t.Fatal("resident bytes after drop")
	}
	if got := s.Touch(0); got != first {
		t.Fatalf("post-drop touch stall = %d, want %d (a fresh cold fetch)", got, first)
	}
	if c := s.Counters(); c.Evictions != 0 {
		t.Fatal("DropResidency must not count as evictions")
	}
}

func TestStorageRangeValidation(t *testing.T) {
	s := NewStorageSet(storCfg())
	if err := s.AddRange(0, 64, 3); err == nil {
		t.Fatal("range over unknown block accepted")
	}
	b := s.AddBlock(64)
	if err := s.AddRange(0, 0, b); err != nil {
		t.Fatal("empty range should be a no-op, not an error")
	}
	if err := s.AddRange(0x100, 0x100, b); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRange(0x180, 0x100, b); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping ranges must panic at seal time")
		}
	}()
	s.Touch(0x100)
}

// TestStorageObserverInvariant is the tier's bit-identity contract at the
// hierarchy level: the same access trace through two identically configured
// hierarchies — one with a storage tier attached — produces identical cache
// counters; only StorageStallCycles differs.
func TestStorageObserverInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	plain, err := NewHierarchy(hcfg())
	if err != nil {
		t.Fatal(err)
	}
	stored, err := NewHierarchy(hcfg())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStorageSet(StorageConfig{LatencyCycles: 500, BytesPerCycle: 4, BudgetBytes: 1 << 14})
	const blockBytes = 1 << 12
	for i := 0; i < 16; i++ {
		b := s.AddBlock(blockBytes / 2) // "compressed" to half
		if err := s.AddRange(uint64(i)*blockBytes, blockBytes, b); err != nil {
			t.Fatal(err)
		}
	}
	stored.AttachStorage(s)

	for i := 0; i < 20000; i++ {
		var addr uint64
		switch rng.Intn(3) {
		case 0: // sequential run inside the mapped region
			addr = uint64(rng.Intn(16 * blockBytes))
		case 1: // unmapped traffic
			addr = uint64(1<<20 + rng.Intn(1<<16))
		default: // hot reuse
			addr = uint64(rng.Intn(256))
		}
		a := plain.Load(addr)
		b := stored.Load(addr)
		if a != b {
			t.Fatalf("access %d: hit level diverged: %+v vs %+v", i, a, b)
		}
	}
	if plain.Counters() != stored.Counters() {
		t.Fatalf("counters diverged:\nplain  %+v\nstored %+v", plain.Counters(), stored.Counters())
	}
	if plain.StorageStallCycles() != 0 {
		t.Fatal("unattached hierarchy reports storage stalls")
	}
	st := stored.StorageStallCycles()
	if st == 0 {
		t.Fatal("attached hierarchy never charged a storage stall")
	}
	if st != s.Counters().StallCycles {
		t.Fatalf("hierarchy stalls %d != set stalls %d", st, s.Counters().StallCycles)
	}
	// ResetCounters clears PMU counters but not the storage stall clock.
	stored.ResetCounters()
	if stored.StorageStallCycles() != st {
		t.Fatal("ResetCounters cleared storage stalls")
	}
	if stored.Counters().MemAccesses != 0 {
		t.Fatal("ResetCounters left mem accesses")
	}
}

func TestStorageSequentialMemo(t *testing.T) {
	s := NewStorageSet(storCfg())
	for i := 0; i < 4; i++ {
		b := s.AddBlock(256)
		if err := s.AddRange(uint64(i)*0x1000, 0x1000, b); err != nil {
			t.Fatal(err)
		}
	}
	// A forward scan touching every 64 bytes: exactly 4 fetches, rest hits.
	for a := uint64(0); a < 4*0x1000; a += 64 {
		s.Touch(a)
	}
	c := s.Counters()
	if c.BlockFetches != 4 {
		t.Fatalf("fetches = %d, want 4", c.BlockFetches)
	}
	if c.BlockHits != 4*0x1000/64-4 {
		t.Fatalf("hits = %d, want %d", c.BlockHits, 4*0x1000/64-4)
	}
}
