package experiments

import (
	"fmt"
	"sort"

	"progopt/internal/core"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/service"
	"progopt/internal/tpch"
)

// ExtServe measures the workload service: a recurring mix of progressive
// join queries is offered to an 8-core pool at increasing admission
// concurrency, once with the PMU-feedback cache disabled (every run pays the
// full observe-reorder-validate cost: "cold") and once warm-started from the
// converged orders a previous round of the same fingerprints deposited
// ("warm"). Reported are the workload makespan, simulated throughput, and
// p50/p95 per-query latency (queueing included). Everything runs on the
// simulated clock, so the table is bit-reproducible.
func ExtServe(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	const poolWorkers = 8
	vecs := 96
	queries := 12
	if cfg.Quick {
		vecs = 48
		queries = 8
	}
	rows := vecs * cfg.VectorSize
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	prof := cpu.ScaledXeon()

	// Three recurring templates: worst-first predicate chains of cleanly
	// separated selectivities plus a foreign-key join — the shape whose
	// converged order is worth remembering.
	templates, err := serveTemplates(prof, d)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:    "ext-serve",
		Title: "Extension: workload service — concurrency v. latency, cold v. warm feedback cache",
		Columns: []string{
			"max_active", "cold_mkspan_ms", "warm_mkspan_ms",
			"cold_p50_ms", "warm_p50_ms", "cold_p95_ms", "warm_p95_ms",
			"cold_qps", "warm_qps", "warm_starts",
		},
		Notes: []string{
			fmt.Sprintf("%d-core pool; %d progressive join queries over 3 recurring plan fingerprints; %d lineitems", poolWorkers, queries, rows),
			"cold: feedback disabled; warm: same trace after one feedback-populating round",
			"latency = completion - arrival in simulated ms (queueing included); qps = queries per simulated second",
		},
	}

	for _, maxActive := range []int{1, 2, 4, 8} {
		cold, err := runServeTrace(prof, templates, serveTraceConfig{
			vectorSize: cfg.VectorSize, poolWorkers: poolWorkers,
			maxActive: maxActive, queries: queries, noFeedback: true, warmup: false,
		})
		if err != nil {
			return nil, err
		}
		warm, err := runServeTrace(prof, templates, serveTraceConfig{
			vectorSize: cfg.VectorSize, poolWorkers: poolWorkers,
			maxActive: maxActive, queries: queries, noFeedback: false, warmup: true,
		})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", maxActive),
			fmtMs(cold.makespanMs), fmtMs(warm.makespanMs),
			fmtMs(cold.p50Ms), fmtMs(warm.p50Ms),
			fmtMs(cold.p95Ms), fmtMs(warm.p95Ms),
			fmtF(cold.qps), fmtF(warm.qps),
			fmt.Sprintf("%d", warm.warmStarts),
		})
	}
	return []*Report{rep}, nil
}

// serveTemplates builds the recurring query mix with stable fingerprints.
func serveTemplates(prof cpu.Profile, d *tpch.Dataset) ([]servePlanTemplate, error) {
	li := d.Lineitem
	alloc := cpu.MustNew(prof)
	mk := func(shipSel float64, qtyBound int64, joinSel float64) (servePlanTemplate, error) {
		cut := tpch.QuantileInt32(d.Orders.Column("o_orderdate"), joinSel)
		jf := &exec.Predicate{Col: d.Orders.Column("o_orderdate"), Op: exec.LE, I: int64(cut)}
		j, err := exec.NewFKJoin(alloc, li.Column("l_orderkey"), d.NumOrders, jf, "join-orders")
		if err != nil {
			return servePlanTemplate{}, err
		}
		q := &exec.Query{Table: li, Ops: []exec.Op{
			&exec.Predicate{Col: li.Column("l_shipdate"), Op: exec.LE, I: int64(d.ShipdateCutoff(shipSel)), Label: "shipdate"},
			&exec.Predicate{Col: li.Column("l_discount"), Op: exec.LE, F: 0.05, Label: "discount"},
			j,
			&exec.Predicate{Col: li.Column("l_quantity"), Op: exec.LT, I: qtyBound, Label: "quantity"},
		}}
		fp := service.Compute("lineitem", 1, []string{
			fmt.Sprintf("ship|%v", shipSel),
			fmt.Sprintf("qty|%d", qtyBound),
			fmt.Sprintf("join|%v", joinSel),
		})
		return servePlanTemplate{q: q, fp: fp}, nil
	}
	var out []servePlanTemplate
	for _, spec := range []struct {
		ship float64
		qty  int64
		join float64
	}{
		{0.8, 10, 0.5},
		{0.7, 15, 0.4},
		{0.9, 8, 0.6},
	} {
		tpl, err := mk(spec.ship, spec.qty, spec.join)
		if err != nil {
			return nil, err
		}
		out = append(out, tpl)
	}
	return out, nil
}

type servePlanTemplate struct {
	q  *exec.Query
	fp service.Fingerprint
}

type serveTraceConfig struct {
	vectorSize  int
	poolWorkers int
	maxActive   int
	queries     int
	noFeedback  bool
	warmup      bool
}

type serveTraceResult struct {
	makespanMs float64
	p50Ms      float64
	p95Ms      float64
	qps        float64
	warmStarts int
}

// runServeTrace offers the recurring mix to a fresh server and measures the
// workload. With warmup, the trace runs once first so the feedback cache
// holds every fingerprint's converged order; the measured round then
// warm-starts.
func runServeTrace(prof cpu.Profile, templates []servePlanTemplate, tc serveTraceConfig) (serveTraceResult, error) {
	s, err := service.New(prof, tc.poolWorkers, tc.vectorSize, false, service.Config{
		MaxActive: tc.maxActive,
	})
	if err != nil {
		return serveTraceResult{}, err
	}
	for _, tpl := range templates {
		if err := s.BindQuery(tpl.q); err != nil {
			return serveTraceResult{}, err
		}
	}
	// ReopInterval 5 keeps several optimization blocks in every sweep cell,
	// including a lone query holding all 8 cores at quick scale.
	opt := core.Options{ReopInterval: 5}
	runRound := func(base uint64) ([]service.Outcome, error) {
		tks := make([]*service.Ticket, tc.queries)
		for i := 0; i < tc.queries; i++ {
			tpl := templates[i%len(templates)]
			tk, err := s.Submit(service.Request{
				Query:       tpl.q,
				Mode:        service.ModeProgressive,
				Opt:         opt,
				Arrival:     base,
				Fingerprint: tpl.fp,
				NoFeedback:  tc.noFeedback,
			})
			if err != nil {
				return nil, err
			}
			tks[i] = tk
		}
		outs := make([]service.Outcome, len(tks))
		for i, tk := range tks {
			o, err := tk.Wait()
			if err != nil {
				return nil, err
			}
			outs[i] = o
		}
		return outs, nil
	}

	var base uint64
	if tc.warmup {
		if _, err := runRound(0); err != nil {
			return serveTraceResult{}, err
		}
		base = s.Stats().MakespanCycles
	}
	warmStartsBefore := s.Stats().FeedbackWarmStarts
	outs, err := runRound(base)
	if err != nil {
		return serveTraceResult{}, err
	}

	clock := cpu.MustNew(prof)
	lat := make([]float64, len(outs))
	var makespan uint64
	for i, o := range outs {
		lat[i] = clock.MillisOf(o.Done - o.Arrival)
		if o.Done > makespan {
			makespan = o.Done
		}
	}
	sort.Float64s(lat)
	mkMs := clock.MillisOf(makespan - base)
	res := serveTraceResult{
		makespanMs: mkMs,
		p50Ms:      lat[len(lat)/2],
		p95Ms:      lat[(len(lat)*95)/100],
		warmStarts: s.Stats().FeedbackWarmStarts - warmStartsBefore,
	}
	if mkMs > 0 {
		res.qps = float64(len(outs)) / (mkMs / 1000)
	}
	return res, nil
}
