package exec

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/tpch"
)

// Q6 builds the original TPC-H Query 6 over the data set:
//
//	SELECT sum(l_extendedprice * l_discount) FROM lineitem
//	WHERE l_shipdate >= DATE AND l_shipdate < DATE + 1 year
//	  AND l_discount BETWEEN 0.06-0.01 AND 0.06+0.01
//	  AND l_quantity < 24
//
// The five atomic comparisons are the five reorderable predicates of the
// paper's Figure 11 (5! = 120 PEOs).
func Q6(d *tpch.Dataset) (*Query, error) {
	return q6WithShipdateWindow(d, tpch.Q6ShipdateLo(), tpch.Q6ShipdateHi())
}

// Q6ShipdateWindow is Q6 with custom shipdate bounds [lo, hi); the sorted
// data-set experiment (§5.4) relies on both bounds being present.
func Q6ShipdateWindow(d *tpch.Dataset, lo, hi int32) (*Query, error) {
	return q6WithShipdateWindow(d, lo, hi)
}

func q6WithShipdateWindow(d *tpch.Dataset, lo, hi int32) (*Query, error) {
	li := d.Lineitem
	ship := li.Column("l_shipdate")
	disc := li.Column("l_discount")
	qty := li.Column("l_quantity")
	price := li.Column("l_extendedprice")
	if ship == nil || disc == nil || qty == nil || price == nil {
		return nil, fmt.Errorf("exec: data set lacks Q6 columns")
	}
	q := &Query{
		Table: li,
		Ops: []Op{
			&Predicate{Col: ship, Op: GE, I: int64(lo), Label: "shipdate>=lo"},
			&Predicate{Col: ship, Op: LT, I: int64(hi), Label: "shipdate<hi"},
			&Predicate{Col: disc, Op: GE, F: tpch.Q6DiscountLo - 1e-9, Label: "discount>=0.05"},
			&Predicate{Col: disc, Op: LE, F: tpch.Q6DiscountHi + 1e-9, Label: "discount<=0.07"},
			&Predicate{Col: qty, Op: LT, I: tpch.Q6QuantityBound, Label: "quantity<24"},
		},
		Agg: q6Agg(price, disc),
	}
	return q, nil
}

// Q6Shipdate builds the introduction's modified Q6 (Figure 1):
//
//	WHERE l_shipdate <= VALUE AND l_quantity < 24
//	  AND l_discount BETWEEN 0.05 AND 0.07
//
// Four predicates, 4! = 24 PEOs, with the shipdate cutoff as the selectivity
// degree of freedom.
func Q6Shipdate(d *tpch.Dataset, cutoff int32) (*Query, error) {
	li := d.Lineitem
	ship := li.Column("l_shipdate")
	disc := li.Column("l_discount")
	qty := li.Column("l_quantity")
	price := li.Column("l_extendedprice")
	if ship == nil || disc == nil || qty == nil || price == nil {
		return nil, fmt.Errorf("exec: data set lacks Q6 columns")
	}
	q := &Query{
		Table: li,
		Ops: []Op{
			&Predicate{Col: ship, Op: LE, I: int64(cutoff), Label: "shipdate<=v"},
			&Predicate{Col: qty, Op: LT, I: tpch.Q6QuantityBound, Label: "quantity<24"},
			&Predicate{Col: disc, Op: GE, F: tpch.Q6DiscountLo - 1e-9, Label: "discount>=0.05"},
			&Predicate{Col: disc, Op: LE, F: tpch.Q6DiscountHi + 1e-9, Label: "discount<=0.07"},
		},
		Agg: q6Agg(price, disc),
	}
	return q, nil
}

func q6Agg(price, disc *columnar.Column) *Aggregate {
	p, dc := price.F64(), disc.F64()
	return &Aggregate{
		Cols: []*columnar.Column{price, disc},
		F:    func(row int) float64 { return p[row] * dc[row] },
	}
}

// Permutations returns all n! permutations of [0,n) (swap-enumeration
// order). n must be small; the experiments use n <= 5 (120 orders).
func Permutations(n int) [][]int {
	if n < 0 || n > 8 {
		panic(fmt.Sprintf("exec: refusing to enumerate %d! permutations", n))
	}
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	return out
}
