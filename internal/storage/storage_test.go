package storage

import (
	"testing"

	"progopt/internal/columnar"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// testTable builds a small encoded lineitem plus its bound decoded image.
func testTable(t *testing.T, rows, blockRows int) (*columnar.EncodedTable, *columnar.Table, *cpu.CPU) {
	t.Helper()
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := columnar.EncodeTable(d.Lineitem, blockRows)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := enc.Decode()
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.MustNew(cpu.ScaledXeon())
	if err := tab.BindAll(c); err != nil {
		t.Fatal(err)
	}
	return enc, tab, c
}

func TestRangeEmpty(t *testing.T) {
	cases := []struct {
		op       exec.CmpOp
		min, max int64
		bound    int64
		want     bool
	}{
		{exec.LE, 10, 20, 9, true},
		{exec.LE, 10, 20, 10, false},
		{exec.LT, 10, 20, 10, true},
		{exec.LT, 10, 20, 11, false},
		{exec.GE, 10, 20, 21, true},
		{exec.GE, 10, 20, 20, false},
		{exec.GT, 10, 20, 20, true},
		{exec.GT, 10, 20, 19, false},
		{exec.EQ, 10, 20, 9, true},
		{exec.EQ, 10, 20, 21, true},
		{exec.EQ, 10, 20, 10, false},
		{exec.EQ, 10, 20, 20, false},
		{exec.EQ, 10, 20, 15, false},
	}
	for _, tc := range cases {
		if got := rangeEmpty(tc.op, tc.min, tc.max, tc.bound); got != tc.want {
			t.Errorf("rangeEmpty(%v, [%d,%d], %d) = %v, want %v", tc.op, tc.min, tc.max, tc.bound, got, tc.want)
		}
	}
	if !rangeEmpty(exec.LT, 0.05, 0.07, 0.05) {
		t.Error("float LT at the min bound should prune")
	}
	if rangeEmpty(exec.CmpOp(99), 10, 20, int64(0)) {
		t.Error("unknown op must never prune")
	}
}

// TestSkipVectorsGeometry exercises the block-to-vector translation at
// aligned, straddling, and ragged-tail geometries.
func TestSkipVectorsGeometry(t *testing.T) {
	// 10 blocks of 100 rows; blocks 2,3,6,7,8 pruned; 999 rows total (ragged
	// last block).
	pruned := []bool{false, false, true, true, false, false, true, true, true, false}
	// With 200-row vectors: rows [200,400) cover blocks 2,3 (both pruned, so
	// skip); rows [600,800) cover blocks 6,7 (skip); rows [800,1000) clip to
	// [800,999) covering blocks 8,9 — block 9 unpruned, so keep.
	skip := skipVectors(pruned, 100, 999, 200)
	want := []bool{false, true, false, true, false}
	if len(skip) != len(want) {
		t.Fatalf("got %d vectors, want %d", len(skip), len(want))
	}
	for i := range want {
		if skip[i] != want[i] {
			t.Errorf("vector %d skip=%v, want %v (skip=%v)", i, skip[i], want[i], skip)
		}
	}
	// Vectors smaller than blocks: each 100-row block covers two 50-row
	// vectors, both inheriting its verdict.
	skip = skipVectors(pruned, 100, 999, 50)
	if len(skip) != 20 {
		t.Fatalf("got %d vectors, want 20", len(skip))
	}
	for v, s := range skip {
		if s != pruned[v/2] {
			t.Errorf("50-row vector %d skip=%v, block pruned=%v", v, s, pruned[v/2])
		}
	}
}

func TestCompileValidation(t *testing.T) {
	enc, tab, _ := testTable(t, 500, 128)
	if _, err := Compile(nil, tab, nil, 128, Config{}); err == nil {
		t.Error("nil encoded table accepted")
	}
	if _, err := Compile(enc, nil, nil, 128, Config{}); err == nil {
		t.Error("nil decoded image accepted")
	}
	if _, err := Compile(enc, tab, nil, 0, Config{}); err == nil {
		t.Error("zero vector size accepted")
	}
	other, err := tpch.Generate(tpch.Config{Lineitems: 600, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := columnar.EncodeTable(other.Lineitem, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(enc2, tab, nil, 128, Config{}); err == nil {
		t.Error("row-count mismatch accepted")
	}
}

// TestPruneBlocksForeignPredicate: a predicate over a column object that is
// not the decoded image's (a join filter on another table) must never prune.
func TestPruneBlocksForeignPredicate(t *testing.T) {
	enc, tab, _ := testTable(t, 1000, 128)
	d, err := tpch.Generate(tpch.Config{Lineitems: 1000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	foreign := &exec.Predicate{Col: d.Lineitem.Column("l_shipdate"), Op: exec.LE, I: -1}
	q := &exec.Query{Table: tab, Ops: []exec.Op{foreign}}
	pruned := pruneBlocks(enc, tab, q)
	for b, p := range pruned {
		if p {
			t.Fatalf("foreign predicate pruned block %d", b)
		}
	}
	// The same bound through the decoded image's own column prunes everything.
	own := &exec.Predicate{Col: tab.Column("l_shipdate"), Op: exec.LE, I: -1}
	q = &exec.Query{Table: tab, Ops: []exec.Op{own}}
	for b, p := range pruneBlocks(enc, tab, q) {
		if !p {
			t.Fatalf("impossible bound left block %d unpruned", b)
		}
	}
}

// TestNewSetBinding: NewSet requires a bound decoded image and builds one
// logical block per (column, block) with the packed image aliased on.
func TestNewSetBinding(t *testing.T) {
	enc, tab, c := testTable(t, 1000, 256)
	p, err := Compile(enc, tab, nil, 256, Config{LatencyCycles: 10, BytesPerCycle: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSet()
	if err != nil {
		t.Fatal(err)
	}
	// Touch one decoded address per column: each first touch fetches that
	// column's block once.
	var stalls uint64
	for _, ec := range enc.Columns() {
		dc := tab.Column(ec.Name())
		stalls += s.Touch(dc.Base())
	}
	cnt := s.Counters()
	if cnt.BlockFetches != uint64(len(enc.Columns())) {
		t.Errorf("%d fetches after touching %d columns", cnt.BlockFetches, len(enc.Columns()))
	}
	if stalls != cnt.StallCycles || stalls == 0 {
		t.Errorf("stall accounting: returned %d, counters %d", stalls, cnt.StallCycles)
	}

	// A packed image aliases its column's blocks: touching the packed address
	// of an already-resident block is a hit, not a fetch.
	pw := enc.Columns()[0].PackedWidthBytes()
	base, err := c.Alloc(enc.Columns()[0].Rows() * pw)
	if err != nil {
		t.Fatal(err)
	}
	p.Packed = map[string]PackedImage{enc.Columns()[0].Name(): {Base: base, Width: pw}}
	s2, err := p.NewSet()
	if err != nil {
		t.Fatal(err)
	}
	s2.Touch(tab.Column(enc.Columns()[0].Name()).Base())
	before := s2.Counters()
	if st := s2.Touch(base); st != 0 {
		t.Errorf("aliased packed touch stalled %d cycles", st)
	}
	after := s2.Counters()
	if after.BlockFetches != before.BlockFetches || after.BlockHits != before.BlockHits+1 {
		t.Errorf("aliased packed touch: fetches %d->%d, hits %d->%d",
			before.BlockFetches, after.BlockFetches, before.BlockHits, after.BlockHits)
	}

	// An unbound image is rejected.
	enc3, _, _ := testTable(t, 500, 128)
	unbound, err := enc3.Decode()
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Compile(enc3, unbound, nil, 128, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p3.NewSet(); err == nil {
		t.Error("unbound decoded image accepted")
	}
}
