package core

import (
	"math"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1)
	}
	res, err := NelderMead(f, []float64{0, 0}, NMOptions{MaxIter: 2000, AbsTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-3 || math.Abs(res.X[1]+1) > 1e-3 {
		t.Errorf("minimum at %v, want (3,-1)", res.X)
	}
	if res.Evaluations == 0 || res.Iterations == 0 {
		t.Error("no work recorded")
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := NelderMead(f, []float64{-1.2, 1}, NMOptions{MaxIter: 5000, AbsTol: 1e-14, InitialStep: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 0.02 || math.Abs(res.X[1]-1) > 0.02 {
		t.Errorf("Rosenbrock minimum at %v, want (1,1)", res.X)
	}
}

func TestNelderMeadRespectsBounds(t *testing.T) {
	// Unconstrained minimum at (3, -1), box limits to [0,2]x[0,2].
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1)
	}
	res, err := NelderMead(f, []float64{1, 1}, NMOptions{
		MaxIter: 2000, AbsTol: 1e-12,
		Lo: []float64{0, 0}, Hi: []float64{2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.X {
		if v < 0 || v > 2 {
			t.Fatalf("dimension %d escaped the box: %v", i, v)
		}
	}
	if math.Abs(res.X[0]-2) > 0.02 || math.Abs(res.X[1]-0) > 0.02 {
		t.Errorf("constrained minimum at %v, want (2,0)", res.X)
	}
}

func TestNelderMeadStartAtBound(t *testing.T) {
	// Start exactly on the upper bound: the initial simplex must step inward.
	f := func(x []float64) float64 { return x[0] * x[0] }
	res, err := NelderMead(f, []float64{1}, NMOptions{
		MaxIter: 500, AbsTol: 1e-12,
		Lo: []float64{-1}, Hi: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]) > 1e-3 {
		t.Errorf("minimum at %v, want 0", res.X[0])
	}
}

func TestNelderMeadValidation(t *testing.T) {
	f := func(x []float64) float64 { return 0 }
	if _, err := NelderMead(f, nil, NMOptions{}); err == nil {
		t.Error("empty start accepted")
	}
	if _, err := NelderMead(f, []float64{0}, NMOptions{Lo: []float64{0, 0}}); err == nil {
		t.Error("mismatched bounds accepted")
	}
}

func TestNelderMeadOneDimensional(t *testing.T) {
	// Smooth objective: with |x-0.25| a symmetric straddle of the kink gives
	// equal vertex values and the f-spread criterion stops early — a known
	// Nelder-Mead property, not a bug.
	f := func(x []float64) float64 { return (x[0] - 0.25) * (x[0] - 0.25) }
	res, err := NelderMead(f, []float64{0.9}, NMOptions{MaxIter: 1000, AbsTol: 1e-10, XTol: 1e-6, Lo: []float64{0}, Hi: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.25) > 1e-3 {
		t.Errorf("1-d minimum at %v, want 0.25", res.X[0])
	}
}

func TestNelderMeadHonorsMaxIter(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	res, err := NelderMead(f, []float64{100}, NMOptions{MaxIter: 3, AbsTol: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Errorf("ran %d iterations, limit 3", res.Iterations)
	}
}
