package progopt

import (
	"fmt"
	"reflect"
	"testing"

	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// The deprecated Build*/Run* methods are thin wrappers over Compile/Exec, so
// these property tests pin the wrapper translation AND guard the new surface
// against behavioral drift: every (mode, workers, scalar) cell must produce
// bit-identical results, cycle counts, and PMU counters between the old and
// new API on independently constructed engines.

// equivCases is the configuration matrix of the acceptance criterion.
func equivCases() []Config {
	var out []Config
	for _, workers := range []int{1, 4} {
		for _, scalar := range []bool{false, true} {
			out = append(out, Config{VectorSize: 1024, Workers: workers, ScalarExec: scalar})
		}
	}
	return out
}

func caseName(cfg Config) string {
	return fmt.Sprintf("workers=%d/scalar=%v", cfg.Workers, cfg.ScalarExec)
}

// sameResult asserts full bit-identity of two results, counters included.
func sameResult(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.Qualifying != b.Qualifying {
		t.Errorf("%s: qualifying %d vs %d", label, a.Qualifying, b.Qualifying)
	}
	if a.Sum != b.Sum {
		t.Errorf("%s: sum %v vs %v (must be bit-identical)", label, a.Sum, b.Sum)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("%s: cycles %d vs %d", label, a.Cycles, b.Cycles)
	}
	if a.Millis != b.Millis {
		t.Errorf("%s: millis %v vs %v", label, a.Millis, b.Millis)
	}
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Errorf("%s: PMU counters diverge:\n old %v\n new %v", label, a.Counters, b.Counters)
	}
}

func sameStats(t *testing.T, label string, a, b Stats) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: stats diverge:\n old %+v\n new %+v", label, a, b)
	}
}

// q6Setup builds a fresh engine + data set + Q6 in the deliberately bad
// reversed order, via the given builder.
func q6Setup(t *testing.T, cfg Config, build func(e *Engine, d *Dataset) (*Query, error)) (*Engine, *Dataset, *Query) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.GenerateTPCH(30000, 21, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := build(e, d)
	if err != nil {
		t.Fatal(err)
	}
	qo, err := q.WithOrder([]int{4, 3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	return e, d, qo
}

func buildQ6Legacy(e *Engine, d *Dataset) (*Query, error) { return e.BuildQ6(d) }

// TestEquivalenceFixed: Run == Exec(ModeFixed) across the matrix.
func TestEquivalenceFixed(t *testing.T) {
	for _, cfg := range equivCases() {
		t.Run(caseName(cfg), func(t *testing.T) {
			eOld, _, qOld := q6Setup(t, cfg, buildQ6Legacy)
			oldRes, err := eOld.Run(qOld)
			if err != nil {
				t.Fatal(err)
			}
			eNew, _, qNew := q6Setup(t, cfg, buildQ6Legacy)
			newRes, err := eNew.Exec(qNew, ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "fixed", oldRes, newRes.Result)
		})
	}
}

// TestEquivalenceProgressive: RunProgressive == Exec(ModeProgressive),
// results, cycles, counters, and optimizer stats.
func TestEquivalenceProgressive(t *testing.T) {
	for _, cfg := range equivCases() {
		t.Run(caseName(cfg), func(t *testing.T) {
			p := Progressive{Interval: 5}
			eOld, _, qOld := q6Setup(t, cfg, buildQ6Legacy)
			oldRes, oldSt, err := eOld.RunProgressive(qOld, p)
			if err != nil {
				t.Fatal(err)
			}
			eNew, _, qNew := q6Setup(t, cfg, buildQ6Legacy)
			newRes, err := eNew.Exec(qNew, ExecOptions{Mode: ModeProgressive, Progressive: p})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "progressive", oldRes, newRes.Result)
			sameStats(t, "progressive", oldSt, newRes.Stats)
		})
	}
}

// TestEquivalenceMicroAdaptive: RunMicroAdaptive == Exec(ModeMicroAdaptive)
// on single-core engines; on multi-core engines the deprecated method must
// refuse rather than silently report single-core cycles.
func TestEquivalenceMicroAdaptive(t *testing.T) {
	for _, cfg := range equivCases() {
		t.Run(caseName(cfg), func(t *testing.T) {
			p := Progressive{Interval: 3}
			build := func(e *Engine, d *Dataset) (*Query, error) {
				return e.BuildScan(d, []Predicate{
					{Column: "l_quantity", Op: CmpLE, Int: 25},
					{Column: "l_discount", Op: CmpLE, Float: 0.05},
				}, false)
			}
			newEngine := func() (*Engine, *Query) {
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				d, err := e.GenerateTPCH(30000, 9, OrderRandom)
				if err != nil {
					t.Fatal(err)
				}
				q, err := build(e, d)
				if err != nil {
					t.Fatal(err)
				}
				return e, q
			}
			eOld, qOld := newEngine()
			oldRes, oldSt, err := eOld.RunMicroAdaptive(qOld, p)
			if cfg.Workers > 1 {
				if err == nil {
					t.Fatal("RunMicroAdaptive accepted a multi-core engine")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			eNew, qNew := newEngine()
			newRes, err := eNew.Exec(qNew, ExecOptions{Mode: ModeMicroAdaptive, Progressive: p})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "micro-adaptive", oldRes, newRes.Result)
			sameStats(t, "micro-adaptive", oldSt.Stats, newRes.Stats)
			gotImpl := ImplStats{
				BranchingVectors:  oldSt.BranchingVectors,
				BranchFreeVectors: oldSt.BranchFreeVectors,
				ImplSwitches:      oldSt.ImplSwitches,
			}
			if gotImpl != newRes.Impl {
				t.Errorf("impl stats diverge: old %+v new %+v", gotImpl, newRes.Impl)
			}
		})
	}
}

// TestEquivalenceGroupBy: RunGroupBy == Exec on a grouped plan — groups,
// result, cycles, counters.
func TestEquivalenceGroupBy(t *testing.T) {
	for _, cfg := range equivCases() {
		t.Run(caseName(cfg), func(t *testing.T) {
			setup := func() (*Engine, *Dataset) {
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				d, err := e.GenerateTPCH(20000, 14, OrderRandom)
				if err != nil {
					t.Fatal(err)
				}
				return e, d
			}
			eOld, dOld := setup()
			qOld, err := eOld.BuildScan(dOld, []Predicate{
				{Column: "l_discount", Op: CmpGE, Float: 0.05},
			}, false)
			if err != nil {
				t.Fatal(err)
			}
			oldRows, oldRes, err := eOld.RunGroupBy(dOld, qOld, "l_quantity", "l_extendedprice")
			if err != nil {
				t.Fatal(err)
			}
			eNew, dNew := setup()
			qNew, err := eNew.Compile(dNew, Scan("lineitem").
				Filter("l_discount", CmpGE, 0.05).
				GroupBy("l_quantity", "l_extendedprice"))
			if err != nil {
				t.Fatal(err)
			}
			newRes, err := eNew.Exec(qNew, ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "group-by", oldRes, newRes.Result)
			if !reflect.DeepEqual(oldRows, newRes.Groups) {
				t.Errorf("groups diverge:\n old %v\n new %v", oldRows, newRes.Groups)
			}
		})
	}
}

// TestEquivalenceBuildScanPlan: a legacy Predicate list and the typed Filter
// chain compile to the same bound query.
func TestEquivalenceBuildScanPlan(t *testing.T) {
	cfg := Config{VectorSize: 1024}
	setup := func() (*Engine, *Dataset) {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.GenerateTPCH(20000, 5, OrderRandom)
		if err != nil {
			t.Fatal(err)
		}
		return e, d
	}
	eOld, dOld := setup()
	qOld, err := eOld.BuildScan(dOld, []Predicate{
		{Column: "l_quantity", Op: CmpLT, Int: 10},
		{Column: "l_discount", Op: CmpGE, Float: 0.05},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	oldRes, err := eOld.Run(qOld)
	if err != nil {
		t.Fatal(err)
	}
	eNew, dNew := setup()
	qNew, err := eNew.Compile(dNew, Scan("lineitem").
		Filter("l_quantity", CmpLT, 10).
		Filter("l_discount", CmpGE, 0.05).
		Sum("l_extendedprice * l_discount"))
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := eNew.Exec(qNew, ExecOptions{Mode: ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "scan-plan", oldRes, newRes.Result)
}

// TestBuildQ6MatchesInternalOracle ties the facade's hand-written Q6 plan to
// the internal exec.Q6 definition (still the oracle of internal tests and
// experiments). Unlike the wrapper-vs-Exec suites above — which compare the
// new code path with itself — this pins the public surface against an
// independent implementation: same data, same profile, fresh address spaces,
// full bit-identity of results, cycles, and counters.
func TestBuildQ6MatchesInternalOracle(t *testing.T) {
	oracle := func(build func(*tpch.Dataset) (*exec.Query, error)) exec.Result {
		di, err := tpch.Generate(tpch.Config{Lineitems: 30000, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		qi, err := build(di)
		if err != nil {
			t.Fatal(err)
		}
		ei := exec.MustEngine(cpu.MustNew(cpu.ScaledXeon()), 1024)
		if err := ei.BindQuery(qi); err != nil {
			t.Fatal(err)
		}
		ei.CPU().FlushCaches()
		ei.CPU().ResetPredictor()
		ri, err := ei.Run(qi)
		if err != nil {
			t.Fatal(err)
		}
		return ri
	}
	facade := func(build func(*Engine, *Dataset) (*Query, error)) (*Query, ExecResult) {
		e, err := New(Config{VectorSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.GenerateTPCH(30000, 21, OrderNatural)
		if err != nil {
			t.Fatal(err)
		}
		q, err := build(e, d)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		return q, res
	}

	q6, res6 := facade(func(e *Engine, d *Dataset) (*Query, error) { return e.BuildQ6(d) })
	ref6 := oracle(exec.Q6)
	if res6.Qualifying != ref6.Qualifying || res6.Sum != ref6.Sum ||
		res6.Cycles != ref6.Cycles {
		t.Errorf("BuildQ6 diverges from exec.Q6: %d/%v/%d vs %d/%v/%d",
			res6.Qualifying, res6.Sum, res6.Cycles, ref6.Qualifying, ref6.Sum, ref6.Cycles)
	}
	di, err := tpch.Generate(tpch.Config{Lineitems: 30000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	qi, err := exec.Q6(di)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q6.OpNames(), qi.OpNames()) {
		t.Errorf("BuildQ6 op names %v, exec.Q6 %v", q6.OpNames(), qi.OpNames())
	}

	cutoff := di.ShipdateCutoff(0.3)
	qs, resS := facade(func(e *Engine, d *Dataset) (*Query, error) { return e.BuildQ6Shipdate(d, d.ShipdateCutoff(0.3)) })
	refS := oracle(func(d *tpch.Dataset) (*exec.Query, error) { return exec.Q6Shipdate(d, cutoff) })
	if resS.Qualifying != refS.Qualifying || resS.Sum != refS.Sum || resS.Cycles != refS.Cycles {
		t.Errorf("BuildQ6Shipdate diverges from exec.Q6Shipdate: %d/%v/%d vs %d/%v/%d",
			resS.Qualifying, resS.Sum, resS.Cycles, refS.Qualifying, refS.Sum, refS.Cycles)
	}
	qsi, err := exec.Q6Shipdate(di, cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qs.OpNames(), qsi.OpNames()) {
		t.Errorf("BuildQ6Shipdate op names %v, exec.Q6Shipdate %v", qs.OpNames(), qsi.OpNames())
	}
}

// TestGroupByGroundTruth checks a grouped Exec against a plain Go
// recomputation from the raw columns — an oracle independent of any engine
// code path. Sums must match bit for bit: the engine accumulates per key in
// global row order, exactly like the loop below.
func TestGroupByGroundTruth(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e, err := New(Config{VectorSize: 1024, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.GenerateTPCH(20000, 23, OrderRandom)
		if err != nil {
			t.Fatal(err)
		}
		q, err := e.Compile(d, Scan("lineitem").
			Filter("l_discount", CmpGE, 0.05).
			GroupBy("l_quantity", "l_extendedprice"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		disc := d.d.Lineitem.Column("l_discount").F64()
		qty := d.d.Lineitem.Column("l_quantity").I64()
		price := d.d.Lineitem.Column("l_extendedprice").F64()
		sums := make(map[int64]float64)
		counts := make(map[int64]int64)
		for row := range disc {
			if disc[row] >= 0.05 {
				sums[qty[row]] += price[row]
				counts[qty[row]]++
			}
		}
		if len(res.Groups) != len(sums) {
			t.Fatalf("workers=%d: %d groups, ground truth %d", workers, len(res.Groups), len(sums))
		}
		for _, g := range res.Groups {
			if g.Sum != sums[g.Key] || g.Count != counts[g.Key] {
				t.Errorf("workers=%d: group %d = %v/%d, ground truth %v/%d",
					workers, g.Key, g.Sum, g.Count, sums[g.Key], counts[g.Key])
			}
		}
	}
}

// servedEquivCase builds a fresh engine + data set and returns the plan the
// served-vs-Exec comparisons run: three worst-first predicates (so adaptive
// modes reorder) plus an optional aggregate.
func servedEquivSetup(t *testing.T, workers int) (*Engine, *Dataset, *Plan) {
	t.Helper()
	e, err := New(Config{VectorSize: 512, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.GenerateTPCH(64*512, 37, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	p := Scan("lineitem").
		Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.8))).Label("ship80").
		Filter("l_discount", CmpLE, 0.05).Label("disc<=.05").
		Filter("l_quantity", CmpLT, 10).Label("qty<10").
		Sum("l_extendedprice * l_discount")
	return e, d, p
}

// TestEquivalenceServed pins the service satellite: a query submitted
// through Server.Submit to an otherwise idle server returns bit-identical
// results and PMU counters to the same query run via Engine.Exec, at
// Workers 1 and 4. Adaptive modes compare at Workers 4 in full (cycles,
// counters, optimizer stats: the server drives the same per-block protocol
// as Exec's parallel drivers); at Workers 1 Exec uses the serial per-vector
// drivers while the server schedules at block granularity, so there the
// contract — and the assertion — is answer identity.
func TestEquivalenceServed(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, mode := range []Mode{ModeFixed, ModeProgressive, ModeMicroAdaptive} {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(t *testing.T) {
				opts := ExecOptions{Mode: mode, Progressive: Progressive{Interval: 5}}
				eOld, dOld, pOld := servedEquivSetup(t, workers)
				qOld, err := eOld.Compile(dOld, pOld)
				if err != nil {
					t.Fatal(err)
				}
				want, err := eOld.Exec(qOld, opts)
				if err != nil {
					t.Fatal(err)
				}
				eNew, dNew, pNew := servedEquivSetup(t, workers)
				srv, err := NewServer(eNew, ServerConfig{})
				if err != nil {
					t.Fatal(err)
				}
				tk, err := srv.Submit(dNew, pNew, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tk.Wait()
				if err != nil {
					t.Fatal(err)
				}
				if got.Served == nil || got.Served.PlanCacheHit || got.Served.WarmStart {
					t.Fatalf("first served run has wrong provenance: %+v", got.Served)
				}
				if got.Qualifying != want.Qualifying || got.Sum != want.Sum {
					t.Errorf("answers diverge: %d/%v vs %d/%v",
						got.Qualifying, got.Sum, want.Qualifying, want.Sum)
				}
				if workers > 1 || mode == ModeFixed {
					sameResult(t, "served", want.Result, got.Result)
					sameStats(t, "served", want.Stats, got.Stats)
					if want.Impl != got.Impl {
						t.Errorf("impl stats diverge: %+v vs %+v", want.Impl, got.Impl)
					}
				}
			})
		}
	}
}

// TestEquivalenceServedGrouped: grouped plans served exclusively are
// bit-identical to Engine.Exec at Workers 1 and 4, groups included.
func TestEquivalenceServedGrouped(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			plan := func() *Plan {
				return Scan("lineitem").
					Filter("l_discount", CmpGE, 0.05).
					GroupBy("l_quantity", "l_extendedprice")
			}
			eOld, dOld, _ := servedEquivSetup(t, workers)
			qOld, err := eOld.Compile(dOld, plan())
			if err != nil {
				t.Fatal(err)
			}
			want, err := eOld.Exec(qOld, ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			eNew, dNew, _ := servedEquivSetup(t, workers)
			srv, err := NewServer(eNew, ServerConfig{})
			if err != nil {
				t.Fatal(err)
			}
			tk, err := srv.Submit(dNew, plan(), ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			got, err := tk.Wait()
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "served-grouped", want.Result, got.Result)
			if !reflect.DeepEqual(want.Groups, got.Groups) {
				t.Errorf("groups diverge:\n old %v\n new %v", want.Groups, got.Groups)
			}
		})
	}
}

// TestEquivalenceServedSorted extends the served equivalence to ordered
// plans: a sorted/Top-K query submitted to an otherwise idle server returns
// bit-identical ordered rows to Engine.Exec in every mode at Workers 1 and
// 4, and — where the served protocol matches the dedicated drivers (always
// at Workers 4; ModeFixed at Workers 1) — identical cycles and PMU counters
// including the coordinator's merge-and-emit phase.
func TestEquivalenceServedSorted(t *testing.T) {
	plan := func(d *Dataset) *Plan {
		return Scan("lineitem").
			Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.8))).Label("ship80").
			Filter("l_discount", CmpLE, 0.05).Label("disc<=.05").
			OrderBy("l_extendedprice", Desc).
			Limit(25).
			Sum("l_extendedprice * l_discount")
	}
	for _, workers := range []int{1, 4} {
		for _, mode := range []Mode{ModeFixed, ModeProgressive, ModeMicroAdaptive} {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(t *testing.T) {
				opts := ExecOptions{Mode: mode, Progressive: Progressive{Interval: 5}}
				eOld, dOld, _ := servedEquivSetup(t, workers)
				qOld, err := eOld.Compile(dOld, plan(dOld))
				if err != nil {
					t.Fatal(err)
				}
				want, err := eOld.Exec(qOld, opts)
				if err != nil {
					t.Fatal(err)
				}
				eNew, dNew, _ := servedEquivSetup(t, workers)
				srv, err := NewServer(eNew, ServerConfig{})
				if err != nil {
					t.Fatal(err)
				}
				tk, err := srv.Submit(dNew, plan(dNew), opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tk.Wait()
				if err != nil {
					t.Fatal(err)
				}
				if len(want.Rows) != 25 {
					t.Fatalf("expected 25 ordered rows, got %d", len(want.Rows))
				}
				if !reflect.DeepEqual(want.Rows, got.Rows) {
					t.Errorf("ordered rows diverge:\n exec   %+v\n served %+v", want.Rows[:2], got.Rows[:2])
				}
				if got.Qualifying != want.Qualifying || got.Sum != want.Sum {
					t.Errorf("answers diverge: %d/%v vs %d/%v",
						got.Qualifying, got.Sum, want.Qualifying, want.Sum)
				}
				if workers > 1 || mode == ModeFixed {
					sameResult(t, "served-sorted", want.Result, got.Result)
				}
			})
		}
	}
}

// TestBuildScanRejectsCrossTable pins the satellite fix: predicates on
// build-side tables are rejected instead of corrupting reads.
func TestBuildScanRejectsCrossTable(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(5000, 6, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"orders", "part"} {
		col := "o_orderdate"
		if table == "part" {
			col = "p_size"
		}
		if _, err := e.BuildScan(d, []Predicate{{Table: table, Column: col, Op: CmpLE, Int: 1}}, false); err == nil {
			t.Errorf("BuildScan accepted a predicate on %s.%s", table, col)
		}
	}
}
