package pmu

import "testing"

func TestEventString(t *testing.T) {
	if BrNotTaken.String() != "br_not_taken" {
		t.Errorf("BrNotTaken.String() = %q", BrNotTaken.String())
	}
	if L3Access.String() != "l3_access" {
		t.Errorf("L3Access.String() = %q", L3Access.String())
	}
	if Event(-1).String() == "" || Event(999).String() == "" {
		t.Error("out-of-range events must still stringify")
	}
	// Every event has a distinct non-empty name.
	seen := map[string]bool{}
	for e := Event(0); e < NumEvents; e++ {
		n := e.String()
		if n == "" || seen[n] {
			t.Errorf("event %d: bad or duplicate name %q", e, n)
		}
		seen[n] = true
	}
}

func TestGroupValidation(t *testing.T) {
	if _, err := NewGroup(BrNotTaken, BrMPTaken, BrMPNotTaken, L3Access); err != nil {
		t.Errorf("paper's four events rejected: %v", err)
	}
	if _, err := NewGroup(BrNotTaken, BrMPTaken, BrMPNotTaken, L3Access, L3Miss); err == nil {
		t.Error("five programmable events accepted")
	}
	// Fixed counters don't consume slots.
	if _, err := NewGroup(BrNotTaken, BrMPTaken, BrMPNotTaken, L3Access, Instructions, Cycles); err != nil {
		t.Errorf("four programmable + fixed rejected: %v", err)
	}
	if _, err := NewGroup(BrTaken, BrTaken); err == nil {
		t.Error("duplicate event accepted")
	}
	if _, err := NewGroup(Event(-3)); err == nil {
		t.Error("unknown event accepted")
	}
}

func TestPaperGroup(t *testing.T) {
	g := PaperGroup()
	want := map[Event]bool{BrNotTaken: true, BrMPTaken: true, BrMPNotTaken: true, L3Access: true}
	got := map[Event]bool{}
	for _, e := range g.Events() {
		got[e] = true
	}
	for e := range want {
		if !got[e] {
			t.Errorf("PaperGroup missing %v", e)
		}
	}
}

func TestSampleArithmetic(t *testing.T) {
	var a, b Sample
	a[BrTaken] = 100
	a[L3Access] = 50
	b[BrTaken] = 40
	b[L3Access] = 20
	d := a.Sub(b)
	if d[BrTaken] != 60 || d[L3Access] != 30 {
		t.Errorf("Sub = %v", d)
	}
	s := d.Add(b)
	if s != a {
		t.Errorf("Add(Sub) != original: %v vs %v", s, a)
	}
}

func TestSampleProject(t *testing.T) {
	var s Sample
	for e := Event(0); e < NumEvents; e++ {
		s[e] = uint64(e) + 1
	}
	g, _ := NewGroup(BrNotTaken, L3Access)
	p := s.Project(g)
	if p[BrNotTaken] != s[BrNotTaken] || p[L3Access] != s[L3Access] {
		t.Error("projected events lost values")
	}
	if p[BrTaken] != 0 || p[Instructions] != 0 {
		t.Error("non-group events must be zeroed")
	}
}
