package exec

import (
	"fmt"
	"math"

	"progopt/internal/trace"
)

// This file implements the batch-kernel execution core: instead of the
// interpreted row loop of runVectorScalar (one Op.Eval interface call per
// operator per row), a vector is executed operator-at-a-time. Each operator's
// EvalBatch kernel consumes the survivors of the previous operator from a
// reusable selection vector and produces its own survivors, so per-row
// dispatch, bounds checks, and type switches are amortized over the whole
// vector. Every load, retired instruction, and branch outcome of the scalar
// loop is reproduced per (operator, row) pair — PMU event counts are
// preserved exactly; only the interleaving of accesses differs (op-major
// instead of row-major), which can shift cache hit levels and, on
// global-history predictors, misprediction attribution.

// maxBatchRow bounds table row ids representable in an int32 selection
// vector.
const maxBatchRow = math.MaxInt32

// ensureSel sizes the reusable selection buffers for an n-row vector.
func (e *Engine) ensureSel(n int) error {
	if n > maxBatchRow {
		return fmt.Errorf("exec: vector of %d rows exceeds int32 selection range", n)
	}
	if cap(e.selA) < n {
		e.selA = make([]int32, 0, n)
		e.selB = make([]int32, 0, n)
	}
	return nil
}

// batchSelect runs the operator pipeline over rows [lo, hi) and returns the
// qualifying selection vector (valid until the next batch call on e).
func (e *Engine) batchSelect(q *Query, lo, hi int) ([]int32, error) {
	if hi > maxBatchRow {
		return nil, fmt.Errorf("exec: row %d exceeds int32 selection range", hi)
	}
	if err := e.ensureSel(hi - lo); err != nil {
		return nil, err
	}
	cur := e.selA[:0]
	for r := lo; r < hi; r++ {
		cur = append(cur, int32(r))
	}
	next := e.selB
	c := e.cpu
	if !e.noFuse {
		if e.tr == nil {
			return fusedPipeline(c, q.Ops, cur, next), nil
		}
		inN := len(cur)
		t0 := c.Cycles()
		out := fusedPipeline(c, q.Ops, cur, next)
		e.tr.Span("fused-pipeline", t0, c.Cycles(),
			trace.A("ops", len(q.Ops)), trace.A("in", inN), trace.A("out", len(out)))
		return out, nil
	}
	for si, op := range q.Ops {
		if len(cur) == 0 {
			// No survivors reach the remaining operators — the scalar loop
			// would not evaluate them either.
			break
		}
		if e.tr == nil {
			next = op.EvalBatch(c, si, cur, next[:0])
		} else {
			t0 := c.Cycles()
			next = op.EvalBatch(c, si, cur, next[:0])
			e.tr.Span(op.Name(), t0, c.Cycles(),
				trace.A("in", len(cur)), trace.A("out", len(next)))
		}
		cur, next = next, cur
	}
	return cur, nil
}

// runVectorBatch executes rows [lo, hi) as a kernel pipeline: operators over
// the selection vector, then the aggregate over the final survivors, then the
// per-row loop bookkeeping (charged in one batch, with the loop back-edge
// branch retired per row to keep predictor state faithful).
func (e *Engine) runVectorBatch(q *Query, lo, hi int) (VectorResult, error) {
	sel, err := e.batchSelect(q, lo, hi)
	if err != nil {
		return VectorResult{}, err
	}
	c := e.cpu
	var res VectorResult
	res.Qualifying = int64(len(sel))
	if q.Agg != nil && len(sel) > 0 {
		res.Sum = e.batchAggregate(q.Agg, sel)
	}
	e.batchSort(sel)
	n := hi - lo
	c.Exec(loopOverheadInstr * n)
	c.CondBranchN(len(q.Ops), true, n)
	return res, nil
}

// batchSort feeds one batch's survivors to the attached order-by collector:
// the key columns are gathered per selection and the vector's heap or
// run-buffer touches stream through the run protocol (see sort.go). Same
// loads and charges as the scalar loop's per-row form, batched.
func (e *Engine) batchSort(sel []int32) {
	r := e.sortRun
	if r == nil || len(sel) == 0 {
		return
	}
	for _, k := range r.s.Keys {
		e.cpu.LoadSel(k.Col.Base(), k.Col.Width(), sel)
	}
	r.Add(e.cpu, sel)
}

// batchAggregate sums the aggregate over the selection vector in ascending
// row order — the same accumulation order as the scalar loop, so the
// floating-point result is bit-identical.
func (e *Engine) batchAggregate(a *Aggregate, sel []int32) float64 {
	c := e.cpu
	for _, col := range a.Cols {
		c.LoadSel(col.Base(), col.Width(), sel)
	}
	sum := 0.0
	for _, r := range sel {
		sum += a.F(int(r))
	}
	c.Exec(a.cost() * len(sel))
	return sum
}

// runVectorBranchFreeBatch is the batch form of the branch-free scan: every
// predicate is evaluated for every row of the vector into a qualification
// mask (no data-dependent branches), then the aggregate runs over the set
// rows. Operators were validated as predicates by the caller.
func (e *Engine) runVectorBranchFreeBatch(q *Query, lo, hi int) (VectorResult, error) {
	if hi > maxBatchRow {
		return VectorResult{}, fmt.Errorf("exec: row %d exceeds int32 selection range", hi)
	}
	n := hi - lo
	if cap(e.mask) < n {
		e.mask = make([]bool, n)
	}
	mask := e.mask[:n]
	for i := range mask {
		mask[i] = true
	}
	c := e.cpu
	for _, op := range q.Ops {
		op.(*Predicate).evalMask(c, lo, hi, mask)
		c.Exec(maskCostInstr * n)
	}
	var res VectorResult
	if err := e.ensureSel(n); err != nil {
		return VectorResult{}, err
	}
	sel := e.selA[:0]
	for i, ok := range mask {
		if ok {
			sel = append(sel, int32(lo+i))
		}
	}
	res.Qualifying = int64(len(sel))
	if q.Agg != nil && len(sel) > 0 {
		res.Sum = e.batchAggregate(q.Agg, sel)
	}
	e.batchSort(sel)
	c.Exec(loopOverheadInstr * n)
	// The only branch: the loop back-edge, always taken.
	c.CondBranchN(len(q.Ops), true, n)
	return res, nil
}
