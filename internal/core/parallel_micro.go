package core

import (
	"progopt/internal/exec"
)

// ParallelMicroAdaptiveStats extends ParallelStats with the implementation
// decisions of the morsel-driven micro-adaptive driver.
type ParallelMicroAdaptiveStats struct {
	ParallelStats
	// BranchingVectors and BranchFreeVectors count vectors per scan
	// implementation across all cores.
	BranchingVectors, BranchFreeVectors int
	// ImplSwitches counts implementation changes (applied on every core).
	ImplSwitches int
}

// RunParallelMicroAdaptive is RunParallelProgressive extended with per-block
// implementation choice: at every block boundary the per-core PMU deltas are
// merged, selectivities estimated from the aggregate, operators reordered,
// and — when every operator is a plain predicate — the next block's scan
// implementation (branching v. branch-free) is chosen from the estimates.
// A chosen implementation applies to every core: the morsel scheduler keeps
// all cores inside the same compiled scan loop, so an implementation switch
// is a recompile on each core (predictor reset + recompile charge), exactly
// like a reorder.
//
// While running branch-free the merged counters carry no per-predicate
// branch signal, so the driver returns to the branching scan for one
// sampling block every few optimization points (the serial driver's
// resampling policy at block granularity). The coordination lives in
// BlockStepper, shared with RunParallelProgressive and the workload service.
//
// Query results are bit-identical to the serial micro-adaptive driver and
// deterministic across worker counts; cycle counts are makespans.
func RunParallelMicroAdaptive(p *exec.Parallel, q *exec.Query, opt Options) (exec.Result, ParallelMicroAdaptiveStats, error) {
	return runParallelAdaptive(p, q, opt, true)
}
