package progopt

import (
	"strings"
	"testing"
)

func TestExplain(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(30000, 15, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.BuildQ6(d)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rows != 30000 || plan.Table != "lineitem" {
		t.Fatalf("plan header wrong: %+v", plan)
	}
	if len(plan.Ops) != 5 {
		t.Fatalf("%d ops", len(plan.Ops))
	}
	// The first operator sees the whole table.
	if plan.Ops[0].EstimatedInput != 1 {
		t.Error("first op input fraction != 1")
	}
	// Input fractions decrease monotonically.
	for i := 1; i < len(plan.Ops); i++ {
		if plan.Ops[i].EstimatedInput > plan.Ops[i-1].EstimatedInput+1e-12 {
			t.Error("input fractions not non-increasing")
		}
		if plan.Ops[i].Kind != "predicate" {
			t.Errorf("op %d kind %q", i, plan.Ops[i].Kind)
		}
	}
	// Predicted output within a factor of the real run (correlated shipdate
	// and discount predicates break independence, so allow slack).
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PredictedQualifying <= 0 {
		t.Fatal("no predicted output")
	}
	ratio := float64(res.Qualifying) / plan.PredictedQualifying
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("predicted %v vs actual %d (ratio %v)", plan.PredictedQualifying, res.Qualifying, ratio)
	}
	// Predicted BNT within 2x of measured. Q6's shipdate and discount
	// predicate pairs share columns, so the independence products the
	// explain uses overestimate the survivors — exactly the §4.5
	// correlation error the progressive optimizer corrects at runtime.
	if measured := float64(res.Counters["br_not_taken"]); plan.PredictedBNT < measured*0.5 || plan.PredictedBNT > measured*2 {
		t.Errorf("predicted BNT %v vs measured %v", plan.PredictedBNT, measured)
	}
	s := plan.String()
	if !strings.Contains(s, "lineitem") || !strings.Contains(s, "predicted:") {
		t.Errorf("rendering incomplete: %q", s)
	}
}

// TestExplainFusedGolden pins the fused-pipeline rendering: batch engines
// report the single-pass kernel chain the plan collapses into, unfused and
// scalar engines report nothing.
func TestExplainFusedGolden(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(20000, 16, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.BuildPipeline(d,
		[]Predicate{{Column: "l_quantity", Op: CmpLT, Int: 25}},
		[]JoinSpec{{Build: "orders", FilterSelectivity: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := "filter+join [fused]"; plan.Pipeline != want {
		t.Errorf("pipeline = %q, want %q", plan.Pipeline, want)
	}
	if s := plan.String(); !strings.Contains(s, "\n  pipeline: filter+join [fused]\n") {
		t.Errorf("rendering lacks the pipeline line:\n%s", s)
	}

	q6, err := e.BuildQ6(d)
	if err != nil {
		t.Fatal(err)
	}
	plan6, err := e.Explain(q6)
	if err != nil {
		t.Fatal(err)
	}
	if want := "filter+filter+filter+filter+filter+agg [fused]"; plan6.Pipeline != want {
		t.Errorf("Q6 pipeline = %q, want %q", plan6.Pipeline, want)
	}

	qg, err := e.Compile(d, Scan("lineitem").
		Filter("l_discount", CmpGE, 0.05).
		GroupBy("l_quantity", "l_extendedprice"))
	if err != nil {
		t.Fatal(err)
	}
	plang, err := e.Explain(qg)
	if err != nil {
		t.Fatal(err)
	}
	if want := "filter+group [fused]"; plang.Pipeline != want {
		t.Errorf("grouped pipeline = %q, want %q", plang.Pipeline, want)
	}

	// Unfused and scalar engines run per-operator kernels: no pipeline line.
	for _, cfg := range []Config{
		{VectorSize: 1024, NoFuse: true},
		{VectorSize: 1024, ScalarExec: true},
	} {
		eu, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		du, err := eu.GenerateTPCH(20000, 16, OrderNatural)
		if err != nil {
			t.Fatal(err)
		}
		qu, err := eu.BuildQ6(du)
		if err != nil {
			t.Fatal(err)
		}
		planu, err := eu.Explain(qu)
		if err != nil {
			t.Fatal(err)
		}
		if planu.Pipeline != "" {
			t.Errorf("%+v: pipeline = %q, want none", cfg, planu.Pipeline)
		}
		if s := planu.String(); strings.Contains(s, "pipeline:") {
			t.Errorf("%+v: rendering has a pipeline line:\n%s", cfg, s)
		}
	}
}

func TestExplainWithJoin(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(20000, 16, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.BuildPipeline(d,
		[]Predicate{{Column: "l_quantity", Op: CmpLT, Int: 25}},
		[]JoinSpec{{Build: "orders", FilterSelectivity: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ops[0].Kind != "predicate" || plan.Ops[1].Kind != "join" {
		t.Errorf("op kinds wrong: %+v", plan.Ops)
	}
	if js := plan.Ops[1].TrueSelectivity; js < 0.4 || js > 0.6 {
		t.Errorf("join selectivity %v, want ~0.5", js)
	}
}
