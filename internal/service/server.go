package service

import (
	"fmt"
	"sort"
	"sync"

	"progopt/internal/core"
	"progopt/internal/exec"
	"progopt/internal/hw/cache"
	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
	"progopt/internal/trace"
)

// Mode mirrors the public execution modes.
type Mode int

// Execution modes.
const (
	ModeFixed Mode = iota
	ModeProgressive
	ModeMicroAdaptive
)

// Config configures a workload server.
type Config struct {
	// MaxActive is the admission controller's cap on queries sharing the
	// pool concurrently (default: the pool's worker count). Submissions
	// beyond it queue in (arrival, submission) order.
	MaxActive int
	// QueueLimit caps the pending queue; Submit rejects beyond it
	// (0 = unlimited).
	QueueLimit int
	// QuantumVectors is the scheduling quantum of fixed-order queries:
	// morsels per assigned core between scheduling decisions (default 10,
	// matching the progressive drivers' default re-optimization interval).
	// Adaptive queries schedule at their own optimization-block granularity.
	QuantumVectors int
	// FeedbackCacheSize bounds the PMU-feedback cache (default 64 plans).
	FeedbackCacheSize int
	// NoFuse disables the pool's fused batch kernels (see exec.Engine.SetFuse);
	// bit-identical either way, kept as the equivalence oracle.
	NoFuse bool
	// SerialRounds forces every scheduling round to execute its segments
	// serially on the host even on multi-core machines — the oracle the
	// host-concurrent rounds are pinned bit-identical against. Simulated
	// observables are unaffected either way; only host wall-clock changes.
	SerialRounds bool
}

// Request is one query submission.
type Request struct {
	// Query is the compiled, bound query (its operator order is the plan
	// order the optimizer starts from).
	Query *exec.Query
	// Groups, when non-nil, makes this a grouped aggregation: one partial
	// hash table per pool core. Grouped queries run exclusively (they own
	// the whole pool) and must use ModeFixed.
	Groups []*exec.GroupBy
	// Sorts, when non-nil, makes this an ordered (OrderBy/Limit) query: one
	// compiled sort state per pool core. Each core the scheduler assigns
	// collects qualifying tuples into its own partial heap or run buffer;
	// the first core of the final subset merges them at completion. Ordered
	// queries schedule like plain scans in every mode.
	Sorts []*exec.Sort
	// Storage, when non-nil, runs the query over a stored table: one
	// stored-scan state per pool core (shared skip bitmap, private tier
	// view), attached to every core a segment runs on. The tier is a pure
	// observer — it changes no simulated observable of this or any
	// co-scheduled query; its stall debt accumulates in the views' counters
	// for the caller to read out-of-band.
	Storage []*exec.StorageScan
	// Mode selects fixed, progressive, or micro-adaptive execution.
	Mode Mode
	// Opt configures the progressive optimizer for adaptive modes.
	Opt core.Options
	// Arrival is the simulated time the query arrives at the server; it
	// cannot consume core cycles earlier.
	Arrival uint64
	// Fingerprint keys the feedback cache. Zero disables feedback for this
	// submission.
	Fingerprint Fingerprint
	// NoFeedback skips the feedback warm-start lookup and the converged-
	// order store (cold runs, ablation experiments).
	NoFeedback bool
}

// Feedback is what a finished adaptive run leaves for the next submission of
// the same fingerprint: the operator order it converged to (plan-order
// indexes) and, for micro-adaptive runs, the scan implementation it ended
// on. A warm-started run begins at this order instead of the plan order.
type Feedback struct {
	Order []int
	Impl  exec.ScanImpl
}

// Stats counts server activity. All times are simulated.
type Stats struct {
	// Submitted/Admitted/Rejected/Completed count queries through the
	// admission controller.
	Submitted, Admitted, Rejected, Completed int
	// PeakActive and PeakQueued are high-water marks.
	PeakActive, PeakQueued int
	// FeedbackWarmStarts counts submissions that began at a cached
	// converged order; FeedbackStores counts completed adaptive runs that
	// deposited one.
	FeedbackWarmStarts, FeedbackStores int
	// MakespanCycles is the largest per-core clock: the simulated time the
	// pool has been driven to.
	MakespanCycles uint64
}

// Outcome reports one completed query.
type Outcome struct {
	// Result carries the per-query output: Qualifying, Sum, Counters (the
	// PMU deltas of exactly this query's morsels and coordination), and
	// Cycles/Millis as the query's execution span on its cores — for a
	// query that had the pool to itself, bit-identical to a dedicated
	// Engine run.
	exec.Result
	// Groups is the grouped-aggregation output (nil for plain scans).
	Groups []exec.Group
	// Sorted is the ordered output of an OrderBy/Limit query (nil
	// otherwise).
	Sorted []exec.SortedRow
	// Stats is the optimizer telemetry (zero-valued under ModeFixed);
	// FinalOrder is in plan-order indexes even after a warm start.
	Stats core.ParallelMicroAdaptiveStats
	// Arrival, Start, and Done are simulated timestamps; Done-Arrival is
	// the query's latency including queueing, Start-Arrival the queueing
	// delay alone.
	Arrival, Start, Done uint64
	// WarmStarted reports a feedback-cache warm start; WarmOrder is the
	// order it began at.
	WarmStarted bool
	WarmOrder   []int
}

// query states.
const (
	stateQueued = iota
	stateActive
	stateDone
)

// segScratch is one query's reusable segment-execution scratch: the per-driver
// block-run context plus the clock/engine/PMU snapshots a segment carries
// between its locked begin phase and the round barrier. Recycled through the
// server's freelist at completion, so steady-state rounds allocate nothing.
type segScratch struct {
	brun       *exec.BlockRun
	clocks     []uint64
	engines    []*exec.Engine
	coordStart []pmu.Sample
}

// query is the scheduler's per-submission state.
type query struct {
	seq      int
	req      Request
	base     *exec.Query // req.Query, reordered on a warm start
	warm     []int       // applied warm order (nil = cold)
	warmImpl exec.ScanImpl
	step     *core.BlockStepper // nil for fixed-order and grouped queries

	// optReal/optStage stage the optimizer trace: the stepper writes its
	// decision events into the private stage, and the round barrier splices
	// the stage into the real track in active order — the exact append order
	// the serial scheduler produces, even when segments ran host-concurrent.
	optReal  *trace.Track
	optStage *trace.Track

	// sorts holds the per-pool-core sort collectors of an ordered query
	// (indexed by core id; attached to the subset's engines per segment).
	sorts  []*exec.SortRun
	sorted []exec.SortedRow

	numVec, cursor int
	cores          []int // current core subset, ascending; empty = descheduled

	// Segment-execution plumbing: sc is the recycled scratch, fn the
	// prebuilt closure the host pool runs (allocated once per query), and
	// segErr/segPanic carry the unlocked phase's failure to the barrier.
	sc          *segScratch
	fn          func()
	segErr      error
	segPanic    any
	segPanicked bool
	// finished/finDone mark a segment that completed its query; the barrier
	// turns them into finishLocked under the lock.
	finished bool
	finDone  uint64

	// cond parks Ticket.Wait callers while another waiter drives rounds;
	// waiters counts sleepers for the driver handoff.
	cond    *sync.Cond
	waiters int

	startSet             bool
	arrival, start, done uint64
	busy                 uint64
	millis               float64
	counters             pmu.Sample
	qual                 int64
	sum                  float64
	vectors              int
	groups               []exec.Group
	st                   core.ParallelMicroAdaptiveStats

	state int
	err   error
}

func (q *query) grouped() bool { return len(q.req.Groups) > 0 }

// Server runs many concurrent queries against one shared pool of simulated
// cores as a discrete-event simulation: per-core absolute clocks, morsel
// dispensing to the earliest-free core of each query's subset, and a fair
// partitioner that splits the pool across active queries (re-partitioned
// whenever admissions or completions change the active set; rotated every
// round when queries outnumber cores). A core switching to a different
// query starts cold (cache flush + predictor reset), modeling the JIT'd
// per-query scan loop — so a query that has the pool to itself executes
// exactly like a dedicated engine run.
//
// There is no background goroutine and no host time anywhere: Ticket.Wait
// elects one waiter to drive scheduling rounds while the others park on
// per-ticket condition variables. Within a round the elected driver releases
// the lock and executes the scheduled queries' segments concurrently on the
// host (their core subsets are disjoint, so segments share no simulated
// state); every cross-query structure — the clock frontier, the feedback
// cache, admission stats, the service and optimizer trace tracks — is read
// in the locked admission phase and written at the locked round barrier, in
// admission order. A fixed submission trace therefore yields bit-identical
// results, latencies, and makespan on every run, from any number of waiting
// goroutines, at any GOMAXPROCS — only host wall-clock changes.
type Server struct {
	mu   sync.Mutex
	pool *exec.Parallel
	prof cpu.Profile
	cfg  Config

	clock []uint64 // absolute simulated time each core is next free
	owner []*query // query each core last executed (cold-switch detection)

	// pubClock is the round-barrier-published copy of clock: Stats and Now
	// read it without waiting on an in-flight round.
	pubClock []uint64

	queue  []*query // waiting, sorted by (arrival, seq)
	active []*query // admitted, in admission order
	seq    int
	rounds uint64

	membershipChanged bool

	// driving is true while an elected waiter runs a scheduling round; the
	// lock itself is released during the round's execution phase, so
	// operations that would touch engine state (BindQuery, SetTrace, Close)
	// park on idle until the round retires.
	driving bool
	idle    *sync.Cond

	// Round scratch, reused every round so steady-state serving allocates
	// nothing: sched is the round's scheduled-query snapshot, fns the
	// segment closures handed to the host pool, doneRound the queries whose
	// waiters need waking, scratchFree the segScratch freelist, and storSeen
	// the shared-storage-set detector's map.
	sched       []*query
	fns         []func()
	doneRound   []*query
	scratchFree []*segScratch
	storSeen    map[*cache.StorageSet]*query

	feedback *LRU
	stats    Stats

	// tr, when non-nil, receives admission and scheduling events (submit,
	// admit, warm-start, done), stamped with simulated clocks and appended
	// only under mu — a pure observer of the deterministic simulation.
	tr *trace.Track
}

// New builds a server with its own pool of worker cores of the given
// profile (fresh cores; queries must be bound into the shared address-space
// convention, e.g. via an engine's BindQuery or the server's).
func New(prof cpu.Profile, workers, vectorSize int, scalar bool, cfg Config) (*Server, error) {
	if workers <= 0 {
		workers = 1
	}
	p, err := exec.NewParallel(prof, workers, vectorSize)
	if err != nil {
		return nil, err
	}
	p.SetScalar(scalar)
	p.SetFuse(!cfg.NoFuse)
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = workers
	}
	if cfg.QuantumVectors <= 0 {
		cfg.QuantumVectors = 10
	}
	if cfg.FeedbackCacheSize <= 0 {
		cfg.FeedbackCacheSize = 64
	}
	s := &Server{
		pool:              p,
		prof:              prof,
		cfg:               cfg,
		clock:             make([]uint64, workers),
		owner:             make([]*query, workers),
		pubClock:          make([]uint64, workers),
		membershipChanged: true,
		feedback:          NewLRU(cfg.FeedbackCacheSize),
	}
	s.idle = sync.NewCond(&s.mu)
	return s, nil
}

// Workers returns the pool size.
func (s *Server) Workers() int { return s.pool.Workers() }

// SetTrace attaches (or, with nils, detaches) event tracks: svc receives the
// server's admission and scheduling events, cores the per-pool-core execution
// spans (passed through to the pool; shorter slices detach the remainder).
// Tracing is a pure observer — it charges no simulated work, so traced and
// untraced serves are bit-identical in every outcome and clock.
func (s *Server) SetTrace(svc *trace.Track, cores []*trace.Track) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.driving {
		s.idle.Wait()
	}
	s.tr = svc
	s.pool.SetTrace(cores)
}

// Close releases the pool's host worker goroutines, if any were started
// (multi-core hosts only; see exec.Parallel.Close). The server must be
// drained first.
func (s *Server) Close() {
	s.mu.Lock()
	for s.driving {
		s.idle.Wait()
	}
	s.mu.Unlock()
	s.pool.Close()
}

// BindQuery binds a query's columns through the pool's address space (no-op
// for columns an engine already bound).
func (s *Server) BindQuery(q *exec.Query) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.driving {
		s.idle.Wait()
	}
	return s.pool.BindQuery(q)
}

// Now returns the earliest simulated time any core can take new work — the
// default arrival stamp for submissions that do not carry one. Reads the
// round-barrier-published clock, so it never waits on an in-flight round.
func (s *Server) Now() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	min := s.pubClock[0]
	for _, cl := range s.pubClock[1:] {
		if cl < min {
			min = cl
		}
	}
	return min
}

// Stats snapshots the server counters. Reads the round-barrier-published
// clock, so it never waits on an in-flight round.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	for _, cl := range s.pubClock {
		if cl > st.MakespanCycles {
			st.MakespanCycles = cl
		}
	}
	return st
}

// Ticket is the handle to one submission.
type Ticket struct {
	s *Server
	q *query
}

// Submit enqueues a query. The call only validates, consults the feedback
// cache, and queues; execution happens inside Ticket.Wait's scheduling
// rounds. Submissions are ordered by (Arrival, submission sequence); for a
// deterministic workload, submit the trace in order before (or while)
// waiting.
func (s *Server) Submit(req Request) (*Ticket, error) {
	if req.Query == nil {
		return nil, fmt.Errorf("service: Submit needs a query")
	}
	switch req.Mode {
	case ModeFixed, ModeProgressive, ModeMicroAdaptive:
	default:
		return nil, fmt.Errorf("service: unknown mode %d", int(req.Mode))
	}
	if err := req.Query.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(req.Groups) > 0 {
		if req.Mode != ModeFixed {
			return nil, fmt.Errorf("service: grouped queries must use ModeFixed")
		}
		if len(req.Groups) != s.pool.Workers() {
			return nil, fmt.Errorf("service: %d partial group tables for a %d-core pool", len(req.Groups), s.pool.Workers())
		}
		if len(req.Sorts) > 0 {
			return nil, fmt.Errorf("service: a query cannot both group and sort")
		}
	}
	if len(req.Sorts) > 0 && len(req.Sorts) != s.pool.Workers() {
		return nil, fmt.Errorf("service: %d partial sort states for a %d-core pool", len(req.Sorts), s.pool.Workers())
	}
	if len(req.Storage) > 0 && len(req.Storage) != s.pool.Workers() {
		return nil, fmt.Errorf("service: %d stored-scan states for a %d-core pool", len(req.Storage), s.pool.Workers())
	}
	s.stats.Submitted++
	if s.cfg.QueueLimit > 0 && len(s.queue) >= s.cfg.QueueLimit {
		s.stats.Rejected++
		return nil, fmt.Errorf("service: queue full (%d pending, limit %d)", len(s.queue), s.cfg.QueueLimit)
	}
	q := &query{seq: s.seq, req: req, arrival: req.Arrival, state: stateQueued}
	s.seq++

	i := sort.Search(len(s.queue), func(i int) bool {
		o := s.queue[i]
		return o.arrival > q.arrival || (o.arrival == q.arrival && o.seq > q.seq)
	})
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = q
	if len(s.queue) > s.stats.PeakQueued {
		s.stats.PeakQueued = len(s.queue)
	}
	if s.tr != nil {
		s.tr.Instant("submit", q.arrival,
			trace.A("seq", q.seq), trace.A("mode", modeName(req.Mode)),
			trace.A("queued", len(s.queue)))
	}
	return &Ticket{s: s, q: q}, nil
}

// modeName renders an execution mode for trace args.
func modeName(m Mode) string {
	switch m {
	case ModeProgressive:
		return "progressive"
	case ModeMicroAdaptive:
		return "micro-adaptive"
	default:
		return "fixed"
	}
}

// Wait drives scheduling rounds until the ticket's query completes and
// returns its outcome. Safe to call from any goroutine: one waiter is
// elected to drive each round while the others park on their tickets'
// condition variables, so the simulation advances exactly once per round
// no matter how many goroutines wait — and which goroutine happens to drive
// cannot influence any simulated observable.
func (t *Ticket) Wait() (Outcome, error) {
	s := t.s
	q := t.q
	s.mu.Lock()
	defer s.mu.Unlock()
	for q.state != stateDone {
		if s.driving {
			if q.cond == nil {
				q.cond = sync.NewCond(&s.mu)
			}
			q.waiters++
			q.cond.Wait()
			q.waiters--
			continue
		}
		s.driving = true
		completed := false
		func() {
			defer func() {
				s.driving = false
				s.idle.Broadcast()
				if completed {
					s.wakeDoneLocked()
				} else {
					// A panic escaped the round; wake every waiter so no
					// goroutine parks forever behind the poisoned server.
					s.wakeAllLocked()
				}
			}()
			if err := s.driveRound(); err != nil {
				s.failAllLocked(err)
			}
			completed = true
		}()
	}
	s.handoffLocked()
	if q.err != nil {
		return Outcome{}, q.err
	}
	return q.outcome(), nil
}

// wakeDoneLocked wakes the waiters of every query that completed (or failed)
// during the round that just retired.
func (s *Server) wakeDoneLocked() {
	for i, q := range s.doneRound {
		if q.cond != nil {
			q.cond.Broadcast()
		}
		s.doneRound[i] = nil
	}
	s.doneRound = s.doneRound[:0]
}

// wakeAllLocked wakes every parked waiter (panic path).
func (s *Server) wakeAllLocked() {
	for _, q := range s.active {
		if q.cond != nil {
			q.cond.Broadcast()
		}
	}
	for _, q := range s.queue {
		if q.cond != nil {
			q.cond.Broadcast()
		}
	}
	s.doneRound = s.doneRound[:0]
}

// handoffLocked hands the driver role to a parked waiter when a Wait call
// returns: if nobody is driving and some ticket still has sleepers, one is
// signalled so it can wake up, observe driving == false, and take over.
func (s *Server) handoffLocked() {
	if s.driving {
		return
	}
	for _, q := range s.active {
		if q.waiters > 0 && q.cond != nil {
			q.cond.Signal()
			return
		}
	}
	for _, q := range s.queue {
		if q.waiters > 0 && q.cond != nil {
			q.cond.Signal()
			return
		}
	}
}

// WarmStarted reports whether the submission began at a feedback-cached
// order, and that order. The decision is made when the admission controller
// activates the query (the latest point the feedback of completed runs is
// visible), so it reads false until then. Admission happens under the lock
// at the start of a round, so this never waits on an in-flight round's
// execution phase.
func (t *Ticket) WarmStarted() (bool, []int) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.q.warm == nil {
		return false, nil
	}
	return true, append([]int(nil), t.q.warm...)
}

// outcome flattens a finished query.
func (q *query) outcome() Outcome {
	return Outcome{
		Result: exec.Result{
			Qualifying: q.qual,
			Sum:        q.sum,
			Cycles:     q.busy,
			Millis:     q.millis,
			Counters:   q.counters,
			Vectors:    q.vectors,
		},
		Groups:      q.groups,
		Sorted:      q.sorted,
		Stats:       q.st,
		Arrival:     q.arrival,
		Start:       q.start,
		Done:        q.done,
		WarmStarted: q.warm != nil,
		WarmOrder:   append([]int(nil), q.warm...),
	}
}

// failAllLocked marks every unfinished query failed — scheduler errors
// (estimator failures, invalid permutations) poison the shared simulation —
// and wakes all their waiters.
func (s *Server) failAllLocked(err error) {
	for _, q := range s.active {
		q.err = err
		q.state = stateDone
		if q.cond != nil {
			q.cond.Broadcast()
		}
	}
	for _, q := range s.queue {
		q.err = err
		q.state = stateDone
		if q.cond != nil {
			q.cond.Broadcast()
		}
	}
	s.active = s.active[:0]
	s.queue = s.queue[:0]
}

// driveRound runs one scheduling round. Called (and returns) with s.mu held;
// the lock is released during the execution phase, in which the scheduled
// queries' segments run concurrently on the host via the pool's segment
// drivers — or serially, in admission order, when the round's queries share
// a storage-tier set (whose LRU order must follow the serial schedule) or
// Config.SerialRounds demands the oracle path. Both paths retire at the same
// locked barrier, which publishes clocks, completes finished queries, and
// splices staged optimizer traces in admission order — so every simulated
// observable is a pure function of the submission trace.
func (s *Server) driveRound() error {
	s.admitLocked()
	if len(s.active) == 0 {
		return fmt.Errorf("service: scheduler round with no admissible work")
	}
	if s.membershipChanged || len(s.active) > len(s.clock) {
		s.partitionLocked()
	}
	s.sched = s.sched[:0]
	for _, q := range s.active {
		if len(q.cores) == 0 {
			continue
		}
		s.segmentBeginLocked(q)
		s.sched = append(s.sched, q)
	}
	serial := s.cfg.SerialRounds || s.sharedStorageLocked()
	s.mu.Unlock()
	relocked := false
	defer func() {
		if !relocked {
			s.mu.Lock()
		}
	}()
	if serial {
		for _, q := range s.sched {
			s.segmentRun(q)
		}
	} else {
		s.fns = s.fns[:0]
		for _, q := range s.sched {
			s.fns = append(s.fns, q.fn)
		}
		s.pool.RunSegments(s.fns)
	}
	s.mu.Lock()
	relocked = true
	if err := s.barrierLocked(); err != nil {
		return err
	}
	kept := s.active[:0]
	for _, q := range s.active {
		if q.state == stateDone {
			s.membershipChanged = true
			continue
		}
		kept = append(kept, q)
	}
	s.active = kept
	s.rounds++
	return nil
}

// sharedStorageLocked reports whether two scheduled queries would touch the
// same storage-tier set this round. The tier's LRU is ordered by fetch
// sequence, so a set reachable from two concurrent segments would resolve
// its residency by host arrival order; such rounds fall back to serial
// execution (per-core sets attached by at most one query are fine — core
// subsets are disjoint).
func (s *Server) sharedStorageLocked() bool {
	if len(s.sched) < 2 {
		return false
	}
	stored := 0
	for _, q := range s.sched {
		if q.req.Storage != nil {
			stored++
		}
	}
	if stored < 2 {
		return false
	}
	if s.storSeen == nil {
		s.storSeen = make(map[*cache.StorageSet]*query)
	}
	clear(s.storSeen)
	for _, q := range s.sched {
		if q.req.Storage == nil {
			continue
		}
		for _, w := range q.cores {
			set := q.req.Storage[w].Set
			if set == nil {
				continue
			}
			if o, ok := s.storSeen[set]; ok && o != q {
				return true
			}
			s.storSeen[set] = q
		}
	}
	return false
}

// admitLocked moves queued queries into the active set up to MaxActive,
// honoring simulated arrival times: a query is admitted only once the
// pool's clock frontier has reached its arrival — activating it earlier
// would reserve (and fast-forward) cores for work that has not arrived,
// inflating the latency of queries that have. An idle pool jumps straight
// to the next arrival. Grouped queries run exclusively: one is admitted
// only into an empty pool, and blocks further admissions until it
// completes.
func (s *Server) admitLocked() {
	if len(s.active) == 1 && s.active[0].grouped() {
		return
	}
	// The frontier is the earliest time any core can take new work; while
	// queries are active every core is in some subset, so it advances each
	// round.
	now := s.clock[0]
	for _, cl := range s.clock[1:] {
		if cl < now {
			now = cl
		}
	}
	if len(s.active) == 0 && len(s.queue) > 0 && s.queue[0].arrival > now {
		now = s.queue[0].arrival
	}
	for len(s.queue) > 0 && len(s.active) < s.cfg.MaxActive {
		head := s.queue[0]
		if head.arrival > now {
			break
		}
		if head.grouped() && len(s.active) > 0 {
			break
		}
		s.queue = s.queue[1:]
		if err := s.prepareLocked(head); err != nil {
			head.err = err
			head.state = stateDone
			s.doneRound = append(s.doneRound, head)
			continue
		}
		head.state = stateActive
		s.active = append(s.active, head)
		s.stats.Admitted++
		s.membershipChanged = true
		if len(s.active) > s.stats.PeakActive {
			s.stats.PeakActive = len(s.active)
		}
		if s.tr != nil {
			s.tr.Instant("admit", now,
				trace.A("seq", head.seq), trace.A("active", len(s.active)),
				trace.A("queued", len(s.queue)))
			if head.warm != nil {
				s.tr.Instant("warm-start", now,
					trace.A("seq", head.seq), trace.A("order", head.warm),
					trace.A("impl", head.warmImpl == exec.ImplBranchFree))
			}
		}
		if head.grouped() {
			break
		}
	}
}

// prepareLocked readies a query for execution at admission time: consult
// the feedback cache — admission, not submission, is when the latest
// completed run of the same fingerprint is visible, exactly like a real
// server racing recurring queries — apply the warm-start order, build the
// optimizer stepper for adaptive modes (writing its trace into a private
// stage the round barrier splices), and hand the query its recycled
// segment scratch.
func (s *Server) prepareLocked(q *query) error {
	req := q.req
	base := req.Query
	if req.Mode != ModeFixed && !req.NoFeedback && !req.Fingerprint.Zero() {
		if v, ok := s.feedback.Get(req.Fingerprint); ok {
			fb := v.(Feedback)
			if wq, err := req.Query.WithOrder(fb.Order); err == nil {
				base = wq
				q.warm = append([]int(nil), fb.Order...)
				q.warmImpl = fb.Impl
				s.stats.FeedbackWarmStarts++
			}
		}
	}
	q.base = base
	q.numVec = s.pool.NumVectors(base)
	if len(req.Sorts) > 0 {
		q.sorts = make([]*exec.SortRun, len(req.Sorts))
		for i, st := range req.Sorts {
			q.sorts[i] = exec.NewSortRun(st)
		}
	}
	if req.Mode == ModeProgressive || req.Mode == ModeMicroAdaptive {
		opt := req.Opt
		if opt.Trace != nil {
			q.optReal = opt.Trace
			q.optStage = trace.NewStage()
			opt.Trace = q.optStage
		}
		step, err := core.NewBlockStepper(base, s.prof, s.pool.Workers(), req.Mode == ModeMicroAdaptive, opt)
		if err != nil {
			return err
		}
		if q.warm != nil {
			step.SetImpl(q.warmImpl)
		}
		q.step = step
	}
	if n := len(s.scratchFree); n > 0 {
		q.sc = s.scratchFree[n-1]
		s.scratchFree[n-1] = nil
		s.scratchFree = s.scratchFree[:n-1]
	} else {
		q.sc = &segScratch{brun: s.pool.NewBlockRun()}
	}
	q.fn = func() { s.segmentRun(q) }
	return nil
}

// partitionLocked splits the pool's cores across the active queries: every
// query gets floor(W/Q) cores and the first W mod Q (in admission order) one
// extra; when queries outnumber cores, a rotating window of W queries gets
// one core each so no query starves. Subsets are contiguous, ascending, and
// stable while the active set is unchanged — a lone query therefore keeps
// all cores for its whole run.
func (s *Server) partitionLocked() {
	W := len(s.clock)
	Q := len(s.active)
	for _, q := range s.active {
		q.cores = q.cores[:0]
	}
	s.membershipChanged = false
	if Q == 0 {
		return
	}
	base := W / Q
	if base == 0 {
		off := int(s.rounds % uint64(Q))
		for i := 0; i < W; i++ {
			q := s.active[(off+i)%Q]
			q.cores = append(q.cores, i)
		}
		return
	}
	extra := W % Q
	w := 0
	for qi, q := range s.active {
		k := base
		if qi < extra {
			k++
		}
		for j := 0; j < k; j++ {
			q.cores = append(q.cores, w)
			w++
		}
	}
}

// segmentBeginLocked is the locked prologue of one query's segment: resolve
// cold context switches, clamp the subset's clocks to the arrival, attach
// the query's sort collectors and tier views to its cores, and snapshot the
// subset's entry clocks into the query's scratch. Everything the unlocked
// execution phase touches afterwards is owned by this query alone.
func (s *Server) segmentBeginLocked(q *query) {
	// Cold context switch: a core picking up a different query than it last
	// ran flushes its caches and resets its predictor (per-query JIT'd scan
	// loops share no code or hot data), and a core can never run a query
	// before it arrived.
	engines := s.pool.Engines()
	for _, w := range q.cores {
		if s.owner[w] != q {
			c := engines[w].CPU()
			c.FlushCaches()
			c.ResetPredictor()
			s.owner[w] = q
		}
		if s.clock[w] < q.arrival {
			s.clock[w] = q.arrival
		}
	}
	// An ordered query's collectors ride along on whichever cores this
	// segment runs on; they are detached at the barrier because the
	// partitioner may hand the same cores to a different query next round.
	if q.sorts != nil {
		for _, w := range q.cores {
			engines[w].SetSortRun(q.sorts[w])
		}
	}
	// A stored query's tier views ride along the same way.
	if q.req.Storage != nil {
		for _, w := range q.cores {
			engines[w].SetStorage(q.req.Storage[w])
		}
	}
	sc := q.sc
	if cap(sc.clocks) < len(q.cores) {
		sc.clocks = make([]uint64, len(q.cores))
	}
	sc.clocks = sc.clocks[:len(q.cores)]
	for i, w := range q.cores {
		sc.clocks[i] = s.clock[w]
	}
	q.segErr = nil
	q.segPanic, q.segPanicked = nil, false
}

// segmentRun executes one query's segment without the server lock: it
// touches only the query's own cores, scratch, and staged trace. Failures
// are parked on the query for the barrier, so every scheduled segment runs
// to its own completion or failure and the barrier surfaces the first one
// in admission order — deterministically, regardless of host interleaving.
func (s *Server) segmentRun(q *query) {
	defer func() {
		if r := recover(); r != nil {
			q.segPanic, q.segPanicked = r, true
		}
	}()
	switch {
	case q.grouped():
		q.segErr = s.segmentGrouped(q)
	case q.step != nil:
		q.segErr = s.segmentAdaptive(q)
	default:
		q.segErr = s.segmentFixed(q)
	}
}

// barrierLocked retires the round: in admission order, surface failures,
// publish each segment's end clocks into the shared frontier, complete
// finished queries (stats, feedback, service-track span), and splice each
// query's staged optimizer events into the real track — the same per-track
// append order the fully serial scheduler produces. Finally the frontier is
// published for lock-free-in-spirit Stats/Now readers.
func (s *Server) barrierLocked() error {
	engines := s.pool.Engines()
	for _, q := range s.sched {
		if q.sorts != nil {
			for _, w := range q.cores {
				engines[w].SetSortRun(nil)
			}
		}
		if q.req.Storage != nil {
			for _, w := range q.cores {
				engines[w].SetStorage(nil)
			}
		}
	}
	for _, q := range s.sched {
		if q.segPanicked {
			panic(q.segPanic)
		}
		if q.segErr != nil {
			return q.segErr
		}
		for i, w := range q.cores {
			s.clock[w] = q.sc.clocks[i]
		}
		if q.finished {
			q.finished = false
			s.finishLocked(q, q.finDone)
		}
		if q.optStage != nil {
			q.optReal.Splice(q.optStage)
		}
	}
	copy(s.pubClock, s.clock)
	return nil
}

// finalizeSort runs the sort merge of a completed ordered query on the
// first core of its final subset: the subset barriers at bar (every core
// must finish scanning before its partial state is readable), the
// coordinator merges and emits, and every subset clock advances to the
// merge's end — the same makespan-extension contract as the grouped
// aggregation's table merge and the dedicated Engine.Exec path.
func (s *Server) finalizeSort(q *query, bar uint64) uint64 {
	w0 := q.cores[0]
	c := s.pool.Engines()[w0].CPU()
	s0 := c.Sample()
	c0 := c.Cycles()
	q.sorted = exec.FinalizeSort(c, w0, q.sorts)
	d := c.Cycles() - c0
	q.counters = q.counters.Add(c.Sample().Sub(s0))
	t1 := bar + d
	for i := range q.sc.clocks {
		q.sc.clocks[i] = t1
	}
	return t1
}

// segmentFixed runs one quantum of a fixed-order query: QuantumVectors
// morsels per assigned core, dispensed to the earliest-free core with
// clocks carried across segments — so an uninterrupted run is one seamless
// morsel stream, exactly a dedicated Parallel.Run.
func (s *Server) segmentFixed(q *query) error {
	sc := q.sc
	v1 := q.cursor + s.cfg.QuantumVectors*len(q.cores)
	if v1 > q.numVec {
		v1 = q.numVec
	}
	if !q.startSet {
		q.startSet = true
		q.start = sc.clocks[0]
		for _, cl := range sc.clocks[1:] {
			if cl < q.start {
				q.start = cl
			}
		}
	}
	// Accumulate the aggregate directly into q.sum so splitting the scan
	// into quanta keeps the exact float addition order of a dedicated run.
	br, err := sc.brun.RunBlockSubset(q.base, q.cursor, v1, q.cores, sc.clocks, exec.ImplBranching, &q.sum)
	if err != nil {
		return err
	}
	q.counters = q.counters.Add(br.Counters)
	q.qual += br.Qualifying
	q.vectors += br.Vectors
	q.cursor = v1
	if q.cursor == q.numVec {
		done := sc.clocks[0]
		for _, cl := range sc.clocks[1:] {
			if cl > done {
				done = cl
			}
		}
		if q.sorts != nil {
			done = s.finalizeSort(q, done)
		}
		q.busy = done - q.start
		q.finished, q.finDone = true, done
	}
	return nil
}

// segmentAdaptive runs one optimization block of a progressive or
// micro-adaptive query: barrier the subset, execute ReopInterval morsels per
// core, then let the BlockStepper validate/estimate/reorder on the subset's
// coordinator — the same per-block protocol as the dedicated parallel
// drivers, so a lone query reproduces Engine.Exec cycle for cycle.
func (s *Server) segmentAdaptive(q *query) error {
	sc := q.sc
	var t0 uint64
	for _, cl := range sc.clocks {
		if cl > t0 {
			t0 = cl
		}
	}
	if !q.startSet {
		q.startSet = true
		q.start = t0
	}
	blockVecs := q.step.BlockVectors(len(q.cores))
	if blockVecs <= 0 {
		blockVecs = s.cfg.QuantumVectors * len(q.cores)
	}
	if blockVecs <= 0 {
		blockVecs = 1
	}
	v1 := q.cursor + blockVecs
	if v1 > q.numVec {
		v1 = q.numVec
	}
	for i := range sc.clocks {
		sc.clocks[i] = t0
	}
	// The external accumulator mirrors the dedicated adaptive drivers'
	// block loop bit for bit: per-vector addition order into q.sum,
	// regardless of block or scheduling-quantum boundaries.
	br, err := sc.brun.RunBlockSubset(q.step.Query(), q.cursor, v1, q.cores, sc.clocks, q.step.Impl(), &q.sum)
	if err != nil {
		return err
	}
	if cap(sc.engines) < len(q.cores) {
		sc.engines = make([]*exec.Engine, len(q.cores))
		sc.coordStart = make([]pmu.Sample, len(q.cores))
	}
	engines := sc.engines[:len(q.cores)]
	coordStart := sc.coordStart[:len(q.cores)]
	for i, w := range q.cores {
		engines[i] = s.pool.Engines()[w]
		coordStart[i] = engines[i].CPU().Sample()
	}
	vs := s.pool.VectorSize()
	n := q.base.Table.NumRows()
	tuples := v1*vs - q.cursor*vs
	if v1*vs > n {
		tuples = n - q.cursor*vs
	}
	last := v1 == q.numVec
	extra, err := q.step.AfterBlock(br, tuples, last, engines[0].CPU(), engines)
	if err != nil {
		return err
	}
	q.counters = q.counters.Add(br.Counters)
	for i, e := range engines {
		q.counters = q.counters.Add(e.CPU().Sample().Sub(coordStart[i]))
	}
	t1 := t0 + br.MaxCycles + extra
	for i := range sc.clocks {
		sc.clocks[i] = t1
	}
	q.busy += br.MaxCycles + extra
	q.qual += br.Qualifying
	q.vectors += br.Vectors
	q.cursor = v1
	if last {
		if q.sorts != nil {
			t0 := t1
			t1 = s.finalizeSort(q, t1)
			q.busy += t1 - t0
		}
		q.finished, q.finDone = true, t1
	}
	return nil
}

// segmentGrouped runs a grouped aggregation exclusively on the whole pool
// (admission guarantees it is the sole active query): barrier all cores,
// run the morsel-driven partial-table aggregation, and advance every clock
// by its makespan.
func (s *Server) segmentGrouped(q *query) error {
	sc := q.sc
	var t0 uint64
	for _, cl := range sc.clocks {
		if cl > t0 {
			t0 = cl
		}
	}
	q.startSet = true
	q.start = t0
	res, err := s.pool.RunGroupBy(q.base, q.req.Groups)
	if err != nil {
		return err
	}
	q.counters = res.Counters
	q.qual = res.Qualifying
	q.vectors = res.Vectors
	q.groups = res.Groups
	q.busy = res.Cycles
	t1 := t0 + res.Cycles
	for i := range sc.clocks {
		sc.clocks[i] = t1
	}
	q.finished, q.finDone = true, t1
	return nil
}

// finishLocked completes a query: stamp times, snapshot optimizer stats
// (FinalOrder mapped back to plan-order indexes after a warm start), deposit
// the converged order in the feedback cache, recycle the segment scratch,
// and queue the waiter wake-up.
func (s *Server) finishLocked(q *query, done uint64) {
	q.done = done
	q.state = stateDone
	q.millis = s.pool.Engines()[0].CPU().MillisOf(q.busy)
	if q.step != nil {
		q.step.TraceFinal()
		q.st = q.step.Stats()
		q.st.Vectors = q.vectors
		if q.warm != nil {
			abs := make([]int, len(q.st.FinalOrder))
			for i, o := range q.st.FinalOrder {
				abs[i] = q.warm[o]
			}
			q.st.FinalOrder = abs
		}
		if !q.req.NoFeedback && !q.req.Fingerprint.Zero() {
			s.feedback.Put(q.req.Fingerprint, Feedback{
				Order: append([]int(nil), q.st.FinalOrder...),
				Impl:  q.step.Impl(),
			})
			s.stats.FeedbackStores++
		}
	}
	if q.sc != nil {
		s.scratchFree = append(s.scratchFree, q.sc)
		q.sc = nil
	}
	s.doneRound = append(s.doneRound, q)
	s.stats.Completed++
	if s.tr != nil {
		s.tr.Span("query", q.start, done,
			trace.A("seq", q.seq), trace.A("latency", done-q.arrival),
			trace.A("queue_wait", q.start-q.arrival), trace.A("qual", q.qual))
	}
}
