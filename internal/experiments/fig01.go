package experiments

import (
	"fmt"
	"math"

	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// Fig01 reproduces Figure 1: the cost ratio between the worst and the best
// of the 24 PEOs of the modified Q6, as the shipdate predicate's selectivity
// sweeps from 1e-4 % to 100 %.
func Fig01(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	rows := cfg.Lineitems
	if max := 100 * cfg.VectorSize; rows > max {
		rows = max // the ratio is scale-free; keep the sweep fast
	}
	d, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	// Randomly ordered data keeps per-run selectivity stationary, matching
	// the paper's single-number-per-selectivity presentation.
	d = d.ReorderLineitem(tpch.OrderingRandom, cfg.Seed+1)

	sels := []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0}
	if cfg.Quick {
		sels = []float64{1e-4, 1e-2, 0.5}
	}
	r, err := newRig(cpu.ScaledXeon(), cfg)
	if err != nil {
		return nil, err
	}
	perms := exec.Permutations(4)

	rep := &Report{
		ID:      "fig01",
		Title:   "Best v. Worst plan cost for TPC-H Query 6 (modified, 4 predicates)",
		Columns: []string{"shipdate_sel_pct", "worst_best_ratio", "best_ms", "worst_ms", "best_peo", "worst_peo"},
		Notes: []string{
			fmt.Sprintf("%d lineitems, all 24 PEOs per selectivity, simulated cycles at 2.6 GHz", rows),
		},
	}
	for _, sel := range sels {
		cutoff := d.ShipdateCutoff(sel)
		q, err := exec.Q6Shipdate(d, cutoff)
		if err != nil {
			return nil, err
		}
		if err := r.bind(q); err != nil {
			return nil, err
		}
		best, worst := math.Inf(1), 0.0
		var bestPerm, worstPerm []int
		for _, perm := range perms {
			res, err := r.measureBaseline(q, perm)
			if err != nil {
				return nil, err
			}
			ms := res.Millis
			if ms < best {
				best, bestPerm = ms, perm
			}
			if ms > worst {
				worst, worstPerm = ms, perm
			}
		}
		rep.Rows = append(rep.Rows, []string{
			fmtF(sel * 100),
			fmt.Sprintf("%.2f", worst/best),
			fmtMs(best), fmtMs(worst),
			fmtPerm(bestPerm), fmtPerm(worstPerm),
		})
	}
	return []*Report{rep}, nil
}
