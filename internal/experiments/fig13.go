package experiments

import (
	"fmt"

	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/tpch"
)

// Fig13 reproduces Figure 13: Q6 over the PEOs on three value distributions
// of the lineitem table — sorted by shipdate (13a), clustered within months
// (13b), and fully random (13c) — under the baseline and progressive
// optimization with re-optimization intervals 10, 75, and 200.
func Fig13(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	rows := 300 * cfg.VectorSize
	if cfg.Quick {
		rows = 30 * cfg.VectorSize
	}
	base, err := tpch.Generate(tpch.Config{Lineitems: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	orderings := []tpch.Ordering{tpch.OrderingShipdateSorted, tpch.OrderingClusteredMonth, tpch.OrderingRandom}
	reops := []int{10, 75, 200}
	permSample := cfg.PermSample
	if permSample == 0 {
		permSample = 12
	}
	if cfg.Quick {
		reops = []int{10}
	}
	perms := samplePerms(exec.Permutations(5), permSample)

	var reports []*Report
	for oi, ord := range orderings {
		d := base.ReorderLineitem(ord, cfg.Seed+int64(oi)+1)
		q, err := exec.Q6(d)
		if err != nil {
			return nil, err
		}
		r, err := newRig(cpu.ScaledXeon(), cfg)
		if err != nil {
			return nil, err
		}
		if err := r.bind(q); err != nil {
			return nil, err
		}
		cols := []string{"rank", "peo", "base_ms"}
		for _, ri := range reops {
			cols = append(cols, fmt.Sprintf("reopint_%d_ms", ri))
		}
		rep := &Report{
			ID:      fmt.Sprintf("fig13%c", 'a'+oi),
			Title:   fmt.Sprintf("Q6 on %s data set", ord),
			Columns: cols,
			Notes: []string{
				fmt.Sprintf("%d lineitems, %d of 120 PEOs, sorted by baseline runtime", rows, len(perms)),
			},
		}
		type entry struct {
			perm []int
			base float64
			prog []float64
		}
		var entries []entry
		for _, perm := range perms {
			b, err := r.measureBaseline(q, perm)
			if err != nil {
				return nil, err
			}
			e := entry{perm: perm, base: b.Millis}
			for _, reop := range reops {
				p, _, err := r.measureProgressive(q, perm, reop)
				if err != nil {
					return nil, err
				}
				e.prog = append(e.prog, p.Millis)
			}
			entries = append(entries, e)
		}
		for i := 1; i < len(entries); i++ {
			for j := i; j > 0 && entries[j].base < entries[j-1].base; j-- {
				entries[j], entries[j-1] = entries[j-1], entries[j]
			}
		}
		for i, e := range entries {
			row := []string{fmt.Sprintf("%d", i+1), fmtPerm(e.perm), fmtMs(e.base)}
			for _, p := range e.prog {
				row = append(row, fmtMs(p))
			}
			rep.Rows = append(rep.Rows, row)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
