package columnar

import "testing"

func TestKindProperties(t *testing.T) {
	cases := []struct {
		k     Kind
		name  string
		width int
	}{
		{Int64, "int64", 8},
		{Int32, "int32", 4},
		{Float64, "float64", 8},
		{Date, "date", 4},
	}
	for _, c := range cases {
		if c.k.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.k, c.k.String(), c.name)
		}
		if c.k.Width() != c.width {
			t.Errorf("%v.Width() = %d, want %d", c.k, c.k.Width(), c.width)
		}
	}
	if Kind(99).Width() != 0 {
		t.Error("unknown kind must have zero width")
	}
}

func TestColumnAccessors(t *testing.T) {
	ci := NewInt64("q", []int64{1, 2, 3})
	if ci.Len() != 3 || ci.Name() != "q" || ci.Kind() != Int64 {
		t.Fatalf("basic accessors wrong: %v %v %v", ci.Len(), ci.Name(), ci.Kind())
	}
	if ci.Int64At(1) != 2 || ci.Float64At(2) != 3.0 {
		t.Error("value accessors wrong")
	}
	if ci.SizeBytes() != 24 {
		t.Errorf("SizeBytes = %d, want 24", ci.SizeBytes())
	}

	cf := NewFloat64("d", []float64{0.5, 1.5})
	if cf.Float64At(0) != 0.5 {
		t.Error("float access wrong")
	}

	cd := NewDate("ship", []int32{8036, 8037})
	if cd.Kind() != Date || cd.Int64At(0) != 8036 {
		t.Error("date column wrong")
	}

	c32 := NewInt32("k", []int32{7})
	if c32.Int64At(0) != 7 || c32.Float64At(0) != 7.0 {
		t.Error("int32 widening wrong")
	}
}

func TestColumnAddr(t *testing.T) {
	c := NewInt64("x", make([]int64, 10))
	c.Bind(0x10000)
	if c.Base() != 0x10000 {
		t.Error("Base not set")
	}
	if c.Addr(0) != 0x10000 || c.Addr(3) != 0x10000+24 {
		t.Errorf("Addr wrong: %#x %#x", c.Addr(0), c.Addr(3))
	}
	d := NewDate("y", make([]int32, 10))
	d.Bind(0x20000)
	if d.Addr(5) != 0x20000+20 {
		t.Errorf("date Addr wrong: %#x", d.Addr(5))
	}
}

func TestInt64AtPanicsOnFloat(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int64At on float column did not panic")
		}
	}()
	NewFloat64("f", []float64{1}).Int64At(0)
}

func TestTableInvariants(t *testing.T) {
	tb := NewTable("lineitem")
	if tb.NumRows() != 0 || tb.NumCols() != 0 {
		t.Error("empty table not empty")
	}
	if err := tb.AddColumn(NewInt64("a", []int64{1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddColumn(NewInt64("b", []int64{3, 4})); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddColumn(NewInt64("a", []int64{5, 6})); err == nil {
		t.Error("duplicate column name accepted")
	}
	if err := tb.AddColumn(NewInt64("c", []int64{1})); err == nil {
		t.Error("length-mismatched column accepted")
	}
	if err := tb.AddColumn(nil); err == nil {
		t.Error("nil column accepted")
	}
	if tb.NumRows() != 2 || tb.NumCols() != 2 {
		t.Errorf("rows/cols = %d/%d, want 2/2", tb.NumRows(), tb.NumCols())
	}
	if tb.Column("b") == nil || tb.Column("zz") != nil {
		t.Error("Column lookup wrong")
	}
	if tb.SizeBytes() != 32 {
		t.Errorf("SizeBytes = %d, want 32", tb.SizeBytes())
	}
}

type fakeAlloc struct{ next uint64 }

func (f *fakeAlloc) Alloc(size int) (uint64, error) {
	base := f.next
	f.next += uint64(size) + 4096
	return base, nil
}

func TestBindAll(t *testing.T) {
	tb := NewTable("t")
	tb.MustAddColumn(NewInt64("a", make([]int64, 100)))
	tb.MustAddColumn(NewFloat64("b", make([]float64, 100)))
	a := &fakeAlloc{next: 0x1000}
	if err := tb.BindAll(a); err != nil {
		t.Fatal(err)
	}
	ca, cb := tb.Column("a"), tb.Column("b")
	if ca.Base() == cb.Base() {
		t.Error("columns share a base address")
	}
	// Ranges must not overlap.
	if ca.Base() < cb.Base() && ca.Addr(99)+8 > cb.Base() {
		t.Error("column address ranges overlap")
	}
}
