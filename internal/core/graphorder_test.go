package core

import (
	"reflect"
	"strings"
	"testing"

	cachemodel "progopt/internal/costmodel/cache"
)

// starJoins is a lineitem-rooted star/snowflake: orders (big, filtered),
// part (small), customer chained off orders.
func starJoins() []GraphJoin {
	return []GraphJoin{
		{Name: "orders", From: "lineitem", To: "orders", BuildRows: 5000, BuildWidth: 4, Probes: 20000, Selectivity: 0.5},
		{Name: "customer", From: "orders", To: "customer", BuildRows: 500, BuildWidth: 8, Probes: 20000, Selectivity: 0.9},
		{Name: "part", From: "lineitem", To: "part", BuildRows: 666, BuildWidth: 4, Probes: 20000, Selectivity: 0.9},
	}
}

// TestGreedyGraphOrderConnectivity: greedy places the smallest build
// relation first but never before its From table is joined — customer
// (smallest) must wait for orders.
func TestGreedyGraphOrderConnectivity(t *testing.T) {
	order, err := GreedyGraphOrder("lineitem", starJoins())
	if err != nil {
		t.Fatal(err)
	}
	// part (666) before orders (5000); customer (500) held back by
	// connectivity until orders is placed.
	if want := []int{2, 0, 1}; !reflect.DeepEqual(order, want) {
		t.Errorf("greedy order %v, want %v", order, want)
	}
}

// TestGreedyGraphOrderTies: equal sizes break by To name, then declaration
// order, deterministically.
func TestGreedyGraphOrderTies(t *testing.T) {
	joins := []GraphJoin{
		{From: "root", To: "zeta", BuildRows: 100},
		{From: "root", To: "alpha", BuildRows: 100},
	}
	order, err := GreedyGraphOrder("root", joins)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 0}; !reflect.DeepEqual(order, want) {
		t.Errorf("tie order %v, want %v (alpha first)", order, want)
	}
}

// TestGreedyGraphOrderDisconnected: an edge hanging off an unreachable table
// is reported with the stuck edges named.
func TestGreedyGraphOrderDisconnected(t *testing.T) {
	joins := []GraphJoin{
		{Name: "nation", From: "customer", To: "nation", BuildRows: 25},
	}
	_, err := GreedyGraphOrder("lineitem", joins)
	if err == nil {
		t.Fatal("disconnected graph ordered successfully")
	}
	if !strings.Contains(err.Error(), "not connected") || !strings.Contains(err.Error(), "nation") {
		t.Errorf("unhelpful disconnection error: %v", err)
	}
}

// TestGreedyGraphOrderValidation: empty input and non-positive sizes fail.
func TestGreedyGraphOrderValidation(t *testing.T) {
	if _, err := GreedyGraphOrder("lineitem", nil); err == nil {
		t.Error("empty join list ordered successfully")
	}
	if _, err := GreedyGraphOrder("lineitem", []GraphJoin{{From: "lineitem", To: "orders"}}); err == nil {
		t.Error("zero-cardinality build side ordered successfully")
	}
}

// TestCostModelGraphOrderRank: with selectivity estimates, the cost model
// ranks a strongly-filtering edge ahead of a weakly-filtering one of similar
// predicted cost — and stays connectivity-constrained.
func TestCostModelGraphOrderRank(t *testing.T) {
	g := cachemodel.MustGeometry(64, 1024)
	order, err := CostModelGraphOrder(g, "lineitem", starJoins())
	if err != nil {
		t.Fatal(err)
	}
	// orders filters half its probes away (sel 0.5) while part keeps 0.9;
	// the predicted random-miss cost is similar for both (both larger than
	// cache), so rank = cost/(1-sel) puts orders first — the static model
	// cannot see that part is the cheaper *observed* probe when orders is
	// co-clustered. customer still waits for orders.
	if order[0] != 0 {
		t.Errorf("cost-model order %v, want orders (index 0) first", order)
	}
	pos := map[int]int{}
	for p, idx := range order {
		pos[idx] = p
	}
	if pos[1] < pos[0] {
		t.Errorf("cost-model order %v places customer before its parent orders", order)
	}
}

// TestCostModelGraphOrderValidation: probe and selectivity bounds checked.
func TestCostModelGraphOrderValidation(t *testing.T) {
	g := cachemodel.MustGeometry(64, 1024)
	bad := starJoins()
	bad[0].Probes = 0
	if _, err := CostModelGraphOrder(g, "lineitem", bad); err == nil {
		t.Error("zero probes ordered successfully")
	}
	bad = starJoins()
	bad[1].Selectivity = 1.5
	if _, err := CostModelGraphOrder(g, "lineitem", bad); err == nil {
		t.Error("selectivity 1.5 ordered successfully")
	}
}
