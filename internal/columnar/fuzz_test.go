package columnar

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzLoadTable drives the version-dispatching loader with arbitrary bytes.
// The loader must never panic and never allocate out of proportion to the
// input (corrupt headers declaring huge row counts, truncated payloads, and
// oversize length fields are the interesting corpus directions — the
// chunked payload readers exist because of them). Valid inputs must
// round-trip: re-serializing the loaded table and loading it again yields
// the same table.
func FuzzLoadTable(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	tb := randomTable(rng, 64)
	var v1, v2 bytes.Buffer
	if err := WriteTable(&v1, tb); err != nil {
		f.Fatal(err)
	}
	if err := WriteTableV2(&v2, tb, 16); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	// Corrupt variants seed the mutator near the validation branches.
	hugeRows := append([]byte(nil), v1.Bytes()...)
	copy(hugeRows[26:34], []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(hugeRows)
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	f.Add([]byte("PCOL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadTable(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTable(&out, loaded); err != nil {
			t.Fatalf("re-serializing accepted table: %v", err)
		}
		again, err := LoadTable(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reloading re-serialized table: %v", err)
		}
		sameTable(t, loaded, again)
	})
}
