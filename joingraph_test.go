package progopt

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"progopt/internal/service"
)

// fingerprintOf hashes plan terms at a fixed table and generation.
func fingerprintOf(t *testing.T, terms []string) string {
	t.Helper()
	return service.Compute("lineitem", 1, terms).String()
}

// The join-graph surface (JoinOn edges, cross-filter pushdown, greedy
// default order, multi-hop probes) extends the determinism contract: a
// 4-table graph query must produce bit-identical results, cycles, and PMU
// counters across Workers × GOMAXPROCS × fused/unfused × execution modes,
// and through the workload server. These tests pin that matrix plus the
// compile-time validation and fingerprint canonicalization of graphs.

// graphTestPlan declares the 4-table graph lineitem→{orders→customer, part}
// with edges deliberately scrambled (customer's edge first, though it chains
// off orders) and predicates on three different tables.
func graphTestPlan(d *Dataset) *Plan {
	return Scan("lineitem").
		JoinOn("orders", "o_custkey", "customer").
		JoinOn("lineitem", "l_orderkey", "orders").
		JoinOn("lineitem", "l_partkey", "part").
		Filter("l_quantity", CmpLT, 30).
		Filter("o_orderdate", CmpLE, int64(d.ShipdateCutoff(0.8))).
		Filter("p_size", CmpLE, 25).
		Filter("c_acctbal", CmpGE, 0.0).
		Sum("l_extendedprice * l_discount")
}

// graphRun executes the graph plan on a fresh engine in the given
// configuration.
func graphRun(t *testing.T, workers int, mode Mode, noFuse bool) ExecResult {
	t.Helper()
	e, err := New(Config{VectorSize: 1024, Workers: workers, NoFuse: noFuse})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.GenerateTPCH(24*1024, 37, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(d, graphTestPlan(d))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(q, ExecOptions{Mode: mode, Progressive: Progressive{Interval: 5}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestJoinGraphDeterminismMatrix: the 4-table graph query is bit-identical —
// results, cycles, and every PMU counter — across GOMAXPROCS {1,4} ×
// fused/unfused for each (Workers, mode) cell.
func TestJoinGraphDeterminismMatrix(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, mode := range []Mode{ModeFixed, ModeProgressive, ModeMicroAdaptive} {
			prev := runtime.GOMAXPROCS(1)
			ref := graphRun(t, workers, mode, false)
			runtime.GOMAXPROCS(prev)
			if ref.Qualifying == 0 {
				t.Fatalf("workers=%d/%s: reference selected nothing", workers, mode)
			}
			for _, gmp := range []int{1, 4} {
				for _, noFuse := range []bool{false, true} {
					name := fmt.Sprintf("workers=%d/%s/gomaxprocs=%d/nofuse=%v", workers, mode, gmp, noFuse)
					t.Run(name, func(t *testing.T) {
						defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gmp))
						got := graphRun(t, workers, mode, noFuse)
						sameResult(t, name, ref.Result, got.Result)
						sameStats(t, name, ref.Stats, got.Stats)
					})
				}
			}
		}
	}
}

// TestJoinGraphScalarOracle: the scalar row loop and the batch kernels agree
// on the graph query's answer (the scalar loop is the reference semantics).
func TestJoinGraphScalarOracle(t *testing.T) {
	run := func(scalar bool) ExecResult {
		t.Helper()
		e, err := New(Config{VectorSize: 1024, ScalarExec: scalar})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		d, err := e.GenerateTPCH(24*1024, 37, OrderNatural)
		if err != nil {
			t.Fatal(err)
		}
		q, err := e.Compile(d, graphTestPlan(d))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scalar, batch := run(true), run(false)
	if scalar.Qualifying != batch.Qualifying || scalar.Sum != batch.Sum {
		t.Errorf("scalar %d/%v vs batch %d/%v", scalar.Qualifying, scalar.Sum, batch.Qualifying, batch.Sum)
	}
}

// TestJoinGraphServedMatchesExec: a graph query that has the server's pool
// to itself executes exactly like Engine.Exec — results and cycles.
func TestJoinGraphServedMatchesExec(t *testing.T) {
	setup := func(workers int) (*Engine, *Dataset) {
		t.Helper()
		e, err := New(Config{VectorSize: 1024, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.GenerateTPCH(24*1024, 37, OrderNatural)
		if err != nil {
			t.Fatal(err)
		}
		return e, d
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Separate engines so both paths compile into identical address
			// spaces (Compile reserves join hash tables).
			eDirect, dDirect := setup(workers)
			defer eDirect.Close()
			q, err := eDirect.Compile(dDirect, graphTestPlan(dDirect))
			if err != nil {
				t.Fatal(err)
			}
			direct, err := eDirect.Exec(q, ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			eServed, dServed := setup(workers)
			defer eServed.Close()
			srv, err := NewServer(eServed, ServerConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			tk, err := srv.Submit(dServed, graphTestPlan(dServed), ExecOptions{Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			served, err := tk.Wait()
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "served", direct.Result, served.Result)
		})
	}
}

// TestJoinGraphExplain: Explain reports the resolved edges in greedy order
// (smallest build relation first under connectivity) with hop counts and
// pushdown counts.
func TestJoinGraphExplain(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.GenerateTPCH(24*1024, 37, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(d, graphTestPlan(d))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Joins) != 3 {
		t.Fatalf("explained %d edges, want 3: %+v", len(ex.Joins), ex.Joins)
	}
	// Greedy: part (n/30 rows) places before orders (n/4); customer (n/40)
	// is smaller than both but chains off orders, so connectivity holds it
	// back until orders is joined.
	want := []string{"part", "orders", "customer"}
	for i, j := range ex.Joins {
		if j.To != want[i] {
			t.Errorf("edge %d joins %q, want %q (greedy order %+v)", i, j.To, want[i], ex.Joins)
		}
	}
	if ex.Joins[2].Hops != 2 {
		t.Errorf("customer probe hops = %d, want 2 (lineitem→orders→customer)", ex.Joins[2].Hops)
	}
	if ex.Joins[0].Pushed != 1 || ex.Joins[1].Pushed != 1 || ex.Joins[2].Pushed != 1 {
		t.Errorf("pushdown counts %+v, want one predicate per table", ex.Joins)
	}
	s := ex.String()
	if !strings.Contains(s, "join graph (greedy order):") {
		t.Errorf("Explain output lacks the join-graph line:\n%s", s)
	}
}

// TestJoinGraphCompileErrors: every graph-validation failure names the
// offending table or column and the valid alternatives, so the message alone
// is enough to fix the plan.
func TestJoinGraphCompileErrors(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.GenerateTPCH(4096, 7, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		plan *Plan
		want []string // all substrings must appear
	}{
		{
			"unknown edge table",
			Scan("lineitem").JoinOn("lineitem", "l_orderkey", "galaxy").Filter("l_quantity", CmpLT, 10),
			[]string{`unknown table "galaxy"`, "customer", "lineitem", "nation", "orders", "part"},
		},
		{
			"unknown key column",
			Scan("lineitem").JoinOn("lineitem", "l_nope", "orders").Filter("l_quantity", CmpLT, 10),
			[]string{`no column "l_nope"`, "l_orderkey", "l_partkey"},
		},
		{
			"non-integer key column",
			Scan("lineitem").JoinOn("lineitem", "l_discount", "orders").Filter("l_quantity", CmpLT, 10),
			[]string{`join key "l_discount"`, "integer foreign-key column"},
		},
		{
			"key values out of range",
			Scan("lineitem").JoinOn("lineitem", "l_quantity", "nation").Filter("l_quantity", CmpLT, 10),
			[]string{"key values span", `not valid row ids of "nation"`, "25 rows"},
		},
		{
			"disconnected edge",
			Scan("lineitem").JoinOn("customer", "c_nationkey", "nation").Filter("l_quantity", CmpLT, 10),
			[]string{"disconnected", "customer→nation", `reachable from "lineitem"`},
		},
		{
			"duplicate join target",
			Scan("lineitem").
				JoinOn("lineitem", "l_orderkey", "orders").
				JoinOn("lineitem", "l_orderkey", "orders").
				Filter("l_quantity", CmpLT, 10),
			[]string{`"orders" is already in the plan`, "tree"},
		},
		{
			"self join",
			Scan("lineitem").JoinOn("orders", "o_custkey", "orders").Filter("l_quantity", CmpLT, 10),
			[]string{"cannot join itself"},
		},
		{
			"filter on unjoined table",
			Scan("lineitem").JoinOn("lineitem", "l_orderkey", "orders").Filter("c_acctbal", CmpGE, 0.0),
			[]string{`"c_acctbal" belongs to "customer"`, "does not join", "JoinOn"},
		},
		{
			"unknown filter column",
			Scan("lineitem").JoinOn("lineitem", "l_orderkey", "orders").Filter("l_nope", CmpLT, 10),
			[]string{`unknown column "l_nope"`, "lineitem", "orders"},
		},
		{
			"mixing Join and JoinOn",
			Scan("lineitem").Join("orders", 0.5).JoinOn("lineitem", "l_partkey", "part"),
			[]string{"mixes Join and JoinOn", "migrate"},
		},
		{
			"legacy cross-table filter suggests JoinOn",
			Scan("lineitem").Filter("o_orderdate", CmpLE, 1),
			[]string{`belongs to "orders"`, "JoinOn"},
		},
		{
			"legacy unknown column lists alternatives",
			Scan("lineitem").Filter("l_nope", CmpLE, 1),
			[]string{`unknown column "l_nope"`, "l_shipdate"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := e.Compile(d, tc.plan)
			if err == nil {
				t.Fatal("compiled successfully, want error")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q\n  missing substring %q", err, want)
				}
			}
		})
	}
}

// TestJoinGraphAnyTableDrives: with edges declared, a dimension table can
// root the graph (orders→customer→nation).
func TestJoinGraphAnyTableDrives(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.GenerateTPCH(8192, 7, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(d, Scan("orders").
		JoinOn("orders", "o_custkey", "customer").
		JoinOn("customer", "c_nationkey", "nation").
		Filter("o_orderdate", CmpLE, int64(d.ShipdateCutoff(0.9))).
		Filter("c_acctbal", CmpGE, 0.0).
		Sum("o_totalprice"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Qualifying == 0 {
		t.Error("orders-driven graph selected nothing")
	}
}

// TestJoinGraphFingerprintCanonical: isomorphic graphs — same edges and
// predicates in any declaration order — share a fingerprint; any shape
// difference (extra edge, re-keyed edge, different bound) changes it.
func TestJoinGraphFingerprintCanonical(t *testing.T) {
	a := Scan("lineitem").
		JoinOn("lineitem", "l_orderkey", "orders").
		JoinOn("orders", "o_custkey", "customer").
		Filter("c_acctbal", CmpGE, 0.0)
	b := Scan("lineitem").
		Filter("c_acctbal", CmpGE, 0.0).
		JoinOn("orders", "o_custkey", "customer").
		JoinOn("lineitem", "l_orderkey", "orders")
	ta, err := a.fingerprintTerms()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.fingerprintTerms()
	if err != nil {
		t.Fatal(err)
	}
	fp := func(terms []string) string { return fingerprintOf(t, terms) }
	if fp(ta) != fp(tb) {
		t.Errorf("isomorphic graphs hash differently:\n %v\n %v", ta, tb)
	}
	different := []*Plan{
		// Extra edge.
		Scan("lineitem").
			JoinOn("lineitem", "l_orderkey", "orders").
			JoinOn("orders", "o_custkey", "customer").
			JoinOn("customer", "c_nationkey", "nation").
			Filter("c_acctbal", CmpGE, 0.0),
		// Re-keyed edge.
		Scan("lineitem").
			JoinOn("lineitem", "l_partkey", "orders").
			JoinOn("orders", "o_custkey", "customer").
			Filter("c_acctbal", CmpGE, 0.0),
		// Different bound.
		Scan("lineitem").
			JoinOn("lineitem", "l_orderkey", "orders").
			JoinOn("orders", "o_custkey", "customer").
			Filter("c_acctbal", CmpGE, 1.0),
	}
	for i, p := range different {
		terms, err := p.fingerprintTerms()
		if err != nil {
			t.Fatal(err)
		}
		if fp(terms) == fp(ta) {
			t.Errorf("variant %d collides with the base graph: %v", i, terms)
		}
	}
}

// TestJoinGraphPlanCache: multi-table plans flow through the server's
// fingerprint-keyed plan cache — isomorphic resubmission hits, LRU capacity
// evicts, and a data-set generation bump invalidates.
func TestJoinGraphPlanCache(t *testing.T) {
	e, err := New(Config{VectorSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	d, err := e.GenerateTPCH(8192, 7, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(e, ServerConfig{PlanCacheSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	graph := func(bound int) *Plan {
		return Scan("lineitem").
			JoinOn("lineitem", "l_orderkey", "orders").
			JoinOn("orders", "o_custkey", "customer").
			Filter("l_quantity", CmpLT, bound).
			Sum("l_extendedprice")
	}
	submit := func(d *Dataset, p *Plan) *ServedInfo {
		t.Helper()
		tk, err := srv.Submit(d, p, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res.Served
	}
	first := submit(d, graph(10))
	// Isomorphic resubmission (edges scrambled) hits the cache.
	iso := submit(d, Scan("lineitem").
		JoinOn("orders", "o_custkey", "customer").
		Filter("l_quantity", CmpLT, 10).
		JoinOn("lineitem", "l_orderkey", "orders").
		Sum("l_extendedprice"))
	if !iso.PlanCacheHit || iso.Fingerprint != first.Fingerprint {
		t.Errorf("isomorphic graph resubmission missed the cache: %+v vs %+v", iso, first)
	}
	// A different graph plan evicts the first from the size-1 cache.
	submit(d, graph(20))
	again := submit(d, graph(10))
	if again.PlanCacheHit {
		t.Error("evicted graph plan still hit the cache")
	}
	if srv.Stats().PlanCacheEvictions == 0 {
		t.Error("size-1 cache never evicted")
	}
	// A regenerated data set bumps the generation and invalidates.
	d2, err := e.GenerateTPCH(8192, 7, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	fresh := submit(d2, graph(10))
	if fresh.PlanCacheHit || fresh.Fingerprint == again.Fingerprint {
		t.Error("generation bump did not invalidate the multi-table plan cache entry")
	}
}
