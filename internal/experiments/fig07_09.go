package experiments

import (
	"fmt"

	"progopt/internal/core"
)

// Fig07 reproduces Figure 7: the search-space restriction of the paper's
// worked example — a 4-predicate query selecting 10 of 100 tuples with
// per-predicate accesses [80, 70, 50, 10] (sampled BNT 210).
func Fig07(cfg Config) ([]*Report, error) {
	truth := []float64{80, 70, 50, 10}
	b, err := core.Restrict(4, 100, 10, 210)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "fig07",
		Title: "Search space restriction (cumulative accesses per predicate)",
		Columns: []string{"predicate", "search_query", "upper_tuple", "lower_tuple",
			"upper_bnt", "lower_bnt"},
		Notes: []string{
			"paper's example: 100 input tuples, 10 output tuples, BNT = 210",
			fmt.Sprintf("true accesses feasible: %v", b.Feasible(truth)),
		},
	}
	for i := range truth {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("col%d", i+1),
			fmtF(truth[i]),
			fmtF(b.UpperTuple[i]), fmtF(b.LowerTuple[i]),
			fmtF(b.UpperBNT[i]), fmtF(b.LowerBNT[i]),
		})
	}
	return []*Report{rep}, nil
}

// Fig09 reproduces Figure 9: the start-point sequence over a two-dimensional
// search space for a query with 25 % overall selectivity (null hypothesis:
// 50 % per predicate).
func Fig09(cfg Config) ([]*Report, error) {
	gen, err := core.NewStartPointGen([]float64{0, 0}, []float64{1, 1}, []float64{0.5, 0.5})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig09",
		Title:   "Start point selection (2-D search space, 25% overall selectivity)",
		Columns: []string{"order", "x", "y", "kind"},
		Notes:   []string{"C1 = null hypothesis; then vertices; then largest-subspace centroids"},
	}
	for i := 0; i < 10; i++ {
		p := gen.Next()
		kind := "centroid"
		switch {
		case i == 0:
			kind = "null-hypothesis (C1)"
		case i >= 1 && i <= 4:
			kind = "vertex"
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", i+1), fmtF(p[0]), fmtF(p[1]), kind,
		})
	}
	return []*Report{rep}, nil
}
