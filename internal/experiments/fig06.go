package experiments

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/costmodel/markov"
	"progopt/internal/datagen"
	"progopt/internal/exec"
	"progopt/internal/hw/branch"
	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
)

// Fig06 reproduces Figure 6: branch mispredictions (total, taken, not-taken)
// of a single selection across the modelled microarchitectures, against the
// paper's Markov estimation and the simpler Zeuch et al. model.
func Fig06(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	n := 64 * cfg.VectorSize
	step := 10
	if cfg.Quick {
		step = 25
	}
	rng := datagen.NewRNG(cfg.Seed)
	tb := columnar.NewTable("t")
	tb.MustAddColumn(columnar.NewInt64("v", datagen.UniformInt64(rng, n, 0, 999)))

	arches := []branch.Arch{branch.ArchNehalem, branch.ArchSandyBridge, branch.ArchIvyBridge, branch.ArchBroadwell}

	cols := []string{"sel_pct"}
	for _, a := range arches {
		cols = append(cols, string(a))
	}
	cols = append(cols, "est_markov", "zeuch_et_al")
	mk := func(sub, what string) *Report {
		return &Report{
			ID:      "fig06" + sub,
			Title:   fmt.Sprintf("Branch counter overview: %s mispredictions per %d tuples", what, n),
			Columns: cols,
			Notes:   []string{"selection loop over an int64 column; predictors per DESIGN.md substitutions"},
		}
	}
	repAll, repT, repNT := mk("a", "all"), mk("b", "taken"), mk("c", "not-taken")

	// One rig per architecture, reused across the sweep.
	rigs := make(map[branch.Arch]*rig)
	for _, a := range arches {
		r, err := newRig(cpu.ForArch(a), cfg)
		if err != nil {
			return nil, err
		}
		rigs[a] = r
	}

	for s := 0; s <= 100; s += step {
		p := float64(s) / 100
		rowAll := []string{fmtF(float64(s))}
		rowT := []string{fmtF(float64(s))}
		rowNT := []string{fmtF(float64(s))}
		for _, a := range arches {
			r := rigs[a]
			q := &exec.Query{
				Table: tb,
				Ops:   []exec.Op{&exec.Predicate{Col: tb.Column("v"), Op: exec.LT, I: int64(s * 10)}},
			}
			if err := r.bind(q); err != nil {
				return nil, err
			}
			r.cold()
			res, err := r.eng.Run(q)
			if err != nil {
				return nil, err
			}
			c := res.Counters
			rowAll = append(rowAll, fmt.Sprintf("%d", c.Get(pmu.BrMP)))
			rowT = append(rowT, fmt.Sprintf("%d", c.Get(pmu.BrMPTaken)))
			rowNT = append(rowNT, fmt.Sprintf("%d", c.Get(pmu.BrMPNotTaken)))
		}
		mpT, mpNT, mp := markov.Paper().Counts(p, float64(n))
		rowAll = append(rowAll, fmt.Sprintf("%.0f", mp), fmt.Sprintf("%.0f", markov.ZeuchMP(p)*float64(n)))
		rowT = append(rowT, fmt.Sprintf("%.0f", mpT), "-")
		rowNT = append(rowNT, fmt.Sprintf("%.0f", mpNT), "-")
		repAll.Rows = append(repAll.Rows, rowAll)
		repT.Rows = append(repT.Rows, rowT)
		repNT.Rows = append(repNT.Rows, rowNT)
	}
	return []*Report{repAll, repT, repNT}, nil
}
