package progopt

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// sortTestPlan is the shared ordered plan of the bit-identity matrix: two
// filters, a two-key ordering, and a carried aggregate.
func sortTestPlan(d *Dataset, limit int) *Plan {
	p := Scan("lineitem").
		Filter("l_shipdate", CmpLE, int64(d.ShipdateCutoff(0.7))).
		Filter("l_discount", CmpGE, 0.03).
		OrderBy("l_quantity", Desc).
		OrderBy("l_extendedprice").
		Sum("l_extendedprice * l_discount")
	if limit >= 0 {
		p.Limit(limit)
	}
	return p
}

// TestSortBitIdentity pins the acceptance criterion: ordered output —
// including the float values carried through the sort — plus Qualifying and
// the aggregate Sum are bit-identical across Workers {1,4}, ScalarExec on
// and off, limit present and absent, and all three execution modes.
func TestSortBitIdentity(t *testing.T) {
	for _, limit := range []int{-1, 40} {
		var ref *ExecResult
		for _, workers := range []int{1, 4} {
			for _, scalar := range []bool{false, true} {
				for _, mode := range []Mode{ModeFixed, ModeProgressive, ModeMicroAdaptive} {
					name := fmt.Sprintf("limit=%d/workers=%d/scalar=%v/%s", limit, workers, scalar, mode)
					e, err := New(Config{VectorSize: 512, Workers: workers, ScalarExec: scalar})
					if err != nil {
						t.Fatal(err)
					}
					d, err := e.GenerateTPCH(24_000, 19, OrderRandom)
					if err != nil {
						t.Fatal(err)
					}
					q, err := e.Compile(d, sortTestPlan(d, limit))
					if err != nil {
						t.Fatal(err)
					}
					res, err := e.Exec(q, ExecOptions{Mode: mode, Progressive: Progressive{Interval: 5}})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if len(res.Rows) == 0 {
						t.Fatalf("%s: no ordered output", name)
					}
					if ref == nil {
						ref = &res
						continue
					}
					if res.Qualifying != ref.Qualifying {
						t.Errorf("%s: qualifying %d vs %d", name, res.Qualifying, ref.Qualifying)
					}
					if res.Sum != ref.Sum {
						t.Errorf("%s: sum %v vs %v (must be bit-identical)", name, res.Sum, ref.Sum)
					}
					if !reflect.DeepEqual(res.Rows, ref.Rows) {
						t.Errorf("%s: ordered rows diverge", name)
					}
				}
			}
		}
	}
}

// TestSortAgainstSliceStable fuzzes the public surface against an oracle
// independent of any engine code: qualifying rows recomputed from the raw
// columns and ordered with sort.SliceStable on the keys alone — stability
// supplies exactly the row-order tie-break the operator implements.
func TestSortAgainstSliceStable(t *testing.T) {
	e, err := New(Config{VectorSize: 1024, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.GenerateTPCH(20_000, 29, OrderRandom)
	if err != nil {
		t.Fatal(err)
	}
	qty := d.d.Lineitem.Column("l_quantity").I64()
	disc := d.d.Lineitem.Column("l_discount").F64()
	price := d.d.Lineitem.Column("l_extendedprice").F64()
	keyCols := []string{"l_quantity", "l_extendedprice", "l_discount", "l_shipdate", "l_orderkey"}
	rng := rand.New(rand.NewSource(77))
	for it := 0; it < 10; it++ {
		qtyBound := int64(5 + rng.Intn(45))
		nKeys := 1 + rng.Intn(2)
		type key struct {
			name string
			desc bool
		}
		keys := make([]key, nKeys)
		p := Scan("lineitem").Filter("l_quantity", CmpLT, qtyBound)
		for i := range keys {
			keys[i] = key{name: keyCols[rng.Intn(len(keyCols))], desc: rng.Intn(2) == 1}
			if keys[i].desc {
				p.OrderBy(keys[i].name, Desc)
			} else {
				p.OrderBy(keys[i].name)
			}
		}
		limit := -1
		if rng.Intn(2) == 1 {
			limit = rng.Intn(200)
			p.Limit(limit)
		}
		p.Sum("l_extendedprice * l_discount")
		q, err := e.Compile(d, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
		if err != nil {
			t.Fatal(err)
		}

		var want []int64
		for r := range qty {
			if qty[r] < qtyBound {
				want = append(want, int64(r))
			}
		}
		val := func(row int64, name string) float64 {
			return d.d.Lineitem.Column(name).Float64At(int(row))
		}
		sort.SliceStable(want, func(a, b int) bool {
			for _, k := range keys {
				va, vb := val(want[a], k.name), val(want[b], k.name)
				if va != vb {
					return (va < vb) != k.desc
				}
			}
			return false
		})
		if limit >= 0 && len(want) > limit {
			want = want[:limit]
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("iteration %d: %d rows, reference %d", it, len(res.Rows), len(want))
		}
		for i, row := range res.Rows {
			if row.Row != want[i] {
				t.Fatalf("iteration %d: position %d row %d, reference %d (keys %v limit %d)",
					it, i, row.Row, want[i], keys, limit)
			}
			for ki, k := range keys {
				if row.Keys[ki] != val(row.Row, k.name) {
					t.Errorf("iteration %d: row %d key %d = %v, want %v", it, row.Row, ki, row.Keys[ki], val(row.Row, k.name))
				}
			}
			if wantVal := price[row.Row] * disc[row.Row]; row.Value != wantVal {
				t.Errorf("iteration %d: row %d carried value %v, want %v", it, row.Row, row.Value, wantVal)
			}
		}
	}
}

// TestSortCompileValidation pins Compile's order-by error checks.
func TestSortCompileValidation(t *testing.T) {
	e := testEngine(t)
	d, err := e.GenerateTPCH(5000, 8, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		plan *Plan
	}{
		{"unknown column", Scan("lineitem").Filter("l_quantity", CmpLT, 10).OrderBy("l_nope")},
		{"cross-table column", Scan("lineitem").Filter("l_quantity", CmpLT, 10).OrderBy("o_orderdate")},
		{"negative limit", Scan("lineitem").Filter("l_quantity", CmpLT, 10).OrderBy("l_quantity").Limit(-1)},
		{"limit without order", Scan("lineitem").Filter("l_quantity", CmpLT, 10).Limit(5)},
		{"order with group", Scan("lineitem").Filter("l_discount", CmpGE, 0.05).
			GroupBy("l_quantity", "l_extendedprice").OrderBy("l_quantity")},
		{"two directions", Scan("lineitem").Filter("l_quantity", CmpLT, 10).OrderBy("l_quantity", Asc, Desc)},
	}
	for _, tc := range cases {
		if _, err := e.Compile(d, tc.plan); err == nil {
			t.Errorf("%s: Compile accepted the plan", tc.name)
		}
	}
	// Limit(0) is valid and yields an empty ordered output.
	q, err := e.Compile(d, Scan("lineitem").Filter("l_quantity", CmpLT, 10).OrderBy("l_quantity").Limit(0))
	if err != nil {
		t.Fatalf("Limit(0) rejected: %v", err)
	}
	res, err := e.Exec(q, ExecOptions{Mode: ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("Limit(0) emitted %d rows", len(res.Rows))
	}
	if res.Qualifying == 0 {
		t.Error("Limit(0) suppressed the scan itself")
	}
}

// TestSortFingerprintTerms: ordering participates in the canonical plan
// fingerprint — keys, their precedence, directions, and the limit all
// distinguish plans; chaining order of unrelated steps still does not.
func TestSortFingerprintTerms(t *testing.T) {
	terms := func(p *Plan) string {
		ts, err := p.fingerprintTerms()
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(ts)
		return fmt.Sprint(ts)
	}
	base := func() *Plan { return Scan("lineitem").Filter("l_quantity", CmpLT, 10) }
	a := terms(base().OrderBy("l_quantity").OrderBy("l_discount"))
	variants := map[string]string{
		"no order":       terms(base()),
		"key precedence": terms(base().OrderBy("l_discount").OrderBy("l_quantity")),
		"direction":      terms(base().OrderBy("l_quantity", Desc).OrderBy("l_discount")),
		"limit":          terms(base().OrderBy("l_quantity").OrderBy("l_discount").Limit(3)),
	}
	for name, v := range variants {
		if v == a {
			t.Errorf("%s: fingerprint terms did not change", name)
		}
	}
	if terms(base().OrderBy("l_quantity").OrderBy("l_discount").Limit(3)) !=
		terms(base().OrderBy("l_quantity").OrderBy("l_discount").Limit(3)) {
		t.Error("identical sorted plans disagree")
	}
}
