// Package cpu assembles the hardware substrate — branch predictor, cache
// hierarchy, PMU — into a simulated core with cycle accounting. The query
// engine mirrors every column access and conditional branch into a CPU; the
// progressive optimizer samples its counters at vector boundaries exactly as
// the paper samples the real PMU.
package cpu

import (
	"fmt"

	"progopt/internal/hw/branch"
	"progopt/internal/hw/cache"
)

// Profile describes a simulated core. The default profile scales the paper's
// evaluation machine (Xeon E5-2630 v2, Ivy Bridge EP: 32 KB L1d, 256 KB L2,
// 15 MB shared L3, 2.6 GHz) down by 16x in cache capacity so that the
// scaled-down data sets used in tests and benchmarks remain much larger than
// L3, preserving every data-vs-cache-size ratio the paper's experiments
// depend on (see DESIGN.md, substitutions).
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// Arch selects the branch-predictor model.
	Arch branch.Arch
	// ClockGHz converts cycles to wall time for msec-denominated reports.
	ClockGHz float64
	// IssueWidth is the superscalar width used to convert retired
	// instructions into cycles (instructions / IssueWidth).
	IssueWidth int
	// BranchMissPenaltyCycles is the pipeline-flush cost of one mispredicted
	// branch (~14-15 on the modelled parts).
	BranchMissPenaltyCycles int
	// MemParallelism divides memory-stall latency, modelling overlapping
	// outstanding misses (out-of-order execution + multiple fill buffers).
	MemParallelism int
	// Hierarchy is the cache geometry.
	Hierarchy cache.HierarchyConfig
}

func (p Profile) validate() error {
	if p.ClockGHz <= 0 {
		return fmt.Errorf("cpu %s: non-positive clock %v", p.Name, p.ClockGHz)
	}
	if p.IssueWidth <= 0 {
		return fmt.Errorf("cpu %s: non-positive issue width %d", p.Name, p.IssueWidth)
	}
	if p.BranchMissPenaltyCycles < 0 {
		return fmt.Errorf("cpu %s: negative branch penalty", p.Name)
	}
	if p.MemParallelism <= 0 {
		return fmt.Errorf("cpu %s: non-positive memory parallelism %d", p.Name, p.MemParallelism)
	}
	return nil
}

// scaledHierarchy is the paper's Xeon cache geometry divided by 16.
func scaledHierarchy() cache.HierarchyConfig {
	return cache.HierarchyConfig{
		L1: cache.Config{Name: "L1", SizeBytes: 2 << 10, LineSize: 64, Ways: 8, LatencyCycles: 4},
		L2: cache.Config{Name: "L2", SizeBytes: 16 << 10, LineSize: 64, Ways: 8, LatencyCycles: 12},
		// 15 MB / 16 would be 960 KB; rounded up to 1 MB to keep a
		// power-of-two set count.
		L3:               cache.Config{Name: "L3", SizeBytes: 1 << 20, LineSize: 64, Ways: 16, LatencyCycles: 36},
		MemLatencyCycles: 180,
	}
}

// ScaledXeon returns the default profile: the paper's Ivy Bridge EP
// evaluation machine with 16x-scaled caches.
func ScaledXeon() Profile {
	return Profile{
		Name:                    "scaled-xeon-e5-2630v2",
		Arch:                    branch.ArchIvyBridge,
		ClockGHz:                2.6,
		IssueWidth:              4,
		BranchMissPenaltyCycles: 15,
		MemParallelism:          4,
		Hierarchy:               scaledHierarchy(),
	}
}

// ForArch returns the scaled profile with the branch predictor of the given
// microarchitecture (used by the Figure 6 cross-architecture sweep).
func ForArch(a branch.Arch) Profile {
	p := ScaledXeon()
	p.Name = "scaled-" + string(a)
	p.Arch = a
	return p
}
