// Package progopt is a from-scratch reproduction of "Non-Invasive
// Progressive Optimization for In-Memory Databases" (Zeuch, Pirk, Freytag,
// PVLDB 9(14), 2016): an in-memory columnar query engine that re-optimizes
// multi-selection queries and join orders *during* execution, driven purely
// by CPU performance counters.
//
// Because real performance-monitoring units are neither portable nor
// deterministic, the engine runs on simulated cores (branch predictors, a
// three-level cache hierarchy with a stream prefetcher, PMU counters, and
// cycle accounting) that mirror every column access and conditional branch
// of query execution. Everything above the counters — the Markov-chain
// branch cost model, the Pirk/Manegold cache cost models, the Nelder-Mead
// selectivity estimator with search-space restriction, and the progressive
// reorder-validate-revert loop — is the paper's machinery, unchanged.
//
// Queries execute as batch kernels over selection vectors (Config.ScalarExec
// restores the tuple-at-a-time row loop; results and PMU load/branch counts
// are identical either way), and Config.Workers > 1 runs the scan
// morsel-driven across multiple simulated cores with deterministic makespans
// and per-core counters merged for the optimizer. See DESIGN.md.
//
// # Quick start
//
//	eng, err := progopt.New(progopt.Config{})
//	if err != nil { ... }
//	ds, err := eng.GenerateTPCH(1_000_000, 42, progopt.OrderNatural)
//	q, err := eng.BuildQ6(ds)
//	baseline, err := eng.Run(q)                             // fixed PEO
//	adaptive, stats, err := eng.RunProgressive(q, progopt.Progressive{Interval: 10})
//	fmt.Printf("%.1fx faster, %d reorders\n", baseline.Millis/adaptive.Millis, stats.Reorders)
//
// See the examples/ directory for runnable programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology and per-figure results.
package progopt
