package trace

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Metrics is a small simulated-time metrics registry: counters, gauges, and
// latency summaries whose values are simulated quantities (cycles, simulated
// milliseconds, cache hit counts), exposed in the Prometheus text format.
// Unlike the event recorder it is safe for concurrent use — metrics are
// host-side bookkeeping outside the simulation, so a mutex here cannot
// perturb any simulated observable. Exposition order is registration order,
// so a fixed registration sequence yields byte-identical exposition for
// identical workloads.
type Metrics struct {
	mu    sync.Mutex
	order []*metric
	byN   map[string]*metric
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindSummary
)

type metric struct {
	name string
	help string
	kind metricKind
	val  float64

	// summary state: retained observations for exact quantiles.
	obs      []float64
	obsSum   float64
	obsCount uint64
	maxObs   int
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{byN: map[string]*metric{}} }

func (m *Metrics) register(name, help string, kind metricKind) *metric {
	m.mu.Lock()
	defer m.mu.Unlock()
	if got := m.byN[name]; got != nil {
		return got
	}
	mt := &metric{name: name, help: help, kind: kind, maxObs: 1 << 16}
	m.byN[name] = mt
	m.order = append(m.order, mt)
	return mt
}

// Counter is a monotonically increasing value. Nil-safe.
type Counter struct {
	m  *Metrics
	mt *metric
}

// Counter registers (or returns) the named counter.
func (m *Metrics) Counter(name, help string) *Counter {
	if m == nil {
		return nil
	}
	return &Counter{m: m, mt: m.register(name, help, kindCounter)}
}

// Add increases the counter by v (v < 0 is ignored).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.m.mu.Lock()
	c.mt.val += v
	c.m.mu.Unlock()
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.m.mu.Lock()
	defer c.m.mu.Unlock()
	return c.mt.val
}

// Gauge is a value that can go up and down. Nil-safe.
type Gauge struct {
	m  *Metrics
	mt *metric
}

// Gauge registers (or returns) the named gauge.
func (m *Metrics) Gauge(name, help string) *Gauge {
	if m == nil {
		return nil
	}
	return &Gauge{m: m, mt: m.register(name, help, kindGauge)}
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.m.mu.Lock()
	g.mt.val = v
	g.m.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.m.mu.Lock()
	defer g.m.mu.Unlock()
	return g.mt.val
}

// Summary retains observations (simulated latencies, usually) and exposes
// exact p50/p95/p99 quantiles plus sum and count. Nil-safe.
type Summary struct {
	m  *Metrics
	mt *metric
}

// Summary registers (or returns) the named summary.
func (m *Metrics) Summary(name, help string) *Summary {
	if m == nil {
		return nil
	}
	return &Summary{m: m, mt: m.register(name, help, kindSummary)}
}

// Observe records one observation. Retention is bounded (65536 observations);
// past the bound new observations still count toward sum/count but no longer
// shift the retained quantile set.
func (s *Summary) Observe(v float64) {
	if s == nil {
		return
	}
	s.m.mu.Lock()
	s.mt.obsSum += v
	s.mt.obsCount++
	if len(s.mt.obs) < s.mt.maxObs {
		s.mt.obs = append(s.mt.obs, v)
	}
	s.m.mu.Unlock()
}

// Quantile returns the q-quantile (0 <= q <= 1) of the retained observations
// by nearest-rank, or 0 when empty.
func (s *Summary) Quantile(q float64) float64 {
	if s == nil {
		return 0
	}
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	return quantile(s.mt.obs, q)
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 {
	if s == nil {
		return 0
	}
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	return s.mt.obsCount
}

func quantile(obs []float64, q float64) float64 {
	if len(obs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), obs...)
	sort.Float64s(sorted)
	idx := int(q*float64(len(sorted))) - 1
	if q > 0 && float64(int(q*float64(len(sorted)))) < q*float64(len(sorted)) {
		idx++ // nearest rank: ceil(q*n) - 1
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), in registration order. Summaries expose
// quantile-labeled series for p50/p95/p99 plus _sum and _count.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var b bytes.Buffer
	for _, mt := range m.order {
		if mt.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", mt.name, mt.help)
		}
		switch mt.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %s\n", mt.name, mt.name, fmtVal(mt.val))
		case kindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", mt.name, mt.name, fmtVal(mt.val))
		case kindSummary:
			fmt.Fprintf(&b, "# TYPE %s summary\n", mt.name)
			for _, q := range [...]float64{0.5, 0.95, 0.99} {
				fmt.Fprintf(&b, "%s{quantile=%q} %s\n", mt.name,
					strconv.FormatFloat(q, 'g', -1, 64), fmtVal(quantile(mt.obs, q)))
			}
			fmt.Fprintf(&b, "%s_sum %s\n%s_count %d\n", mt.name, fmtVal(mt.obsSum), mt.name, mt.obsCount)
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

func fmtVal(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
