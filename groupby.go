package progopt

import (
	"fmt"
)

// GroupRow is one output row of a grouped aggregation.
type GroupRow struct {
	// Key is the group key.
	Key int64
	// Sum is the aggregated value and Count the contributing tuple count.
	Sum   float64
	Count int64
}

// RunGroupBy executes the query's filters and aggregates the survivors as
// SELECT groupCol, SUM(valueCol), COUNT(*) GROUP BY groupCol, returning the
// groups sorted by key plus the run's execution result. The hash table is
// sized from the group column's actual key domain (min/max scan), not a
// fixed constant, so wide-domain keys do not collide pathologically. With
// Workers > 1 the aggregation runs morsel-parallel with per-core partial
// hash tables merged at the barrier.
//
// Deprecated: attach the grouping to the plan with Plan.GroupBy and execute
// through Exec, which this wrapper forwards to. d must be the data set the
// query was compiled on: the group and value columns resolve from the
// query's own driving table, and a mismatched data set is rejected (the
// pre-redesign implementation silently read columns from d, corrupting the
// grouping when the row counts differed).
func (e *Engine) RunGroupBy(d *Dataset, q *Query, groupCol, valueCol string) ([]GroupRow, Result, error) {
	if q == nil || q.q == nil {
		return nil, Result{}, fmt.Errorf("progopt: RunGroupBy needs a compiled query")
	}
	if d == nil || d.d.Lineitem != q.q.Table {
		return nil, Result{}, fmt.Errorf("progopt: RunGroupBy data set does not match the query's driving table")
	}
	ge, err := e.compileGroup(q.q.Table, groupCol, valueCol)
	if err != nil {
		return nil, Result{}, err
	}
	gq := &Query{q: q.q, group: ge}
	res, err := e.Exec(gq, ExecOptions{Mode: ModeFixed})
	if err != nil {
		return nil, Result{}, err
	}
	return res.Groups, res.Result, nil
}
