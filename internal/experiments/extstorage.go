package experiments

import (
	"fmt"

	"progopt/internal/columnar"
	"progopt/internal/exec"
	"progopt/internal/hw/cpu"
	"progopt/internal/hw/pmu"
	"progopt/internal/storage"
	"progopt/internal/tpch"
)

// ExtStorage measures the stored-table subsystem: a selective Q6-shaped scan
// over the PCOL v2 lineitem image with the below-DRAM block tier priced in.
// Three questions, three tables:
//
//   - How does cold-scan time grow as the resident-set budget shrinks below
//     the scan's working set, with and without zone-map skipping?
//   - How much does the format compress each column, and how many blocks do
//     zone maps prune for a selective predicate over sorted data?
//   - How many fewer simulated bytes does the compressed (packed-image)
//     predicate scan move through the memory hierarchy?
//
// Every cell re-runs the identical plan from a cold tier; answers are
// verified equal across all configurations, and the zone-map run must prune
// at least half the blocks (the data is shipdate-sorted and the predicate
// keeps ~10%).
func ExtStorage(cfg Config) ([]*Report, error) {
	cfg = cfg.withDefaults()
	rows := 64 * cfg.VectorSize
	if cfg.Quick {
		rows = 24 * cfg.VectorSize
	}
	blockRows := 4 * cfg.VectorSize

	d, err := cachedDataset(rows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	d = d.ReorderLineitem(tpch.OrderingShipdateSorted, cfg.Seed+1)
	cut := cachedQuantileInt32(d.Lineitem.Column("l_shipdate"), 0.10)
	enc, err := cachedEncodedLineitem(d, fmt.Sprintf("r%d-s%d-sorted", rows, cfg.Seed), blockRows)
	if err != nil {
		return nil, err
	}

	// The scan's per-vector working set: the current block of each touched
	// column (three predicate columns plus the aggregate's second input).
	ws := 0
	for _, name := range []string{"l_shipdate", "l_quantity", "l_discount", "l_extendedprice"} {
		ws += enc.Column(name).BlockEncodedBytes(0)
	}
	budgets := []uint64{0, uint64(ws), uint64(ws) / 2, uint64(ws) / 4}
	if cfg.Quick {
		budgets = []uint64{0, uint64(ws) / 2, uint64(ws) / 4}
	}

	sweep := &Report{
		ID:      "ext-storage",
		Title:   "Extension: stored PCOL v2 scan — resident-set budget v. cold-scan time, zone maps on/off",
		Columns: []string{"budget_kb", "kcyc_full", "kcyc_zonemap", "fetched_full_kb", "fetched_zonemap_kb", "evictions_full"},
		Notes: []string{
			fmt.Sprintf("%d lineitems shipdate-sorted, %d-row blocks; shipdate<=p10 + discount>=0.05 + quantity<24, sum(price*disc)", rows, blockRows),
			fmt.Sprintf("tier: 400 cyc/block + 8 B/cyc; scan working set ~%d KB (current block of 4 touched columns)", ws/1024),
			"budget 0 = unbounded; budgets below the working set thrash: blocks evict mid-scan and re-fetch next vector",
			"zone maps answer pruned vectors from metadata, so tight budgets hurt the full scan far more",
		},
	}

	var refQ int64
	var refSum float64
	var prunedInfo *storage.Plan
	var cycFullTight, cycFullUnbounded uint64
	for bi, budget := range budgets {
		row := []string{fmt.Sprintf("%d", budget/1024)}
		if budget == 0 {
			row[0] = "unbounded"
		}
		var cells [2]storedCell
		for si, skip := range []bool{false, true} {
			scfg := storage.Config{LatencyCycles: 400, BytesPerCycle: 8, ResidentBytes: budget, SkipScan: skip}
			cell, err := runStored(cfg, enc, d, cut, scfg)
			if err != nil {
				return nil, err
			}
			if bi == 0 && !skip {
				refQ, refSum = cell.res.Qualifying, cell.res.Sum
			} else if cell.res.Qualifying != refQ || cell.res.Sum != refSum {
				return nil, fmt.Errorf("experiments: stored scan answer diverges at budget=%d skip=%v", budget, skip)
			}
			if skip && prunedInfo == nil {
				prunedInfo = cell.plan
				if cell.plan.BlocksPruned()*2 < cell.plan.BlocksTotal() {
					return nil, fmt.Errorf("experiments: zone maps pruned %d/%d blocks, expected at least half",
						cell.plan.BlocksPruned(), cell.plan.BlocksTotal())
				}
			}
			cells[si] = cell
		}
		if budget == 0 {
			cycFullUnbounded = cells[0].cycles
		}
		cycFullTight = cells[0].cycles
		row = append(row,
			fmt.Sprintf("%d", cells[0].cycles/1000), fmt.Sprintf("%d", cells[1].cycles/1000),
			fmt.Sprintf("%d", cells[0].cnt.BytesFetched/1024),
			fmt.Sprintf("%d", cells[1].cnt.BytesFetched/1024),
			fmt.Sprintf("%d", cells[0].cnt.Evictions))
		sweep.Rows = append(sweep.Rows, row)
	}
	if cycFullTight <= cycFullUnbounded {
		return nil, fmt.Errorf("experiments: tightest budget (%d cycles) not slower than unbounded (%d)",
			cycFullTight, cycFullUnbounded)
	}
	sweep.Notes = append(sweep.Notes, fmt.Sprintf("zone maps pruned %d/%d blocks (%d vectors skipped)",
		prunedInfo.BlocksPruned(), prunedInfo.BlocksTotal(), prunedInfo.VectorsSkipped()))

	compress := &Report{
		ID:      "ext-storage",
		Title:   "Extension: PCOL v2 per-column compression",
		Columns: []string{"column", "encoding", "plain_kb", "encoded_kb", "ratio"},
		Notes:   []string{"frame-of-reference bit-packs narrow ranges; dictionary encodes low-cardinality columns"},
	}
	for _, ec := range enc.Columns() {
		compress.Rows = append(compress.Rows, []string{
			ec.Name(), ec.Encoding().String(),
			fmt.Sprintf("%d", ec.PlainBytes()/1024),
			fmt.Sprintf("%d", ec.EncodedBytes()/1024),
			fmt.Sprintf("%.2f", float64(ec.PlainBytes())/float64(ec.EncodedBytes())),
		})
	}
	compress.Rows = append(compress.Rows, []string{
		"total", "-",
		fmt.Sprintf("%d", enc.PlainBytes()/1024),
		fmt.Sprintf("%d", enc.EncodedBytes()/1024),
		fmt.Sprintf("%.2f", float64(enc.PlainBytes())/float64(enc.EncodedBytes())),
	})

	// Compressed predicate scans: identical answers, fewer lines through the
	// simulated memory system.
	packed := &Report{
		ID:      "ext-storage",
		Title:   "Extension: predicate scans over packed images v. decoded values",
		Columns: []string{"scan", "ms", "mem_lines", "qualifying"},
		Notes:   []string{"mem_lines = cache lines fetched from simulated DRAM (PMU mem_access)"},
	}
	var memPlain, memPacked uint64
	for _, compressed := range []bool{false, true} {
		scfg := storage.Config{LatencyCycles: 400, BytesPerCycle: 8, CompressedScan: compressed}
		cell, err := runStored(cfg, enc, d, cut, scfg)
		if err != nil {
			return nil, err
		}
		if cell.res.Qualifying != refQ || cell.res.Sum != refSum {
			return nil, fmt.Errorf("experiments: compressed-scan answer diverges")
		}
		label := "decoded"
		if compressed {
			label = "packed"
			memPacked = cell.res.Counters.Get(pmu.MemAccess)
		} else {
			memPlain = cell.res.Counters.Get(pmu.MemAccess)
		}
		packed.Rows = append(packed.Rows, []string{
			label, fmtMs(cell.ms),
			fmt.Sprintf("%d", cell.res.Counters.Get(pmu.MemAccess)),
			fmt.Sprintf("%d", cell.res.Qualifying),
		})
	}
	if memPacked >= memPlain {
		return nil, fmt.Errorf("experiments: packed scan moved %d lines, decoded %d — expected fewer", memPacked, memPlain)
	}

	return []*Report{sweep, compress, packed}, nil
}

// storedCell is one measured stored-scan configuration.
type storedCell struct {
	res exec.Result
	// cycles is the run's stall-inclusive cycle count; ms the same on the
	// rig's clock.
	cycles uint64
	ms     float64
	plan   *storage.Plan
	cnt    cacheCounters
}

// cacheCounters mirrors the tier counters the reports print.
type cacheCounters struct {
	BytesFetched, Evictions, StallCycles uint64
}

// runStored executes the selective Q6-shaped scan over the stored table
// under one tier configuration, from a cold tier, on a fresh serial rig.
// Reported time includes the tier's stall debt (serial: exactly the run's
// stall cycles).
func runStored(cfg Config, enc *columnar.EncodedTable, d *tpch.Dataset, cut int32, scfg storage.Config) (storedCell, error) {
	tab, err := enc.Decode()
	if err != nil {
		return storedCell{}, err
	}
	price := tab.Column("l_extendedprice")
	disc := tab.Column("l_discount")
	q := &exec.Query{
		Table: tab,
		Ops: []exec.Op{
			&exec.Predicate{Col: tab.Column("l_shipdate"), Op: exec.LE, I: int64(cut), Label: "shipdate<=p10"},
			&exec.Predicate{Col: disc, Op: exec.GE, F: 0.05, Label: "discount>=0.05"},
			&exec.Predicate{Col: tab.Column("l_quantity"), Op: exec.LT, I: 24, Label: "quantity<24"},
		},
		Agg: &exec.Aggregate{
			Cols: []*columnar.Column{price, disc},
			F:    func(r int) float64 { return price.F64()[r] * disc.F64()[r] },
		},
	}
	r, err := newRig(cpu.ScaledXeon(), cfg)
	if err != nil {
		return storedCell{}, err
	}
	if err := r.bind(q); err != nil {
		return storedCell{}, err
	}
	plan, err := storage.Compile(enc, tab, q, cfg.VectorSize, scfg)
	if err != nil {
		return storedCell{}, err
	}
	if scfg.CompressedScan {
		plan.Packed = make(map[string]storage.PackedImage, len(enc.Columns()))
		for _, ec := range enc.Columns() {
			w := ec.PackedWidthBytes()
			base, err := r.cpu.Alloc(ec.Rows() * w)
			if err != nil {
				return storedCell{}, err
			}
			plan.Packed[ec.Name()] = storage.PackedImage{Base: base, Width: w}
		}
		for _, op := range q.Ops {
			if p, ok := op.(*exec.Predicate); ok {
				if img, ok := plan.Packed[p.Col.Name()]; ok {
					p.ScanBase, p.ScanWidth = img.Base, img.Width
				}
			}
		}
	}
	set, err := plan.NewSet()
	if err != nil {
		return storedCell{}, err
	}
	r.eng.SetStorage(&exec.StorageScan{Skip: plan.Skip, Set: set})
	defer r.eng.SetStorage(nil)
	r.cold()
	res, err := r.eng.Run(q)
	if err != nil {
		return storedCell{}, err
	}
	c := set.Counters()
	cycles := res.Cycles + c.StallCycles
	return storedCell{
		res:    res,
		cycles: cycles,
		ms:     r.millis(cycles),
		plan:   plan,
		cnt:    cacheCounters{BytesFetched: c.BytesFetched, Evictions: c.Evictions, StallCycles: c.StallCycles},
	}, nil
}
